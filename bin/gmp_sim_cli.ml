(* Command-line driver: run membership scenarios, dump traces, check the
   GMP specification.

   Examples:
     gmp-sim run -n 8 --crash 4@20 --crash 0@50 --join 10@80 --trace
     gmp-sim scenario mgr-crash -n 16
     gmp-sim sweep --seeds 500
     gmp-sim table1 *)

open Gmp_base
open Gmp_core
module Group = Gmp_runtime.Group
open Cmdliner

(* ---- shared options ---- *)

let seed_term =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let n_term =
  Arg.(
    value
    & opt int 6
    & info [ "n" ] ~docv:"N" ~doc:"Initial group size (p0 .. p(N-1)).")

let until_term =
  Arg.(
    value
    & opt float 500.0
    & info [ "until" ] ~docv:"T" ~doc:"Virtual-time horizon for the run.")

let trace_term =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the full event trace.")

let timeline_term =
  Arg.(
    value & flag
    & info [ "timeline" ]
        ~doc:"Print an ASCII space-time diagram of the run.")

let json_term =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Dump the whole run (states, stats, checker verdicts, trace) as JSON.")

(* "4@20" -> (pid 4, time 20.0); "3#1@70" -> incarnation 1 of host 3. *)
let parse_at s =
  match String.split_on_char '@' s with
  | [ who; at ] ->
    let time = float_of_string at in
    let pid =
      match String.split_on_char '#' who with
      | [ id ] -> Pid.make (int_of_string id)
      | [ id; inc ] ->
        Pid.make ~incarnation:(int_of_string inc) (int_of_string id)
      | _ -> failwith "bad pid"
    in
    (pid, time)
  | _ -> failwith "expected PID@TIME"

let at_conv what =
  let parse s =
    match parse_at s with
    | pair -> Ok pair
    | exception _ -> Error (`Msg (Fmt.str "%s expects PID@TIME, got %S" what s))
  in
  let print ppf (pid, t) = Fmt.pf ppf "%a@%g" Pid.pp pid t in
  Arg.conv (parse, print)

let crashes_term =
  Arg.(
    value
    & opt_all (at_conv "--crash") []
    & info [ "crash" ] ~docv:"PID@TIME" ~doc:"Crash process PID at TIME.")

let joins_term =
  Arg.(
    value
    & opt_all (at_conv "--join") []
    & info [ "join" ] ~docv:"PID@TIME"
        ~doc:"Join a fresh process PID at TIME (use ID#INC for incarnations).")

let suspects_term =
  let suspicion_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ obs; rest ] ->
        (try
           let target, time = parse_at rest in
           Ok (Pid.make (int_of_string obs), target, time)
         with _ -> Error (`Msg "expected OBS:TARGET@TIME"))
      | _ -> Error (`Msg "expected OBS:TARGET@TIME")
    in
    let print ppf (o, t, at) = Fmt.pf ppf "%a:%a@%g" Pid.pp o Pid.pp t at in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt_all suspicion_conv []
    & info [ "suspect" ] ~docv:"OBS:TARGET@TIME"
        ~doc:"Inject a (possibly spurious) suspicion.")

let report_text ?(timeline = false) group ~show_trace =
  if show_trace then Fmt.pr "--- trace ---@.%a@." Trace.pp (Group.trace group);
  if timeline then
    Fmt.pr "--- timeline ---@.%a@." Trace.pp_timeline (Group.trace group);
  Fmt.pr "--- final states ---@.%a@." Group.pp_summary group;
  (match Group.agreed_view group with
   | Some (ver, members) ->
     Fmt.pr "agreed view: v%d {%s}@." ver
       (String.concat "," (List.map Pid.to_string members))
   | None -> Fmt.pr "agreed view: NONE@.");
  Fmt.pr "--- message statistics ---@.%a@." Gmp_net.Stats.pp (Group.stats group);
  Fmt.pr "protocol messages (s7.2 accounting): %d@."
    (Group.protocol_messages group);
  let violations = Group.check group in
  if violations = [] then begin
    Fmt.pr "GMP-0..GMP-5 + convergence: all hold@.";
    0
  end
  else begin
    Fmt.pr "VIOLATIONS (%d):@." (List.length violations);
    List.iter (fun v -> Fmt.pr "  %a@." Checker.pp_violation v) violations;
    1
  end

let report ?(json = false) ?timeline group ~show_trace =
  if json then begin
    Fmt.pr "%a@." Gmp_base.Json.pp (Group.to_json group);
    if Group.check group = [] then 0 else 1
  end
  else report_text ?timeline group ~show_trace

(* ---- run: free-form scenario ---- *)

let run_cmd =
  let go seed n until crashes joins suspects show_trace json timeline =
    let group = Group.create ~seed ~n () in
    List.iter (fun (pid, t) -> Group.crash_at group t pid) crashes;
    List.iter
      (fun (pid, t) -> Group.join_at group t pid ~contact:(Pid.make 0))
      joins;
    List.iter
      (fun (observer, target, t) -> Group.suspect_at group t ~observer ~target)
      suspects;
    Group.run ~until group;
    report ~json ~timeline group ~show_trace
  in
  let term =
    Term.(
      const go $ seed_term $ n_term $ until_term $ crashes_term $ joins_term
      $ suspects_term $ trace_term $ json_term $ timeline_term)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a custom crash/join/suspicion schedule.")
    term

(* ---- scenario: named experiments ---- *)

let scenario_cmd =
  let scenarios =
    [ ("single-crash", `Single);
      ("compressed-pair", `Pair);
      ("mgr-crash", `Mgr);
      ("cascade", `Cascade);
      ("sequence", `Sequence);
      ("split", `Split);
      ("fig11", `Fig11);
      ("getstable", `Getstable);
      ("partitioned", `Partitioned) ]
  in
  let name_term =
    Arg.(
      required
      & pos 0 (some (enum scenarios)) None
      & info [] ~docv:"SCENARIO"
          ~doc:
            (Fmt.str "One of: %s."
               (String.concat ", " (List.map fst scenarios))))
  in
  let go which seed n show_trace =
    let module S = Gmp_workload.Scenario in
    let finish (m : S.measurement) group =
      Fmt.pr "n=%d protocol=%d update=%d reconf=%d views=%d violations=%d@."
        m.S.n m.S.protocol_msgs m.S.update_msgs m.S.reconf_msgs
        m.S.views_installed
        (List.length m.S.violations);
      report group ~show_trace
    in
    match which with
    | `Single ->
      let m, g = S.single_crash ~seed ~n () in
      finish m g
    | `Pair ->
      let m, g = S.compressed_pair ~seed ~n () in
      finish m g
    | `Mgr ->
      let m, g = S.mgr_crash ~seed ~n () in
      finish m g
    | `Cascade ->
      let m, g = S.cascade ~seed ~n ~kills:((n / 2) - 1) () in
      finish m g
    | `Sequence ->
      let m, g = S.sequence_all ~seed ~n () in
      finish m g
    | `Split ->
      let violations, g = S.real_protocol_split ~seed ~n () in
      Fmt.pr "safety violations: %d@." (List.length violations);
      report g ~show_trace
    | `Fig11 ->
      let violations, g = S.real_protocol_fig11 ~seed () in
      Fmt.pr "safety violations: %d@." (List.length violations);
      report g ~show_trace
    | `Getstable ->
      let violations, g = S.real_protocol_two_proposals ~seed () in
      Fmt.pr "safety violations: %d@." (List.length violations);
      report g ~show_trace
    | `Partitioned ->
      (* The s8 variation: both sides of a partition keep their own views;
         the divergence the checker reports is the expected observation. *)
      let group =
        Group.create ~config:Gmp_core.Config.partitionable ~seed ~n ()
      in
      let island = List.filteri (fun i _ -> i < (n - 1) / 2) (Group.initial group) in
      Group.partition_at group 10.0 [ island ];
      Group.run ~until:400.0 group;
      Fmt.pr
        "partitioned mode: divergence below is the point (views are not unique)@.";
      report group ~show_trace
  in
  let term =
    Term.(const go $ name_term $ seed_term $ n_term $ trace_term)
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:"Run one of the paper's named experiment scenarios.")
    term

(* ---- sweep: many random churn runs through the checker ---- *)

let sweep_cmd =
  let seeds_term =
    Arg.(
      value & opt int 200
      & info [ "seeds" ] ~docv:"K" ~doc:"Number of randomized runs.")
  in
  let go seeds =
    let bad = ref 0 in
    for seed = 1 to seeds do
      let m, _ = Gmp_workload.Scenario.random_churn ~seed () in
      if m.Gmp_workload.Scenario.violations <> [] then begin
        incr bad;
        Fmt.pr "seed %d: %d violations@." seed
          (List.length m.Gmp_workload.Scenario.violations)
      end
    done;
    Fmt.pr "%d/%d runs satisfy GMP-0..GMP-5 + convergence@." (seeds - !bad)
      seeds;
    if !bad = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Check the GMP spec over many randomized runs.")
    Term.(const go $ seeds_term)

(* ---- fuzz: adversarial schedule search ---- *)

let fuzz_cmd =
  let iterations_term =
    Arg.(
      value & opt int 300
      & info [ "iterations" ] ~docv:"K" ~doc:"Schedules to try.")
  in
  let weaken_term =
    Arg.(
      value & flag
      & info [ "weaken" ]
          ~doc:
            "Drop the majority requirement (Config.basic): the search should \
             then find the known partition divergence.")
  in
  let go iterations weaken seed n =
    let config =
      if weaken then Gmp_core.Config.basic else Gmp_core.Config.default
    in
    let outcome = Gmp_workload.Fuzz.search ~config ~n ~iterations ~seed () in
    match outcome.Gmp_workload.Fuzz.counterexample with
    | None ->
      Fmt.pr "no GMP violation in %d schedules@."
        outcome.Gmp_workload.Fuzz.iterations_run;
      0
    | Some (schedule, violations) ->
      Fmt.pr "COUNTEREXAMPLE after %d schedules:@.  %a@."
        outcome.Gmp_workload.Fuzz.iterations_run Gmp_workload.Fuzz.pp_schedule
        schedule;
      List.iter (fun v -> Fmt.pr "  %a@." Checker.pp_violation v) violations;
      1
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Hunt for GMP violations with random schedules.")
    Term.(const go $ iterations_term $ weaken_term $ seed_term $ n_term)

(* ---- explore: bounded deterministic schedule exploration ---- *)

let explore_cmd =
  let module E = Gmp_explore.Explore in
  let depth_term =
    Arg.(
      value & opt int 8
      & info [ "depth" ] ~docv:"D"
          ~doc:"Branching decisions recorded per execution (the rest of each \
                run follows the default deterministic order).")
  in
  let budget_term =
    Arg.(
      value & opt int 3000
      & info [ "budget" ] ~docv:"K" ~doc:"Maximum executions to enumerate.")
  in
  let weaken_term =
    Arg.(
      value & flag
      & info [ "weaken" ]
          ~doc:
            "Explore the weakened algorithm (Config.basic, no majority \
             requirement on updates) under a one-isolation adversary instead \
             of the full algorithm: exploration should then rediscover the \
             known partition divergence.")
  in
  let expect_violation_term =
    Arg.(
      value & flag
      & info [ "expect-violation" ]
          ~doc:
            "Invert the exit code: succeed only if a violation IS found \
             (for sensitivity runs in CI).")
  in
  let procs_term =
    Arg.(
      value & opt (some int) None
      & info [ "procs" ] ~docv:"N"
          ~doc:"Group size (default: 3 for assurance, 5 for --weaken).")
  in
  let horizon_term =
    Arg.(
      value & opt (some float) None
      & info [ "horizon" ] ~docv:"T" ~doc:"Virtual-time horizon per execution.")
  in
  let slack_term =
    Arg.(
      value & opt (some float) None
      & info [ "slack" ] ~docv:"S" ~doc:"Ready-window width.")
  in
  let crashes_term =
    Arg.(
      value & opt (some int) None
      & info [ "crashes" ] ~docv:"K" ~doc:"Crash-injection budget per execution.")
  in
  let suspicions_term =
    Arg.(
      value & opt (some int) None
      & info [ "suspicions" ] ~docv:"K"
          ~doc:"Spurious-suspicion budget per execution.")
  in
  let isolations_term =
    Arg.(
      value & opt (some int) None
      & info [ "isolations" ] ~docv:"K"
          ~doc:"Single-process partition budget per execution.")
  in
  let json_term =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "One-line machine-readable JSON summary on stdout (suppresses \
             progress output).")
  in
  let jobs_term =
    let jobs_conv =
      let parse s =
        match int_of_string_opt s with
        | None -> Error (`Msg (Fmt.str "invalid job count %S" s))
        | Some j when j < 0 ->
          Error (`Msg (Fmt.str "job count must be >= 0, got %d" j))
        | Some j -> Ok j
      in
      Arg.conv (parse, Fmt.int)
    in
    Arg.(
      value & opt (some jobs_conv) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Explore with $(docv) worker domains (partitioned prefix search; \
             deterministic: any N, including 1, gives identical results). 0 \
             means autodetect the core count. Without this flag the classic \
             single-domain engine runs.")
  in
  let snapshots_term =
    Arg.(
      value
      & opt (enum [ ("on", true); ("off", false) ]) true
      & info [ "snapshots" ] ~docv:"on|off"
          ~doc:
            "Checkpoint/restore backtracking (default on): enter sibling \
             branches by restoring a world snapshot instead of re-executing \
             the shared prefix from the root. $(b,off) keeps the \
             rebuild-and-replay oracle engine; both produce byte-identical \
             outcomes.")
  in
  let replay_out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay-out" ] ~docv:"FILE"
          ~doc:
            "On a violation, write the counterexample to $(docv) as JSON: \
             the model parameters plus the minimal schedule, everything \
             needed to replay the failure locally. Written only when a \
             counterexample exists; a nightly deep-explore job uploads it \
             as its failure artifact.")
  in
  let go depth budget weaken expect_violation json jobs snapshots replay_out
      procs horizon slack crashes suspicions isolations seed =
    let base = if weaken then E.sensitivity ~seed () else E.assurance ~seed () in
    let opt v field = Option.value v ~default:field in
    let model =
      { base with
        E.n = opt procs base.E.n;
        E.horizon = opt horizon base.E.horizon;
        E.slack = opt slack base.E.slack;
        E.adversary =
          { E.crashes = opt crashes base.E.adversary.E.crashes;
            E.suspicions = opt suspicions base.E.adversary.E.suspicions;
            E.isolations = opt isolations base.E.adversary.E.isolations;
            E.heal = base.E.adversary.E.heal } }
    in
    let jobs =
      match jobs with
      | Some 0 -> Some (Domain.recommended_domain_count ())
      | j -> j
    in
    let progress s =
      if not json then Fmt.pr "... %a@." E.pp_stats s
    in
    (match jobs with
    | Some j when not json -> Fmt.pr "exploring with %d worker domain(s)@." j
    | _ -> ());
    let outcome = E.explore ~progress ?jobs ~snapshots model ~depth ~budget in
    let found = outcome.E.counterexample <> None in
    (* Stable exit codes, for CI gates:
         0  outcome matches expectation (violation iff --expect-violation)
         2  unexpected violation found
         3  violation expected (--expect-violation) but none found *)
    let code =
      if found = expect_violation then 0 else if found then 2 else 3
    in
    (match (replay_out, outcome.E.counterexample) with
    | Some path, Some cx ->
      let module J = Gmp_base.Json in
      let doc =
        J.obj
          [ ("mode", J.string (if weaken then "sensitivity" else "assurance"));
            ("seed", J.int seed);
            ("n", J.int model.E.n);
            ("depth", J.int depth);
            ("budget", J.int budget);
            ("injections", J.int cx.E.cx_injections);
            ( "violations",
              J.list (List.map Export.json_of_violation cx.E.cx_violations) );
            ( "schedule",
              J.list (List.map J.string (E.describe model cx.E.cx_choices)) )
          ]
      in
      let oc = open_out path in
      output_string oc (J.to_compact_string doc);
      output_char oc '\n';
      close_out oc;
      if not json then Fmt.pr "counterexample replay written to %s@." path
    | _ -> ());
    if json then begin
      let module J = Gmp_base.Json in
      let s = outcome.E.stats in
      Fmt.pr "%s@."
        (J.to_compact_string
           (J.obj
              [ ("mode", J.string (if weaken then "sensitivity" else "assurance"));
                ("n", J.int model.E.n);
                ("depth", J.int depth);
                ("budget", J.int budget);
                ("jobs", match jobs with None -> J.null | Some j -> J.int j);
                ("snapshots", J.bool snapshots);
                ( "stats",
                  J.obj
                    [ ("executions", J.int s.E.executions);
                      ("distinct", J.int s.E.distinct);
                      ("frames", J.int s.E.frames);
                      ("state_pruned", J.int s.E.state_pruned);
                      ("sleep_pruned", J.int s.E.sleep_pruned);
                      ("max_depth", J.int s.E.max_depth) ] );
                ("violation_found", J.bool found);
                ("violation_expected", J.bool expect_violation);
                ( "counterexample",
                  match outcome.E.counterexample with
                  | None -> J.null
                  | Some cx ->
                    J.obj
                      [ ("injections", J.int cx.E.cx_injections);
                        ( "violations",
                          J.list
                            (List.map Export.json_of_violation
                               cx.E.cx_violations) );
                        ( "schedule",
                          J.list
                            (List.map J.string
                               (E.describe model cx.E.cx_choices)) ) ] );
                ("exit", J.int code) ]))
    end
    else begin
      Fmt.pr "%a@." E.pp_outcome outcome;
      match outcome.E.counterexample with
      | Some cx ->
        Fmt.pr "replayable minimal schedule:@.";
        List.iter
          (fun line -> Fmt.pr "  %s@." line)
          (E.describe model cx.E.cx_choices)
      | None -> ()
    end;
    code
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Systematically enumerate message/timer/fault interleavings \
          (bounded model checking) and run the GMP safety checker on each.")
    Term.(
      const go $ depth_term $ budget_term $ weaken_term $ expect_violation_term
      $ json_term $ jobs_term $ snapshots_term $ replay_out_term $ procs_term
      $ horizon_term $ slack_term $ crashes_term $ suspicions_term
      $ isolations_term $ seed_term)

(* ---- table1 ---- *)

let table1_cmd =
  let go () =
    let row ~p_failed ~q_thinks =
      let group = Group.create ~seed:30 ~n:4 () in
      Group.crash_at group 5.0 (Pid.make 0);
      if p_failed then Group.crash_at group 6.0 (Pid.make 1);
      if q_thinks then
        Group.suspect_at group 16.0 ~observer:(Pid.make 2) ~target:(Pid.make 1);
      Group.run ~until:400.0 group;
      let initiated who =
        List.exists
          (fun (e : Trace.event) ->
            Pid.equal e.Trace.owner who
            &&
            match e.Trace.kind with
            | Trace.Initiated_reconf _ -> true
            | _ -> false)
          (Trace.events (Group.trace group))
      in
      (initiated (Pid.make 1), initiated (Pid.make 2))
    in
    Fmt.pr "p actual | q thinks p | p initiates | q initiates@.";
    List.iter
      (fun (pf, qt) ->
        let p_init, q_init = row ~p_failed:pf ~q_thinks:qt in
        Fmt.pr "%-8s | %-10s | %-11b | %b@."
          (if pf then "Failed" else "Up")
          (if qt then "Failed" else "Up")
          p_init q_init)
      [ (false, false); (true, false); (false, true); (true, true) ];
    0
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce Table 1 (who initiates reconfiguration).")
    Term.(const go $ const ())

let main_cmd =
  let doc =
    "Group membership / failure detection for asynchronous systems \
     (Ricciardi & Birman, 1991)"
  in
  Cmd.group
    (Cmd.info "gmp-sim" ~version:"1.0.0" ~doc)
    [ run_cmd; scenario_cmd; sweep_cmd; fuzz_cmd; explore_cmd; table1_cmd ]

let () = exit (Cmd.eval' main_cmd)
