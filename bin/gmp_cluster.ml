(* gmp-cluster: spawn a fleet of gmp-node processes on loopback, drive a
   fault workload against them, and judge the run.

   The orchestrator is deliberately outside the protocol: it allocates
   ports, forks real OS processes, injects faults the way an unkind world
   would (SIGKILL for crashes, receiver-side blackholing for partitions),
   and afterwards reassembles the per-node JSONL event logs into one
   global trace for [Gmp_core.Checker.check_run] - the same judge every
   simulated run faces. Survivor views come from each node's own log (its
   last Installed event), so a SIGKILLed process needs no cooperation.

   Exit codes (stable, for CI):
     0  run completed and the checker found no violations
     1  harness failure (spawn error, unreadable log, stuck node)
     2  checker violations on the reassembled trace *)

open Gmp_base
open Gmp_core
open Cmdliner
module J = Json
module Obs = Gmp_obs.Obs

(* ---- workload specs ---- *)

type action =
  | Kill of Pid.t
  | Join of Pid.t
  | Blackhole of { at : Pid.t; from : Pid.t }
  | Unblackhole of { at : Pid.t; from : Pid.t }
  | Netem of { at : Pid.t option; spec : Gmp_live.Codec.netem_spec }
      (* retune fault injection at node [at] ([None] = every live node);
         [spec.peer] picks the incoming link, [None] = the node default *)

let split_spec s = String.split_on_char ':' s

let time_of s =
  match float_of_string_opt s with
  | Some t when t >= 0.0 -> Some t
  | _ -> None

let pid_of s = Pid.of_string s

let timed_pid_conv what =
  let parse s =
    match split_spec s with
    | [ t; p ] -> (
      match (time_of t, pid_of p) with
      | Some t, Some p -> Ok (t, p)
      | _ -> Error (`Msg (Printf.sprintf "bad %s spec %S" what s)))
    | _ ->
      Error (`Msg (Printf.sprintf "bad %s spec %S (expected T:PID)" what s))
  in
  Arg.conv (parse, fun ppf (t, p) -> Fmt.pf ppf "%g:%a" t Pid.pp p)

let timed_pair_conv what =
  let parse s =
    match split_spec s with
    | [ t; at; from ] -> (
      match (time_of t, pid_of at, pid_of from) with
      | Some t, Some at, Some from -> Ok (t, at, from)
      | _ -> Error (`Msg (Printf.sprintf "bad %s spec %S" what s)))
    | _ ->
      Error
        (`Msg (Printf.sprintf "bad %s spec %S (expected T:AT:FROM)" what s))
  in
  Arg.conv
    (parse, fun ppf (t, at, from) -> Fmt.pf ppf "%g:%a:%a" t Pid.pp at Pid.pp from)

(* --netem T:AT:SPEC - at T seconds, retune fault injection at node AT
   (or every node, AT = "all"). SPEC is comma-separated k=v pairs over the
   CLI vocabulary: loss, latency, jitter, dup, reorder (plus peer=PID to
   retune a single incoming link). Unset keys mean zero: a spec always
   describes the whole replacement model, not a delta. [Spec] validates
   the whole action - unknown keys, malformed floats, out-of-range values
   - so a bad timeline dies as a cmdliner error before any node spawns,
   never at T seconds into a live run. *)
let netem_conv =
  let parse s =
    match Gmp_live.Spec.parse_netem_action s with
    | Ok { Gmp_live.Spec.at_time; target; spec } -> Ok (at_time, target, spec)
    | Error m -> Error (`Msg m)
  in
  let print ppf (t, at, (spec : Gmp_live.Codec.netem_spec)) =
    Fmt.pf ppf "%g:%s:loss=%g,latency=%g,jitter=%g,dup=%g,reorder=%g%s" t
      (match at with None -> "all" | Some p -> Pid.to_string p)
      spec.n_loss spec.n_latency spec.n_jitter spec.n_dup spec.n_reorder
      (match spec.peer with
      | None -> ""
      | Some p -> ",peer=" ^ Pid.to_string p)
  in
  Arg.conv (parse, print)

let transport_conv =
  Arg.enum [ ("udp", Gmp_live.Transport.Udp); ("tcp", Gmp_live.Transport.Tcp) ]

(* ---- infrastructure ---- *)

(* Bind-and-release on the socket type the transport will use, so the
   port is known free for that type at spawn time. *)
let alloc_port transport =
  let sock_type =
    match transport with
    | Gmp_live.Transport.Udp -> Unix.SOCK_DGRAM
    | Gmp_live.Transport.Tcp -> Unix.SOCK_STREAM
  in
  let s = Unix.socket Unix.PF_INET sock_type 0 in
  Unix.setsockopt s Unix.SO_REUSEADDR true;
  Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname s with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close s;
  port

let default_node_bin () =
  (* gmp-node is built alongside this binary; prefer the sibling, fall back
     to PATH. *)
  let dir = Filename.dirname Sys.executable_name in
  let candidates =
    [ Filename.concat dir "gmp_node.exe";
      Filename.concat dir "gmp_node";
      Filename.concat dir "gmp-node" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "gmp-node"

type proc = {
  pid : Pid.t;
  port : int;
  ospid : int;
  log_file : string;
  mutable killed : bool;
  mutable reaped : bool;
}

let pids_arg ps = String.concat "," (List.map Pid.to_string ps)

let spawn ~node_bin ~dir ~transport ~bind_host ~ports ~initial ~hb_interval
    ~hb_timeout ~rto ~netem ~netem_seed ~run_for ~verbose ~joiner pid =
  let port = List.assoc pid ports in
  let log_file = Filename.concat dir (Pid.to_string pid ^ ".jsonl") in
  let peers =
    List.filter_map
      (fun (p, port) ->
        if Pid.equal p pid then None
        else Some (Printf.sprintf "%s:%s:%d" (Pid.to_string p) bind_host port))
      ports
  in
  let loss, latency, jitter, dup, reorder = netem in
  let args =
    [ node_bin; "--self"; Pid.to_string pid; "--transport";
      Gmp_live.Transport.kind_name transport; "--bind";
      Printf.sprintf "%s:%d" bind_host port;
      "--initial"; pids_arg initial; "--log"; log_file; "--hb-interval";
      string_of_float hb_interval; "--hb-timeout"; string_of_float hb_timeout;
      "--rto"; string_of_float rto; "--loss"; string_of_float loss;
      "--latency"; string_of_float latency; "--jitter";
      string_of_float jitter; "--dup"; string_of_float dup; "--reorder";
      string_of_float reorder; "--netem-seed"; string_of_int netem_seed;
      "--run-for"; string_of_float run_for ]
    @ List.concat_map (fun p -> [ "--peer"; p ]) peers
    @ (if joiner then [ "--joiner"; "--contacts"; pids_arg initial ] else [])
    @ if verbose then [ "--verbose" ] else []
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let ospid =
    Unix.create_process node_bin (Array.of_list args) null Unix.stdout
      Unix.stderr
  in
  Unix.close null;
  { pid; port; ospid; log_file; killed = false; reaped = false }

(* All control traffic rides the acked channel: the node answers Ctrl_ack
   after applying, and Ctrl.send retries until it does - so a fault command
   survives the very loss it injects. *)

let reap_with_grace procs ~grace =
  (* Poll-reap every live child; SIGKILL whoever outstays the grace. *)
  let deadline = Unix.gettimeofday () +. grace in
  let stuck = ref [] in
  let rec wait_all () =
    let pending =
      List.filter (fun p -> not (p.reaped || p.killed)) procs
    in
    if pending <> [] then
      if Unix.gettimeofday () > deadline then
        List.iter
          (fun p ->
            stuck := p.pid :: !stuck;
            (try Unix.kill p.ospid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] p.ospid);
            p.reaped <- true)
          pending
      else begin
        List.iter
          (fun p ->
            match Unix.waitpid [ Unix.WNOHANG ] p.ospid with
            | 0, _ -> ()
            | _, _ -> p.reaped <- true
            | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
              p.reaped <- true)
          pending;
        if List.exists (fun p -> not (p.reaped || p.killed)) procs then begin
          Unix.sleepf 0.05;
          wait_all ()
        end
      end
  in
  wait_all ();
  List.rev !stuck

(* ---- harvest ---- *)

let last_install events =
  List.fold_left
    (fun acc (e : Trace.event) ->
      match e.kind with
      | Trace.Installed { ver; view_members } -> Some (ver, view_members)
      | _ -> acc)
    None events

let has_quit events =
  List.exists
    (fun (e : Trace.event) ->
      match e.kind with Trace.Quit _ | Trace.Crashed -> true | _ -> false)
    events

(* ---- the run ---- *)

let run_cluster n joiners run_for kills joins blackholes unblackholes netems
    transport bind_host hb_interval hb_timeout rto netem netem_seed dir
    node_bin json liveness keep_logs verbose =
  let initial = Pid.group n in
  let join_pids = List.map snd joins in
  (match
     List.find_opt (fun p -> List.exists (Pid.equal p) initial) join_pids
   with
  | Some p ->
    Fmt.epr "join pid %a is already an initial member@." Pid.pp p;
    exit 1
  | None -> ());
  ignore joiners;
  let all_pids = initial @ join_pids in
  let dir =
    match dir with
    | Some d ->
      if not (Sys.file_exists d) then Sys.mkdir d 0o755;
      d
    | None ->
      let d =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "gmp-cluster-%d" (Unix.getpid ()))
      in
      if not (Sys.file_exists d) then Sys.mkdir d 0o755;
      d
  in
  let node_bin = match node_bin with Some b -> b | None -> default_node_bin () in
  let ports = List.map (fun p -> (p, alloc_port transport)) all_pids in
  let ctrl = Gmp_live.Ctrl.create ~transport () in
  let kill_times = ref [] in
  let harness_errors = ref [] in
  let note fmt = Printf.ksprintf (fun m -> harness_errors := m :: !harness_errors) fmt in
  let send_ctrl ~what ~port cmd =
    if not (Gmp_live.Ctrl.send ctrl ~host:bind_host ~port cmd) then
      note "%s: no ack from node on port %d" what port
  in
  (* Nodes outlive the orchestrated window by a shutdown grace, never more:
     --run-for is their own deadman switch. *)
  let node_run_for = run_for +. 30.0 in
  let spawn1 ~joiner pid =
    spawn ~node_bin ~dir ~transport ~bind_host ~ports ~initial ~hb_interval
      ~hb_timeout ~rto ~netem ~netem_seed ~run_for:node_run_for ~verbose
      ~joiner pid
  in
  let procs = ref (List.map (spawn1 ~joiner:false) initial) in
  let proc_of pid = List.find_opt (fun p -> Pid.equal p.pid pid) !procs in
  let started = Unix.gettimeofday () in
  let timeline =
    List.sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (List.map (fun (t, p) -> (t, Kill p)) kills
      @ List.map (fun (t, p) -> (t, Join p)) joins
      @ List.map (fun (t, at, from) -> (t, Blackhole { at; from })) blackholes
      @ List.map
          (fun (t, at, from) -> (t, Unblackhole { at; from }))
          unblackholes
      @ List.map (fun (t, at, spec) -> (t, Netem { at; spec })) netems)
  in
  let sleep_until t =
    let remaining = started +. t -. Unix.gettimeofday () in
    if remaining > 0.0 then Unix.sleepf remaining
  in
  List.iter
    (fun (t, act) ->
      sleep_until t;
      match act with
      | Kill p -> (
        match proc_of p with
        | None -> note "kill %s: no such node" (Pid.to_string p)
        | Some proc ->
          if not json then
            Fmt.pr "t=%.1f  SIGKILL %a (os pid %d)@." t Pid.pp p proc.ospid;
          (try Unix.kill proc.ospid Sys.sigkill
           with Unix.Unix_error _ -> note "kill %s failed" (Pid.to_string p));
          ignore (Unix.waitpid [] proc.ospid);
          (* a SIGKILLed node logs no Crashed event; remember the wall
             instant so the latency derivation has its t0 *)
          kill_times := (p, Unix.gettimeofday ()) :: !kill_times;
          proc.killed <- true;
          proc.reaped <- true)
      | Join p ->
        if not json then Fmt.pr "t=%.1f  spawn joiner %a@." t Pid.pp p;
        procs := !procs @ [ spawn1 ~joiner:true p ]
      | Blackhole { at; from } -> (
        match proc_of at with
        | None -> note "blackhole at %s: no such node" (Pid.to_string at)
        | Some proc ->
          if not json then
            Fmt.pr "t=%.1f  blackhole %a -> %a@." t Pid.pp from Pid.pp at;
          send_ctrl
            ~what:(Printf.sprintf "blackhole at %s" (Pid.to_string at))
            ~port:proc.port (Gmp_live.Codec.Blackhole from))
      | Unblackhole { at; from } -> (
        match proc_of at with
        | None -> note "unblackhole at %s: no such node" (Pid.to_string at)
        | Some proc ->
          if not json then
            Fmt.pr "t=%.1f  unblackhole %a -> %a@." t Pid.pp from Pid.pp at;
          send_ctrl
            ~what:(Printf.sprintf "unblackhole at %s" (Pid.to_string at))
            ~port:proc.port (Gmp_live.Codec.Unblackhole from))
      | Netem { at; spec } ->
        let targets =
          match at with
          | Some p -> (
            match proc_of p with
            | None ->
              note "netem at %s: no such node" (Pid.to_string p);
              []
            | Some proc -> [ proc ])
          | None ->
            List.filter (fun p -> not (p.killed || p.reaped)) !procs
        in
        List.iter
          (fun proc ->
            if not json then
              Fmt.pr "t=%.1f  netem %a loss=%g latency=%g jitter=%g@." t
                Pid.pp proc.pid spec.Gmp_live.Codec.n_loss
                spec.Gmp_live.Codec.n_latency spec.Gmp_live.Codec.n_jitter;
            send_ctrl
              ~what:(Printf.sprintf "netem at %s" (Pid.to_string proc.pid))
              ~port:proc.port (Gmp_live.Codec.Set_netem spec))
          targets)
    timeline;
  sleep_until run_for;
  (* Scrape each survivor's metrics registry over the same acked channel
     before asking it to stop - a fallback snapshot in case its final
     metrics line never lands in the log. The log's own line wins later;
     a node that already quit simply yields nothing here, which is fine. *)
  let scraped =
    List.filter_map
      (fun p ->
        if p.killed || p.reaped then None
        else
          Option.bind
            (Gmp_live.Ctrl.query ctrl ~attempts:20 ~host:bind_host
               ~port:p.port)
            (fun payload ->
              match J.of_string payload with
              | Error _ -> None
              | Ok j -> (
                match Obs.Snapshot.of_json j with
                | Error _ -> None
                | Ok snap -> Some (p.pid, snap))))
      !procs
  in
  (* Ask survivors to stop over the acked channel. A node that already
     exited on its own (protocol quit) never acks - that is not an error,
     so no [note] here; the nodes' own --run-for is the last resort. *)
  List.iter
    (fun p ->
      if not (p.killed || p.reaped) then
        ignore
          (Gmp_live.Ctrl.send ctrl ~attempts:20 ~host:bind_host ~port:p.port
             Gmp_live.Codec.Shutdown
            : bool))
    !procs;
  let stuck = reap_with_grace !procs ~grace:8.0 in
  List.iter
    (fun p -> note "node %s ignored shutdown; SIGKILLed" (Pid.to_string p))
    stuck;
  Gmp_live.Ctrl.close ctrl;
  (* ---- harvest and judge ---- *)
  let per_node =
    List.map
      (fun p ->
        match Gmp_live.Trace_io.read_file p.log_file with
        | Ok events -> (p, events)
        | Error m ->
          note "unreadable log %s: %s" p.log_file m;
          (p, []))
      !procs
  in
  let killed = List.filter_map (fun p -> if p.killed then Some p.pid else None) !procs in
  let stuck_dead = stuck in
  let dead =
    List.sort_uniq Pid.compare
      (killed @ stuck_dead
      @ List.filter_map
          (fun (p, events) -> if has_quit events then Some p.pid else None)
          per_node)
  in
  let is_dead p = List.exists (Pid.equal p) dead in
  let surviving_views =
    List.filter_map
      (fun (p, events) ->
        if is_dead p.pid then None
        else
          match last_install events with
          | Some (ver, members) -> Some (p.pid, ver, members)
          | None -> None (* never-admitted joiner: holds no view *))
      per_node
  in
  let final_view =
    match surviving_views with
    | [] -> []
    | (_, ver0, m0) :: rest ->
      let same_members a b =
        List.length a = List.length b && List.for_all2 Pid.equal a b
      in
      if
        List.for_all
          (fun (_, ver, m) -> ver = ver0 && same_members m m0)
          rest
      then m0
      else []
  in
  let arq =
    (* Counters summaries exist only for nodes that shut down cleanly;
       SIGKILLed ones have none, by design. *)
    List.filter_map
      (fun p ->
        Option.map
          (fun cs -> (p.pid, cs))
          (Gmp_live.Trace_io.read_arq p.log_file))
      !procs
  in
  let transports =
    List.filter_map
      (fun p ->
        Option.map
          (fun (kind, cs) -> (p.pid, kind, cs))
          (Gmp_live.Trace_io.read_transport p.log_file))
      !procs
  in
  let trace = Gmp_live.Trace_io.reassemble (List.map snd per_node) in
  (* Per-node registry snapshots: a clean shutdown leaves a final metrics
     line in the log (most complete, wins); a SIGKILLed node contributes
     its last periodic line; the pre-shutdown scrape covers a node whose
     log was lost. Detection latency is a cluster-level fact, derived from
     the reassembled trace with the orchestrator's own kill instants as
     the crash times (end-of-run SIGKILLs of stuck nodes are reaping, not
     injected crashes, so [stuck] is deliberately absent). *)
  let node_metrics =
    List.filter_map
      (fun p ->
        match Gmp_live.Trace_io.read_metrics p.log_file with
        | Some snap -> Some (p.pid, snap)
        | None ->
          Option.map (fun s -> (p.pid, s)) (List.assoc_opt p.pid scraped))
      !procs
  in
  let metrics =
    let latency = Obs.create () in
    Latency.observe ~crashes:(List.rev !kill_times) latency trace;
    try
      Obs.Snapshot.merge_all
        (Obs.snapshot latency :: List.map snd node_metrics)
    with Invalid_argument m ->
      note "metrics merge failed: %s" m;
      Obs.snapshot latency
  in
  let latency_summary =
    let dist name =
      match Obs.Snapshot.find metrics name with
      | Some (Obs.Snapshot.Histogram h) ->
        let q p =
          match Obs.Snapshot.quantile h p with
          | Some v when Float.is_finite v -> J.float v
          | _ -> J.null
        in
        J.obj
          [ ("count", J.int (Obs.Snapshot.count h));
            ("p50", q 0.5);
            ("p99", q 0.99) ]
      | _ -> J.obj [ ("count", J.int 0); ("p50", J.null); ("p99", J.null) ]
    in
    [ ( "crash_to_first_suspicion", dist Latency.crash_to_first_suspicion );
      ("crash_to_view_installed", dist Latency.crash_to_view_installed);
      ("join_to_installed", dist Latency.join_to_installed) ]
  in
  let violations =
    Checker.check_run ~liveness trace ~initial ~surviving_views ~dead
      ~final_view
  in
  let harness_errors = List.rev !harness_errors in
  let exit_code =
    if harness_errors <> [] then 1 else if violations <> [] then 2 else 0
  in
  if json then
    Fmt.pr "%s@."
      (J.to_compact_string
         (J.obj
            [ ("n", J.int n);
              ("run_for", J.float run_for);
              ("events", J.int (Trace.length trace));
              ("dead", J.list (List.map Export.json_of_pid dead));
              ( "surviving_views",
                J.list
                  (List.map
                     (fun (p, ver, members) ->
                       J.obj
                         [ ("pid", Export.json_of_pid p);
                           ("version", J.int ver);
                           ("view", J.list (List.map Export.json_of_pid members))
                         ])
                     surviving_views) );
              ("final_view", J.list (List.map Export.json_of_pid final_view));
              ( "violations",
                J.list (List.map Export.json_of_violation violations) );
              ( "arq",
                J.list
                  (List.map
                     (fun (p, cs) ->
                       J.obj
                         (("pid", Export.json_of_pid p)
                         :: List.map (fun (k, v) -> (k, J.int v)) cs))
                     arq) );
              ( "transport",
                J.list
                  (List.map
                     (fun (p, kind, cs) ->
                       J.obj
                         (("pid", Export.json_of_pid p)
                         :: ("kind", J.string kind)
                         :: List.map (fun (k, v) -> (k, J.int v)) cs))
                     transports) );
              ("metrics", Obs.Snapshot.to_json metrics);
              ("latency", J.obj latency_summary);
              ("harness_errors", J.list (List.map J.string harness_errors));
              ("logs", J.string dir);
              ("exit", J.int exit_code) ]))
  else begin
    Fmt.pr "@.%d nodes, %.1fs, %d trace events reassembled from %s@."
      (List.length !procs) run_for (Trace.length trace) dir;
    Fmt.pr "dead: %a@." Fmt.(list ~sep:(any " ") Pid.pp) dead;
    List.iter
      (fun (p, ver, members) ->
        Fmt.pr "%a: v%d %a@." Pid.pp p ver
          Fmt.(list ~sep:(any ",") Pid.pp)
          members)
      surviving_views;
    List.iter
      (fun (p, cs) ->
        Fmt.pr "%a arq: %a@." Pid.pp p
          Fmt.(list ~sep:(any " ") (pair ~sep:(any "=") string int))
          cs)
      arq;
    List.iter
      (fun (p, kind, cs) ->
        Fmt.pr "%a %s: %a@." Pid.pp p kind
          Fmt.(list ~sep:(any " ") (pair ~sep:(any "=") string int))
          cs)
      transports;
    if Obs.Snapshot.metrics metrics <> [] then
      Fmt.pr "cluster metrics (per-node registries merged):@.%a@."
        Obs.Snapshot.pp metrics;
    List.iter (fun m -> Fmt.pr "harness error: %s@." m) harness_errors;
    (match violations with
    | [] -> Fmt.pr "checker: OK (GMP-0..GMP-5 hold on the live trace)@."
    | vs ->
      List.iter (fun v -> Fmt.pr "checker: %a@." Checker.pp_violation v) vs)
  end;
  if not keep_logs && exit_code = 0 then begin
    List.iter
      (fun p -> try Sys.remove p.log_file with Sys_error _ -> ())
      !procs;
    try Sys.rmdir dir with Sys_error _ -> ()
  end;
  exit_code

(* ---- cmdliner plumbing ---- *)

let n_term =
  Arg.(
    value & opt int 5 & info [ "nodes" ] ~docv:"N" ~doc:"Initial group size.")

let joiners_term =
  Arg.(
    value & opt int 0
    & info [ "joiners" ] ~docv:"K"
        ~doc:"Reserved for symmetry with the sim CLI (joins come from \
              --join specs).")

let run_for_term =
  Arg.(
    value & opt float 12.0
    & info [ "run-for" ] ~docv:"SECS" ~doc:"Orchestrated window length.")

let kills_term =
  Arg.(
    value
    & opt_all (timed_pid_conv "kill") []
    & info [ "kill" ] ~docv:"T:PID"
        ~doc:"SIGKILL the node at T seconds, repeatable.")

let joins_term =
  Arg.(
    value
    & opt_all (timed_pid_conv "join") []
    & info [ "join" ] ~docv:"T:PID"
        ~doc:"Spawn PID as a joiner at T seconds, repeatable.")

let blackholes_term =
  Arg.(
    value
    & opt_all (timed_pair_conv "blackhole") []
    & info [ "blackhole" ] ~docv:"T:AT:FROM"
        ~doc:"At T, tell node AT to drop all traffic from FROM.")

let unblackholes_term =
  Arg.(
    value
    & opt_all (timed_pair_conv "unblackhole") []
    & info [ "unblackhole" ] ~docv:"T:AT:FROM"
        ~doc:"At T, lift a blackhole injected earlier.")

let transport_term =
  Arg.(
    value
    & opt transport_conv Gmp_live.Transport.Udp
    & info [ "transport" ] ~docv:"udp|tcp"
        ~doc:
          "Wire transport every node (and the control plane) speaks: UDP \
           datagrams or length-prefixed TCP streams.")

let bind_host_term =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "bind-host" ] ~docv:"HOST"
        ~doc:
          "Host every node binds and is addressed by (default loopback). \
           For clusters spanning hosts, run gmp-node directly with --bind \
           and --peers.")

let hb_interval_term =
  Arg.(
    value & opt float 0.5
    & info [ "hb-interval" ] ~docv:"SECS" ~doc:"Heartbeat interval.")

let hb_timeout_term =
  Arg.(
    value & opt float 2.5
    & info [ "hb-timeout" ] ~docv:"SECS" ~doc:"Heartbeat timeout.")

let rto_term =
  Arg.(
    value & opt float 0.25
    & info [ "rto" ] ~docv:"SECS"
        ~doc:"Initial ARQ retransmission timeout (nodes back off \
              exponentially from here).")

let netems_term =
  Arg.(
    value
    & opt_all netem_conv []
    & info [ "netem" ] ~docv:"T:AT:SPEC"
        ~doc:"At T seconds, retune fault injection at node AT ('all' = \
              every live node): SPEC is k=v pairs over \
              loss/latency/jitter/dup/reorder, plus peer=PID to target a \
              single incoming link. Repeatable.")

let loss_term =
  Arg.(
    value & opt float 0.0
    & info [ "loss" ] ~docv:"P"
        ~doc:"Spawn every node with this datagram loss probability.")

let latency_term =
  Arg.(
    value & opt float 0.0
    & info [ "latency" ] ~docv:"SECS"
        ~doc:"Spawn every node with this per-datagram delay.")

let jitter_term =
  Arg.(
    value & opt float 0.0
    & info [ "jitter" ] ~docv:"SECS"
        ~doc:"Delay becomes latency +/- up to this much (uniform).")

let dup_term =
  Arg.(
    value & opt float 0.0
    & info [ "dup" ] ~docv:"P" ~doc:"Datagram duplication probability.")

let reorder_term =
  Arg.(
    value & opt float 0.0
    & info [ "reorder" ] ~docv:"P"
        ~doc:"Probability a datagram is held back past its successors.")

let netem_seed_term =
  Arg.(
    value & opt int 0
    & info [ "netem-seed" ] ~docv:"SEED"
        ~doc:"Seed for the nodes' per-link fault RNG streams; rerunning \
              with the same seed replays the same per-link fault pattern.")

let dir_term =
  Arg.(
    value & opt (some string) None
    & info [ "dir" ] ~docv:"DIR"
        ~doc:"Directory for per-node event logs (default: a fresh /tmp dir).")

let node_bin_term =
  Arg.(
    value & opt (some string) None
    & info [ "node-bin" ] ~docv:"PATH"
        ~doc:"gmp-node binary (default: sibling of this executable).")

let json_term =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Machine-readable one-line JSON summary.")

let no_liveness_term =
  Arg.(
    value & flag
    & info [ "no-liveness" ]
        ~doc:"Check safety only (skip convergence and GMP-5).")

let keep_logs_term =
  Arg.(
    value & flag
    & info [ "keep-logs" ] ~doc:"Keep event logs even on a clean run.")

let verbose_term =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Node debug chatter.")

let cmd =
  let go n joiners run_for kills joins blackholes unblackholes netems
      transport bind_host hb_interval hb_timeout rto loss latency jitter dup
      reorder netem_seed dir node_bin json no_liveness keep_logs verbose =
    run_cluster n joiners run_for kills joins blackholes unblackholes netems
      transport bind_host hb_interval hb_timeout rto
      (loss, latency, jitter, dup, reorder)
      netem_seed dir node_bin json (not no_liveness) keep_logs verbose
  in
  Cmd.v
    (Cmd.info "gmp-cluster" ~version:"1.0.0"
       ~doc:
         "Run the GMP protocol as real processes over real sockets: spawn a \
          fleet of gmp-node daemons (UDP datagrams or framed TCP streams, \
          per --transport), inject SIGKILLs / joins / blackholes on \
          schedule, reassemble the per-node event logs and check \
          GMP-0..GMP-5 on the live trace.")
    Term.(
      const go $ n_term $ joiners_term $ run_for_term $ kills_term
      $ joins_term $ blackholes_term $ unblackholes_term $ netems_term
      $ transport_term $ bind_host_term $ hb_interval_term $ hb_timeout_term
      $ rto_term $ loss_term $ latency_term $ jitter_term $ dup_term
      $ reorder_term $ netem_seed_term $ dir_term $ node_bin_term $ json_term
      $ no_liveness_term $ keep_logs_term $ verbose_term)

let () = exit (Cmd.eval' cmd)
