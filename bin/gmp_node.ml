(* gmp-node: one GMP member as a real OS process.

   Runs the same [Gmp_core.Member] state machine the simulator drives, but
   on [Gmp_live.Node]: a real transport (UDP datagrams or framed TCP
   streams, chosen by --transport), wall-clock timers, ARQ channels.
   Every trace event is flushed to the --log file as a JSON line the
   moment it happens, so the log is complete (up to one torn line) even
   if the orchestrator SIGKILLs this process mid-protocol.

   Exits 0 on a clean stop (orchestrator Shutdown, protocol quit, or
   --run-for expiry); argument errors exit 124 per cmdliner convention. *)

open Gmp_base
open Gmp_core
open Cmdliner
module Endpoint = Gmp_net.Endpoint
module Transport = Gmp_live.Transport

let pid_conv =
  let parse s =
    match Pid.of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "bad pid %S (expected pN or pN#k)" s))
  in
  Arg.conv (parse, Pid.pp)

let peer_pp ppf (p, ep) = Fmt.pf ppf "%a:%a" Pid.pp p Endpoint.pp ep

let peer_conv =
  let parse s =
    Result.map_error (fun m -> `Msg m) (Gmp_live.Spec.parse_peer s)
  in
  Arg.conv (parse, peer_pp)

let peers_conv =
  let parse s =
    Result.map_error (fun m -> `Msg m) (Gmp_live.Spec.parse_peers s)
  in
  Arg.conv (parse, Fmt.list ~sep:(Fmt.any ",") peer_pp)

let endpoint_conv =
  let parse s =
    Result.map_error (fun m -> `Msg m) (Endpoint.parse_or_port s)
  in
  Arg.conv (parse, Endpoint.pp)

let transport_conv = Arg.enum [ ("udp", Transport.Udp); ("tcp", Transport.Tcp) ]

let self_term =
  Arg.(
    required
    & opt (some pid_conv) None
    & info [ "self" ] ~docv:"PID" ~doc:"This process's pid (e.g. p2, p5#1).")

let transport_term =
  Arg.(
    value & opt transport_conv Transport.Udp
    & info [ "transport" ] ~docv:"udp|tcp"
        ~doc:
          "Wire transport: UDP datagrams or length-prefixed TCP streams. \
           Every node of a cluster must agree.")

let port_term =
  Arg.(
    value & opt int 0
    & info [ "port" ] ~docv:"PORT"
        ~doc:
          "Port to bind on 127.0.0.1 (0 picks an ephemeral port). \
           Shorthand for --bind 127.0.0.1:PORT.")

let bind_term =
  Arg.(
    value
    & opt (some endpoint_conv) None
    & info [ "bind" ] ~docv:"HOST:PORT"
        ~doc:
          "Local endpoint to bind (overrides --port). Bind a non-loopback \
           address to span hosts.")

let peers_term =
  Arg.(
    value & opt_all peer_conv []
    & info [ "peer" ] ~docv:"PID:[HOST:]PORT"
        ~doc:
          "Address-book entry, repeatable; HOST defaults to 127.0.0.1. \
           Unknown peers are also learnt from their traffic, so a joiner \
           needs only its contacts.")

let peer_list_term =
  Arg.(
    value
    & opt (some peers_conv) None
    & info [ "peers" ] ~docv:"PID:[HOST:]PORT,..."
        ~doc:"Comma-separated address book; merged with --peer entries.")

let initial_term =
  Arg.(
    non_empty
    & opt (list pid_conv) []
    & info [ "initial" ] ~docv:"PIDS"
        ~doc:"The initial group membership (comma-separated pids).")

let joiner_term =
  Arg.(
    value & flag
    & info [ "joiner" ]
        ~doc:"Start with no view and request admission via --contacts.")

let contacts_term =
  Arg.(
    value
    & opt (list pid_conv) []
    & info [ "contacts" ] ~docv:"PIDS"
        ~doc:"Processes a --joiner asks for admission (round-robin).")

let hb_interval_term =
  Arg.(
    value & opt float 0.5
    & info [ "hb-interval" ] ~docv:"SECS" ~doc:"Heartbeat interval (F1).")

let hb_timeout_term =
  Arg.(
    value & opt float 2.5
    & info [ "hb-timeout" ] ~docv:"SECS"
        ~doc:"Silence before suspecting a peer; must exceed --hb-interval.")

let rto_term =
  Arg.(
    value & opt float 0.25
    & info [ "rto" ] ~docv:"SECS"
        ~doc:"Initial ARQ retransmission timeout (doubles per silent \
              round, resets on ack progress).")

let rto_max_term =
  Arg.(
    value & opt (some float) None
    & info [ "rto-max" ] ~docv:"SECS"
        ~doc:"Backoff cap for the ARQ timeout (default: 16 x --rto).")

let loss_term =
  Arg.(
    value & opt float 0.0
    & info [ "loss" ] ~docv:"P"
        ~doc:"Netem: drop each incoming datagram with probability P.")

let latency_term =
  Arg.(
    value & opt float 0.0
    & info [ "latency" ] ~docv:"SECS"
        ~doc:"Netem: delay each surviving incoming datagram by this much.")

let jitter_term =
  Arg.(
    value & opt float 0.0
    & info [ "jitter" ] ~docv:"SECS"
        ~doc:"Netem: delay is --latency +/- up to this much (uniform).")

let dup_term =
  Arg.(
    value & opt float 0.0
    & info [ "dup" ] ~docv:"P"
        ~doc:"Netem: deliver a second copy with probability P.")

let reorder_term =
  Arg.(
    value & opt float 0.0
    & info [ "reorder" ] ~docv:"P"
        ~doc:"Netem: hold a datagram back past its successors with \
              probability P (needs nonzero --latency or --jitter to bite).")

let netem_seed_term =
  Arg.(
    value & opt int 0
    & info [ "netem-seed" ] ~docv:"SEED"
        ~doc:"Seed for the per-link fault-injection RNG streams; the same \
              seed replays the same per-link fault pattern.")

let log_term =
  Arg.(
    required
    & opt (some string) None
    & info [ "log" ] ~docv:"PATH"
        ~doc:"Event log (JSON lines, one per trace event, flushed per line).")

let metrics_interval_term =
  Arg.(
    value & opt float 5.0
    & info [ "metrics-interval" ] ~docv:"SECS"
        ~doc:
          "Period between metrics snapshot lines in the event log (0 \
           disables them). A final snapshot is always written at clean \
           shutdown; the periodic lines are what survives a SIGKILL.")

let run_for_term =
  Arg.(
    value & opt (some float) None
    & info [ "run-for" ] ~docv:"SECS"
        ~doc:"Exit after this long regardless (safety stop; default: run \
              until Shutdown or protocol exit).")

let join_retry_term =
  Arg.(
    value & opt float 2.0
    & info [ "join-retry" ] ~docv:"SECS"
        ~doc:"Interval between a joiner's admission retries.")

let verbose_term =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Debug chatter on stderr.")

let main self transport port bind peers peer_list initial joiner contacts
    hb_interval hb_timeout rto rto_max loss latency jitter dup reorder
    netem_seed log_path metrics_interval run_for join_retry verbose =
  let netem =
    try
      Ok
        (Gmp_net.Netem.of_latency ~loss ~duplicate:dup ~reorder ~jitter
           latency)
    with Invalid_argument m -> Error m
  in
  match netem with
  | Error m -> `Error (false, m)
  | Ok netem ->
  if joiner && contacts = [] then
    `Error (false, "--joiner requires --contacts")
  else if hb_timeout <= hb_interval then
    `Error (false, "--hb-timeout must exceed --hb-interval")
  else begin
    let config =
      { Config.default with
        heartbeat_interval = hb_interval;
        heartbeat_timeout = hb_timeout }
    in
    let rto = Option.value (Config.arq_rto_for config self) ~default:rto in
    let log =
      if verbose then fun s ->
        Printf.eprintf "[%s] %s\n%!" (Pid.to_string self) s
      else fun _ -> ()
    in
    let bind =
      match bind with Some ep -> ep | None -> Endpoint.loopback ~port
    in
    let peers = peers @ Option.value peer_list ~default:[] in
    let node =
      Gmp_live.Node.create ~peers ~transport ~rto ?rto_max ~netem ~netem_seed
        ~log ~pid:self ~bind ()
    in
    let trace = Trace.create () in
    let writer = Gmp_live.Trace_io.attach trace ~path:log_path in
    let member =
      Member.create ~joiner
        ~node:(Gmp_live.Node.platform node)
        ~trace ~config ~initial ()
    in
    if joiner then
      Member.start_join ~retry_interval:join_retry member ~contacts;
    let platform = Gmp_live.Node.platform node in
    let write_metrics () =
      Gmp_live.Trace_io.write_metrics writer ~pid:self
        ~at:(platform.Gmp_platform.Platform.now ())
        (Gmp_live.Node.metrics node)
    in
    if metrics_interval > 0.0 then
      platform.Gmp_platform.Platform.every ~interval:metrics_interval
        write_metrics;
    log
      (Fmt.str "listening on %a (%s)" Endpoint.pp
         (Gmp_live.Node.endpoint node)
         (Gmp_live.Node.transport_kind node));
    Gmp_live.Node.run ?until:run_for node;
    log
      (Fmt.str "stopping: view v%d %a" (Member.version member)
         Fmt.(list ~sep:(any ",") Pid.pp)
         (View.members (Member.view member)));
    Gmp_live.Trace_io.write_arq writer ~pid:self
      (Gmp_live.Node.counters node);
    Gmp_live.Trace_io.write_transport writer ~pid:self
      ~kind:(Gmp_live.Node.transport_kind node)
      (Gmp_live.Node.transport_counters node);
    write_metrics ();
    Gmp_live.Trace_io.close writer;
    Gmp_live.Node.close node;
    `Ok 0
  end

let cmd =
  Cmd.v
    (Cmd.info "gmp-node" ~version:"1.0.0"
       ~doc:
         "One GMP group member as a real process (UDP datagrams or framed \
          TCP streams, wall-clock timers). Spawned in fleets by \
          gmp-cluster.")
    Term.(
      ret
        (const main $ self_term $ transport_term $ port_term $ bind_term
       $ peers_term $ peer_list_term $ initial_term $ joiner_term
       $ contacts_term $ hb_interval_term $ hb_timeout_term $ rto_term
       $ rto_max_term $ loss_term $ latency_term $ jitter_term $ dup_term
       $ reorder_term $ netem_seed_term $ log_term $ metrics_interval_term
       $ run_for_term $ join_retry_term $ verbose_term))

let () = exit (Cmd.eval' cmd)
