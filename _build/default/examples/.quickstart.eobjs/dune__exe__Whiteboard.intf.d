examples/whiteboard.mli:
