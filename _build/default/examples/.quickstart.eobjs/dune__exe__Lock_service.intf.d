examples/lock_service.mli:
