examples/monitor.mli:
