examples/replicated_kv.ml: Checker Fmt Gmp_base Gmp_core Gmp_sim Group Hashtbl List Member Pid String Wire
