examples/monitor.ml: Checker Fmt Gmp_base Gmp_core Gmp_runtime Group List Member Pid String View
