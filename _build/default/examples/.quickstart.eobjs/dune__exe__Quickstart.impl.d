examples/quickstart.ml: Checker Fmt Gmp_base Gmp_core Group List Member Pid String View
