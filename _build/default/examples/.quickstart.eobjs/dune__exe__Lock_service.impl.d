examples/lock_service.ml: Checker Fmt Gmp_base Gmp_core Gmp_runtime Group Hashtbl List Member Pid View Wire
