examples/quickstart.mli:
