examples/whiteboard.ml: Checker Fmt Gmp_base Gmp_core Gmp_vsync Group List Member Pid String
