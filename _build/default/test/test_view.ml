(* Unit tests for pids, ops, views, ranks and the majority arithmetic of §7
   (Facts 7.1-7.3, Proposition 7.1). *)

open Gmp_base
open Gmp_core

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let p i = Pid.make i

(* ---- Pid ---- *)

let test_pid_basics () =
  let a = Pid.make 3 in
  check int "id" 3 (Pid.id a);
  check int "incarnation" 0 (Pid.incarnation a);
  check Alcotest.string "to_string" "p3" (Pid.to_string a);
  let a' = Pid.reincarnate a in
  check int "same id" 3 (Pid.id a');
  check int "next incarnation" 1 (Pid.incarnation a');
  check Alcotest.string "to_string with incarnation" "p3#1" (Pid.to_string a');
  check bool "instances differ" false (Pid.equal a a')

let test_pid_order () =
  check bool "id order" true (Pid.compare (p 1) (p 2) < 0);
  check bool "incarnation order" true
    (Pid.compare (p 1) (Pid.reincarnate (p 1)) < 0);
  check bool "equal" true (Pid.equal (p 1) (p 1))

let test_pid_group () =
  let g = Pid.group 4 in
  check int "size" 4 (List.length g);
  check Alcotest.string "first" "p0" (Pid.to_string (List.hd g))

(* ---- ops and seqs ---- *)

let test_op_helpers () =
  check bool "target of add" true
    (Pid.equal (Types.op_target (Types.Add (p 1))) (p 1));
  check bool "remove vs add differ" false
    (Types.op_equal (Types.Add (p 1)) (Types.Remove (p 1)));
  check bool "is_remove" true (Types.is_remove (Types.Remove (p 1)))

let test_seq_prefix () =
  let s1 = [ Types.Remove (p 1); Types.Add (p 5) ] in
  let s2 = s1 @ [ Types.Remove (p 2) ] in
  check bool "prefix" true (Types.is_prefix ~prefix:s1 s2);
  check bool "not prefix backwards" false (Types.is_prefix ~prefix:s2 s1);
  check bool "empty is prefix" true (Types.is_prefix ~prefix:[] s1);
  check bool "self prefix" true (Types.is_prefix ~prefix:s2 s2);
  let s3 = [ Types.Remove (p 1); Types.Remove (p 5) ] in
  check bool "diverging not prefix" false (Types.is_prefix ~prefix:s3 s2)

let test_seq_drop () =
  let s = [ Types.Remove (p 1); Types.Add (p 5); Types.Remove (p 2) ] in
  check int "drop 1" 2 (List.length (Types.seq_drop 1 s));
  check int "drop all" 0 (List.length (Types.seq_drop 3 s));
  check int "drop beyond" 0 (List.length (Types.seq_drop 10 s));
  check int "drop none" 3 (List.length (Types.seq_drop 0 s))

(* ---- View ---- *)

let v5 () = View.initial (Pid.group 5)

let test_view_basics () =
  let v = v5 () in
  check int "size" 5 (View.size v);
  check bool "mem" true (View.mem v (p 3));
  check bool "mgr is most senior" true (Pid.equal (View.mgr v) (p 0))

let test_view_rank () =
  let v = v5 () in
  check int "mgr rank = |view|" 5 (View.rank v (p 0));
  check int "junior rank = 1" 1 (View.rank v (p 4));
  check int "middle" 3 (View.rank v (p 2));
  check bool "rank of non-member undefined" true
    (try ignore (View.rank v (p 9)); false with Not_found -> true)

let test_view_rank_promotion () =
  (* §4.2: removing a process raises the rank of everyone junior to it;
     relative ranks of survivors never change. *)
  let v = v5 () in
  let v' = View.remove v (p 1) in
  check int "senior unchanged" 4 (View.rank v' (p 0));
  check int "junior promoted" 1 (View.rank v' (p 4));
  check int "p2 promoted" 3 (View.rank v' (p 2));
  check bool "relative order maintained" true
    (View.rank v' (p 2) > View.rank v' (p 3))

let test_view_higher_ranked () =
  let v = v5 () in
  check int "mgr has none above" 0 (List.length (View.higher_ranked v (p 0)));
  check int "junior has all above" 4 (List.length (View.higher_ranked v (p 4)));
  check (Alcotest.list Alcotest.string) "order is seniority"
    [ "p0"; "p1" ]
    (List.map Pid.to_string (View.higher_ranked v (p 2)))

let test_view_add_gets_lowest_rank () =
  let v = View.add (v5 ()) (p 9) in
  check int "new member rank 1" 1 (View.rank v (p 9));
  check int "mgr rank grew" 6 (View.rank v (p 0))

let test_view_apply () =
  let v = View.apply_all (v5 ()) [ Types.Remove (p 2); Types.Add (p 7) ] in
  check bool "removed" false (View.mem v (p 2));
  check bool "added" true (View.mem v (p 7));
  check int "size" 5 (View.size v)

let test_view_of_seq () =
  let v = View.of_seq ~initial:(Pid.group 3) [ Types.Remove (p 0) ] in
  check bool "mgr removed" true (Pid.equal (View.mgr v) (p 1))

let test_view_duplicates_rejected () =
  check bool "of_list" true
    (try ignore (View.of_list [ p 1; p 1 ]); false
     with Invalid_argument _ -> true);
  check bool "add existing" true
    (try ignore (View.add (v5 ()) (p 1)); false
     with Invalid_argument _ -> true)

let test_view_remove_idempotent () =
  let v = View.remove (v5 ()) (p 9) in
  check int "removing a non-member is a no-op" 5 (View.size v)

(* ---- majority arithmetic (§7, Facts 7.1-7.3, Prop 7.1) ---- *)

let mu n = (n / 2) + 1

let test_majority_values () =
  check int "mu(5)" 3 (View.majority (v5 ()));
  check int "mu(4)" 3 (View.majority (View.initial (Pid.group 4)));
  check int "mu(1)" 1 (View.majority (View.initial (Pid.group 1)))

let test_fact_7_1_7_2 () =
  for n = 1 to 100 do
    if n mod 2 = 0 then check int "even: 2mu = n+2" (n + 2) (2 * mu n)
    else check int "odd: 2mu = n+1" (n + 1) (2 * mu n)
  done

let test_prop_7_1 () =
  (* |S'| = |S| + 1 implies mu(S) + mu(S') > |S'|: majority subsets of
     neighbouring views intersect. *)
  for n = 1 to 200 do
    check bool "mu(n) + mu(n+1) > n+1" true (mu n + mu (n + 1) > n + 1)
  done

let test_neighbouring_majorities_intersect_concretely () =
  (* Exhaustive check for small sizes: any mu(n)-subset of [0..n-1] and any
     mu(n+1)-subset of [0..n] share an element. *)
  let rec subsets k xs =
    if k = 0 then [ [] ]
    else
      match xs with
      | [] -> []
      | x :: rest ->
        List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest
  in
  List.iter
    (fun n ->
      let small = List.init n (fun i -> i) in
      let big = List.init (n + 1) (fun i -> i) in
      let smalls = subsets (mu n) small in
      let bigs = subsets (mu (n + 1)) big in
      List.iter
        (fun s ->
          List.iter
            (fun b ->
              check bool "intersect" true
                (List.exists (fun x -> List.mem x b) s))
            bigs)
        smalls)
    [ 2; 3; 4; 5 ]

let suite =
  [ Alcotest.test_case "pid: basics" `Quick test_pid_basics;
    Alcotest.test_case "pid: order" `Quick test_pid_order;
    Alcotest.test_case "pid: group" `Quick test_pid_group;
    Alcotest.test_case "op: helpers" `Quick test_op_helpers;
    Alcotest.test_case "seq: prefix" `Quick test_seq_prefix;
    Alcotest.test_case "seq: drop" `Quick test_seq_drop;
    Alcotest.test_case "view: basics" `Quick test_view_basics;
    Alcotest.test_case "view: rank" `Quick test_view_rank;
    Alcotest.test_case "view: rank promotion on removal" `Quick
      test_view_rank_promotion;
    Alcotest.test_case "view: higher_ranked" `Quick test_view_higher_ranked;
    Alcotest.test_case "view: add gets lowest rank" `Quick
      test_view_add_gets_lowest_rank;
    Alcotest.test_case "view: apply ops" `Quick test_view_apply;
    Alcotest.test_case "view: of_seq" `Quick test_view_of_seq;
    Alcotest.test_case "view: duplicates rejected" `Quick
      test_view_duplicates_rejected;
    Alcotest.test_case "view: remove idempotent" `Quick
      test_view_remove_idempotent;
    Alcotest.test_case "majority: values" `Quick test_majority_values;
    Alcotest.test_case "majority: Facts 7.1/7.2" `Quick test_fact_7_1_7_2;
    Alcotest.test_case "majority: Proposition 7.1" `Quick test_prop_7_1;
    Alcotest.test_case "majority: concrete intersection" `Slow
      test_neighbouring_majorities_intersect_concretely ]
