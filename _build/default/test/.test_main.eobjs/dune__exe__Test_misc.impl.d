test/test_misc.ml: Alcotest Fmt Gmp_base Gmp_core Gmp_sim Group List Member Pid String Trace Types Wire
