test/test_epistemic.ml: Alcotest Epistemic Gmp_base Gmp_causality Gmp_core Group List Pid Trace Vector_clock
