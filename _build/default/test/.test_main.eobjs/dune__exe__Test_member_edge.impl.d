test/test_member_edge.ml: Alcotest Array Checker Config Gmp_base Gmp_core Gmp_net Gmp_sim Group Int List Member Pid Printf Trace View Wire
