test/test_knowledge.ml: Alcotest Checker Gmp_base Gmp_causality Gmp_core Group Knowledge List Pid Printf Trace Vector_clock
