test/test_view.ml: Alcotest Gmp_base Gmp_core List Pid Types View
