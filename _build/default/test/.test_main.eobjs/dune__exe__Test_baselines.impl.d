test/test_baselines.ml: Alcotest Gmp_base Gmp_baselines Gmp_core Gmp_workload List Pid Printf
