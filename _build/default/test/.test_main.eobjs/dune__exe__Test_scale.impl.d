test/test_scale.ml: Alcotest Checker Config Gmp_base Gmp_core Gmp_net Group List Pid
