test/test_arq.ml: Alcotest Arq Delay Gmp_base Gmp_net Gmp_sim List Lossy Pid QCheck QCheck_alcotest
