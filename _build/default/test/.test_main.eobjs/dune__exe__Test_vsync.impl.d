test/test_vsync.ml: Alcotest Checker Fmt Gmp_base Gmp_core Gmp_sim Gmp_vsync Group List Member Pid
