test/test_runtime.ml: Alcotest Gmp_base Gmp_causality Gmp_net Gmp_runtime Int List Pid
