test/test_causality.ml: Alcotest Cut Gmp_base Gmp_causality Gmp_runtime Lamport List Pid Vector_clock
