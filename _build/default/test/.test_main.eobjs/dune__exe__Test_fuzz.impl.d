test/test_fuzz.ml: Alcotest Config Fmt Gmp_core Gmp_sim Gmp_workload Group List
