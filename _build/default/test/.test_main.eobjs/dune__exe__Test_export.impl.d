test/test_export.ml: Alcotest Export Float Gmp_base Gmp_core Group Json Pid String
