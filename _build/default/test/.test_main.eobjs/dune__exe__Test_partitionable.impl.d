test/test_partitionable.ml: Alcotest Checker Config Gmp_base Gmp_core Group List Member Pid View
