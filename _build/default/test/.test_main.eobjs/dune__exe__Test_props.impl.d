test/test_props.ml: Checker Fmt Fun Gmp_base Gmp_causality Gmp_core Gmp_sim Gmp_vsync Gmp_workload Group Int Knowledge List Member Pid QCheck QCheck_alcotest Roster Types Vector_clock View
