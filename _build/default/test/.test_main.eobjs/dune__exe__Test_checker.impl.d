test/test_checker.ml: Alcotest Checker Gmp_base Gmp_causality Gmp_core Gmp_workload Hashtbl List Pid Trace Vector_clock
