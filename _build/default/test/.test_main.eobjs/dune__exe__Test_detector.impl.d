test/test_detector.ml: Alcotest Gmp_base Gmp_detector Gmp_sim Heartbeat List Pid Scripted
