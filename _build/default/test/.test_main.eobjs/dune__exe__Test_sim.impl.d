test/test_sim.ml: Alcotest Engine Event_queue Float Gmp_sim List Rng
