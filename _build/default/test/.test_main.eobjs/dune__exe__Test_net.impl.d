test/test_net.ml: Alcotest Delay Gmp_base Gmp_net Gmp_sim List Network Pid Stats
