test/test_member.ml: Alcotest Checker Config Fmt Gmp_base Gmp_core Gmp_net Gmp_runtime Gmp_workload Group List Member Pid Printf Trace View
