test/test_roster.ml: Alcotest Checker Gmp_base Gmp_core Group List Member Pid Roster
