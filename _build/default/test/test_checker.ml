(* Unit tests for the GMP checkers themselves: hand-built traces that do and
   do not violate each property. A checker that cannot reject bad traces
   proves nothing about good ones. *)

open Gmp_base
open Gmp_core
open Gmp_causality

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let p i = Pid.make i

(* Minimal trace builder: vector clocks are synthesized per owner. *)
let build events =
  let trace = Trace.create () in
  let counters = Hashtbl.create 8 in
  List.iteri
    (fun i (owner, kind) ->
      let idx =
        let current =
          match Hashtbl.find_opt counters (Pid.to_string owner) with
          | None -> 0
          | Some n -> n
        in
        Hashtbl.replace counters (Pid.to_string owner) (current + 1);
        current + 1
      in
      Trace.record trace ~owner ~index:idx ~time:(float_of_int i)
        ~vc:(Vector_clock.of_list [ (owner, idx) ])
        kind)
    events;
  trace

let installed ver members = Trace.Installed { ver; view_members = members }

let two = [ p 0; p 1 ]

let test_gmp0_ok () =
  let trace = build [ (p 0, installed 0 two); (p 1, installed 0 two) ] in
  check int "clean" 0 (List.length (Checker.check_gmp0 trace ~initial:two))

let test_gmp0_wrong_initial_view () =
  let trace = build [ (p 0, installed 0 [ p 0 ]); (p 1, installed 0 two) ] in
  check int "flagged" 1 (List.length (Checker.check_gmp0 trace ~initial:two))

let test_gmp0_missing_install () =
  let trace = build [ (p 0, installed 0 two) ] in
  check int "p1 never installed" 1
    (List.length (Checker.check_gmp0 trace ~initial:two))

let test_gmp0_joiner_exempt () =
  (* A joiner's first install is a later version: not a GMP-0 violation
     because it is not in the initial set. *)
  let trace =
    build
      [ (p 0, installed 0 two); (p 1, installed 0 two); (p 9, installed 3 two) ]
  in
  check int "clean" 0 (List.length (Checker.check_gmp0 trace ~initial:two))

let test_gmp1_ok () =
  let trace =
    build
      [ (p 0, Trace.Faulty (p 1));
        (p 0, Trace.Removed { target = p 1; new_ver = 1 }) ]
  in
  check int "clean" 0 (List.length (Checker.check_gmp1 trace))

let test_gmp1_capricious_removal () =
  let trace = build [ (p 0, Trace.Removed { target = p 1; new_ver = 1 }) ] in
  check int "flagged" 1 (List.length (Checker.check_gmp1 trace))

let test_gmp1_wrong_order () =
  let trace =
    build
      [ (p 0, Trace.Removed { target = p 1; new_ver = 1 });
        (p 0, Trace.Faulty (p 1)) ]
  in
  check int "faulty after removal is too late" 1
    (List.length (Checker.check_gmp1 trace))

let test_gmp23_agreement_ok () =
  let trace =
    build
      [ (p 0, installed 1 [ p 0 ]); (p 1, installed 1 [ p 0 ]) ]
  in
  check int "clean" 0 (List.length (Checker.check_gmp23 trace))

let test_gmp23_divergent_version () =
  let trace =
    build [ (p 0, installed 1 [ p 0 ]); (p 1, installed 1 [ p 1 ]) ] in
  check int "flagged" 1 (List.length (Checker.check_gmp23 trace))

let test_gmp23_skipped_version () =
  let trace =
    build [ (p 0, installed 0 two); (p 0, installed 2 [ p 0 ]) ]
  in
  check int "gap flagged" 1 (List.length (Checker.check_gmp23 trace))

let test_gmp4_ok () =
  let trace =
    build
      [ (p 0, installed 0 two);
        (p 0, installed 1 [ p 0 ]);
        (p 0, installed 2 [ p 0; p 2 ]) ]
  in
  check int "clean (p2 is new, p1 stays out)" 0
    (List.length (Checker.check_gmp4 trace))

let test_gmp4_reinstatement () =
  let trace =
    build
      [ (p 0, installed 0 two);
        (p 0, installed 1 [ p 0 ]);
        (p 0, installed 2 two) ]
  in
  check int "re-instatement flagged" 1 (List.length (Checker.check_gmp4 trace))

let test_gmp4_reincarnation_allowed () =
  let p1' = Pid.reincarnate (p 1) in
  let trace =
    build
      [ (p 0, installed 0 two);
        (p 0, installed 1 [ p 0 ]);
        (p 0, installed 2 [ p 0; p1' ]) ]
  in
  check int "new incarnation is a different process" 0
    (List.length (Checker.check_gmp4 trace))

let test_gmp5_ok () =
  let trace = build [ (p 0, Trace.Faulty (p 1)) ] in
  check int "clean when suspect is out" 0
    (List.length (Checker.check_gmp5 trace ~final_view:[ p 0; p 2 ]))

let test_gmp5_unresolved () =
  let trace = build [ (p 0, Trace.Faulty (p 1)) ] in
  check int "flagged when both stay" 1
    (List.length (Checker.check_gmp5 trace ~final_view:[ p 0; p 1 ]))

let test_gmp5_observer_out () =
  let trace = build [ (p 0, Trace.Faulty (p 1)) ] in
  check int "clean when observer is out" 0
    (List.length (Checker.check_gmp5 trace ~final_view:[ p 1; p 2 ]))

let test_convergence_checks () =
  let sv = [ (p 0, 2, [ p 0; p 1 ]); (p 1, 2, [ p 0; p 1 ]) ] in
  check int "agreeing views clean" 0
    (List.length (Checker.check_convergence ~surviving_views:sv ~dead:[ p 2 ]));
  let sv_bad = [ (p 0, 2, [ p 0; p 1 ]); (p 1, 1, [ p 0; p 1 ]) ] in
  check bool "version disagreement flagged" true
    (Checker.check_convergence ~surviving_views:sv_bad ~dead:[] <> []);
  check bool "dead member in view flagged" true
    (Checker.check_convergence ~surviving_views:sv ~dead:[ p 1 ] <> []);
  let sv_missing = [ (p 0, 2, [ p 0 ]); (p 1, 2, [ p 0 ]) ] in
  check bool "operational process missing from view flagged" true
    (Checker.check_convergence ~surviving_views:sv_missing ~dead:[] <> [])

let test_internal_violations_surface () =
  let trace = build [ (p 0, Trace.Violation "boom") ] in
  check int "surfaced" 1 (List.length (Checker.check_internal trace))

let test_checkers_catch_one_phase_divergence () =
  (* End-to-end: the one-phase baseline's proof-schedule run must be flagged
     by the same checkers that pass the real protocol. *)
  let violations, _views = Gmp_workload.Scenario.one_phase_split ~n:5 () in
  check bool "divergence detected" true (violations <> [])

let test_checkers_catch_two_phase_guess () =
  let violations, _views = Gmp_workload.Scenario.two_phase_fig11 () in
  check bool "figure 11 divergence detected" true (violations <> [])

let suite =
  [ Alcotest.test_case "gmp0: ok" `Quick test_gmp0_ok;
    Alcotest.test_case "gmp0: wrong initial view" `Quick
      test_gmp0_wrong_initial_view;
    Alcotest.test_case "gmp0: missing install" `Quick test_gmp0_missing_install;
    Alcotest.test_case "gmp0: joiner exempt" `Quick test_gmp0_joiner_exempt;
    Alcotest.test_case "gmp1: ok" `Quick test_gmp1_ok;
    Alcotest.test_case "gmp1: capricious removal" `Quick
      test_gmp1_capricious_removal;
    Alcotest.test_case "gmp1: wrong order" `Quick test_gmp1_wrong_order;
    Alcotest.test_case "gmp2/3: agreement" `Quick test_gmp23_agreement_ok;
    Alcotest.test_case "gmp2/3: divergent version" `Quick
      test_gmp23_divergent_version;
    Alcotest.test_case "gmp2/3: skipped version" `Quick test_gmp23_skipped_version;
    Alcotest.test_case "gmp4: ok" `Quick test_gmp4_ok;
    Alcotest.test_case "gmp4: re-instatement" `Quick test_gmp4_reinstatement;
    Alcotest.test_case "gmp4: reincarnation allowed" `Quick
      test_gmp4_reincarnation_allowed;
    Alcotest.test_case "gmp5: resolved" `Quick test_gmp5_ok;
    Alcotest.test_case "gmp5: unresolved" `Quick test_gmp5_unresolved;
    Alcotest.test_case "gmp5: observer excluded" `Quick test_gmp5_observer_out;
    Alcotest.test_case "convergence checks" `Quick test_convergence_checks;
    Alcotest.test_case "internal violations surface" `Quick
      test_internal_violations_surface;
    Alcotest.test_case "catches one-phase divergence" `Quick
      test_checkers_catch_one_phase_divergence;
    Alcotest.test_case "catches two-phase guess" `Quick
      test_checkers_catch_two_phase_guess ]
