(* Unit tests for the simulation substrate: PRNG, event queue, engine. *)

open Gmp_sim

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  check bool "different seeds differ" true (xs <> ys)

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    check bool "in [0,10)" true (x >= 0 && x < 10);
    let f = Rng.float rng 2.5 in
    check bool "float in [0,2.5)" true (f >= 0.0 && f < 2.5)
  done

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  (* Drawing from the child must not change the parent's future draws
     relative to a parent that split but never used the child. *)
  let parent' = Rng.create 5 in
  let _child' = Rng.split parent' in
  for _ = 1 to 10 do
    ignore (Rng.int child 100)
  done;
  check int "parent unaffected by child draws" (Rng.int parent' 1000)
    (Rng.int parent 1000)

let test_rng_exponential_positive () =
  let rng = Rng.create 11 in
  for _ = 1 to 500 do
    check bool "positive" true (Rng.exponential rng ~mean:3.0 > 0.0)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  check bool "sample mean near 4.0" true (mean > 3.7 && mean < 4.3)

let test_rng_pick_shuffle () =
  let rng = Rng.create 17 in
  let xs = [ 1; 2; 3; 4; 5 ] in
  for _ = 1 to 50 do
    check bool "pick from list" true (List.mem (Rng.pick rng xs) xs)
  done;
  let shuffled = Rng.shuffle rng xs in
  check int "shuffle preserves length" 5 (List.length shuffled);
  check bool "shuffle preserves elements" true
    (List.sort compare shuffled = xs)

let test_rng_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "pick []" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick rng ([] : int list)))

(* ---- Event_queue ---- *)

let test_queue_ordering () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:3.0 "c";
  Event_queue.add q ~time:1.0 "a";
  Event_queue.add q ~time:2.0 "b";
  check (Alcotest.option (Alcotest.pair (Alcotest.float 0.0) Alcotest.string))
    "pop a" (Some (1.0, "a")) (Event_queue.pop q);
  check (Alcotest.option (Alcotest.pair (Alcotest.float 0.0) Alcotest.string))
    "pop b" (Some (2.0, "b")) (Event_queue.pop q);
  check (Alcotest.option (Alcotest.pair (Alcotest.float 0.0) Alcotest.string))
    "pop c" (Some (3.0, "c")) (Event_queue.pop q);
  check bool "empty" true (Event_queue.pop q = None)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun s -> Event_queue.add q ~time:1.0 s) [ "x"; "y"; "z" ];
  let order =
    List.init 3 (fun _ ->
        match Event_queue.pop q with Some (_, s) -> s | None -> "?")
  in
  check (Alcotest.list Alcotest.string) "insertion order on ties"
    [ "x"; "y"; "z" ] order

let test_queue_interleaved () =
  let q = Event_queue.create () in
  (* Interleave adds and pops; verify global ordering of what comes out. *)
  let popped = ref [] in
  let pop_one () =
    match Event_queue.pop q with
    | Some (t, _) -> popped := t :: !popped
    | None -> ()
  in
  Event_queue.add q ~time:5.0 0;
  Event_queue.add q ~time:1.0 0;
  pop_one ();
  Event_queue.add q ~time:0.5 0;
  Event_queue.add q ~time:4.0 0;
  pop_one ();
  pop_one ();
  pop_one ();
  check (Alcotest.list (Alcotest.float 0.0)) "pop order" [ 1.0; 0.5; 4.0; 5.0 ]
    (List.rev !popped)

let test_queue_growth () =
  let q = Event_queue.create () in
  for i = 999 downto 0 do
    Event_queue.add q ~time:(float_of_int i) i
  done;
  check int "length" 1000 (Event_queue.length q);
  let last = ref (-1.0) in
  let sorted = ref true in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (t, _) ->
      if t < !last then sorted := false;
      last := t;
      drain ()
  in
  drain ();
  check bool "drained in order" true !sorted

let test_queue_invalid_time () =
  let q = Event_queue.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Event_queue.add: bad time")
    (fun () -> Event_queue.add q ~time:(-1.0) ());
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.add: bad time")
    (fun () -> Event_queue.add q ~time:Float.nan ())

let test_queue_snapshot () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:2.0 "b";
  Event_queue.add q ~time:1.0 "a";
  let snapshot = Event_queue.to_sorted_list q in
  check int "snapshot size" 2 (List.length snapshot);
  check int "queue untouched" 2 (Event_queue.length q);
  check (Alcotest.float 0.0) "first is earliest" 1.0 (fst (List.hd snapshot))

(* ---- Engine ---- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  let note s () = log := s :: !log in
  ignore (Engine.schedule e ~delay:2.0 (note "b"));
  ignore (Engine.schedule e ~delay:1.0 (note "a"));
  ignore (Engine.schedule e ~delay:3.0 (note "c"));
  Engine.run e;
  check (Alcotest.list Alcotest.string) "order" [ "a"; "b"; "c" ]
    (List.rev !log)

let test_engine_now_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  ignore (Engine.schedule e ~delay:1.5 (fun () -> seen := Engine.now e :: !seen));
  ignore (Engine.schedule e ~delay:4.0 (fun () -> seen := Engine.now e :: !seen));
  Engine.run e;
  check (Alcotest.list (Alcotest.float 1e-9)) "times" [ 1.5; 4.0 ]
    (List.rev !seen)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  check bool "cancelled event did not fire" false !fired;
  check bool "is_cancelled" true (Engine.is_cancelled h)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec chain n () =
    incr count;
    if n > 0 then ignore (Engine.schedule e ~delay:1.0 (chain (n - 1)))
  in
  ignore (Engine.schedule e ~delay:1.0 (chain 9));
  Engine.run e;
  check int "chain of 10" 10 !count;
  check (Alcotest.float 1e-9) "final time" 10.0 (Engine.now e)

let test_engine_horizon () =
  let e = Engine.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~delay:(float_of_int i) (fun () -> incr fired))
  done;
  Engine.run ~until:5.5 e;
  check int "only events before horizon" 5 !fired;
  check (Alcotest.float 1e-9) "now at horizon" 5.5 (Engine.now e);
  Engine.run e;
  check int "rest fire on resume" 10 !fired

let test_engine_stop () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:2.0 (fun () -> raise Engine.Stop));
  ignore (Engine.schedule e ~delay:3.0 (fun () -> incr fired));
  Engine.run e;
  check int "stopped before third" 1 !fired

let test_engine_max_steps () =
  let e = Engine.create () in
  let rec forever () = ignore (Engine.schedule e ~delay:1.0 forever) in
  ignore (Engine.schedule e ~delay:1.0 forever);
  check bool "livelock guard trips" true
    (try
       Engine.run ~max_steps:100 e;
       false
     with Failure _ -> true)

let test_engine_past_schedule () =
  let e = Engine.create () in
  ignore
    (Engine.schedule e ~delay:5.0 (fun () ->
         check bool "schedule_at past raises" true
           (try
              ignore (Engine.schedule_at e ~time:1.0 (fun () -> ()));
              false
            with Invalid_argument _ -> true)));
  Engine.run e

let test_engine_step () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:2.0 (fun () -> incr fired));
  check bool "step fires one" true (Engine.step e);
  check int "one fired" 1 !fired;
  check bool "step fires second" true (Engine.step e);
  check bool "queue drained" false (Engine.step e)

let suite =
  [ Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng: bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: exponential positive" `Quick
      test_rng_exponential_positive;
    Alcotest.test_case "rng: exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng: pick and shuffle" `Quick test_rng_pick_shuffle;
    Alcotest.test_case "rng: invalid args" `Quick test_rng_invalid;
    Alcotest.test_case "queue: ordering" `Quick test_queue_ordering;
    Alcotest.test_case "queue: FIFO on ties" `Quick test_queue_fifo_ties;
    Alcotest.test_case "queue: interleaved" `Quick test_queue_interleaved;
    Alcotest.test_case "queue: growth to 1000" `Quick test_queue_growth;
    Alcotest.test_case "queue: invalid time" `Quick test_queue_invalid_time;
    Alcotest.test_case "queue: snapshot" `Quick test_queue_snapshot;
    Alcotest.test_case "engine: ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine: now advances" `Quick test_engine_now_advances;
    Alcotest.test_case "engine: cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine: nested scheduling" `Quick
      test_engine_nested_scheduling;
    Alcotest.test_case "engine: horizon" `Quick test_engine_horizon;
    Alcotest.test_case "engine: stop" `Quick test_engine_stop;
    Alcotest.test_case "engine: livelock guard" `Quick test_engine_max_steps;
    Alcotest.test_case "engine: no scheduling in the past" `Quick
      test_engine_past_schedule;
    Alcotest.test_case "engine: single step" `Quick test_engine_step ]
