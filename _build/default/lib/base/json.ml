(* A minimal JSON document builder and printer (no external dependencies).

   Used to export traces, statistics and measurements for analysis outside
   the simulator (plotting, diffing runs). Encoding only - the repository
   never needs to parse JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let null = Null
let bool b = Bool b
let int i = Int i
let float f = Float f
let string s = String s
let list xs = List xs
let obj fields = Obj fields

let of_option f = function None -> Null | Some x -> f x

let escape s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null" (* JSON has no NaN *)
  else if Float.is_integer (f *. 1e6) then Printf.sprintf "%g" f
  else Printf.sprintf "%.9g" f

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.string ppf (float_literal f)
  | String s -> Fmt.pf ppf "\"%s\"" (escape s)
  | List xs -> Fmt.pf ppf "[@[<hv>%a@]]" Fmt.(list ~sep:(any ",@ ") pp) xs
  | Obj fields ->
    let pp_field ppf (k, v) = Fmt.pf ppf "\"%s\":@ %a" (escape k) pp v in
    Fmt.pf ppf "{@[<hv>%a@]}" Fmt.(list ~sep:(any ",@ ") pp_field) fields

let to_string t = Fmt.str "%a" pp t
