(** Minimal dependency-free JSON builder and printer (encoding only). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val null : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val string : string -> t
val list : t list -> t
val obj : (string * t) list -> t
val of_option : ('a -> t) -> 'a option -> t
val pp : t Fmt.t
val to_string : t -> string
