(* Process identifiers. The paper treats a recovered process as "a new and
   different process instance"; the incarnation number realizes that: p3#0 and
   p3#1 are different processes sharing a host name. *)

module T = struct
  type t = { id : int; incarnation : int }

  let compare a b =
    match Int.compare a.id b.id with
    | 0 -> Int.compare a.incarnation b.incarnation
    | c -> c
end

include T

let make ?(incarnation = 0) id =
  if id < 0 then invalid_arg "Pid.make: negative id";
  if incarnation < 0 then invalid_arg "Pid.make: negative incarnation";
  { id; incarnation }

let id t = t.id
let incarnation t = t.incarnation

let reincarnate t = { t with incarnation = t.incarnation + 1 }

let equal a b = compare a b = 0

let to_string t =
  if t.incarnation = 0 then Printf.sprintf "p%d" t.id
  else Printf.sprintf "p%d#%d" t.id t.incarnation

let pp ppf t = Fmt.string ppf (to_string t)

module Set = struct
  include Set.Make (T)

  let pp ppf s =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") pp) (elements s)
end

module Map = Map.Make (T)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash t = (t.id * 65599) + t.incarnation
end)

let group ?(incarnation = 0) n =
  if n < 0 then invalid_arg "Pid.group: negative size";
  List.init n (fun i -> make ~incarnation i)
