lib/base/pid.ml: Fmt Hashtbl Int List Map Printf Set
