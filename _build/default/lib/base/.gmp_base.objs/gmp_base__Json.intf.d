lib/base/json.mli: Fmt
