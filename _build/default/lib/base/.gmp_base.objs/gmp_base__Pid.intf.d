lib/base/pid.mli: Fmt Hashtbl Map Set
