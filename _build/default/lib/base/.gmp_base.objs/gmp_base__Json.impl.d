lib/base/json.ml: Buffer Char Float Fmt Printf String
