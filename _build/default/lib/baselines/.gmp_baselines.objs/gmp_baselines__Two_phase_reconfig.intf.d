lib/baselines/two_phase_reconfig.mli: Gmp_base Gmp_core Gmp_net Pid
