lib/baselines/one_phase.ml: Gmp_base Gmp_core Gmp_net Gmp_runtime Gmp_sim List Pid
