lib/baselines/two_phase_reconfig.ml: Gmp_base Gmp_core Gmp_net Gmp_runtime Gmp_sim List Pid
