lib/baselines/one_phase.mli: Gmp_base Gmp_core Gmp_net Pid
