lib/baselines/symmetric.mli: Gmp_base Gmp_core Gmp_net Pid
