(** One-phase membership baseline (Claim 7.1).

    The coordinator broadcasts removals directly, with no acknowledgement
    round; whoever believes all higher-ranked processes faulty takes over.
    The paper proves this cannot solve GMP when the coordinator can fail:
    under the proof's split schedule the two sides install different views
    for the same version (GMP-3 violated), which the shared
    {!Gmp_core.Checker} flags on the recorded trace. *)

open Gmp_base

type t

val create : ?delay:Gmp_net.Delay.t -> ?seed:int -> n:int -> unit -> t
val trace : t -> Gmp_core.Trace.t
val initial : t -> Pid.t list

val suspect_at : t -> float -> observer:Pid.t -> target:Pid.t -> unit
val partition_at : t -> float -> Pid.t list list -> unit
val run : ?until:float -> t -> unit

val views : t -> (Pid.t * int * Pid.t list) list
(** Final [(pid, version, members)] of every process. *)
