(** Symmetric membership baseline, in the style of Bruso [5].

    No coordinator: every process floods its suspicions and removes a
    process once every view member has voted it out - about [(n-1)^2]
    messages per exclusion, the "order of magnitude more messages in all
    situations" the paper charges symmetric solutions with (§1, §8). *)

open Gmp_base

type t

val create : ?delay:Gmp_net.Delay.t -> ?seed:int -> n:int -> unit -> t
val trace : t -> Gmp_core.Trace.t
val stats : t -> Gmp_net.Stats.t

val crash_at : t -> float -> Pid.t -> unit
val suspect_at : t -> float -> observer:Pid.t -> target:Pid.t -> unit
val run : ?until:float -> t -> unit

val views : t -> (Pid.t * int * Pid.t list) list
(** Final [(pid, version, members)] of the live processes. *)

val messages : t -> int
(** Suspicion messages sent. *)
