(** Two-phase reconfiguration baseline (Claim 7.2, Figure 11).

    The real update algorithm, but reconfiguration is Interrogate then
    Commit - no Propose round. Without the proposal phase an initiator's
    concrete plan never registers in the survivors' [next()] lists, so a
    later reconfigurer that detects two possible in-flight changes cannot
    tell which one may have been committed invisibly and must guess (here:
    trust the highest-ranked proposer). The Figure 11 schedule makes the
    guess wrong - a GMP-3 violation the shared {!Gmp_core.Checker} flags -
    while the identical schedule through the real three-phase protocol
    stays consistent. *)

open Gmp_base

type t

val create : ?delay:Gmp_net.Delay.t -> ?seed:int -> n:int -> unit -> t
val trace : t -> Gmp_core.Trace.t
val initial : t -> Pid.t list

val crash_at : t -> float -> Pid.t -> unit
val suspect_at : t -> float -> observer:Pid.t -> target:Pid.t -> unit

val exclusion_at : t -> float -> coordinator:Pid.t -> victim:Pid.t -> unit
(** Have the coordinator start a two-phase exclusion. *)

val reconf_at : t -> float -> Pid.t -> unit
(** Have a process start the (two-phase) reconfiguration. *)

val partition_at : t -> float -> Pid.t list list -> unit
val run : ?until:float -> t -> unit

val views : t -> (Pid.t * int * Pid.t list) list
(** Final [(pid, version, members)] of every process. *)
