lib/workload/scenario.ml: Gmp_base Gmp_baselines Gmp_core Gmp_net Gmp_sim List Pid
