lib/workload/fuzz.mli: Fmt Gmp_core Gmp_sim
