lib/workload/fuzz.ml: Fmt Gmp_base Gmp_core Gmp_sim List Pid
