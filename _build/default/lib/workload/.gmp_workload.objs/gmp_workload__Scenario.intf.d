lib/workload/scenario.mli: Checker Gmp_base Gmp_core Group Pid
