(* View-synchronous multicast on top of the membership service.

   The paper's membership protocol is the foundation of the ISIS-style
   virtual synchrony the authors' group built ([3], [4]): application
   messages are delivered "within the view they were sent in", and all
   processes that survive a view change deliver the same set of messages
   before moving on. This module provides that discipline over Member's
   application channel:

   - every multicast is tagged with the epoch (app-level view) it was sent
     in, and receivers deliver it only while in that epoch;
   - when the membership layer installs a new view, the epoch does NOT
     advance immediately: the (new) coordinator runs a flush - every
     survivor reports the messages it delivered in the closing epoch
     (ids and bodies), the coordinator takes the union, retransmits it,
     and only then announces the epoch switch;
   - consequently, any two processes that leave epoch e delivered the same
     multicast set in e (the view-synchrony property), which the test
     suite checks on every run.

   Epoch numbers reuse the membership version: epoch e corresponds to
   membership view version e; a straggler synchronized across several
   versions jumps its epoch accordingly (delivering nothing in the
   skipped epochs). New multicasts are refused while an epoch is closing
   (the application retries after the switch). *)

open Gmp_base
module Member = Gmp_core.Member
module Wire = Gmp_core.Wire

type msg_id = { origin : Pid.t; msg_seq : int }

let msg_id_equal a b = Pid.equal a.origin b.origin && a.msg_seq = b.msg_seq

let msg_id_compare a b =
  match Pid.compare a.origin b.origin with
  | 0 -> Int.compare a.msg_seq b.msg_seq
  | c -> c

let pp_msg_id ppf id = Fmt.pf ppf "%a:%d" Pid.pp id.origin id.msg_seq

module Id_map = Map.Make (struct
  type t = msg_id

  let compare = msg_id_compare
end)

type Wire.app +=
  | Vs_cast of { cast_epoch : int; id : msg_id; body : string }
  | Vs_flush_req of { closing : int; new_epoch : int }
      (* coordinator -> members: report your deliveries for [closing] *)
  | Vs_flush_rep of {
      rep_closing : int;
      have : (msg_id * string) list; (* ids AND bodies: the coordinator may
                                        itself be missing some *)
    }
  | Vs_retransmit of { re_epoch : int; id : msg_id; body : string }
  | Vs_epoch of { new_epoch : int }

type flush_state = {
  closing : int;
  fs_new_epoch : int;
  mutable replies : Pid.t list; (* responders, including self *)
}

type t = {
  member : Member.t;
  mutable epoch : int;
  mutable next_seq : int;
  mutable delivered : string Id_map.t; (* current epoch's deliveries *)
  mutable delivery_log : (int * msg_id * string) list; (* newest first *)
  mutable flush : flush_state option; (* coordinator side *)
  mutable pending_epoch : int option; (* an epoch switch is in progress *)
  mutable on_deliver : t -> src:Pid.t -> string -> unit;
  mutable chained : src:Pid.t -> Wire.app -> unit;
}

let member t = t.member
let epoch t = t.epoch
let flushing t = t.pending_epoch <> None
let set_on_deliver t f = t.on_deliver <- f

let deliveries_in t e =
  List.rev
    (List.filter_map
       (fun (ep, id, body) -> if ep = e then Some (id, body) else None)
       t.delivery_log)

let delivered_ids t e = List.map fst (deliveries_in t e)

let deliver t ~id ~body =
  if not (Id_map.mem id t.delivered) then begin
    t.delivered <- Id_map.add id body t.delivered;
    t.delivery_log <- (t.epoch, id, body) :: t.delivery_log;
    t.on_deliver t ~src:id.origin body
  end

(* ---- multicasting ---- *)

let cast t body =
  if Member.operational t.member && Member.joined t.member && not (flushing t)
  then begin
    let id = { origin = Member.pid t.member; msg_seq = t.next_seq } in
    t.next_seq <- t.next_seq + 1;
    deliver t ~id ~body;
    Member.broadcast_app t.member (Vs_cast { cast_epoch = t.epoch; id; body });
    Some id
  end
  else None (* the epoch is closing (or we are not a member): retry later *)

(* ---- the flush protocol ---- *)

let rec advance_epoch t new_epoch =
  if new_epoch > t.epoch then begin
    t.epoch <- new_epoch;
    t.pending_epoch <- None;
    t.flush <- None;
    t.delivered <- Id_map.empty
  end

and finish_flush t fs =
  (* Everything this coordinator now holds for the closing epoch is the
     union of the survivors' deliveries; re-broadcast it so every survivor
     closes the epoch with the same set, then announce the switch. *)
  List.iter
    (fun (id, body) ->
      Member.broadcast_app t.member
        (Vs_retransmit { re_epoch = fs.closing; id; body }))
    (deliveries_in t fs.closing);
  Member.broadcast_app t.member (Vs_epoch { new_epoch = fs.fs_new_epoch });
  advance_epoch t fs.fs_new_epoch

and flush_complete t fs =
  let faulty = Member.faulty_set t.member in
  List.for_all
    (fun p ->
      Pid.equal p (Member.pid t.member)
      || Pid.Set.mem p faulty
      || List.exists (Pid.equal p) fs.replies)
    (Gmp_core.View.members (Member.view t.member))

and maybe_finish_flush t =
  match t.flush with
  | Some fs when flush_complete t fs -> finish_flush t fs
  | Some _ | None -> ()

and start_flush t =
  (* On the coordinator, whenever the membership version is ahead of the
     epoch. Restarts (with the newest target) if the view changed again
     mid-flush. *)
  let new_epoch = Member.version t.member in
  if new_epoch > t.epoch then begin
    let restart =
      match t.flush with
      | None -> true
      | Some fs -> fs.fs_new_epoch < new_epoch
    in
    if restart then begin
      let fs =
        { closing = t.epoch;
          fs_new_epoch = new_epoch;
          replies = [ Member.pid t.member ] }
      in
      t.flush <- Some fs;
      t.pending_epoch <- Some new_epoch;
      Member.broadcast_app t.member
        (Vs_flush_req { closing = t.epoch; new_epoch });
      maybe_finish_flush t
    end
    else maybe_finish_flush t
  end

(* ---- handlers ---- *)

let handle t ~src msg =
  match msg with
  | Vs_cast { cast_epoch; id; body } ->
    (* Deliverable while we are still in the epoch it was sent in (a flush
       in progress does not end the epoch until Vs_epoch arrives). *)
    if cast_epoch = t.epoch then deliver t ~id ~body
  | Vs_flush_req { closing; new_epoch } ->
    if closing = t.epoch then t.pending_epoch <- Some new_epoch;
    Member.send_app t.member ~dst:src
      (Vs_flush_rep { rep_closing = closing; have = deliveries_in t closing })
  | Vs_flush_rep { rep_closing; have } -> (
    match t.flush with
    | Some fs when fs.closing = rep_closing ->
      (* Absorb bodies the coordinator itself missed (they become part of
         the union it re-broadcasts). *)
      List.iter (fun (id, body) -> deliver t ~id ~body) have;
      if not (List.exists (Pid.equal src) fs.replies) then
        fs.replies <- src :: fs.replies;
      maybe_finish_flush t
    | Some _ | None -> ())
  | Vs_retransmit { re_epoch; id; body } ->
    if re_epoch = t.epoch then deliver t ~id ~body
  | Vs_epoch { new_epoch } -> advance_epoch t new_epoch
  | other -> t.chained ~src other

let attach member =
  let t =
    { member;
      epoch = Member.version member;
      next_seq = 0;
      delivered = Id_map.empty;
      delivery_log = [];
      flush = None;
      pending_epoch = None;
      on_deliver = (fun _ ~src:_ _ -> ());
      chained = (fun ~src:_ _ -> ()) }
  in
  Member.set_app_handler member (fun ~src msg -> handle t ~src msg);
  Member.set_on_view_change member (fun m ->
      if Member.is_mgr m then start_flush t
      else if Member.version m > t.epoch then
        t.pending_epoch <- Some (Member.version m);
      (* Survivors becoming aware of failures can complete a pending
         coordinator-side flush. *)
      maybe_finish_flush t);
  t

let pp ppf t =
  Fmt.pf ppf "vsync@%a epoch=%d delivered=%d%s" Pid.pp (Member.pid t.member)
    t.epoch
    (Id_map.cardinal t.delivered)
    (if flushing t then " (flushing)" else "")
