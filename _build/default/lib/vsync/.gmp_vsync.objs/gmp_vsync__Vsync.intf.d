lib/vsync/vsync.mli: Fmt Gmp_base Gmp_core Pid
