lib/vsync/vsync.ml: Fmt Gmp_base Gmp_core Int List Map Pid
