(** View-synchronous multicast over the membership service.

    The ISIS-style discipline this membership protocol was built to
    support: multicasts are delivered within the epoch (app-level view)
    they were sent in, and a coordinator-driven flush at every view change
    guarantees that any two processes leaving epoch [e] delivered the same
    message set in [e]. Epochs track membership versions. *)

open Gmp_base

type t

type msg_id = { origin : Pid.t; msg_seq : int }

val msg_id_equal : msg_id -> msg_id -> bool
val msg_id_compare : msg_id -> msg_id -> int
val pp_msg_id : msg_id Fmt.t

val attach : Gmp_core.Member.t -> t
(** Installs the vsync app handler and view-change hook. Attach to every
    member. *)

val member : t -> Gmp_core.Member.t
val epoch : t -> int

val flushing : t -> bool
(** An epoch switch is in progress; {!cast} is refused meanwhile. *)

val cast : t -> string -> msg_id option
(** Multicast to the current epoch; delivered to self immediately. [None]
    while an epoch is closing (retry after the switch) or when not an
    operational member. *)

val set_on_deliver : t -> (t -> src:Pid.t -> string -> unit) -> unit

val deliveries_in : t -> int -> (msg_id * string) list
(** Messages delivered in a given epoch, oldest first. *)

val delivered_ids : t -> int -> msg_id list
val pp : t Fmt.t
