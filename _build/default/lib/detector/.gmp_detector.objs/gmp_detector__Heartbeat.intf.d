lib/detector/heartbeat.mli: Gmp_base Gmp_sim Pid
