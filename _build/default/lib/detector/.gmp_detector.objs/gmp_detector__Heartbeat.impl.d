lib/detector/heartbeat.ml: Gmp_base Gmp_sim List Pid
