lib/detector/scripted.ml: Gmp_base Gmp_sim List Pid
