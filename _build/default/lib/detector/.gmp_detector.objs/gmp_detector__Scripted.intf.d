lib/detector/scripted.mli: Gmp_base Gmp_sim Pid
