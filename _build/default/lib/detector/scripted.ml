(* Scripted failure-detection oracle.

   Experiments that reproduce a specific figure need exact control over who
   suspects whom and when; this module schedules those faultyp(q) events
   directly, bypassing timeouts. It composes with Heartbeat: both feed the
   same suspicion entry point of the protocol layer. *)

open Gmp_base

type entry = { at : float; observer : Pid.t; suspect : Pid.t }

let entry ~at ~observer ~suspect = { at; observer; suspect }

let install engine entries ~fire =
  List.iter
    (fun { at; observer; suspect } ->
      ignore (Gmp_sim.Engine.schedule_at engine ~time:at (fun () ->
                  fire ~observer ~suspect)
              : Gmp_sim.Engine.handle))
    entries

let crash_script engine entries ~crash =
  List.iter
    (fun (at, pid) ->
      ignore (Gmp_sim.Engine.schedule_at engine ~time:at (fun () -> crash pid)
              : Gmp_sim.Engine.handle))
    entries
