(** Scripted failure-detection oracle for reproducing exact scenarios.

    Schedules [faultyp(q)] events at chosen instants, bypassing timeouts.
    Table 1 and the figure-specific experiments are driven this way. *)

open Gmp_base

type entry

val entry : at:float -> observer:Pid.t -> suspect:Pid.t -> entry

val install :
  Gmp_sim.Engine.t ->
  entry list ->
  fire:(observer:Pid.t -> suspect:Pid.t -> unit) ->
  unit

val crash_script :
  Gmp_sim.Engine.t -> (float * Pid.t) list -> crash:(Pid.t -> unit) -> unit
(** Schedule real crashes. *)
