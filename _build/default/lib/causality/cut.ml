(* Consistent cuts over vector-timestamped event logs.

   A cut is a per-process frontier: for each process, the number of its events
   included. The cut is consistent iff it is closed under happens-before
   (Definition in the paper, after Lamport): with vector timestamps this
   reduces to a frontier check. *)

open Gmp_base

type 'a event = {
  owner : Pid.t;
  index : int; (* 1-based position in the owner's history *)
  time : float; (* global simulation time, for debugging only *)
  vc : Vector_clock.t;
  data : 'a;
}

type 'a log = 'a event list (* in global emission order *)

let happened_before e1 e2 = Vector_clock.lt e1.vc e2.vc

let concurrent e1 e2 = Vector_clock.concurrent e1.vc e2.vc

type frontier = int Pid.Map.t (* events included per process; absent = 0 *)

let frontier_get f pid =
  match Pid.Map.find_opt pid f with None -> 0 | Some n -> n

let events_of_cut log frontier =
  List.filter (fun e -> e.index <= frontier_get frontier e.owner) log

(* The cut is consistent iff for every included event e and every process q,
   the knowledge e carries about q (vc(e).(q)) is included in the cut:
   vc(e).(q) <= frontier(q). We check only each process's frontier event: its
   vector clock dominates all earlier events of that process. *)
let is_consistent log frontier =
  let last_included =
    List.fold_left
      (fun acc e ->
        if e.index <= frontier_get frontier e.owner then
          match Pid.Map.find_opt e.owner acc with
          | Some prev when prev.index >= e.index -> acc
          | _ -> Pid.Map.add e.owner e acc
        else acc)
      Pid.Map.empty log
  in
  Pid.Map.for_all
    (fun _owner e ->
      List.for_all
        (fun (pid, n) -> n <= frontier_get frontier pid)
        (Vector_clock.to_list e.vc))
    last_included
  (* Events by processes not present in the frontier must also be accounted
     for: any vc entry for a process with frontier 0 and a positive count
     fails above because frontier_get returns 0. *)

let frontier_of_events events =
  List.fold_left
    (fun acc (e : _ event) ->
      let current = frontier_get acc e.owner in
      Pid.Map.add e.owner (max current e.index) acc)
    Pid.Map.empty events

(* Least consistent cut containing the given events: start from their
   frontier and extend until closed under happens-before. Termination: the
   frontier only grows, bounded by the log. *)
let closure log events =
  let by_owner = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let key = Pid.to_string e.owner in
      Hashtbl.replace by_owner (key, e.index) e)
    log;
  let find owner index =
    Hashtbl.find_opt by_owner (Pid.to_string owner, index)
  in
  let rec extend frontier =
    let grow =
      Pid.Map.fold
        (fun owner n acc ->
          match find owner n with
          | None -> acc
          | Some e ->
            List.fold_left
              (fun acc (pid, k) ->
                if k > frontier_get frontier pid then (pid, k) :: acc else acc)
              acc
              (Vector_clock.to_list e.vc))
        frontier []
    in
    match grow with
    | [] -> frontier
    | additions ->
      let frontier =
        List.fold_left
          (fun acc (pid, k) -> Pid.Map.add pid (max k (frontier_get acc pid)) acc)
          frontier additions
      in
      extend frontier
  in
  extend (frontier_of_events events)

let leq_frontier f g =
  Pid.Map.for_all (fun pid n -> n <= frontier_get g pid) f

let lt_frontier f g = leq_frontier f g && not (leq_frontier g f)

let pp_frontier ppf f =
  let entry ppf (pid, n) = Fmt.pf ppf "%a:%d" Pid.pp pid n in
  Fmt.pf ppf "<%a>" Fmt.(list ~sep:(any " ") entry) (Pid.Map.bindings f)
