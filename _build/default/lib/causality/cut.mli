(** Consistent cuts over vector-timestamped event logs.

    The paper reasons about propositions "true along consistent cuts"; this
    module makes those checks executable on recorded runs. A cut is given by a
    {e frontier}: how many events of each process history it includes. *)

open Gmp_base

type 'a event = {
  owner : Pid.t;
  index : int;  (** 1-based position in the owner's history *)
  time : float;  (** global simulation time (debugging aid, never used for logic) *)
  vc : Vector_clock.t;
  data : 'a;
}

type 'a log = 'a event list

val happened_before : 'a event -> 'b event -> bool
val concurrent : 'a event -> 'b event -> bool

type frontier = int Pid.Map.t

val frontier_get : frontier -> Pid.t -> int
val frontier_of_events : 'a event list -> frontier
val events_of_cut : 'a log -> frontier -> 'a event list

val is_consistent : 'a log -> frontier -> bool
(** Closed under happens-before: no included event received a message whose
    send lies outside the cut. *)

val closure : 'a log -> 'a event list -> frontier
(** Least consistent frontier containing the given events. *)

val leq_frontier : frontier -> frontier -> bool
val lt_frontier : frontier -> frontier -> bool
(** The paper's [c < c'] / [c << c'] prefix orders on cuts. *)

val pp_frontier : frontier Fmt.t
