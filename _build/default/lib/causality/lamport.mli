(** Lamport scalar clocks.

    [merge local remote] is the receive rule: [max local remote + 1]. Scalar
    clocks are consistent with happens-before but do not characterize it; use
    {!Vector_clock} for that. *)

type t

val zero : t
val tick : t -> t
val merge : t -> t -> t
val compare : t -> t -> int
val to_int : t -> int
val of_int : int -> t
val pp : t Fmt.t
