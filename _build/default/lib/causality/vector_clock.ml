(* Vector clocks over dynamic process sets. Entries absent from the map are
   implicitly zero, so clocks over different membership generations compare
   soundly. *)

open Gmp_base

type t = int Pid.Map.t

let empty = Pid.Map.empty

let get t pid = match Pid.Map.find_opt pid t with None -> 0 | Some n -> n

let tick t pid = Pid.Map.add pid (get t pid + 1) t

let merge a b =
  Pid.Map.union (fun _pid x y -> Some (max x y)) a b

let leq a b = Pid.Map.for_all (fun pid n -> n <= get b pid) a

let equal a b = leq a b && leq b a

let lt a b = leq a b && not (leq b a)

let concurrent a b = (not (leq a b)) && not (leq b a)

let compare_total a b =
  (* Arbitrary total order extending nothing in particular; for use as map
     keys only. *)
  Pid.Map.compare Int.compare a b

let of_list entries =
  List.fold_left
    (fun acc (pid, n) ->
      if n < 0 then invalid_arg "Vector_clock.of_list: negative entry"
      else if n = 0 then acc
      else Pid.Map.add pid n acc)
    empty entries

let to_list t = Pid.Map.bindings t

let pp ppf t =
  let entry ppf (pid, n) = Fmt.pf ppf "%a:%d" Pid.pp pid n in
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any " ") entry) (to_list t)
