(* Lamport scalar clocks (Lamport 1978). *)

type t = int

let zero = 0

let tick t = t + 1

let merge local remote = (max local remote) + 1

let compare = Int.compare
let to_int t = t
let of_int t = if t < 0 then invalid_arg "Lamport.of_int: negative" else t
let pp = Fmt.int
