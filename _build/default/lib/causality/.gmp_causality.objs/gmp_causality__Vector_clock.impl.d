lib/causality/vector_clock.ml: Fmt Gmp_base Int List Pid
