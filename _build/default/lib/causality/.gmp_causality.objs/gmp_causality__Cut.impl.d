lib/causality/cut.ml: Fmt Gmp_base Hashtbl List Pid Vector_clock
