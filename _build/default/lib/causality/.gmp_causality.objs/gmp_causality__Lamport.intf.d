lib/causality/lamport.mli: Fmt
