lib/causality/lamport.ml: Fmt Int
