lib/causality/cut.mli: Fmt Gmp_base Pid Vector_clock
