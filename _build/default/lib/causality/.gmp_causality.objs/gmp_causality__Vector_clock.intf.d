lib/causality/vector_clock.mli: Fmt Gmp_base Pid
