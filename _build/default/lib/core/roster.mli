(** Hierarchical membership management (§8's variation).

    A replicated registry of {e client} processes maintained by a server
    group: clients are not group members — "exclusion from it models the
    end of that client's need for the service". The coordinator sequences
    roster changes over the membership layer's application channel;
    failover rides the membership protocol, and a snapshot re-broadcast on
    every view change carries the roster across coordinator changes and
    into joiners. Mirroring GMP-4, an expelled client (same incarnation) is
    never re-enrolled. *)

open Gmp_base

type t

val attach : Member.t -> t
(** Installs the roster's app handler and view-change hook on the member.
    Attach to every member of the server group. *)

val member : t -> Member.t
val clients : t -> Pid.Set.t
val expelled : t -> Pid.Set.t
val sequence : t -> int
(** Number of roster changes applied. *)

val is_client : t -> Pid.t -> bool
val set_on_change : t -> (t -> unit) -> unit

val enroll : t -> Pid.t -> unit
(** Request admission of a client (callable on any server; routed to the
    coordinator). Re-enrolment of an expelled incarnation is refused. *)

val expel : t -> Pid.t -> unit
val pp : t Fmt.t
