(** Executable fragment of the paper's epistemic machinery (Appendix;
    Ricciardi's tense logic [18]).

    A recorded trace induces a chain of consistent cuts (each trace prefix
    is causally closed); formulas are evaluated at cut indices. [knows] is
    {e run-local} knowledge — the formula holds at every cut of this run
    the process cannot distinguish from the current one (same local history
    length). That approximation is sound for refuting knowledge claims and
    for checking the paper's positive claims on generated runs, but weaker
    than quantifying over all runs. *)

open Gmp_base

type run
type state
type formula

val of_trace : Trace.t -> run
val length : run -> int
val state_at : run -> int -> state
val pids : run -> Pid.t list

(** {1 State accessors (for atoms)} *)

val version_of : state -> Pid.t -> int option
val view_of : state -> Pid.t -> Pid.t list option
val is_down : state -> Pid.t -> bool
val events_seen : state -> Pid.t -> int
val time : state -> float

(** {1 Formula constructors} *)

val atom : string -> (state -> bool) -> formula
val neg : formula -> formula
val conj : formula list -> formula
val disj : formula list -> formula
val implies : formula -> formula -> formula

val sometime_past : formula -> formula
(** The paper's diamond-past: held at some earlier (or this) cut. *)

val always_past : formula -> formula
val eventually : formula -> formula
val henceforth : formula -> formula

val knows : Pid.t -> formula -> formula
(** Run-local K_p. *)

val everyone : Pid.t list -> formula -> formula
(** E_G; nest towards common knowledge. *)

val pp : formula Fmt.t

(** {1 Evaluation} *)

val eval : run -> at:int -> formula -> bool
val valid : run -> formula -> bool
(** Holds at every cut. *)

val satisfiable : run -> formula -> bool
(** Holds at some cut. *)

(** {1 The paper's formulas} *)

val ver_eq : Pid.t -> int -> formula
val down : Pid.t -> formula

val is_sys_view : run -> int -> formula
(** IsSysView(x): every non-down process has installed version x, with
    agreeing views. *)

val members_of_version : run -> int -> Pid.t list option

val equation_4 : run -> p:Pid.t -> x:int -> formula
(** (ver(p) = x) => K_p <past> IsSysView(x-1). *)

val unwinding : run -> x:int -> y:int -> formula option
(** The Appendix's chain: IsSysView(x) => (E <past>)^y IsSysView(x-y),
    over the members of view x ([None] if nobody installed x). *)
