(* Protocol configuration. *)

type t = {
  heartbeats : bool;
      (* Run the heartbeat detector (F1). Scripted experiments may turn it
         off and drive suspicions themselves; liveness then depends on the
         script covering every stall. *)
  heartbeat_interval : float;
  heartbeat_timeout : float;
  compressed : bool;
      (* Piggyback the next invitation on commit messages (§3.1). Off =
         the plain two-phase algorithm, used as the §7.2 comparison. *)
  require_majority_update : bool;
      (* Final algorithm (Figure 8, line FA.1): Mgr needs a majority of OKs
         before committing. The basic algorithm (§3.1, Mgr never fails)
         tolerates |view|-1 failures and sets this to false. *)
  require_majority_reconf : bool;
      (* GMP-2 uniqueness: a reconfigurer needs majorities in phases 1 and
         2. The paper's s8 notes some applications (Deceit [19], El
         Abbadi-Toueg [1]) drop uniqueness and let partitions run their own
         views, reconciling at a higher level: turn this off to get that
         partitioned mode - the checker will (correctly) report the
         divergence, which is the point. *)
  reconf_reuse : bool;
      (* §8's future-work optimization: when a process suspects an
         initiator it had answered, it sends its interrogation reply
         unsolicited to the predicted successor, which can then skip
         interrogating it. Replies are used only while both sides are
         still at the same version; Determine re-validates everything it
         propagates. Off by default. *)
  reconf_reuse_grace : float;
      (* How long an initiator-to-be waits for pre-sent replies to land
         before interrogating (trades recovery latency for messages). *)
}

let default =
  { heartbeats = true;
    heartbeat_interval = 2.0;
    heartbeat_timeout = 10.0;
    compressed = true;
    require_majority_update = true;
    require_majority_reconf = true;
    reconf_reuse = false;
    reconf_reuse_grace = 5.0 }

let optimized = { default with reconf_reuse = true }

let basic = { default with require_majority_update = false }

let uncompressed = { default with compressed = false }

let scripted_only = { default with heartbeats = false }

(* The s8 partitioned variation: every side of a partition keeps its own
   view sequence (system views are no longer unique). *)
let partitionable =
  { default with
    require_majority_update = false;
    require_majority_reconf = false }
