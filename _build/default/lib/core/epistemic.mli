(** Executable fragments of the paper's Appendix (epistemic analysis).

    On a vector-clock-stamped trace the knowledge claims become decidable:

    - {b Equation 4}: when [p] installs version [x] it knows [Sys^(x-1)]
      {e was} defined - operationally, every member's install of [x-1]
      happens-before [p]'s install of [x] (members that never reached [x-1]
      were deemed faulty and are exempt);
    - {b Theorem 6.1's cuts}: the happens-before closure of the installs of
      each version is a consistent cut (the locally-distinguishable cut
      [c_x] that makes the view's existence concurrent common knowledge in
      no-coordinator-failure runs). *)

type report = {
  eq4_checked : int;
  eq4_failures : string list;
  cuts_checked : int;
  cut_failures : string list;
}

val pp_report : report Fmt.t
val ok : report -> bool

val analyze : ?eq4:bool -> Trace.t -> report
(** [~eq4:false] skips the Equation-4 pass (use on coordinator-failure runs,
    where stragglers synchronize late and only the cut check applies). *)
