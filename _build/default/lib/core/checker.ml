(* Executable checkers for the GMP specification (§2.3) over recorded runs.

   Every property test and every experiment runs these; a reproduction of a
   protocol paper is only credible if the specification itself is machine-
   checked on each run. *)

open Gmp_base

type violation = { property : string; detail : string }

let pp_violation ppf v = Fmt.pf ppf "[%s] %s" v.property v.detail

let v property fmt = Fmt.kstr (fun detail -> { property; detail }) fmt

(* GMP-0: the initial system view exists along the initial cut:
   every initial process installs version 0 = Proc. *)
let check_gmp0 trace ~initial =
  List.concat_map
    (fun pid ->
      match Trace.installs_of trace pid with
      | (0, members) :: _ ->
        if List.length members = List.length initial
           && List.for_all2 Pid.equal members initial
        then []
        else
          [ v "GMP-0" "%a installed an initial view different from Proc"
              Pid.pp pid ]
      | (ver, _) :: _ ->
        if ver > 0 then [] (* a joiner: its first view is a later version *)
        else [ v "GMP-0" "%a has a negative initial version" Pid.pp pid ]
      | [] -> [ v "GMP-0" "%a never installed any view" Pid.pp pid ])
    initial

(* GMP-1: q leaves Memb(p) only after faultyp(q): every Removed event of p
   is preceded, in p's history, by a Faulty event for the same target. *)
let check_gmp1 trace =
  let owners = Trace.owners trace in
  List.concat_map
    (fun pid ->
      let events = Trace.by_owner trace pid in
      let _, violations =
        List.fold_left
          (fun (suspected, violations) (e : Trace.event) ->
            match e.kind with
            | Trace.Faulty q -> (Pid.Set.add q suspected, violations)
            | Trace.Removed { target; new_ver } ->
              if Pid.Set.mem target suspected then (suspected, violations)
              else
                ( suspected,
                  v "GMP-1" "%a removed %a (v%d) without believing it faulty"
                    Pid.pp pid Pid.pp target new_ver
                  :: violations )
            | _ -> (suspected, violations))
          (Pid.Set.empty, []) events
      in
      List.rev violations)
    owners

(* GMP-2 and GMP-3: a unique sequence of system views, and identical local
   view sequences. Operationally: any two processes that install the same
   version install the same membership, and each process's versions are
   consecutive from its first. *)
let check_gmp23 trace =
  let installs = Trace.installs trace in
  (* version -> first membership seen *)
  let by_ver = Hashtbl.create 32 in
  let agreement =
    List.concat_map
      (fun ((e : Trace.event), ver, members) ->
        match Hashtbl.find_opt by_ver ver with
        | None ->
          Hashtbl.add by_ver ver (e.owner, members);
          []
        | Some (first_owner, first_members) ->
          if
            List.length members = List.length first_members
            && List.for_all2 Pid.equal members first_members
          then []
          else
            [ v "GMP-2/3" "version %d: %a has {%a} but %a has {%a}" ver Pid.pp
                e.owner
                Fmt.(list ~sep:(any ",") Pid.pp)
                members Pid.pp first_owner
                Fmt.(list ~sep:(any ",") Pid.pp)
                first_members ])
      installs
  in
  let continuity =
    List.concat_map
      (fun pid ->
        let versions = List.map fst (Trace.installs_of trace pid) in
        match versions with
        | [] -> []
        | first :: rest ->
          let _, violations =
            List.fold_left
              (fun (prev, violations) ver ->
                if ver = prev + 1 then (ver, violations)
                else
                  ( ver,
                    v "GMP-3" "%a skipped from version %d to %d" Pid.pp pid
                      prev ver
                    :: violations ))
              (first, []) rest
          in
          List.rev violations)
      (Trace.owners trace)
  in
  agreement @ continuity

(* GMP-4: processes are never re-instated: once removed from p's local view,
   a pid never reappears in p's later views (same incarnation). *)
let check_gmp4 trace =
  List.concat_map
    (fun pid ->
      let views = List.map snd (Trace.installs_of trace pid) in
      let check (removed, prev_members, violations) members =
        let removed_now =
          List.filter
            (fun q -> not (List.exists (Pid.equal q) members))
            prev_members
        in
        let removed =
          List.fold_left (fun acc q -> Pid.Set.add q acc) removed removed_now
        in
        let reinstated =
          List.filter (fun q -> Pid.Set.mem q removed) members
        in
        let violations =
          List.map
            (fun q ->
              v "GMP-4" "%a re-instated %a to its local view" Pid.pp pid Pid.pp
                q)
            reinstated
          @ violations
        in
        (removed, members, violations)
      in
      match views with
      | [] -> []
      | first :: rest ->
        let _, _, violations =
          List.fold_left check (Pid.Set.empty, first, []) rest
        in
        List.rev violations)
    (Trace.owners trace)

(* GMP-5: every detection is eventually resolved: for each faultyp(q) with p
   a group member at the time, eventually q or p leaves the system view.
   Checked against the final agreed view of a quiescent run. *)
let check_gmp5 trace ~final_view =
  let in_final p = List.exists (Pid.equal p) final_view in
  List.filter_map
    (fun (observer, suspected, (_ : Trace.event)) ->
      if in_final observer && in_final suspected then
        Some
          (v "GMP-5" "%a suspected %a but both are in the final view" Pid.pp
             observer Pid.pp suspected)
      else None)
    (Trace.detections trace)

(* Liveness (not a numbered GMP property, but the point of the exercise):
   after quiescence the operational processes agree on one view, and that
   view contains no process that really crashed or quit. *)
let check_convergence ~surviving_views ~dead =
  match surviving_views with
  | [] -> [] (* everyone died; vacuously converged *)
  | (p0, ver0, members0) :: rest ->
    let agreement =
      List.concat_map
        (fun (p, ver, members) ->
          if
            ver = ver0
            && List.length members = List.length members0
            && List.for_all2 Pid.equal members members0
          then []
          else
            [ v "convergence" "%a at v%d disagrees with %a at v%d" Pid.pp p ver
                Pid.pp p0 ver0 ])
        rest
    in
    let no_dead =
      List.filter_map
        (fun q ->
          if List.exists (Pid.equal q) members0 then
            Some (v "convergence" "dead process %a is in the final view" Pid.pp q)
          else None)
        dead
    in
    let all_present =
      List.concat_map
        (fun (p, _, _) ->
          if List.exists (Pid.equal p) members0 then []
          else
            [ v "convergence" "operational %a is not in the final view" Pid.pp p ])
        surviving_views
    in
    agreement @ no_dead @ all_present

(* Internal Violation trace events (broken invariants noticed at runtime). *)
let check_internal trace =
  List.map
    (fun (owner, detail) -> v "internal" "%a: %s" Pid.pp owner detail)
    (Trace.violations trace)

let check_safety trace ~initial =
  check_gmp0 trace ~initial @ check_gmp1 trace @ check_gmp23 trace
  @ check_gmp4 trace @ check_internal trace

(* Full check for a quiescent run of a Group. *)
let check_group ?(liveness = true) group =
  let trace = Group.trace group in
  let safety = check_safety trace ~initial:(Group.initial group) in
  if not liveness then safety
  else begin
    let surviving = Group.surviving_views group in
    let dead =
      List.filter_map
        (fun m ->
          if Member.operational m then None else Some (Member.pid m))
        (Group.members group)
    in
    let final_view =
      match Group.agreed_view group with
      | Some (_, members) -> members
      | None -> []
    in
    safety
    @ check_convergence ~surviving_views:surviving ~dead
    @ check_gmp5 trace ~final_view
  end
