lib/core/knowledge.ml: Array Float Fmt Gmp_base List Pid Trace
