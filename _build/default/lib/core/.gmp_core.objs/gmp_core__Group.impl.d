lib/core/group.ml: Config Fmt Gmp_base Gmp_net Gmp_runtime Gmp_sim List Member Pid Trace View Wire
