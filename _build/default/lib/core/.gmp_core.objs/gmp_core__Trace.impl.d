lib/core/trace.ml: Fmt Gmp_base Gmp_causality List Pid String Types Vector_clock
