lib/core/epistemic.ml: Cut Fmt Gmp_base Gmp_causality Int List Pid Trace Vector_clock
