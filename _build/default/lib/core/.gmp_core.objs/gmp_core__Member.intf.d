lib/core/member.mli: Config Fmt Gmp_base Gmp_runtime Pid Trace Types View Wire
