lib/core/types.mli: Fmt Gmp_base Pid
