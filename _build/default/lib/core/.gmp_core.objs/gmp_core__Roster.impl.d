lib/core/roster.ml: Fmt Gmp_base Member Pid Wire
