lib/core/wire.ml: Fmt Gmp_base Pid Types
