lib/core/view.mli: Fmt Gmp_base Pid Types
