lib/core/member.ml: Config Fmt Gmp_base Gmp_detector Gmp_runtime List Pid Trace Types View Wire
