lib/core/view.ml: Fmt Gmp_base List Pid Types
