lib/core/wire.mli: Fmt Gmp_base Pid Types
