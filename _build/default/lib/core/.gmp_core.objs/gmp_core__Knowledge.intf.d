lib/core/knowledge.mli: Fmt Gmp_base Pid Trace
