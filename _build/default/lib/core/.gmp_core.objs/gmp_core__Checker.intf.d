lib/core/checker.mli: Fmt Gmp_base Group Pid Trace
