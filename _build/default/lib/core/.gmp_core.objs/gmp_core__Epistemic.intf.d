lib/core/epistemic.mli: Fmt Trace
