lib/core/export.ml: Checker Gmp_base Gmp_net Group Json List Member Pid Trace Types View
