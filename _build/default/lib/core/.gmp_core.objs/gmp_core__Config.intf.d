lib/core/config.mli:
