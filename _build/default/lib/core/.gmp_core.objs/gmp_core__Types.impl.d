lib/core/types.ml: Fmt Gmp_base List Pid
