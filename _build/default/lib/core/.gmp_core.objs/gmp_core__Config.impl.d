lib/core/config.ml:
