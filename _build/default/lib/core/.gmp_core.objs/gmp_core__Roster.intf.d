lib/core/roster.mli: Fmt Gmp_base Member Pid
