lib/core/checker.ml: Fmt Gmp_base Group Hashtbl List Member Pid Trace
