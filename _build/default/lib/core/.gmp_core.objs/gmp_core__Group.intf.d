lib/core/group.mli: Config Fmt Gmp_base Gmp_net Gmp_runtime Gmp_sim Member Pid Trace Wire
