lib/core/export.mli: Checker Gmp_base Gmp_net Group Json Member Pid Trace Types
