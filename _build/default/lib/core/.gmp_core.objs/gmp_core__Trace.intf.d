lib/core/trace.mli: Fmt Gmp_base Gmp_causality Pid Types Vector_clock
