(** Protocol configuration. *)

type t = {
  heartbeats : bool;
      (** Run the heartbeat detector (F1). Scripted experiments may turn it
          off and drive suspicions themselves; liveness then depends on the
          script covering every stall. *)
  heartbeat_interval : float;
  heartbeat_timeout : float;
  compressed : bool;
      (** Piggyback the next invitation on commit messages (§3.1). Off =
          the plain two-phase algorithm, used as the §7.2 comparison. *)
  require_majority_update : bool;
      (** Final algorithm (Figure 8): the coordinator needs a majority of
          OKs before committing. The basic algorithm (§3.1, coordinator
          never fails) runs without it and tolerates [n-1] failures. *)
  require_majority_reconf : bool;
      (** GMP-2 uniqueness: reconfiguration phases need majorities. Off =
          the §8 partitioned variation (each side of a partition runs its
          own view sequence; divergence is expected and reported). *)
  reconf_reuse : bool;
      (** §8's future-work optimization: on suspecting the coordinator or
          an answered initiator, pre-send the interrogation reply to the
          predicted successor, which then skips interrogating this process.
          Off by default. *)
  reconf_reuse_grace : float;
      (** How long an initiator-to-be waits for pre-sent replies to land
          before interrogating (latency traded for messages). *)
}

val default : t
(** Final algorithm: heartbeats on, compression on, majorities required. *)

val basic : t
(** §3.1's basic algorithm (no majority requirement). *)

val uncompressed : t
(** Final algorithm without compressed rounds (for the §7.2 comparison). *)

val scripted_only : t
(** No heartbeat detector: suspicions come only from scripts and gossip. *)

val optimized : t
(** Final algorithm with the §8 reconfiguration-reuse optimization on. *)

val partitionable : t
(** The §8 partitioned variation (Deceit-style): no majority requirements,
    so minority partitions keep operating under their own views. System
    views are no longer unique; reconciliation is the application's job. *)
