(* Wire messages of the protocol.

   Update algorithm (Figures 8, 9): Invite / Invite_ok / Commit, where the
   Commit carries a contingent invitation for the next change (the compressed
   rounds of §3.1) and the coordinator's suspicion sets (gossip, F2).

   Reconfiguration (Figure 10): Interrogate / Interrogate_ok / Propose /
   Propose_ok / Reconf_commit. Proposals carry the canonical committed
   operation sequence up to the proposed version; receivers apply the suffix
   they are missing (see DESIGN.md - this realizes "the cumulative system
   progress" with unchanged message counts). *)

open Gmp_base

type commit = {
  op : Types.op;
  commit_ver : int; (* version that applying [op] produces *)
  contingent : Types.op option; (* compressed invitation for commit_ver+1 *)
  faulty : Pid.t list; (* Faulty(Mgr): gossiped suspicions *)
  recovered : Pid.t list; (* Recovered(Mgr): pending joiners *)
}

type interrogate_reply = {
  reply_ver : int;
  reply_seq : Types.seq;
  reply_next : Types.expectation list;
}

type proposal = {
  target_ver : int;
  canonical_seq : Types.seq; (* length = target_ver *)
  invis : Types.op option; (* first change after reconfiguration *)
  prop_faulty : Pid.t list; (* Faulty(r) *)
}

(* Application payloads (for example programs built on the membership
   service); extensible so examples define their own constructors. *)
type app = ..

type t =
  | Heartbeat
  | Faulty_report of Pid.t (* outer -> Mgr: please start an exclusion *)
  | Join_request (* joiner -> contact *)
  | Join_forward of Pid.t (* contact -> Mgr *)
  | Invite of { op : Types.op; invite_ver : int }
  | Invite_ok of { ok_ver : int }
  | Commit of commit
  | Welcome of { w_members : Pid.t list; w_ver : int; w_seq : Types.seq }
  | Interrogate
  | Interrogate_ok of interrogate_reply
  | Propose of proposal
  | Propose_ok of { pok_ver : int }
  | Reconf_commit of proposal
  | App of { app_ver : int; payload : app }
      (* [app_ver]: sender's view version, for the paper's "no messages from
         future views" buffering rule. *)

(* Message categories for Stats accounting. *)
let category = function
  | Heartbeat -> "heartbeat"
  | Faulty_report _ -> "report"
  | Join_request -> "join-request"
  | Join_forward _ -> "join-forward"
  | Invite _ -> "invite"
  | Invite_ok _ -> "invite-ok"
  | Commit _ -> "commit"
  | Welcome _ -> "welcome"
  | Interrogate -> "interrogate"
  | Interrogate_ok _ -> "interrogate-ok"
  | Propose _ -> "propose"
  | Propose_ok _ -> "propose-ok"
  | Reconf_commit _ -> "reconf-commit"
  | App _ -> "app"

(* The categories §7.2 counts: the membership protocol proper. Heartbeats,
   reports, joins and state transfer are the detection mechanism / plumbing
   the paper does not charge. *)
let protocol_categories =
  [ "invite"; "invite-ok"; "commit"; "interrogate"; "interrogate-ok";
    "propose"; "propose-ok"; "reconf-commit" ]

let update_categories = [ "invite"; "invite-ok"; "commit" ]

let reconf_categories =
  [ "interrogate"; "interrogate-ok"; "propose"; "propose-ok"; "reconf-commit" ]

let pp ppf = function
  | Heartbeat -> Fmt.string ppf "heartbeat"
  | Faulty_report p -> Fmt.pf ppf "faulty-report(%a)" Pid.pp p
  | Join_request -> Fmt.string ppf "join-request"
  | Join_forward p -> Fmt.pf ppf "join-forward(%a)" Pid.pp p
  | Invite { op; invite_ver } ->
    Fmt.pf ppf "invite(%a,v%d)" Types.pp_op op invite_ver
  | Invite_ok { ok_ver } -> Fmt.pf ppf "invite-ok(v%d)" ok_ver
  | Commit { op; commit_ver; contingent; faulty; recovered } ->
    Fmt.pf ppf "commit(%a,v%d,next=%a,F=%a,R=%a)" Types.pp_op op commit_ver
      Fmt.(option Types.pp_op)
      contingent
      Fmt.(list ~sep:(any ",") Pid.pp)
      faulty
      Fmt.(list ~sep:(any ",") Pid.pp)
      recovered
  | Welcome { w_ver; _ } -> Fmt.pf ppf "welcome(v%d)" w_ver
  | Interrogate -> Fmt.string ppf "interrogate"
  | Interrogate_ok { reply_ver; _ } -> Fmt.pf ppf "interrogate-ok(v%d)" reply_ver
  | Propose { target_ver; invis; _ } ->
    Fmt.pf ppf "propose(v%d,invis=%a)" target_ver Fmt.(option Types.pp_op) invis
  | Propose_ok { pok_ver } -> Fmt.pf ppf "propose-ok(v%d)" pok_ver
  | Reconf_commit { target_ver; _ } -> Fmt.pf ppf "reconf-commit(v%d)" target_ver
  | App { app_ver; _ } -> Fmt.pf ppf "app(v%d)" app_ver
