(* Membership views with seniority ranking.

   Members are kept in seniority order: the head is the most senior process -
   the coordinator, Mgr - with rank |view|; the most recent joiner has rank 1.
   Removing a process implicitly raises the rank of everyone junior to it, as
   in §4.2; relative ranks of surviving members never change. *)

open Gmp_base

type t = { members : Pid.t list }

let of_list members =
  let rec check_distinct = function
    | [] -> ()
    | p :: rest ->
      if List.exists (Pid.equal p) rest then
        invalid_arg "View.of_list: duplicate member"
      else check_distinct rest
  in
  check_distinct members;
  { members }

let initial pids = of_list pids

let members t = t.members
let size t = List.length t.members
let is_empty t = t.members = []

let mem t p = List.exists (Pid.equal p) t.members

let mgr t =
  match t.members with
  | [] -> invalid_arg "View.mgr: empty view"
  | head :: _ -> head

let rank t p =
  (* rank(head) = |view|, rank(last) = 1. *)
  let n = size t in
  let rec find i = function
    | [] -> raise Not_found
    | q :: rest -> if Pid.equal p q then n - i else find (i + 1) rest
  in
  find 0 t.members

let higher_ranked t p =
  (* Members strictly senior to p, i.e. listed before it. *)
  let rec go acc = function
    | [] -> raise Not_found
    | q :: rest ->
      if Pid.equal p q then List.rev acc else go (q :: acc) rest
  in
  go [] t.members

let remove t p = { members = List.filter (fun q -> not (Pid.equal p q)) t.members }

let add t p =
  if mem t p then invalid_arg "View.add: already a member"
  else { members = t.members @ [ p ] }

let apply t = function
  | Types.Remove p -> remove t p
  | Types.Add p -> add t p

let apply_all t ops = List.fold_left apply t ops

let of_seq ~initial:pids seq = apply_all (of_list pids) seq

let majority t =
  (* The paper's mu: floor(|view| / 2) + 1. *)
  (size t / 2) + 1

let equal a b =
  List.length a.members = List.length b.members
  && List.for_all2 Pid.equal a.members b.members

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") Pid.pp) t.members
