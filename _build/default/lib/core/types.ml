(* Core vocabulary of the membership protocol. *)

open Gmp_base

(* A view update: each instance of the algorithm changes the view by exactly
   one process (§7: this keeps majorities of neighbouring views
   intersecting). *)
type op = Add of Pid.t | Remove of Pid.t

let op_target = function Add p -> p | Remove p -> p

let is_remove = function Remove _ -> true | Add _ -> false

let op_equal a b =
  match (a, b) with
  | Add p, Add q | Remove p, Remove q -> Pid.equal p q
  | Add _, Remove _ | Remove _, Add _ -> false

let op_compare a b =
  match (a, b) with
  | Add p, Add q | Remove p, Remove q -> Pid.compare p q
  | Add _, Remove _ -> -1
  | Remove _, Add _ -> 1

let pp_op ppf = function
  | Add p -> Fmt.pf ppf "add(%a)" Pid.pp p
  | Remove p -> Fmt.pf ppf "remove(%a)" Pid.pp p

(* The committed operation sequence. Version x is the result of applying the
   first x operations to the initial group; GMP-3 makes all processes' seqs
   prefixes of one canonical sequence. *)
type seq = op list

let seq_equal a b = List.length a = List.length b && List.for_all2 op_equal a b

let is_prefix ~prefix full =
  let rec go p f =
    match (p, f) with
    | [], _ -> true
    | _ :: _, [] -> false
    | x :: p', y :: f' -> op_equal x y && go p' f'
  in
  go prefix full

let seq_drop n seq =
  let rec go n = function
    | rest when n <= 0 -> rest
    | [] -> []
    | _ :: rest -> go (n - 1) rest
  in
  go n seq

let pp_seq ppf seq = Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ";") pp_op) seq

(* The paper's next(p) entries: how p expects its local view to change.
   [Awaiting_proposal r] is the placeholder triple (? : r : ?) appended when
   p answers r's interrogation; [Expected] is the paper's (op(z) : r : x),
   except that we store the full canonical sequence up to x rather than a
   receiver-relative diff: respondents at different versions then report the
   {e same} pending proposal identically, which is what ProposalsForVer
   needs to deduplicate soundly (see DESIGN.md). *)
type expectation =
  | Awaiting_proposal of Pid.t
  | Expected of { canonical : seq; coord : Pid.t; ver : int }
      (* ver = List.length canonical: the version this proposal installs *)

let pp_expectation ppf = function
  | Awaiting_proposal r -> Fmt.pf ppf "(? : %a : ?)" Pid.pp r
  | Expected { canonical; coord; ver } ->
    Fmt.pf ppf "(%a : %a : %d)" pp_seq canonical Pid.pp coord ver
