(** JSON export of runs (traces, statistics, final states) for external
    tooling. *)

open Gmp_base

val json_of_pid : Pid.t -> Json.t
val json_of_op : Types.op -> Json.t
val json_of_event : Trace.event -> Json.t
val json_of_trace : Trace.t -> Json.t
val json_of_stats : Gmp_net.Stats.t -> Json.t
val json_of_member : Member.t -> Json.t
val json_of_violation : Checker.violation -> Json.t

val json_of_group : ?include_trace:bool -> Group.t -> Json.t
(** Full run dump: members, agreed view, statistics, checker verdicts and
    (optionally) the complete trace. *)
