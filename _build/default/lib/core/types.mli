(** Core vocabulary of the membership protocol. *)

open Gmp_base

(** A view update. Each instance of the algorithm changes the view by
    exactly one process (§7): this keeps majority subsets of neighbouring
    views intersecting, which both uniqueness (GMP-2) and invisible-commit
    detection (GMP-3) rely on. *)
type op = Add of Pid.t | Remove of Pid.t

val op_target : op -> Pid.t
val is_remove : op -> bool
val op_equal : op -> op -> bool
val op_compare : op -> op -> int
val pp_op : op Fmt.t

type seq = op list
(** The committed operation sequence: version [x] is the result of applying
    the first [x] operations to the initial group. GMP-3 makes every
    process's seq a prefix of one canonical sequence. *)

val seq_equal : seq -> seq -> bool
val is_prefix : prefix:seq -> seq -> bool
val seq_drop : int -> seq -> seq
val pp_seq : seq Fmt.t

(** The paper's [next(p)] entries: how [p] expects its local view to change.
    [Awaiting_proposal r] is the placeholder triple [(? : r : ?)] appended
    when [p] answers [r]'s interrogation. [Expected] is the paper's
    [(op(z) : r : x)], storing the full canonical sequence up to [x] so that
    respondents at different versions report the same pending proposal
    identically (what [ProposalsForVer] needs to deduplicate soundly). *)
type expectation =
  | Awaiting_proposal of Pid.t
  | Expected of { canonical : seq; coord : Pid.t; ver : int }

val pp_expectation : expectation Fmt.t
