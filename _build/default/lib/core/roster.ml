(* Hierarchical membership management - the paper's §8 variation:

     "by not requiring processes to be members of their own local views, we
      can create a hierarchical management service. The group might be a
      set of clients with exclusion from it modelling the end of that
      client's need for the service."

   A roster is a replicated registry of *client* processes maintained by a
   server group. Clients are not group members: they do not vote, do not
   run the protocol, and their "exclusion" (expulsion) just ends their
   service relationship. The server group's coordinator sequences roster
   changes and replicates them over the membership layer's application
   channel; coordinator failover rides the membership protocol itself, and
   a full snapshot is re-broadcast on every view change so joiners and
   stragglers converge.

   Mirroring GMP-4, an expelled client (same incarnation) is never
   re-enrolled; a recovered client must come back as a new incarnation. *)

open Gmp_base

type Wire.app +=
  | Roster_request of { enroll : bool; client : Pid.t }
      (* any server -> coordinator *)
  | Roster_commit of { rseq : int; enroll : bool; client : Pid.t }
      (* coordinator -> servers: ordered change *)
  | Roster_snapshot of {
      snap_rseq : int;
      clients : Pid.t list;
      expelled : Pid.t list;
    }
      (* coordinator -> servers, on view change *)

type t = {
  member : Member.t;
  mutable clients : Pid.Set.t;
  mutable expelled : Pid.Set.t;
  mutable rseq : int; (* changes applied *)
  mutable on_change : t -> unit;
  mutable chained : src:Pid.t -> Wire.app -> unit;
      (* non-roster app traffic falls through to the previous handler *)
}

let member t = t.member
let clients t = t.clients
let expelled t = t.expelled
let sequence t = t.rseq
let is_client t p = Pid.Set.mem p t.clients
let set_on_change t f = t.on_change <- f

let apply t ~rseq ~enroll ~client =
  if rseq = t.rseq + 1 then begin
    (* In-order change from the (FIFO) coordinator channel. *)
    t.rseq <- rseq;
    if enroll then t.clients <- Pid.Set.add client t.clients
    else begin
      t.clients <- Pid.Set.remove client t.clients;
      t.expelled <- Pid.Set.add client t.expelled
    end;
    t.on_change t
  end

let adopt_snapshot t ~snap_rseq ~clients ~expelled =
  if snap_rseq >= t.rseq then begin
    t.rseq <- snap_rseq;
    t.clients <- Pid.Set.of_list clients;
    t.expelled <- Pid.Set.of_list expelled;
    t.on_change t
  end

let broadcast_snapshot t =
  Member.broadcast_app t.member
    (Roster_snapshot
       { snap_rseq = t.rseq;
         clients = Pid.Set.elements t.clients;
         expelled = Pid.Set.elements t.expelled })

let coordinate t ~enroll ~client =
  (* Order and replicate one change; reject re-enrolment of the expelled
     (the GMP-4 analogue) and redundant changes. *)
  let admissible =
    if enroll then
      (not (Pid.Set.mem client t.clients))
      && not (Pid.Set.mem client t.expelled)
    else Pid.Set.mem client t.clients
  in
  if admissible then begin
    let rseq = t.rseq + 1 in
    apply t ~rseq ~enroll ~client;
    Member.broadcast_app t.member (Roster_commit { rseq; enroll; client })
  end

let handle t ~src msg =
  match msg with
  | Roster_request { enroll; client } ->
    if Member.is_mgr t.member then coordinate t ~enroll ~client
    else if not (Pid.equal (Member.manager t.member) (Member.pid t.member))
    then
      (* Forward towards the coordinator. *)
      Member.send_app t.member ~dst:(Member.manager t.member)
        (Roster_request { enroll; client })
  | Roster_commit { rseq; enroll; client } -> apply t ~rseq ~enroll ~client
  | Roster_snapshot { snap_rseq; clients; expelled } ->
    adopt_snapshot t ~snap_rseq ~clients ~expelled
  | other -> t.chained ~src other

let attach member =
  let t =
    { member;
      clients = Pid.Set.empty;
      expelled = Pid.Set.empty;
      rseq = 0;
      on_change = (fun _ -> ());
      chained = (fun ~src:_ _ -> ()) }
  in
  Member.set_app_handler member (fun ~src msg -> handle t ~src msg);
  Member.set_on_view_change member (fun m ->
      (* The (possibly new) coordinator re-synchronizes everyone - this is
         what carries the roster across failovers and into joiners. *)
      if Member.is_mgr m then broadcast_snapshot t);
  t

let request t ~enroll ~client =
  (* Entry point on any server (e.g. on behalf of a connecting client). *)
  if Member.is_mgr t.member then coordinate t ~enroll ~client
  else
    Member.send_app t.member ~dst:(Member.manager t.member)
      (Roster_request { enroll; client })

let enroll t client = request t ~enroll:true ~client
let expel t client = request t ~enroll:false ~client

let pp ppf t =
  Fmt.pf ppf "roster@%a rseq=%d clients={%a} expelled={%a}" Pid.pp
    (Member.pid t.member) t.rseq
    Fmt.(list ~sep:(any ",") Pid.pp)
    (Pid.Set.elements t.clients)
    Fmt.(list ~sep:(any ",") Pid.pp)
    (Pid.Set.elements t.expelled)
