(** Membership views with seniority ranking (§4.2).

    Members are ordered by seniority: the head is the coordinator (Mgr) with
    rank [size t]; the most recent joiner has rank 1. Removal implicitly
    promotes everyone junior; relative ranks of survivors never change. *)

open Gmp_base

type t

val of_list : Pid.t list -> t
(** Seniority order, head most senior. Raises on duplicates. *)

val initial : Pid.t list -> t
val members : t -> Pid.t list
val size : t -> int
val is_empty : t -> bool
val mem : t -> Pid.t -> bool

val mgr : t -> Pid.t
(** Most senior member. Raises [Invalid_argument] on the empty view. *)

val rank : t -> Pid.t -> int
(** [rank t mgr = size t]; newest member has rank 1. Raises [Not_found] for
    non-members (the paper: "the rank of an excluded process is
    undefined"). *)

val higher_ranked : t -> Pid.t -> Pid.t list
(** Members strictly senior to the given one. Raises [Not_found] for
    non-members. *)

val remove : t -> Pid.t -> t
(** Idempotent. *)

val add : t -> Pid.t -> t
(** Appends with the lowest rank. Raises if already a member. *)

val apply : t -> Types.op -> t
val apply_all : t -> Types.op list -> t

val of_seq : initial:Pid.t list -> Types.seq -> t
(** View of version [List.length seq]. *)

val majority : t -> int
(** The paper's mu: [size/2 + 1]. *)

val equal : t -> t -> bool
val pp : t Fmt.t
