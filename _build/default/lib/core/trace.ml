(* Run traces. Every protocol-relevant step of every process is recorded
   with its owner, local history index and vector clock, so the Checker can
   decide the GMP properties and the Epistemic module can reason about
   consistent cuts. *)

open Gmp_base
open Gmp_causality

type kind =
  | Faulty of Pid.t (* owner executed faulty(target) *)
  | Operating of Pid.t (* owner learnt target is joining *)
  | Removed of { target : Pid.t; new_ver : int }
  | Added of { target : Pid.t; new_ver : int }
  | Installed of { ver : int; view_members : Pid.t list }
  | Quit of string (* protocol-mandated quit, with reason *)
  | Crashed (* injected real crash *)
  | Initiated_reconf of { at_ver : int }
  | Proposed of { target_ver : int; ops : Types.op list }
  | Committed of { ver : int; commit_kind : [ `Update | `Reconf ] }
  | Became_mgr of { at_ver : int }
  | Violation of string (* internal invariant broken; checkers flag these *)

type event = {
  owner : Pid.t;
  index : int; (* owner's local history position *)
  time : float;
  vc : Vector_clock.t;
  kind : kind;
}

type t = { mutable rev_events : event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let record t ~owner ~index ~time ~vc kind =
  t.count <- t.count + 1;
  t.rev_events <- { owner; index; time; vc; kind } :: t.rev_events

let events t = List.rev t.rev_events

let length t = t.count

(* ---- Queries used by the checkers ---- *)

let by_owner t pid =
  List.filter (fun e -> Pid.equal e.owner pid) (events t)

let installs t =
  List.filter_map
    (fun e ->
      match e.kind with
      | Installed { ver; view_members } -> Some (e, ver, view_members)
      | _ -> None)
    (events t)

let installs_of t pid =
  List.filter_map
    (fun (e, ver, view_members) ->
      if Pid.equal e.owner pid then Some (ver, view_members) else None)
    (installs t)

let detections t =
  List.filter_map
    (fun e -> match e.kind with Faulty q -> Some (e.owner, q, e) | _ -> None)
    (events t)

let quits t =
  List.filter_map
    (fun e ->
      match e.kind with
      | Quit reason -> Some (e.owner, `Quit reason)
      | Crashed -> Some (e.owner, `Crashed)
      | _ -> None)
    (events t)

let violations t =
  List.filter_map
    (fun e -> match e.kind with Violation v -> Some (e.owner, v) | _ -> None)
    (events t)

let owners t =
  List.fold_left
    (fun acc e -> if List.exists (Pid.equal e.owner) acc then acc else e.owner :: acc)
    [] (events t)
  |> List.rev

let pp_kind ppf = function
  | Faulty q -> Fmt.pf ppf "faulty(%a)" Pid.pp q
  | Operating q -> Fmt.pf ppf "operating(%a)" Pid.pp q
  | Removed { target; new_ver } ->
    Fmt.pf ppf "removed(%a)->v%d" Pid.pp target new_ver
  | Added { target; new_ver } -> Fmt.pf ppf "added(%a)->v%d" Pid.pp target new_ver
  | Installed { ver; view_members } ->
    Fmt.pf ppf "installed v%d {%a}" ver
      Fmt.(list ~sep:(any ",") Pid.pp)
      view_members
  | Quit reason -> Fmt.pf ppf "quit(%s)" reason
  | Crashed -> Fmt.string ppf "crashed"
  | Initiated_reconf { at_ver } -> Fmt.pf ppf "initiated-reconf@v%d" at_ver
  | Proposed { target_ver; ops } ->
    Fmt.pf ppf "proposed v%d %a" target_ver
      Fmt.(list ~sep:(any ",") Types.pp_op)
      ops
  | Committed { ver; commit_kind } ->
    Fmt.pf ppf "committed v%d (%s)" ver
      (match commit_kind with `Update -> "update" | `Reconf -> "reconf")
  | Became_mgr { at_ver } -> Fmt.pf ppf "became-mgr@v%d" at_ver
  | Violation v -> Fmt.pf ppf "VIOLATION: %s" v

let pp_event ppf e =
  Fmt.pf ppf "%8.3f %-6s %a" e.time (Pid.to_string e.owner) pp_kind e.kind

let pp ppf t = Fmt.(list ~sep:(any "@\n") pp_event) ppf (events t)

(* ---- ASCII space-time diagram ---- *)

let cell_of_kind = function
  | Faulty q -> Some (Fmt.str "!%s" (Pid.to_string q))
  | Operating _ -> None
  | Removed { target; _ } -> Some (Fmt.str "-%s" (Pid.to_string target))
  | Added { target; _ } -> Some (Fmt.str "+%s" (Pid.to_string target))
  | Installed { ver; _ } -> Some (Fmt.str "V%d" ver)
  | Quit _ -> Some "QUIT"
  | Crashed -> Some "CRASH"
  | Initiated_reconf _ -> Some "RECONF"
  | Proposed { target_ver; _ } -> Some (Fmt.str "prop%d" target_ver)
  | Committed { ver; _ } -> Some (Fmt.str "!%d" ver)
  | Became_mgr _ -> Some "MGR"
  | Violation _ -> Some "VIOL!"

(* One row per protocol-milestone event, one column per process: a compact
   space-time diagram of the run (the textual analogue of the paper's
   figures). *)
let pp_timeline ppf t =
  let owners = owners t in
  let width = 9 in
  let pad s =
    let len = String.length s in
    if len >= width then String.sub s 0 width
    else s ^ String.make (width - len) ' '
  in
  Fmt.pf ppf "%s" (pad "time");
  List.iter (fun p -> Fmt.pf ppf "%s" (pad (Pid.to_string p))) owners;
  Fmt.pf ppf "@\n";
  List.iter
    (fun e ->
      match cell_of_kind e.kind with
      | None -> ()
      | Some cell ->
        Fmt.pf ppf "%s" (pad (Fmt.str "%.2f" e.time));
        List.iter
          (fun p ->
            if Pid.equal p e.owner then Fmt.pf ppf "%s" (pad cell)
            else Fmt.pf ppf "%s" (pad "."))
          owners;
        Fmt.pf ppf "@\n")
    (events t)
