(* Discrete-event simulation engine. Time is virtual: [now] jumps to the
   timestamp of each fired event. Handles are cancellable so that timers can
   be reset cheaply (cancelled events stay in the queue but are skipped). *)

type handle = { mutable cancelled : bool; fire_at : float }

type event = { handle : handle; action : unit -> unit }

type t = {
  queue : event Event_queue.t;
  mutable now : float;
  mutable fired : int;
  mutable live : int; (* scheduled and not cancelled *)
}

exception Stop

let create () = { queue = Event_queue.create (); now = 0.0; fired = 0; live = 0 }

let now t = t.now

let fired_events t = t.fired

let pending_events t = t.live

let schedule_at t ~time action =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)"
         time t.now);
  let handle = { cancelled = false; fire_at = time } in
  Event_queue.add t.queue ~time { handle; action };
  t.live <- t.live + 1;
  handle

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now +. delay) action

let cancel t handle =
  if not handle.cancelled then begin
    handle.cancelled <- true;
    t.live <- t.live - 1
  end

let is_cancelled handle = handle.cancelled

let fire_time handle = handle.fire_at

let step t =
  let rec next () =
    match Event_queue.pop t.queue with
    | None -> false
    | Some (time, ev) ->
      if ev.handle.cancelled then next ()
      else begin
        t.now <- time;
        t.live <- t.live - 1;
        t.fired <- t.fired + 1;
        ev.action ();
        true
      end
  in
  next ()

let default_max_steps = 10_000_000

let run ?(max_steps = default_max_steps) ?until t =
  let horizon_reached () =
    match until with
    | None -> false
    | Some horizon ->
      (match Event_queue.peek_time t.queue with
       | None -> false
       | Some time -> time > horizon)
  in
  let rec loop steps =
    if steps >= max_steps then
      failwith
        (Printf.sprintf
           "Engine.run: exceeded %d steps at t=%g - likely a livelock"
           max_steps t.now)
    else if horizon_reached () then
      (match until with Some horizon when horizon > t.now -> t.now <- horizon | _ -> ())
    else
      match step t with
      | exception Stop -> ()
      | true -> loop (steps + 1)
      | false ->
        (* Queue drained: quiescent. *)
        (match until with Some horizon when horizon > t.now -> t.now <- horizon | _ -> ())
  in
  loop 0

let run_until t horizon = run ~until:horizon t
