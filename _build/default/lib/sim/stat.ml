(* Summary statistics for multi-seed sweeps. *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let w = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)
    end
  end

let of_list values =
  match values with
  | [] -> invalid_arg "Stat.of_list: empty"
  | _ ->
    let sorted = Array.of_list values in
    Array.sort Float.compare sorted;
    let n = Array.length sorted in
    let sum = Array.fold_left ( +. ) 0.0 sorted in
    let mean = sum /. float_of_int n in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 sorted
      /. float_of_int n
    in
    { count = n;
      mean;
      stddev = sqrt var;
      min = sorted.(0);
      p50 = percentile sorted 0.5;
      p90 = percentile sorted 0.9;
      p99 = percentile sorted 0.99;
      max = sorted.(n - 1) }

let of_ints values = of_list (List.map float_of_int values)

let pp ppf t =
  Fmt.pf ppf
    "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f"
    t.count t.mean t.stddev t.min t.p50 t.p90 t.p99 t.max
