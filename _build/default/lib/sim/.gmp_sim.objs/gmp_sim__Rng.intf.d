lib/sim/rng.mli:
