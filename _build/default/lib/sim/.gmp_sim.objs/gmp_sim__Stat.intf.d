lib/sim/stat.mli: Fmt
