lib/sim/engine.mli:
