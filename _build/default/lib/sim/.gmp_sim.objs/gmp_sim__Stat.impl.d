lib/sim/stat.ml: Array Float Fmt List
