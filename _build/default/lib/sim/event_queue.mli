(** Priority queue of timestamped events.

    Keyed by [(time, insertion sequence)]: events with equal timestamps fire
    in insertion order, so simulations are deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> time:float -> 'a -> unit
(** Raises [Invalid_argument] on negative or NaN time. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest event, if any. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Non-destructive snapshot in firing order (for tests). *)
