(* Binary min-heap keyed by (time, seq). The sequence number breaks ties so
   that simultaneous events fire in insertion order, which keeps runs
   deterministic regardless of heap internals. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap.(0 .. size-1)] is a valid min-heap; slots beyond hold junk. *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && lt t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let capacity = Array.length t.heap in
  let new_capacity = if capacity = 0 then 16 else capacity * 2 in
  (* The dummy element is immediately overwritten by the caller. *)
  let fresh = Array.make new_capacity t.heap.(0) in
  Array.blit t.heap 0 fresh 0 t.size;
  t.heap <- fresh

let add t ~time payload =
  if time < 0.0 || Float.is_nan time then
    invalid_arg "Event_queue.add: bad time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.heap = 0 then t.heap <- Array.make 16 entry
  else if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.heap.(0)

let peek_time t = match peek t with None -> None | Some e -> Some e.time

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (top.time, top.payload)
  end

let clear t = t.size <- 0

let to_sorted_list t =
  (* Non-destructive drain: copy and pop. Used in tests only. *)
  if t.size = 0 then []
  else begin
    let copy = { heap = Array.copy t.heap; size = t.size; next_seq = t.next_seq } in
    let rec drain acc =
      match pop copy with
      | None -> List.rev acc
      | Some pair -> drain (pair :: acc)
    in
    drain []
  end
