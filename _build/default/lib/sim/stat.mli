(** Summary statistics for multi-seed sweeps. *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val of_list : float list -> t
(** Raises [Invalid_argument] on the empty list. *)

val of_ints : int list -> t
val pp : t Fmt.t
