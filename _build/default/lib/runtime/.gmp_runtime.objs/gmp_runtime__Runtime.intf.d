lib/runtime/runtime.mli: Gmp_base Gmp_causality Gmp_net Gmp_sim Pid Vector_clock
