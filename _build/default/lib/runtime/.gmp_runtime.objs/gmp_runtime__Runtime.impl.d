lib/runtime/runtime.ml: Gmp_base Gmp_causality Gmp_net Gmp_sim List Pid Printf Vector_clock
