(** Per-category message statistics.

    The paper's §7.2 counts protocol messages only (the failure-detection
    mechanism is an oracle); tagging every send with a category lets the
    benches count exactly what the paper counts. *)

type t

val create : unit -> t

val record_sent : t -> category:string -> unit
val record_delivered : t -> category:string -> unit
val record_dropped : t -> category:string -> unit

val sent : t -> category:string -> int
val delivered : t -> category:string -> int
val dropped : t -> category:string -> int

val total_sent : t -> int
val total_delivered : t -> int
val total_dropped : t -> int

val sent_excluding : t -> categories:string list -> int
(** Total sends outside the given categories (e.g. excluding heartbeats). *)

val categories : t -> string list
val snapshot : t -> (string * int * int * int) list
(** [(category, sent, delivered, dropped)] rows. *)

val reset : t -> unit
val pp : t Fmt.t
