lib/net/delay.ml: Fmt Gmp_sim
