lib/net/lossy.ml: Delay Float Gmp_base Gmp_sim Hashtbl Pid
