lib/net/arq.ml: Gmp_base Gmp_sim Hashtbl Lossy Pid Queue
