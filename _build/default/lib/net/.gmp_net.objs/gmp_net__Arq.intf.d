lib/net/arq.mli: Delay Gmp_base Gmp_sim Pid
