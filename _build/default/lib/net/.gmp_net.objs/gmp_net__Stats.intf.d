lib/net/stats.mli: Fmt
