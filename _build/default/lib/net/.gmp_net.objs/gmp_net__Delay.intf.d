lib/net/delay.mli: Fmt Gmp_sim
