lib/net/stats.ml: Fmt Hashtbl List String
