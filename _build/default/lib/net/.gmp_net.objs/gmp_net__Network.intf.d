lib/net/network.mli: Delay Gmp_base Gmp_sim Pid Stats
