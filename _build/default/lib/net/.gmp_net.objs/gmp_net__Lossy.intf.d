lib/net/lossy.mli: Delay Gmp_base Gmp_sim Pid
