lib/net/network.ml: Delay Float Gmp_base Gmp_sim Hashtbl List Pid Queue Stats
