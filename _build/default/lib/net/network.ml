(* Simulated network: a complete graph of reliable (lossless, non-generating)
   FIFO channels with unbounded random delays.

   FIFO is enforced per ordered pair: a message's delivery time is at least
   epsilon after the previous delivery on the same channel.

   Three ways a message can fail to be processed, all consistent with the
   paper's model:
   - the destination crashed (messages to down processes vanish);
   - the destination disconnected its incoming channel from the source
     (system property S1: once p believes q faulty, p never receives from q);
   - a partition separates the endpoints: delivery is *parked*, not lost, and
     resumes in order if the partition heals (channels stay reliable). *)

open Gmp_base

type 'm t = {
  engine : Gmp_sim.Engine.t;
  rng : Gmp_sim.Rng.t;
  mutable delay : Delay.t;
  stats : Stats.t;
  fifo_epsilon : float;
  (* Per ordered pair (src,dst): virtual time of the latest scheduled
     delivery, to enforce FIFO. *)
  last_delivery : (Pid.t * Pid.t, float) Hashtbl.t;
  (* dst -> set of sources whose incoming channel dst has cut (S1). *)
  disconnected : Pid.Set.t Pid.Tbl.t;
  mutable crashed : Pid.Set.t;
  (* Partition: pids mapped to a group label; absent pids are in group 0.
     None = fully connected. *)
  mutable partition : int Pid.Map.t option;
  mutable handler : dst:Pid.t -> src:Pid.t -> 'm -> unit;
  (* Messages parked because of a partition, per ordered pair, FIFO. *)
  parked : (Pid.t * Pid.t, 'm parked_msg Queue.t) Hashtbl.t;
  mutable monitor : ('m send_record -> unit) option;
}

and 'm parked_msg = { category : string; payload : 'm }

and 'm send_record = {
  record_src : Pid.t;
  record_dst : Pid.t;
  record_category : string;
  record_payload : 'm;
  record_time : float;
}

let default_handler ~dst:_ ~src:_ _ =
  failwith "Network: no handler installed (call Network.set_handler)"

let create ?(fifo_epsilon = 1e-6) ~engine ~rng ~delay () =
  { engine;
    rng;
    delay;
    stats = Stats.create ();
    fifo_epsilon;
    last_delivery = Hashtbl.create 64;
    disconnected = Pid.Tbl.create 16;
    crashed = Pid.Set.empty;
    partition = None;
    handler = default_handler;
    parked = Hashtbl.create 16;
    monitor = None }

let set_handler t handler = t.handler <- handler
let set_monitor t monitor = t.monitor <- Some monitor
let set_delay t delay = t.delay <- delay

let stats t = t.stats
let engine t = t.engine

let crashed t pid = Pid.Set.mem pid t.crashed

let crash t pid = t.crashed <- Pid.Set.add pid t.crashed

let is_disconnected t ~at ~from =
  match Pid.Tbl.find_opt t.disconnected at with
  | None -> false
  | Some sources -> Pid.Set.mem from sources

let disconnect t ~at ~from =
  let sources =
    match Pid.Tbl.find_opt t.disconnected at with
    | None -> Pid.Set.empty
    | Some s -> s
  in
  Pid.Tbl.replace t.disconnected at (Pid.Set.add from sources)

let group_of t pid =
  match t.partition with
  | None -> 0
  | Some groups ->
    (match Pid.Map.find_opt pid groups with None -> 0 | Some g -> g)

let reachable t a b = group_of t a = group_of t b

let partition t groups =
  let table =
    List.fold_left
      (fun acc (group, pids) ->
        List.fold_left (fun acc pid -> Pid.Map.add pid group acc) acc pids)
      Pid.Map.empty
      (List.mapi (fun i pids -> (i + 1, pids)) groups)
  in
  t.partition <- Some table

let deliver t ~src ~dst ~category payload =
  if Pid.Set.mem dst t.crashed then
    Stats.record_dropped t.stats ~category
  else if is_disconnected t ~at:dst ~from:src then
    (* S1: silently discarded at the receiver. *)
    Stats.record_dropped t.stats ~category
  else if not (reachable t src dst) then begin
    (* Parked until the partition heals; channels stay reliable. *)
    let queue =
      match Hashtbl.find_opt t.parked (src, dst) with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace t.parked (src, dst) q;
        q
    in
    Queue.add { category; payload } queue
  end
  else begin
    Stats.record_delivered t.stats ~category;
    t.handler ~dst ~src payload
  end

let schedule_delivery t ~src ~dst ~category ~extra_delay payload =
  let sample = Delay.sample t.delay t.rng +. extra_delay in
  let now = Gmp_sim.Engine.now t.engine in
  let earliest =
    match Hashtbl.find_opt t.last_delivery (src, dst) with
    | None -> 0.0
    | Some last -> last +. t.fifo_epsilon
  in
  let at = Float.max (now +. sample) earliest in
  Hashtbl.replace t.last_delivery (src, dst) at;
  let (_ : Gmp_sim.Engine.handle) =
    Gmp_sim.Engine.schedule_at t.engine ~time:at (fun () ->
        deliver t ~src ~dst ~category payload)
  in
  ()

let send ?(extra_delay = 0.0) t ~src ~dst ~category payload =
  if Pid.equal src dst then invalid_arg "Network.send: src = dst";
  if not (Pid.Set.mem src t.crashed) then begin
    Stats.record_sent t.stats ~category;
    (match t.monitor with
     | None -> ()
     | Some monitor ->
       monitor
         { record_src = src;
           record_dst = dst;
           record_category = category;
           record_payload = payload;
           record_time = Gmp_sim.Engine.now t.engine });
    schedule_delivery t ~src ~dst ~category ~extra_delay payload
  end

let heal t =
  t.partition <- None;
  (* Flush parked traffic in channel order with fresh delays. *)
  let pending = Hashtbl.fold (fun key q acc -> (key, q) :: acc) t.parked [] in
  Hashtbl.reset t.parked;
  List.iter
    (fun ((src, dst), queue) ->
      Queue.iter
        (fun { category; payload } ->
          schedule_delivery t ~src ~dst ~category ~extra_delay:0.0 payload)
        queue)
    pending

let parked_count t =
  Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.parked 0
