(* Per-category message accounting. The paper's complexity analysis counts
   protocol messages and ignores the detection mechanism, so categories let
   benches exclude heartbeats from the tallies. *)

type t = {
  sent : (string, int) Hashtbl.t;
  delivered : (string, int) Hashtbl.t;
  dropped : (string, int) Hashtbl.t; (* dst crashed, disconnected (S1), … *)
}

let create () =
  { sent = Hashtbl.create 16;
    delivered = Hashtbl.create 16;
    dropped = Hashtbl.create 16 }

let bump table category =
  let current = match Hashtbl.find_opt table category with
    | None -> 0
    | Some n -> n
  in
  Hashtbl.replace table category (current + 1)

let record_sent t ~category = bump t.sent category
let record_delivered t ~category = bump t.delivered category
let record_dropped t ~category = bump t.dropped category

let get table category =
  match Hashtbl.find_opt table category with None -> 0 | Some n -> n

let sent t ~category = get t.sent category
let delivered t ~category = get t.delivered category
let dropped t ~category = get t.dropped category

let fold_table table = Hashtbl.fold (fun _ n acc -> acc + n) table 0

let total_sent t = fold_table t.sent
let total_delivered t = fold_table t.delivered
let total_dropped t = fold_table t.dropped

let categories t =
  let add table acc =
    Hashtbl.fold (fun k _ acc -> if List.mem k acc then acc else k :: acc)
      table acc
  in
  List.sort String.compare (add t.sent (add t.delivered (add t.dropped [])))

let sent_excluding t ~categories:excluded =
  Hashtbl.fold
    (fun category n acc -> if List.mem category excluded then acc else acc + n)
    t.sent 0

let reset t =
  Hashtbl.reset t.sent;
  Hashtbl.reset t.delivered;
  Hashtbl.reset t.dropped

let snapshot t =
  List.map
    (fun category ->
      (category, sent t ~category, delivered t ~category, dropped t ~category))
    (categories t)

let pp ppf t =
  let row ppf (category, s, d, x) =
    Fmt.pf ppf "%-18s sent=%-6d delivered=%-6d dropped=%d" category s d x
  in
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any "@\n") row) (snapshot t)
