(** Message-delay models for the simulated network. *)

type t

val constant : float -> t
val uniform : lo:float -> hi:float -> t
val exponential : mean:float -> t

val sample : t -> Gmp_sim.Rng.t -> float
val mean : t -> float
val pp : t Fmt.t
