(* A raw datagram layer: unreliable and duplicating; FIFO per channel by
   default (like a physical link), optionally fully reordering.

   The paper's model assumes reliable FIFO channels and notes they are
   "easily implemented: a (1-bit) sequence number on each message and an
   acknowledgement protocol". This module is the hostile medium underneath
   that footnote; Arq builds the assumed channel on top of it. The 1-bit
   protocol is sound over lossy-duplicating FIFO links; over arbitrarily
   reordering links it provably is not (stale frames can cross two bit
   flips) - the test suite demonstrates both. *)

open Gmp_base

type 'm t = {
  engine : Gmp_sim.Engine.t;
  rng : Gmp_sim.Rng.t;
  delay : Delay.t;
  loss : float; (* probability a datagram vanishes *)
  duplicate : float; (* probability a datagram is delivered twice *)
  fifo : bool; (* per-channel in-order delivery (physical link) *)
  last_delivery : (Pid.t * Pid.t, float) Hashtbl.t;
  mutable handler : dst:Pid.t -> src:Pid.t -> 'm -> unit;
  mutable sent : int;
  mutable lost : int;
  mutable duplicated : int;
}

let create ?(loss = 0.0) ?(duplicate = 0.0) ?(fifo = true) ~engine ~rng ~delay
    () =
  if loss < 0.0 || loss >= 1.0 then
    invalid_arg "Lossy.create: loss must be in [0,1)";
  if duplicate < 0.0 || duplicate > 1.0 then
    invalid_arg "Lossy.create: duplicate must be in [0,1]";
  { engine;
    rng;
    delay;
    loss;
    duplicate;
    fifo;
    last_delivery = Hashtbl.create 32;
    handler = (fun ~dst:_ ~src:_ _ -> failwith "Lossy: no handler");
    sent = 0;
    lost = 0;
    duplicated = 0 }

let set_handler t handler = t.handler <- handler

let datagrams_sent t = t.sent
let datagrams_lost t = t.lost
let datagrams_duplicated t = t.duplicated

let deliver_once t ~src ~dst payload =
  let sampled = Delay.sample t.delay t.rng in
  let now = Gmp_sim.Engine.now t.engine in
  let at =
    if t.fifo then begin
      let earliest =
        match Hashtbl.find_opt t.last_delivery (src, dst) with
        | None -> 0.0
        | Some last -> last +. 1e-6
      in
      let at = Float.max (now +. sampled) earliest in
      Hashtbl.replace t.last_delivery (src, dst) at;
      at
    end
    else now +. sampled
  in
  ignore
    (Gmp_sim.Engine.schedule_at t.engine ~time:at (fun () ->
         t.handler ~dst ~src payload)
      : Gmp_sim.Engine.handle)

let send t ~src ~dst payload =
  if Pid.equal src dst then invalid_arg "Lossy.send: src = dst";
  t.sent <- t.sent + 1;
  if Gmp_sim.Rng.float t.rng 1.0 < t.loss then t.lost <- t.lost + 1
  else begin
    deliver_once t ~src ~dst payload;
    if Gmp_sim.Rng.float t.rng 1.0 < t.duplicate then begin
      t.duplicated <- t.duplicated + 1;
      deliver_once t ~src ~dst payload
    end
  end
