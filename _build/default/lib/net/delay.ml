(* Message-delay models. The asynchronous model places no bound on delays;
   experiments pick a distribution and the protocol must be correct under all
   of them. *)

type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }

let constant d =
  if d < 0.0 then invalid_arg "Delay.constant: negative" else Constant d

let uniform ~lo ~hi =
  if lo < 0.0 || hi < lo then invalid_arg "Delay.uniform: bad range"
  else Uniform { lo; hi }

let exponential ~mean =
  if mean <= 0.0 then invalid_arg "Delay.exponential: non-positive mean"
  else Exponential { mean }

let sample t rng =
  match t with
  | Constant d -> d
  | Uniform { lo; hi } -> Gmp_sim.Rng.uniform rng ~lo ~hi
  | Exponential { mean } -> Gmp_sim.Rng.exponential rng ~mean

let mean = function
  | Constant d -> d
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { mean } -> mean

let pp ppf = function
  | Constant d -> Fmt.pf ppf "constant(%g)" d
  | Uniform { lo; hi } -> Fmt.pf ppf "uniform(%g,%g)" lo hi
  | Exponential { mean } -> Fmt.pf ppf "exp(mean=%g)" mean
