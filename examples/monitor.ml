(* Process monitoring - the paper's own motivating application (failure
   detection as a service, as in ISIS [14]): a control station watches a
   farm of workers through the membership abstraction. Crashes surface as
   view transitions; a restarted worker comes back as a NEW incarnation
   (the paper: "recovered processes are treated as new and different
   process instances"), so the monitor can tell a flapping host from a
   continuously-live one.

   Run: dune exec examples/monitor.exe *)

open Gmp_base
open Gmp_core
module Group = Gmp_runtime.Group

let () =
  (* p0 is the control station; p1..p5 are workers. *)
  let group = Group.create ~seed:11 ~n:6 () in
  let station = Group.member group (Pid.make 0) in

  (* The monitoring logic is nothing but a view-change subscription. *)
  let known = ref (View.members (Member.view station)) in
  Member.set_on_view_change station (fun m ->
      let current = View.members (Member.view m) in
      let gone =
        List.filter (fun p -> not (List.exists (Pid.equal p) current)) !known
      in
      let fresh =
        List.filter (fun p -> not (List.exists (Pid.equal p) !known)) current
      in
      List.iter
        (fun p ->
          Fmt.pr "  [station t=%6.2f] ALERT worker %s is down (view v%d)@."
            (Member.now m)
            (Pid.to_string p) (Member.version m))
        gone;
      List.iter
        (fun p ->
          let note =
            if Pid.incarnation p > 0 then " (restarted incarnation)" else ""
          in
          Fmt.pr "  [station t=%6.2f] worker %s enrolled%s (view v%d)@."
            (Member.now m)
            (Pid.to_string p) note (Member.version m))
        fresh;
      known := current);

  (* A worker dies; its replacement (same host, next incarnation) rejoins;
     another worker dies later. *)
  Group.crash_at group 15.0 (Pid.make 3);
  Group.join_at group 70.0 (Pid.reincarnate (Pid.make 3)) ~contact:(Pid.make 1);
  Group.crash_at group 120.0 (Pid.make 5);

  Fmt.pr "Monitoring 5 workers (p3 dies at 15, restarts as p3#1 at 70; p5 dies at 120)...@.";
  Group.run ~until:400.0 group;

  Fmt.pr "@.Final roster (station's view v%d): {%s}@."
    (Member.version station)
    (String.concat ", "
       (List.map Pid.to_string (View.members (Member.view station))));

  (* The station's alerts are exactly the removals in its local history -
     and GMP guarantees every other surviving process saw the same ones. *)
  let violations = Group.check group in
  Fmt.pr "GMP specification: %s@."
    (if violations = [] then "all hold"
     else Fmt.str "%d violations" (List.length violations))
