(* Quickstart: a five-process group, one crash, one join.

   Run: dune exec examples/quickstart.exe

   The group starts as {p0 .. p4} with p0 (the most senior process) acting
   as coordinator. We crash p4; the heartbeat detector notices, the
   coordinator runs the two-phase exclusion, and every surviving process
   installs the same next view. A new process p10 then joins through an
   arbitrary contact. Finally we machine-check the paper's GMP-0..GMP-5
   specification on the recorded trace. *)

open Gmp_base
open Gmp_core
module Group = Gmp_runtime.Group

let () =
  (* A deterministic simulated world: same seed, same run. *)
  let group = Group.create ~seed:2026 ~n:5 () in

  (* Watch view changes from p1's perspective. *)
  let p1 = Group.member group (Pid.make 1) in
  Member.set_on_view_change p1 (fun m ->
      Fmt.pr "  [p1] installed view v%d = %a@." (Member.version m) View.pp
        (Member.view m));

  Fmt.pr "Initial group: %a, coordinator %a@." View.pp (Member.view p1) Pid.pp
    (Member.manager p1);

  (* Inject a crash at t=20 and a join at t=60. *)
  Group.crash_at group 20.0 (Pid.make 4);
  Group.join_at group 60.0 (Pid.make 10) ~contact:(Pid.make 2);

  Fmt.pr "@.Running (crash of p4 at t=20, join of p10 at t=60)...@.";
  Group.run ~until:300.0 group;

  (* Every operational member sees the same sequence of views. *)
  Fmt.pr "@.Final states:@.";
  List.iter
    (fun m -> Fmt.pr "  %a@." Member.pp m)
    (Group.members group);

  (match Group.agreed_view group with
   | Some (ver, members) ->
     Fmt.pr "@.Agreed view v%d: {%s}@." ver
       (String.concat ", " (List.map Pid.to_string members))
   | None -> Fmt.pr "@.No agreement - this would be a bug.@.");

  (* Check the paper's specification on the whole run. *)
  let violations = Group.check group in
  Fmt.pr "GMP-0..GMP-5 + convergence: %s@."
    (if violations = [] then "all hold"
     else Fmt.str "%d violations!" (List.length violations));
  List.iter (fun v -> Fmt.pr "  %a@." Checker.pp_violation v) violations;

  Fmt.pr "Protocol messages used: %d@." (Group.protocol_messages group)
