(* A fault-tolerant lock service - the textbook reason failure detection
   must be AGREED upon: a lock held by a crashed process must be revoked and
   re-granted, but only if every server agrees the holder is gone, or two
   clients end up inside the critical section.

   The lock table is replicated across the member group (coordinator
   sequences grants over the application channel). Revocation is driven by
   the membership view itself: when the view excludes the holder, the lock
   returns to the queue and the next waiter gets it. Because views are
   1-copy (GMP-2/3), all surviving servers revoke at the same view
   boundary - no split-brain grants.

   Run: dune exec examples/lock_service.exe *)

open Gmp_base
open Gmp_core
module Group = Gmp_runtime.Group

type Wire.app +=
  | Lk_acquire of { lock : string; who : Pid.t }
  | Lk_release of { lock : string; who : Pid.t }
  | Lk_commit of { lseq : int; lock : string; holder : Pid.t option; queue : Pid.t list }

type lock_state = { holder : Pid.t option; queue : Pid.t list }

type server = {
  member : Member.t;
  table : (string, lock_state) Hashtbl.t;
  mutable lseq : int;
}

let state server lock =
  match Hashtbl.find_opt server.table lock with
  | Some s -> s
  | None -> { holder = None; queue = [] }

(* Coordinator-only: compute and replicate the next state of one lock. *)
let commit server lock next =
  let previous = state server lock in
  server.lseq <- server.lseq + 1;
  Hashtbl.replace server.table lock next;
  (if next.holder <> previous.holder then
     match next.holder with
     | Some holder ->
       Fmt.pr "  t=%6.2f %s GRANTED to %s@."
         (Member.now server.member)
         lock (Pid.to_string holder)
     | None ->
       Fmt.pr "  t=%6.2f %s is free@."
         (Member.now server.member)
         lock);
  Member.broadcast_app server.member
    (Lk_commit { lseq = server.lseq; lock; holder = next.holder; queue = next.queue })

let grant_next server lock st =
  match (st.holder, st.queue) with
  | None, next :: rest -> commit server lock { holder = Some next; queue = rest }
  | _, _ -> commit server lock st

let coordinate server msg =
  match msg with
  | Lk_acquire { lock; who } ->
    let st = state server lock in
    if st.holder = Some who || List.exists (Pid.equal who) st.queue then ()
    else grant_next server lock { st with queue = st.queue @ [ who ] }
  | Lk_release { lock; who } ->
    let st = state server lock in
    if st.holder = Some who then
      grant_next server lock { holder = None; queue = st.queue }
  | _ -> ()

(* Every server: revoke locks whose holders (or waiters) left the view. *)
let sweep_departed server =
  if Member.is_mgr server.member then begin
    let view = Member.view server.member in
    Hashtbl.iter
      (fun lock st ->
        let holder_gone =
          match st.holder with
          | Some h -> not (View.mem view h)
          | None -> false
        in
        let live_queue = List.filter (View.mem view) st.queue in
        if holder_gone then begin
          Fmt.pr "  t=%6.2f %s REVOKED from departed %s@."
            (Member.now server.member)
            lock
            (match st.holder with Some h -> Pid.to_string h | None -> "?");
          grant_next server lock { holder = None; queue = live_queue }
        end
        else if List.length live_queue <> List.length st.queue then
          commit server lock { st with queue = live_queue })
      (Hashtbl.copy server.table)
  end

let attach member =
  let server = { member; table = Hashtbl.create 8; lseq = 0 } in
  Member.set_app_handler member (fun ~src:_ msg ->
      match msg with
      | Lk_acquire _ | Lk_release _ ->
        if Member.is_mgr member then coordinate server msg
        else if not (Pid.equal (Member.manager member) (Member.pid member))
        then Member.send_app member ~dst:(Member.manager member) msg
      | Lk_commit { lseq; lock; holder; queue } ->
        if lseq > server.lseq then begin
          server.lseq <- lseq;
          Hashtbl.replace server.table lock { holder; queue }
        end
      | _ -> ());
  Member.set_on_view_change member (fun _ -> sweep_departed server);
  server

let request server msg =
  if Member.is_mgr server.member then coordinate server msg
  else Member.send_app server.member ~dst:(Member.manager server.member) msg

let () =
  let group = Group.create ~seed:23 ~n:5 () in
  let servers =
    List.map (fun m -> (Member.pid m, attach m)) (Group.members group)
  in
  let server pid = List.assoc pid servers in
  let p i = Pid.make i in

  Fmt.pr "Five servers; p2 takes the lock, then crashes; p3 and p4 wait.@.";
  Group.at group 10.0 (fun () ->
      request (server (p 1)) (Lk_acquire { lock = "L"; who = p 2 }));
  Group.at group 15.0 (fun () ->
      request (server (p 1)) (Lk_acquire { lock = "L"; who = p 3 }));
  Group.at group 18.0 (fun () ->
      request (server (p 4)) (Lk_acquire { lock = "L"; who = p 4 }));
  (* The holder dies while holding the lock. Membership notices, the view
     changes, and the sweep re-grants to the first live waiter. *)
  Group.crash_at group 30.0 (p 2);
  (* Later the new holder releases normally. *)
  Group.at group 80.0 (fun () ->
      request (server (p 3)) (Lk_release { lock = "L"; who = p 3 }));
  Group.run ~until:300.0 group;

  (* All surviving servers agree on the lock table. *)
  let live =
    List.filter (fun (pid, _) -> Member.operational (Group.member group pid)) servers
  in
  let holder_of (_, s) = (state s "L").holder in
  let holders = List.map holder_of live in
  let agreed =
    match holders with
    | [] -> true
    | h :: rest -> List.for_all (fun x -> x = h) rest
  in
  Fmt.pr "@.Final holder (all servers): %s - agreement: %b@."
    (match List.nth_opt holders 0 with
     | Some (Some h) -> Pid.to_string h
     | _ -> "none")
    agreed;
  let violations = Group.check group in
  Fmt.pr "GMP specification: %s@."
    (if violations = [] then "all hold"
     else Fmt.str "%d violations" (List.length violations))
