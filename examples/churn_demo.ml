(* Continuous churn - the paper's headline operational claim: "Our solution
   is fully 'online': we can process a constant flow of requests to both
   remove and add processes, which is exactly what occurs in actual
   systems" (s1).

   This demo runs a long session with a constant stream of crashes and
   (re)joins, prints the global view sequence as it unfolds, and shows the
   per-change message cost staying linear thanks to the compressed rounds.

   Run: dune exec examples/churn_demo.exe *)

open Gmp_base
open Gmp_core
module Group = Gmp_runtime.Group

let () =
  let n = 8 in
  let group = Group.create ~seed:31337 ~n () in

  (* Narrate view installations from whatever process currently survives. *)
  List.iter
    (fun m ->
      Member.set_on_view_change m (fun m ->
          (* Only one narrator per version: the coordinator. *)
          if Member.is_mgr m then
            Fmt.pr "  t=%7.2f v%-3d {%s}  (coordinator %s)@."
              (Member.now m)
              (Member.version m)
              (String.concat ","
                 (List.map Pid.to_string (View.members (Member.view m))))
              (Pid.to_string (Member.pid m))))
    (Group.members group);

  (* A deterministic churn script: every ~35 time units a host dies, every
     ~50 a fresh incarnation rejoins. The coordinator itself dies twice,
     forcing reconfigurations mid-stream. *)
  let crashes =
    [ (20.0, Pid.make 7);
      (55.0, Pid.make 0) (* coordinator! *);
      (90.0, Pid.make 2);
      (125.0, Pid.make 1) (* the second coordinator *);
      (160.0, Pid.make 4) ]
  in
  List.iter (fun (t, p) -> Group.crash_at group t p) crashes;
  let joins =
    [ (70.0, Pid.reincarnate (Pid.make 7), Pid.make 3);
      (110.0, Pid.reincarnate (Pid.make 0), Pid.make 3);
      (150.0, Pid.reincarnate (Pid.make 2), Pid.make 5);
      (190.0, Pid.reincarnate (Pid.make 4), Pid.make 5) ]
  in
  List.iter (fun (t, p, contact) -> Group.join_at group t p ~contact) joins;

  Fmt.pr "8 processes, 5 crashes (2 of them coordinators), 4 rejoins:@.";
  Group.run ~until:600.0 group;

  (match Group.agreed_view group with
   | Some (ver, members) ->
     Fmt.pr "@.Converged at v%d: {%s}@." ver
       (String.concat ", " (List.map Pid.to_string members))
   | None -> Fmt.pr "@.No agreement - this would be a bug.@.");

  let changes =
    match Group.agreed_view group with Some (v, _) -> v | None -> 0
  in
  let msgs = Group.protocol_messages group in
  Fmt.pr "view changes: %d; protocol messages: %d (%.1f per change; n stays ~%d)@."
    changes msgs
    (float_of_int msgs /. float_of_int (max 1 changes))
    n;

  let violations = Group.check group in
  Fmt.pr "GMP specification across the whole session: %s@."
    (if violations = [] then "all hold"
     else Fmt.str "%d violations" (List.length violations));
  List.iter (fun v -> Fmt.pr "  %a@." Checker.pp_violation v) violations
