(* A shared whiteboard on view-synchronous multicast - the ISIS-style
   application pattern the membership service exists to support.

   Every member keeps a list of strokes. Strokes are vsync multicasts:
   delivered within the epoch they were drawn in, and the flush at every
   view change guarantees that any two surviving members left each epoch
   with exactly the same strokes - even when an artist crashes mid-draw or
   the flushing coordinator itself dies.

   Run: dune exec examples/whiteboard.exe *)

open Gmp_base
open Gmp_core
module Group = Gmp_runtime.Group
module Vsync = Gmp_vsync.Vsync

type board = { vsync : Vsync.t; mutable strokes : string list }

let attach member =
  let vsync = Vsync.attach member in
  let board = { vsync; strokes = [] } in
  Vsync.set_on_deliver vsync (fun _ ~src:_ stroke ->
      board.strokes <- stroke :: board.strokes);
  board

let () =
  let group = Group.create ~seed:4096 ~n:5 () in
  let boards =
    List.map (fun m -> (Member.pid m, attach m)) (Group.members group)
  in
  let board pid = List.assoc pid boards in
  let p i = Pid.make i in

  let draw at who stroke =
    Group.at group at (fun () ->
        match Vsync.cast (board (p who)).vsync stroke with
        | Some _ -> ()
        | None ->
          (* Epoch closing: a real client would retry; keep the demo
             simple and note the refusal. *)
          Fmt.pr "  t=%6.2f p%d's stroke %S refused (epoch closing)@." at who
            stroke)
  in

  Fmt.pr "Five artists; p4 crashes mid-session; p0 (the coordinator) crashes later.@.";
  draw 10.0 1 "p1: circle";
  draw 12.0 2 "p2: square";
  draw 14.0 4 "p4: last stroke";
  Group.crash_at group 14.4 (p 4);
  draw 40.0 3 "p3: triangle";
  Group.crash_at group 50.0 (p 0);
  draw 90.0 1 "p1: after failover";
  Group.run ~until:400.0 group;

  (* Every surviving board shows the same picture per epoch. *)
  let live =
    List.filter
      (fun (pid, _) -> Member.operational (Group.member group pid))
      boards
  in
  Fmt.pr "@.Final boards:@.";
  List.iter
    (fun (pid, b) ->
      Fmt.pr "  %-4s epoch=%d strokes=[%s]@." (Pid.to_string pid)
        (Vsync.epoch b.vsync)
        (String.concat "; " (List.rev b.strokes)))
    live;
  let pictures =
    List.map (fun (_, b) -> List.sort compare b.strokes) live
  in
  let agreed =
    match pictures with
    | [] -> true
    | first :: rest -> List.for_all (fun x -> x = first) rest
  in
  Fmt.pr "@.Boards identical across survivors: %b@." agreed;
  let violations = Group.check group in
  Fmt.pr "GMP specification: %s@."
    (if violations = [] then "all hold"
     else Fmt.str "%d violations" (List.length violations))
