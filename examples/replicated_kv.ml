(* A primary-backup replicated key-value store on top of the membership
   service - the kind of application the paper's introduction motivates
   (servers that must not "behave inconsistently with some other server that
   has simply seen different group members").

   Run: dune exec examples/replicated_kv.exe

   Every group member keeps a replica. Writes go to the current coordinator
   (the primary), which orders them and replicates to the members of its
   current view. Because views are 1-copy (GMP-2/3), "the members of the
   current view" is well-defined: after a primary crash the membership
   protocol installs a unique next view, the new coordinator takes over the
   write sequence, and replicas never diverge.

   Application traffic rides the membership layer's App messages, which are
   subject to the paper's "no messages from future views" buffering rule. *)

open Gmp_base
open Gmp_core
module Group = Gmp_runtime.Group

(* Application message vocabulary (extends the wire's extensible [app]). *)
type Wire.app +=
  | Put of { key : string; value : string }
      (* client write, addressed to the primary *)
  | Replicate of { wseq : int; key : string; value : string }
      (* primary -> backups: ordered write *)

type replica = {
  member : Member.t;
  store : (string, string) Hashtbl.t;
  mutable applied : int; (* writes applied, for ordering checks *)
}

let apply replica ~wseq ~key ~value =
  Hashtbl.replace replica.store key value;
  replica.applied <- max replica.applied wseq

(* Wire the KV behaviour onto a member. *)
let attach member =
  let replica = { member; store = Hashtbl.create 16; applied = 0 } in
  let next_wseq = ref 0 in
  Member.set_app_handler member (fun ~src:_ msg ->
      match msg with
      | Put { key; value } ->
        (* Only the coordinator orders writes; a stale primary that already
           lost its role simply ignores the request (the client retries). *)
        if Member.is_mgr member then begin
          incr next_wseq;
          let wseq = !next_wseq in
          apply replica ~wseq ~key ~value;
          Member.broadcast_app member (Replicate { wseq; key; value })
        end
      | Replicate { wseq; key; value } -> apply replica ~wseq ~key ~value
      | _ -> ());
  Member.set_on_view_change member (fun m ->
      if Member.is_mgr m then
        (* Take over the write sequence from the number of writes applied. *)
        next_wseq := max !next_wseq replica.applied);
  replica

(* A client: asks any live replica who the primary is and routes the write
   to it (through a non-primary witness, like a real client talking to its
   nearest server). *)
let submit group ~key ~value =
  let live =
    List.filter
      (fun m -> Member.operational m && Member.joined m)
      (Group.members group)
  in
  match live with
  | [] -> ()
  | witness :: _ ->
    let primary = Member.manager witness in
    let gateway =
      (* Prefer a witness that is not the primary itself, so the request
         travels the network like a real client call. *)
      match
        List.find_opt (fun m -> not (Pid.equal (Member.pid m) primary)) live
      with
      | Some other -> other
      | None -> witness
    in
    if not (Pid.equal (Member.pid gateway) primary) then
      Member.send_app gateway ~dst:primary (Put { key; value })

let () =
  let group = Group.create ~seed:7 ~n:5 () in
  let replicas =
    List.map (fun m -> (Member.pid m, attach m)) (Group.members group)
  in

  (* A stream of writes; the primary crashes in the middle of it. *)
  let engine = Group.engine group in
  let keys = [ "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta" ] in
  List.iteri
    (fun i key ->
      let value = Fmt.str "v%d" i in
      let go time =
        ignore
          (Gmp_sim.Engine.schedule_at engine ~time (fun () ->
               submit group ~key ~value)
            : Gmp_sim.Engine.handle)
      in
      let time = 10.0 +. (8.0 *. float_of_int i) in
      go time;
      (* Clients retry: a write sent to a dying primary would otherwise be
         lost (the store stays consistent either way; retries make it
         complete too). *)
      go (time +. 60.0))
    keys;
  Group.crash_at group 30.0 (Pid.make 0);

  Fmt.pr "Writing %d keys while the primary (p0) crashes at t=30...@."
    (List.length keys);
  Group.run ~until:400.0 group;

  (* Survivors must agree on membership AND on store contents. *)
  (match Group.agreed_view group with
   | Some (ver, members) ->
     Fmt.pr "@.Final view v%d: {%s} (primary %s)@." ver
       (String.concat ", " (List.map Pid.to_string members))
       (match members with m :: _ -> Pid.to_string m | [] -> "?")
   | None -> Fmt.pr "@.No agreed view!@.");

  let surviving =
    List.filter (fun (_, r) -> Member.operational r.member) replicas
  in
  let dump (pid, r) =
    let bindings =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.store [])
    in
    Fmt.pr "  %-4s: %s@." (Pid.to_string pid)
      (String.concat " "
         (List.map (fun (k, v) -> Fmt.str "%s=%s" k v) bindings));
    bindings
  in
  Fmt.pr "@.Replica contents:@.";
  let stores = List.map dump surviving in
  let consistent =
    match stores with
    | [] -> true
    | first :: rest -> List.for_all (fun s -> s = first) rest
  in
  Fmt.pr "@.Replicas consistent: %b@." consistent;
  let violations = Group.check group in
  Fmt.pr "GMP specification: %s@."
    (if violations = [] then "all hold"
     else Fmt.str "%d violations" (List.length violations))
