(* Re-export: the category registry and counters moved to [Gmp_platform]
   so the protocol core (which tags every send with a category) does not
   depend on the simulated network. Existing [Gmp_net.Stats] users are
   unaffected. *)

include Gmp_platform.Stats
