(* A raw datagram layer: unreliable, duplicating and (optionally, via the
   netem model) reordering; FIFO per channel by default (like a physical
   link), optionally fully reordering.

   The paper's model assumes reliable FIFO channels and notes they are
   "easily implemented: a (1-bit) sequence number on each message and an
   acknowledgement protocol". This module is the hostile medium underneath
   that footnote; Arq builds the assumed channel on top of it. The 1-bit
   protocol is sound over lossy-duplicating FIFO links; over arbitrarily
   reordering links it provably is not (stale frames can cross two bit
   flips) - the test suite demonstrates both.

   Every per-datagram fate (drop / delay / duplicate / hold-for-reorder)
   comes from one [Netem.sample] call: the identical decision function the
   live runtime applies at its socket seam, so simulator and live cluster
   share one fault vocabulary. *)

open Gmp_base

type 'm t = {
  engine : Gmp_sim.Engine.t;
  rng : Gmp_sim.Rng.t;
  model : Netem.t;
  fifo : bool; (* per-channel in-order delivery (physical link) *)
  last_delivery : (Pid.t * Pid.t, float) Hashtbl.t;
  mutable handler : dst:Pid.t -> src:Pid.t -> 'm -> unit;
  mutable sent : int;
  mutable lost : int;
  mutable duplicated : int;
  mutable reordered : int;
}

let of_model ?(fifo = true) ~engine ~rng model =
  { engine;
    rng;
    model;
    fifo;
    last_delivery = Hashtbl.create 32;
    handler = (fun ~dst:_ ~src:_ _ -> failwith "Lossy: no handler");
    sent = 0;
    lost = 0;
    duplicated = 0;
    reordered = 0 }

let create ?(loss = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0) ?(fifo = true)
    ~engine ~rng ~delay () =
  of_model ~fifo ~engine ~rng (Netem.make ~loss ~duplicate ~reorder ~delay ())

let set_handler t handler = t.handler <- handler

let model t = t.model
let datagrams_sent t = t.sent
let datagrams_lost t = t.lost
let datagrams_duplicated t = t.duplicated
let datagrams_reordered t = t.reordered

let deliver_copy t ~src ~dst ~delay ~held payload =
  let now = Gmp_sim.Engine.now t.engine in
  let at =
    if t.fifo && not held then begin
      (* A physical link: later sends on the same channel never overtake.
         Held copies deliberately skip the floor (and do not raise it) -
         that is what reordering means. *)
      let earliest =
        match Hashtbl.find_opt t.last_delivery (src, dst) with
        | None -> 0.0
        | Some last -> last +. 1e-6
      in
      let at = Float.max (now +. delay) earliest in
      Hashtbl.replace t.last_delivery (src, dst) at;
      at
    end
    else now +. delay
  in
  ignore
    (Gmp_sim.Engine.schedule_at t.engine ~time:at (fun () ->
         t.handler ~dst ~src payload)
      : Gmp_sim.Engine.handle)

let send t ~src ~dst payload =
  if Pid.equal src dst then invalid_arg "Lossy.send: src = dst";
  t.sent <- t.sent + 1;
  match Netem.sample t.model t.rng with
  | Netem.Drop -> t.lost <- t.lost + 1
  | Netem.Deliver { delay; dup_delay; held } ->
    if held then t.reordered <- t.reordered + 1;
    deliver_copy t ~src ~dst ~delay ~held payload;
    (match dup_delay with
    | None -> ()
    | Some d ->
      t.duplicated <- t.duplicated + 1;
      deliver_copy t ~src ~dst ~delay:d ~held:false payload)
