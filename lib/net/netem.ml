(* The shared fault vocabulary: one per-link network-emulation model that
   both worlds speak.

   The simulator's hostile medium (Lossy) and the live node's socket seam
   inject faults through the same record and the same decision function, so
   an experiment tuned in the simulator transfers to real processes
   verbatim: loss probability, a delay distribution (the live CLI's
   latency +/- jitter is [Delay.uniform]), duplication, and reordering.

   [sample] is deliberately pure in the RNG: given the same generator state
   it returns the same verdict, so a seeded per-link stream replays the
   same fault pattern for the same arrival sequence - in the simulator that
   makes runs bit-identical; in the live world it makes a soak's fault
   schedule reproducible per (seed, link) even though wall-clock timing is
   not. The draw order (loss, base delay, reorder, duplicate, dup delay)
   is part of the vocabulary: [loss] and [duplicate] always consume a draw,
   exactly as the pre-Netem Lossy did, so existing seeded simulations are
   unchanged; [reorder] - the new knob - draws only when nonzero. *)

type t = {
  loss : float; (* P(datagram vanishes), in [0,1) *)
  duplicate : float; (* P(a second copy is delivered), in [0,1] *)
  reorder : float; (* P(a delivered copy is held extra, breaking FIFO) *)
  delay : Delay.t; (* per-copy base delay distribution *)
}

let make ?(loss = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0)
    ?(delay = Delay.constant 0.0) () =
  if loss < 0.0 || loss >= 1.0 then
    invalid_arg "Netem.make: loss must be in [0,1)";
  if duplicate < 0.0 || duplicate > 1.0 then
    invalid_arg "Netem.make: duplicate must be in [0,1]";
  if reorder < 0.0 || reorder > 1.0 then
    invalid_arg "Netem.make: reorder must be in [0,1]";
  { loss; duplicate; reorder; delay }

let none = make ()

let of_latency ?(loss = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0)
    ?(jitter = 0.0) latency =
  if latency < 0.0 then invalid_arg "Netem.of_latency: negative latency";
  if jitter < 0.0 then invalid_arg "Netem.of_latency: negative jitter";
  let delay =
    if jitter = 0.0 then Delay.constant latency
    else
      Delay.uniform
        ~lo:(Float.max 0.0 (latency -. jitter))
        ~hi:(latency +. jitter)
  in
  make ~loss ~duplicate ~reorder ~delay ()

let is_none t =
  t.loss = 0.0 && t.duplicate = 0.0 && t.reorder = 0.0
  && Delay.mean t.delay = 0.0

let loss t = t.loss
let duplicate t = t.duplicate
let reorder t = t.reorder
let delay t = t.delay

type verdict =
  | Drop
  | Deliver of { delay : float; dup_delay : float option; held : bool }

(* A held (reordered) copy waits an extra draw plus the distribution's
   mean: for any delay model of nonzero width or offset, frames sent up to
   a full delay later overtake it. With an all-zero delay model a hold
   degenerates to zero - there is no time window to leapfrog - so reorder
   only bites when latency or jitter is configured, which the constructors
   of real experiments always do. *)
let sample t rng =
  if Gmp_sim.Rng.float rng 1.0 < t.loss then Drop
  else begin
    let base = Delay.sample t.delay rng in
    let held = t.reorder > 0.0 && Gmp_sim.Rng.float rng 1.0 < t.reorder in
    let delay =
      if held then base +. Delay.sample t.delay rng +. Delay.mean t.delay
      else base
    in
    let dup_delay =
      if Gmp_sim.Rng.float rng 1.0 < t.duplicate then
        Some (Delay.sample t.delay rng)
      else None
    in
    Deliver { delay; dup_delay; held }
  end

(* Per-link seeding: one splitmix stream per directed (self, peer) link,
   derived from the experiment seed by plain LCG mixing. Folding in both
   endpoints (id and incarnation) keeps the streams of links (a<-b) and
   (a<-c) independent even under one experiment seed. *)
let link_seed ~seed ~self ~peer =
  let mix h v = (h * 0x2545F4914F6CDD1D) + ((2 * v) + 1) in
  mix
    (mix
       (mix
          (mix (mix seed (Gmp_base.Pid.id self)) (Gmp_base.Pid.incarnation self))
          (Gmp_base.Pid.id peer))
       (Gmp_base.Pid.incarnation peer))
    0x9e3779b9

let pp ppf t =
  Fmt.pf ppf "netem(loss=%g dup=%g reorder=%g delay=%a)" t.loss t.duplicate
    t.reorder Delay.pp t.delay
