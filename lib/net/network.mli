(** Simulated network: complete graph of reliable FIFO channels.

    Implements the paper's channel model: lossless, non-generating, FIFO,
    unbounded delays. Additionally supports:
    - per-direction disconnection ({!disconnect}), realizing system property
      S1 (once p believes q faulty, p never again receives from q);
    - crash of endpoints (messages to a down process vanish);
    - partitions that park traffic and release it in FIFO order on {!heal}. *)

open Gmp_base

type 'm t

type 'm send_record = {
  record_src : Pid.t;
  record_dst : Pid.t;
  record_category : Stats.category;
  record_payload : 'm;
  record_time : float;
}

val create :
  ?fifo_epsilon:float ->
  engine:Gmp_sim.Engine.t ->
  rng:Gmp_sim.Rng.t ->
  delay:Delay.t ->
  unit ->
  'm t

val set_handler : 'm t -> (dst:Pid.t -> src:Pid.t -> 'm -> unit) -> unit
(** Install the delivery callback (the runtime's dispatcher). *)

val set_monitor : 'm t -> ('m send_record -> unit) -> unit
(** Observe every send (for tracing); does not affect delivery. *)

val set_delay : 'm t -> Delay.t -> unit

val send :
  ?extra_delay:float ->
  'm t ->
  src:Pid.t ->
  dst:Pid.t ->
  category:Stats.category ->
  'm ->
  unit
(** Sends from crashed processes are ignored; [extra_delay] adds to the
    sampled delay (for adversarial schedules). Raises on [src = dst]. *)

val crash : 'm t -> Pid.t -> unit
val crashed : 'm t -> Pid.t -> bool

val disconnect : 'm t -> at:Pid.t -> from:Pid.t -> unit
(** [disconnect t ~at:p ~from:q]: p stops receiving from q (S1). *)

val is_disconnected : 'm t -> at:Pid.t -> from:Pid.t -> bool

val partition : 'm t -> Pid.t list list -> unit
(** Split into groups; unlisted pids form an implicit extra group. Traffic
    across groups is parked, not lost. *)

val heal : 'm t -> unit
(** Remove the partition and release parked traffic in FIFO order. *)

val reachable : 'm t -> Pid.t -> Pid.t -> bool
val parked_count : 'm t -> int

val slot_for : 'm t -> Pid.t -> int
(** Dense per-network slot of a pid, interning it on first use. Deliveries
    scheduled on the engine are tagged [~proc:dst_slot] and
    [~chan:(src_slot lsl 16 lor dst_slot)]; this exposes the same slot space
    so the explorer can relate engine tags back to processes. *)

val pid_of_slot : 'm t -> int -> Pid.t option
(** Inverse of {!slot_for} for already-interned slots. *)

val decode_chan : 'm t -> int -> (Pid.t * Pid.t) option
(** Decode an engine channel tag back to [(src, dst)], if both endpoints are
    known to this network. *)

val fingerprint : 'm t -> int
(** Order-insensitive-to-construction hash of the network's adversarial
    state: crash flags, disconnections, partition assignment, and parked
    queue lengths per channel. Used by the explorer's state pruning. *)

val stats : 'm t -> Stats.t
val engine : 'm t -> Gmp_sim.Engine.t

type 'm checkpoint
(** Capture of the network's mutable state: pid interning cursor, per-channel
    FIFO cursors and parked queues, crash/disconnect flags, partition map,
    delay model, message counters and the network's RNG stream. Restoring
    rewrites the {e same} channel records in place (in-flight delivery
    closures hold them by reference) and un-interns pids first seen after the
    capture. The engine itself is not included — checkpoint it separately. *)

val checkpoint : 'm t -> 'm checkpoint

val restore : 'm t -> 'm checkpoint -> unit
(** A checkpoint stays valid across any number of restores. *)
