(* Simulated network: a complete graph of reliable (lossless, non-generating)
   FIFO channels with unbounded random delays.

   FIFO is enforced per ordered pair: a message's delivery time is at least
   epsilon after the previous delivery on the same channel.

   Three ways a message can fail to be processed, all consistent with the
   paper's model:
   - the destination crashed (messages to down processes vanish);
   - the destination disconnected its incoming channel from the source
     (system property S1: once p believes q faulty, p never receives from q);
   - a partition separates the endpoints: delivery is *parked*, not lost, and
     resumes in order if the partition heals (channels stay reliable). *)

open Gmp_base

type 'm t = {
  engine : Gmp_sim.Engine.t;
  rng : Gmp_sim.Rng.t;
  mutable delay : Delay.t;
  stats : Stats.t;
  fifo_epsilon : float;
  (* Per ordered pair (src,dst): all mutable channel state in one record,
     found with a single lookup per send (deliveries capture the record in
     their closure and pay no lookup at all). *)
  channels : (Pid.t * Pid.t, 'm channel) Hashtbl.t;
  (* dst -> set of sources whose incoming channel dst has cut (S1). *)
  disconnected : Pid.Set.t Pid.Tbl.t;
  mutable crashed : Pid.Set.t;
  (* Partition: pids mapped to a group label; absent pids are in group 0.
     None = fully connected. *)
  mutable partition : int Pid.Map.t option;
  mutable handler : dst:Pid.t -> src:Pid.t -> 'm -> unit;
  mutable monitor : ('m send_record -> unit) option;
}

and 'm channel = {
  (* Virtual time of the latest scheduled delivery, to enforce FIFO;
     [neg_infinity] before the first one. *)
  mutable last_delivery : float;
  (* Messages parked because of a partition, FIFO. *)
  parked : 'm parked_msg Queue.t;
}

and 'm parked_msg = { category : string; payload : 'm }

and 'm send_record = {
  record_src : Pid.t;
  record_dst : Pid.t;
  record_category : string;
  record_payload : 'm;
  record_time : float;
}

let default_handler ~dst:_ ~src:_ _ =
  failwith "Network: no handler installed (call Network.set_handler)"

let create ?(fifo_epsilon = 1e-6) ~engine ~rng ~delay () =
  { engine;
    rng;
    delay;
    stats = Stats.create ();
    fifo_epsilon;
    channels = Hashtbl.create 64;
    disconnected = Pid.Tbl.create 16;
    crashed = Pid.Set.empty;
    partition = None;
    handler = default_handler;
    monitor = None }

let channel t ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt t.channels key with
  | Some ch -> ch
  | None ->
    let ch = { last_delivery = Float.neg_infinity; parked = Queue.create () } in
    Hashtbl.add t.channels key ch;
    ch

let set_handler t handler = t.handler <- handler
let set_monitor t monitor = t.monitor <- Some monitor
let set_delay t delay = t.delay <- delay

let stats t = t.stats
let engine t = t.engine

let crashed t pid = Pid.Set.mem pid t.crashed

let crash t pid = t.crashed <- Pid.Set.add pid t.crashed

let is_disconnected t ~at ~from =
  match Pid.Tbl.find_opt t.disconnected at with
  | None -> false
  | Some sources -> Pid.Set.mem from sources

let disconnect t ~at ~from =
  let sources =
    match Pid.Tbl.find_opt t.disconnected at with
    | None -> Pid.Set.empty
    | Some s -> s
  in
  Pid.Tbl.replace t.disconnected at (Pid.Set.add from sources)

let group_of t pid =
  match t.partition with
  | None -> 0
  | Some groups ->
    (match Pid.Map.find_opt pid groups with None -> 0 | Some g -> g)

let reachable t a b = group_of t a = group_of t b

let partition t groups =
  let table =
    List.fold_left
      (fun acc (group, pids) ->
        List.fold_left (fun acc pid -> Pid.Map.add pid group acc) acc pids)
      Pid.Map.empty
      (List.mapi (fun i pids -> (i + 1, pids)) groups)
  in
  t.partition <- Some table

let deliver t ch ~src ~dst ~category payload =
  if Pid.Set.mem dst t.crashed then
    Stats.record_dropped t.stats ~category
  else if is_disconnected t ~at:dst ~from:src then
    (* S1: silently discarded at the receiver. *)
    Stats.record_dropped t.stats ~category
  else if not (reachable t src dst) then
    (* Parked until the partition heals; channels stay reliable. *)
    Queue.add { category; payload } ch.parked
  else begin
    Stats.record_delivered t.stats ~category;
    t.handler ~dst ~src payload
  end

let schedule_on t ch ~src ~dst ~category ~extra_delay payload =
  let sample = Delay.sample t.delay t.rng +. extra_delay in
  let now = Gmp_sim.Engine.now t.engine in
  let earliest =
    if ch.last_delivery = Float.neg_infinity then 0.0
    else ch.last_delivery +. t.fifo_epsilon
  in
  let at = Float.max (now +. sample) earliest in
  ch.last_delivery <- at;
  let (_ : Gmp_sim.Engine.handle) =
    Gmp_sim.Engine.schedule_at t.engine ~time:at (fun () ->
        deliver t ch ~src ~dst ~category payload)
  in
  ()

let schedule_delivery t ~src ~dst ~category ~extra_delay payload =
  schedule_on t (channel t ~src ~dst) ~src ~dst ~category ~extra_delay payload

let send ?(extra_delay = 0.0) t ~src ~dst ~category payload =
  if Pid.equal src dst then invalid_arg "Network.send: src = dst";
  if not (Pid.Set.mem src t.crashed) then begin
    Stats.record_sent t.stats ~category;
    (match t.monitor with
     | None -> ()
     | Some monitor ->
       monitor
         { record_src = src;
           record_dst = dst;
           record_category = category;
           record_payload = payload;
           record_time = Gmp_sim.Engine.now t.engine });
    schedule_delivery t ~src ~dst ~category ~extra_delay payload
  end

let heal t =
  t.partition <- None;
  (* Flush parked traffic in channel order with fresh delays. Channels are
     sorted by endpoint pair so the flush order (and thus the RNG draw
     order) is deterministic, not hash-table order. *)
  let pending =
    Hashtbl.fold
      (fun key ch acc ->
        if Queue.is_empty ch.parked then acc else (key, ch) :: acc)
      t.channels []
    |> List.sort (fun ((a1, a2), _) ((b1, b2), _) ->
           match Pid.compare a1 b1 with 0 -> Pid.compare a2 b2 | c -> c)
  in
  List.iter
    (fun ((src, dst), ch) ->
      let msgs = Queue.fold (fun acc m -> m :: acc) [] ch.parked in
      Queue.clear ch.parked;
      List.iter
        (fun { category; payload } ->
          schedule_on t ch ~src ~dst ~category ~extra_delay:0.0 payload)
        (List.rev msgs))
    pending

let parked_count t =
  Hashtbl.fold (fun _ ch acc -> acc + Queue.length ch.parked) t.channels 0
