(* Simulated network: a complete graph of reliable (lossless, non-generating)
   FIFO channels with unbounded random delays.

   FIFO is enforced per ordered pair: a message's delivery time is at least
   epsilon after the previous delivery on the same channel.

   Channel state lives in a dense matrix indexed by small per-network pid
   slots (pids are interned on first contact): a send resolves its channel
   with two int-keyed table hits and two array reads — no tuple allocation,
   no polymorphic hashing. Crash and disconnection flags are dense arrays
   over the same slots, so the delivery path is array reads only.

   Three ways a message can fail to be processed, all consistent with the
   paper's model:
   - the destination crashed (messages to down processes vanish);
   - the destination disconnected its incoming channel from the source
     (system property S1: once p believes q faulty, p never receives from q);
   - a partition separates the endpoints: delivery is *parked*, not lost, and
     resumes in order if the partition heals (channels stay reliable). *)

open Gmp_base

type 'm t = {
  engine : Gmp_sim.Engine.t;
  rng : Gmp_sim.Rng.t;
  mutable delay : Delay.t;
  stats : Stats.t;
  fifo_epsilon : float;
  (* Pid interning: pid -> dense slot in the arrays below. *)
  pid_slots : int Pid.Tbl.t;
  mutable pids : Pid.t array; (* slot -> pid *)
  mutable npids : int;
  mutable cap : int; (* = Array.length pids; rows are [cap] wide *)
  (* chan_rows.(src_slot).(dst_slot): all mutable channel state in one
     record, found with two array reads per send (deliveries capture the
     record in their closure and pay no lookup at all). [dummy] marks
     not-yet-created channels (physical equality). *)
  mutable chan_rows : 'm channel array array;
  dummy : 'm channel;
  (* disc_rows.(dst_slot).(src_slot): dst has cut its incoming channel from
     src (S1). *)
  mutable disc_rows : bool array array;
  mutable crash_flags : bool array;
  (* Partition: pids mapped to a group label; absent pids are in group 0.
     None = fully connected. *)
  mutable partition : int Pid.Map.t option;
  mutable handler : dst:Pid.t -> src:Pid.t -> 'm -> unit;
  mutable monitor : ('m send_record -> unit) option;
}

and 'm channel = {
  src_slot : int;
  dst_slot : int;
  (* Virtual time of the latest scheduled delivery, to enforce FIFO;
     [neg_infinity] before the first one. *)
  mutable last_delivery : float;
  (* Messages parked because of a partition, FIFO. *)
  parked : 'm parked_msg Queue.t;
}

and 'm parked_msg = { category : Stats.category; payload : 'm }

and 'm send_record = {
  record_src : Pid.t;
  record_dst : Pid.t;
  record_category : Stats.category;
  record_payload : 'm;
  record_time : float;
}

let default_handler ~dst:_ ~src:_ _ =
  failwith "Network: no handler installed (call Network.set_handler)"

let initial_cap = 16

let create ?(fifo_epsilon = 1e-6) ~engine ~rng ~delay () =
  let dummy =
    { src_slot = -1;
      dst_slot = -1;
      last_delivery = Float.neg_infinity;
      parked = Queue.create () }
  in
  { engine;
    rng;
    delay;
    stats = Stats.create ();
    fifo_epsilon;
    pid_slots = Pid.Tbl.create 64;
    pids = Array.make initial_cap (Pid.make 0);
    npids = 0;
    cap = initial_cap;
    chan_rows = Array.init initial_cap (fun _ -> Array.make initial_cap dummy);
    dummy;
    disc_rows = Array.init initial_cap (fun _ -> Array.make initial_cap false);
    crash_flags = Array.make initial_cap false;
    partition = None;
    handler = default_handler;
    monitor = None }

let grow_tables t =
  let cap = 2 * t.cap in
  let pids = Array.make cap (Pid.make 0) in
  Array.blit t.pids 0 pids 0 t.npids;
  let chan_rows =
    Array.init cap (fun i ->
        let row = Array.make cap t.dummy in
        if i < t.cap then Array.blit t.chan_rows.(i) 0 row 0 t.cap;
        row)
  in
  let disc_rows =
    Array.init cap (fun i ->
        let row = Array.make cap false in
        if i < t.cap then Array.blit t.disc_rows.(i) 0 row 0 t.cap;
        row)
  in
  let crash_flags = Array.make cap false in
  Array.blit t.crash_flags 0 crash_flags 0 t.cap;
  t.pids <- pids;
  t.chan_rows <- chan_rows;
  t.disc_rows <- disc_rows;
  t.crash_flags <- crash_flags;
  t.cap <- cap

let pid_slot t pid =
  match Pid.Tbl.find t.pid_slots pid with
  | slot -> slot
  | exception Not_found ->
    let slot = t.npids in
    if slot = t.cap then grow_tables t;
    t.pids.(slot) <- pid;
    Pid.Tbl.add t.pid_slots pid slot;
    t.npids <- slot + 1;
    slot

(* Slot if the pid has ever touched the network, else -1 (read-only paths
   must not intern). *)
let slot_of t pid =
  match Pid.Tbl.find t.pid_slots pid with
  | slot -> slot
  | exception Not_found -> -1

let channel t ~src ~dst =
  let i = pid_slot t src in
  let j = pid_slot t dst in
  let row = t.chan_rows.(i) in
  let ch = row.(j) in
  if ch != t.dummy then ch
  else begin
    let ch =
      { src_slot = i;
        dst_slot = j;
        last_delivery = Float.neg_infinity;
        parked = Queue.create () }
    in
    row.(j) <- ch;
    ch
  end

let set_handler t handler = t.handler <- handler
let set_monitor t monitor = t.monitor <- Some monitor
let set_delay t delay = t.delay <- delay

let stats t = t.stats
let engine t = t.engine

let crashed t pid =
  let slot = slot_of t pid in
  slot >= 0 && t.crash_flags.(slot)

let crash t pid = t.crash_flags.(pid_slot t pid) <- true

let is_disconnected t ~at ~from =
  let at = slot_of t at and from = slot_of t from in
  at >= 0 && from >= 0 && t.disc_rows.(at).(from)

let disconnect t ~at ~from =
  let at = pid_slot t at and from = pid_slot t from in
  t.disc_rows.(at).(from) <- true

let group_of t pid =
  match t.partition with
  | None -> 0
  | Some groups ->
    (match Pid.Map.find_opt pid groups with None -> 0 | Some g -> g)

let reachable t a b = group_of t a = group_of t b

let partition t groups =
  let table =
    List.fold_left
      (fun acc (group, pids) ->
        List.fold_left (fun acc pid -> Pid.Map.add pid group acc) acc pids)
      Pid.Map.empty
      (List.mapi (fun i pids -> (i + 1, pids)) groups)
  in
  t.partition <- Some table

let deliver t ch ~src ~dst ~category payload =
  if t.crash_flags.(ch.dst_slot) then
    Stats.record_dropped t.stats ~category
  else if t.disc_rows.(ch.dst_slot).(ch.src_slot) then
    (* S1: silently discarded at the receiver. *)
    Stats.record_dropped t.stats ~category
  else if not (reachable t src dst) then
    (* Parked until the partition heals; channels stay reliable. *)
    Queue.add { category; payload } ch.parked
  else begin
    Stats.record_delivered t.stats ~category;
    t.handler ~dst ~src payload
  end

(* Channel tag for the explorer: src and dst slots packed into one int. The
   proc tag is the destination slot — delivering a message only acts on the
   receiving process. *)
let chan_tag ch = (ch.src_slot lsl 16) lor ch.dst_slot

let schedule_on t ch ~src ~dst ~category ~extra_delay payload =
  let sample = Delay.sample t.delay t.rng +. extra_delay in
  let now = Gmp_sim.Engine.now t.engine in
  let earliest =
    if ch.last_delivery = Float.neg_infinity then 0.0
    else ch.last_delivery +. t.fifo_epsilon
  in
  let at = Float.max (now +. sample) earliest in
  ch.last_delivery <- at;
  let (_ : Gmp_sim.Engine.handle) =
    Gmp_sim.Engine.schedule_at ~proc:ch.dst_slot ~chan:(chan_tag ch) t.engine
      ~time:at (fun () -> deliver t ch ~src ~dst ~category payload)
  in
  ()

let send ?(extra_delay = 0.0) t ~src ~dst ~category payload =
  if Pid.equal src dst then invalid_arg "Network.send: src = dst";
  let ch = channel t ~src ~dst in
  if not t.crash_flags.(ch.src_slot) then begin
    Stats.record_sent t.stats ~category;
    (match t.monitor with
     | None -> ()
     | Some monitor ->
       monitor
         { record_src = src;
           record_dst = dst;
           record_category = category;
           record_payload = payload;
           record_time = Gmp_sim.Engine.now t.engine });
    schedule_on t ch ~src ~dst ~category ~extra_delay payload
  end

let heal t =
  t.partition <- None;
  (* Flush parked traffic in channel order with fresh delays. Channels are
     sorted by endpoint pair so the flush order (and thus the RNG draw
     order) is deterministic, not table order. *)
  let pending = ref [] in
  for i = 0 to t.npids - 1 do
    let row = t.chan_rows.(i) in
    for j = 0 to t.npids - 1 do
      let ch = row.(j) in
      if ch != t.dummy && not (Queue.is_empty ch.parked) then
        pending := ((t.pids.(i), t.pids.(j)), ch) :: !pending
    done
  done;
  let pending =
    List.sort
      (fun ((a1, a2), _) ((b1, b2), _) ->
        match Pid.compare a1 b1 with 0 -> Pid.compare a2 b2 | c -> c)
      !pending
  in
  List.iter
    (fun ((src, dst), ch) ->
      let msgs = Queue.fold (fun acc m -> m :: acc) [] ch.parked in
      Queue.clear ch.parked;
      List.iter
        (fun { category; payload } ->
          schedule_on t ch ~src ~dst ~category ~extra_delay:0.0 payload)
        (List.rev msgs))
    pending

let parked_count t =
  let acc = ref 0 in
  for i = 0 to t.npids - 1 do
    let row = t.chan_rows.(i) in
    for j = 0 to t.npids - 1 do
      let ch = row.(j) in
      if ch != t.dummy then acc := !acc + Queue.length ch.parked
    done
  done;
  !acc

let slot_for t pid = pid_slot t pid

let pid_of_slot t slot =
  if slot >= 0 && slot < t.npids then Some t.pids.(slot) else None

let decode_chan t tag =
  if tag < 0 then None
  else
    let src = tag lsr 16 and dst = tag land 0xffff in
    match (pid_of_slot t src, pid_of_slot t dst) with
    | Some s, Some d -> Some (s, d)
    | _ -> None

(* ---- checkpoint / restore ----

   The channel matrix is captured as the list of existing channel records
   (by reference) with their FIFO cursor and parked contents; restore puts
   those values back *into the same records*, because in-flight delivery
   events capture the channel record in their closure — a restored event
   must see the restored cursor through the reference it already holds.
   Channels created after the capture are unlinked from the matrix (their
   only other references die with the queue restore); pids interned after
   the capture are un-interned so a re-run re-creates them identically. *)

type 'm checkpoint = {
  cp_rng : Gmp_sim.Rng.checkpoint;
  cp_delay : Delay.t;
  cp_stats : Stats.checkpoint;
  cp_npids : int;
  cp_channels : ('m channel * float * 'm parked_msg array) list;
  cp_disc : bool array array; (* cp_npids x cp_npids *)
  cp_crash : bool array; (* cp_npids *)
  cp_partition : int Pid.Map.t option;
}

let checkpoint t =
  let channels = ref [] in
  for i = 0 to t.npids - 1 do
    let row = t.chan_rows.(i) in
    for j = 0 to t.npids - 1 do
      let ch = row.(j) in
      if ch != t.dummy then
        channels :=
          (ch, ch.last_delivery, Array.of_seq (Queue.to_seq ch.parked))
          :: !channels
    done
  done;
  { cp_rng = Gmp_sim.Rng.checkpoint t.rng;
    cp_delay = t.delay;
    cp_stats = Stats.checkpoint t.stats;
    cp_npids = t.npids;
    cp_channels = !channels;
    cp_disc = Array.init t.npids (fun i -> Array.sub t.disc_rows.(i) 0 t.npids);
    cp_crash = Array.sub t.crash_flags 0 t.npids;
    cp_partition = t.partition }

let restore t cp =
  Gmp_sim.Rng.restore t.rng cp.cp_rng;
  t.delay <- cp.cp_delay;
  Stats.restore t.stats cp.cp_stats;
  t.partition <- cp.cp_partition;
  (* Forget pids interned after the capture, so a restored run re-interns
     them in the same order and gets the same slots. *)
  for s = cp.cp_npids to t.npids - 1 do
    Pid.Tbl.remove t.pid_slots t.pids.(s)
  done;
  let old_npids = t.npids in
  t.npids <- cp.cp_npids;
  (* Wipe every slot that may have been touched since the capture, then
     reinstate the captured state. The wipe covers the pre-reset pid count:
     flags of dropped pids must not linger. *)
  for i = 0 to old_npids - 1 do
    let crow = t.chan_rows.(i) and drow = t.disc_rows.(i) in
    for j = 0 to old_npids - 1 do
      crow.(j) <- t.dummy;
      drow.(j) <- false
    done;
    t.crash_flags.(i) <- false
  done;
  List.iter
    (fun (ch, last_delivery, parked) ->
      ch.last_delivery <- last_delivery;
      Queue.clear ch.parked;
      Array.iter (fun m -> Queue.add m ch.parked) parked;
      t.chan_rows.(ch.src_slot).(ch.dst_slot) <- ch)
    cp.cp_channels;
  for i = 0 to cp.cp_npids - 1 do
    Array.blit cp.cp_disc.(i) 0 t.disc_rows.(i) 0 cp.cp_npids
  done;
  Array.blit cp.cp_crash 0 t.crash_flags 0 cp.cp_npids

(* Order-sensitive FNV-style mix; each component's position in the fold
   disambiguates it, so plain int mixing is enough. *)
let fp_combine h x = (h * 0x01000193) lxor (x land max_int)

let fingerprint t =
  let h = ref (fp_combine 0x811c9dc5 t.npids) in
  for i = 0 to t.npids - 1 do
    if t.crash_flags.(i) then h := fp_combine !h (i + 1)
  done;
  h := fp_combine !h 0x5eed;
  for i = 0 to t.npids - 1 do
    let row = t.disc_rows.(i) in
    for j = 0 to t.npids - 1 do
      if row.(j) then h := fp_combine !h ((i lsl 16) lor j)
    done
  done;
  (match t.partition with
   | None -> h := fp_combine !h 0
   | Some groups ->
     h := fp_combine !h 1;
     Pid.Map.iter
       (fun pid g -> h := fp_combine (fp_combine !h (Pid.id pid)) g)
       groups);
  for i = 0 to t.npids - 1 do
    let row = t.chan_rows.(i) in
    for j = 0 to t.npids - 1 do
      let ch = row.(j) in
      if ch != t.dummy && not (Queue.is_empty ch.parked) then
        h :=
          fp_combine
            (fp_combine (fp_combine !h i) j)
            (Queue.length ch.parked)
    done
  done;
  !h
