(** The paper's footnoted channel implementation: reliable FIFO over a
    lossy medium via "a (1-bit) sequence number on each message and an
    acknowledgement protocol" — the alternating-bit / stop-and-wait
    protocol, one instance per ordered process pair.

    Messages handed to {!send} reach the upper layer exactly once, in
    order, despite loss and duplication underneath — provided the medium
    is FIFO per channel (a physical link; the default). Over arbitrarily
    reordering links the 1-bit protocol is provably unsound (a stale frame
    or ack can cross two bit flips); create with [~fifo:false] to
    demonstrate it. *)

open Gmp_base

type 'm t

val create :
  ?loss:float ->
  ?duplicate:float ->
  ?rto:float ->
  ?rto_of:(src:Pid.t -> dst:Pid.t -> float option) ->
  ?fifo:bool ->
  ?registry:Gmp_obs.Obs.registry ->
  engine:Gmp_sim.Engine.t ->
  rng:Gmp_sim.Rng.t ->
  delay:Delay.t ->
  unit ->
  'm t
(** Defaults: 20% loss, 5% duplication, retransmit every 5 time units.
    [rto_of] overrides the retransmission timeout per ordered channel; it
    is consulted at every (re)transmission and falls back to [rto] on
    [None]. Keyed by the {e sender}, so a member's [Config.tuning]
    ([arq_rto]) maps directly onto its outgoing channels.

    With [registry], the channel layer publishes [arq.datagrams_sent],
    [arq.datagrams_lost] and [arq.retransmits] as snapshot views, and
    records virtual-clock ack round-trips into an [arq.rtt] histogram —
    sampling only datagrams never retransmitted (Karn's rule), since a
    sample spanning a retransmission cannot be attributed to one flight. *)

val set_handler : 'm t -> (dst:Pid.t -> src:Pid.t -> 'm -> unit) -> unit
(** Upper-layer delivery: exactly once, per-channel FIFO. *)

val send : 'm t -> src:Pid.t -> dst:Pid.t -> 'm -> unit

val teardown : 'm t -> src:Pid.t -> dst:Pid.t -> unit
(** Tear down the sender side of the [src -> dst] channel: cancel the
    retransmit timer and drop the outstanding datagram and backlog. Call
    when [dst] is deemed crashed or faulty — otherwise the stop-and-wait
    loop retransmits forever toward a peer that will never ack, and the
    event queue never drains. Idempotent; never creates channel state. *)

val teardown_to : 'm t -> Pid.t -> unit
(** {!teardown} every existing sender channel whose destination is the
    given pid. *)

val retransmissions : 'm t -> int
val datagrams_sent : 'm t -> int
val datagrams_lost : 'm t -> int
