(** Alias of {!Gmp_platform.Stats} (the implementation moved there so the
    protocol core can tag sends without depending on the simulated
    network); kept here so network-layer users keep their module path. *)

include module type of struct
  include Gmp_platform.Stats
end
