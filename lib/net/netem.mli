(** The shared per-link fault model ("netem"): loss, delay (latency +
    jitter), duplication and reordering, spoken identically by the
    simulator's hostile medium ({!Lossy}) and the live node's socket seam.

    A model is pure data plus one pure-in-the-RNG decision function
    ({!sample}); every world supplies its own scheduler (the simulator's
    event queue, the live node's timer wheel) but the verdicts - and hence
    the fault vocabulary - are one and the same. *)

open Gmp_base

type t

val make :
  ?loss:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?delay:Delay.t ->
  unit ->
  t
(** [loss] in [\[0,1)]: probability a datagram vanishes. [duplicate] in
    [\[0,1\]]: probability a second copy is delivered. [reorder] in
    [\[0,1\]]: probability a delivered copy is held long enough for later
    traffic to overtake it (needs a delay model of nonzero width to have
    any effect). [delay]: per-copy base delay distribution (default: no
    delay). Raises [Invalid_argument] outside these ranges. *)

val of_latency :
  ?loss:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?jitter:float ->
  float ->
  t
(** [of_latency ~jitter latency] is {!make} with a
    [Delay.uniform ~lo:(latency - jitter) ~hi:(latency + jitter)] delay
    (clamped at 0; constant when [jitter = 0]) - the live CLI's
    [--latency]/[--jitter] surface. *)

val none : t
(** The identity model: no loss, no delay, no duplication, no reordering. *)

val is_none : t -> bool
(** [true] iff the model cannot affect any datagram - fast-path guard. *)

val loss : t -> float
val duplicate : t -> float
val reorder : t -> float
val delay : t -> Delay.t

type verdict =
  | Drop  (** the datagram vanishes *)
  | Deliver of { delay : float; dup_delay : float option; held : bool }
      (** deliver one copy after [delay] seconds (ignore any FIFO floor
          when [held]: that copy was reordered), plus a duplicate after
          [dup_delay] when present *)

val sample : t -> Gmp_sim.Rng.t -> verdict
(** One datagram's fate. Draw order (loss, base delay, reorder, duplicate,
    dup delay) is pinned: [loss] and [duplicate] always consume a draw,
    [reorder] only when nonzero, so pre-netem seeded simulations replay
    unchanged. *)

val link_seed : seed:int -> self:Pid.t -> peer:Pid.t -> int
(** Deterministic per-directed-link RNG seed: one independent splitmix
    stream per (experiment seed, receiving node, sending peer). *)

val pp : t Fmt.t
