(** A network endpoint: [host:port], parsed and validated once at the
    edge.

    The explicit replacement for the live runtime's implicit
    "port-on-loopback" address book: a host (IPv4 literal or DNS name)
    plus a port. This module is pure - syntactic validation only; name
    resolution belongs to the transport that binds or connects. *)

type t

val make : host:string -> port:int -> t
(** Raises [Invalid_argument] on an empty host or a port outside
    [0,65535] (0 = "pick an ephemeral port" at bind time). *)

val host : t -> string
val port : t -> int

val with_port : t -> int -> t
(** The same host with another port (e.g. the ephemeral port actually
    bound). *)

val loopback : port:int -> t
(** [127.0.0.1:port]. *)

val equal : t -> t -> bool

val parse : string -> (t, string) result
(** Parse ["HOST:PORT"]. The host must be a legal hostname / IPv4 literal
    (RFC 1123 charset), the port a number in [0,65535]; errors name the
    offending part. *)

val parse_or_port : string -> (t, string) result
(** Like {!parse}, but a bare ["PORT"] means loopback - the pre-endpoint
    notation, still convenient for single-host clusters. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
