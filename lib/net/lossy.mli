(** Raw datagram layer: lossy, duplicating and (via the {!Netem} model)
    reordering; FIFO per channel by default (a physical link), optionally
    fully reordering.

    The hostile medium underneath the paper's channel assumption; {!Arq}
    builds the assumed reliable FIFO channel on top of it. The 1-bit
    protocol is sound over lossy-duplicating FIFO links and provably not
    over reordering ones — pass [~fifo:false] to see it break.

    Per-datagram fates come from {!Netem.sample} — the same decision
    function the live runtime applies at its socket seam. *)

open Gmp_base

type 'm t

val create :
  ?loss:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?fifo:bool ->
  engine:Gmp_sim.Engine.t ->
  rng:Gmp_sim.Rng.t ->
  delay:Delay.t ->
  unit ->
  'm t
(** [loss] in [\[0,1)]: probability a datagram vanishes; [duplicate] in
    [\[0,1\]]: probability of a second copy; [reorder] in [\[0,1\]]:
    probability a delivered copy is held past later traffic (bypassing the
    FIFO floor even on a [fifo] link); [fifo] (default true): per-channel
    in-order delivery. *)

val of_model :
  ?fifo:bool -> engine:Gmp_sim.Engine.t -> rng:Gmp_sim.Rng.t -> Netem.t -> 'm t
(** The same link driven by a prebuilt fault model — what a live
    experiment tunes and the simulator replays. *)

val set_handler : 'm t -> (dst:Pid.t -> src:Pid.t -> 'm -> unit) -> unit
val send : 'm t -> src:Pid.t -> dst:Pid.t -> 'm -> unit

val model : 'm t -> Netem.t
val datagrams_sent : 'm t -> int
val datagrams_lost : 'm t -> int
val datagrams_duplicated : 'm t -> int
val datagrams_reordered : 'm t -> int
