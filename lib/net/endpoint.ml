(* A network endpoint: host:port, parsed and validated once at the edge.

   The live runtime's address book used to be implicit - "a port on
   loopback" - which made cross-host clusters unrepresentable. An endpoint
   is the explicit replacement: a host (IPv4 literal or DNS name, resolved
   by the transport layer, not here - this module stays pure so the
   simulator side of gmp_net can depend on it) and a port. Validation is
   syntactic: the charset of a legal hostname / IPv4 literal and the port
   range. Whether the host actually resolves is the transport's business,
   at bind/connect time. *)

type t = { host : string; port : int }

let make ~host ~port =
  if port < 0 || port > 65535 then
    invalid_arg (Printf.sprintf "Endpoint.make: port %d out of [0,65535]" port);
  if host = "" then invalid_arg "Endpoint.make: empty host";
  { host; port }

let host t = t.host
let port t = t.port
let with_port t port = make ~host:t.host ~port
let loopback ~port = make ~host:"127.0.0.1" ~port

let equal a b = String.equal a.host b.host && Int.equal a.port b.port

(* Hostname labels per RFC 1123: alphanumerics and hyphens, separated by
   dots; an IPv4 literal is a special case of that charset, so one check
   covers both. Anything else (spaces, brackets, a second colon) is a
   malformed endpoint, reported before any socket is touched. *)
let host_ok h =
  h <> ""
  && String.length h <= 253
  && h.[0] <> '.'
  && h.[String.length h - 1] <> '.'
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '.')
       h

let parse s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad endpoint %S (expected HOST:PORT)" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port_s = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port_s with
    | None ->
      Error (Printf.sprintf "bad endpoint %S: port %S is not a number" s port_s)
    | Some port when port < 0 || port > 65535 ->
      Error (Printf.sprintf "bad endpoint %S: port %d out of [0,65535]" s port)
    | Some port ->
      if host_ok host then Ok { host; port }
      else Error (Printf.sprintf "bad endpoint %S: malformed host %S" s host))

(* A bare port means loopback: the pre-endpoint address book's notation,
   still the convenient one for single-host clusters. *)
let parse_or_port s =
  match int_of_string_opt s with
  | Some port when port >= 0 && port <= 65535 -> Ok (loopback ~port)
  | Some port -> Error (Printf.sprintf "port %d out of [0,65535]" port)
  | None -> parse s

let to_string t = Printf.sprintf "%s:%d" t.host t.port
let pp ppf t = Fmt.pf ppf "%s:%d" t.host t.port
