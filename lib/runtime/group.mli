(** Simulation harness: a process group on the simulated network.

    Builds the members, schedules fault/join/partition injections, runs the
    engine and exposes the trace, statistics and final states that the
    checkers and benches consume. *)

open Gmp_base
open Gmp_core

type t

val create :
  ?config:Config.t ->
  ?delay:Gmp_net.Delay.t ->
  ?seed:int ->
  n:int ->
  unit ->
  t
(** A group of [n] processes [p0 .. p(n-1)], [p0] most senior. *)

val runtime : t -> Wire.t Runtime.t
val engine : t -> Gmp_sim.Engine.t

(** The underlying network (for partitions, channel decoding and
    fingerprinting by the explorer). *)
val network : t -> Wire.t Runtime.wrapped Gmp_net.Network.t
val trace : t -> Trace.t
val stats : t -> Gmp_net.Stats.t
val initial : t -> Pid.t list
val pids : t -> Pid.t list
val member : t -> Pid.t -> Member.t
val members : t -> Member.t list
val nth : t -> int -> Member.t

(** {1 Scheduled injections} *)

val at : t -> float -> (unit -> unit) -> unit
val crash_at : t -> float -> Pid.t -> unit
val suspect_at : t -> float -> observer:Pid.t -> target:Pid.t -> unit

val join_at : ?contacts:Pid.t list -> t -> float -> Pid.t -> contact:Pid.t -> unit
(** Spawn a fresh process at the given time and have it request admission
    through [contact] (retrying through [contacts], default the initial
    group). *)

val partition_at : t -> float -> Pid.t list list -> unit
val heal_at : t -> float -> unit

(** {1 Running and inspecting} *)

val run : ?max_steps:int -> ?until:float -> t -> unit
(** Default horizon 500 virtual time units. *)

val run_to_quiescence : ?max_steps:int -> t -> unit
(** Only terminates when no timers recur (e.g. heartbeats off). *)

val operational_members : t -> Member.t list
(** Alive, not quit, and holding a view. *)

val surviving_views : t -> (Pid.t * int * Pid.t list) list

val agreed_view : t -> (int * Pid.t list) option
(** The final system view, if all operational members agree on one. *)

val protocol_messages : t -> int
(** Messages sent in the protocol categories (§7.2 accounting). *)

val registry : t -> Gmp_obs.Obs.registry
(** The group's metrics registry. Pre-wired with [msg.*] views over
    {!stats}, [sim.events_fired] and [sim.peak_heap_entries]; harness
    extensions (e.g. {!Gmp_net.Arq.create}[ ~registry]) hang more off it. *)

val metrics : t -> Gmp_obs.Obs.Snapshot.t
(** Registry snapshot merged with [latency.*] histograms derived from the
    current trace ({!Gmp_core.Latency.observe}). Idempotent — safe to call
    repeatedly; deterministic for a given seed and schedule. *)

val fingerprint : t -> int
(** Hash of all members' protocol state plus the network's adversarial
    state, for the explorer's state pruning. *)

type checkpoint
(** Whole-world capture: engine (event heap, handle flags, virtual clock),
    network (channels, crash/disconnect state, parked queues, counters,
    RNG), runtime (node liveness/clocks/event counters, harness RNG), trace
    (truncate-to-mark) and every member's protocol state. Cost is O(world):
    flat array blits plus O(1) copy-on-write clock publishes. Restoring
    rewinds all of it in place, dropping anything (nodes, members, channels,
    events, trace suffix) created after the capture; the same checkpoint
    restores any number of times. This is the explorer's snapshot layer. *)

val checkpoint : t -> checkpoint
val restore : t -> checkpoint -> unit

val check : ?liveness:bool -> t -> Checker.violation list
(** Full checker verdict for this run ({!Checker.check_run} fed from the
    harness's final states); [~liveness:false] restricts to safety. *)

val to_json : ?include_trace:bool -> t -> Json.t
(** Full run dump: members, agreed view, statistics, checker verdicts and
    (optionally) the complete trace. *)

val pp_summary : t Fmt.t
