(* Simulation harness: builds a process group on the simulated network,
   injects failures / suspicions / joins / partitions on schedule, runs the
   engine, and hands back the trace, statistics and final states. *)

open Gmp_base
open Gmp_core

type t = {
  runtime : Wire.t Runtime.t;
  trace : Trace.t;
  config : Config.t;
  initial : Pid.t list;
  mutable members : Member.t Pid.Map.t; (* all ever spawned *)
  registry : Gmp_obs.Obs.registry;
}

let create ?(config = Config.default) ?delay ?(seed = 1) ~n () =
  if n <= 0 then invalid_arg "Group.create: need at least one process";
  let runtime = Runtime.create ?delay ~seed () in
  let trace = Trace.create () in
  let initial = Pid.group n in
  (* Canonical clock slots: intern the founding membership in pid order, not
     in whatever order the first messages happen to arrive. *)
  Gmp_causality.Vector_clock.reserve initial;
  let members =
    List.fold_left
      (fun acc pid ->
        let node = Runtime.platform (Runtime.spawn runtime pid) in
        let m = Member.create ~node ~trace ~config ~initial () in
        Pid.Map.add pid m acc)
      Pid.Map.empty initial
  in
  let registry = Gmp_obs.Obs.create () in
  Gmp_net.Stats.register_views (Runtime.stats runtime) registry;
  let eng = Runtime.engine runtime in
  Gmp_obs.Obs.register_view registry "sim.events_fired" (fun () ->
      Gmp_sim.Engine.fired_events eng);
  Gmp_obs.Obs.register_view registry "sim.peak_heap_entries" (fun () ->
      Gmp_sim.Engine.peak_queue_length eng);
  { runtime; trace; config; initial; members; registry }

let runtime t = t.runtime
let engine t = Runtime.engine t.runtime
let network t = Runtime.network t.runtime
let trace t = t.trace
let stats t = Runtime.stats t.runtime
let registry t = t.registry

(* The persistent registry holds only views (closures over live counters),
   so snapshotting it is idempotent; latency histograms are re-derived from
   the trace into a throwaway registry each call, keeping [metrics]
   callable at any point of a run without double-counting. *)
let metrics t =
  let latency = Gmp_obs.Obs.create () in
  Gmp_core.Latency.observe latency t.trace;
  Gmp_obs.Obs.Snapshot.merge
    (Gmp_obs.Obs.snapshot t.registry)
    (Gmp_obs.Obs.snapshot latency)
let initial t = t.initial
let pids t = List.map fst (Pid.Map.bindings t.members)

let member t pid =
  match Pid.Map.find_opt pid t.members with
  | Some m -> m
  | None ->
    invalid_arg (Fmt.str "Group.member: unknown pid %a" Pid.pp pid)

let members t = List.map snd (Pid.Map.bindings t.members)

let nth t i = member t (Pid.make i)

(* ---- schedule injections ---- *)

let at t time f =
  ignore
    (Gmp_sim.Engine.schedule_at (engine t) ~time f : Gmp_sim.Engine.handle)

let crash_at t time pid =
  at t time (fun () -> Member.inject_crash (member t pid))

let suspect_at t time ~observer ~target =
  at t time (fun () -> Member.inject_suspicion (member t observer) target)

let join_at ?contacts t time pid ~contact =
  at t time (fun () ->
      if Pid.Map.mem pid t.members then
        invalid_arg (Fmt.str "Group.join_at: pid %a already exists" Pid.pp pid);
      let node = Runtime.platform (Runtime.spawn t.runtime pid) in
      let m =
        Member.create ~joiner:true ~node ~trace:t.trace ~config:t.config
          ~initial:t.initial ()
      in
      t.members <- Pid.Map.add pid m t.members;
      let contacts =
        match contacts with
        | Some cs -> contact :: cs
        | None ->
          contact :: List.filter (fun p -> not (Pid.equal p contact)) t.initial
      in
      Member.start_join m ~contacts)

let partition_at t time groups =
  at t time (fun () -> Gmp_net.Network.partition (Runtime.network t.runtime) groups)

let heal_at t time =
  at t time (fun () -> Gmp_net.Network.heal (Runtime.network t.runtime))

(* ---- running ---- *)

let run ?max_steps ?(until = 500.0) t =
  Runtime.run ?max_steps ~until t.runtime

let run_to_quiescence ?max_steps t = Runtime.run ?max_steps t.runtime

(* ---- inspection ---- *)

let operational_members t =
  (* Never-joined joiners hold no view; they do not participate in view
     agreement. *)
  List.filter
    (fun m -> Member.operational m && Member.joined m)
    (members t)

let surviving_views t =
  List.map
    (fun m -> (Member.pid m, Member.version m, View.members (Member.view m)))
    (operational_members t)

(* The final system view, if the operational processes agree on one. *)
let agreed_view t =
  match operational_members t with
  | [] -> None
  | m :: rest ->
    let ver = Member.version m and v = Member.view m in
    if
      List.for_all
        (fun m' -> Member.version m' = ver && View.equal (Member.view m') v)
        rest
    then Some (ver, View.members v)
    else None

(* Count of protocol messages, per the paper's accounting (§7.2). *)
let protocol_messages t =
  let stats = stats t in
  List.fold_left
    (fun acc category -> acc + Gmp_net.Stats.sent stats ~category)
    0 Wire.protocol_categories

(* Combined protocol + network fingerprint over all members, in pid order.
   Pending engine events are hashed separately by the explorer (it owns the
   notion of "relative" event time). *)
let fingerprint t =
  let h =
    Pid.Map.fold
      (fun _ m h -> (h * 0x01000193) lxor (Member.fingerprint m land max_int))
      t.members 0x811c9dc5
  in
  (h * 0x01000193)
  lxor (Gmp_net.Network.fingerprint (Runtime.network t.runtime) land max_int)

(* ---- whole-world checkpoint: the explorer's snapshot layer ----

   Composes the per-module checkpoints into one capture of everything a
   simulated group run can mutate: the engine (event heap + handle flags +
   clock), the network (channels, crash/disconnect matrices, parked queues,
   counters, RNG), the runtime (node liveness/clocks/events, harness RNG),
   the trace (truncate-to-mark cursors) and every member's protocol state.
   Restore order is irrelevant — the five captures touch disjoint state —
   but members are restored before the map swap so a member that joined
   after the capture is dropped consistently everywhere. *)

type checkpoint = {
  gc_engine : Gmp_sim.Engine.checkpoint;
  gc_net : Wire.t Runtime.wrapped Gmp_net.Network.checkpoint;
  gc_runtime : Wire.t Runtime.checkpoint;
  gc_trace : Trace.checkpoint;
  gc_members : (Member.t * Member.checkpoint) list;
  gc_members_map : Member.t Pid.Map.t;
}

let checkpoint t =
  { gc_engine = Gmp_sim.Engine.checkpoint (engine t);
    gc_net = Gmp_net.Network.checkpoint (network t);
    gc_runtime = Runtime.checkpoint t.runtime;
    gc_trace = Trace.checkpoint t.trace;
    gc_members =
      Pid.Map.fold (fun _ m acc -> (m, Member.checkpoint m) :: acc) t.members
        [];
    gc_members_map = t.members }

let restore t cp =
  Gmp_sim.Engine.restore (engine t) cp.gc_engine;
  Gmp_net.Network.restore (network t) cp.gc_net;
  Runtime.restore t.runtime cp.gc_runtime;
  Trace.restore t.trace cp.gc_trace;
  List.iter (fun (m, c) -> Member.restore m c) cp.gc_members;
  t.members <- cp.gc_members_map

let pp_summary ppf t =
  let member ppf m = Member.pp ppf m in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@\n") member) (members t)

(* ---- verdicts and export ---- *)

let check ?liveness t =
  let dead =
    List.filter_map
      (fun m -> if Member.operational m then None else Some (Member.pid m))
      (members t)
  in
  let final_view =
    match agreed_view t with Some (_, members) -> members | None -> []
  in
  Checker.check_run ?liveness t.trace ~initial:t.initial
    ~surviving_views:(surviving_views t) ~dead ~final_view

let to_json ?(include_trace = true) t =
  let module J = Json in
  let violations = check t in
  J.obj
    [ ("initial", J.list (List.map Export.json_of_pid t.initial));
      ("members", J.list (List.map Export.json_of_member (members t)));
      ( "agreed_view",
        match agreed_view t with
        | Some (ver, members) ->
          J.obj
            [ ("version", J.int ver);
              ("members", J.list (List.map Export.json_of_pid members)) ]
        | None -> J.null );
      ("protocol_messages", J.int (protocol_messages t));
      ("stats", Export.json_of_stats (stats t));
      ("metrics", Gmp_obs.Obs.Snapshot.to_json (metrics t));
      ("violations", J.list (List.map Export.json_of_violation violations));
      ( "trace",
        if include_trace then Export.json_of_trace t.trace else J.null )
    ]
