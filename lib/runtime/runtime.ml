(* Process runtime: wires nodes onto the simulated network and engine.

   Every message carries the sender's vector clock; the runtime maintains
   each node's clock (tick on send, merge+tick on receive, tick on explicit
   local events) so that protocol layers can stamp trace events with causal
   timestamps and the analysis layer can reason about consistent cuts. *)

open Gmp_base
open Gmp_causality

type 'm wrapped = { payload : 'm; sender_vc : Vector_clock.t }

type 'm node = {
  pid : Pid.t;
  slot : int; (* the network's dense slot for [pid]; tags this node's timers *)
  runtime : 'm t;
  mutable alive : bool;
  vc : Vector_clock.Mutable.clock; (* copy-on-write: snapshot to publish *)
  mutable events : int; (* length of this process's history *)
  mutable on_recv : src:Pid.t -> 'm -> unit;
  mutable on_crash : unit -> unit;
}

and 'm t = {
  engine : Gmp_sim.Engine.t;
  net : 'm wrapped Gmp_net.Network.t;
  nodes : 'm node Pid.Tbl.t;
  rng : Gmp_sim.Rng.t;
}

let ignore_recv ~src:_ _ = ()

let dispatch t ~dst ~src wrapped =
  match Pid.Tbl.find_opt t.nodes dst with
  | None -> ()
  | Some node ->
    if node.alive then begin
      Vector_clock.Mutable.merge_tick node.vc wrapped.sender_vc dst;
      node.events <- node.events + 1;
      node.on_recv ~src wrapped.payload
    end

let create ?(delay = Gmp_net.Delay.uniform ~lo:0.5 ~hi:1.5) ~seed () =
  let engine = Gmp_sim.Engine.create () in
  let rng = Gmp_sim.Rng.create seed in
  let net_rng = Gmp_sim.Rng.split rng in
  let net = Gmp_net.Network.create ~engine ~rng:net_rng ~delay () in
  let t = { engine; net; nodes = Pid.Tbl.create 32; rng } in
  Gmp_net.Network.set_handler net (fun ~dst ~src wrapped ->
      dispatch t ~dst ~src wrapped);
  t

let engine t = t.engine
let network t = t.net
let stats t = Gmp_net.Network.stats t.net
let rng t = t.rng
let now t = Gmp_sim.Engine.now t.engine

let spawn t pid =
  if Pid.Tbl.mem t.nodes pid then
    invalid_arg (Printf.sprintf "Runtime.spawn: %s exists" (Pid.to_string pid));
  let node =
    { pid;
      slot = Gmp_net.Network.slot_for t.net pid;
      runtime = t;
      alive = true;
      vc = Vector_clock.Mutable.create ();
      events = 0;
      on_recv = ignore_recv;
      on_crash = (fun () -> ()) }
  in
  Pid.Tbl.replace t.nodes pid node;
  node

let find t pid = Pid.Tbl.find_opt t.nodes pid

let nodes t = Pid.Tbl.fold (fun _ node acc -> node :: acc) t.nodes []

let set_receiver node on_recv = node.on_recv <- on_recv
let set_on_crash node on_crash = node.on_crash <- on_crash

let pid node = node.pid
let node_slot node = node.slot
let alive node = node.alive
let clock node = Vector_clock.Mutable.snapshot node.vc
let node_now node = Gmp_sim.Engine.now node.runtime.engine
let node_runtime node = node.runtime

let local_event node =
  (* Record a local step in the node's history; returns (index, vc) for
     trace stamping. *)
  Vector_clock.Mutable.tick node.vc node.pid;
  node.events <- node.events + 1;
  (node.events, Vector_clock.Mutable.snapshot node.vc)

let send ?extra_delay node ~dst ~category payload =
  if node.alive then begin
    Vector_clock.Mutable.tick node.vc node.pid;
    node.events <- node.events + 1;
    Gmp_net.Network.send ?extra_delay node.runtime.net ~src:node.pid ~dst
      ~category
      { payload; sender_vc = Vector_clock.Mutable.snapshot node.vc }
  end

let broadcast ?extra_delay node ~dsts ~category payload =
  (* Indivisible in the paper's sense: all sends share the engine instant;
     not failure-atomic (a concurrent crash event can sit between
     deliveries). One vc tick — and one published snapshot — for the whole
     broadcast. *)
  if node.alive then begin
    Vector_clock.Mutable.tick node.vc node.pid;
    node.events <- node.events + 1;
    let vc = Vector_clock.Mutable.snapshot node.vc in
    List.iter
      (fun dst ->
        if not (Pid.equal dst node.pid) then
          Gmp_net.Network.send ?extra_delay node.runtime.net ~src:node.pid
            ~dst ~category
            { payload; sender_vc = vc })
      dsts
  end

let crash node =
  if node.alive then begin
    node.alive <- false;
    Gmp_net.Network.crash node.runtime.net node.pid;
    node.on_crash ()
  end

let disconnect_from node ~from =
  Gmp_net.Network.disconnect node.runtime.net ~at:node.pid ~from

type timer = Gmp_sim.Engine.handle

let set_timer node ~delay f =
  Gmp_sim.Engine.schedule ~proc:node.slot node.runtime.engine ~delay (fun () ->
      if node.alive then f ())

let cancel_timer node timer = Gmp_sim.Engine.cancel node.runtime.engine timer

let every node ~interval f =
  if interval <= 0.0 then invalid_arg "Runtime.every: non-positive interval";
  let rec loop () =
    if node.alive then begin
      f ();
      if node.alive then
        ignore
          (Gmp_sim.Engine.schedule ~proc:node.slot node.runtime.engine
             ~delay:interval loop
            : Gmp_sim.Engine.handle)
    end
  in
  ignore
    (Gmp_sim.Engine.schedule ~proc:node.slot node.runtime.engine
       ~delay:interval loop
      : Gmp_sim.Engine.handle)

let run ?max_steps ?until t = Gmp_sim.Engine.run ?max_steps ?until t.engine

(* Checkpoint of the runtime-owned state: the harness RNG stream and every
   node's liveness, event counter and vector clock (an O(1) copy-on-write
   publish). Nodes are captured by reference — restore mutates the same
   records, which the in-flight closures (timers, dispatch) hold. The engine
   and network are checkpointed separately by the caller (Group). *)
type 'm checkpoint = {
  cp_rng : Gmp_sim.Rng.checkpoint;
  cp_nodes : ('m node * bool * Vector_clock.Mutable.checkpoint * int) list;
}

let checkpoint t =
  { cp_rng = Gmp_sim.Rng.checkpoint t.rng;
    cp_nodes =
      Pid.Tbl.fold
        (fun _ node acc ->
          (node, node.alive, Vector_clock.Mutable.checkpoint node.vc,
           node.events)
          :: acc)
        t.nodes [] }

let restore t cp =
  Gmp_sim.Rng.restore t.rng cp.cp_rng;
  (* Drop nodes spawned after the capture, so a restored run re-spawns them
     identically (their network-side state is undone by Network.restore). *)
  if Pid.Tbl.length t.nodes > List.length cp.cp_nodes then begin
    let stale =
      Pid.Tbl.fold
        (fun pid _ acc ->
          if List.exists (fun (n, _, _, _) -> Pid.equal n.pid pid) cp.cp_nodes
          then acc
          else pid :: acc)
        t.nodes []
    in
    List.iter (Pid.Tbl.remove t.nodes) stale
  end;
  List.iter
    (fun (node, alive, vc, events) ->
      node.alive <- alive;
      Vector_clock.Mutable.restore node.vc vc;
      node.events <- events)
    cp.cp_nodes

(* The node's view of itself through the world-agnostic platform seam.
   Protocol layers built against {!Gmp_platform.Platform.node} (Member, the
   detectors) run on these closures in the sim and on lib/live's sockets in
   the real world, byte-identically. *)
let platform node =
  let module P = Gmp_platform.Platform in
  { P.pid = node.pid;
    alive = (fun () -> node.alive);
    now = (fun () -> node_now node);
    clock = (fun () -> clock node);
    local_event = (fun () -> local_event node);
    send = (fun ~dst ~category payload -> send node ~dst ~category payload);
    broadcast =
      (fun ~dsts ~category payload -> broadcast node ~dsts ~category payload);
    disconnect_from = (fun ~from -> disconnect_from node ~from);
    halt = (fun () -> crash node);
    set_receiver = (fun f -> set_receiver node f);
    set_timer =
      (fun ~delay f ->
        let h = set_timer node ~delay f in
        { P.cancel = (fun () -> cancel_timer node h) });
    every = (fun ~interval f -> every node ~interval f);
    log = (fun _ -> ()) }
