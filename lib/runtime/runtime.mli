(** Process runtime over the simulated network.

    A {!node} is one process: it can send, broadcast, set timers, record
    local events and crash. The runtime maintains vector clocks transparently
    (tick on send and local event, merge+tick on receive), so layers above
    can stamp their traces with causal timestamps. *)

open Gmp_base
open Gmp_causality

type 'm wrapped
(** Network-level envelope (payload + sender vector clock). *)

type 'm t
type 'm node

val create : ?delay:Gmp_net.Delay.t -> seed:int -> unit -> 'm t

val engine : 'm t -> Gmp_sim.Engine.t
val network : 'm t -> 'm wrapped Gmp_net.Network.t
val stats : 'm t -> Gmp_net.Stats.t
val rng : 'm t -> Gmp_sim.Rng.t
val now : 'm t -> float

val spawn : 'm t -> Pid.t -> 'm node
(** Create a node. Raises [Invalid_argument] if the pid already exists. *)

val find : 'm t -> Pid.t -> 'm node option
val nodes : 'm t -> 'm node list

val set_receiver : 'm node -> (src:Pid.t -> 'm -> unit) -> unit
val set_on_crash : 'm node -> (unit -> unit) -> unit

val pid : 'm node -> Pid.t

val node_slot : 'm node -> int
(** The network's dense slot for this node's pid (see
    {!Gmp_net.Network.slot_for}); the node's timers are engine-tagged with
    it so the explorer can attribute them to the process. *)

val alive : 'm node -> bool
val clock : 'm node -> Vector_clock.t
val node_now : 'm node -> float
val node_runtime : 'm node -> 'm t

val local_event : 'm node -> int * Vector_clock.t
(** Record a local step; returns the new [(history index, vector clock)]. *)

val send :
  ?extra_delay:float -> 'm node -> dst:Pid.t -> category:Gmp_net.Stats.category -> 'm -> unit
(** No-op if the node is dead (crashed processes influence nobody). *)

val broadcast :
  ?extra_delay:float ->
  'm node ->
  dsts:Pid.t list ->
  category:Gmp_net.Stats.category ->
  'm ->
  unit
(** The paper's [Bcast]: indivisible (single instant, one vc tick, self
    excluded) but not failure-atomic. *)

val crash : 'm node -> unit
(** The node stops receiving, sending and firing timers; in-flight messages
    to it vanish. *)

val disconnect_from : 'm node -> from:Pid.t -> unit
(** System property S1: stop receiving from [from], forever. *)

type timer

val set_timer : 'm node -> delay:float -> (unit -> unit) -> timer
(** Fires only if the node is still alive. *)

val cancel_timer : 'm node -> timer -> unit

val every : 'm node -> interval:float -> (unit -> unit) -> unit
(** Periodic timer; stops when the node dies. *)

val run : ?max_steps:int -> ?until:float -> 'm t -> unit

type 'm checkpoint
(** Capture of the runtime-owned mutable state: the harness RNG stream plus
    every node's liveness flag, event counter and vector clock (an O(1)
    copy-on-write publish). Restore mutates the same node records in place
    (in-flight timer and dispatch closures hold them) and drops nodes
    spawned after the capture. The engine and network must be checkpointed
    separately — {!Group.checkpoint} composes all three. *)

val checkpoint : 'm t -> 'm checkpoint
val restore : 'm t -> 'm checkpoint -> unit

val platform : 'm node -> 'm Gmp_platform.Platform.node
(** The node's operations as the world-agnostic platform record. Protocol
    layers built against {!Gmp_platform.Platform.node} run on the simulator
    through this and on real sockets through [lib/live], byte-identically.
    [halt] is {!crash}; [log] is a no-op (the sim's trace is the log). *)
