(** Minimal dependency-free JSON builder, printer and parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val null : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val string : string -> t
val list : t list -> t
val obj : (string * t) list -> t
val of_option : ('a -> t) -> 'a option -> t
val pp : t Fmt.t
val to_string : t -> string

val to_compact_string : t -> string
(** Single-line rendering (no newlines regardless of width) — the JSONL
    form live nodes log events in. *)

(** {1 Parsing}

    Enough JSON for what this repository itself emits, which is all it ever
    reads back (the orchestrator consuming live nodes' event logs). Numbers
    without ['.']/[e] parse as {!Int}, others as {!Float}; [\uXXXX] escapes
    (surrogate pairs included) are decoded to UTF-8. *)

val of_string : string -> (t, string) result
(** Whole-string parse; the error carries the byte offset. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an {!Obj} ([None] on other constructors or a missing key). *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** Accepts {!Int} too (JSON does not distinguish). *)

val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
val to_obj_opt : t -> (string * t) list option
