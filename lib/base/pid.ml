(* Process identifiers. The paper treats a recovered process as "a new and
   different process instance"; the incarnation number realizes that: p3#0 and
   p3#1 are different processes sharing a host name. *)

module T = struct
  type t = { id : int; incarnation : int }

  let compare a b =
    match Int.compare a.id b.id with
    | 0 -> Int.compare a.incarnation b.incarnation
    | c -> c
end

include T

let make ?(incarnation = 0) id =
  if id < 0 then invalid_arg "Pid.make: negative id";
  if incarnation < 0 then invalid_arg "Pid.make: negative incarnation";
  { id; incarnation }

let id t = t.id
let incarnation t = t.incarnation

let reincarnate t = { t with incarnation = t.incarnation + 1 }

let equal a b = compare a b = 0

let to_string t =
  if t.incarnation = 0 then Printf.sprintf "p%d" t.id
  else Printf.sprintf "p%d#%d" t.id t.incarnation

(* Inverse of [to_string]; the live trace reader round-trips pids through
   their printed form. *)
let of_string s =
  let parse_nat x =
    match int_of_string_opt x with Some n when n >= 0 -> Some n | _ -> None
  in
  if String.length s < 2 || s.[0] <> 'p' then None
  else
    let rest = String.sub s 1 (String.length s - 1) in
    match String.index_opt rest '#' with
    | None -> Option.map (fun id -> { id; incarnation = 0 }) (parse_nat rest)
    | Some i -> (
      let id = String.sub rest 0 i in
      let inc = String.sub rest (i + 1) (String.length rest - i - 1) in
      match (parse_nat id, parse_nat inc) with
      | Some id, Some incarnation -> Some { id; incarnation }
      | _ -> None)

let pp ppf t = Fmt.string ppf (to_string t)

module Set = struct
  include Set.Make (T)

  let pp ppf s =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") pp) (elements s)
end

module Map = Map.Make (T)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash t = (t.id * 65599) + t.incarnation
end)

let group ?(incarnation = 0) n =
  if n < 0 then invalid_arg "Pid.group: negative size";
  List.init n (fun i -> make ~incarnation i)
