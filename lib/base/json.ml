(* A minimal JSON document builder and printer (no external dependencies).

   Used to export traces, statistics and measurements for analysis outside
   the simulator (plotting, diffing runs). Encoding only - the repository
   never needs to parse JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let null = Null
let bool b = Bool b
let int i = Int i
let float f = Float f
let string s = String s
let list xs = List xs
let obj fields = Obj fields

let of_option f = function None -> Null | Some x -> f x

let escape s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null" (* JSON has no NaN *)
  else if Float.is_integer (f *. 1e6) then Printf.sprintf "%g" f
  else Printf.sprintf "%.9g" f

(* Width-aware printing: any value whose one-line rendering fits in
   [max_width] columns (counting its left margin) is printed on one line;
   only larger lists/objects break, one element per line, indented by two.
   This keeps scalar records compact ("one row per measurement") instead of
   the one-token-per-line output a naive hv-box produces. *)

let max_width = 80

let atom = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> float_literal f
  | String s -> "\"" ^ escape s ^ "\""
  | List _ | Obj _ -> assert false

let rec add_compact buf = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v ->
    Buffer.add_string buf (atom v)
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add_compact buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf "\"";
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        add_compact buf v)
      fields;
    Buffer.add_char buf '}'

let compact_string t =
  let buf = Buffer.create 128 in
  add_compact buf t;
  Buffer.contents buf

let rec render buf ~col t =
  let one_line = compact_string t in
  if col + String.length one_line <= max_width then
    Buffer.add_string buf one_line
  else begin
    let margin = String.make col ' ' in
    let item_col = col + 2 in
    let item_margin = String.make item_col ' ' in
    match t with
    | Null | Bool _ | Int _ | Float _ | String _ ->
      (* An over-long atom cannot be broken. *)
      Buffer.add_string buf one_line
    | List xs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf item_margin;
          render buf ~col:item_col x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf margin;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf item_margin;
          Buffer.add_string buf "\"";
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          render buf ~col:(item_col + String.length (escape k) + 4) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf margin;
      Buffer.add_char buf '}'
  end

let to_string t =
  let buf = Buffer.create 1024 in
  render buf ~col:0 t;
  Buffer.contents buf

let pp ppf t = Fmt.string ppf (to_string t)
