(* A minimal JSON document builder, printer and parser (no external
   dependencies).

   Used to export traces, statistics and measurements for analysis outside
   the simulator (plotting, diffing runs), and - since the live runtime -
   to read back the line-delimited event logs real nodes write, so the
   cluster orchestrator can reassemble a global trace for the checker. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let null = Null
let bool b = Bool b
let int i = Int i
let float f = Float f
let string s = String s
let list xs = List xs
let obj fields = Obj fields

let of_option f = function None -> Null | Some x -> f x

let escape s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null" (* JSON has no NaN *)
  else
    (* Shortest of %g / %.15g / %.17g that parses back to the same float:
       sim times stay short ("2.5"), while live traces' absolute wall-clock
       stamps (~1.75e9 s) keep their sub-second digits. *)
    let s = Printf.sprintf "%g" f in
    if float_of_string s = f then s
    else
      let s = Printf.sprintf "%.15g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

(* Width-aware printing: any value whose one-line rendering fits in
   [max_width] columns (counting its left margin) is printed on one line;
   only larger lists/objects break, one element per line, indented by two.
   This keeps scalar records compact ("one row per measurement") instead of
   the one-token-per-line output a naive hv-box produces. *)

let max_width = 80

let atom = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> float_literal f
  | String s -> "\"" ^ escape s ^ "\""
  | List _ | Obj _ -> assert false

let rec add_compact buf = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v ->
    Buffer.add_string buf (atom v)
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add_compact buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf "\"";
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        add_compact buf v)
      fields;
    Buffer.add_char buf '}'

let compact_string t =
  let buf = Buffer.create 128 in
  add_compact buf t;
  Buffer.contents buf

let to_compact_string = compact_string

let rec render buf ~col t =
  let one_line = compact_string t in
  if col + String.length one_line <= max_width then
    Buffer.add_string buf one_line
  else begin
    let margin = String.make col ' ' in
    let item_col = col + 2 in
    let item_margin = String.make item_col ' ' in
    match t with
    | Null | Bool _ | Int _ | Float _ | String _ ->
      (* An over-long atom cannot be broken. *)
      Buffer.add_string buf one_line
    | List xs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf item_margin;
          render buf ~col:item_col x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf margin;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf item_margin;
          Buffer.add_string buf "\"";
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          render buf ~col:(item_col + String.length (escape k) + 4) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf margin;
      Buffer.add_char buf '}'
  end

let to_string t =
  let buf = Buffer.create 1024 in
  render buf ~col:0 t;
  Buffer.contents buf

let pp ppf t = Fmt.string ppf (to_string t)

(* ---- parsing ----

   Recursive descent over the string; enough JSON for what this repository
   itself emits (which is all it ever reads back). Numbers without '.', 'e'
   or 'E' become [Int], everything else [Float]; "\uXXXX" escapes are
   decoded to UTF-8 (surrogate pairs included). *)

exception Parse_error of { pos : int; msg : string }

type parser_state = { src : string; mutable pos : int }

let parse_fail st msg = raise (Parse_error { pos = st.pos; msg })

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let n = String.length st.src in
  while
    st.pos < n
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> parse_fail st (Printf.sprintf "expected %c, found %c" c c')
  | None -> parse_fail st (Printf.sprintf "expected %c, found end of input" c)

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else parse_fail st (Printf.sprintf "expected %s" word)

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then parse_fail st "truncated \\u escape";
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match st.src.[st.pos] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | _ -> parse_fail st "bad hex digit in \\u escape"
    in
    v := (!v * 16) + d;
    advance st
  done;
  !v

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> parse_fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> parse_fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let hi = parse_hex4 st in
          if hi >= 0xD800 && hi <= 0xDBFF then begin
            (* Surrogate pair: the low half must follow as \uXXXX. *)
            expect st '\\';
            expect st 'u';
            let lo = parse_hex4 st in
            if lo < 0xDC00 || lo > 0xDFFF then
              parse_fail st "unpaired surrogate"
            else
              add_utf8 buf
                (0x10000 + (((hi - 0xD800) lsl 10) lor (lo - 0xDC00)))
          end
          else add_utf8 buf hi
        | _ -> parse_fail st "unknown escape"));
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let n = String.length st.src in
  if peek st = Some '-' then advance st;
  while
    st.pos < n
    &&
    match st.src.[st.pos] with
    | '0' .. '9' -> true
    | '.' | 'e' | 'E' | '+' | '-' ->
      is_float := true;
      true
    | _ -> false
  do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> parse_fail st (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* Out of int range: fall back to float. *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> parse_fail st (Printf.sprintf "bad number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> parse_fail st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> String (parse_string_body st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [ parse_value st ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        items := parse_value st :: !items;
        skip_ws st
      done;
      expect st ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        fields := field () :: !fields;
        skip_ws st
      done;
      expect st '}';
      Obj (List.rev !fields)
    end
  | Some c -> parse_fail st (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  | exception Parse_error { pos; msg } ->
    Error (Printf.sprintf "offset %d: %s" pos msg)

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
let to_obj_opt = function Obj fields -> Some fields | _ -> None
