(** Process identifiers with incarnation numbers.

    Following the paper's model, a recovered process is a {e new and different
    process instance}: [reincarnate p] names the next instance of the same
    host. Identifiers order first by id, then by incarnation. *)

type t

val make : ?incarnation:int -> int -> t
val id : t -> int
val incarnation : t -> int

val reincarnate : t -> t
(** Next instance of the same host. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string} ("p3", "p3#1"); [None] on anything else. *)

val pp : t Fmt.t

module Set : sig
  include Set.S with type elt = t

  val pp : t Fmt.t
end

module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t

val group : ?incarnation:int -> int -> t list
(** [group n] is the initial group [p0 … p(n-1)]. *)
