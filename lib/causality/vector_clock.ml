(* Vector clocks over dynamic process sets, stored as dense int arrays over a
   pid-interning registry. Slot [i] of a clock holds the count for the [i]-th
   pid interned in this domain; slots beyond an array's length are implicitly
   zero, so clocks over different membership generations compare soundly and
   [empty] is the zero-length array.

   The registry is *domain-local* (one independent registry per OCaml 5
   domain, via [Domain.DLS]): interning is lock-free on the hot path and
   parallel workers — the explorer's domains, the bench's scenario pool —
   cannot race on it. The registry only grows within a domain, and intern
   order never affects observable behaviour: [to_list]/[pp]/[compare_total]
   sort by [Pid.compare], and the comparison operators treat missing trailing
   slots as zero. The corollary is a sharp ownership rule: a clock value is
   meaningful only in the domain whose registry interned its slots. Clocks
   must not cross domains raw; cross-domain consumers exchange
   [to_list]-style views (the codecs already do).

   Two APIs share the representation:

   - the immutable [t] operations, unchanged from the original map-based
     semantics — every op allocates a fresh array;
   - [Mutable], a copy-on-write owner for the per-process clock hot path:
     [tick]/[merge_tick] update in place while the owner holds the only
     reference, and [snapshot] publishes the current array (freezing it) so
     the next update copies. A process that receives many messages between
     sends — the heartbeat steady state — pays O(1) amortized allocation per
     delivery instead of O(group size). *)

open Gmp_base

type t = int array

(* ---- pid <-> slot interning (per-domain) ---- *)

type registry = {
  index : int Pid.Tbl.t;
  mutable pids : Pid.t array;
  mutable len : int;
}

let new_registry () =
  { index = Pid.Tbl.create 64; pids = Array.make 64 (Pid.make 0); len = 0 }

let registry_key : registry Domain.DLS.key = Domain.DLS.new_key new_registry

let registry () = Domain.DLS.get registry_key

let fresh_registry () = Domain.DLS.set registry_key (new_registry ())

let intern pid =
  let reg = registry () in
  match Pid.Tbl.find reg.index pid with
  | i -> i
  | exception Not_found ->
      let i = reg.len in
      if i = Array.length reg.pids then begin
        let bigger = Array.make (2 * i) (Pid.make 0) in
        Array.blit reg.pids 0 bigger 0 i;
        reg.pids <- bigger
      end;
      reg.pids.(i) <- pid;
      Pid.Tbl.add reg.index pid i;
      reg.len <- i + 1;
      i

let reserve pids = List.iter (fun p -> ignore (intern p : int)) pids

(* Slot of [pid] if already interned, otherwise -1 (read-only paths must not
   grow the registry: a clock can't have a nonzero count for a pid no clock
   has ever ticked). *)
let slot_of pid =
  match Pid.Tbl.find (registry ()).index pid with
  | i -> i
  | exception Not_found -> -1

let empty = [||]

let get t pid =
  let i = slot_of pid in
  if i >= 0 && i < Array.length t then t.(i) else 0

let tick t pid =
  let i = intern pid in
  let len = Array.length t in
  let out = Array.make (if i < len then len else i + 1) 0 in
  Array.blit t 0 out 0 len;
  out.(i) <- out.(i) + 1;
  out

let merge a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let short, long = if la <= lb then (a, b) else (b, a) in
    let out = Array.copy long in
    for i = 0 to Array.length short - 1 do
      if short.(i) > out.(i) then out.(i) <- short.(i)
    done;
    out
  end

let merge_tick a b pid =
  (* [tick (merge a b) pid] in a single allocation: the receive rule. *)
  let i = intern pid in
  let la = Array.length a and lb = Array.length b in
  let len =
    let m = if la >= lb then la else lb in
    if i < m then m else i + 1
  in
  let out = Array.make len 0 in
  Array.blit a 0 out 0 la;
  for j = 0 to lb - 1 do
    if b.(j) > out.(j) then out.(j) <- b.(j)
  done;
  out.(i) <- out.(i) + 1;
  out

let leq a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la then true
    else if a.(i) <= (if i < lb then b.(i) else 0) then go (i + 1)
    else false
  in
  go 0

let equal a b =
  let la = Array.length a and lb = Array.length b in
  let lo = if la <= lb then la else lb in
  let rec same i =
    if i >= lo then true else a.(i) = b.(i) && same (i + 1)
  in
  let rec zeros (t : t) i len =
    if i >= len then true else t.(i) = 0 && zeros t (i + 1) len
  in
  same 0 && zeros a lo la && zeros b lo lb

let lt a b = leq a b && not (leq b a)
let concurrent a b = (not (leq a b)) && not (leq b a)

let to_list t =
  let reg = registry () in
  let acc = ref [] in
  for i = Array.length t - 1 downto 0 do
    if t.(i) <> 0 then acc := (reg.pids.(i), t.(i)) :: !acc
  done;
  List.sort (fun (p, _) (q, _) -> Pid.compare p q) !acc

let compare_total a b =
  (* Arbitrary total order extending nothing in particular; for use as map
     keys only. Lexicographic over pid-sorted nonzero bindings, matching the
     old [Pid.Map.compare] (maps never held zero entries). *)
  List.compare
    (fun (p, m) (q, n) ->
      let c = Pid.compare p q in
      if c <> 0 then c else Int.compare m n)
    (to_list a) (to_list b)

let of_list entries =
  List.fold_left
    (fun acc (pid, n) ->
      if n < 0 then invalid_arg "Vector_clock.of_list: negative entry"
      else if n = 0 then acc
      else begin
        let i = intern pid in
        let len = Array.length acc in
        let out = Array.make (if i < len then len else i + 1) 0 in
        Array.blit acc 0 out 0 len;
        out.(i) <- n;
        out
      end)
    empty entries

let pp ppf t =
  let entry ppf (pid, n) = Fmt.pf ppf "%a:%d" Pid.pp pid n in
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any " ") entry) (to_list t)

(* ---- copy-on-write owner clocks ---- *)

module Mutable = struct
  type clock = { mutable arr : int array; mutable shared : bool }

  let create () = { arr = empty; shared = true }

  (* Make [c.arr] privately owned and at least [needed] slots long. Sizing
     matches the immutable ops exactly (grow to the precise need, never
     over-allocate), so a snapshot after any op sequence is bit-identical to
     the array the immutable API would have produced. *)
  let unshare c needed =
    let len = Array.length c.arr in
    if c.shared || needed > len then begin
      let out = Array.make (if needed > len then needed else len) 0 in
      Array.blit c.arr 0 out 0 len;
      c.arr <- out;
      c.shared <- false
    end

  let tick c pid =
    let i = intern pid in
    unshare c (i + 1);
    c.arr.(i) <- c.arr.(i) + 1

  let merge_tick c b pid =
    let i = intern pid in
    let lb = Array.length b in
    unshare c (if i + 1 > lb then i + 1 else lb);
    let a = c.arr in
    for j = 0 to lb - 1 do
      if b.(j) > a.(j) then a.(j) <- b.(j)
    done;
    a.(i) <- a.(i) + 1

  let snapshot c =
    c.shared <- true;
    c.arr

  (* Checkpointing IS publishing: the captured array is frozen by the
     copy-on-write discipline (every writer unshares first), so both capture
     and restore are O(1) and the same checkpoint restores any number of
     times. *)
  type checkpoint = t

  let checkpoint c = snapshot c

  let restore c arr =
    c.arr <- arr;
    c.shared <- true
end
