(** Vector clocks over dynamic process sets.

    Entries absent from the underlying map read as zero, so clocks taken
    before and after membership changes remain comparable. [lt] characterizes
    Lamport's happens-before exactly: [e -> e'] iff [lt (vc e) (vc e')].

    Pids are interned into dense slots in a {e domain-local} registry: each
    OCaml 5 domain owns an independent one, so parallel workers never contend
    on it. A clock value is only meaningful in the domain that built it;
    cross-domain consumers must exchange [to_list]-style views. *)

open Gmp_base

type t

val empty : t
val get : t -> Pid.t -> int
val tick : t -> Pid.t -> t

val merge : t -> t -> t
(** Pointwise maximum (receive rule, before the local tick). *)

val merge_tick : t -> t -> Pid.t -> t
(** [merge_tick a b pid] = [tick (merge a b) pid] in one allocation — the
    whole receive rule, for the per-delivery hot path. *)

val leq : t -> t -> bool
val lt : t -> t -> bool
val equal : t -> t -> bool

val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]. *)

val compare_total : t -> t -> int
(** An arbitrary total order (for containers); unrelated to causality. *)

val of_list : (Pid.t * int) list -> t
val to_list : t -> (Pid.t * int) list
val pp : t Fmt.t

val reserve : Pid.t list -> unit
(** Intern [pids] now, in list order. Harnesses call this with the initial
    membership so slot assignment is canonical (pid order) rather than
    an artifact of message arrival order. Purely an interning warm-up;
    observable clock values never depend on it. *)

val fresh_registry : unit -> unit
(** Replace the calling domain's intern registry with an empty one. For
    harnesses that run many independent scenarios in one domain (the bench)
    and want each to start from the same registry state as a scenario running
    alone in a fresh domain — e.g. so allocation measurements are identical
    under any [--jobs]. Clocks built before the reset must not be compared
    with clocks built after. *)

(** Copy-on-write owner clocks, for the one-writer per-process hot path.

    A [clock] is owned by a single process in a single domain. [tick] and
    [merge_tick] mutate in place while the owner holds the only reference to
    the backing array; [snapshot] publishes the array as an immutable {!t}
    (to embed in a message or a trace stamp) and marks it frozen, so the next
    mutation copies first. Between publishes — e.g. a run of heartbeat
    deliveries with no send — updates allocate nothing. Snapshot values are
    bit-identical to what the immutable API would produce. *)
module Mutable : sig
  type clock

  val create : unit -> clock
  (** The zero clock. *)

  val tick : clock -> Pid.t -> unit
  (** Local-step rule: increment the owner's component. *)

  val merge_tick : clock -> t -> Pid.t -> unit
  (** Receive rule: pointwise max with the sender's published clock, then
      tick the owner's component. *)

  val snapshot : clock -> t
  (** Publish the current value. The result is immutable forever; the clock
      remains usable and will copy on its next update. *)

  type checkpoint
  (** O(1) capture of the clock value — checkpointing publishes the backing
      array exactly like {!snapshot}, so the copy-on-write discipline keeps
      it frozen and one checkpoint restores any number of times. *)

  val checkpoint : clock -> checkpoint
  val restore : clock -> checkpoint -> unit
end
