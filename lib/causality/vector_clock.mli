(** Vector clocks over dynamic process sets.

    Entries absent from the underlying map read as zero, so clocks taken
    before and after membership changes remain comparable. [lt] characterizes
    Lamport's happens-before exactly: [e -> e'] iff [lt (vc e) (vc e')]. *)

open Gmp_base

type t

val empty : t
val get : t -> Pid.t -> int
val tick : t -> Pid.t -> t

val merge : t -> t -> t
(** Pointwise maximum (receive rule, before the local tick). *)

val merge_tick : t -> t -> Pid.t -> t
(** [merge_tick a b pid] = [tick (merge a b) pid] in one allocation — the
    whole receive rule, for the per-delivery hot path. *)

val leq : t -> t -> bool
val lt : t -> t -> bool
val equal : t -> t -> bool

val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]. *)

val compare_total : t -> t -> int
(** An arbitrary total order (for containers); unrelated to causality. *)

val of_list : (Pid.t * int) list -> t
val to_list : t -> (Pid.t * int) list
val pp : t Fmt.t
