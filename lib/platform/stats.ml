(* Per-category message accounting. The paper's complexity analysis counts
   protocol messages and ignores the detection mechanism, so categories let
   benches exclude heartbeats from the tallies.

   Categories are interned once into small dense ids in a global registry;
   the per-message [record_*] path is then a single array increment — no
   string hashing, no allocation. Strings reappear only in the query/report
   API, which resolves them through the registry. *)

type category = int

(* ---- global category registry ----

   The registry is process-wide and normally written only at module
   initialization time (Wire precomputes one id per message type). Parallel
   harnesses [freeze] it before spawning domains: a frozen registry is
   immutable, so the lock-free lookups below are safe to run concurrently;
   interning a *new* name while frozen is a domain-safety bug and raises.
   Mutation is mutex-guarded regardless, so a stray late intern from a
   single domain stays well-defined. *)

let cat_index : (string, int) Hashtbl.t = Hashtbl.create 16
let cat_names = ref (Array.make 16 "")
let cat_count = ref 0
let cat_frozen = Atomic.make false
let cat_mutex = Mutex.create ()

let freeze () = Atomic.set cat_frozen true
let thaw () = Atomic.set cat_frozen false
let is_frozen () = Atomic.get cat_frozen

let intern name =
  match Hashtbl.find_opt cat_index name with
  | Some id -> id
  | None ->
    if Atomic.get cat_frozen then
      invalid_arg
        (Printf.sprintf
           "Stats.intern: registry is frozen (parallel section) and %S is \
            not interned"
           name);
    Mutex.protect cat_mutex (fun () ->
        match Hashtbl.find_opt cat_index name with
        | Some id -> id
        | None ->
          let id = !cat_count in
          if id = Array.length !cat_names then begin
            let bigger = Array.make (2 * id) "" in
            Array.blit !cat_names 0 bigger 0 id;
            cat_names := bigger
          end;
          !cat_names.(id) <- name;
          Hashtbl.add cat_index name id;
          incr cat_count;
          id)

let name (id : category) =
  if id < 0 || id >= !cat_count then
    invalid_arg "Stats.name: unknown category id";
  !cat_names.(id)

(* ---- counters: one int slot per interned category ---- *)

type t = {
  mutable sent : int array;
  mutable delivered : int array;
  mutable dropped : int array; (* dst crashed, disconnected (S1), … *)
}

let create () = { sent = [||]; delivered = [||]; dropped = [||] }

let grown arr id =
  let cap = max 16 (max (2 * Array.length arr) (id + 1)) in
  let bigger = Array.make cap 0 in
  Array.blit arr 0 bigger 0 (Array.length arr);
  bigger

let record_sent t ~category:id =
  if id >= Array.length t.sent then t.sent <- grown t.sent id;
  t.sent.(id) <- t.sent.(id) + 1

let record_delivered t ~category:id =
  if id >= Array.length t.delivered then t.delivered <- grown t.delivered id;
  t.delivered.(id) <- t.delivered.(id) + 1

let record_dropped t ~category:id =
  if id >= Array.length t.dropped then t.dropped <- grown t.dropped id;
  t.dropped.(id) <- t.dropped.(id) + 1

let get arr category =
  match Hashtbl.find_opt cat_index category with
  | None -> 0
  | Some id -> if id < Array.length arr then arr.(id) else 0

let sent t ~category = get t.sent category
let delivered t ~category = get t.delivered category
let dropped t ~category = get t.dropped category

let sum arr = Array.fold_left ( + ) 0 arr

let total_sent t = sum t.sent
let total_delivered t = sum t.delivered
let total_dropped t = sum t.dropped

let categories t =
  (* Categories with any nonzero counter, name-sorted (a recorded category
     is never zero, so this matches "ever recorded since the last reset"). *)
  let acc = ref [] in
  let scan arr =
    Array.iteri
      (fun id n ->
        if n > 0 then begin
          let nm = !cat_names.(id) in
          if not (List.mem nm !acc) then acc := nm :: !acc
        end)
      arr
  in
  scan t.sent;
  scan t.delivered;
  scan t.dropped;
  List.sort String.compare !acc

let sent_excluding t ~categories:excluded =
  let acc = ref 0 in
  Array.iteri
    (fun id n ->
      if n > 0 && not (List.mem !cat_names.(id) excluded) then acc := !acc + n)
    t.sent;
  !acc

let reset t =
  Array.fill t.sent 0 (Array.length t.sent) 0;
  Array.fill t.delivered 0 (Array.length t.delivered) 0;
  Array.fill t.dropped 0 (Array.length t.dropped) 0

(* Counter checkpoints copy the three arrays both ways: copying again on
   restore keeps the checkpoint pristine under later increments, so one
   checkpoint supports any number of restores. The category registry is
   process-global configuration, not per-run state, and is not captured. *)

type checkpoint = {
  cp_sent : int array;
  cp_delivered : int array;
  cp_dropped : int array;
}

let checkpoint t =
  { cp_sent = Array.copy t.sent;
    cp_delivered = Array.copy t.delivered;
    cp_dropped = Array.copy t.dropped }

let restore t cp =
  t.sent <- Array.copy cp.cp_sent;
  t.delivered <- Array.copy cp.cp_delivered;
  t.dropped <- Array.copy cp.cp_dropped

let snapshot t =
  List.map
    (fun category ->
      (category, sent t ~category, delivered t ~category, dropped t ~category))
    (categories t)

let register_views t reg =
  (* One flat view over the whole table: keys only exist once a category
     records something, so the family's key set is runtime data — exactly
     what Obs list-valued views are for. *)
  Gmp_obs.Obs.register_views reg ~prefix:"msg" (fun () ->
      List.concat_map
        (fun (category, s, d, x) ->
          [ (category ^ ".sent", s);
            (category ^ ".delivered", d);
            (category ^ ".dropped", x) ])
        (snapshot t))

let pp ppf t =
  let row ppf (category, s, d, x) =
    Fmt.pf ppf "%-18s sent=%-6d delivered=%-6d dropped=%d" category s d x
  in
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any "@\n") row) (snapshot t)
