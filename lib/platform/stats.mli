(** Per-category message statistics.

    The paper's §7.2 counts protocol messages only (the failure-detection
    mechanism is an oracle); tagging every send with a category lets the
    benches count exactly what the paper counts.

    Categories are interned into dense integer ids through a global,
    process-wide registry ({!intern} is idempotent and cheap to call at
    module-initialization time). The recording path takes the interned id
    and is a single array increment; the query API stays string-keyed. *)

type t

type category
(** An interned category id (dense, process-global). *)

val intern : string -> category
(** Intern a category name; returns the same id for the same name. Raises
    [Invalid_argument] for a name not yet interned while the registry is
    {!freeze}-d. *)

val freeze : unit -> unit
(** Forbid interning new names. Parallel harnesses call this before spawning
    worker domains: a frozen registry is immutable, so concurrent lookups
    need no lock; an attempted late intern fails loudly instead of racing. *)

val thaw : unit -> unit
(** Re-allow interning, once all worker domains have been joined. *)

val is_frozen : unit -> bool

val name : category -> string
(** Inverse of {!intern}. *)

val create : unit -> t

val record_sent : t -> category:category -> unit
val record_delivered : t -> category:category -> unit
val record_dropped : t -> category:category -> unit

val sent : t -> category:string -> int
val delivered : t -> category:string -> int
val dropped : t -> category:string -> int

val total_sent : t -> int
val total_delivered : t -> int
val total_dropped : t -> int

val sent_excluding : t -> categories:string list -> int
(** Total sends outside the given categories (e.g. excluding heartbeats). *)

val categories : t -> string list
val snapshot : t -> (string * int * int * int) list
(** [(category, sent, delivered, dropped)] rows. *)

val reset : t -> unit

val register_views : t -> Gmp_obs.Obs.registry -> unit
(** Expose the whole table to a metrics registry as
    [msg.<category>.sent] / [.delivered] / [.dropped] snapshot views;
    the recording path is untouched. *)

val pp : t Fmt.t

type checkpoint
(** Copy of the counters at capture time (the category registry, being
    process-global configuration, is not part of it). *)

val checkpoint : t -> checkpoint

val restore : t -> checkpoint -> unit
(** Rewind the counters to the captured values. A checkpoint stays valid
    across any number of restores. *)
