(* The execution-platform seam between the protocol core and the world.

   The paper's algorithms assume only an asynchronous message substrate
   (send / indivisible broadcast), local timers for the F1 failure-detection
   oracle, the S1 receiver-side channel disconnect and a local clock. This
   record is exactly that surface: lib/core compiles against it and nothing
   else, so the same protocol byte-for-byte runs on the deterministic
   simulator (Gmp_runtime.Runtime) and on real sockets with wall-clock
   timers (Gmp_live.Live).

   A node is a record of closures rather than a functor so that one
   executable can host nodes of both worlds (the orchestrator does), and so
   call sites need no functor plumbing. Implementations must maintain the
   vector clock themselves: tick on send / broadcast / local_event,
   merge+tick on delivery - the protocol layers read it back through
   [clock] to stamp their traces with causal time. *)

open Gmp_base
open Gmp_causality

type timer = { cancel : unit -> unit }

let no_timer = { cancel = (fun () -> ()) }

type 'm node = {
  pid : Pid.t;
  alive : unit -> bool;  (* false once crashed / halted *)
  now : unit -> float;
      (* simulator: virtual time; live: seconds of wall clock (monotonic
         within a process, comparable across loopback processes) *)
  clock : unit -> Vector_clock.t;
  local_event : unit -> int * Vector_clock.t;
      (* record a local step; returns (history index, vector clock) *)
  send : dst:Pid.t -> category:Stats.category -> 'm -> unit;
      (* no-op once dead: crashed processes influence nobody *)
  broadcast : dsts:Pid.t list -> category:Stats.category -> 'm -> unit;
      (* the paper's Bcast: indivisible (one clock tick, self excluded)
         but not failure-atomic *)
  disconnect_from : from:Pid.t -> unit;
      (* system property S1: never receive from [from] again *)
  halt : unit -> unit;
      (* stop receiving, sending and firing timers, forever (crash /
         protocol-mandated quit) *)
  set_receiver : (src:Pid.t -> 'm -> unit) -> unit;
  set_timer : delay:float -> (unit -> unit) -> timer;
      (* fires once, only if the node is still alive *)
  every : interval:float -> (unit -> unit) -> unit;
      (* periodic timer; stops when the node dies *)
  log : string -> unit;  (* local diagnostic log (not part of the trace) *)
}

let pp_node ppf n = Fmt.pf ppf "node(%a)" Pid.pp n.pid
