(** The execution-platform seam between the protocol core and the world.

    The protocol layers ({!Gmp_core.Member}, the detectors, the vsync layer)
    see one process of an asynchronous system exclusively through this
    record: send and indivisible broadcast, one-shot and periodic timers, a
    local clock, the S1 incoming-channel disconnect, and vector-clock
    bookkeeping. Two implementations exist:

    - [Gmp_runtime.Runtime.platform]: the deterministic discrete-event
      simulator (virtual time, simulated network);
    - [Gmp_live.Live.node]: real OS processes exchanging frames over UDP
      loopback with wall-clock timers.

    Implementations maintain the vector clock (tick on send, broadcast and
    local event; merge+tick on delivery) so protocol layers can stamp their
    trace events with causal timestamps. *)

open Gmp_base
open Gmp_causality

type timer = { cancel : unit -> unit }
(** Cancelling an already-fired or already-cancelled timer is a no-op. *)

val no_timer : timer
(** An inert timer (for initializing mutable slots). *)

type 'm node = {
  pid : Pid.t;
  alive : unit -> bool;
  now : unit -> float;
  clock : unit -> Vector_clock.t;
  local_event : unit -> int * Vector_clock.t;
  send : dst:Pid.t -> category:Stats.category -> 'm -> unit;
  broadcast : dsts:Pid.t list -> category:Stats.category -> 'm -> unit;
  disconnect_from : from:Pid.t -> unit;
  halt : unit -> unit;
  set_receiver : (src:Pid.t -> 'm -> unit) -> unit;
  set_timer : delay:float -> (unit -> unit) -> timer;
  every : interval:float -> (unit -> unit) -> unit;
  log : string -> unit;
}

val pp_node : 'm node Fmt.t
