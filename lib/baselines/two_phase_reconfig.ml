(* Two-phase reconfiguration baseline (Claim 7.2, Figure 11).

   Same two-phase update algorithm as the real protocol, but reconfiguration
   has only Interrogate and Commit - no Propose round. Without the proposal
   phase an initiator's concrete plan is never registered in the survivors'
   next() lists, so a later reconfigurer that detects two possible in-flight
   changes cannot tell which one may have been committed invisibly; it must
   guess. This module guesses the way a naive implementation would - trust
   the highest-ranked proposer (the old coordinator) - and the Figure 11
   schedule makes that guess wrong, producing a GMP-3 violation that the
   shared Checker flags. The identical schedule run through the real
   three-phase protocol stays consistent (the bench shows both).

   The machinery is deliberately a reduction of Member: enough of the update
   algorithm to put proposals in flight, plus the crippled reconfiguration. *)

open Gmp_base
module Runtime = Gmp_runtime.Runtime
module Trace = Gmp_core.Trace
module Types = Gmp_core.Types
module View = Gmp_core.View

type reply = { r_ver : int; r_seq : Types.seq; r_next : Types.expectation list }

(* Interned send categories (the Stats hot path takes dense ids). *)
let cat_invite = Gmp_net.Stats.intern "invite"
let cat_invite_ok = Gmp_net.Stats.intern "invite-ok"
let cat_commit = Gmp_net.Stats.intern "commit"
let cat_interrogate = Gmp_net.Stats.intern "interrogate"
let cat_interrogate_ok = Gmp_net.Stats.intern "interrogate-ok"
let cat_reconf_commit = Gmp_net.Stats.intern "reconf-commit"

type msg =
  | Invite of { op : Types.op; invite_ver : int }
  | Invite_ok of { ok_ver : int }
  | Commit of { op : Types.op; commit_ver : int }
  | Interrogate
  | Interrogate_ok of reply
  | Reconf_commit of { canonical : Types.seq } (* phase 2: commit directly *)

type phase =
  | Idle
  | Mgr_awaiting of { op : Types.op; target_ver : int; mutable oks : Pid.Set.t }
  | Interrogating of { mutable responses : (Pid.t * reply) list }

type node = {
  handle : msg Runtime.node;
  trace : Trace.t;
  mutable view : View.t;
  mutable ver : int;
  mutable seq : Types.seq;
  mutable next : Types.expectation list;
  mutable faulty : Pid.Set.t;
  mutable mgr : Pid.t;
  mutable phase : phase;
}

type t = {
  runtime : msg Runtime.t;
  trace : Trace.t;
  initial : Pid.t list;
  mutable nodes : node Pid.Map.t;
}

let me node = Runtime.pid node.handle

let record node kind =
  let index, vc = Runtime.local_event node.handle in
  Trace.record node.trace ~owner:(me node) ~index
    ~time:(Runtime.node_now node.handle)
    ~vc kind

let others node =
  List.filter (fun p -> not (Pid.equal p (me node))) (View.members node.view)

let non_faulty_others node =
  List.filter (fun p -> not (Pid.Set.mem p node.faulty)) (others node)

let apply_op node op =
  (match op with
   | Types.Remove z ->
     node.view <- View.remove node.view z;
     node.faulty <- Pid.Set.remove z node.faulty;
     node.ver <- node.ver + 1;
     node.seq <- node.seq @ [ op ];
     record node (Trace.Removed { target = z; new_ver = node.ver })
   | Types.Add z ->
     node.view <- View.add node.view z;
     node.ver <- node.ver + 1;
     node.seq <- node.seq @ [ op ];
     record node (Trace.Added { target = z; new_ver = node.ver }));
  record node
    (Trace.Installed { ver = node.ver; view_members = View.members node.view })

let suspect node q =
  if (not (Pid.equal q (me node))) && not (Pid.Set.mem q node.faulty) then begin
    node.faulty <- Pid.Set.add q node.faulty;
    Runtime.disconnect_from node.handle ~from:q;
    record node (Trace.Faulty q)
  end

let send node ~dst ~category msg = Runtime.send node.handle ~dst ~category msg

(* ---- the two-phase update algorithm (as in the real protocol) ---- *)

let start_exclusion node victim =
  if Pid.equal node.mgr (me node) && node.phase = Idle then begin
    suspect node victim;
    let target_ver = node.ver + 1 in
    Runtime.broadcast node.handle ~dsts:(View.members node.view)
      ~category:cat_invite
      (Invite { op = Types.Remove victim; invite_ver = target_ver });
    node.phase <-
      Mgr_awaiting { op = Types.Remove victim; target_ver; oks = Pid.Set.empty }
  end

let check_mgr node =
  match node.phase with
  | Mgr_awaiting { op; target_ver; oks } ->
    let outstanding =
      List.filter (fun p -> not (Pid.Set.mem p oks)) (non_faulty_others node)
    in
    if outstanding = [] then begin
      node.phase <- Idle;
      apply_op node op;
      record node (Trace.Committed { ver = node.ver; commit_kind = `Update });
      Runtime.broadcast node.handle ~dsts:(non_faulty_others node)
        ~category:cat_commit
        (Commit { op; commit_ver = target_ver })
    end
  | Idle | Interrogating _ -> ()

(* ---- two-phase reconfiguration: interrogate, then commit a guess ---- *)

let start_reconf node =
  if node.phase = Idle then begin
    record node (Trace.Initiated_reconf { at_ver = node.ver });
    let my_reply = { r_ver = node.ver; r_seq = node.seq; r_next = node.next } in
    node.phase <- Interrogating { responses = [ (me node, my_reply) ] };
    Runtime.broadcast node.handle ~dsts:(View.members node.view)
      ~category:cat_interrogate Interrogate
  end

let check_reconf node =
  match node.phase with
  | Interrogating { responses } ->
    let responded p = List.exists (fun (q, _) -> Pid.equal p q) responses in
    let outstanding =
      List.filter (fun p -> not (responded p)) (non_faulty_others node)
    in
    if outstanding = [] && List.length responses >= View.majority node.view
    then begin
      node.phase <- Idle;
      (* Determine, crippled: we see pending proposals in the replies but,
         with no propose phase on record, cannot tell which could have been
         committed invisibly. Guess: trust the highest-ranked proposer. *)
      let longest =
        List.fold_left
          (fun acc (_, r) ->
            if List.length r.r_seq > List.length acc then r.r_seq else acc)
          node.seq responses
      in
      let candidates =
        List.concat_map
          (fun (_, r) ->
            List.filter_map
              (function
                | Types.Expected { canonical; coord; ver }
                  when ver = node.ver + 1 ->
                  Some (coord, canonical)
                | Types.Expected _ | Types.Awaiting_proposal _ -> None)
              r.r_next)
          responses
      in
      let canonical =
        if List.length longest > node.ver then longest
        else
          match candidates with
          | [] -> node.seq @ [ Types.Remove node.mgr ]
          | cands ->
            let rank_of coord =
              match View.rank node.view coord with
              | r -> r
              | exception Not_found -> min_int
            in
            let _, best =
              List.fold_left
                (fun ((br, _) as best) (coord, canon) ->
                  let r = rank_of coord in
                  if r > br then (r, canon) else best)
                (min_int, node.seq @ [ Types.Remove node.mgr ])
                cands
            in
            best
      in
      record node
        (Trace.Proposed
           { target_ver = List.length canonical;
             ops = Types.seq_drop node.ver canonical });
      (* Commit directly: no proposal round. *)
      List.iter
        (function
          | Types.Remove z -> suspect node z
          | Types.Add _ -> ())
        (Types.seq_drop node.ver canonical);
      List.iter (apply_op node) (Types.seq_drop node.ver canonical);
      node.mgr <- me node;
      record node (Trace.Became_mgr { at_ver = node.ver });
      record node (Trace.Committed { ver = node.ver; commit_kind = `Reconf });
      Runtime.broadcast node.handle ~dsts:(non_faulty_others node)
        ~category:cat_reconf_commit (Reconf_commit { canonical })
    end
  | Idle | Mgr_awaiting _ -> ()

(* ---- dispatch ---- *)

let dispatch node ~src msg =
  (match msg with
   | Invite { op; invite_ver } ->
     if invite_ver = node.ver + 1 then begin
       (match op with
        | Types.Remove z when Pid.equal z (me node) ->
          record node (Trace.Quit "invited to be excluded");
          Runtime.crash node.handle
        | Types.Remove z -> suspect node z
        | Types.Add _ -> ());
       node.next <-
         [ Types.Expected
             { canonical = node.seq @ [ op ]; coord = src; ver = invite_ver } ];
       send node ~dst:src ~category:cat_invite_ok (Invite_ok { ok_ver = invite_ver })
     end
   | Invite_ok { ok_ver } -> (
     match node.phase with
     | Mgr_awaiting ({ target_ver; _ } as mp) when target_ver = ok_ver ->
       mp.oks <- Pid.Set.add src mp.oks
     | Mgr_awaiting _ | Idle | Interrogating _ -> ())
   | Commit { op; commit_ver } ->
     if commit_ver = node.ver + 1 then begin
       (match op with
        | Types.Remove z when Pid.equal z (me node) ->
          record node (Trace.Quit "excluded");
          Runtime.crash node.handle
        | Types.Remove z -> suspect node z; apply_op node op
        | Types.Add _ -> apply_op node op);
       node.next <- []
     end
   | Interrogate ->
     send node ~dst:src ~category:cat_interrogate_ok
       (Interrogate_ok { r_ver = node.ver; r_seq = node.seq; r_next = node.next });
     (match View.higher_ranked node.view src with
      | hi -> List.iter (suspect node) hi
      | exception Not_found -> ());
     node.next <- node.next @ [ Types.Awaiting_proposal src ]
   | Interrogate_ok reply -> (
     match node.phase with
     | Interrogating r ->
       if not (List.exists (fun (p, _) -> Pid.equal p src) r.responses) then
         r.responses <- r.responses @ [ (src, reply) ]
     | Idle | Mgr_awaiting _ -> ())
   | Reconf_commit { canonical } ->
     if Types.is_prefix ~prefix:node.seq canonical then begin
       let missing = Types.seq_drop node.ver canonical in
       if
         List.exists
           (function
             | Types.Remove z -> Pid.equal z (me node)
             | Types.Add _ -> false)
           missing
       then begin
         record node (Trace.Quit "removed by reconfiguration");
         Runtime.crash node.handle
       end
       else begin
         List.iter
           (function Types.Remove z -> suspect node z | Types.Add _ -> ())
           missing;
         List.iter (apply_op node) missing;
         node.mgr <- src
       end
     end);
  check_mgr node;
  check_reconf node

(* ---- harness ---- *)

let create ?delay ?(seed = 1) ~n () =
  let runtime = Runtime.create ?delay ~seed () in
  let trace = Trace.create () in
  let initial = Pid.group n in
  let t = { runtime; trace; initial; nodes = Pid.Map.empty } in
  List.iter
    (fun pid ->
      let handle = Runtime.spawn runtime pid in
      let node =
        { handle;
          trace;
          view = View.initial initial;
          ver = 0;
          seq = [];
          next = [];
          faulty = Pid.Set.empty;
          mgr = List.hd initial;
          phase = Idle }
      in
      Runtime.set_receiver handle (fun ~src msg -> dispatch node ~src msg);
      t.nodes <- Pid.Map.add pid node t.nodes;
      record node (Trace.Installed { ver = 0; view_members = initial }))
    initial;
  t


let trace t = t.trace
let initial t = t.initial

let node t pid =
  match Pid.Map.find_opt pid t.nodes with
  | Some n -> n
  | None -> invalid_arg "Two_phase_reconfig.node: unknown pid"

let at t time f =
  ignore
    (Gmp_sim.Engine.schedule_at (Runtime.engine t.runtime) ~time f
      : Gmp_sim.Engine.handle)

let crash_at t time pid = at t time (fun () -> Runtime.crash (node t pid).handle)

let exclusion_at t time ~coordinator ~victim =
  at t time (fun () -> start_exclusion (node t coordinator) victim)

let suspect_at t time ~observer ~target =
  at t time (fun () ->
      let n = node t observer in
      suspect n target;
      check_mgr n;
      check_reconf n)

let reconf_at t time pid =
  at t time (fun () ->
      let n = node t pid in
      start_reconf n;
      check_reconf n)

let partition_at t time groups =
  at t time (fun () -> Gmp_net.Network.partition (Runtime.network t.runtime) groups)

let run ?(until = 200.0) t = Runtime.run ~until t.runtime

let views t =
  List.map
    (fun (pid, node) -> (pid, node.ver, View.members node.view))
    (Pid.Map.bindings t.nodes)
