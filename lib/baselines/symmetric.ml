(* Symmetric membership baseline, in the style of Bruso [5].

   No coordinator: every process, upon suspecting q, broadcasts its
   suspicion; every receiver adopts the suspicion and broadcasts its own
   (once). A process removes q from its local view when every other member
   of its view has voted q out. Every exclusion therefore costs about
   (n-1)^2 messages - the "order of magnitude more messages in all
   situations" the paper charges symmetric solutions with (§1, §8).

   Good enough to reproduce the cost comparison; not a complete protocol
   (no join, no invisible-commit recovery). *)

open Gmp_base
module Runtime = Gmp_runtime.Runtime
module Trace = Gmp_core.Trace
module View = Gmp_core.View

type msg = Suspect of Pid.t

let cat_suspect = Gmp_net.Stats.intern "suspect"

type node = {
  handle : msg Runtime.node;
  trace : Trace.t;
  mutable view : View.t;
  mutable ver : int;
  mutable votes : Pid.Set.t Pid.Map.t; (* target -> voters (incl. self) *)
  mutable voted : Pid.Set.t; (* targets this node has broadcast about *)
}

type t = {
  runtime : msg Runtime.t;
  trace : Trace.t;
  initial : Pid.t list;
  mutable nodes : node Pid.Map.t;
}

let record node kind =
  let index, vc = Runtime.local_event node.handle in
  Trace.record node.trace
    ~owner:(Runtime.pid node.handle)
    ~index
    ~time:(Runtime.node_now node.handle)
    ~vc kind

let votes_for node target =
  match Pid.Map.find_opt target node.votes with
  | None -> Pid.Set.empty
  | Some s -> s

let maybe_remove node target =
  if View.mem node.view target then begin
    let voters = votes_for node target in
    let me = Runtime.pid node.handle in
    let everyone_voted =
      List.for_all
        (fun p ->
          Pid.equal p target || Pid.equal p me || Pid.Set.mem p voters
          (* a process this node itself suspects cannot be expected to vote *)
          || Pid.Set.mem p node.voted)
        (View.members node.view)
    in
    if everyone_voted then begin
      node.view <- View.remove node.view target;
      node.ver <- node.ver + 1;
      record node (Trace.Removed { target; new_ver = node.ver });
      record node
        (Trace.Installed
           { ver = node.ver; view_members = View.members node.view })
    end
  end

let rec vote node target ~voter =
  let me = Runtime.pid node.handle in
  if View.mem node.view target && not (Pid.equal target me) then begin
    node.votes <-
      Pid.Map.add target (Pid.Set.add voter (votes_for node target)) node.votes;
    (* Adopt and propagate once (all-to-all flooding). *)
    if not (Pid.Set.mem target node.voted) then begin
      node.voted <- Pid.Set.add target node.voted;
      node.votes <-
        Pid.Map.add target (Pid.Set.add me (votes_for node target)) node.votes;
      record node (Trace.Faulty target);
      Runtime.broadcast node.handle ~dsts:(View.members node.view)
        ~category:cat_suspect (Suspect target)
    end;
    maybe_remove node target;
    (* A new vote can complete other pending removals too. *)
    Pid.Map.iter (fun other _ -> maybe_remove node other) node.votes
  end

and dispatch node ~src (Suspect target) = vote node target ~voter:src

let suspect node target =
  vote node target ~voter:(Runtime.pid node.handle)

let create ?delay ?(seed = 1) ~n () =
  let runtime = Runtime.create ?delay ~seed () in
  let trace = Trace.create () in
  let initial = Pid.group n in
  let t = { runtime; trace; initial; nodes = Pid.Map.empty } in
  List.iter
    (fun pid ->
      let handle = Runtime.spawn runtime pid in
      let node =
        { handle;
          trace;
          view = View.initial initial;
          ver = 0;
          votes = Pid.Map.empty;
          voted = Pid.Set.empty }
      in
      Runtime.set_receiver handle (fun ~src msg -> dispatch node ~src msg);
      t.nodes <- Pid.Map.add pid node t.nodes;
      record node (Trace.Installed { ver = 0; view_members = initial }))
    initial;
  t


let trace t = t.trace
let stats t = Runtime.stats t.runtime

let node t pid =
  match Pid.Map.find_opt pid t.nodes with
  | Some n -> n
  | None -> invalid_arg "Symmetric.node: unknown pid"

let at t time f =
  ignore
    (Gmp_sim.Engine.schedule_at (Runtime.engine t.runtime) ~time f
      : Gmp_sim.Engine.handle)

let crash_at t time pid =
  at t time (fun () -> Runtime.crash (node t pid).handle)

let suspect_at t time ~observer ~target =
  at t time (fun () -> suspect (node t observer) target)

let run ?(until = 200.0) t = Runtime.run ~until t.runtime

let views t =
  List.filter_map
    (fun (pid, node) ->
      if Runtime.alive node.handle then
        Some (pid, node.ver, View.members node.view)
      else None)
    (Pid.Map.bindings t.nodes)

let messages t = Gmp_net.Stats.sent (stats t) ~category:"suspect"
