(* One-phase membership baseline (Claim 7.1).

   The coordinator broadcasts removals directly; receivers apply them
   immediately, with no acknowledgement round. A process that believes all
   higher-ranked processes faulty takes over and broadcasts its own
   removals. The paper proves this cannot solve GMP when the coordinator can
   fail: with Proc partitioned into R and S, r in R suspecting Mgr and Mgr in
   S suspecting r, R installs Proc - {Mgr} while S installs Proc - {r},
   violating GMP-3. The bench reproduces exactly that run and feeds the trace
   to the same Checker as the real protocol. *)

open Gmp_base
module Runtime = Gmp_runtime.Runtime
module Trace = Gmp_core.Trace
module View = Gmp_core.View

type msg = Removal of Pid.t (* the coordinator's one-phase commit *)

let cat_commit = Gmp_net.Stats.intern "commit"

type node = {
  handle : msg Runtime.node;
  trace : Trace.t;
  mutable view : View.t;
  mutable ver : int;
  mutable faulty : Pid.Set.t;
}

type t = {
  runtime : msg Runtime.t;
  trace : Trace.t;
  initial : Pid.t list;
  mutable nodes : node Pid.Map.t;
}

let record node kind =
  let index, vc = Runtime.local_event node.handle in
  Trace.record node.trace
    ~owner:(Runtime.pid node.handle)
    ~index
    ~time:(Runtime.node_now node.handle)
    ~vc kind

let apply_removal node target =
  if View.mem node.view target then begin
    node.view <- View.remove node.view target;
    node.ver <- node.ver + 1;
    record node (Trace.Removed { target; new_ver = node.ver });
    record node
      (Trace.Installed
         { ver = node.ver; view_members = View.members node.view })
  end

let i_am_coordinator node =
  let me = Runtime.pid node.handle in
  View.mem node.view me
  && List.for_all
       (fun q -> Pid.Set.mem q node.faulty)
       (View.higher_ranked node.view me)

(* faultyp(q): one-phase reaction - if I am now the coordinator, broadcast
   the removal at once; otherwise just remember the suspicion. *)
let suspect node q =
  let me = Runtime.pid node.handle in
  if (not (Pid.equal q me)) && not (Pid.Set.mem q node.faulty) then begin
    node.faulty <- Pid.Set.add q node.faulty;
    Runtime.disconnect_from node.handle ~from:q;
    record node (Trace.Faulty q);
    if i_am_coordinator node then begin
      let victims =
        List.filter (fun p -> Pid.Set.mem p node.faulty) (View.members node.view)
      in
      List.iter
        (fun victim ->
          apply_removal node victim;
          record node (Trace.Committed { ver = node.ver; commit_kind = `Update });
          Runtime.broadcast node.handle ~dsts:(View.members node.view)
            ~category:cat_commit (Removal victim))
        victims
    end
  end

let dispatch node ~src:_ (Removal target) =
  let me = Runtime.pid node.handle in
  if Pid.equal target me then begin
    record node (Trace.Quit "one-phase exclusion");
    Runtime.crash node.handle
  end
  else begin
    if not (Pid.Set.mem target node.faulty) then begin
      node.faulty <- Pid.Set.add target node.faulty;
      record node (Trace.Faulty target)
    end;
    apply_removal node target
  end

let create ?delay ?(seed = 1) ~n () =
  let runtime = Runtime.create ?delay ~seed () in
  let trace = Trace.create () in
  let initial = Pid.group n in
  let t = { runtime; trace; initial; nodes = Pid.Map.empty } in
  List.iter
    (fun pid ->
      let handle = Runtime.spawn runtime pid in
      let node =
        { handle;
          trace;
          view = View.initial initial;
          ver = 0;
          faulty = Pid.Set.empty }
      in
      Runtime.set_receiver handle (fun ~src msg -> dispatch node ~src msg);
      t.nodes <- Pid.Map.add pid node t.nodes;
      record node (Trace.Installed { ver = 0; view_members = initial }))
    initial;
  t


let trace t = t.trace
let initial t = t.initial

let node t pid =
  match Pid.Map.find_opt pid t.nodes with
  | Some n -> n
  | None -> invalid_arg "One_phase.node: unknown pid"

let at t time f =
  ignore
    (Gmp_sim.Engine.schedule_at (Runtime.engine t.runtime) ~time f
      : Gmp_sim.Engine.handle)

let suspect_at t time ~observer ~target =
  at t time (fun () -> suspect (node t observer) target)

let partition_at t time groups =
  at t time (fun () -> Gmp_net.Network.partition (Runtime.network t.runtime) groups)

let run ?(until = 200.0) t = Runtime.run ~until t.runtime

let views t =
  List.map
    (fun (pid, node) -> (pid, node.ver, View.members node.view))
    (Pid.Map.bindings t.nodes)
