(** Heartbeat failure detector — the paper's F1 (Observation) source.

    Emits a beat to every current peer each [interval] and fires [suspect]
    once per peer whose last beat is older than [timeout]. Guarantees the
    paper's liveness assumption (a real crash is suspected in finite time);
    may fire spuriously under delay — the protocol must tolerate that.

    Platform-agnostic: time and scheduling come in as closures (normally
    the owning node's {!Gmp_platform.Platform.node} operations), so the
    same detector runs on the simulator's virtual clock and on wall
    clocks. *)

open Gmp_base

type t

val create :
  now:(unit -> float) ->
  set_timer:(delay:float -> (unit -> unit) -> Gmp_platform.Platform.timer) ->
  interval:float ->
  timeout:float ->
  send_beats:(Pid.t list -> unit) ->
  peers:(unit -> Pid.t list) ->
  suspect:(Pid.t -> unit) ->
  unit ->
  t
(** [peers] is consulted on every tick, so the monitored set tracks the
    current view. [timeout] must exceed [interval]. [send_beats] receives
    the whole (non-empty) peer list once per beat round: callers should
    fan it out through their platform's broadcast, which stamps one causal
    event for the round — n individual sends would each tick and republish
    the sender's vector clock, turning every round into O(n^2) clock
    copies. *)

val start : t -> unit
val stop : t -> unit
val is_running : t -> bool

val beat_received : t -> from:Pid.t -> unit
(** Call when a heartbeat message arrives. Beats from processes not in the
    current [peers ()] are dropped — a late beat from a forgotten peer must
    not resurrect its tracking slot. *)

val forget : t -> Pid.t -> unit
(** Drop state about a departed peer (allows a reincarnation to be
    monitored afresh). Peers that depart via a view change without an
    explicit [forget] are pruned on the next tick. *)

val tracked : t -> int
(** Number of peers with tracking state (size of the last-heard table);
    bounded by the current peer set once a tick has run. *)

type checkpoint
(** Capture of the detector's mutable state (last-heard table, running flag,
    pending-tick handle, fired-suspicion set). Only meaningful together with
    a checkpoint of the platform that owns the detector's timers — the
    simulator's engine restore resurrects the pending tick's handle in
    place. Valid across any number of restores. *)

val checkpoint : t -> checkpoint
val restore : t -> checkpoint -> unit
