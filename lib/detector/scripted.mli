(** Scripted failure-detection oracle for reproducing exact scenarios.

    Schedules [faultyp(q)] events at chosen instants, bypassing timeouts.
    Table 1 and the figure-specific experiments are driven this way.
    [schedule_at] abstracts the scheduler (normally
    [Gmp_sim.Engine.schedule_at] wrapped to discard the handle). *)

open Gmp_base

type entry

val entry : at:float -> observer:Pid.t -> suspect:Pid.t -> entry

val install :
  schedule_at:(time:float -> (unit -> unit) -> unit) ->
  entry list ->
  fire:(observer:Pid.t -> suspect:Pid.t -> unit) ->
  unit

val crash_script :
  schedule_at:(time:float -> (unit -> unit) -> unit) ->
  (float * Pid.t) list ->
  crash:(Pid.t -> unit) ->
  unit
(** Schedule real crashes. *)
