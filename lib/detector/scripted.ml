(* Scripted failure-detection oracle.

   Experiments that reproduce a specific figure need exact control over who
   suspects whom and when; this module schedules those faultyp(q) events
   directly, bypassing timeouts. It composes with Heartbeat: both feed the
   same suspicion entry point of the protocol layer.

   Scheduling is abstract ([schedule_at] is normally a thin wrapper around
   the simulator engine's absolute-time scheduler), keeping this library
   free of any particular platform. *)

open Gmp_base

type entry = { at : float; observer : Pid.t; suspect : Pid.t }

let entry ~at ~observer ~suspect = { at; observer; suspect }

let install ~schedule_at entries ~fire =
  List.iter
    (fun { at; observer; suspect } ->
      schedule_at ~time:at (fun () -> fire ~observer ~suspect))
    entries

let crash_script ~schedule_at entries ~crash =
  List.iter
    (fun (at, pid) -> schedule_at ~time:at (fun () -> crash pid))
    entries
