(* Heartbeat failure detector: the paper's F1 (Observation) source.

   Each process periodically beats to its peers; silence past the timeout
   triggers [suspect]. The paper is agnostic about the mechanism and only
   needs it to fire in finite time after a real crash; this one does (beats
   from a crashed process stop, so its peers' timeouts expire). Like any
   timeout detector in an asynchronous system it can also fire spuriously
   under long delays - exactly the "perceived failures" the protocol is
   designed to tolerate.

   The detector is platform-agnostic: it reads time through [now] and
   schedules its tick through [set_timer] (both normally the owning node's
   {!Gmp_platform.Platform.node} operations), so the same code drives F1 in
   the simulator and on wall clocks.

   [last_heard] tracks only current peers: beats from processes outside
   [peers ()] are dropped (a late beat from a suspected-and-forgotten peer
   must not resurrect its slot), and each tick prunes entries for peers that
   departed via a view change without an explicit [forget]. Without both,
   the table grows without bound under churn. *)

open Gmp_base

type t = {
  now : unit -> float;
  set_timer : delay:float -> (unit -> unit) -> Gmp_platform.Platform.timer;
  interval : float;
  timeout : float;
  send_beats : Pid.t list -> unit;
      (* one call per beat round: the platform fans it out as an
         indivisible broadcast, so the round costs one causal event (one
         vector-clock tick, one published snapshot) however many peers
         there are *)
  peers : unit -> Pid.t list;
  suspect : Pid.t -> unit;
  last_heard : float Pid.Tbl.t; (* peer -> time of last beat (or enrolment) *)
  mutable running : bool;
  mutable pending : Gmp_platform.Platform.timer option;
      (* the scheduled next tick, so [stop] can cancel it instead of leaving
         the closure live in the heap until its fire time *)
  mutable suspects_fired : Pid.Set.t;
}

let create ~now ~set_timer ~interval ~timeout ~send_beats ~peers ~suspect () =
  if interval <= 0.0 then invalid_arg "Heartbeat.create: bad interval";
  if timeout <= interval then
    invalid_arg "Heartbeat.create: timeout must exceed interval";
  { now;
    set_timer;
    interval;
    timeout;
    send_beats;
    peers;
    suspect;
    last_heard = Pid.Tbl.create 16;
    running = false;
    pending = None;
    suspects_fired = Pid.Set.empty }

let is_peer t pid = List.exists (Pid.equal pid) (t.peers ())

let beat_received t ~from =
  (* Only current peers are tracked: a beat from a departed or never-known
     process (late in flight when the sender was excluded) is ignored. *)
  if is_peer t from then Pid.Tbl.replace t.last_heard from (t.now ())

let forget t pid =
  Pid.Tbl.remove t.last_heard pid;
  t.suspects_fired <- Pid.Set.remove pid t.suspects_fired

(* Drop state for processes that are no longer peers (departed via a view
   change that never called [forget]). Keys are collected before removal -
   mutating a table during fold is undefined. *)
let prune t peers =
  let stale =
    Pid.Tbl.fold
      (fun pid _ acc ->
        if List.exists (Pid.equal pid) peers then acc else pid :: acc)
      t.last_heard []
  in
  List.iter (fun pid -> forget t pid) stale;
  t.suspects_fired <-
    Pid.Set.filter (fun pid -> List.exists (Pid.equal pid) peers)
      t.suspects_fired

let check_peer t now pid =
  let deadline_start =
    match Pid.Tbl.find_opt t.last_heard pid with
    | Some heard -> heard
    | None ->
      (* First sighting: grant a full timeout's grace. *)
      Pid.Tbl.replace t.last_heard pid now;
      now
  in
  if now -. deadline_start > t.timeout
     && not (Pid.Set.mem pid t.suspects_fired)
  then begin
    t.suspects_fired <- Pid.Set.add pid t.suspects_fired;
    t.suspect pid
  end

let tick t =
  if t.running then begin
    let now = t.now () in
    let peers = t.peers () in
    prune t peers;
    if peers <> [] then t.send_beats peers;
    List.iter (check_peer t now) peers
  end

let start t =
  if not t.running then begin
    t.running <- true;
    let rec loop () =
      (* This event is firing, so it is no longer pending: a [stop] from
         inside [tick] must not cancel an already-fired handle. *)
      t.pending <- None;
      if t.running then begin
        tick t;
        if t.running then t.pending <- Some (t.set_timer ~delay:t.interval loop)
      end
    in
    t.pending <- Some (t.set_timer ~delay:t.interval loop)
  end

let stop t =
  t.running <- false;
  match t.pending with
  | None -> ()
  | Some timer ->
    t.pending <- None;
    timer.Gmp_platform.Platform.cancel ()

let is_running t = t.running

let tracked t = Pid.Tbl.length t.last_heard

(* Checkpoints capture the mutable detector state. [pending] is saved by
   reference: the timer wrapper closes over the engine handle that was
   scheduled at capture time, and the engine's own restore resurrects that
   handle in place, so the saved wrapper cancels the right event after a
   restore. Table iteration order is not observable (prune/forget compute
   order-independent final states), so rebuild order does not matter. *)
type checkpoint = {
  cp_last_heard : (Pid.t * float) list;
  cp_running : bool;
  cp_pending : Gmp_platform.Platform.timer option;
  cp_suspects : Pid.Set.t;
}

let checkpoint t =
  { cp_last_heard =
      Pid.Tbl.fold (fun pid at acc -> (pid, at) :: acc) t.last_heard [];
    cp_running = t.running;
    cp_pending = t.pending;
    cp_suspects = t.suspects_fired }

let restore t cp =
  Pid.Tbl.reset t.last_heard;
  List.iter (fun (pid, at) -> Pid.Tbl.replace t.last_heard pid at)
    cp.cp_last_heard;
  t.running <- cp.cp_running;
  t.pending <- cp.cp_pending;
  t.suspects_fired <- cp.cp_suspects
