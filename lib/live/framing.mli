(** Incremental frame extraction from a TCP byte stream.

    The v2 codec header (magic + version + declared body length) is
    self-delimiting, so the stream encoding of a frame is exactly its
    datagram bytes; this decoder reassembles frames that arrive truncated
    or split across reads. A header-level error (bad magic, unsupported
    version, oversized length) desynchronizes the stream irrecoverably:
    the decoder poisons itself, every later {!feed} returns the same
    error, and the owning connection must be closed. A frame whose header
    is sound but whose body is hostile is still extracted whole - judging
    bodies is [Codec.decode_frame]'s job, and a bad body need not kill
    the connection. *)

type t

val create : unit -> t

val feed : t -> Bytes.t -> off:int -> len:int -> (string list, Codec.error) result
(** Append [len] bytes of [chunk] at [off] and cut out every complete
    frame (each returned string is a full frame, header included, ready
    for [Codec.decode_frame]). [Ok []] simply means no frame completed
    yet. *)

val feed_string : t -> string -> (string list, Codec.error) result

val pending : t -> int
(** Bytes buffered toward a not-yet-complete frame. *)

val frames : t -> int
(** Complete frames extracted so far. *)

val partial_feeds : t -> int
(** Feeds that ended with an incomplete frame still buffered - the
    "frame split across reads" events a stream transport must absorb. *)
