(** The transport seam: how a live node's encoded frames reach peers.

    A record of closures in the style of [Gmp_platform.Platform]: the
    node above it addresses whole frames to pids and receives whole
    frames with an {!origin} it can reply to and learn routes from; the
    record hides whether the wire is one UDP socket or a set of managed
    TCP streams. The contract is deliberately the one UDP already gave
    the protocol stack - best-effort frame delivery with boundaries
    preserved - so the ARQ above the seam stays the sole owner of
    reliability on either implementation. *)

open Gmp_base
module Endpoint = Gmp_net.Endpoint

type origin = {
  reply : string -> unit;
      (** Send one frame back along the arrival path (UDP: the datagram's
          source address; TCP: the connection it arrived on). Lets a
          receiver answer peers it has no configured route to. *)
  learn : Pid.t -> unit;
      (** Bind this origin as the route to [pid] if no route is known -
          how a joiner that announced itself becomes reachable.
          Configured routes are never overridden by traffic. *)
}

type t = {
  kind : string;  (** ["udp"] or ["tcp"], for logs and summaries *)
  endpoint : unit -> Endpoint.t;
      (** the actually-bound local endpoint (ephemeral port resolved) *)
  send : dst:Pid.t -> string -> unit;
      (** Best-effort: an unroutable or unflushable frame is counted and
          dropped, never raised on. *)
  add_peer : Pid.t -> Endpoint.t -> unit;
  remove_peer : Pid.t -> unit;
      (** Forget the route and (TCP) tear down its connection - used when
          a peer is excluded so a later rejoin starts clean. *)
  rfds : unit -> Unix.file_descr list;  (** descriptors to select for read *)
  wfds : unit -> Unix.file_descr list;
      (** descriptors with pending writes or in-flight connects *)
  next_deadline : unit -> float option;
      (** earliest time [tick] has work (connect/half-open timeouts) *)
  tick : now:float -> unit;
      (** advance connection management: complete or time out connects,
          flush outboxes, kill half-open streams *)
  drain : (origin:origin -> string -> unit) -> unit;
      (** Deliver every readable complete frame to the callback. Never
          blocks; partial TCP frames stay buffered until a later drain. *)
  counters : unit -> (string * int) list;
      (** transport-specific counters for the JSONL summary and the
          cluster report *)
  close : unit -> unit;
}

type kind = Udp | Tcp

val kind_name : kind -> string
val kind_of_string : string -> kind option

type tcp_config = {
  connect_timeout : float;
      (** seconds before an unfinished connect is abandoned *)
  half_open_timeout : float;
      (** seconds an established connection's outbox may stall before the
          stream is declared half-open and killed *)
  backoff_min : float;  (** first reconnect delay after a failure *)
  backoff_max : float;  (** cap; the delay doubles per failure up to it *)
  max_outbox : int;
      (** queued bytes per connection; frames beyond it are dropped (the
          ARQ retransmits them) rather than buffered unboundedly *)
  sndbuf : int option;
      (** [SO_SNDBUF] override; tests shrink it to force partial writes
          and half-open detection *)
}

val default_tcp : tcp_config

val resolve : Endpoint.t -> Unix.sockaddr
(** Name resolution at the transport edge: IPv4 literal or getaddrinfo.
    Raises [Failure] on an unresolvable host. *)

val make :
  ?tcp_config:tcp_config ->
  kind:kind ->
  bind:Endpoint.t ->
  now:(unit -> float) ->
  log:(string -> unit) ->
  unit ->
  t
(** Bind a transport on [bind] (port 0 = ephemeral; read back via
    [endpoint]). [now] is the node's clock - connection management uses
    it so tests can observe deadlines consistently; [log] receives
    human-oriented transport events. Constructing a TCP transport
    ignores [SIGPIPE] process-wide (a write to a dead stream must be a
    [Unix_error], not a process kill). *)
