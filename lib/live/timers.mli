(** Wall-clock timer wheel for the live poll loop.

    A lazy-deletion binary min-heap: cancellation marks the entry dead and
    the heap discards it when it reaches the top. All callbacks run on the
    loop thread (inside {!fire_due}); nothing here is thread-safe, and
    nothing needs to be. *)

type t
type entry

val create : unit -> t

val schedule : t -> at:float -> (unit -> unit) -> entry
(** Absolute deadline on the caller's clock. Entries with equal deadlines
    fire in scheduling order. *)

val cancel : entry -> unit
(** Idempotent; cancelling a fired entry is a no-op. *)

val next_deadline : t -> float option
(** Earliest live deadline — the poll loop's select-timeout bound. *)

val fire_due : t -> now:float -> int
(** Run every live entry with [at <= now] {e at entry}, in deadline order;
    returns how many fired. The due set is snapshotted before any callback
    runs: entries a callback schedules — even in the past — wait for the
    next call, so a zero-delay rescheduling timer cannot starve the poll
    loop. Cancellations by earlier callbacks in the batch are honoured. *)

val pending : t -> int
(** Live entries still scheduled (test instrumentation). *)
