(** Durable per-node event logs (JSONL) and their reassembly into one
    global trace the {!Gmp_core.Checker} can judge.

    The write side flushes every event as its own line the moment it is
    recorded, so a log survives [SIGKILL] complete up to (at worst) one
    torn final line; the read side drops such a line and treats any other
    parse failure as an error. *)

open Gmp_core

type writer

val attach : Trace.t -> path:string -> writer
(** Install an observer (via {!Trace.set_on_record}) writing each event of
    [trace] to [path] as one flushed JSON line. *)

val write_arq : writer -> pid:Gmp_base.Pid.t -> (string * int) list -> unit
(** Append the node's ARQ / fault-injection counters (from
    [Node.counters]) as one summary line. Written at clean shutdown;
    {!read_file} skips it, {!read_arq} extracts it. *)

val write_transport :
  writer -> pid:Gmp_base.Pid.t -> kind:string -> (string * int) list -> unit
(** Append the node's transport counters (from [Node.transport_counters])
    as one summary line tagged with the transport kind. Written at clean
    shutdown; {!read_file} skips it, {!read_transport} extracts it. *)

val write_metrics :
  writer ->
  pid:Gmp_base.Pid.t ->
  at:float ->
  Gmp_obs.Obs.Snapshot.t ->
  unit
(** Append a full registry snapshot as one summary line stamped with the
    node's clock. Written periodically and at clean shutdown; {!read_file}
    skips it, {!read_metrics} extracts the last (most complete) one. *)

val close : writer -> unit

val event_of_line : string -> (Trace.event, string) result
(** Parse one log line (inverse of [Export.json_of_event]). *)

val read_file : string -> (Trace.event list, string) result
(** All events of one node's log, in recorded order. Summary lines — any
    parsed object without an ["event"] member, including kinds this
    reader has never heard of — are skipped, so logs written by newer
    nodes still reassemble. *)

val read_arq : string -> (string * int) list option
(** The ARQ counters summary of one node's log, if present (a SIGKILLed
    node writes none). Keys are canonicalized to the registry's stable
    names ([arq.*] / [netem.*]), including when reading logs written
    before the schemes were unified. *)

val read_transport : string -> (string * (string * int) list) option
(** The transport summary of one node's log, if present:
    [(kind, counters)], keys canonicalized to [transport.*]. *)

val read_metrics : string -> Gmp_obs.Obs.Snapshot.t option
(** The last metrics snapshot line of one node's log, if any parses (a
    SIGKILLed node keeps its last periodic line, if an interval was on). *)

val reassemble : Trace.event list list -> Trace.t
(** Merge per-node event lists into one trace ordered by
    (time, owner, local index). With all nodes stamping events on one
    monotonicized absolute clock this is a legal linearization: each
    owner's events keep their local order, and only concurrent cross-node
    events can be reordered by clock skew — which the checked properties
    are insensitive to. *)

val read_and_reassemble : string list -> (Trace.t, string) result
