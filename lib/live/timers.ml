(* A wall-clock timer wheel for the live node's poll loop.

   A binary min-heap of (deadline, sequence) pairs; cancellation flips a
   [live] flag and the heap lazily discards dead entries as they surface.
   The poll loop asks [next_deadline] to bound its select timeout and calls
   [fire_due] after every wakeup. Single-threaded by construction - all
   callbacks run on the loop thread, so no locking. *)

type entry = {
  at : float;
  seq : int; (* insertion order breaks deadline ties, FIFO *)
  mutable live : bool;
  callback : unit -> unit;
}

type t = {
  mutable heap : entry array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy = { at = 0.; seq = 0; live = false; callback = ignore }
let create () = { heap = Array.make 32 dummy; size = 0; next_seq = 0 }

let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * Array.length t.heap) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end

let schedule t ~at callback =
  let e = { at; seq = t.next_seq; live = true; callback } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  e

let cancel e = e.live <- false

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  sift_down t 0;
  top

let rec drop_dead t =
  if t.size > 0 && not t.heap.(0).live then begin
    ignore (pop t : entry);
    drop_dead t
  end

let next_deadline t =
  drop_dead t;
  if t.size = 0 then None else Some t.heap.(0).at

let fire_due t ~now =
  (* Snapshot the due set before running any callback: a callback that
     schedules a new entry at [<= now] (a capped-backoff retransmit at
     saturation, a zero-delay re-arm) must wait for the next call, or one
     such timer could starve the poll loop forever. Collecting first and
     firing second gives exactly the entries due at entry; cancellations
     performed by earlier callbacks in the batch are still honoured via the
     [live] check at fire time. *)
  let due = ref [] in
  let rec collect () =
    drop_dead t;
    if t.size > 0 && t.heap.(0).at <= now then begin
      let e = pop t in
      if e.live then due := e :: !due;
      collect ()
    end
  in
  collect ();
  let fired = ref 0 in
  List.iter
    (fun e ->
      if e.live then begin
        e.live <- false;
        incr fired;
        e.callback ()
      end)
    (List.rev !due);
  !fired

let pending t =
  drop_dead t;
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    if t.heap.(i).live then incr n
  done;
  !n
