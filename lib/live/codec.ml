(* Versioned binary codec for the live runtime's datagrams.

   Every frame starts with a fixed header - magic, a codec version byte and
   the declared body length - so a truncated, oversized or foreign datagram
   is rejected before any field is touched, and a future codec revision can
   coexist on the wire with this one. Integers are big-endian; lengths and
   counts are unsigned 32-bit; all multi-field structures are
   length-delimited only through the frame header (the grammar is
   self-terminating).

   The message grammar mirrors [Wire.t] constructor by constructor; the
   golden files under test/golden pin the exact bytes so an accidental
   grammar change fails the build rather than silently splitting the
   cluster into incompatible halves. *)

open Gmp_base
open Gmp_causality
open Gmp_core

(* Application payloads on the real wire are opaque bytes: examples in the
   sim define their own [Wire.app] constructors, but across address spaces
   only a serialized form travels. *)
type Wire.app += Blob of string

type netem_spec = {
  peer : Pid.t option; (* None: the node's default (all-links) model *)
  n_loss : float;
  n_latency : float;
  n_jitter : float;
  n_dup : float;
  n_reorder : float;
}

type ctrl =
  | Shutdown
  | Blackhole of Pid.t
  | Unblackhole of Pid.t
  | Set_netem of netem_spec
  | Get_metrics

type frame =
  | Data of {
      src : Pid.t;
      chan_seq : int; (* per-(src,dst) channel sequence number (ARQ) *)
      vc : Vector_clock.t;
      msg : Wire.t;
    }
  | Ack of { src : Pid.t; ack_next : int }
  | Ctrl of { token : int; cmd : ctrl }
      (* Every control frame carries an orchestrator-chosen token and is
         answered with [Ctrl_ack] carrying the same token AFTER the command
         has been applied: the control plane survives the very faults it
         injects because the sender retries until acked. Commands are
         idempotent, so replays caused by a lost ack are harmless. *)
  | Ctrl_ack of { token : int }
  | Metrics of { token : int; payload : string }
      (* Reply to [Ctrl Get_metrics]: the queried node's registry snapshot
         as compact JSON text. Doubles as the command's ack - the sender
         retries Get_metrics until a Metrics frame with its token lands. *)

type error =
  | Truncated of string
  | Oversized of { declared : int; max : int }
  | Bad_magic
  | Unsupported_version of int
  | Malformed of string

let pp_error ppf = function
  | Truncated what -> Fmt.pf ppf "truncated frame (%s)" what
  | Oversized { declared; max } ->
    Fmt.pf ppf "oversized frame (declares %d bytes, max %d)" declared max
  | Bad_magic -> Fmt.string ppf "bad magic"
  | Unsupported_version v -> Fmt.pf ppf "unsupported codec version %d" v
  | Malformed what -> Fmt.pf ppf "malformed frame (%s)" what

let version = 2
(* v2: control frames gained ack tokens and the Set_netem command; the
   frame goldens were regenerated for the bump (body-only message
   encodings are unchanged from v1). *)
let magic0 = 'G'
let magic1 = 'M'
let header_len = 7 (* magic(2) + version(1) + body length(4) *)

let max_frame = 65536
(* An IPv4 datagram tops out near 64 KiB; anything larger never left a
   well-behaved sender. *)

(* ---- encoding ---- *)

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let add_u32 buf v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Codec: u32 out of range";
  add_u8 buf (v lsr 24);
  add_u8 buf (v lsr 16);
  add_u8 buf (v lsr 8);
  add_u8 buf v

let add_string buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let add_pid buf p =
  add_u32 buf (Pid.id p);
  add_u32 buf (Pid.incarnation p)

let add_f64 buf v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    add_u8 buf (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done

let add_list buf add xs =
  add_u32 buf (List.length xs);
  List.iter (add buf) xs

let add_option buf add = function
  | None -> add_u8 buf 0
  | Some x ->
    add_u8 buf 1;
    add buf x

let add_vc buf vc = add_list buf (fun buf (p, n) -> add_pid buf p; add_u32 buf n)
    (Vector_clock.to_list vc)

let add_op buf = function
  | Types.Remove p ->
    add_u8 buf 0;
    add_pid buf p
  | Types.Add p ->
    add_u8 buf 1;
    add_pid buf p

let add_seq buf seq = add_list buf add_op seq

let add_expectation buf = function
  | Types.Awaiting_proposal p ->
    add_u8 buf 0;
    add_pid buf p
  | Types.Expected { canonical; coord; ver } ->
    add_u8 buf 1;
    add_seq buf canonical;
    add_pid buf coord;
    add_u32 buf ver

let add_reply buf (r : Wire.interrogate_reply) =
  add_u32 buf r.reply_ver;
  add_seq buf r.reply_seq;
  add_list buf add_expectation r.reply_next

let add_proposal buf (p : Wire.proposal) =
  add_u32 buf p.target_ver;
  add_seq buf p.canonical_seq;
  add_option buf add_op p.invis;
  add_list buf add_pid p.prop_faulty

let add_msg buf (msg : Wire.t) =
  match msg with
  | Wire.Heartbeat -> add_u8 buf 0
  | Wire.Faulty_report p ->
    add_u8 buf 1;
    add_pid buf p
  | Wire.Join_request -> add_u8 buf 2
  | Wire.Join_forward p ->
    add_u8 buf 3;
    add_pid buf p
  | Wire.Invite { op; invite_ver } ->
    add_u8 buf 4;
    add_op buf op;
    add_u32 buf invite_ver
  | Wire.Invite_ok { ok_ver } ->
    add_u8 buf 5;
    add_u32 buf ok_ver
  | Wire.Commit { op; commit_ver; contingent; faulty; recovered } ->
    add_u8 buf 6;
    add_op buf op;
    add_u32 buf commit_ver;
    add_option buf add_op contingent;
    add_list buf add_pid faulty;
    add_list buf add_pid recovered
  | Wire.Welcome { w_members; w_ver; w_seq } ->
    add_u8 buf 7;
    add_list buf add_pid w_members;
    add_u32 buf w_ver;
    add_seq buf w_seq
  | Wire.Interrogate -> add_u8 buf 8
  | Wire.Interrogate_ok reply ->
    add_u8 buf 9;
    add_reply buf reply
  | Wire.Propose prop ->
    add_u8 buf 10;
    add_proposal buf prop
  | Wire.Propose_ok { pok_ver } ->
    add_u8 buf 11;
    add_u32 buf pok_ver
  | Wire.Reconf_commit prop ->
    add_u8 buf 12;
    add_proposal buf prop
  | Wire.App { app_ver; payload } -> (
    add_u8 buf 13;
    add_u32 buf app_ver;
    match payload with
    | Blob s -> add_string buf s
    | _ ->
      invalid_arg
        "Codec: only Codec.Blob application payloads exist on the real wire")

let add_ctrl buf = function
  | Shutdown -> add_u8 buf 0
  | Blackhole p ->
    add_u8 buf 1;
    add_pid buf p
  | Unblackhole p ->
    add_u8 buf 2;
    add_pid buf p
  | Set_netem { peer; n_loss; n_latency; n_jitter; n_dup; n_reorder } ->
    add_u8 buf 3;
    add_option buf add_pid peer;
    add_f64 buf n_loss;
    add_f64 buf n_latency;
    add_f64 buf n_jitter;
    add_f64 buf n_dup;
    add_f64 buf n_reorder
  | Get_metrics -> add_u8 buf 4

let add_body buf = function
  | Data { src; chan_seq; vc; msg } ->
    add_u8 buf 0;
    add_pid buf src;
    add_u32 buf chan_seq;
    add_vc buf vc;
    add_msg buf msg
  | Ack { src; ack_next } ->
    add_u8 buf 1;
    add_pid buf src;
    add_u32 buf ack_next
  | Ctrl { token; cmd } ->
    add_u8 buf 2;
    add_u32 buf token;
    add_ctrl buf cmd
  | Ctrl_ack { token } ->
    add_u8 buf 3;
    add_u32 buf token
  | Metrics { token; payload } ->
    add_u8 buf 4;
    add_u32 buf token;
    add_string buf payload

let encode_msg msg =
  let buf = Buffer.create 64 in
  add_msg buf msg;
  Buffer.contents buf

let encode_frame frame =
  let body = Buffer.create 128 in
  add_body body frame;
  let n = Buffer.length body in
  if n > max_frame then invalid_arg "Codec.encode_frame: frame too large";
  let buf = Buffer.create (n + header_len) in
  Buffer.add_char buf magic0;
  Buffer.add_char buf magic1;
  add_u8 buf version;
  add_u32 buf n;
  Buffer.add_buffer buf body;
  Buffer.contents buf

(* ---- decoding ---- *)

exception Fail of error

type cursor = { src : string; limit : int; mutable pos : int }

let need c n what =
  if c.pos + n > c.limit then raise (Fail (Truncated what))

let get_u8 c what =
  need c 1 what;
  let v = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c what =
  need c 4 what;
  let b i = Char.code c.src.[c.pos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  c.pos <- c.pos + 4;
  v

let get_string c what =
  let n = get_u32 c what in
  need c n what;
  let s = String.sub c.src c.pos n in
  c.pos <- c.pos + n;
  s

let get_pid c what =
  let id = get_u32 c what in
  let incarnation = get_u32 c what in
  match Pid.make ~incarnation id with
  | p -> p
  | exception Invalid_argument _ -> raise (Fail (Malformed what))

let get_f64 c what =
  need c 8 what;
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code c.src.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  let v = Int64.float_of_bits !bits in
  if Float.is_nan v || not (Float.is_finite v) then
    raise (Fail (Malformed (what ^ " not finite")));
  v

let get_prob c what =
  let v = get_f64 c what in
  if v < 0.0 || v > 1.0 then raise (Fail (Malformed (what ^ " out of [0,1]")));
  v

let get_nonneg c what =
  let v = get_f64 c what in
  if v < 0.0 then raise (Fail (Malformed (what ^ " negative")));
  v

let get_list c what get =
  let n = get_u32 c what in
  (* Each element occupies at least one byte: a count beyond the remaining
     bytes is a lie, not a long list (guards against allocation bombs). *)
  if n > c.limit - c.pos then raise (Fail (Malformed (what ^ " count")));
  List.init n (fun _ -> get c)

let get_option c what get =
  match get_u8 c what with
  | 0 -> None
  | 1 -> Some (get c)
  | _ -> raise (Fail (Malformed (what ^ " option tag")))

let get_vc c =
  let entries =
    get_list c "vc" (fun c ->
        let p = get_pid c "vc pid" in
        let n = get_u32 c "vc count" in
        (p, n))
  in
  Vector_clock.of_list entries

let get_op c =
  match get_u8 c "op tag" with
  | 0 -> Types.Remove (get_pid c "op pid")
  | 1 -> Types.Add (get_pid c "op pid")
  | t -> raise (Fail (Malformed (Printf.sprintf "op tag %d" t)))

let get_seq c = get_list c "seq" get_op

let get_expectation c =
  match get_u8 c "expectation tag" with
  | 0 -> Types.Awaiting_proposal (get_pid c "expectation pid")
  | 1 ->
    let canonical = get_seq c in
    let coord = get_pid c "expectation coord" in
    let ver = get_u32 c "expectation ver" in
    Types.Expected { canonical; coord; ver }
  | t -> raise (Fail (Malformed (Printf.sprintf "expectation tag %d" t)))

let get_reply c : Wire.interrogate_reply =
  let reply_ver = get_u32 c "reply ver" in
  let reply_seq = get_seq c in
  let reply_next = get_list c "reply next" get_expectation in
  { reply_ver; reply_seq; reply_next }

let get_proposal c : Wire.proposal =
  let target_ver = get_u32 c "proposal ver" in
  let canonical_seq = get_seq c in
  let invis = get_option c "proposal invis" get_op in
  let prop_faulty = get_list c "proposal faulty" (fun c -> get_pid c "pid") in
  { target_ver; canonical_seq; invis; prop_faulty }

let get_msg c : Wire.t =
  match get_u8 c "msg tag" with
  | 0 -> Wire.Heartbeat
  | 1 -> Wire.Faulty_report (get_pid c "report pid")
  | 2 -> Wire.Join_request
  | 3 -> Wire.Join_forward (get_pid c "join pid")
  | 4 ->
    let op = get_op c in
    let invite_ver = get_u32 c "invite ver" in
    Wire.Invite { op; invite_ver }
  | 5 -> Wire.Invite_ok { ok_ver = get_u32 c "ok ver" }
  | 6 ->
    let op = get_op c in
    let commit_ver = get_u32 c "commit ver" in
    let contingent = get_option c "commit contingent" get_op in
    let faulty = get_list c "commit faulty" (fun c -> get_pid c "pid") in
    let recovered = get_list c "commit recovered" (fun c -> get_pid c "pid") in
    Wire.Commit { op; commit_ver; contingent; faulty; recovered }
  | 7 ->
    let w_members = get_list c "welcome members" (fun c -> get_pid c "pid") in
    let w_ver = get_u32 c "welcome ver" in
    let w_seq = get_seq c in
    Wire.Welcome { w_members; w_ver; w_seq }
  | 8 -> Wire.Interrogate
  | 9 -> Wire.Interrogate_ok (get_reply c)
  | 10 -> Wire.Propose (get_proposal c)
  | 11 -> Wire.Propose_ok { pok_ver = get_u32 c "pok ver" }
  | 12 -> Wire.Reconf_commit (get_proposal c)
  | 13 ->
    let app_ver = get_u32 c "app ver" in
    let payload = Blob (get_string c "app payload") in
    Wire.App { app_ver; payload }
  | t -> raise (Fail (Malformed (Printf.sprintf "msg tag %d" t)))

let get_ctrl c =
  match get_u8 c "ctrl tag" with
  | 0 -> Shutdown
  | 1 -> Blackhole (get_pid c "ctrl pid")
  | 2 -> Unblackhole (get_pid c "ctrl pid")
  | 3 ->
    let peer = get_option c "netem peer" (fun c -> get_pid c "netem peer") in
    let n_loss = get_prob c "netem loss" in
    if n_loss >= 1.0 then raise (Fail (Malformed "netem loss out of [0,1)"));
    let n_latency = get_nonneg c "netem latency" in
    let n_jitter = get_nonneg c "netem jitter" in
    let n_dup = get_prob c "netem dup" in
    let n_reorder = get_prob c "netem reorder" in
    Set_netem { peer; n_loss; n_latency; n_jitter; n_dup; n_reorder }
  | 4 -> Get_metrics
  | t -> raise (Fail (Malformed (Printf.sprintf "ctrl tag %d" t)))

let get_body c =
  match get_u8 c "frame kind" with
  | 0 ->
    let src = get_pid c "data src" in
    let chan_seq = get_u32 c "data seq" in
    let vc = get_vc c in
    let msg = get_msg c in
    Data { src; chan_seq; vc; msg }
  | 1 ->
    let src = get_pid c "ack src" in
    let ack_next = get_u32 c "ack next" in
    Ack { src; ack_next }
  | 2 ->
    let token = get_u32 c "ctrl token" in
    let cmd = get_ctrl c in
    Ctrl { token; cmd }
  | 3 -> Ctrl_ack { token = get_u32 c "ctrl-ack token" }
  | 4 ->
    let token = get_u32 c "metrics token" in
    let payload = get_string c "metrics payload" in
    Metrics { token; payload }
  | t -> raise (Fail (Malformed (Printf.sprintf "frame kind %d" t)))

let finish c v =
  if c.pos <> c.limit then
    Error (Malformed (Printf.sprintf "%d trailing bytes" (c.limit - c.pos)))
  else Ok v

let decode_msg s =
  let c = { src = s; limit = String.length s; pos = 0 } in
  match get_msg c with v -> finish c v | exception Fail e -> Error e

let decode_frame s =
  let n = String.length s in
  if n < header_len then Error (Truncated "header")
  else if s.[0] <> magic0 || s.[1] <> magic1 then Error Bad_magic
  else
    let v = Char.code s.[2] in
    if v <> version then Error (Unsupported_version v)
    else
      let b i = Char.code s.[3 + i] in
      let declared = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if declared > max_frame then Error (Oversized { declared; max = max_frame })
      else if n - header_len < declared then Error (Truncated "body")
      else if n - header_len > declared then
        Error (Malformed "datagram longer than declared body")
      else
        let c = { src = s; limit = n; pos = header_len } in
        (match get_body c with
        | v -> finish c v
        | exception Fail e -> Error e)
