(** One live GMP process: real sockets, wall-clock timers, the Platform
    seam's second implementation.

    A node owns one {!Transport} (UDP datagrams or managed TCP streams)
    and a single-threaded poll loop; protocol callbacks (message
    delivery, timers) run only inside {!run}, never concurrently — the
    concurrency model the protocol core was written against. Reliable
    FIFO channels between nodes come from a go-back-N ARQ (sequence
    numbers + cumulative acks + retransmission on an exponentially
    backed-off timeout), the paper's footnote-2 channel realized over a
    medium that can genuinely lose frames on either transport — not least
    because the node injects faults against itself: a seeded per-link
    {!Gmp_net.Netem} model applied to every frame at message ingress
    (after transport reassembly, before the protocol), the same fault
    vocabulary the simulator's lossy medium samples. *)

open Gmp_base
open Gmp_core

type t

val create :
  ?peers:(Pid.t * Gmp_net.Endpoint.t) list ->
  ?transport:Transport.kind ->
  ?tcp_config:Transport.tcp_config ->
  ?rto:float ->
  ?rto_max:float ->
  ?netem:Gmp_net.Netem.t ->
  ?netem_seed:int ->
  ?log:(string -> unit) ->
  pid:Pid.t ->
  bind:Gmp_net.Endpoint.t ->
  unit ->
  t
(** Bind a transport (default UDP) on [bind] (port 0 picks an ephemeral
    port; read it back with {!port} or {!endpoint}). [peers] seeds the
    address book; routes to unknown peers are also learnt from their
    traffic, so a joiner only needs its contacts. [rto] is the ARQ's
    initial retransmission timeout (default 0.25 s; per-member overrides
    come from [Config.arq_rto_for] at daemon level); on each silent
    retransmit round it doubles up to [rto_max] (default [16 *. rto]) and
    resets on ack progress. [netem] is the default model applied to every
    incoming link (default {!Gmp_net.Netem.none}); [netem_seed] keys the
    per-link RNG streams, so the same seed replays the same per-link
    fault pattern. *)

val platform : t -> Wire.t Gmp_platform.Platform.node
(** The node seen through the world-agnostic seam — what
    [Gmp_core.Member.create] takes. *)

val run : ?until:float -> t -> unit
(** The poll loop: drain the transport, fire due timers, sleep on
    [select] until the next deadline (timer or transport). Returns when
    the node halts (protocol quit or crash), an orchestrator [Shutdown]
    arrives, or [until] seconds elapse. *)

val pid : t -> Pid.t

val endpoint : t -> Gmp_net.Endpoint.t
(** The actually-bound local endpoint (ephemeral port resolved). *)

val port : t -> int
(** [Endpoint.port (endpoint t)]. *)

val add_peer : t -> Pid.t -> Gmp_net.Endpoint.t -> unit

val set_netem : t -> ?peer:Pid.t -> Gmp_net.Netem.t -> unit
(** Retune fault injection: replace the model for one incoming link
    ([?peer]) or the default for all links (no [?peer]). This is what a
    [Set_netem] control frame applies. *)

val netem : t -> Gmp_net.Netem.t
(** The current default (all-links) model. *)

val stats : t -> Gmp_platform.Stats.t
val alive : t -> bool

val stopping : t -> bool
(** An orchestrator [Shutdown] control frame arrived. *)

val retransmissions : t -> int

val idle : t -> bool
(** No frame is awaiting an ack on any outgoing channel — everything sent
    so far is known delivered. *)

val counters : t -> (string * int) list
(** ARQ and fault-injection counters under their canonical registry
    names, in a stable order: [arq.data_frames_sent] (first
    transmissions), [arq.retransmits], [arq.retransmit_rounds]
    (retransmit-timer fires), [arq.dups_suppressed],
    [arq.out_of_window_drops], [netem.dropped], [netem.duplicated],
    [netem.reordered]. *)

val transport_kind : t -> string
(** ["udp"] or ["tcp"]. *)

val transport_counters : t -> (string * int) list
(** The transport's own counters (datagrams or connections/frames),
    each under its canonical [transport.]-prefixed registry name,
    reported alongside {!counters} in the JSONL summary. *)

val registry : t -> Gmp_obs.Obs.registry
(** The node's metrics registry: {!counters}, {!transport_counters} and
    the per-category {!stats} table as snapshot views, plus [arq.rtt]
    (wall-clock ack round-trips of never-retransmitted frames — Karn's
    sampling rule) and [arq.backoff_rounds] (retransmit rounds per
    recovered quiet spell) histograms. *)

val metrics : t -> Gmp_obs.Obs.Snapshot.t
(** [Obs.snapshot (registry t)] — also what a [Get_metrics] control frame
    returns over the wire. *)

val clock : t -> Gmp_causality.Vector_clock.t
val blackholed : t -> Pid.Set.t

val close : t -> unit
(** Halt and release the transport. *)
