(** One live GMP process: real sockets, wall-clock timers, the Platform
    seam's second implementation.

    A node owns a UDP socket on loopback and a single-threaded poll loop;
    protocol callbacks (message delivery, timers) run only inside {!run},
    never concurrently — the concurrency model the protocol core was
    written against. Reliable FIFO channels between nodes come from a
    go-back-N ARQ (sequence numbers + cumulative acks + timed
    retransmission), the paper's footnote-2 channel realized over a medium
    that can genuinely lose datagrams. *)

open Gmp_base
open Gmp_core

type t

val create :
  ?peers:(Pid.t * int) list ->
  ?rto:float ->
  ?log:(string -> unit) ->
  pid:Pid.t ->
  port:int ->
  unit ->
  t
(** Bind a UDP socket on [127.0.0.1:port] ([port = 0] picks an ephemeral
    port; read it back with {!port}). [peers] seeds the address book;
    addresses of unknown peers are also learnt from their traffic, so a
    joiner only needs its contacts. [rto] is the ARQ retransmission
    timeout (default 0.25 s); per-member overrides come from
    [Config.arq_rto_for] at daemon level. *)

val platform : t -> Wire.t Gmp_platform.Platform.node
(** The node seen through the world-agnostic seam — what
    [Gmp_core.Member.create] takes. *)

val run : ?until:float -> t -> unit
(** The poll loop: drain the socket, fire due timers, sleep on [select]
    until the next deadline. Returns when the node halts (protocol quit or
    crash), an orchestrator [Shutdown] arrives, or [until] seconds elapse. *)

val pid : t -> Pid.t
val port : t -> int

val add_peer : t -> Pid.t -> port:int -> unit

val stats : t -> Gmp_platform.Stats.t
val alive : t -> bool

val stopping : t -> bool
(** An orchestrator [Shutdown] control frame arrived. *)

val retransmissions : t -> int
val clock : t -> Gmp_causality.Vector_clock.t

val close : t -> unit
(** Halt and release the socket. *)
