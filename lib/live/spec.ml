(* Command-line spec parsing shared by gmp-node and gmp-cluster.

   Everything here is validated fully at parse time and returns precise
   errors, so a malformed flag dies as a clean cmdliner message before
   any process is spawned - not as a half-started cluster discovering a
   bad netem key at T=4s. *)

open Gmp_base
module Endpoint = Gmp_net.Endpoint

let ( let* ) = Result.bind

let pid_of ~what s =
  match Pid.of_string s with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "bad %s pid %S (expected e.g. \"p3\")" what s)

(* ---- peers: "PID:PORT" (loopback), "PID:HOST:PORT" ---- *)

let parse_peer s =
  match String.index_opt s ':' with
  | None ->
    Error
      (Printf.sprintf "malformed peer %S (expected PID:PORT or PID:HOST:PORT)"
         s)
  | Some i ->
    let pid_s = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    if pid_s = "" then Error (Printf.sprintf "malformed peer %S: empty pid" s)
    else
      let* pid = pid_of ~what:"peer" pid_s in
      let* ep =
        Result.map_error
          (fun e -> Printf.sprintf "peer %S: %s" s e)
          (Endpoint.parse_or_port rest)
      in
      Ok (pid, ep)

let parse_peers s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error (Printf.sprintf "empty peer list %S" s)
  else
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* peer = parse_peer p in
        Ok (peer :: acc))
      (Ok []) parts
    |> Result.map List.rev

(* ---- netem timeline actions: "T:AT:k=v,..." ---- *)

type netem_action = {
  at_time : float; (* seconds into the run *)
  target : Pid.t option; (* None = every node *)
  spec : Codec.netem_spec;
}

let netem_keys = [ "loss"; "latency"; "jitter"; "dup"; "reorder"; "peer" ]

(* [range] mirrors the codec's decode-side validation so a spec that
   parses here also encodes: `Excl - probability in [0,1); `Incl - in
   [0,1]; `Min - nonnegative seconds. *)
let float_field ~key ~range v =
  match float_of_string_opt v with
  | None -> Error (Printf.sprintf "bad value %S for netem key %S" v key)
  | Some f ->
    let ok, want =
      match range with
      | `Excl -> ((f >= 0.0 && f < 1.0), "[0,1)")
      | `Incl -> ((f >= 0.0 && f <= 1.0), "[0,1]")
      | `Min -> (f >= 0.0, ">= 0")
    in
    if ok && not (Float.is_nan f) then Ok f
    else
      Error
        (Printf.sprintf "netem key %S out of range: %s (want %s)" key v want)

let parse_netem_fields s =
  let kvs = String.split_on_char ',' s |> List.map String.trim in
  let empty =
    { Codec.peer = None;
      n_loss = 0.0;
      n_latency = 0.0;
      n_jitter = 0.0;
      n_dup = 0.0;
      n_reorder = 0.0 }
  in
  let parse_kv spec kv =
    match String.index_opt kv '=' with
    | None ->
      Error (Printf.sprintf "malformed netem field %S (expected key=value)" kv)
    | Some i ->
      let key = String.sub kv 0 i in
      let v = String.sub kv (i + 1) (String.length kv - i - 1) in
      if not (List.mem key netem_keys) then
        Error
          (Printf.sprintf "unknown netem key %S (valid keys: %s)" key
             (String.concat ", " netem_keys))
      else if key = "peer" then
        let* p = pid_of ~what:"netem peer" v in
        Ok { spec with Codec.peer = Some p }
      else
        let* f =
          match key with
          | "loss" -> float_field ~key ~range:`Excl v
          | "latency" | "jitter" -> float_field ~key ~range:`Min v
          | "dup" | "reorder" -> float_field ~key ~range:`Incl v
          | _ -> assert false
        in
        Ok
          (match key with
          | "loss" -> { spec with Codec.n_loss = f }
          | "latency" -> { spec with Codec.n_latency = f }
          | "jitter" -> { spec with Codec.n_jitter = f }
          | "dup" -> { spec with Codec.n_dup = f }
          | "reorder" -> { spec with Codec.n_reorder = f }
          | _ -> assert false)
  in
  if kvs = [] || List.for_all (fun kv -> kv = "") kvs then
    Error "netem spec needs at least one key=value field"
  else
    List.fold_left
      (fun acc kv ->
        let* spec = acc in
        if kv = "" then Ok spec else parse_kv spec kv)
      (Ok empty) kvs

let parse_netem_action s =
  (* T:AT:k=v,... - split off the first two colon-fields; the remainder
     is the key=value list (which contains no colons). *)
  match String.index_opt s ':' with
  | None ->
    Error
      (Printf.sprintf "malformed netem action %S (expected T:TARGET:k=v,...)"
         s)
  | Some i -> (
    let t_s = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match String.index_opt rest ':' with
    | None ->
      Error
        (Printf.sprintf "malformed netem action %S (expected T:TARGET:k=v,...)"
           s)
    | Some j ->
      let at_s = String.sub rest 0 j in
      let fields = String.sub rest (j + 1) (String.length rest - j - 1) in
      let* at_time =
        match float_of_string_opt t_s with
        | Some f when f >= 0.0 && not (Float.is_nan f) -> Ok f
        | _ -> Error (Printf.sprintf "bad netem action time %S" t_s)
      in
      let* target =
        if at_s = "all" then Ok None
        else if at_s = "" then
          Error (Printf.sprintf "empty netem action target in %S" s)
        else
          let* p = pid_of ~what:"netem action target" at_s in
          Ok (Some p)
      in
      let* spec =
        Result.map_error
          (fun e -> Printf.sprintf "netem action %S: %s" s e)
          (parse_netem_fields fields)
      in
      Ok { at_time; target; spec })
