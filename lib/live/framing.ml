(* Incremental frame extraction from a TCP byte stream.

   A UDP transport gets message boundaries for free; a stream transport
   must reconstruct them. The v2 codec's frame header (magic, version,
   declared body length) is already self-delimiting, so "length-prefixed
   framing over the v2 codec" needs no extra envelope: the stream is the
   concatenation of exactly the bytes a datagram transport would have put
   on the wire, and this decoder cuts it back into complete frames.

   The decoder is deliberately paranoid, because a stream desynchronizes
   where a datagram merely drops: after any header-level error (bad magic,
   unsupported version, oversized length) there is no way to find the next
   frame boundary, so the decoder poisons itself and the transport must
   close the connection. Body-level malformations are NOT detected here -
   the boundary is sound as long as the header is - so a frame with a
   valid header and hostile body still comes out as one unit for
   [Codec.decode_frame] to reject without killing the connection. *)

type t = {
  mutable buf : Bytes.t; (* pending undecoded bytes, [0, len) *)
  mutable len : int;
  mutable poisoned : Codec.error option;
  mutable frames_out : int; (* complete frames extracted *)
  mutable partial_feeds : int; (* feeds that ended on an incomplete frame *)
}

let create () =
  { buf = Bytes.create 4096;
    len = 0;
    poisoned = None;
    frames_out = 0;
    partial_feeds = 0 }

let pending t = t.len
let frames t = t.frames_out
let partial_feeds t = t.partial_feeds

let ensure_capacity t extra =
  let need = t.len + extra in
  if need > Bytes.length t.buf then begin
    let cap = ref (2 * Bytes.length t.buf) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end

(* The header check mirrors [Codec.decode_frame]'s prefix logic; body
   malformations are left to the real decoder once the frame is whole. *)
let header_check t =
  if t.len < Codec.header_len then `Need_more
  else if Bytes.get t.buf 0 <> 'G' || Bytes.get t.buf 1 <> 'M' then
    `Error Codec.Bad_magic
  else
    let v = Char.code (Bytes.get t.buf 2) in
    if v <> Codec.version then `Error (Codec.Unsupported_version v)
    else
      let b i = Char.code (Bytes.get t.buf (3 + i)) in
      let declared = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if declared > Codec.max_frame then
        `Error (Codec.Oversized { declared; max = Codec.max_frame })
      else if t.len < Codec.header_len + declared then `Need_more
      else `Frame (Codec.header_len + declared)

let feed t chunk ~off ~len =
  match t.poisoned with
  | Some e -> Error e
  | None ->
    if off < 0 || len < 0 || off + len > Bytes.length chunk then
      invalid_arg "Framing.feed: bad slice";
    ensure_capacity t len;
    Bytes.blit chunk off t.buf t.len len;
    t.len <- t.len + len;
    let out = ref [] in
    let rec cut () =
      match header_check t with
      | `Need_more ->
        if t.len > 0 then t.partial_feeds <- t.partial_feeds + 1;
        Ok (List.rev !out)
      | `Error e ->
        t.poisoned <- Some e;
        Error e
      | `Frame n ->
        out := Bytes.sub_string t.buf 0 n :: !out;
        t.frames_out <- t.frames_out + 1;
        Bytes.blit t.buf n t.buf 0 (t.len - n);
        t.len <- t.len - n;
        cut ()
    in
    cut ()

let feed_string t s = feed t (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)
