(** Acked control-plane client — the orchestrator's side of
    {!Codec.Ctrl}.

    A node's fault-injection layer applies to control frames too, so a
    fire-and-forget command could be eaten by the very loss it configures.
    {!send} therefore retransmits a tokened command until the node's
    {!Codec.Ctrl_ack} comes back (the node acks {e after} applying; all
    commands are idempotent, so replays are harmless). The client speaks
    whichever transport the cluster runs: datagrams to UDP nodes, framed
    streams (cached per target, reconnected on any error) to TCP ones —
    the retry loop that absorbs loss absorbs connection churn too. *)

type t

val create : ?transport:Transport.kind -> unit -> t
(** A control client for the given transport (default UDP): an unbound
    UDP socket, or a cache of per-target TCP streams. Tokens are seeded
    from the OS pid so concurrent clients cannot confuse each other's
    acks. *)

val send :
  ?attempts:int ->
  ?interval:float ->
  ?host:string ->
  t ->
  port:int ->
  Codec.ctrl ->
  bool
(** Send [cmd] to the node on [host:port] (default host [127.0.0.1]);
    retransmit every [interval] seconds (default 0.1) up to [attempts]
    times (default 50) until its ack arrives. [true] = the node applied
    the command; [false] = no ack within the budget (node dead, or loss
    beyond the retries). *)

val query :
  ?attempts:int ->
  ?interval:float ->
  ?host:string ->
  t ->
  port:int ->
  string option
(** Scrape the node's metrics registry: send {!Codec.Get_metrics} with
    the same retry discipline as {!send}, awaiting the {!Codec.Metrics}
    reply whose token match doubles as the ack. Returns the snapshot as
    compact JSON text ([Gmp_obs.Obs.Snapshot.of_json] parses it), or
    [None] if no reply survived the budget. *)

val close : t -> unit
