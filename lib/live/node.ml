(* One live GMP process: the real-world implementation of the Platform
   seam.

   A node owns one UDP socket on the loopback interface and a single
   thread: the poll loop alternates between draining the socket and firing
   due wall-clock timers, so - exactly as in the simulator - protocol
   callbacks never run concurrently and the core needs no locks.

   Between nodes runs a go-back-N ARQ per ordered process pair (the
   paper's footnote 2 channel: sequence numbers plus acknowledgements over
   a lossy medium). UDP on loopback rarely drops, but the cluster
   orchestrator injects loss deliberately (blackholing), and the protocol's
   liveness depends on retransmission riding through it:

     - sender: frames get consecutive [chan_seq] numbers and wait in an
       unacked queue; a per-destination timer retransmits the whole window
       every rto until a cumulative ack covers it;
     - receiver: delivers exactly the next expected sequence number (FIFO,
       exactly-once), acks cumulatively on every data frame, drops
       out-of-order frames (go-back-N keeps no reorder buffer).

   Vector clocks follow the same discipline as the simulator's runtime:
   tick on send, broadcast and local event; merge+tick on delivery. The
   clock itself is a monotonicized [Unix.gettimeofday] - absolute, so the
   logs of separately-spawned processes share one time axis and the
   orchestrator can merge them; monotonicized, because timer logic breaks
   if NTP steps the wall clock backwards. *)

open Gmp_base
open Gmp_causality
open Gmp_core
module Platform = Gmp_platform.Platform
module Stats = Gmp_platform.Stats

type out_chan = {
  mutable next_seq : int;
  mutable base : int; (* lowest unacked seq *)
  unacked : (int * string) Queue.t; (* (seq, encoded datagram) *)
  mutable rtimer : Timers.entry option;
}

type in_chan = { mutable next_expected : int }

type t = {
  pid : Pid.t;
  sock : Unix.file_descr;
  port : int;
  timers : Timers.t;
  peers : Unix.sockaddr Pid.Tbl.t;
  out_chans : out_chan Pid.Tbl.t;
  in_chans : in_chan Pid.Tbl.t;
  mutable blackholed : Pid.Set.t; (* fault injection: drop their frames *)
  mutable disconnected : Pid.Set.t; (* S1: permanent incoming disconnect *)
  vc : Vector_clock.Mutable.clock; (* copy-on-write: snapshot to publish *)
  mutable events : int; (* local history length *)
  mutable alive : bool;
  mutable stopping : bool; (* orchestrator asked for clean shutdown *)
  mutable receiver : src:Pid.t -> Wire.t -> unit;
  mutable last_now : float; (* monotonicity floor *)
  mutable retransmissions : int;
  stats : Stats.t;
  rto : float;
  log : string -> unit;
  recv_buf : Bytes.t;
}

let default_rto = 0.25

let create ?(peers = []) ?(rto = default_rto) ?(log = fun _ -> ()) ~pid ~port
    () =
  if rto <= 0.0 then invalid_arg "Node.create: non-positive rto";
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.set_nonblock sock;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    { pid;
      sock;
      port;
      timers = Timers.create ();
      peers = Pid.Tbl.create 16;
      out_chans = Pid.Tbl.create 16;
      in_chans = Pid.Tbl.create 16;
      blackholed = Pid.Set.empty;
      disconnected = Pid.Set.empty;
      vc = Vector_clock.Mutable.create ();
      events = 0;
      alive = true;
      stopping = false;
      receiver = (fun ~src:_ _ -> ());
      last_now = 0.0;
      retransmissions = 0;
      stats = Stats.create ();
      rto;
      log;
      recv_buf = Bytes.create (Codec.max_frame + 64) }
  in
  List.iter
    (fun (p, port) ->
      Pid.Tbl.replace t.peers p
        (Unix.ADDR_INET (Unix.inet_addr_loopback, port)))
    peers;
  t

let pid t = t.pid
let port t = t.port
let stats t = t.stats
let alive t = t.alive
let stopping t = t.stopping
let retransmissions t = t.retransmissions
let clock t = Vector_clock.Mutable.snapshot t.vc

let add_peer t p ~port =
  Pid.Tbl.replace t.peers p (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let now t =
  let w = Unix.gettimeofday () in
  if w > t.last_now then t.last_now <- w;
  t.last_now

let local_event t =
  Vector_clock.Mutable.tick t.vc t.pid;
  t.events <- t.events + 1;
  (t.events, Vector_clock.Mutable.snapshot t.vc)

(* ---- raw datagram out ---- *)

let sendto t ~dst bytes =
  match Pid.Tbl.find_opt t.peers dst with
  | None -> t.log (Printf.sprintf "no address for %s" (Pid.to_string dst))
  | Some addr -> (
    try
      ignore
        (Unix.sendto t.sock (Bytes.of_string bytes) 0 (String.length bytes)
           [] addr
          : int)
    with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNREFUSED), _, _) ->
      (* A full buffer or a dead peer's closed port: both look like loss to
         the ARQ, which is what retransmission exists for. *)
      ())

(* ---- ARQ sender side ---- *)

let out_chan t dst =
  match Pid.Tbl.find_opt t.out_chans dst with
  | Some c -> c
  | None ->
    let c =
      { next_seq = 0; base = 0; unacked = Queue.create (); rtimer = None }
    in
    Pid.Tbl.replace t.out_chans dst c;
    c

let cancel_rtimer c =
  match c.rtimer with
  | None -> ()
  | Some e ->
    Timers.cancel e;
    c.rtimer <- None

let rec arm_rtimer t dst c =
  cancel_rtimer c;
  if not (Queue.is_empty c.unacked) then
    c.rtimer <-
      Some
        (Timers.schedule t.timers
           ~at:(now t +. t.rto)
           (fun () ->
             c.rtimer <- None;
             if t.alive && not (Queue.is_empty c.unacked) then begin
               Queue.iter
                 (fun (_, bytes) ->
                   t.retransmissions <- t.retransmissions + 1;
                   sendto t ~dst bytes)
                 c.unacked;
               arm_rtimer t dst c
             end))

let transmit t ~dst msg =
  let c = out_chan t dst in
  let seq = c.next_seq in
  c.next_seq <- seq + 1;
  let bytes =
    Codec.encode_frame
      (Codec.Data
         { src = t.pid;
           chan_seq = seq;
           vc = Vector_clock.Mutable.snapshot t.vc;
           msg })
  in
  Queue.add (seq, bytes) c.unacked;
  sendto t ~dst bytes;
  if c.rtimer = None then arm_rtimer t dst c

let handle_ack t ~src ~ack_next =
  match Pid.Tbl.find_opt t.out_chans src with
  | None -> ()
  | Some c ->
    while
      (not (Queue.is_empty c.unacked)) && fst (Queue.peek c.unacked) < ack_next
    do
      ignore (Queue.pop c.unacked : int * string)
    done;
    if ack_next > c.base then c.base <- ack_next;
    if Queue.is_empty c.unacked then cancel_rtimer c

let teardown_to t dst =
  (match Pid.Tbl.find_opt t.out_chans dst with
  | None -> ()
  | Some c ->
    cancel_rtimer c;
    Queue.clear c.unacked);
  Pid.Tbl.remove t.out_chans dst

(* ---- platform operations ---- *)

let send t ~dst ~category payload =
  if t.alive then begin
    Vector_clock.Mutable.tick t.vc t.pid;
    t.events <- t.events + 1;
    Stats.record_sent t.stats ~category;
    transmit t ~dst payload
  end

let broadcast t ~dsts ~category payload =
  (* One vc tick for the whole broadcast, as in the simulator; the sends
     themselves are sequential datagrams (indivisible in the paper's sense,
     not failure-atomic). *)
  if t.alive then begin
    Vector_clock.Mutable.tick t.vc t.pid;
    t.events <- t.events + 1;
    List.iter
      (fun dst ->
        if not (Pid.equal dst t.pid) then begin
          Stats.record_sent t.stats ~category;
          transmit t ~dst payload
        end)
      dsts
  end

let disconnect_from t ~from =
  (* S1: sever the incoming channel permanently. Also stop retransmitting
     toward the severed peer - it is being excluded; an unacked window
     kept alive forever would spin the timer wheel for a corpse. *)
  t.disconnected <- Pid.Set.add from t.disconnected;
  Pid.Tbl.remove t.in_chans from;
  teardown_to t from

let halt t =
  if t.alive then begin
    t.alive <- false;
    Pid.Tbl.iter (fun _ c -> cancel_rtimer c) t.out_chans;
    Pid.Tbl.reset t.out_chans
  end

let set_timer t ~delay f =
  let e =
    Timers.schedule t.timers
      ~at:(now t +. delay)
      (fun () -> if t.alive then f ())
  in
  { Platform.cancel = (fun () -> Timers.cancel e) }

let every t ~interval f =
  if interval <= 0.0 then invalid_arg "Node.every: non-positive interval";
  let rec loop () =
    if t.alive then begin
      f ();
      if t.alive then
        ignore
          (Timers.schedule t.timers ~at:(now t +. interval) loop
            : Timers.entry)
    end
  in
  ignore (Timers.schedule t.timers ~at:(now t +. interval) loop : Timers.entry)

let platform t =
  { Platform.pid = t.pid;
    alive = (fun () -> t.alive);
    now = (fun () -> now t);
    clock = (fun () -> clock t);
    local_event = (fun () -> local_event t);
    send = (fun ~dst ~category payload -> send t ~dst ~category payload);
    broadcast =
      (fun ~dsts ~category payload -> broadcast t ~dsts ~category payload);
    disconnect_from = (fun ~from -> disconnect_from t ~from);
    halt = (fun () -> halt t);
    set_receiver = (fun f -> t.receiver <- f);
    set_timer = (fun ~delay f -> set_timer t ~delay f);
    every = (fun ~interval f -> every t ~interval f);
    log = t.log }

(* ---- ARQ receiver side / frame dispatch ---- *)

let in_chan t src =
  match Pid.Tbl.find_opt t.in_chans src with
  | Some c -> c
  | None ->
    let c = { next_expected = 0 } in
    Pid.Tbl.replace t.in_chans src c;
    c

let send_ack t ~dst ~ack_next =
  sendto t ~dst (Codec.encode_frame (Codec.Ack { src = t.pid; ack_next }))

let handle_data t ~sender_addr ~src ~chan_seq ~sender_vc msg =
  (* Learn the peer's address from its traffic: joiners announce
     themselves, no static address book required. *)
  if not (Pid.Tbl.mem t.peers src) then Pid.Tbl.replace t.peers src sender_addr;
  let c = in_chan t src in
  if chan_seq = c.next_expected then begin
    c.next_expected <- chan_seq + 1;
    send_ack t ~dst:src ~ack_next:c.next_expected;
    Vector_clock.Mutable.merge_tick t.vc sender_vc t.pid;
    t.events <- t.events + 1;
    Stats.record_delivered t.stats ~category:(Wire.category_id msg);
    t.receiver ~src msg
  end
  else
    (* Duplicate or out-of-order: no delivery, but always re-ack so the
       sender's window can advance past a lost ack. *)
    send_ack t ~dst:src ~ack_next:c.next_expected

let handle_frame t ~sender_addr = function
  | Codec.Data { src; chan_seq; vc; msg } ->
    if
      t.alive
      && (not (Pid.Set.mem src t.blackholed))
      && not (Pid.Set.mem src t.disconnected)
    then handle_data t ~sender_addr ~src ~chan_seq ~sender_vc:vc msg
    else if t.alive && Pid.Set.mem src t.blackholed then
      Stats.record_dropped t.stats ~category:(Wire.category_id msg)
  | Codec.Ack { src; ack_next } ->
    if t.alive && not (Pid.Set.mem src t.blackholed) then
      handle_ack t ~src ~ack_next
  | Codec.Ctrl Codec.Shutdown -> t.stopping <- true
  | Codec.Ctrl (Codec.Blackhole p) ->
    t.blackholed <- Pid.Set.add p t.blackholed;
    t.log (Printf.sprintf "blackholing %s" (Pid.to_string p))
  | Codec.Ctrl (Codec.Unblackhole p) ->
    t.blackholed <- Pid.Set.remove p t.blackholed;
    t.log (Printf.sprintf "unblackholing %s" (Pid.to_string p))

let drain_socket t =
  let rec go () =
    match Unix.recvfrom t.sock t.recv_buf 0 (Bytes.length t.recv_buf) [] with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
      (* Linux surfaces a previous send's ICMP port-unreachable here. *)
      go ()
    | n, sender_addr ->
      let raw = Bytes.sub_string t.recv_buf 0 n in
      (match Codec.decode_frame raw with
      | Ok frame -> handle_frame t ~sender_addr frame
      | Error e ->
        t.log (Fmt.str "dropping undecodable datagram: %a" Codec.pp_error e));
      go ()
  in
  go ()

(* ---- poll loop ---- *)

let max_poll = 0.2
(* Upper bound on one select sleep: keeps the loop responsive to [run]'s
   deadline and cheap to reason about; idle wakeups at 5 Hz are free. *)

let step t =
  let n = now t in
  ignore (Timers.fire_due t.timers ~now:n : int);
  let timeout =
    match Timers.next_deadline t.timers with
    | None -> max_poll
    | Some at -> Float.min max_poll (Float.max 0.0 (at -. n))
  in
  (match Unix.select [ t.sock ] [] [] timeout with
  | [ _ ], _, _ -> drain_socket t
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  ignore (Timers.fire_due t.timers ~now:(now t) : int)

let run ?until t =
  let deadline = Option.map (fun d -> now t +. d) until in
  let expired () =
    match deadline with None -> false | Some d -> now t >= d
  in
  while t.alive && (not t.stopping) && not (expired ()) do
    step t
  done

let close t =
  halt t;
  try Unix.close t.sock with Unix.Unix_error _ -> ()
