(* One live GMP process: the real-world implementation of the Platform
   seam.

   A node owns one transport (UDP datagrams or managed TCP streams,
   behind the [Transport] seam) and a single thread: the poll loop
   alternates between draining the transport and firing due wall-clock
   timers, so - exactly as in the simulator - protocol callbacks never
   run concurrently and the core needs no locks.

   Between nodes runs a go-back-N ARQ per ordered process pair (the
   paper's footnote 2 channel: sequence numbers plus acknowledgements over
   a lossy medium). The ARQ lives above the transport seam on purpose:
   even TCP is only best-effort here (connections die, half-open streams
   are killed, stalled outboxes drop frames), so retransmission remains
   the sole owner of reliability on either wire and the protocol's
   behavior does not depend on which transport carries it:

     - sender: frames get consecutive [chan_seq] numbers and wait in an
       unacked queue; a per-destination timer retransmits the whole window
       on a timeout that backs off exponentially (doubling per silent
       round, capped at [rto_max], reset to [rto] on ack progress), so
       sustained loss degrades into paced recovery instead of an
       rto-periodic retransmit storm;
     - receiver: delivers exactly the next expected sequence number (FIFO,
       exactly-once), acks cumulatively on every data frame, drops
       out-of-order frames (go-back-N keeps no reorder buffer).

   Fault injection is receiver-side, at message ingress - after the
   transport has reassembled a complete frame, before the protocol sees
   it. That placement is what lets one netem model serve both transports:
   a "lost" frame over TCP was really delivered by the kernel and then
   discarded here, and it is the ARQ's retransmission (not TCP's) that
   resurrects it, exactly as over UDP. An arriving frame is decoded, then
   its fate is drawn from the link's model (keyed by the sending pid;
   control frames use a dedicated stream) and the surviving copies are
   re-injected through the timer wheel after their sampled delay. Seeding
   is per (netem_seed, self, peer) link, so a soak's fault pattern is
   reproducible per link even though wall-clock timing is not.

   Vector clocks follow the same discipline as the simulator's runtime:
   tick on send, broadcast and local event; merge+tick on delivery. The
   clock itself is a monotonicized [Unix.gettimeofday] - absolute, so the
   logs of separately-spawned processes share one time axis and the
   orchestrator can merge them; monotonicized, because timer logic breaks
   if NTP steps the wall clock backwards. *)

open Gmp_base
open Gmp_causality
open Gmp_core
module Platform = Gmp_platform.Platform
module Stats = Gmp_platform.Stats
module Netem = Gmp_net.Netem
module Endpoint = Gmp_net.Endpoint
module Rng = Gmp_sim.Rng
module Obs = Gmp_obs.Obs

type out_entry = {
  e_seq : int;
  e_bytes : string; (* encoded frame *)
  e_sent_at : float;
  mutable e_clean : bool; (* never retransmitted: rtt-sampleable (Karn) *)
}

type out_chan = {
  mutable next_seq : int;
  mutable base : int; (* lowest unacked seq *)
  unacked : out_entry Queue.t;
  mutable rtimer : Timers.entry option;
  mutable cur_rto : float; (* current backoff value, in [rto, rto_max] *)
  mutable quiet_rounds : int; (* retransmit rounds since last ack progress *)
}

type in_chan = { mutable next_expected : int }

type counters = {
  mutable data_frames_sent : int; (* first transmissions, not resends *)
  mutable retransmissions : int; (* individual frames re-sent *)
  mutable retransmit_rounds : int; (* retransmit-timer fires *)
  mutable dups_suppressed : int; (* data below next_expected: seen before *)
  mutable out_of_window_drops : int; (* data above next_expected (go-back-N) *)
  mutable netem_dropped : int;
  mutable netem_duplicated : int;
  mutable netem_reordered : int;
}

type t = {
  pid : Pid.t;
  transport : Transport.t;
  timers : Timers.t;
  out_chans : out_chan Pid.Tbl.t;
  in_chans : in_chan Pid.Tbl.t;
  mutable blackholed : Pid.Set.t; (* fault injection: drop their frames *)
  mutable disconnected : Pid.Set.t; (* S1: permanent incoming disconnect *)
  vc : Vector_clock.Mutable.clock; (* copy-on-write: snapshot to publish *)
  mutable events : int; (* local history length *)
  mutable alive : bool;
  mutable stopping : bool; (* orchestrator asked for clean shutdown *)
  mutable receiver : src:Pid.t -> Wire.t -> unit;
  last_now : float ref; (* monotonicity floor; shared with the transport *)
  ctr : counters;
  stats : Stats.t;
  rto : float;
  rto_max : float;
  (* netem: the node's default incoming-link model, per-peer overrides,
     and one seeded RNG stream per link (control frames get their own). *)
  mutable netem_default : Netem.t;
  netem_overrides : Netem.t Pid.Tbl.t;
  netem_seed : int;
  link_rngs : Rng.t Pid.Tbl.t;
  ctrl_rng : Rng.t;
  registry : Obs.registry;
  h_rtt : Obs.histogram; (* clean-sample ack round-trips, wall seconds *)
  h_backoff : Obs.histogram; (* retransmit rounds per recovered quiet spell *)
  log : string -> unit;
}

(* Canonical metric names — the one vocabulary shared by the registry,
   the JSONL summary lines and the orchestrator's reports. *)
let counters t =
  [ ("arq.data_frames_sent", t.ctr.data_frames_sent);
    ("arq.retransmits", t.ctr.retransmissions);
    ("arq.retransmit_rounds", t.ctr.retransmit_rounds);
    ("arq.dups_suppressed", t.ctr.dups_suppressed);
    ("arq.out_of_window_drops", t.ctr.out_of_window_drops);
    ("netem.dropped", t.ctr.netem_dropped);
    ("netem.duplicated", t.ctr.netem_duplicated);
    ("netem.reordered", t.ctr.netem_reordered) ]

let transport_counters t =
  List.map
    (fun (k, v) -> ("transport." ^ k, v))
    (t.transport.Transport.counters ())

let default_rto = 0.25
let default_rto_max_factor = 16.0

let create ?(peers = []) ?(transport = Transport.Udp) ?tcp_config
    ?(rto = default_rto) ?rto_max ?(netem = Netem.none) ?(netem_seed = 0)
    ?(log = fun _ -> ()) ~pid ~bind () =
  if rto <= 0.0 then invalid_arg "Node.create: non-positive rto";
  let rto_max =
    match rto_max with
    | None -> rto *. default_rto_max_factor
    | Some v ->
      if v < rto then invalid_arg "Node.create: rto_max below rto";
      v
  in
  (* The transport needs the clock before the node record exists, so the
     monotonicity floor lives in a ref both close over. *)
  let last_now = ref 0.0 in
  let now () =
    let w = Unix.gettimeofday () in
    if w > !last_now then last_now := w;
    !last_now
  in
  let transport =
    Transport.make ?tcp_config ~kind:transport ~bind ~now ~log ()
  in
  let registry = Obs.create () in
  let t =
    { pid;
      transport;
      timers = Timers.create ();
      out_chans = Pid.Tbl.create 16;
      in_chans = Pid.Tbl.create 16;
      blackholed = Pid.Set.empty;
      disconnected = Pid.Set.empty;
      vc = Vector_clock.Mutable.create ();
      events = 0;
      alive = true;
      stopping = false;
      receiver = (fun ~src:_ _ -> ());
      last_now;
      ctr =
        { data_frames_sent = 0;
          retransmissions = 0;
          retransmit_rounds = 0;
          dups_suppressed = 0;
          out_of_window_drops = 0;
          netem_dropped = 0;
          netem_duplicated = 0;
          netem_reordered = 0 };
      stats = Stats.create ();
      rto;
      rto_max;
      netem_default = netem;
      netem_overrides = Pid.Tbl.create 4;
      netem_seed;
      link_rngs = Pid.Tbl.create 16;
      ctrl_rng = Rng.create (Netem.link_seed ~seed:netem_seed ~self:pid ~peer:pid);
      registry;
      h_rtt = Obs.histogram registry "arq.rtt";
      h_backoff = Obs.histogram ~buckets:Obs.round_buckets registry
          "arq.backoff_rounds";
      log }
  in
  (* The pre-existing counter families ride along as snapshot views; their
     keys are already canonical, so the empty prefix passes them through. *)
  Obs.register_views registry ~prefix:"" (fun () -> counters t);
  Obs.register_views registry ~prefix:"" (fun () -> transport_counters t);
  Stats.register_views t.stats registry;
  List.iter (fun (p, ep) -> t.transport.Transport.add_peer p ep) peers;
  t

let pid t = t.pid
let endpoint t = t.transport.Transport.endpoint ()
let port t = Endpoint.port (endpoint t)
let stats t = t.stats
let alive t = t.alive
let stopping t = t.stopping
let retransmissions t = t.ctr.retransmissions
let clock t = Vector_clock.Mutable.snapshot t.vc
let blackholed t = t.blackholed
let netem t = t.netem_default
let transport_kind t = t.transport.Transport.kind
let registry t = t.registry
let metrics t = Obs.snapshot t.registry

let idle t =
  Pid.Tbl.fold (fun _ c acc -> acc && Queue.is_empty c.unacked) t.out_chans true

let set_netem t ?peer model =
  match peer with
  | None -> t.netem_default <- model
  | Some p -> Pid.Tbl.replace t.netem_overrides p model

let add_peer t p ep = t.transport.Transport.add_peer p ep

let now t =
  let w = Unix.gettimeofday () in
  if w > !(t.last_now) then t.last_now := w;
  !(t.last_now)

let local_event t =
  Vector_clock.Mutable.tick t.vc t.pid;
  t.events <- t.events + 1;
  (t.events, Vector_clock.Mutable.snapshot t.vc)

(* ---- frames out ---- *)

let sendto t ~dst bytes = t.transport.Transport.send ~dst bytes

(* ---- ARQ sender side ---- *)

let out_chan t dst =
  match Pid.Tbl.find_opt t.out_chans dst with
  | Some c -> c
  | None ->
    let c =
      { next_seq = 0;
        base = 0;
        unacked = Queue.create ();
        rtimer = None;
        cur_rto = t.rto;
        quiet_rounds = 0 }
    in
    Pid.Tbl.replace t.out_chans dst c;
    c

let cancel_rtimer c =
  match c.rtimer with
  | None -> ()
  | Some e ->
    Timers.cancel e;
    c.rtimer <- None

let rec arm_rtimer t dst c =
  cancel_rtimer c;
  if not (Queue.is_empty c.unacked) then
    c.rtimer <-
      Some
        (Timers.schedule t.timers
           ~at:(now t +. c.cur_rto)
           (fun () ->
             c.rtimer <- None;
             if t.alive && not (Queue.is_empty c.unacked) then begin
               t.ctr.retransmit_rounds <- t.ctr.retransmit_rounds + 1;
               c.quiet_rounds <- c.quiet_rounds + 1;
               Queue.iter
                 (fun e ->
                   t.ctr.retransmissions <- t.ctr.retransmissions + 1;
                   e.e_clean <- false;
                   sendto t ~dst e.e_bytes)
                 c.unacked;
               (* No ack progress this round: back off (capped), so a dead
                  or badly lossy link costs O(log) sends per quiet period,
                  not one full-window storm every rto. *)
               c.cur_rto <- Float.min (c.cur_rto *. 2.0) t.rto_max;
               arm_rtimer t dst c
             end))

let transmit t ~dst msg =
  let c = out_chan t dst in
  let seq = c.next_seq in
  c.next_seq <- seq + 1;
  let bytes =
    Codec.encode_frame
      (Codec.Data
         { src = t.pid;
           chan_seq = seq;
           vc = Vector_clock.Mutable.snapshot t.vc;
           msg })
  in
  Queue.add
    { e_seq = seq; e_bytes = bytes; e_sent_at = now t; e_clean = true }
    c.unacked;
  t.ctr.data_frames_sent <- t.ctr.data_frames_sent + 1;
  sendto t ~dst bytes;
  if c.rtimer = None then arm_rtimer t dst c

let handle_ack t ~src ~ack_next =
  match Pid.Tbl.find_opt t.out_chans src with
  | None -> ()
  | Some c ->
    while
      (not (Queue.is_empty c.unacked))
      && (Queue.peek c.unacked).e_seq < ack_next
    do
      let e = Queue.pop c.unacked in
      (* Sample the ack round-trip only for frames never retransmitted:
         after a retransmission the ack cannot be attributed to one flight
         (Karn's rule). *)
      if e.e_clean then Obs.observe t.h_rtt (now t -. e.e_sent_at)
    done;
    if ack_next > c.base then begin
      (* Ack progress: the link is passing traffic again - reset the
         backoff and re-arm from now, so recovery after a lossy spell is
         prompt instead of waiting out a capped timeout. *)
      c.base <- ack_next;
      c.cur_rto <- t.rto;
      if c.quiet_rounds > 0 then begin
        Obs.observe t.h_backoff (float_of_int c.quiet_rounds);
        c.quiet_rounds <- 0
      end;
      if Queue.is_empty c.unacked then cancel_rtimer c
      else arm_rtimer t src c
    end
    else if Queue.is_empty c.unacked then cancel_rtimer c

let teardown_to t dst =
  (match Pid.Tbl.find_opt t.out_chans dst with
  | None -> ()
  | Some c ->
    cancel_rtimer c;
    Queue.clear c.unacked);
  Pid.Tbl.remove t.out_chans dst

(* ---- platform operations ---- *)

let send t ~dst ~category payload =
  if t.alive then begin
    Vector_clock.Mutable.tick t.vc t.pid;
    t.events <- t.events + 1;
    Stats.record_sent t.stats ~category;
    transmit t ~dst payload
  end

let broadcast t ~dsts ~category payload =
  (* One vc tick for the whole broadcast, as in the simulator; the sends
     themselves are sequential frames (indivisible in the paper's sense,
     not failure-atomic). *)
  if t.alive then begin
    Vector_clock.Mutable.tick t.vc t.pid;
    t.events <- t.events + 1;
    List.iter
      (fun dst ->
        if not (Pid.equal dst t.pid) then begin
          Stats.record_sent t.stats ~category;
          transmit t ~dst payload
        end)
      dsts
  end

let disconnect_from t ~from =
  (* S1: sever the incoming channel permanently. Also stop retransmitting
     toward the severed peer - it is being excluded; an unacked window
     kept alive forever would spin the timer wheel for a corpse - and let
     the transport tear down its route (a TCP stream to an excluded peer
     has nothing left to carry). *)
  t.disconnected <- Pid.Set.add from t.disconnected;
  Pid.Tbl.remove t.in_chans from;
  teardown_to t from;
  t.transport.Transport.remove_peer from

let halt t =
  if t.alive then begin
    t.alive <- false;
    Pid.Tbl.iter (fun _ c -> cancel_rtimer c) t.out_chans;
    Pid.Tbl.reset t.out_chans
  end

let set_timer t ~delay f =
  let e =
    Timers.schedule t.timers
      ~at:(now t +. delay)
      (fun () -> if t.alive then f ())
  in
  { Platform.cancel = (fun () -> Timers.cancel e) }

let every t ~interval f =
  if interval <= 0.0 then invalid_arg "Node.every: non-positive interval";
  let rec loop () =
    if t.alive then begin
      f ();
      if t.alive then
        ignore
          (Timers.schedule t.timers ~at:(now t +. interval) loop
            : Timers.entry)
    end
  in
  ignore (Timers.schedule t.timers ~at:(now t +. interval) loop : Timers.entry)

let platform t =
  { Platform.pid = t.pid;
    alive = (fun () -> t.alive);
    now = (fun () -> now t);
    clock = (fun () -> clock t);
    local_event = (fun () -> local_event t);
    send = (fun ~dst ~category payload -> send t ~dst ~category payload);
    broadcast =
      (fun ~dsts ~category payload -> broadcast t ~dsts ~category payload);
    disconnect_from = (fun ~from -> disconnect_from t ~from);
    halt = (fun () -> halt t);
    set_receiver = (fun f -> t.receiver <- f);
    set_timer = (fun ~delay f -> set_timer t ~delay f);
    every = (fun ~interval f -> every t ~interval f);
    log = t.log }

(* ---- ARQ receiver side / frame dispatch ---- *)

let in_chan t src =
  match Pid.Tbl.find_opt t.in_chans src with
  | Some c -> c
  | None ->
    let c = { next_expected = 0 } in
    Pid.Tbl.replace t.in_chans src c;
    c

let send_ack t ~dst ~ack_next =
  sendto t ~dst (Codec.encode_frame (Codec.Ack { src = t.pid; ack_next }))

let handle_data t ~(origin : Transport.origin) ~src ~chan_seq ~sender_vc msg =
  (* Learn the peer's route from its traffic: joiners announce
     themselves, no static address book required. The transport keeps
     configured routes authoritative and only fills gaps. *)
  origin.learn src;
  let c = in_chan t src in
  if chan_seq = c.next_expected then begin
    c.next_expected <- chan_seq + 1;
    send_ack t ~dst:src ~ack_next:c.next_expected;
    Vector_clock.Mutable.merge_tick t.vc sender_vc t.pid;
    t.events <- t.events + 1;
    Stats.record_delivered t.stats ~category:(Wire.category_id msg);
    t.receiver ~src msg
  end
  else begin
    (* Duplicate or out-of-order: no delivery, but always re-ack so the
       sender's window can advance past a lost ack. *)
    if chan_seq < c.next_expected then
      t.ctr.dups_suppressed <- t.ctr.dups_suppressed + 1
    else t.ctr.out_of_window_drops <- t.ctr.out_of_window_drops + 1;
    send_ack t ~dst:src ~ack_next:c.next_expected
  end

let apply_ctrl t = function
  | Codec.Get_metrics -> () (* handled in dispatch: replies Metrics, not ack *)
  | Codec.Shutdown -> t.stopping <- true
  | Codec.Blackhole p ->
    t.blackholed <- Pid.Set.add p t.blackholed;
    t.log (Printf.sprintf "blackholing %s" (Pid.to_string p))
  | Codec.Unblackhole p ->
    t.blackholed <- Pid.Set.remove p t.blackholed;
    t.log (Printf.sprintf "unblackholing %s" (Pid.to_string p))
  | Codec.Set_netem { peer; n_loss; n_latency; n_jitter; n_dup; n_reorder } ->
    let model =
      Netem.of_latency ~loss:n_loss ~duplicate:n_dup ~reorder:n_reorder
        ~jitter:n_jitter n_latency
    in
    set_netem t ?peer model;
    t.log
      (Fmt.str "netem %s <- %a"
         (match peer with
         | None -> "default"
         | Some p -> Pid.to_string p)
         Netem.pp model)

let handle_frame t ~(origin : Transport.origin) = function
  | Codec.Data { src; chan_seq; vc; msg } ->
    if
      t.alive
      && (not (Pid.Set.mem src t.blackholed))
      && not (Pid.Set.mem src t.disconnected)
    then handle_data t ~origin ~src ~chan_seq ~sender_vc:vc msg
    else if t.alive && Pid.Set.mem src t.blackholed then
      Stats.record_dropped t.stats ~category:(Wire.category_id msg)
  | Codec.Ack { src; ack_next } ->
    if t.alive && not (Pid.Set.mem src t.blackholed) then
      handle_ack t ~src ~ack_next
  | Codec.Ctrl { token; cmd = Codec.Get_metrics } ->
    (* A query, not a mutation: the reply carries the snapshot and doubles
       as the ack (same token), so the scrape rides the same retry loop as
       the fault commands and survives the same weather. *)
    let payload =
      Json.to_compact_string (Obs.Snapshot.to_json (Obs.snapshot t.registry))
    in
    origin.reply (Codec.encode_frame (Codec.Metrics { token; payload }))
  | Codec.Ctrl { token; cmd } ->
    (* Apply, then ack straight back along the arrival path. The ack is
       the applied-receipt: a sender that got it knows the command took
       effect; one that did not retries the (idempotent) command. *)
    apply_ctrl t cmd;
    origin.reply (Codec.encode_frame (Codec.Ctrl_ack { token }))
  | Codec.Ctrl_ack _ | Codec.Metrics _ ->
    () (* orchestrator-bound; noise to a node *)

(* ---- netem ingress: the shared fault-injection seam ---- *)

let link_model t src =
  match Pid.Tbl.find_opt t.netem_overrides src with
  | Some m -> m
  | None -> t.netem_default

let link_rng t src =
  match Pid.Tbl.find_opt t.link_rngs src with
  | Some rng -> rng
  | None ->
    let rng =
      Rng.create (Netem.link_seed ~seed:t.netem_seed ~self:t.pid ~peer:src)
    in
    Pid.Tbl.replace t.link_rngs src rng;
    rng

let ingress t ~(origin : Transport.origin) frame =
  (* Decode first, then draw the frame's fate from the link model:
     per-peer for protocol traffic, the dedicated control stream for
     orchestrator frames (the control plane faces the same weather - which
     is why it is acked and retried). This runs after the transport has
     reassembled a complete frame, so both transports face identical
     weather: over TCP, a dropped frame is resurrected by the ARQ's
     retransmission, never by the kernel. Surviving copies re-enter the
     poll loop through the timer wheel after their sampled delay;
     independent per-copy delays plus the explicit hold give real
     reordering. *)
  let model, rng =
    match frame with
    | Codec.Data { src; _ } | Codec.Ack { src; _ } ->
      (link_model t src, lazy (link_rng t src))
    | Codec.Ctrl _ | Codec.Ctrl_ack _ | Codec.Metrics _ ->
      (t.netem_default, lazy t.ctrl_rng)
  in
  if Netem.is_none model then handle_frame t ~origin frame
  else
    match Netem.sample model (Lazy.force rng) with
    | Netem.Drop -> t.ctr.netem_dropped <- t.ctr.netem_dropped + 1
    | Netem.Deliver { delay; dup_delay; held } ->
      if held then t.ctr.netem_reordered <- t.ctr.netem_reordered + 1;
      let inject d =
        if d <= 0.0 then handle_frame t ~origin frame
        else
          ignore
            (Timers.schedule t.timers
               ~at:(now t +. d)
               (fun () -> if t.alive then handle_frame t ~origin frame)
              : Timers.entry)
      in
      inject delay;
      (match dup_delay with
      | None -> ()
      | Some d ->
        t.ctr.netem_duplicated <- t.ctr.netem_duplicated + 1;
        inject d)

let drain t =
  t.transport.Transport.drain (fun ~origin raw ->
      match Codec.decode_frame raw with
      | Ok frame -> ingress t ~origin frame
      | Error e ->
        t.log (Fmt.str "dropping undecodable frame: %a" Codec.pp_error e))

(* ---- poll loop ---- *)

let max_poll = 0.2
(* Upper bound on one select sleep: keeps the loop responsive to [run]'s
   deadline and cheap to reason about; idle wakeups at 5 Hz are free. *)

let step t =
  let n = now t in
  ignore (Timers.fire_due t.timers ~now:n : int);
  t.transport.Transport.tick ~now:n;
  let timeout =
    let bound acc = function
      | None -> acc
      | Some at -> Float.min acc (Float.max 0.0 (at -. n))
    in
    bound
      (bound max_poll (Timers.next_deadline t.timers))
      (t.transport.Transport.next_deadline ())
  in
  (match
     Unix.select
       (t.transport.Transport.rfds ())
       (t.transport.Transport.wfds ())
       [] timeout
   with
  | [], [], _ -> ()
  | _readable, _writable, _ ->
    (* Writability is consumed by [tick] (connect completions, outbox
       flushes); readability by [drain]. *)
    t.transport.Transport.tick ~now:(now t);
    drain t
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  ignore (Timers.fire_due t.timers ~now:(now t) : int)

let run ?until t =
  let deadline = Option.map (fun d -> now t +. d) until in
  let expired () =
    match deadline with None -> false | Some d -> now t >= d
  in
  while t.alive && (not t.stopping) && not (expired ()) do
    step t
  done

let close t =
  halt t;
  t.transport.Transport.close ()
