(* Acked control-plane client: the orchestrator's side of [Codec.Ctrl].

   Control frames cross the same injected weather as protocol traffic (a
   node's netem layer draws their fate too), so fire-and-forget commands
   are exactly as reliable as the faults they configure - a blackhole
   order can itself be blackholed by the loss it is about to cause. Hence
   the two-line protocol: every command carries a client-chosen token; the
   node applies the (idempotent) command and answers [Ctrl_ack] with the
   same token; the client retransmits until the ack arrives or it gives
   up. Tokens only pair acks with commands - the node keeps no dedup
   state, which idempotence makes safe. *)

type t = {
  sock : Unix.file_descr;
  mutable next_token : int;
  buf : Bytes.t;
}

let create () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.set_nonblock sock;
  (* Seed tokens from the OS pid so two orchestrators poking one node
     cannot mistake each other's acks. *)
  { sock;
    next_token = (Unix.getpid () land 0xFFFF) * 0x10000;
    buf = Bytes.create (Codec.max_frame + 64) }

let close t = try Unix.close t.sock with Unix.Unix_error _ -> ()

(* Drain everything queued on the socket; true iff an ack for [token] was
   among it. Anything else (stray acks from earlier commands, garbage) is
   discarded. *)
let rec drain t ~token acked =
  match Unix.recvfrom t.sock t.buf 0 (Bytes.length t.buf) [] with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    acked
  | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNREFUSED), _, _) ->
    drain t ~token acked
  | n, _ ->
    let acked =
      match Codec.decode_frame (Bytes.sub_string t.buf 0 n) with
      | Ok (Codec.Ctrl_ack { token = tk }) -> acked || tk = token
      | Ok _ | Error _ -> acked
    in
    drain t ~token acked

let default_attempts = 50
let default_interval = 0.1

let send ?(attempts = default_attempts) ?(interval = default_interval) t
    ~port cmd =
  if attempts <= 0 then invalid_arg "Ctrl.send: non-positive attempts";
  if interval <= 0.0 then invalid_arg "Ctrl.send: non-positive interval";
  let token = t.next_token land 0xFFFFFFFF in
  t.next_token <- token + 1;
  let bytes = Codec.encode_frame (Codec.Ctrl { token; cmd }) in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let rec attempt k =
    if k <= 0 then false
    else begin
      (try
         ignore
           (Unix.sendto t.sock (Bytes.of_string bytes) 0 (String.length bytes)
              [] addr
             : int)
       with Unix.Unix_error _ -> ());
      let deadline = Unix.gettimeofday () +. interval in
      let rec wait () =
        if drain t ~token false then true
        else
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining <= 0.0 then false
          else
            match Unix.select [ t.sock ] [] [] remaining with
            | [ _ ], _, _ -> if drain t ~token false then true else wait ()
            | _ -> false
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      wait () || attempt (k - 1)
    end
  in
  attempt attempts
