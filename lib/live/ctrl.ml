(* Acked control-plane client: the orchestrator's side of [Codec.Ctrl].

   Control frames cross the same injected weather as protocol traffic (a
   node's netem layer draws their fate too), so fire-and-forget commands
   are exactly as reliable as the faults they configure - a blackhole
   order can itself be blackholed by the loss it is about to cause. Hence
   the two-line protocol: every command carries a client-chosen token; the
   node applies the (idempotent) command and answers [Ctrl_ack] with the
   same token; the client retransmits until the ack arrives or it gives
   up. Tokens only pair acks with commands - the node keeps no dedup
   state, which idempotence makes safe.

   Queries ride the same machinery with a richer reply: [Get_metrics] is
   answered by a [Metrics] frame carrying the snapshot, whose token match
   IS the ack. Both legs therefore share one retry loop parameterized by
   an accept predicate over decoded frames.

   The client speaks whichever transport the cluster runs: datagrams to a
   UDP node, framed streams to a TCP one (cached per target, reconnected
   on any error - the retry loop that already absorbs loss absorbs
   connection churn too). The ack discipline is identical on both. *)

type conn = { cfd : Unix.file_descr; dec : Framing.t }

type wire =
  | Udp_wire of Unix.file_descr
  | Tcp_wire of (string * int, conn) Hashtbl.t (* cached per target *)

type t = {
  wire : wire;
  mutable next_token : int;
  buf : Bytes.t;
}

let create ?(transport = Transport.Udp) () =
  let wire =
    match transport with
    | Transport.Udp ->
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
      Unix.set_nonblock sock;
      Udp_wire sock
    | Transport.Tcp ->
      (* A write to a node that died mid-command must be a Unix_error,
         not a process kill. *)
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ | Sys_error _ -> ());
      Tcp_wire (Hashtbl.create 8)
  in
  (* Seed tokens from the OS pid so two orchestrators poking one node
     cannot mistake each other's acks. *)
  { wire;
    next_token = (Unix.getpid () land 0xFFFF) * 0x10000;
    buf = Bytes.create (Codec.max_frame + 64) }

let close t =
  match t.wire with
  | Udp_wire sock -> ( try Unix.close sock with Unix.Unix_error _ -> ())
  | Tcp_wire conns ->
    Hashtbl.iter
      (fun _ c -> try Unix.close c.cfd with Unix.Unix_error _ -> ())
      conns;
    Hashtbl.reset conns

let resolve ~host ~port =
  Transport.resolve (Gmp_net.Endpoint.make ~host ~port)

(* ---- UDP leg ---- *)

(* Drain everything queued on the socket; the first frame [accept] takes
   wins. Anything else (stray acks from earlier commands, garbage) is
   discarded. *)
let rec udp_drain t sock ~accept found =
  match Unix.recvfrom sock t.buf 0 (Bytes.length t.buf) [] with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    found
  | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNREFUSED), _, _) ->
    udp_drain t sock ~accept found
  | n, _ ->
    let found =
      match found with
      | Some _ -> found
      | None -> (
        match Codec.decode_frame (Bytes.sub_string t.buf 0 n) with
        | Ok frame -> accept frame
        | Error _ -> None)
    in
    udp_drain t sock ~accept found

let udp_attempt t sock ~addr ~accept ~interval bytes =
  (try
     ignore
       (Unix.sendto sock (Bytes.of_string bytes) 0 (String.length bytes) []
          addr
         : int)
   with Unix.Unix_error _ -> ());
  let deadline = Unix.gettimeofday () +. interval in
  let rec wait () =
    match udp_drain t sock ~accept None with
    | Some _ as r -> r
    | None -> (
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then None
      else
        match Unix.select [ sock ] [] [] remaining with
        | [ _ ], _, _ -> (
          match udp_drain t sock ~accept None with
          | Some _ as r -> r
          | None -> wait ())
        | _ -> None
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ())
  in
  wait ()

(* ---- TCP leg ---- *)

exception Conn_dead

let drop_conn conns key c =
  (try Unix.close c.cfd with Unix.Unix_error _ -> ());
  Hashtbl.remove conns key

(* Connect (bounded by [timeout]) or reuse the cached stream. *)
let tcp_conn conns ~host ~port ~timeout =
  let key = (host, port) in
  match Hashtbl.find_opt conns key with
  | Some c -> Some c
  | None -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    try
      Unix.set_nonblock fd;
      (match Unix.connect fd (resolve ~host ~port) with
      | () -> ()
      | exception
          Unix.Unix_error
            ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> (
        match Unix.select [] [ fd ] [] timeout with
        | _, [ _ ], _ -> (
          match Unix.getsockopt_error fd with
          | None -> ()
          | Some e -> raise (Unix.Unix_error (e, "connect", "")))
        | _ -> raise Conn_dead));
      let c = { cfd = fd; dec = Framing.create () } in
      Hashtbl.replace conns key c;
      Some c
    with Unix.Unix_error _ | Conn_dead | Failure _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None)

(* Blocking-with-deadline write of the whole frame; raises [Conn_dead] on
   any failure. *)
let tcp_write c ~deadline bytes =
  let len = String.length bytes in
  let off = ref 0 in
  while !off < len do
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then raise Conn_dead;
    match
      Unix.write c.cfd (Bytes.unsafe_of_string bytes) !off (len - !off)
    with
    | n -> off := !off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
      match Unix.select [] [ c.cfd ] [] remaining with
      | _, [ _ ], _ -> ()
      | _ -> raise Conn_dead
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> raise Conn_dead
  done

(* Read until a frame [accept] takes or the deadline; raises [Conn_dead]
   on EOF, read errors or a desynchronized stream. *)
let tcp_wait t c ~accept ~deadline =
  let scan frames =
    List.find_map
      (fun raw ->
        match Codec.decode_frame raw with
        | Ok frame -> accept frame
        | Error _ -> None)
      frames
  in
  let rec wait () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then None
    else
      match Unix.select [ c.cfd ] [] [] remaining with
      | [ _ ], _, _ -> (
        match Unix.read c.cfd t.buf 0 (Bytes.length t.buf) with
        | 0 -> raise Conn_dead
        | n -> (
          match Framing.feed c.dec t.buf ~off:0 ~len:n with
          | Ok frames -> (
            match scan frames with Some _ as r -> r | None -> wait ())
          | Error _ -> raise Conn_dead)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          wait ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        | exception Unix.Unix_error (_, _, _) -> raise Conn_dead)
      | _ -> wait ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ()

let tcp_attempt conns t ~host ~port ~accept ~interval bytes =
  match tcp_conn conns ~host ~port ~timeout:interval with
  | None -> None
  | Some c -> (
    let deadline = Unix.gettimeofday () +. interval in
    try
      tcp_write c ~deadline bytes;
      tcp_wait t c ~accept ~deadline
    with Conn_dead ->
      drop_conn conns (host, port) c;
      None)

(* ---- the retry loop both legs share ---- *)

let default_attempts = 50
let default_interval = 0.1

let request ~attempts ~interval ~host t ~port ~accept bytes =
  if attempts <= 0 then invalid_arg "Ctrl: non-positive attempts";
  if interval <= 0.0 then invalid_arg "Ctrl: non-positive interval";
  let one () =
    match t.wire with
    | Udp_wire sock ->
      udp_attempt t sock ~addr:(resolve ~host ~port) ~accept ~interval bytes
    | Tcp_wire conns -> tcp_attempt conns t ~host ~port ~accept ~interval bytes
  in
  let rec attempt k =
    if k <= 0 then None
    else match one () with Some _ as r -> r | None -> attempt (k - 1)
  in
  attempt attempts

let fresh_token t =
  let token = t.next_token land 0xFFFFFFFF in
  t.next_token <- token + 1;
  token

let send ?(attempts = default_attempts) ?(interval = default_interval)
    ?(host = "127.0.0.1") t ~port cmd =
  let token = fresh_token t in
  let bytes = Codec.encode_frame (Codec.Ctrl { token; cmd }) in
  let accept = function
    | Codec.Ctrl_ack { token = tk } when tk = token -> Some ()
    | _ -> None
  in
  request ~attempts ~interval ~host t ~port ~accept bytes <> None

let query ?(attempts = default_attempts) ?(interval = default_interval)
    ?(host = "127.0.0.1") t ~port =
  let token = fresh_token t in
  let bytes = Codec.encode_frame (Codec.Ctrl { token; cmd = Codec.Get_metrics }) in
  let accept = function
    | Codec.Metrics { token = tk; payload } when tk = token -> Some payload
    | _ -> None
  in
  request ~attempts ~interval ~host t ~port ~accept bytes
