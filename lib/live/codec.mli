(** Versioned binary codec for the live runtime's datagrams.

    Frames carry a fixed header (magic ["GM"], a version byte, a 32-bit
    body length) so truncated, oversized or foreign datagrams are rejected
    before any field is read. The exact byte layout is pinned by the golden
    files under [test/golden]. *)

open Gmp_base
open Gmp_causality
open Gmp_core

type Wire.app += Blob of string
      (** The only application payload that exists on the real wire:
          serialized bytes. Encoding any other [Wire.app] constructor
          raises [Invalid_argument]. *)

type netem_spec = {
  peer : Pid.t option;
      (** which incoming link to retune; [None] = the node's default
          (all-links) model *)
  n_loss : float;  (** in [\[0,1)] *)
  n_latency : float;  (** seconds, [>= 0] *)
  n_jitter : float;  (** seconds, [>= 0]; delay is latency +/- jitter *)
  n_dup : float;  (** in [\[0,1\]] *)
  n_reorder : float;  (** in [\[0,1\]] *)
}
(** The wire form of a {!Gmp_net.Netem} model: the CLI's
    loss/latency/jitter/dup/reorder vocabulary. Decoding validates every
    range, so a hostile frame cannot smuggle an invalid model. *)

(** Out-of-band orchestrator commands (fault injection, teardown). All are
    idempotent: the acked control plane may replay them. *)
type ctrl =
  | Shutdown  (** exit cleanly after flushing the event log *)
  | Blackhole of Pid.t  (** silently drop all traffic from this peer *)
  | Unblackhole of Pid.t
  | Set_netem of netem_spec  (** retune fault injection at runtime *)
  | Get_metrics
      (** scrape the node's metrics registry; answered with {!Metrics}
          rather than a bare [Ctrl_ack] *)

type frame =
  | Data of {
      src : Pid.t;
      chan_seq : int;  (** per-(src,dst) ARQ sequence number *)
      vc : Vector_clock.t;  (** sender's clock at send time *)
      msg : Wire.t;
    }
  | Ack of { src : Pid.t; ack_next : int }
      (** cumulative: "I have delivered everything below [ack_next]" *)
  | Ctrl of { token : int; cmd : ctrl }
      (** acked control plane: the receiver answers [Ctrl_ack] with the
          same token after applying [cmd]; senders retry until acked, so
          fault commands survive the loss they inject *)
  | Ctrl_ack of { token : int }
  | Metrics of { token : int; payload : string }
      (** reply to [Ctrl Get_metrics]: the node's registry snapshot as
          compact JSON text; carries the request's token, so it doubles as
          the ack the retrying sender waits for *)

type error =
  | Truncated of string
  | Oversized of { declared : int; max : int }
  | Bad_magic
  | Unsupported_version of int
  | Malformed of string

val pp_error : error Fmt.t

val version : int
(** Codec revision this build speaks. *)

val header_len : int
(** Bytes of the fixed frame header (magic + version + body length) —
    what a stream decoder must buffer before it knows a frame's size. *)

val max_frame : int
(** Upper bound on an encoded body's length; larger declared lengths are
    rejected without allocation. *)

val encode_msg : Wire.t -> string
(** Body-only encoding of a protocol message (no frame header); the
    round-trip surface the golden tests pin. *)

val decode_msg : string -> (Wire.t, error) result
(** Inverse of {!encode_msg}; rejects trailing bytes. *)

val encode_frame : frame -> string
(** Full datagram: header plus body. *)

val decode_frame : string -> (frame, error) result
(** Inverse of {!encode_frame}. Every failure mode is a clean [Error] -
    decoding never raises on hostile input. *)
