(* The transport seam: how a live node's frames reach other hosts.

   [Node] used to own a UDP socket directly, which hard-wired the runtime
   to datagrams on loopback. This module abstracts the wire behind a
   record of closures (the same seam style as [Gmp_platform.Platform]):
   the node sends whole encoded frames to peers by pid and receives whole
   frames back with an [origin] it can reply to and learn routes from -
   everything else (sockets, address resolution, connection management,
   framing) lives behind the record, so datagram and stream transports are
   interchangeable under the same protocol stack, ARQ included.

   Two implementations:

   - UDP: one datagram socket; a frame is a datagram, byte-identical to
     the pre-seam wire format. The address book maps pid -> resolved
     sockaddr; unknown senders are learnt from their traffic.

   - TCP: a listening socket plus one lazily-connected, non-blocking
     stream per peer. Frames travel length-prefixed via the v2 codec's
     own self-delimiting header ([Framing] cuts them back out of the byte
     stream). Connections reconnect with exponential backoff, driven by
     the traffic itself: a send toward a disconnected peer starts the
     next attempt once the backoff allows, so the ARQ's retransmissions
     double as reconnection probes and no extra timer plumbing is needed.
     Half-open connections - established but silently dead, the failure
     mode streams add over datagrams - are detected by stalled progress:
     an outbox that stays unflushed past a timeout kills the connection.

   Frames queued on a connection that dies are dropped, deliberately: the
   ARQ above the seam owns reliability, and it retransmits anything
   unacked. The transport only promises best-effort frame delivery with
   boundaries preserved - exactly the contract UDP gave the node, which
   is what keeps the two implementations honestly swappable. *)

open Gmp_base
module Endpoint = Gmp_net.Endpoint

type origin = {
  reply : string -> unit;
      (* send one frame back along the arrival path (UDP: the source
         address; TCP: the connection it came in on) *)
  learn : Pid.t -> unit;
      (* bind this origin as the route to [pid], if none is known *)
}

type t = {
  kind : string;
  endpoint : unit -> Endpoint.t;
  send : dst:Pid.t -> string -> unit;
  add_peer : Pid.t -> Endpoint.t -> unit;
  remove_peer : Pid.t -> unit;
  rfds : unit -> Unix.file_descr list;
  wfds : unit -> Unix.file_descr list;
  next_deadline : unit -> float option;
  tick : now:float -> unit;
  drain : (origin:origin -> string -> unit) -> unit;
  counters : unit -> (string * int) list;
  close : unit -> unit;
}

type kind = Udp | Tcp

let kind_name = function Udp -> "udp" | Tcp -> "tcp"

let kind_of_string = function
  | "udp" -> Some Udp
  | "tcp" -> Some Tcp
  | _ -> None

(* ---- name resolution ---- *)

let resolve ep =
  let host = Endpoint.host ep and port = Endpoint.port ep in
  match Unix.inet_addr_of_string host with
  | addr -> Unix.ADDR_INET (addr, port)
  | exception Failure _ -> (
    match
      Unix.getaddrinfo host ""
        [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
    with
    | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ ->
      Unix.ADDR_INET (addr, port)
    | _ | (exception Not_found) ->
      failwith (Printf.sprintf "Transport: cannot resolve host %S" host))

let bound_endpoint sock ~bind =
  match Unix.getsockname sock with
  | Unix.ADDR_INET (_, port) -> Endpoint.with_port bind port
  | _ -> bind

(* ---- UDP ---- *)

type udp_counters = {
  mutable datagrams_sent : int;
  mutable datagrams_received : int;
  mutable send_errors : int; (* sendto failures swallowed (look like loss) *)
  mutable no_route_drops : int; (* sends toward a pid with no address *)
}

let udp ~bind ~log () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (resolve bind);
  Unix.set_nonblock sock;
  let bound = bound_endpoint sock ~bind in
  let peers : Unix.sockaddr Pid.Tbl.t = Pid.Tbl.create 16 in
  let ctr =
    { datagrams_sent = 0;
      datagrams_received = 0;
      send_errors = 0;
      no_route_drops = 0 }
  in
  let buf = Bytes.create (Codec.max_frame + 64) in
  let sendto_addr addr bytes =
    try
      ignore
        (Unix.sendto sock (Bytes.of_string bytes) 0 (String.length bytes) []
           addr
          : int);
      ctr.datagrams_sent <- ctr.datagrams_sent + 1
    with
    | Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNREFUSED), _, _) ->
      (* A full buffer or a dead peer's closed port: both look like loss
         to the ARQ, which is what retransmission exists for. *)
      ctr.send_errors <- ctr.send_errors + 1
  in
  let send ~dst bytes =
    match Pid.Tbl.find_opt peers dst with
    | None ->
      ctr.no_route_drops <- ctr.no_route_drops + 1;
      log (Printf.sprintf "no address for %s" (Pid.to_string dst))
    | Some addr -> sendto_addr addr bytes
  in
  let drain handle =
    let rec go () =
      match Unix.recvfrom sock buf 0 (Bytes.length buf) [] with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
        (* Linux surfaces a previous send's ICMP port-unreachable here. *)
        go ()
      | n, sender_addr ->
        ctr.datagrams_received <- ctr.datagrams_received + 1;
        let raw = Bytes.sub_string buf 0 n in
        let origin =
          { reply = (fun bytes -> sendto_addr sender_addr bytes);
            learn =
              (fun pid ->
                (* Joiners announce themselves; a statically configured
                   address is never overridden by traffic. *)
                if not (Pid.Tbl.mem peers pid) then
                  Pid.Tbl.replace peers pid sender_addr) }
        in
        handle ~origin raw;
        go ()
    in
    go ()
  in
  { kind = "udp";
    endpoint = (fun () -> bound);
    send;
    add_peer = (fun pid ep -> Pid.Tbl.replace peers pid (resolve ep));
    remove_peer = (fun pid -> Pid.Tbl.remove peers pid);
    rfds = (fun () -> [ sock ]);
    wfds = (fun () -> []);
    next_deadline = (fun () -> None);
    tick = (fun ~now:_ -> ());
    drain;
    counters =
      (fun () ->
        [ ("datagrams_sent", ctr.datagrams_sent);
          ("datagrams_received", ctr.datagrams_received);
          ("send_errors", ctr.send_errors);
          ("no_route_drops", ctr.no_route_drops) ]);
    close = (fun () -> try Unix.close sock with Unix.Unix_error _ -> ()) }

(* ---- TCP ---- *)

type tcp_config = {
  connect_timeout : float; (* a Connecting fd older than this is dead *)
  half_open_timeout : float; (* established + outbox stalled this long = dead *)
  backoff_min : float; (* first reconnect delay after a failure *)
  backoff_max : float; (* backoff doubles per failure up to this cap *)
  max_outbox : int; (* queued bytes per connection; beyond = drop frame *)
  sndbuf : int option; (* SO_SNDBUF override (tests shrink it) *)
}

let default_tcp =
  { connect_timeout = 3.0;
    half_open_timeout = 5.0;
    backoff_min = 0.1;
    backoff_max = 2.0;
    max_outbox = 1 lsl 20;
    sndbuf = None }

type conn_state = Connecting of float (* started *) | Established

type conn = {
  fd : Unix.file_descr;
  mutable state : conn_state;
  decoder : Framing.t;
  outq : string Queue.t; (* whole frames awaiting write *)
  mutable out_off : int; (* bytes of the head frame already written *)
  mutable out_bytes : int;
  mutable last_progress : float; (* last successful read or write *)
  mutable conn_closed : bool;
  mutable peer : Pid.t option; (* learnt identity of the other end *)
}

type route = {
  mutable ep : Endpoint.t option; (* listen endpoint, if configured *)
  mutable conn : conn option;
  mutable attempts : int; (* connects started toward this peer *)
  mutable next_attempt : float;
  mutable backoff : float;
}

type tcp_counters = {
  mutable connects : int; (* connection attempts started *)
  mutable reconnects : int; (* attempts beyond a peer's first *)
  mutable accepts : int;
  mutable conn_failures : int; (* died before establishing *)
  mutable conn_drops : int; (* died after establishing *)
  mutable half_open_drops : int; (* killed by the stalled-outbox check *)
  mutable stream_desyncs : int; (* framing-poisoned connections *)
  mutable frames_sent : int; (* frames fully written to the kernel *)
  mutable frames_received : int;
  mutable partial_reads : int; (* reads that ended inside a frame *)
  mutable outbox_dropped : int; (* frames dropped by the outbox cap *)
  mutable tcp_no_route_drops : int;
}

type tcp_state = {
  listener : Unix.file_descr;
  tcp_bound : Endpoint.t;
  routes : route Pid.Tbl.t;
  mutable conns : conn list; (* every live connection, any direction *)
  cfg : tcp_config;
  tctr : tcp_counters;
  tlog : string -> unit;
  tnow : unit -> float;
  read_buf : Bytes.t;
}

let set_sndbuf cfg fd =
  match cfg.sndbuf with
  | None -> ()
  | Some n -> (
    try Unix.setsockopt_int fd Unix.SO_SNDBUF n with Unix.Unix_error _ -> ())

let route_for st pid =
  match Pid.Tbl.find_opt st.routes pid with
  | Some r -> r
  | None ->
    let r =
      { ep = None; conn = None; attempts = 0; next_attempt = 0.0; backoff = 0.0 }
    in
    Pid.Tbl.replace st.routes pid r;
    r

let describe_peer = function
  | Some p -> Pid.to_string p
  | None -> "<unidentified>"

(* Tear one connection down and detach it from its route. [failed] picks
   the counter: death before establishment is a connect failure, after it
   a drop. The route backs off before its next attempt. *)
let kill_conn st conn ~failed ~reason =
  if not conn.conn_closed then begin
    conn.conn_closed <- true;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    st.conns <- List.filter (fun c -> c != conn) st.conns;
    Queue.clear conn.outq;
    conn.out_bytes <- 0;
    if failed then st.tctr.conn_failures <- st.tctr.conn_failures + 1
    else st.tctr.conn_drops <- st.tctr.conn_drops + 1;
    st.tlog
      (Printf.sprintf "tcp: connection to %s lost (%s)"
         (describe_peer conn.peer) reason);
    match conn.peer with
    | None -> ()
    | Some pid -> (
      match Pid.Tbl.find_opt st.routes pid with
      | Some ({ conn = Some c; _ } as r) when c == conn ->
        r.conn <- None;
        r.backoff <-
          (if r.backoff = 0.0 then st.cfg.backoff_min
           else Float.min (2.0 *. r.backoff) st.cfg.backoff_max);
        r.next_attempt <- st.tnow () +. r.backoff
      | _ -> ())
  end

(* Push queued frames into the kernel; partial writes leave the head
   frame's offset for next time. Any hard error kills the connection. *)
let flush st conn =
  if (not conn.conn_closed) && conn.state = Established then begin
    let progress = ref false in
    (try
       let continue = ref true in
       while !continue && not (Queue.is_empty conn.outq) do
         let head = Queue.peek conn.outq in
         let len = String.length head - conn.out_off in
         match
           Unix.write conn.fd
             (Bytes.unsafe_of_string head)
             conn.out_off len
         with
         | 0 -> continue := false
         | n ->
           progress := true;
           conn.out_bytes <- conn.out_bytes - n;
           if n = len then begin
             ignore (Queue.pop conn.outq : string);
             conn.out_off <- 0;
             st.tctr.frames_sent <- st.tctr.frames_sent + 1
           end
           else begin
             conn.out_off <- conn.out_off + n;
             continue := false
           end
         | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
           ->
           continue := false
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | exception Unix.Unix_error (e, _, _) ->
           kill_conn st conn ~failed:false
             ~reason:(Printf.sprintf "write: %s" (Unix.error_message e));
           continue := false
       done
     with _ -> ());
    if !progress then conn.last_progress <- st.tnow ()
  end

let enqueue st conn bytes =
  if not conn.conn_closed then begin
    if conn.out_bytes + String.length bytes > st.cfg.max_outbox then
      (* The ARQ above owns reliability; a stalled connection must not
         buffer unboundedly on its behalf. *)
      st.tctr.outbox_dropped <- st.tctr.outbox_dropped + 1
    else begin
      Queue.add bytes conn.outq;
      conn.out_bytes <- conn.out_bytes + String.length bytes
    end;
    flush st conn
  end

let start_connect st pid r =
  match r.ep with
  | None -> ()
  | Some ep ->
    let now = st.tnow () in
    if now >= r.next_attempt then begin
      r.attempts <- r.attempts + 1;
      st.tctr.connects <- st.tctr.connects + 1;
      if r.attempts > 1 then st.tctr.reconnects <- st.tctr.reconnects + 1;
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.set_nonblock fd;
      set_sndbuf st.cfg fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      let conn =
        { fd;
          state = Connecting now;
          decoder = Framing.create ();
          outq = Queue.create ();
          out_off = 0;
          out_bytes = 0;
          last_progress = now;
          conn_closed = false;
          peer = Some pid }
      in
      r.conn <- Some conn;
      st.conns <- conn :: st.conns;
      match Unix.connect fd (resolve ep) with
      | () ->
        conn.state <- Established;
        conn.last_progress <- now
      | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
        ->
        () (* completion is observed in [tick] via getpeername *)
      | exception Unix.Unix_error (e, _, _) ->
        kill_conn st conn ~failed:true
          ~reason:(Printf.sprintf "connect: %s" (Unix.error_message e))
    end

let tcp_send st ~dst bytes =
  match Pid.Tbl.find_opt st.routes dst with
  | None ->
    st.tctr.tcp_no_route_drops <- st.tctr.tcp_no_route_drops + 1;
    st.tlog (Printf.sprintf "no route to %s" (Pid.to_string dst))
  | Some r -> (
    match r.conn with
    | Some conn -> enqueue st conn bytes
    | None ->
      (* Lazy connect, paced by the backoff: the ARQ's retransmissions
         toward this peer are the reconnection probes. The frame rides
         along if an attempt starts now and is dropped otherwise - the
         retransmit that eventually succeeds carries the data. *)
      start_connect st dst r;
      (match r.conn with
      | Some conn -> enqueue st conn bytes
      | None ->
        if r.ep = None then begin
          st.tctr.tcp_no_route_drops <- st.tctr.tcp_no_route_drops + 1;
          st.tlog (Printf.sprintf "no endpoint for %s" (Pid.to_string dst))
        end))

(* Connect completion on a non-blocking socket: getpeername answers once
   the handshake is done, ENOTCONN while it is still in flight (the
   pending error, if any, is then fetched explicitly). *)
let check_connecting st conn ~now ~started =
  match Unix.getpeername conn.fd with
  | _ ->
    conn.state <- Established;
    conn.last_progress <- now;
    (match conn.peer with
    | Some pid -> (
      match Pid.Tbl.find_opt st.routes pid with
      | Some r ->
        r.backoff <- 0.0;
        r.next_attempt <- 0.0
      | None -> ())
    | None -> ());
    flush st conn
  | exception Unix.Unix_error (Unix.ENOTCONN, _, _) -> (
    match Unix.getsockopt_error conn.fd with
    | Some e ->
      kill_conn st conn ~failed:true
        ~reason:(Printf.sprintf "connect: %s" (Unix.error_message e))
    | None ->
      if now -. started > st.cfg.connect_timeout then
        kill_conn st conn ~failed:true ~reason:"connect timeout")
  | exception Unix.Unix_error (e, _, _) ->
    kill_conn st conn ~failed:true
      ~reason:(Printf.sprintf "connect: %s" (Unix.error_message e))

let tcp_tick st ~now =
  List.iter
    (fun conn ->
      if not conn.conn_closed then
        match conn.state with
        | Connecting started -> check_connecting st conn ~now ~started
        | Established ->
          flush st conn;
          if
            (not (Queue.is_empty conn.outq))
            && now -. conn.last_progress > st.cfg.half_open_timeout
          then begin
            (* Established but not draining: the peer's host vanished
               without a FIN/RST (or stopped reading). Kernel-level TCP
               would keep trying for minutes; the failure detector above
               cannot wait that long. *)
            st.tctr.half_open_drops <- st.tctr.half_open_drops + 1;
            kill_conn st conn ~failed:false ~reason:"half-open (outbox stalled)"
          end)
    (* kill_conn replaces st.conns with a fresh list, so iterating the
       list as it was on entry is safe *)
    st.conns

let tcp_next_deadline st =
  List.fold_left
    (fun acc conn ->
      let candidate =
        match conn.state with
        | Connecting started -> Some (started +. st.cfg.connect_timeout)
        | Established ->
          if Queue.is_empty conn.outq then None
          else Some (conn.last_progress +. st.cfg.half_open_timeout)
      in
      match (acc, candidate) with
      | None, c -> c
      | a, None -> a
      | Some a, Some c -> Some (Float.min a c))
    None st.conns

let accept_loop st =
  let rec go () =
    match Unix.accept st.listener with
    | fd, _addr ->
      Unix.set_nonblock fd;
      set_sndbuf st.cfg fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      st.tctr.accepts <- st.tctr.accepts + 1;
      let conn =
        { fd;
          state = Established;
          decoder = Framing.create ();
          outq = Queue.create ();
          out_off = 0;
          out_bytes = 0;
          last_progress = st.tnow ();
          conn_closed = false;
          peer = None }
      in
      st.conns <- conn :: st.conns;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

let read_conn st conn handle =
  let origin =
    { reply = (fun bytes -> if not conn.conn_closed then enqueue st conn bytes);
      learn =
        (fun pid ->
          if conn.peer = None then conn.peer <- Some pid;
          let r = route_for st pid in
          (* Adopt the inbound connection as the route if none exists:
             replies to a joiner ride the stream it opened. A configured
             endpoint (if any) is kept for reconnection later. *)
          match r.conn with
          | None ->
            r.conn <- Some conn;
            r.backoff <- 0.0;
            r.next_attempt <- 0.0
          | Some _ -> ()) }
  in
  let rec go () =
    if conn.conn_closed then ()
    else
      match Unix.read conn.fd st.read_buf 0 (Bytes.length st.read_buf) with
      | 0 -> kill_conn st conn ~failed:false ~reason:"EOF"
      | n -> (
        conn.last_progress <- st.tnow ();
        match Framing.feed conn.decoder st.read_buf ~off:0 ~len:n with
        | Ok frames ->
          if Framing.pending conn.decoder > 0 then
            st.tctr.partial_reads <- st.tctr.partial_reads + 1;
          List.iter
            (fun raw ->
              st.tctr.frames_received <- st.tctr.frames_received + 1;
              handle ~origin raw)
            frames;
          go ()
        | Error e ->
          (* Stream desync: no way to find the next boundary. *)
          st.tctr.stream_desyncs <- st.tctr.stream_desyncs + 1;
          kill_conn st conn ~failed:false
            ~reason:(Fmt.str "stream desync: %a" Codec.pp_error e))
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (e, _, _) ->
        kill_conn st conn ~failed:false
          ~reason:(Printf.sprintf "read: %s" (Unix.error_message e))
  in
  go ()

let tcp_drain st handle =
  accept_loop st;
  List.iter
    (fun conn ->
      if (not conn.conn_closed) && conn.state = Established then
        read_conn st conn handle)
    st.conns

let tcp ~cfg ~bind ~now ~log () =
  (* EPIPE must surface as a Unix_error on write, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (resolve bind);
  Unix.listen listener 64;
  Unix.set_nonblock listener;
  let st =
    { listener;
      tcp_bound = bound_endpoint listener ~bind;
      routes = Pid.Tbl.create 16;
      conns = [];
      cfg;
      tctr =
        { connects = 0;
          reconnects = 0;
          accepts = 0;
          conn_failures = 0;
          conn_drops = 0;
          half_open_drops = 0;
          stream_desyncs = 0;
          frames_sent = 0;
          frames_received = 0;
          partial_reads = 0;
          outbox_dropped = 0;
          tcp_no_route_drops = 0 };
      tlog = log;
      tnow = now;
      read_buf = Bytes.create 65536 }
  in
  { kind = "tcp";
    endpoint = (fun () -> st.tcp_bound);
    send = (fun ~dst bytes -> tcp_send st ~dst bytes);
    add_peer =
      (fun pid ep ->
        let r = route_for st pid in
        r.ep <- Some ep);
    remove_peer =
      (fun pid ->
        (match Pid.Tbl.find_opt st.routes pid with
        | Some { conn = Some conn; _ } ->
          (* Graceful teardown of an excluded peer's stream: no counter,
             no backoff - the route itself is forgotten. *)
          conn.conn_closed <- true;
          (try Unix.close conn.fd with Unix.Unix_error _ -> ());
          st.conns <- List.filter (fun c -> c != conn) st.conns
        | _ -> ());
        Pid.Tbl.remove st.routes pid);
    rfds = (fun () -> st.listener :: List.map (fun c -> c.fd) st.conns);
    wfds =
      (fun () ->
        List.filter_map
          (fun c ->
            match c.state with
            | Connecting _ -> Some c.fd
            | Established -> if Queue.is_empty c.outq then None else Some c.fd)
          st.conns);
    next_deadline = (fun () -> tcp_next_deadline st);
    tick = (fun ~now -> tcp_tick st ~now);
    drain = (fun handle -> tcp_drain st handle);
    counters =
      (fun () ->
        [ ("connects", st.tctr.connects);
          ("reconnects", st.tctr.reconnects);
          ("accepts", st.tctr.accepts);
          ("conn_failures", st.tctr.conn_failures);
          ("conn_drops", st.tctr.conn_drops);
          ("half_open_drops", st.tctr.half_open_drops);
          ("stream_desyncs", st.tctr.stream_desyncs);
          ("frames_sent", st.tctr.frames_sent);
          ("frames_received", st.tctr.frames_received);
          ("partial_reads", st.tctr.partial_reads);
          ("outbox_dropped", st.tctr.outbox_dropped);
          ("no_route_drops", st.tctr.tcp_no_route_drops) ]);
    close =
      (fun () ->
        (* Best-effort final flush, then release everything. *)
        List.iter (fun c -> flush st c) st.conns;
        List.iter
          (fun c ->
            c.conn_closed <- true;
            try Unix.close c.fd with Unix.Unix_error _ -> ())
          st.conns;
        st.conns <- [];
        try Unix.close st.listener with Unix.Unix_error _ -> ()) }

let make ?(tcp_config = default_tcp) ~kind ~bind ~now ~log () =
  match kind with
  | Udp -> udp ~bind ~log ()
  | Tcp -> tcp ~cfg:tcp_config ~bind ~now ~log ()
