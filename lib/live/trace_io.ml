(* Durable event logs for live nodes, and their reassembly into one global
   trace.

   Each node appends every trace event to its log file as one line of JSON
   (the same shape [Export.json_of_event] gives the sim's exports) and
   flushes per line: a SIGKILLed node's log is complete up to its last
   recorded event, except possibly for one torn final line, which the
   reader tolerates and drops.

   Reassembly merges per-node logs into a single [Trace.t] ordered by
   (wall time, owner, local index). Nodes stamp events with one
   monotonicized absolute clock (see [Clock]), and each owner's own events
   are totally ordered by local index, so this merge is a legal
   linearization of the real execution - exactly what [Checker.check_run]
   expects. Cross-node wall-clock skew can reorder *concurrent* events,
   which the checker's properties are insensitive to by construction (they
   are per-owner or causality-based). *)

open Gmp_base
open Gmp_causality
open Gmp_core
module J = Json

(* ---- writing ---- *)

type writer = { oc : out_channel; mutable closed : bool }

let attach trace ~path =
  let oc = open_out path in
  let w = { oc; closed = false } in
  Trace.set_on_record trace (fun e ->
      if not w.closed then begin
        output_string w.oc (J.to_compact_string (Export.json_of_event e));
        output_char w.oc '\n';
        flush w.oc
      end);
  w

(* Summary lines are JSON objects without an "event" member, written at
   clean shutdown. They are not trace events - the reader skips anything
   event-less when reassembling, so new summary kinds can appear without
   breaking old readers - and a SIGKILLed node simply has none, which the
   harvest treats as "no summary". *)

let write_summary w fields =
  if not w.closed then begin
    output_string w.oc (J.to_compact_string (J.obj fields));
    output_char w.oc '\n';
    flush w.oc
  end

let counters_json counters =
  J.obj (List.map (fun (k, v) -> (k, J.int v)) counters)

let write_arq w ~pid counters =
  (* ARQ and fault-injection counters. [read_arq] extracts this line. *)
  write_summary w
    [ ("arq", J.string (Pid.to_string pid)); ("counters", counters_json counters) ]

let write_transport w ~pid ~kind counters =
  (* The transport's own counters (datagrams or connections/frames);
     [read_transport] extracts this line. *)
  write_summary w
    [ ("transport", J.string (Pid.to_string pid));
      ("kind", J.string kind);
      ("counters", counters_json counters) ]

let write_metrics w ~pid ~at snapshot =
  (* A full registry snapshot. Periodic lines and the shutdown line share
     this shape; [read_metrics] takes the last one (most complete). *)
  write_summary w
    [ ("metrics", J.string (Pid.to_string pid));
      ("at", J.float at);
      ("snapshot", Gmp_obs.Obs.Snapshot.to_json snapshot) ]

let close w =
  if not w.closed then begin
    w.closed <- true;
    close_out w.oc
  end

(* ---- reading ---- *)

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let pid_of_json j =
  match J.to_string_opt j with
  | None -> fail "pid is not a string"
  | Some s -> (
    match Pid.of_string s with
    | Some p -> Ok p
    | None -> fail "bad pid %S" s)

let field name conv j =
  match J.member name j with
  | None -> fail "missing field %S" name
  | Some v -> conv v

let int_field name j =
  field name (fun v ->
      match J.to_int_opt v with
      | Some i -> Ok i
      | None -> fail "field %S is not an int" name) j

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
    let* y = f x in
    let* ys = map_result f xs in
    Ok (y :: ys)

let vc_of_json j =
  match J.to_obj_opt j with
  | None -> fail "vc is not an object"
  | Some fields ->
    let* entries =
      map_result
        (fun (k, v) ->
          match (Pid.of_string k, J.to_int_opt v) with
          | Some p, Some n -> Ok (p, n)
          | _ -> fail "bad vc entry %S" k)
        fields
    in
    Ok (Vector_clock.of_list entries)

let op_of_json j =
  match (J.member "add" j, J.member "remove" j) with
  | Some p, None ->
    let* p = pid_of_json p in
    Ok (Types.Add p)
  | None, Some p ->
    let* p = pid_of_json p in
    Ok (Types.Remove p)
  | _ -> fail "bad op"

let kind_of_json j =
  let has name = J.member name j <> None in
  if has "faulty" then
    let* q = field "faulty" pid_of_json j in
    Ok (Trace.Faulty q)
  else if has "operating" then
    let* q = field "operating" pid_of_json j in
    Ok (Trace.Operating q)
  else if has "removed" then
    let* target = field "removed" pid_of_json j in
    let* new_ver = int_field "ver" j in
    Ok (Trace.Removed { target; new_ver })
  else if has "added" then
    let* target = field "added" pid_of_json j in
    let* new_ver = int_field "ver" j in
    Ok (Trace.Added { target; new_ver })
  else if has "installed" then
    let* ver = int_field "installed" j in
    let* view_members =
      field "view"
        (fun v ->
          match J.to_list_opt v with
          | Some xs -> map_result pid_of_json xs
          | None -> fail "view is not a list")
        j
    in
    Ok (Trace.Installed { ver; view_members })
  else if has "quit" then
    let* reason =
      field "quit"
        (fun v ->
          match J.to_string_opt v with
          | Some s -> Ok s
          | None -> fail "quit reason is not a string")
        j
    in
    Ok (Trace.Quit reason)
  else if has "crashed" then Ok Trace.Crashed
  else if has "initiated_reconf" then
    let* at_ver = int_field "initiated_reconf" j in
    Ok (Trace.Initiated_reconf { at_ver })
  else if has "proposed" then
    let* target_ver = int_field "proposed" j in
    let* ops =
      field "ops"
        (fun v ->
          match J.to_list_opt v with
          | Some xs -> map_result op_of_json xs
          | None -> fail "ops is not a list")
        j
    in
    Ok (Trace.Proposed { target_ver; ops })
  else if has "committed" then
    let* ver = int_field "committed" j in
    let* commit_kind =
      field "kind"
        (fun v ->
          match J.to_string_opt v with
          | Some "update" -> Ok `Update
          | Some "reconf" -> Ok `Reconf
          | _ -> fail "bad commit kind")
        j
    in
    Ok (Trace.Committed { ver; commit_kind })
  else if has "became_mgr" then
    let* at_ver = int_field "became_mgr" j in
    Ok (Trace.Became_mgr { at_ver })
  else if has "violation" then
    let* v =
      field "violation"
        (fun v ->
          match J.to_string_opt v with
          | Some s -> Ok s
          | None -> fail "violation is not a string")
        j
    in
    Ok (Trace.Violation v)
  else fail "unrecognized event kind"

let event_of_json j : (Trace.event, string) result =
  let* owner = field "owner" pid_of_json j in
  let* index = int_field "index" j in
  let* time =
    field "time"
      (fun v ->
        match J.to_float_opt v with
        | Some f -> Ok f
        | None -> fail "time is not a number")
      j
  in
  let* vc = field "vc" vc_of_json j in
  let* kind = field "event" kind_of_json j in
  Ok { Trace.owner; index; time; vc; kind }

let event_of_line line =
  let* j = J.of_string line in
  event_of_json j

(* Read one node's log. A process killed mid-write leaves at most one torn
   line, necessarily the last: a parse failure there is dropped silently,
   anywhere else it is a real error. *)
let read_file path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then lines := line :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  let total = List.length lines in
  (* Any parsed object without an "event" member is a summary line -
     including kinds this reader has never heard of, so logs from newer
     writers still reassemble. *)
  let is_summary_line line =
    match J.of_string line with
    | Ok j -> J.to_obj_opt j <> None && J.member "event" j = None
    | Error _ -> false
  in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if is_summary_line line then go (i + 1) acc rest
      else (
        match event_of_line line with
        | Ok e -> go (i + 1) (e :: acc) rest
        | Error m ->
          if i = total - 1 then Ok (List.rev acc) (* torn final line *)
          else fail "%s:%d: %s" path (i + 1) m)
  in
  go 0 [] lines

(* A counters summary of one node's log, if it shut down cleanly enough
   to write one. Unreadable files and torn lines read as "no summary".
   [extract] judges each parsed line; the last match wins. *)
let scan_summary path extract =
  match
    let ic = open_in path in
    let found = ref None in
    (try
       while true do
         let line = input_line ic in
         match J.of_string line with
         | Ok j -> ( match extract j with None -> () | some -> found := some)
         | Error _ -> ()
       done
     with End_of_file -> close_in ic);
    !found
  with
  | exception Sys_error _ -> None
  | r -> r

let counters_of_json j =
  Option.map
    (List.filter_map (fun (k, v) ->
         Option.map (fun n -> (k, n)) (J.to_int_opt v)))
    (Option.bind (J.member "counters" j) J.to_obj_opt)

(* Canonicalize counter keys from logs written before the metric names
   were unified with the registry's, so every consumer sees exactly one
   scheme ([arq.*] / [netem.*] / [transport.*]) regardless of the
   writer's vintage. Current writers already emit canonical keys. *)
let canonical_arq_key = function
  | "data_frames_sent" -> "arq.data_frames_sent"
  | "retransmits" -> "arq.retransmits"
  | "retransmit_rounds" -> "arq.retransmit_rounds"
  | "dups_suppressed" -> "arq.dups_suppressed"
  | "out_of_window_drops" -> "arq.out_of_window_drops"
  | "netem_dropped" -> "netem.dropped"
  | "netem_duplicated" -> "netem.duplicated"
  | "netem_reordered" -> "netem.reordered"
  | k -> k

let canonical_transport_key k =
  if String.length k >= 10 && String.sub k 0 10 = "transport." then k
  else "transport." ^ k

let read_arq path =
  scan_summary path (fun j ->
      if J.member "arq" j <> None then
        Option.map
          (List.map (fun (k, v) -> (canonical_arq_key k, v)))
          (counters_of_json j)
      else None)

let read_transport path =
  scan_summary path (fun j ->
      match
        (J.member "transport" j, Option.bind (J.member "kind" j) J.to_string_opt)
      with
      | Some _, Some kind ->
        Option.map
          (fun cs ->
            (kind, List.map (fun (k, v) -> (canonical_transport_key k, v)) cs))
          (counters_of_json j)
      | _ -> None)

let read_metrics path =
  Option.bind
    (scan_summary path (fun j ->
         match J.member "metrics" j with
         | Some _ -> J.member "snapshot" j
         | None -> None))
    (fun snap -> Result.to_option (Gmp_obs.Obs.Snapshot.of_json snap))

(* ---- reassembly ---- *)

let compare_events (a : Trace.event) (b : Trace.event) =
  match Float.compare a.time b.time with
  | 0 -> (
    match Pid.compare a.owner b.owner with
    | 0 -> Int.compare a.index b.index
    | c -> c)
  | c -> c

let reassemble per_node =
  let all = List.concat per_node in
  let sorted = List.stable_sort compare_events all in
  let trace = Trace.create () in
  List.iter
    (fun (e : Trace.event) ->
      Trace.record trace ~owner:e.owner ~index:e.index ~time:e.time ~vc:e.vc
        e.kind)
    sorted;
  trace

let read_and_reassemble paths =
  let* per_node = map_result read_file paths in
  Ok (reassemble per_node)
