(** Command-line spec parsing shared by [gmp-node] and [gmp-cluster].

    Fully validated at parse time: a malformed peer or netem flag dies
    as a clean cmdliner error before any process is spawned, never as a
    half-started cluster tripping over a bad key mid-run. *)

open Gmp_base

val parse_peer : string -> (Pid.t * Gmp_net.Endpoint.t, string) result
(** ["PID:PORT"] (loopback) or ["PID:HOST:PORT"]. *)

val parse_peers : string -> ((Pid.t * Gmp_net.Endpoint.t) list, string) result
(** Comma-separated {!parse_peer} list; must be nonempty. *)

type netem_action = {
  at_time : float;  (** seconds into the run, [>= 0] *)
  target : Pid.t option;  (** [None] = every node ("all") *)
  spec : Codec.netem_spec;
}

val parse_netem_action : string -> (netem_action, string) result
(** ["T:TARGET:k=v,..."] — retune fault injection at time [T] on
    [TARGET] (a pid, or ["all"]). Keys: [loss] (in [\[0,1)]), [latency],
    [jitter] (seconds, [>= 0]), [dup], [reorder] (in [\[0,1\]]), [peer]
    (restrict to one incoming link). Unknown keys, malformed floats and
    out-of-range values are all rejected with messages naming the
    offending key; the ranges mirror the codec's decode-side validation,
    so an action that parses also encodes. *)
