(** Discrete-event simulation engine.

    Virtual time advances only when events fire; the simulated system is
    otherwise infinitely fast. This realizes the paper's asynchronous model:
    "time" exists only as an approximate tool for triggering detections, never
    for reasoning about state.

    Determinism contract: by default, events at equal timestamps fire in
    insertion order, so a run is a pure function of the schedule calls. A
    {!set_picker} overrides the tie-break within a {e ready window}: every
    live event whose fire time is within [slack] of the earliest pending one
    is offered as an interchangeable choice, and events fired from a window
    fire at the window's base time — so reorderings within a window produce
    time-identical downstream schedules. The schedule explorer builds on
    this. *)

type t

type handle
(** A scheduled event, cancellable. *)

exception Stop
(** Raise from inside an event action to stop [run] immediately. *)

val create : unit -> t

val now : t -> float
(** Current virtual time. *)

val fired_events : t -> int
(** Number of events fired so far (cancelled events excluded). *)

val pending_events : t -> int
(** Number of scheduled, not-yet-fired, not-cancelled events. *)

val queue_length : t -> int
(** Entries physically in the queue, live plus not-yet-collected tombstones.
    Compaction keeps this below twice {!pending_events} (once past a small
    constant threshold). *)

val peak_queue_length : t -> int
(** High-water mark of {!queue_length}: the peak heap footprint of the run. *)

val schedule : ?proc:int -> ?chan:int -> t -> delay:float -> (unit -> unit) -> handle
(** Schedule an action [delay] time units from now. [proc] tags the process
    slot the event acts on and [chan] the FIFO channel it belongs to (both
    default to [-1] = untagged); tags only matter to {!ready} and never
    influence default execution. *)

val schedule_at : ?proc:int -> ?chan:int -> t -> time:float -> (unit -> unit) -> handle
(** Schedule at an absolute time; raises [Invalid_argument] if in the past. *)

val cancel : t -> handle -> unit
(** Cancel a scheduled event (idempotent). *)

val is_cancelled : handle -> bool
(** True once the event was cancelled {e or} consumed by {!fire}. *)

val fire_time : handle -> float

val proc_of : handle -> int
(** Process-slot tag given at schedule time, [-1] if untagged. *)

val chan_of : handle -> int
(** FIFO-channel tag given at schedule time, [-1] if untagged. *)

val set_slack : t -> float -> unit
(** Width of the ready window offered by {!ready}. Default [0.0]: only
    events tied with the earliest timestamp are interchangeable. *)

val set_picker : ?slack:float -> t -> (handle list -> handle) -> unit
(** Install a picker consulted by {!step} whenever the ready window holds
    more than one candidate. The picker must return one of the offered
    handles (checked). *)

val clear_picker : t -> unit
(** Return to the default deterministic (time, seq) order. *)

val ready : t -> handle list
(** The current ready window: live events within [slack] of the earliest
    pending one, sorted by (time, seq), filtered to per-channel fronts (for
    events tagged with a channel, only the earliest per channel appears —
    FIFO order within a channel is not a degree of freedom). Empty iff no
    live events remain. *)

val fire : t -> handle -> unit
(** Consume and run one ready event, advancing [now] to the window base (so
    same-window reorderings are time-identical). Raises [Invalid_argument]
    if the handle was already fired or cancelled. *)

val fold_live : t -> init:'a -> f:('a -> handle -> 'a) -> 'a
(** Fold over every live (scheduled, unfired, uncancelled) event, in
    unspecified order. Used to fingerprint pending-event state. *)

(** {2 Checkpoint / restore}

    A checkpoint captures the event queue (handles by reference plus each
    handle's consumed/cancelled flag), virtual time, the fired/live counters
    and the ready-window state — O(queue length) array blits. Restoring puts
    the flags back {e in place} on the same handle records, so references
    held outside the engine (e.g. a pending-timer handle) remain valid and
    cancellable; handles scheduled after the capture are dropped. The picker
    and [max_steps] harness settings are not captured. A checkpoint stays
    valid across any number of restores. *)

type checkpoint

val checkpoint : t -> checkpoint
val restore : t -> checkpoint -> unit

val step : t -> bool
(** Fire the next event; [false] when the queue is empty. With a picker
    installed, the next event is chosen from {!ready} via the picker. *)

val run : ?max_steps:int -> ?until:float -> t -> unit
(** Fire events until quiescence, the [until] horizon, or [max_steps]
    (default 10 million, at which point it fails — a livelock guard). When the
    horizon stops the run, [now] is advanced to the horizon. *)

val run_until : t -> float -> unit
(** [run_until t horizon] is [run ~until:horizon t]. *)
