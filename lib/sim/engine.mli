(** Discrete-event simulation engine.

    Virtual time advances only when events fire; the simulated system is
    otherwise infinitely fast. This realizes the paper's asynchronous model:
    "time" exists only as an approximate tool for triggering detections, never
    for reasoning about state. *)

type t

type handle
(** A scheduled event, cancellable. *)

exception Stop
(** Raise from inside an event action to stop [run] immediately. *)

val create : unit -> t

val now : t -> float
(** Current virtual time. *)

val fired_events : t -> int
(** Number of events fired so far (cancelled events excluded). *)

val pending_events : t -> int
(** Number of scheduled, not-yet-fired, not-cancelled events. *)

val queue_length : t -> int
(** Entries physically in the queue, live plus not-yet-collected tombstones.
    Compaction keeps this below twice {!pending_events} (once past a small
    constant threshold). *)

val peak_queue_length : t -> int
(** High-water mark of {!queue_length}: the peak heap footprint of the run. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** Schedule an action [delay] time units from now. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Schedule at an absolute time; raises [Invalid_argument] if in the past. *)

val cancel : t -> handle -> unit
(** Cancel a scheduled event (idempotent). *)

val is_cancelled : handle -> bool
val fire_time : handle -> float

val step : t -> bool
(** Fire the next event; [false] when the queue is empty. *)

val run : ?max_steps:int -> ?until:float -> t -> unit
(** Fire events until quiescence, the [until] horizon, or [max_steps]
    (default 10 million, at which point it fails — a livelock guard). When the
    horizon stops the run, [now] is advanced to the horizon. *)

val run_until : t -> float -> unit
(** [run_until t horizon] is [run ~until:horizon t]. *)
