(* Discrete-event simulation engine. Time is virtual: [now] jumps to the
   timestamp of each fired event. Handles are cancellable so that timers can
   be reset cheaply: cancelled events become tombstones in the queue and are
   skipped when popped. When tombstones outnumber live entries the queue is
   compacted in place, so long runs with heavy timer churn keep the heap
   proportional to the number of live timers.

   Determinism contract: without a picker, ties at equal timestamps break by
   insertion sequence, so a run is a pure function of the schedule calls. A
   picker (see [set_picker]) overrides the tie-break *within a ready window*:
   all live events whose fire time falls within [slack] of the earliest one
   are offered as interchangeable choices, and every event fired out of a
   window fires at the window's base time. Reordering events inside a window
   therefore produces time-identical downstream schedules, which is what lets
   the explorer treat such reorderings as commuting. *)

(* Handle and action live in one record so a schedule is a single allocation
   and the queue's payload column holds the handle directly: [step] pops the
   handle, reads [fire_at] from it, and fires — no per-event wrapper.

   [proc]/[chan] are scheduling tags for the explorer: the process slot an
   event acts on (-1 = global or unknown) and the FIFO channel it belongs to
   (-1 = not a channel delivery). They never influence default execution. *)
type handle = {
  mutable cancelled : bool;
  fire_at : float;
  proc : int;
  chan : int;
  action : unit -> unit;
}

type t = {
  queue : handle Event_queue.t;
  mutable now : float;
  mutable fired : int;
  mutable live : int; (* scheduled and not cancelled *)
  mutable slack : float;
  mutable window_base : float; (* NaN = no open window *)
  mutable picker : (handle list -> handle) option;
}

exception Stop

let create () =
  { queue = Event_queue.create ();
    now = 0.0;
    fired = 0;
    live = 0;
    slack = 0.0;
    window_base = Float.nan;
    picker = None }

let now t = t.now

let fired_events t = t.fired

let pending_events t = t.live

let queue_length t = Event_queue.length t.queue

let peak_queue_length t = Event_queue.max_length t.queue

(* Compaction policy: once the queue holds at least [compact_threshold]
   entries and more than half of them are tombstones, rebuild it keeping only
   live events. The rebuild is O(live + dead) and at least half the entries
   are dropped, so the cost amortizes to O(1) per cancellation. *)
let compact_threshold = 64

let maybe_compact t =
  let len = Event_queue.length t.queue in
  if len >= compact_threshold && len > 2 * t.live then
    Event_queue.filter_in_place t.queue (fun h -> not h.cancelled)

let schedule_at ?(proc = -1) ?(chan = -1) t ~time action =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)"
         time t.now);
  let handle = { cancelled = false; fire_at = time; proc; chan; action } in
  Event_queue.add t.queue ~time handle;
  t.live <- t.live + 1;
  handle

let schedule ?proc ?chan t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at ?proc ?chan t ~time:(t.now +. delay) action

let cancel t handle =
  if not handle.cancelled then begin
    handle.cancelled <- true;
    t.live <- t.live - 1;
    maybe_compact t
  end

let is_cancelled handle = handle.cancelled

let fire_time handle = handle.fire_at

let proc_of handle = handle.proc

let chan_of handle = handle.chan

(* Timestamp of the earliest *live* event, or NaN when the queue is drained:
   tombstones at the top of the queue are discarded on the way (a cancelled
   timer past a horizon must not mask a live event behind it). NaN rather
   than an option keeps the per-step horizon check allocation-free; every
   comparison against NaN is false, which is exactly the "no pending event"
   behaviour the horizon check wants. *)
let rec peek_live_time t =
  if Event_queue.is_empty t.queue then Float.nan
  else begin
    let h = Event_queue.peek_exn t.queue in
    if h.cancelled then begin
      ignore (Event_queue.pop_exn t.queue : handle);
      peek_live_time t
    end
    else h.fire_at
  end

let set_slack t slack =
  if slack < 0.0 || Float.is_nan slack then invalid_arg "Engine.set_slack";
  t.slack <- slack

let set_picker ?slack t pick =
  (match slack with Some s -> set_slack t s | None -> ());
  t.picker <- Some pick

let clear_picker t = t.picker <- None

(* The window stays anchored while live events remain inside it; it re-anchors
   to the earliest live event when it empties, or when something was scheduled
   *before* the base (an injection at a virtual time earlier than the frozen
   base — possible because [now] only catches up to the base on fire). *)
let refresh_window t =
  let min_t = peek_live_time t in
  if Float.is_nan min_t then t.window_base <- Float.nan
  else if
    Float.is_nan t.window_base
    || min_t < t.window_base
    || min_t > t.window_base +. t.slack
  then t.window_base <- min_t

let ready t =
  refresh_window t;
  if Float.is_nan t.window_base then []
  else begin
    let hi = t.window_base +. t.slack in
    let acc = ref [] in
    Event_queue.iter_entries t.queue (fun ~time ~seq (h : handle) ->
        if (not h.cancelled) && time <= hi then acc := (time, seq, h) :: !acc);
    let sorted =
      List.sort
        (fun (t1, s1, _) (t2, s2, _) ->
          if t1 < t2 then -1
          else if t1 > t2 then 1
          else compare (s1 : int) s2)
        !acc
    in
    (* FIFO fronts: per-channel delivery order is fixed, so only the earliest
       event of each channel is a genuine choice; later ones are hidden
       behind it. Events without a channel tag are always choices. *)
    let seen_chans = Hashtbl.create 16 in
    List.filter_map
      (fun (_, _, h) ->
        if h.chan < 0 then Some h
        else if Hashtbl.mem seen_chans h.chan then None
        else begin
          Hashtbl.add seen_chans h.chan ();
          Some h
        end)
      sorted
  end

let fire t h =
  if h.cancelled then
    invalid_arg "Engine.fire: event already fired or cancelled";
  (* Consume via the tombstone mechanism: the queue entry is skipped when it
     surfaces, exactly like a cancellation. *)
  h.cancelled <- true;
  t.live <- t.live - 1;
  let base =
    if Float.is_nan t.window_base then h.fire_at
    else Float.min t.window_base h.fire_at
  in
  if base > t.now then t.now <- base;
  t.fired <- t.fired + 1;
  h.action ();
  maybe_compact t

(* A checkpoint copies the queue (payloads by reference — they ARE the
   handles) plus, per queued handle, its [cancelled] flag at capture time.
   Restore puts the flags back *in place* on those same handle records, so
   outstanding references to them (a detector's pending-timer wrapper, the
   explorer's sleep sets) stay valid, and an event consumed after the capture
   becomes schedulable again. Handles scheduled after the capture simply
   vanish with the queue restore. The picker is deliberately not part of the
   state: it is harness configuration, not world state. *)

type checkpoint = {
  cp_queue : handle Event_queue.checkpoint;
  cp_flags : bool array; (* cancelled flag per queued handle, in heap order *)
  cp_now : float;
  cp_fired : int;
  cp_live : int;
  cp_slack : float;
  cp_window_base : float;
}

let checkpoint t =
  let flags = Array.make (Event_queue.length t.queue) false in
  let i = ref 0 in
  Event_queue.iter_entries t.queue (fun ~time:_ ~seq:_ (h : handle) ->
      flags.(!i) <- h.cancelled;
      incr i);
  { cp_queue = Event_queue.checkpoint t.queue;
    cp_flags = flags;
    cp_now = t.now;
    cp_fired = t.fired;
    cp_live = t.live;
    cp_slack = t.slack;
    cp_window_base = t.window_base }

let restore t cp =
  Event_queue.restore t.queue cp.cp_queue;
  (* [Event_queue.checkpoint] and [iter_entries] both walk slots in heap
     order, so flag [i] belongs to the handle now back in slot [i]. *)
  let i = ref 0 in
  Event_queue.iter_entries t.queue (fun ~time:_ ~seq:_ (h : handle) ->
      h.cancelled <- cp.cp_flags.(!i);
      incr i);
  t.now <- cp.cp_now;
  t.fired <- cp.cp_fired;
  t.live <- cp.cp_live;
  t.slack <- cp.cp_slack;
  t.window_base <- cp.cp_window_base

let fold_live t ~init ~f =
  let acc = ref init in
  Event_queue.iter_entries t.queue (fun ~time:_ ~seq:_ (h : handle) ->
      if not h.cancelled then acc := f !acc h);
  !acc

let default_step t =
  let rec next () =
    if Event_queue.is_empty t.queue then false
    else begin
      let h = Event_queue.pop_exn t.queue in
      if h.cancelled then next ()
      else begin
        (* Mark consumed: a later [cancel] on this handle must be a no-op,
           not a second decrement of [live]. *)
        h.cancelled <- true;
        t.now <- h.fire_at;
        t.live <- t.live - 1;
        t.fired <- t.fired + 1;
        h.action ();
        true
      end
    end
  in
  next ()

let step t =
  match t.picker with
  | None -> default_step t
  | Some pick -> (
    match ready t with
    | [] -> false
    | [ h ] ->
      fire t h;
      true
    | candidates ->
      let h = pick candidates in
      if not (List.memq h candidates) then
        invalid_arg "Engine.step: picker returned a non-candidate event";
      fire t h;
      true)

let default_max_steps = 10_000_000

let run ?(max_steps = default_max_steps) ?until t =
  let horizon_reached () =
    match until with
    | None -> false
    | Some horizon -> peek_live_time t > horizon
  in
  let rec loop steps =
    if steps >= max_steps then
      failwith
        (Printf.sprintf
           "Engine.run: exceeded %d steps at t=%g - likely a livelock"
           max_steps t.now)
    else if horizon_reached () then
      (match until with Some horizon when horizon > t.now -> t.now <- horizon | _ -> ())
    else
      match step t with
      | exception Stop -> ()
      | true -> loop (steps + 1)
      | false ->
        (* Queue drained: quiescent. *)
        (match until with Some horizon when horizon > t.now -> t.now <- horizon | _ -> ())
  in
  loop 0

let run_until t horizon = run ~until:horizon t
