(* Discrete-event simulation engine. Time is virtual: [now] jumps to the
   timestamp of each fired event. Handles are cancellable so that timers can
   be reset cheaply: cancelled events become tombstones in the queue and are
   skipped when popped. When tombstones outnumber live entries the queue is
   compacted in place, so long runs with heavy timer churn keep the heap
   proportional to the number of live timers. *)

(* Handle and action live in one record so a schedule is a single allocation
   and the queue's payload column holds the handle directly: [step] pops the
   handle, reads [fire_at] from it, and fires — no per-event wrapper. *)
type handle = { mutable cancelled : bool; fire_at : float; action : unit -> unit }

type t = {
  queue : handle Event_queue.t;
  mutable now : float;
  mutable fired : int;
  mutable live : int; (* scheduled and not cancelled *)
}

exception Stop

let create () = { queue = Event_queue.create (); now = 0.0; fired = 0; live = 0 }

let now t = t.now

let fired_events t = t.fired

let pending_events t = t.live

let queue_length t = Event_queue.length t.queue

let peak_queue_length t = Event_queue.max_length t.queue

(* Compaction policy: once the queue holds at least [compact_threshold]
   entries and more than half of them are tombstones, rebuild it keeping only
   live events. The rebuild is O(live + dead) and at least half the entries
   are dropped, so the cost amortizes to O(1) per cancellation. *)
let compact_threshold = 64

let maybe_compact t =
  let len = Event_queue.length t.queue in
  if len >= compact_threshold && len > 2 * t.live then
    Event_queue.filter_in_place t.queue (fun h -> not h.cancelled)

let schedule_at t ~time action =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)"
         time t.now);
  let handle = { cancelled = false; fire_at = time; action } in
  Event_queue.add t.queue ~time handle;
  t.live <- t.live + 1;
  handle

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now +. delay) action

let cancel t handle =
  if not handle.cancelled then begin
    handle.cancelled <- true;
    t.live <- t.live - 1;
    maybe_compact t
  end

let is_cancelled handle = handle.cancelled

let fire_time handle = handle.fire_at

let step t =
  let rec next () =
    if Event_queue.is_empty t.queue then false
    else begin
      let h = Event_queue.pop_exn t.queue in
      if h.cancelled then next ()
      else begin
        t.now <- h.fire_at;
        t.live <- t.live - 1;
        t.fired <- t.fired + 1;
        h.action ();
        true
      end
    end
  in
  next ()

(* Timestamp of the earliest *live* event, or NaN when the queue is drained:
   tombstones at the top of the queue are discarded on the way (a cancelled
   timer past a horizon must not mask a live event behind it). NaN rather
   than an option keeps the per-step horizon check allocation-free; every
   comparison against NaN is false, which is exactly the "no pending event"
   behaviour the horizon check wants. *)
let rec peek_live_time t =
  if Event_queue.is_empty t.queue then Float.nan
  else begin
    let h = Event_queue.peek_exn t.queue in
    if h.cancelled then begin
      ignore (Event_queue.pop_exn t.queue : handle);
      peek_live_time t
    end
    else h.fire_at
  end

let default_max_steps = 10_000_000

let run ?(max_steps = default_max_steps) ?until t =
  let horizon_reached () =
    match until with
    | None -> false
    | Some horizon -> peek_live_time t > horizon
  in
  let rec loop steps =
    if steps >= max_steps then
      failwith
        (Printf.sprintf
           "Engine.run: exceeded %d steps at t=%g - likely a livelock"
           max_steps t.now)
    else if horizon_reached () then
      (match until with Some horizon when horizon > t.now -> t.now <- horizon | _ -> ())
    else
      match step t with
      | exception Stop -> ()
      | true -> loop (steps + 1)
      | false ->
        (* Queue drained: quiescent. *)
        (match until with Some horizon when horizon > t.now -> t.now <- horizon | _ -> ())
  in
  loop 0

let run_until t horizon = run ~until:horizon t
