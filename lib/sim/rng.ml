(* Deterministic splittable PRNG (splitmix64). All randomness in a simulation
   flows from a single seed so that every run is exactly replayable. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

type checkpoint = int64

let checkpoint t = t.state
let restore t state = t.state <- state

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)
(* 62 non-negative bits *)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let float t bound =
  if bound < 0.0 then invalid_arg "Rng.float: bound must be non-negative";
  let max62 = 4611686018427387904.0 in
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 2) /. max62 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform: hi < lo";
  lo +. float t (hi -. lo)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
