(* Binary min-heap keyed by (time, seq). The sequence number breaks ties so
   that simultaneous events fire in insertion order, which keeps runs
   deterministic regardless of heap internals.

   Struct-of-arrays layout: times live in a flat [float array] (unboxed),
   seqs in an [int array], payloads in an [Obj.t array]. [add]/[pop] allocate
   nothing (amortized), and the GC scans only the payload column. Vacated
   payload slots are overwritten with [sentinel] so popped payloads (often
   closures capturing protocol state) are not retained by the backing array.

   [sentinel] is an immediate ([Obj.repr ()]), so the payload array is never
   a flat float array even when ['a = float]; generic reads/writes on it are
   safe. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable payloads : Obj.t array;
  (* Indices [0 .. size-1] of the three parallel arrays form a valid
     min-heap; payload slots beyond hold [sentinel]. *)
  mutable size : int;
  mutable next_seq : int;
  mutable max_size : int; (* high-water mark, for capacity accounting *)
}

let sentinel : Obj.t = Obj.repr ()

let create () =
  { times = [||];
    seqs = [||];
    payloads = [||];
    size = 0;
    next_seq = 0;
    max_size = 0 }

let length t = t.size

let max_length t = t.max_size

let is_empty t = t.size = 0

(* Hole-based sifts: lift the moving entry into locals, shift blockers into
   the hole, write the entry once at its final slot. The float comparisons
   run on unboxed locals. *)

let sift_up t i =
  let tm = t.times.(i) and sq = t.seqs.(i) in
  let pl = t.payloads.(i) in
  let i = ref i in
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let parent = (!i - 1) / 2 in
    if tm < t.times.(parent) || (tm = t.times.(parent) && sq < t.seqs.(parent))
    then begin
      t.times.(!i) <- t.times.(parent);
      t.seqs.(!i) <- t.seqs.(parent);
      t.payloads.(!i) <- t.payloads.(parent);
      i := parent
    end
    else stop := true
  done;
  t.times.(!i) <- tm;
  t.seqs.(!i) <- sq;
  t.payloads.(!i) <- pl

let sift_down t i =
  let tm = t.times.(i) and sq = t.seqs.(i) in
  let pl = t.payloads.(i) in
  let i = ref i in
  let stop = ref false in
  while not !stop do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    (* Compare children against the moving entry (logically at [!i]). *)
    let smallest = ref !i in
    let sm_tm = ref tm and sm_sq = ref sq in
    if
      l < t.size
      && (t.times.(l) < !sm_tm || (t.times.(l) = !sm_tm && t.seqs.(l) < !sm_sq))
    then begin
      smallest := l;
      sm_tm := t.times.(l);
      sm_sq := t.seqs.(l)
    end;
    if
      r < t.size
      && (t.times.(r) < !sm_tm || (t.times.(r) = !sm_tm && t.seqs.(r) < !sm_sq))
    then smallest := r;
    if !smallest <> !i then begin
      t.times.(!i) <- t.times.(!smallest);
      t.seqs.(!i) <- t.seqs.(!smallest);
      t.payloads.(!i) <- t.payloads.(!smallest);
      i := !smallest
    end
    else stop := true
  done;
  t.times.(!i) <- tm;
  t.seqs.(!i) <- sq;
  t.payloads.(!i) <- pl

let grow t =
  let capacity = Array.length t.times in
  let new_capacity = if capacity = 0 then 16 else capacity * 2 in
  let times = Array.make new_capacity 0.0 in
  let seqs = Array.make new_capacity 0 in
  let payloads = Array.make new_capacity sentinel in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.payloads 0 payloads 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.payloads <- payloads

let add t ~time payload =
  if time < 0.0 || Float.is_nan time then
    invalid_arg "Event_queue.add: bad time";
  if t.size = Array.length t.times then grow t;
  let i = t.size in
  t.times.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.payloads.(i) <- Obj.repr payload;
  t.next_seq <- t.next_seq + 1;
  t.size <- i + 1;
  if t.size > t.max_size then t.max_size <- t.size;
  sift_up t i

let peek_exn t =
  if t.size = 0 then invalid_arg "Event_queue.peek_exn: empty";
  (Obj.obj t.payloads.(0) : 'a)

let peek_time_exn t =
  if t.size = 0 then invalid_arg "Event_queue.peek_time_exn: empty";
  t.times.(0)

let peek_time t = if t.size = 0 then None else Some t.times.(0)

let peek t =
  if t.size = 0 then None else Some (t.times.(0), (Obj.obj t.payloads.(0) : 'a))

let pop_exn t =
  if t.size = 0 then invalid_arg "Event_queue.pop_exn: empty";
  let payload : 'a = Obj.obj t.payloads.(0) in
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then begin
    t.times.(0) <- t.times.(n);
    t.seqs.(0) <- t.seqs.(n);
    t.payloads.(0) <- t.payloads.(n);
    t.payloads.(n) <- sentinel;
    sift_down t 0
  end
  else t.payloads.(0) <- sentinel;
  payload

let pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) in
    let payload = pop_exn t in
    Some (time, payload)
  end

let clear t =
  Array.fill t.payloads 0 (Array.length t.payloads) sentinel;
  t.size <- 0

(* Drop every entry whose payload fails [pred], then re-establish the heap
   invariant bottom-up (O(n)). Sequence numbers are preserved so the firing
   order among survivors is unchanged. *)
let filter_in_place t pred =
  let kept = ref 0 in
  for i = 0 to t.size - 1 do
    if pred (Obj.obj t.payloads.(i) : 'a) then begin
      let k = !kept in
      t.times.(k) <- t.times.(i);
      t.seqs.(k) <- t.seqs.(i);
      t.payloads.(k) <- t.payloads.(i);
      incr kept
    end
  done;
  for i = !kept to t.size - 1 do
    t.payloads.(i) <- sentinel
  done;
  t.size <- !kept;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

(* Unordered scan of the live entries (heap order, not firing order). The
   explorer uses this to build ready sets; callers must not mutate the queue
   during the scan. *)
let iter_entries t f =
  for i = 0 to t.size - 1 do
    f ~time:t.times.(i) ~seq:t.seqs.(i) (Obj.obj t.payloads.(i) : 'a)
  done

(* Checkpoints copy the live prefix of the three parallel arrays; restore
   blits them back into whatever backing arrays the queue has now (growing
   if it has since shrunk below the captured size — it never does today, but
   capacity is not part of the observable state either way). Payload slots
   beyond the restored size are re-sentineled so entries added after the
   capture are not retained. *)

type 'a checkpoint = {
  cp_times : float array;
  cp_seqs : int array;
  cp_payloads : Obj.t array;
  cp_size : int;
  cp_next_seq : int;
  cp_max_size : int;
}

let checkpoint t =
  { cp_times = Array.sub t.times 0 t.size;
    cp_seqs = Array.sub t.seqs 0 t.size;
    cp_payloads = Array.sub t.payloads 0 t.size;
    cp_size = t.size;
    cp_next_seq = t.next_seq;
    cp_max_size = t.max_size }

let restore t cp =
  let n = cp.cp_size in
  if Array.length t.times < n then begin
    t.times <- Array.make n 0.0;
    t.seqs <- Array.make n 0;
    t.payloads <- Array.make n sentinel
  end;
  Array.blit cp.cp_times 0 t.times 0 n;
  Array.blit cp.cp_seqs 0 t.seqs 0 n;
  Array.blit cp.cp_payloads 0 t.payloads 0 n;
  Array.fill t.payloads n (Array.length t.payloads - n) sentinel;
  t.size <- n;
  t.next_seq <- cp.cp_next_seq;
  t.max_size <- cp.cp_max_size

let to_sorted_list t =
  (* Non-destructive drain: copy and pop. Used in tests only. *)
  if t.size = 0 then []
  else begin
    let copy =
      { times = Array.copy t.times;
        seqs = Array.copy t.seqs;
        payloads = Array.copy t.payloads;
        size = t.size;
        next_seq = t.next_seq;
        max_size = t.max_size }
    in
    let rec drain acc =
      match pop copy with
      | None -> List.rev acc
      | Some pair -> drain (pair :: acc)
    in
    drain []
  end
