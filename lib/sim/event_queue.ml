(* Binary min-heap keyed by (time, seq). The sequence number breaks ties so
   that simultaneous events fire in insertion order, which keeps runs
   deterministic regardless of heap internals.

   Slots are ['a entry option] so that vacated positions can be cleared:
   popped payloads (often closures capturing protocol state) must not stay
   reachable through the backing array, and [grow] must not seed fresh slots
   with a live entry. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry option array;
  (* [heap.(0 .. size-1)] is a valid min-heap of [Some _]; slots beyond are
     [None]. *)
  mutable size : int;
  mutable next_seq : int;
  mutable max_size : int; (* high-water mark, for capacity accounting *)
}

let create () = { heap = [||]; size = 0; next_seq = 0; max_size = 0 }

let length t = t.size

let max_length t = t.max_size

let is_empty t = t.size = 0

let get t i =
  match t.heap.(i) with
  | Some e -> e
  | None -> invalid_arg "Event_queue: vacated slot inside the heap"

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt (get t l) (get t !smallest) then smallest := l;
  if r < t.size && lt (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let capacity = Array.length t.heap in
  let new_capacity = if capacity = 0 then 16 else capacity * 2 in
  let fresh = Array.make new_capacity None in
  Array.blit t.heap 0 fresh 0 t.size;
  t.heap <- fresh

let add t ~time payload =
  if time < 0.0 || Float.is_nan time then
    invalid_arg "Event_queue.add: bad time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- Some entry;
  t.size <- t.size + 1;
  if t.size > t.max_size then t.max_size <- t.size;
  sift_up t (t.size - 1)

let peek_entry t = if t.size = 0 then None else Some (get t 0)

let peek_time t =
  match peek_entry t with None -> None | Some e -> Some e.time

let peek t =
  match peek_entry t with None -> None | Some e -> Some (e.time, e.payload)

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      t.heap.(t.size) <- None;
      sift_down t 0
    end
    else t.heap.(0) <- None;
    Some (top.time, top.payload)
  end

let clear t =
  Array.fill t.heap 0 (Array.length t.heap) None;
  t.size <- 0

(* Drop every entry whose payload fails [pred], then re-establish the heap
   invariant bottom-up (O(n)). Sequence numbers are preserved so the firing
   order among survivors is unchanged. *)
let filter_in_place t pred =
  let kept = ref 0 in
  for i = 0 to t.size - 1 do
    let e = get t i in
    if pred e.payload then begin
      t.heap.(!kept) <- Some e;
      incr kept
    end
  done;
  for i = !kept to t.size - 1 do
    t.heap.(i) <- None
  done;
  t.size <- !kept;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

let to_sorted_list t =
  (* Non-destructive drain: copy and pop. Used in tests only. *)
  if t.size = 0 then []
  else begin
    let copy =
      { heap = Array.copy t.heap;
        size = t.size;
        next_seq = t.next_seq;
        max_size = t.max_size }
    in
    let rec drain acc =
      match pop copy with
      | None -> List.rev acc
      | Some pair -> drain (pair :: acc)
    in
    drain []
  end
