(** Priority queue of timestamped events.

    Keyed by [(time, insertion sequence)]: events with equal timestamps fire
    in insertion order, so simulations are deterministic. Vacated slots are
    cleared so popped payloads (typically closures) are not retained by the
    backing array.

    Internally a struct-of-arrays heap (flat [float array] of times, [int
    array] of seqs, payload column): {!add}, {!pop_exn} and {!peek_exn}
    allocate nothing beyond amortized growth. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val max_length : 'a t -> int
(** High-water mark of {!length} over the queue's lifetime. *)

val is_empty : 'a t -> bool

val add : 'a t -> time:float -> 'a -> unit
(** Raises [Invalid_argument] on negative or NaN time. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest event, if any. *)

val peek : 'a t -> (float * 'a) option
(** The earliest event without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_exn : 'a t -> 'a
(** Payload of the earliest event without removing it; raises
    [Invalid_argument] on an empty queue. Allocation-free. *)

val peek_time_exn : 'a t -> float
(** Timestamp of the earliest event; raises [Invalid_argument] on an empty
    queue. *)

val pop_exn : 'a t -> 'a
(** Remove the earliest event and return its payload; raises
    [Invalid_argument] on an empty queue. Allocation-free. *)

val iter_entries : 'a t -> (time:float -> seq:int -> 'a -> unit) -> unit
(** Visit every queued entry with its timestamp and tie-breaking sequence
    number, in internal heap order (not firing order). O(n), allocation-free;
    the queue must not be mutated during the scan. *)

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Drop every entry whose payload fails the predicate, in O(n). Relative
    firing order of the survivors is unchanged. *)

val clear : 'a t -> unit

(** {2 Checkpoint / restore}

    A checkpoint is a flat copy of the live entries plus the scalar cursors
    (size, next sequence number, high-water mark) — O(length) blits, no
    per-entry allocation. Restoring blits the captured entries back over the
    queue; payloads are restored {e by reference}, so mutable payloads (such
    as {!Engine.handle}s) must have their own state restored by the caller.
    A checkpoint stays valid across any number of restores. *)

type 'a checkpoint

val checkpoint : 'a t -> 'a checkpoint
val restore : 'a t -> 'a checkpoint -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Non-destructive snapshot in firing order (for tests). *)
