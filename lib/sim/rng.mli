(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every source of randomness in a simulation is derived from a single seed,
    making runs exactly replayable: the same seed yields the same schedule of
    delays, crashes and choices. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val copy : t -> t
(** Independent copy with the same state. *)

type checkpoint
(** Immutable capture of the generator state (one word). *)

val checkpoint : t -> checkpoint
val restore : t -> checkpoint -> unit

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. Use one split
    stream per concern (delays, churn, …) so adding draws to one concern does
    not perturb the others. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean. *)

val uniform : t -> lo:float -> hi:float -> float

val pick : t -> 'a list -> 'a
(** Uniform choice. Raises [Invalid_argument] on the empty list. *)

val shuffle : t -> 'a list -> 'a list
