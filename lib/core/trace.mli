(** Run traces.

    Every protocol-relevant step of every process is recorded with its
    owner, local history index and vector clock, so {!Checker} can decide
    the GMP properties and {!Epistemic} can reason about consistent cuts. *)

open Gmp_base
open Gmp_causality

type kind =
  | Faulty of Pid.t  (** owner executed faulty(target) *)
  | Operating of Pid.t  (** owner learnt target is joining *)
  | Removed of { target : Pid.t; new_ver : int }
  | Added of { target : Pid.t; new_ver : int }
  | Installed of { ver : int; view_members : Pid.t list }
  | Quit of string  (** protocol-mandated quit, with reason *)
  | Crashed  (** injected real crash *)
  | Initiated_reconf of { at_ver : int }
  | Proposed of { target_ver : int; ops : Types.op list }
  | Committed of { ver : int; commit_kind : [ `Update | `Reconf ] }
  | Became_mgr of { at_ver : int }
  | Violation of string  (** broken runtime invariant; checkers flag these *)

type event = {
  owner : Pid.t;
  index : int;  (** owner's local history position *)
  time : float;
  vc : Vector_clock.t;
  kind : kind;
}

type t

val create : unit -> t

val record :
  t -> owner:Pid.t -> index:int -> time:float -> vc:Vector_clock.t -> kind -> unit

val set_on_record : t -> (event -> unit) -> unit
(** Install an observer called with every event as it is recorded (after
    indexing). A live node uses this to flush each event to its on-disk log
    the moment it happens, so the log survives a SIGKILL mid-run. At most
    one observer; the last one installed wins. *)

val events : t -> event list
(** In global recording order. O(length); prefer {!iter} / {!fold} / {!get}
    on hot paths. *)

val length : t -> int

val get : t -> int -> event
(** [get t i] is the [i]-th recorded event (0-based); O(1). Raises
    [Invalid_argument] out of bounds. *)

val iter : t -> (event -> unit) -> unit
(** Apply to every event in recording order, without building a list. *)

val fold : t -> init:'a -> f:('a -> event -> 'a) -> 'a

val by_owner : t -> Pid.t -> event list
(** O(result): served from the per-owner index. *)

val installs : t -> (event * int * Pid.t list) list
val installs_of : t -> Pid.t -> (int * Pid.t list) list
val detections : t -> (Pid.t * Pid.t * event) list
(** [(observer, suspect, event)] triples. *)

val quits : t -> (Pid.t * [ `Quit of string | `Crashed ]) list
val violations : t -> (Pid.t * string) list
val owners : t -> Pid.t list
(** In first-appearance order. *)

type checkpoint
(** Truncate-to-mark capture: the event count plus every index vector's
    cursor. O(owners) to take; {!restore} rewinds the cursors in place (the
    backing arrays keep stale tails that the next appends overwrite), drops
    owners first recorded after the capture, and stays valid across any
    number of restores. The {!set_on_record} observer is harness wiring, not
    trace state, and is unaffected. *)

val checkpoint : t -> checkpoint
val restore : t -> checkpoint -> unit

(** The naive list-scan implementations of the queries above (the seed's
    originals). Each is O(length) per call; they are the oracle the property
    tests compare the indexes against and the baseline for the benchmark's
    checker-speedup measurement. *)
module Reference : sig
  val by_owner : t -> Pid.t -> event list
  val installs : t -> (event * int * Pid.t list) list
  val installs_of : t -> Pid.t -> (int * Pid.t list) list
  val detections : t -> (Pid.t * Pid.t * event) list
  val quits : t -> (Pid.t * [ `Quit of string | `Crashed ]) list
  val violations : t -> (Pid.t * string) list
  val owners : t -> Pid.t list
end
val pp_kind : kind Fmt.t
val pp_event : event Fmt.t
val pp : t Fmt.t

val pp_timeline : t Fmt.t
(** Compact ASCII space-time diagram: one column per process, one row per
    protocol milestone (the textual analogue of the paper's figures). *)
