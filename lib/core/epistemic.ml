(* Executable fragments of the paper's Appendix: epistemic analysis of GMP.

   We cannot run a modal logic, but on a recorded trace with vector clocks
   the knowledge claims become decidable:

   - Equation 4: when p receives "!x" (installs version x), p knows that
     Sys^{x-1} *was* defined. Operationally: for every install of version x
     by p there must exist, for every member q of view x-1 that ever reached
     version x-1, an install of x-1 by q that happens-before p's install of
     x - unless q was deemed faulty (never reached x-1) or is the
     coordinator's own removal target.

   - Concurrent common knowledge (no-coordinator-failure runs): the installs
     of each version x form a set of events whose happens-before closure is
     a consistent cut - the paper's locally-distinguishable cut c_x. *)

open Gmp_base
open Gmp_causality

type report = {
  eq4_checked : int;
  eq4_failures : string list;
  cuts_checked : int;
  cut_failures : string list;
}

let pp_report ppf r =
  Fmt.pf ppf "eq4: %d checked, %d failed; cuts: %d checked, %d failed"
    r.eq4_checked
    (List.length r.eq4_failures)
    r.cuts_checked
    (List.length r.cut_failures)

let ok r = r.eq4_failures = [] && r.cut_failures = []

(* All install events, as (owner, ver, members, trace event). *)
let install_events trace =
  List.filter_map
    (fun (e, ver, members) -> Some (e.Trace.owner, ver, members, e))
    (Trace.installs trace)

let find_install installs ~owner ~ver =
  List.find_opt
    (fun (o, x, _, _) -> Pid.equal o owner && x = ver)
    installs

(* Equation 4: (ver(p) = x) => Kp <past> IsSysView(x-1). *)
let check_eq4 trace =
  let installs = install_events trace in
  let checked = ref 0 in
  let failures = ref [] in
  List.iter
    (fun (p, x, _members, (e : Trace.event)) ->
      if x >= 1 then begin
        (* members of view x-1 as recorded by whoever installed it *)
        match
          List.find_opt (fun (_, ver, _, _) -> ver = x - 1) installs
        with
        | None -> () (* x-1 never visible: nothing checkable *)
        | Some (_, _, prev_members, _) ->
          List.iter
            (fun q ->
              if not (Pid.equal q p) then begin
                match find_install installs ~owner:q ~ver:(x - 1) with
                | None -> () (* q never reached x-1: deemed faulty *)
                | Some (_, _, _, eq) ->
                  incr checked;
                  if not (Vector_clock.leq eq.Trace.vc e.Trace.vc) then
                    failures :=
                      Fmt.str
                        "%a's install of v%d does not causally dominate %a's \
                         install of v%d"
                        Pid.pp p x Pid.pp q (x - 1)
                      :: !failures
              end)
            prev_members
      end)
    installs;
  (!checked, List.rev !failures)

(* The cut c_x (Theorem 6.1): the happens-before closure of the installs of
   version x is a consistent cut. *)
let check_cuts trace =
  let log =
    List.rev
      (Trace.fold trace ~init:[] ~f:(fun acc (e : Trace.event) ->
           Cut.
             { owner = e.owner;
               index = e.index;
               time = e.time;
               vc = e.vc;
               data = e.kind }
           :: acc))
  in
  let installs = install_events trace in
  let versions =
    List.sort_uniq Int.compare (List.map (fun (_, v, _, _) -> v) installs)
  in
  let checked = ref 0 in
  let failures = ref [] in
  List.iter
    (fun ver ->
      let events =
        List.filter_map
          (fun (_, x, _, (e : Trace.event)) ->
            if x = ver then
              Some
                Cut.
                  { owner = e.owner;
                    index = e.index;
                    time = e.time;
                    vc = e.vc;
                    data = e.kind }
            else None)
          installs
      in
      if events <> [] then begin
        incr checked;
        let frontier = Cut.closure log events in
        if not (Cut.is_consistent log frontier) then
          failures := Fmt.str "closure of installs of v%d is inconsistent" ver :: !failures
      end)
    versions;
  (!checked, List.rev !failures)

let analyze ?(eq4 = true) trace =
  let eq4_checked, eq4_failures = if eq4 then check_eq4 trace else (0, []) in
  let cuts_checked, cut_failures = check_cuts trace in
  { eq4_checked; eq4_failures; cuts_checked; cut_failures }
