(** JSON export of runs (traces, statistics, final states) for external
    tooling. The full-run dump of a sim harness lives with it
    ([Gmp_runtime.Group.to_json]); live nodes write events through
    {!json_of_event} one line at a time. *)

open Gmp_base

val json_of_pid : Pid.t -> Json.t
val json_of_op : Types.op -> Json.t
val json_of_kind : Trace.kind -> Json.t
val json_of_vc : Gmp_causality.Vector_clock.t -> Json.t
val json_of_event : Trace.event -> Json.t
val json_of_trace : Trace.t -> Json.t
val json_of_stats : Gmp_platform.Stats.t -> Json.t
val json_of_member : Member.t -> Json.t
val json_of_violation : Checker.violation -> Json.t
