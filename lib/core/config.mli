(** Protocol configuration. *)

open Gmp_base

type tuning = {
  hb_interval : float option;  (** Override of [heartbeat_interval]. *)
  hb_timeout : float option;  (** Override of [heartbeat_timeout]. *)
  arq_rto : float option;
      (** Override of the ARQ retransmission timeout for channels whose
          {e sender} is this member (the transport layers consult
          {!arq_rto_for}). *)
}
(** Per-member overrides of the timing knobs. A live deployment mixes hosts
    with different latency floors; the sim uses this to model a slow or
    aggressive member without forking the global config. *)

val tune :
  ?hb_interval:float -> ?hb_timeout:float -> ?arq_rto:float -> unit -> tuning

type t = {
  heartbeats : bool;
      (** Run the heartbeat detector (F1). Scripted experiments may turn it
          off and drive suspicions themselves; liveness then depends on the
          script covering every stall. *)
  heartbeat_interval : float;
  heartbeat_timeout : float;
  compressed : bool;
      (** Piggyback the next invitation on commit messages (§3.1). Off =
          the plain two-phase algorithm, used as the §7.2 comparison. *)
  require_majority_update : bool;
      (** Final algorithm (Figure 8): the coordinator needs a majority of
          OKs before committing. The basic algorithm (§3.1, coordinator
          never fails) runs without it and tolerates [n-1] failures. *)
  require_majority_reconf : bool;
      (** GMP-2 uniqueness: reconfiguration phases need majorities. Off =
          the §8 partitioned variation (each side of a partition runs its
          own view sequence; divergence is expected and reported). *)
  reconf_reuse : bool;
      (** §8's future-work optimization: on suspecting the coordinator or
          an answered initiator, pre-send the interrogation reply to the
          predicted successor, which then skips interrogating this process.
          Off by default. *)
  reconf_reuse_grace : float;
      (** How long an initiator-to-be waits for pre-sent replies to land
          before interrogating (latency traded for messages). *)
  tuning : (Pid.t * tuning) list;
      (** Per-member knob overrides; empty by default, so defaults and
          existing sim traces are unchanged. *)
}

val default : t
(** Final algorithm: heartbeats on, compression on, majorities required. *)

val basic : t
(** §3.1's basic algorithm (no majority requirement). *)

val uncompressed : t
(** Final algorithm without compressed rounds (for the §7.2 comparison). *)

val scripted_only : t
(** No heartbeat detector: suspicions come only from scripts and gossip. *)

val optimized : t
(** Final algorithm with the §8 reconfiguration-reuse optimization on. *)

val partitionable : t
(** The §8 partitioned variation (Deceit-style): no majority requirements,
    so minority partitions keep operating under their own views. System
    views are no longer unique; reconciliation is the application's job. *)

(** {1 Per-member knob resolution} *)

val with_tuning : t -> Pid.t -> tuning -> t
(** Replace the overrides for one member (keeps the rest). *)

val tuning_for : t -> Pid.t -> tuning option

val heartbeat_interval_for : t -> Pid.t -> float
(** The member's heartbeat interval: its override, or the global knob. *)

val heartbeat_timeout_for : t -> Pid.t -> float

val arq_rto_for : t -> Pid.t -> float option
(** The member's ARQ retransmission timeout override, if any (the
    transport's own default applies otherwise). *)
