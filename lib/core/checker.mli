(** Executable checkers for the GMP specification (§2.3) over recorded
    runs. Every test and experiment pipes its trace through these. *)

open Gmp_base

type violation = { property : string; detail : string }

val pp_violation : violation Fmt.t

(** The trace queries the property logic is written against. The default
    instance below uses {!Trace}'s incremental indexes; {!Trace.Reference}
    provides the naive list-scan instance. *)
module type QUERIES = sig
  val by_owner : Trace.t -> Pid.t -> Trace.event list
  val installs : Trace.t -> (Trace.event * int * Pid.t list) list
  val installs_of : Trace.t -> Pid.t -> (int * Pid.t list) list
  val detections : Trace.t -> (Pid.t * Pid.t * Trace.event) list
  val violations : Trace.t -> (Pid.t * string) list
  val owners : Trace.t -> Pid.t list
end

(** The trace-level checks, abstract in the query implementation. *)
module type S = sig
  val check_gmp0 : Trace.t -> initial:Pid.t list -> violation list
  (** GMP-0: every initial process installs version 0 = Proc. *)

  val check_gmp1 : Trace.t -> violation list
  (** GMP-1: no capricious removals - every [Removed] is preceded (in its
      owner's history) by a [Faulty] for the same target. *)

  val check_gmp23 : Trace.t -> violation list
  (** GMP-2/GMP-3: any two installs of the same version carry the same
      membership, and no process skips a version. *)

  val check_gmp4 : Trace.t -> violation list
  (** GMP-4: once removed from a local view, a pid (same incarnation) never
      reappears in it. *)

  val check_gmp5 : Trace.t -> final_view:Pid.t list -> violation list
  (** GMP-5: every detection is eventually resolved - no suspicion pair
      survives together into the final view of a quiescent run. *)

  val check_internal : Trace.t -> violation list
  (** Runtime-detected invariant breaks ([Trace.Violation] events). *)

  val check_safety : Trace.t -> initial:Pid.t list -> violation list
  (** GMP-0, 1, 2/3, 4 + internal (no liveness / finality assumptions). *)
end

module Make (Q : QUERIES) : S

include S
(** The default checkers, served by {!Trace}'s indexes: a full
    [check_safety] is near-linear in the trace. *)

module Reference : S
(** The same checks over the seed's O(events) list scans
    ({!Trace.Reference}) — the property-test oracle for the indexes, not
    for production use. The benchmark's speedup baseline is the fully
    frozen pre-indexing checker in [bench/seed_checker.ml]. *)

val check_convergence :
  surviving_views:(Pid.t * int * Pid.t list) list ->
  dead:Pid.t list ->
  violation list
(** Liveness on a quiescent run: operational processes agree on one view
    that contains them all and none of the dead. *)

val check_run :
  ?liveness:bool ->
  Trace.t ->
  initial:Pid.t list ->
  surviving_views:(Pid.t * int * Pid.t list) list ->
  dead:Pid.t list ->
  final_view:Pid.t list ->
  violation list
(** Full check for a quiescent run (safety, and with [liveness] also
    convergence and GMP-5 against the final states). World-agnostic: the
    sim's [Group.check] and the live cluster's reassembled traces both land
    here. [final_view] is the agreed final membership ([[]] if none). *)
