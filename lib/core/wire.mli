(** Wire messages of the protocol.

    Update algorithm (Figures 8-9): {!constructor:Invite} /
    {!constructor:Invite_ok} / {!constructor:Commit}, where the commit
    carries a contingent invitation for the next change (compressed rounds,
    §3.1) and the coordinator's suspicion sets (F2 gossip).

    Reconfiguration (Figure 10): {!constructor:Interrogate} /
    {!constructor:Interrogate_ok} / {!constructor:Propose} /
    {!constructor:Propose_ok} / {!constructor:Reconf_commit}. Proposals
    carry the canonical committed sequence up to the proposed version;
    receivers apply the suffix they are missing ("the cumulative system
    progress"). *)

open Gmp_base

type commit = {
  op : Types.op;
  commit_ver : int;  (** version that applying [op] produces *)
  contingent : Types.op option;  (** compressed invitation for the next change *)
  faulty : Pid.t list;  (** Faulty(Mgr): gossiped suspicions *)
  recovered : Pid.t list;  (** Recovered(Mgr): pending joiners *)
}

type interrogate_reply = {
  reply_ver : int;
  reply_seq : Types.seq;
  reply_next : Types.expectation list;
}

type proposal = {
  target_ver : int;
  canonical_seq : Types.seq;  (** length = [target_ver] *)
  invis : Types.op option;  (** first change of the new regime *)
  prop_faulty : Pid.t list;  (** Faulty(r) *)
}

type app = ..
(** Application payloads (for programs built on the membership service);
    extensible so each example defines its own constructors. *)

type t =
  | Heartbeat
  | Faulty_report of Pid.t  (** outer -> Mgr: please start an exclusion *)
  | Join_request  (** joiner -> contact *)
  | Join_forward of Pid.t  (** contact -> Mgr *)
  | Invite of { op : Types.op; invite_ver : int }
  | Invite_ok of { ok_ver : int }
  | Commit of commit
  | Welcome of { w_members : Pid.t list; w_ver : int; w_seq : Types.seq }
      (** state transfer to an admitted joiner *)
  | Interrogate
  | Interrogate_ok of interrogate_reply
  | Propose of proposal
  | Propose_ok of { pok_ver : int }
  | Reconf_commit of proposal
  | App of { app_ver : int; payload : app }
      (** [app_ver] is the sender's view version, for the paper's "no
          messages from future views" buffering rule *)

val category_id : t -> Gmp_platform.Stats.category
(** Interned Stats category of a message (per-send hot path). *)

val category : t -> string
(** Stats category of a message, as a string ([Stats.name] of
    {!category_id}). *)

val protocol_categories : string list
(** The categories §7.2 counts: the membership protocol proper (heartbeats,
    reports, joins and state transfer are not charged). *)

val update_categories : string list
val reconf_categories : string list
val pp : t Fmt.t
