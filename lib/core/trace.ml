(* Run traces. Every protocol-relevant step of every process is recorded
   with its owner, local history index and vector clock, so the Checker can
   decide the GMP properties and the Epistemic module can reason about
   consistent cuts.

   Storage is a growable array plus per-owner and per-kind indexes maintained
   incrementally at [record] time: recording is O(1) amortized and every
   query pays O(result), not O(trace). The previous list-scan implementations
   survive in {!Reference} as the oracle for property tests and the baseline
   for the checker benchmarks. *)

open Gmp_base
open Gmp_causality

type kind =
  | Faulty of Pid.t (* owner executed faulty(target) *)
  | Operating of Pid.t (* owner learnt target is joining *)
  | Removed of { target : Pid.t; new_ver : int }
  | Added of { target : Pid.t; new_ver : int }
  | Installed of { ver : int; view_members : Pid.t list }
  | Quit of string (* protocol-mandated quit, with reason *)
  | Crashed (* injected real crash *)
  | Initiated_reconf of { at_ver : int }
  | Proposed of { target_ver : int; ops : Types.op list }
  | Committed of { ver : int; commit_kind : [ `Update | `Reconf ] }
  | Became_mgr of { at_ver : int }
  | Violation of string (* internal invariant broken; checkers flag these *)

type event = {
  owner : Pid.t;
  index : int; (* owner's local history position *)
  time : float;
  vc : Vector_clock.t;
  kind : kind;
}

(* Growable vector of event positions (indexes into the event array). *)
module Ivec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let cap = if v.n = 0 then 8 else v.n * 2 in
      let fresh = Array.make cap 0 in
      Array.blit v.a 0 fresh 0 v.n;
      v.a <- fresh
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  (* [to_list v f] = [List.map f (contents v)], built back-to-front. *)
  let to_list v f =
    let rec go i acc = if i < 0 then acc else go (i - 1) (f v.a.(i) :: acc) in
    go (v.n - 1) []

  let filter_list v f =
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) (match f v.a.(i) with Some x -> x :: acc | None -> acc)
    in
    go (v.n - 1) []
end

type t = {
  mutable evs : event array; (* evs.(0 .. len-1); beyond is filler *)
  mutable len : int;
  owner_ix : Ivec.t Pid.Tbl.t; (* owner -> its events, in order *)
  install_ix : Ivec.t; (* Installed events, in order *)
  owner_install_ix : Ivec.t Pid.Tbl.t; (* owner -> its Installed events *)
  detection_ix : Ivec.t; (* Faulty events *)
  quit_ix : Ivec.t; (* Quit and Crashed events *)
  violation_ix : Ivec.t; (* Violation events *)
  mutable owners_rev : Pid.t list; (* first-appearance order, reversed *)
  mutable on_record : (event -> unit) option;
      (* observer called on every recorded event; lets a live node flush
         each event to disk the moment it happens, so the log survives a
         SIGKILL mid-run *)
}

let create () =
  { evs = [||];
    len = 0;
    owner_ix = Pid.Tbl.create 16;
    install_ix = Ivec.create ();
    owner_install_ix = Pid.Tbl.create 16;
    detection_ix = Ivec.create ();
    quit_ix = Ivec.create ();
    violation_ix = Ivec.create ();
    owners_rev = [];
    on_record = None }

let set_on_record t f = t.on_record <- Some f

let push_owner_table table owner i =
  match Pid.Tbl.find_opt table owner with
  | Some v -> Ivec.push v i
  | None ->
    let v = Ivec.create () in
    Ivec.push v i;
    Pid.Tbl.add table owner v

let record t ~owner ~index ~time ~vc kind =
  let e = { owner; index; time; vc; kind } in
  if t.len = Array.length t.evs then begin
    let cap = if t.len = 0 then 64 else t.len * 2 in
    (* The new event is the filler: fresh slots hold no stale data. *)
    let fresh = Array.make cap e in
    Array.blit t.evs 0 fresh 0 t.len;
    t.evs <- fresh
  end;
  let i = t.len in
  t.evs.(i) <- e;
  t.len <- i + 1;
  if not (Pid.Tbl.mem t.owner_ix owner) then
    t.owners_rev <- owner :: t.owners_rev;
  push_owner_table t.owner_ix owner i;
  (match kind with
  | Installed _ ->
    Ivec.push t.install_ix i;
    push_owner_table t.owner_install_ix owner i
  | Faulty _ -> Ivec.push t.detection_ix i
  | Quit _ | Crashed -> Ivec.push t.quit_ix i
  | Violation _ -> Ivec.push t.violation_ix i
  | Operating _ | Removed _ | Added _ | Initiated_reconf _ | Proposed _
  | Committed _ | Became_mgr _ ->
    ());
  match t.on_record with None -> () | Some f -> f e

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: out of bounds";
  t.evs.(i)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.evs.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.evs.(i)
  done;
  !acc

let events t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.evs.(i) :: acc) in
  go (t.len - 1) []

(* ---- Indexed queries used by the checkers ---- *)

let by_owner t pid =
  match Pid.Tbl.find_opt t.owner_ix pid with
  | None -> []
  | Some v -> Ivec.to_list v (fun i -> t.evs.(i))

let install_triple t i =
  let e = t.evs.(i) in
  match e.kind with
  | Installed { ver; view_members } -> (e, ver, view_members)
  | _ -> assert false (* install_ix holds only Installed events *)

let installs t = Ivec.to_list t.install_ix (install_triple t)

let installs_of t pid =
  match Pid.Tbl.find_opt t.owner_install_ix pid with
  | None -> []
  | Some v ->
    Ivec.to_list v (fun i ->
        let _, ver, members = install_triple t i in
        (ver, members))

let detections t =
  Ivec.to_list t.detection_ix (fun i ->
      let e = t.evs.(i) in
      match e.kind with Faulty q -> (e.owner, q, e) | _ -> assert false)

let quits t =
  Ivec.to_list t.quit_ix (fun i ->
      let e = t.evs.(i) in
      match e.kind with
      | Quit reason -> (e.owner, `Quit reason)
      | Crashed -> (e.owner, `Crashed)
      | _ -> assert false)

let violations t =
  Ivec.filter_list t.violation_ix (fun i ->
      let e = t.evs.(i) in
      match e.kind with Violation v -> Some (e.owner, v) | _ -> None)

let owners t = List.rev t.owners_rev

(* ---- checkpoint / restore: truncate-to-mark ----

   A trace only ever appends, so a checkpoint is a set of lengths: the event
   count plus each index vector's cursor. Restore truncates by resetting the
   cursors in place — the backing arrays keep their (now stale, unreachable
   via any query) tails, which the next appends overwrite, so re-recording
   the same events after a restore reproduces the identical observable trace
   with no per-event cost. Owners first seen after the capture are dropped
   from the owner tables so their (empty-again) index vectors do not leak
   phantom owners into [owners]/[by_owner]. *)

type checkpoint = {
  cp_len : int;
  cp_install_n : int;
  cp_detection_n : int;
  cp_quit_n : int;
  cp_violation_n : int;
  cp_owner_marks : (Pid.t * Ivec.t * int) list;
  cp_owner_install_marks : (Pid.t * Ivec.t * int) list;
  cp_owners_rev : Pid.t list;
}

let table_marks table =
  Pid.Tbl.fold (fun pid v acc -> (pid, v, v.Ivec.n) :: acc) table []

let checkpoint t =
  { cp_len = t.len;
    cp_install_n = t.install_ix.Ivec.n;
    cp_detection_n = t.detection_ix.Ivec.n;
    cp_quit_n = t.quit_ix.Ivec.n;
    cp_violation_n = t.violation_ix.Ivec.n;
    cp_owner_marks = table_marks t.owner_ix;
    cp_owner_install_marks = table_marks t.owner_install_ix;
    cp_owners_rev = t.owners_rev }

let restore_table table marks =
  (* Drop owners added after the capture, rewind the cursors of the rest.
     Owner sets are small (group size), so the membership scan is cheap. *)
  let stale =
    Pid.Tbl.fold
      (fun pid _ acc ->
        if List.exists (fun (p, _, _) -> Pid.equal p pid) marks then acc
        else pid :: acc)
      table []
  in
  List.iter (Pid.Tbl.remove table) stale;
  List.iter (fun (_, v, n) -> v.Ivec.n <- n) marks

let restore t cp =
  t.len <- cp.cp_len;
  t.install_ix.Ivec.n <- cp.cp_install_n;
  t.detection_ix.Ivec.n <- cp.cp_detection_n;
  t.quit_ix.Ivec.n <- cp.cp_quit_n;
  t.violation_ix.Ivec.n <- cp.cp_violation_n;
  restore_table t.owner_ix cp.cp_owner_marks;
  restore_table t.owner_install_ix cp.cp_owner_install_marks;
  t.owners_rev <- cp.cp_owners_rev

(* ---- Reference implementations: the seed's naive list scans ----

   Kept verbatim (modulo operating on [events t]) as the oracle the property
   tests fuzz the indexes against, and as the baseline the benchmark's
   checker-speedup figure is measured over. *)

module Reference = struct
  let by_owner t pid =
    List.filter (fun e -> Pid.equal e.owner pid) (events t)

  let installs t =
    List.filter_map
      (fun e ->
        match e.kind with
        | Installed { ver; view_members } -> Some (e, ver, view_members)
        | _ -> None)
      (events t)

  let installs_of t pid =
    List.filter_map
      (fun (e, ver, view_members) ->
        if Pid.equal e.owner pid then Some (ver, view_members) else None)
      (installs t)

  let detections t =
    List.filter_map
      (fun e -> match e.kind with Faulty q -> Some (e.owner, q, e) | _ -> None)
      (events t)

  let quits t =
    List.filter_map
      (fun e ->
        match e.kind with
        | Quit reason -> Some (e.owner, `Quit reason)
        | Crashed -> Some (e.owner, `Crashed)
        | _ -> None)
      (events t)

  let violations t =
    List.filter_map
      (fun e -> match e.kind with Violation v -> Some (e.owner, v) | _ -> None)
      (events t)

  let owners t =
    List.fold_left
      (fun acc e ->
        if List.exists (Pid.equal e.owner) acc then acc else e.owner :: acc)
      [] (events t)
    |> List.rev
end

let pp_kind ppf = function
  | Faulty q -> Fmt.pf ppf "faulty(%a)" Pid.pp q
  | Operating q -> Fmt.pf ppf "operating(%a)" Pid.pp q
  | Removed { target; new_ver } ->
    Fmt.pf ppf "removed(%a)->v%d" Pid.pp target new_ver
  | Added { target; new_ver } -> Fmt.pf ppf "added(%a)->v%d" Pid.pp target new_ver
  | Installed { ver; view_members } ->
    Fmt.pf ppf "installed v%d {%a}" ver
      Fmt.(list ~sep:(any ",") Pid.pp)
      view_members
  | Quit reason -> Fmt.pf ppf "quit(%s)" reason
  | Crashed -> Fmt.string ppf "crashed"
  | Initiated_reconf { at_ver } -> Fmt.pf ppf "initiated-reconf@v%d" at_ver
  | Proposed { target_ver; ops } ->
    Fmt.pf ppf "proposed v%d %a" target_ver
      Fmt.(list ~sep:(any ",") Types.pp_op)
      ops
  | Committed { ver; commit_kind } ->
    Fmt.pf ppf "committed v%d (%s)" ver
      (match commit_kind with `Update -> "update" | `Reconf -> "reconf")
  | Became_mgr { at_ver } -> Fmt.pf ppf "became-mgr@v%d" at_ver
  | Violation v -> Fmt.pf ppf "VIOLATION: %s" v

let pp_event ppf e =
  Fmt.pf ppf "%8.3f %-6s %a" e.time (Pid.to_string e.owner) pp_kind e.kind

let pp ppf t = Fmt.(list ~sep:(any "@\n") pp_event) ppf (events t)

(* ---- ASCII space-time diagram ---- *)

let cell_of_kind = function
  | Faulty q -> Some (Fmt.str "!%s" (Pid.to_string q))
  | Operating _ -> None
  | Removed { target; _ } -> Some (Fmt.str "-%s" (Pid.to_string target))
  | Added { target; _ } -> Some (Fmt.str "+%s" (Pid.to_string target))
  | Installed { ver; _ } -> Some (Fmt.str "V%d" ver)
  | Quit _ -> Some "QUIT"
  | Crashed -> Some "CRASH"
  | Initiated_reconf _ -> Some "RECONF"
  | Proposed { target_ver; _ } -> Some (Fmt.str "prop%d" target_ver)
  | Committed { ver; _ } -> Some (Fmt.str "!%d" ver)
  | Became_mgr _ -> Some "MGR"
  | Violation _ -> Some "VIOL!"

(* One row per protocol-milestone event, one column per process: a compact
   space-time diagram of the run (the textual analogue of the paper's
   figures). *)
let pp_timeline ppf t =
  let owners = owners t in
  let width = 9 in
  let pad s =
    let len = String.length s in
    if len >= width then String.sub s 0 width
    else s ^ String.make (width - len) ' '
  in
  Fmt.pf ppf "%s" (pad "time");
  List.iter (fun p -> Fmt.pf ppf "%s" (pad (Pid.to_string p))) owners;
  Fmt.pf ppf "@\n";
  iter t (fun e ->
      match cell_of_kind e.kind with
      | None -> ()
      | Some cell ->
        Fmt.pf ppf "%s" (pad (Fmt.str "%.2f" e.time));
        List.iter
          (fun p ->
            if Pid.equal p e.owner then Fmt.pf ppf "%s" (pad cell)
            else Fmt.pf ppf "%s" (pad "."))
          owners;
        Fmt.pf ppf "@\n")
