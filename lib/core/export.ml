(* JSON export of runs: traces, statistics, final states. Lets external
   tooling (plots, diffs, dashboards) consume simulation results. *)

open Gmp_base
module J = Json

let json_of_pid p = J.string (Pid.to_string p)

let json_of_op = function
  | Types.Add p -> J.obj [ ("add", json_of_pid p) ]
  | Types.Remove p -> J.obj [ ("remove", json_of_pid p) ]

let json_of_kind = function
  | Trace.Faulty q -> J.obj [ ("faulty", json_of_pid q) ]
  | Trace.Operating q -> J.obj [ ("operating", json_of_pid q) ]
  | Trace.Removed { target; new_ver } ->
    J.obj [ ("removed", json_of_pid target); ("ver", J.int new_ver) ]
  | Trace.Added { target; new_ver } ->
    J.obj [ ("added", json_of_pid target); ("ver", J.int new_ver) ]
  | Trace.Installed { ver; view_members } ->
    J.obj
      [ ("installed", J.int ver);
        ("view", J.list (List.map json_of_pid view_members)) ]
  | Trace.Quit reason -> J.obj [ ("quit", J.string reason) ]
  | Trace.Crashed -> J.obj [ ("crashed", J.bool true) ]
  | Trace.Initiated_reconf { at_ver } -> J.obj [ ("initiated_reconf", J.int at_ver) ]
  | Trace.Proposed { target_ver; ops } ->
    J.obj
      [ ("proposed", J.int target_ver);
        ("ops", J.list (List.map json_of_op ops)) ]
  | Trace.Committed { ver; commit_kind } ->
    J.obj
      [ ("committed", J.int ver);
        ( "kind",
          J.string
            (match commit_kind with `Update -> "update" | `Reconf -> "reconf") )
      ]
  | Trace.Became_mgr { at_ver } -> J.obj [ ("became_mgr", J.int at_ver) ]
  | Trace.Violation v -> J.obj [ ("violation", J.string v) ]

let json_of_vc vc =
  J.obj
    (List.map
       (fun (p, n) -> (Pid.to_string p, J.int n))
       (Gmp_causality.Vector_clock.to_list vc))

let json_of_event (e : Trace.event) =
  J.obj
    [ ("owner", json_of_pid e.Trace.owner);
      ("index", J.int e.Trace.index);
      ("time", J.float e.Trace.time);
      ("vc", json_of_vc e.Trace.vc);
      ("event", json_of_kind e.Trace.kind) ]

let json_of_trace trace =
  J.list
    (List.rev
       (Trace.fold trace ~init:[] ~f:(fun acc e -> json_of_event e :: acc)))

let json_of_stats stats =
  J.obj
    (List.map
       (fun (category, sent, delivered, dropped) ->
         ( category,
           J.obj
             [ ("sent", J.int sent);
               ("delivered", J.int delivered);
               ("dropped", J.int dropped) ] ))
       (Gmp_platform.Stats.snapshot stats))

let json_of_member m =
  J.obj
    [ ("pid", json_of_pid (Member.pid m));
      ("version", J.int (Member.version m));
      ("view", J.list (List.map json_of_pid (View.members (Member.view m))));
      ("manager", json_of_pid (Member.manager m));
      ("joined", J.bool (Member.joined m));
      ("quit", J.bool (Member.has_quit m));
      ("crashed", J.bool (Member.crashed m && not (Member.has_quit m))) ]

let json_of_violation (v : Checker.violation) =
  J.obj
    [ ("property", J.string v.Checker.property);
      ("detail", J.string v.Checker.detail) ]
