(** The per-process protocol state machine.

    Implements the paper's Final Update Algorithm (Figures 8-9), the Final
    Reconfiguration Algorithm (Figure 10) with procedures [Determine] and
    [GetStable] (Figure 6), and the Join procedure (§7), in event-driven
    form over an abstract {!Gmp_platform.Platform.node} — the same state
    machine runs unchanged on the simulator's virtual clock and on real
    sockets under wall clocks ([lib/live]).

    System properties realized here:
    - {b F1}: the heartbeat detector (when configured) feeds suspicions;
    - {b F2}: suspicion sets ride on protocol messages and are adopted on
      receipt;
    - {b S1}: a suspicion permanently disconnects the incoming channel from
      the suspect.

    Construction is done through {!Group}; this interface exposes state
    inspection, application traffic, and the injection points used by
    scripts and the harness. *)

open Gmp_base

type t

(** {1 Construction (used by the sim's [Group] harness and [lib/live])} *)

val create :
  ?joiner:bool ->
  node:Wire.t Gmp_platform.Platform.node ->
  trace:Trace.t ->
  config:Config.t ->
  initial:Pid.t list ->
  unit ->
  t
(** A member of the initial group, or (with [~joiner:true]) a process with
    no view yet that must be admitted via {!start_join}. The member's pid is
    the node's; heartbeat knobs honor the config's per-member
    {!Config.tuning}. *)

val start_join : ?retry_interval:float -> t -> contacts:Pid.t list -> unit
(** Ask to be admitted, retrying round-robin over [contacts] (default every
    15 time units) until welcomed - the first contact, or the coordinator
    holding the request, may die before the join commits. *)

(** {1 State inspection} *)

val pid : t -> Pid.t
val self : t -> Pid.t
val view : t -> View.t
val version : t -> int
val seq : t -> Types.seq
val next_expectations : t -> Types.expectation list
val manager : t -> Pid.t
(** The process currently acting as coordinator from this member's point of
    view (the view head initially; the committing initiator after a
    reconfiguration). *)

val faulty_set : t -> Pid.Set.t
val recovered_set : t -> Pid.Set.t
val has_quit : t -> bool
val crashed : t -> bool
val operational : t -> bool
val joined : t -> bool
val is_mgr : t -> bool

val node : t -> Wire.t Gmp_platform.Platform.node
(** The platform node the member runs on (its clock, pid and liveness). *)

val now : t -> float
(** The member's clock — virtual time in the sim, wall time live. *)

val pp : t Fmt.t

(** {1 Application layer} *)

val set_app_handler : t -> (src:Pid.t -> Wire.app -> unit) -> unit
val set_on_view_change : t -> (t -> unit) -> unit
val send_app : t -> dst:Pid.t -> Wire.app -> unit
(** Tagged with the sender's view version; the receiver buffers messages
    from future views until it installs them. *)

val broadcast_app : t -> Wire.app -> unit
(** To the current view, minus self and suspects. *)

(** {1 Injection points (scripts, harness)} *)

val inject_suspicion : t -> Pid.t -> unit
(** Fire faultyp(q) as if observed (F1). *)

val inject_crash : t -> unit
(** Really crash the process. *)

(** {1 Explorer support} *)

val fingerprint : t -> int
(** Hash of the member's full protocol state (view, version, sequence,
    suspicion sets, coordinator phase, reconfiguration phase, expectations,
    buffers). Equal states hash equally across executions; used by the
    schedule explorer's state pruning. *)

type checkpoint
(** By-value capture of the member's entire mutable protocol state,
    including its detector's. Mutable phase sub-records are copied at both
    capture and restore, so a checkpoint is never written through and
    restores any number of times. The [app_handler]/[on_view_change]
    callbacks are harness wiring and are not captured. Only meaningful
    together with checkpoints of the node, network and engine the member
    runs on — {!Group.checkpoint} composes all of them. *)

val checkpoint : t -> checkpoint
val restore : t -> checkpoint -> unit
