(** Protocol latency metrics, derived from a run trace.

    The paper's failure-detection layer is judged by how fast an injected
    crash turns into agreed membership change. These derivations read that
    off the trace itself — event [time] is virtual under the simulator and
    wall-clock in the live runtime, so one definition measures both worlds
    identically — and record into registry histograms:

    - [latency.crash_to_first_suspicion]: per crash, from the crash
      instant to the earliest [Faulty] event against it at any survivor.
    - [latency.crash_to_view_installed]: per (crash, member) pair, for
      every member whose installed view contained the victim at the crash
      instant: time until that member first installs a view excluding it.
      The histogram's upper quantiles therefore track the slowest member,
      i.e. cluster-wide convergence.
    - [latency.join_to_installed]: per admitted joiner, from the earliest
      [Operating] event announcing it to the joiner's own first
      [Installed].

    SIGKILLed live nodes log no [Crashed] event, so the orchestrator — who
    chose the kill times — supplies them via [?crashes]; in-trace
    [Crashed] events take precedence for pids carrying both. *)

open Gmp_base

val crash_to_first_suspicion : string
val crash_to_view_installed : string
val join_to_installed : string

val observe :
  ?crashes:(Pid.t * float) list -> Gmp_obs.Obs.registry -> Trace.t -> unit
(** Derive all three metric families from [trace] and record them into
    the registry (histograms are created on demand with
    {!Gmp_obs.Obs.latency_buckets}). Deterministic: observation order is
    fixed by pid and trace order, so same-seed simulator runs produce
    byte-identical snapshots. *)
