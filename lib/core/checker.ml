(* Executable checkers for the GMP specification (§2.3) over recorded runs.

   Every property test and every experiment runs these; a reproduction of a
   protocol paper is only credible if the specification itself is machine-
   checked on each run.

   The property logic is written once, in [Make], against an abstract set of
   trace queries. The default instance runs on {!Trace}'s incremental
   indexes (O(touched) per query, so a full safety check is near-linear in
   the trace); [Reference] runs the identical logic on the seed's naive
   list scans and exists as the benchmark baseline and test oracle. *)

open Gmp_base

type violation = { property : string; detail : string }

let pp_violation ppf v = Fmt.pf ppf "[%s] %s" v.property v.detail

let v property fmt = Fmt.kstr (fun detail -> { property; detail }) fmt

module type QUERIES = sig
  val by_owner : Trace.t -> Pid.t -> Trace.event list
  val installs : Trace.t -> (Trace.event * int * Pid.t list) list
  val installs_of : Trace.t -> Pid.t -> (int * Pid.t list) list
  val detections : Trace.t -> (Pid.t * Pid.t * Trace.event) list
  val violations : Trace.t -> (Pid.t * string) list
  val owners : Trace.t -> Pid.t list
end

module type S = sig
  val check_gmp0 : Trace.t -> initial:Pid.t list -> violation list
  val check_gmp1 : Trace.t -> violation list
  val check_gmp23 : Trace.t -> violation list
  val check_gmp4 : Trace.t -> violation list
  val check_gmp5 : Trace.t -> final_view:Pid.t list -> violation list
  val check_internal : Trace.t -> violation list
  val check_safety : Trace.t -> initial:Pid.t list -> violation list
end

module Make (Q : QUERIES) : S = struct
  (* GMP-0: the initial system view exists along the initial cut:
     every initial process installs version 0 = Proc. *)
  let check_gmp0 trace ~initial =
    List.concat_map
      (fun pid ->
        match Q.installs_of trace pid with
        | (0, members) :: _ ->
          if List.length members = List.length initial
             && List.for_all2 Pid.equal members initial
          then []
          else
            [ v "GMP-0" "%a installed an initial view different from Proc"
                Pid.pp pid ]
        | (ver, _) :: _ ->
          if ver > 0 then [] (* a joiner: its first view is a later version *)
          else [ v "GMP-0" "%a has a negative initial version" Pid.pp pid ]
        | [] -> [ v "GMP-0" "%a never installed any view" Pid.pp pid ])
      initial

  (* GMP-1: q leaves Memb(p) only after faultyp(q): every Removed event of p
     is preceded, in p's history, by a Faulty event for the same target. *)
  let check_gmp1 trace =
    let owners = Q.owners trace in
    List.concat_map
      (fun pid ->
        let events = Q.by_owner trace pid in
        let _, violations =
          List.fold_left
            (fun (suspected, violations) (e : Trace.event) ->
              match e.kind with
              | Trace.Faulty q -> (Pid.Set.add q suspected, violations)
              | Trace.Removed { target; new_ver } ->
                if Pid.Set.mem target suspected then (suspected, violations)
                else
                  ( suspected,
                    v "GMP-1" "%a removed %a (v%d) without believing it faulty"
                      Pid.pp pid Pid.pp target new_ver
                    :: violations )
              | _ -> (suspected, violations))
            (Pid.Set.empty, []) events
        in
        List.rev violations)
      owners

  (* GMP-2 and GMP-3: a unique sequence of system views, and identical local
     view sequences. Operationally: any two processes that install the same
     version install the same membership, and each process's versions are
     consecutive from its first. *)
  let check_gmp23 trace =
    let installs = Q.installs trace in
    (* version -> first (owner, membership, |membership|) seen *)
    let by_ver = Hashtbl.create 32 in
    let agreement =
      List.concat_map
        (fun ((e : Trace.event), ver, members) ->
          match Hashtbl.find_opt by_ver ver with
          | None ->
            Hashtbl.add by_ver ver (e.owner, members, List.length members);
            []
          | Some (first_owner, first_members, first_len) ->
            if
              members == first_members
              || (List.compare_length_with members first_len = 0
                  && List.for_all2 Pid.equal members first_members)
            then []
            else
              [ v "GMP-2/3" "version %d: %a has {%a} but %a has {%a}" ver Pid.pp
                  e.owner
                  Fmt.(list ~sep:(any ",") Pid.pp)
                  members Pid.pp first_owner
                  Fmt.(list ~sep:(any ",") Pid.pp)
                  first_members ])
        installs
    in
    let continuity =
      List.concat_map
        (fun pid ->
          let versions = List.map fst (Q.installs_of trace pid) in
          match versions with
          | [] -> []
          | first :: rest ->
            let _, violations =
              List.fold_left
                (fun (prev, violations) ver ->
                  if ver = prev + 1 then (ver, violations)
                  else
                    ( ver,
                      v "GMP-3" "%a skipped from version %d to %d" Pid.pp pid
                        prev ver
                      :: violations ))
                (first, []) rest
            in
            List.rev violations)
        (Q.owners trace)
    in
    agreement @ continuity

  (* GMP-4: processes are never re-instated: once removed from p's local view,
     a pid never reappears in p's later views (same incarnation). Single pass
     over the owner's view sequence: a member whose last appearance is not the
     immediately preceding view was removed in between and has come back.
     O(total view members) hashtable operations per owner. *)
  let check_gmp4 trace =
    List.concat_map
      (fun pid ->
        let last_seen = Pid.Tbl.create 64 in
        let violations = ref [] in
        List.iteri
          (fun i (_, members) ->
            List.iter
              (fun q ->
                match Pid.Tbl.find_opt last_seen q with
                | None -> Pid.Tbl.add last_seen q (ref i)
                | Some last ->
                  if !last < i - 1 then
                    violations :=
                      v "GMP-4" "%a re-instated %a to its local view" Pid.pp
                        pid Pid.pp q
                      :: !violations;
                  last := i)
              members)
          (Q.installs_of trace pid);
        List.rev !violations)
      (Q.owners trace)

  (* GMP-5: every detection is eventually resolved: for each faultyp(q) with p
     a group member at the time, eventually q or p leaves the system view.
     Checked against the final agreed view of a quiescent run. *)
  let check_gmp5 trace ~final_view =
    let final_set = Pid.Set.of_list final_view in
    let in_final p = Pid.Set.mem p final_set in
    List.filter_map
      (fun (observer, suspected, (_ : Trace.event)) ->
        if in_final observer && in_final suspected then
          Some
            (v "GMP-5" "%a suspected %a but both are in the final view" Pid.pp
               observer Pid.pp suspected)
        else None)
      (Q.detections trace)

  (* Internal Violation trace events (broken invariants noticed at runtime). *)
  let check_internal trace =
    List.map
      (fun (owner, detail) -> v "internal" "%a: %s" Pid.pp owner detail)
      (Q.violations trace)

  let check_safety trace ~initial =
    check_gmp0 trace ~initial @ check_gmp1 trace @ check_gmp23 trace
    @ check_gmp4 trace @ check_internal trace
end

include Make (Trace)
module Reference = Make (Trace.Reference)

(* Liveness (not a numbered GMP property, but the point of the exercise):
   after quiescence the operational processes agree on one view, and that
   view contains no process that really crashed or quit. *)
let check_convergence ~surviving_views ~dead =
  match surviving_views with
  | [] -> [] (* everyone died; vacuously converged *)
  | (p0, ver0, members0) :: rest ->
    let agreement =
      List.concat_map
        (fun (p, ver, members) ->
          if
            ver = ver0
            && List.length members = List.length members0
            && List.for_all2 Pid.equal members members0
          then []
          else
            [ v "convergence" "%a at v%d disagrees with %a at v%d" Pid.pp p ver
                Pid.pp p0 ver0 ])
        rest
    in
    let no_dead =
      List.filter_map
        (fun q ->
          if List.exists (Pid.equal q) members0 then
            Some (v "convergence" "dead process %a is in the final view" Pid.pp q)
          else None)
        dead
    in
    let all_present =
      List.concat_map
        (fun (p, _, _) ->
          if List.exists (Pid.equal p) members0 then []
          else
            [ v "convergence" "operational %a is not in the final view" Pid.pp p ])
        surviving_views
    in
    agreement @ no_dead @ all_present

(* Full check for a quiescent run: safety over the trace, plus liveness
   (convergence and GMP-5) against the final states. The sim's Group harness
   and the live cluster's trace reassembly both call this. *)
let check_run ?(liveness = true) trace ~initial ~surviving_views ~dead
    ~final_view =
  let safety = check_safety trace ~initial in
  if not liveness then safety
  else
    safety
    @ check_convergence ~surviving_views ~dead
    @ check_gmp5 trace ~final_view
