(* Detection-latency derivations: trace in, histogram observations out.

   Everything here is a pure function of the trace (plus the
   orchestrator-supplied kill times), evaluated after the run - no
   instrument sits inside the protocol. That keeps the measurement
   identical across worlds: the simulator stamps events with virtual time,
   the live runtime with its monotonicized wall clock, and the arithmetic
   below does not care which. *)

open Gmp_base
module Obs = Gmp_obs.Obs

let crash_to_first_suspicion = "latency.crash_to_first_suspicion"
let crash_to_view_installed = "latency.crash_to_view_installed"
let join_to_installed = "latency.join_to_installed"

(* Crash instants, one per pid: in-trace [Crashed] events first (earliest
   wins), then the caller's kill times for pids the trace never saw crash
   (a SIGKILL leaves no event). Sorted by pid so observation order - and
   with it the histograms' float sums - is deterministic. *)
let crash_times ~crashes trace =
  let tbl = Hashtbl.create 8 in
  Trace.iter trace (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Crashed -> (
        match Hashtbl.find_opt tbl e.owner with
        | Some t when t <= e.time -> ()
        | _ -> Hashtbl.replace tbl e.owner e.time)
      | _ -> ());
  List.iter
    (fun (p, t) -> if not (Hashtbl.mem tbl p) then Hashtbl.replace tbl p t)
    crashes;
  List.sort
    (fun (a, _) (b, _) -> Pid.compare a b)
    (Hashtbl.fold (fun p t acc -> (p, t) :: acc) tbl [])

(* Earliest [Operating q] per join target, again pid-sorted. *)
let join_times trace =
  let tbl = Hashtbl.create 8 in
  Trace.iter trace (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Operating q -> (
        match Hashtbl.find_opt tbl q with
        | Some t when t <= e.time -> ()
        | _ -> Hashtbl.replace tbl q e.time)
      | _ -> ());
  List.sort
    (fun (a, _) (b, _) -> Pid.compare a b)
    (Hashtbl.fold (fun p t acc -> (p, t) :: acc) tbl [])

let observe ?(crashes = []) reg trace =
  let h_susp = Obs.histogram reg crash_to_first_suspicion in
  let h_view = Obs.histogram reg crash_to_view_installed in
  let h_join = Obs.histogram reg join_to_installed in
  let detections = Trace.detections trace in
  let installs = Trace.installs trace in
  let owners = Trace.owners trace in
  List.iter
    (fun (q, t0) ->
      (* First suspicion of q anywhere in the surviving group. *)
      let first =
        List.fold_left
          (fun acc (observer, suspect, (e : Trace.event)) ->
            if Pid.equal suspect q && (not (Pid.equal observer q))
               && e.time >= t0
            then
              match acc with
              | Some t when t <= e.time -> acc
              | _ -> Some e.time
            else acc)
          None detections
      in
      Option.iter (fun t -> Obs.observe h_susp (t -. t0)) first;
      (* Per member: only members whose view held q when it crashed have a
         detection to perform; a later joiner's first view excluding q is
         admission, not detection. Installs are per-owner in index order,
         so the last one at or before t0 is the view held at the crash. *)
      List.iter
        (fun o ->
          if not (Pid.equal o q) then begin
            let before = ref None and after = ref None in
            List.iter
              (fun ((e : Trace.event), _ver, members) ->
                if Pid.equal e.owner o then
                  if e.time <= t0 then before := Some members
                  else if
                    !after = None
                    && not (List.exists (Pid.equal q) members)
                  then after := Some e.time)
              installs;
            match (!before, !after) with
            | Some held, Some t when List.exists (Pid.equal q) held ->
              Obs.observe h_view (t -. t0)
            | _ -> ()
          end)
        owners)
    (crash_times ~crashes trace);
  List.iter
    (fun (q, t0) ->
      (* The joiner's own first Installed at or after the announcement. *)
      let first =
        List.fold_left
          (fun acc ((e : Trace.event), _ver, _members) ->
            if Pid.equal e.owner q && e.time >= t0 then
              match acc with
              | Some t when t <= e.time -> acc
              | _ -> Some e.time
            else acc)
          None installs
      in
      Option.iter (fun t -> Obs.observe h_join (t -. t0)) first)
    (join_times trace)
