(* An executable fragment of the paper's epistemic machinery (Appendix, and
   Ricciardi's tense logic [18]).

   The model: a recorded run induces a chain of consistent cuts - after
   each trace event, the set of events so far is causally closed (every
   receive's send was already recorded), so the i-th prefix of the trace IS
   the i-th cut of a linearization of the run. Formulas are evaluated at
   cut indices:

   - atoms inspect the cut's state (local versions, views, down-ness);
   - sometime_past / always_past quantify over earlier cuts of the chain,
     eventually / henceforth over later ones (the tense modalities);
   - [knows p phi] is run-local knowledge: phi holds at every cut of this
     run that p cannot distinguish from the current one (same local
     history length). This is the standard within-run approximation -
     sound for refuting knowledge claims and for checking the paper's
     positive claims on generated runs, though weaker than quantifying
     over all runs (a documented limitation);
   - [everyone g phi] is E_G phi; nesting it walks towards common
     knowledge, as in the Appendix's E^y unwinding.

   The paper's formulas (IsSysView, Equation 4, the E^y chain) are provided
   as combinators and checked on real protocol runs by the test suite. *)

open Gmp_base

(* ---- per-cut state, precomputed cumulatively ---- *)

type proc_state = {
  events_seen : int; (* p's local history length at this cut *)
  version : int option; (* latest installed version, if any *)
  view_members : Pid.t list option;
  down : bool; (* quit or crashed by this cut *)
}

type state = {
  cut_index : int;
  cut_time : float;
  procs : proc_state Pid.Map.t;
}

type run = { states : state array; run_pids : Pid.t list }

let initial_proc_state =
  { events_seen = 0; version = None; view_members = None; down = false }

let proc_state_at state p =
  match Pid.Map.find_opt p state.procs with
  | Some ps -> ps
  | None -> initial_proc_state

let of_trace trace =
  let pids = Trace.owners trace in
  let apply procs (e : Trace.event) =
    let ps = match Pid.Map.find_opt e.Trace.owner procs with
      | Some ps -> ps
      | None -> initial_proc_state
    in
    (* The trace index is the owner's true runtime history position (it
       counts sends and receives too), giving the finest run-local
       indistinguishability classes available. *)
    let ps = { ps with events_seen = max (ps.events_seen + 1) e.Trace.index } in
    let ps =
      match e.Trace.kind with
      | Trace.Installed { ver; view_members } ->
        { ps with version = Some ver; view_members = Some view_members }
      | Trace.Quit _ | Trace.Crashed -> { ps with down = true }
      | Trace.Faulty _ | Trace.Operating _ | Trace.Removed _ | Trace.Added _
      | Trace.Initiated_reconf _ | Trace.Proposed _ | Trace.Committed _
      | Trace.Became_mgr _ | Trace.Violation _ ->
        ps
    in
    Pid.Map.add e.Trace.owner ps procs
  in
  (* One pass over the indexed trace, filling the state array directly (no
     intermediate event or state lists). *)
  let n = Trace.length trace in
  let zero = { cut_index = 0; cut_time = 0.0; procs = Pid.Map.empty } in
  let states = Array.make (n + 1) zero in
  let procs = ref Pid.Map.empty in
  let time = ref 0.0 in
  for i = 1 to n do
    let e = Trace.get trace (i - 1) in
    procs := apply !procs e;
    time := Float.max !time e.Trace.time;
    states.(i) <- { cut_index = i; cut_time = !time; procs = !procs }
  done;
  { states; run_pids = pids }

let length run = Array.length run.states
let state_at run i = run.states.(i)
let pids run = run.run_pids

(* state accessors *)
let version_of state p = (proc_state_at state p).version
let view_of state p = (proc_state_at state p).view_members
let is_down state p = (proc_state_at state p).down
let events_seen state p = (proc_state_at state p).events_seen
let time state = state.cut_time

(* ---- formulas ---- *)

type formula =
  | Atom of string * (state -> bool)
  | Not of formula
  | And of formula list
  | Or of formula list
  | Implies of formula * formula
  | Sometime_past of formula
  | Always_past of formula
  | Eventually of formula
  | Henceforth of formula
  | Knows of Pid.t * formula
  | Everyone of Pid.t list * formula

let atom name f = Atom (name, f)
let neg f = Not f
let conj fs = And fs
let disj fs = Or fs
let implies a b = Implies (a, b)
let sometime_past f = Sometime_past f
let always_past f = Always_past f
let eventually f = Eventually f
let henceforth f = Henceforth f
let knows p f = Knows (p, f)
let everyone g f = Everyone (g, f)

let rec pp ppf = function
  | Atom (name, _) -> Fmt.string ppf name
  | Not f -> Fmt.pf ppf "~%a" pp f
  | And fs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " & ") pp) fs
  | Or fs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " | ") pp) fs
  | Implies (a, b) -> Fmt.pf ppf "(%a => %a)" pp a pp b
  | Sometime_past f -> Fmt.pf ppf "<P>%a" pp f
  | Always_past f -> Fmt.pf ppf "[P]%a" pp f
  | Eventually f -> Fmt.pf ppf "<>%a" pp f
  | Henceforth f -> Fmt.pf ppf "[]%a" pp f
  | Knows (p, f) -> Fmt.pf ppf "K_%a %a" Pid.pp p pp f
  | Everyone (g, f) ->
    Fmt.pf ppf "E_{%a} %a" Fmt.(list ~sep:(any ",") Pid.pp) g pp f

(* ---- evaluation ---- *)

let rec eval run ~at formula =
  let state = run.states.(at) in
  match formula with
  | Atom (_, f) -> f state
  | Not f -> not (eval run ~at f)
  | And fs -> List.for_all (fun f -> eval run ~at f) fs
  | Or fs -> List.exists (fun f -> eval run ~at f) fs
  | Implies (a, b) -> (not (eval run ~at a)) || eval run ~at b
  | Sometime_past f ->
    let rec scan i = i >= 0 && (eval run ~at:i f || scan (i - 1)) in
    scan at
  | Always_past f ->
    let rec scan i = i < 0 || (eval run ~at:i f && scan (i - 1)) in
    scan at
  | Eventually f ->
    let n = Array.length run.states in
    let rec scan i = i < n && (eval run ~at:i f || scan (i + 1)) in
    scan at
  | Henceforth f ->
    let n = Array.length run.states in
    let rec scan i = i >= n || (eval run ~at:i f && scan (i + 1)) in
    scan at
  | Knows (p, f) ->
    (* phi at every cut p cannot distinguish from this one: same local
       history length. *)
    let here = events_seen state p in
    let n = Array.length run.states in
    let rec scan i =
      i >= n
      || ((events_seen run.states.(i) p <> here || eval run ~at:i f)
          && scan (i + 1))
    in
    scan 0
  | Everyone (g, f) ->
    List.for_all (fun p -> eval run ~at (Knows (p, f))) g

let valid run formula =
  let n = Array.length run.states in
  let rec scan i = i >= n || (eval run ~at:i formula && scan (i + 1)) in
  scan 0

let satisfiable run formula =
  let n = Array.length run.states in
  let rec scan i = i < n && (eval run ~at:i formula || scan (i + 1)) in
  scan 0

(* ---- the paper's formulas ---- *)

let ver_eq p x =
  atom (Fmt.str "ver(%a)=%d" Pid.pp p x) (fun s -> version_of s p = Some x)

let down p = atom (Fmt.str "down(%a)" Pid.pp p) (fun s -> is_down s p)

(* IsSysView(x): every process has either installed version x (and all
   installed x-views agree) or is down. Processes that never produced an
   event (e.g. unjoined) count as down for this purpose. *)
let is_sys_view run x =
  let ps = pids run in
  atom
    (Fmt.str "IsSysView(%d)" x)
    (fun s ->
      let views =
        List.filter_map
          (fun p -> if is_down s p then None else Some (p, version_of s p, view_of s p))
          ps
      in
      views <> []
      && List.for_all (fun (_, v, _) -> v = Some x) views
      &&
      match views with
      | [] -> false
      | (_, _, first) :: rest ->
        List.for_all (fun (_, _, mv) -> mv = first) rest)

(* Members of the x-th system view as recorded in the run (if anyone
   installed it). *)
let members_of_version run x =
  let n = Array.length run.states in
  let rec scan i =
    if i >= n then None
    else
      let s = run.states.(i) in
      let found =
        List.find_map
          (fun p ->
            if version_of s p = Some x then view_of s p else None)
          (pids run)
      in
      match found with Some m -> Some m | None -> scan (i + 1)
  in
  scan 0

(* Equation 4: (ver(p) = x) => K_p <past> IsSysView(x-1). *)
let equation_4 run ~p ~x =
  implies (ver_eq p x) (knows p (sometime_past (is_sys_view run (x - 1))))

(* The Appendix's general unwinding: IsSysView(x) => (E <past>)^y
   IsSysView(x - y), over the members of view x. *)
let unwinding run ~x ~y =
  match members_of_version run x with
  | None -> None
  | Some group ->
    let rec nest k f =
      if k = 0 then f else nest (k - 1) (everyone group (sometime_past f))
    in
    Some (implies (is_sys_view run x) (nest y (is_sys_view run (x - y))))
