(* Protocol configuration. *)

open Gmp_base

type tuning = {
  hb_interval : float option;
  hb_timeout : float option;
  arq_rto : float option;
}

let tune ?hb_interval ?hb_timeout ?arq_rto () = { hb_interval; hb_timeout; arq_rto }

type t = {
  heartbeats : bool;
      (* Run the heartbeat detector (F1). Scripted experiments may turn it
         off and drive suspicions themselves; liveness then depends on the
         script covering every stall. *)
  heartbeat_interval : float;
  heartbeat_timeout : float;
  compressed : bool;
      (* Piggyback the next invitation on commit messages (§3.1). Off =
         the plain two-phase algorithm, used as the §7.2 comparison. *)
  require_majority_update : bool;
      (* Final algorithm (Figure 8, line FA.1): Mgr needs a majority of OKs
         before committing. The basic algorithm (§3.1, Mgr never fails)
         tolerates |view|-1 failures and sets this to false. *)
  require_majority_reconf : bool;
      (* GMP-2 uniqueness: a reconfigurer needs majorities in phases 1 and
         2. The paper's s8 notes some applications (Deceit [19], El
         Abbadi-Toueg [1]) drop uniqueness and let partitions run their own
         views, reconciling at a higher level: turn this off to get that
         partitioned mode - the checker will (correctly) report the
         divergence, which is the point. *)
  reconf_reuse : bool;
      (* §8's future-work optimization: when a process suspects an
         initiator it had answered, it sends its interrogation reply
         unsolicited to the predicted successor, which can then skip
         interrogating it. Replies are used only while both sides are
         still at the same version; Determine re-validates everything it
         propagates. Off by default. *)
  reconf_reuse_grace : float;
      (* How long an initiator-to-be waits for pre-sent replies to land
         before interrogating (trades recovery latency for messages). *)
  tuning : (Pid.t * tuning) list;
      (* Per-member overrides of the timing knobs (empty by default, so
         every existing scenario is unchanged). A live deployment mixes
         hosts with different latency floors; the sim uses this to model a
         slow or aggressive member without forking the global config. *)
}

let default =
  { heartbeats = true;
    heartbeat_interval = 2.0;
    heartbeat_timeout = 10.0;
    compressed = true;
    require_majority_update = true;
    require_majority_reconf = true;
    reconf_reuse = false;
    reconf_reuse_grace = 5.0;
    tuning = [] }

let optimized = { default with reconf_reuse = true }

let basic = { default with require_majority_update = false }

let uncompressed = { default with compressed = false }

let scripted_only = { default with heartbeats = false }

(* The s8 partitioned variation: every side of a partition keeps its own
   view sequence (system views are no longer unique). *)
let partitionable =
  { default with
    require_majority_update = false;
    require_majority_reconf = false }

(* ---- per-member knob resolution ---- *)

let with_tuning t pid tuning =
  { t with
    tuning = (pid, tuning) :: List.remove_assoc pid t.tuning }

let tuning_for t pid =
  List.find_opt (fun (p, _) -> Pid.equal p pid) t.tuning |> Option.map snd

let heartbeat_interval_for t pid =
  match tuning_for t pid with
  | Some { hb_interval = Some v; _ } -> v
  | Some _ | None -> t.heartbeat_interval

let heartbeat_timeout_for t pid =
  match tuning_for t pid with
  | Some { hb_timeout = Some v; _ } -> v
  | Some _ | None -> t.heartbeat_timeout

let arq_rto_for t pid =
  match tuning_for t pid with
  | Some { arq_rto = (Some _ as v); _ } -> v
  | Some _ | None -> None
