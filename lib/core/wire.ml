(* Wire messages of the protocol.

   Update algorithm (Figures 8, 9): Invite / Invite_ok / Commit, where the
   Commit carries a contingent invitation for the next change (the compressed
   rounds of §3.1) and the coordinator's suspicion sets (gossip, F2).

   Reconfiguration (Figure 10): Interrogate / Interrogate_ok / Propose /
   Propose_ok / Reconf_commit. Proposals carry the canonical committed
   operation sequence up to the proposed version; receivers apply the suffix
   they are missing (see DESIGN.md - this realizes "the cumulative system
   progress" with unchanged message counts). *)

open Gmp_base

type commit = {
  op : Types.op;
  commit_ver : int; (* version that applying [op] produces *)
  contingent : Types.op option; (* compressed invitation for commit_ver+1 *)
  faulty : Pid.t list; (* Faulty(Mgr): gossiped suspicions *)
  recovered : Pid.t list; (* Recovered(Mgr): pending joiners *)
}

type interrogate_reply = {
  reply_ver : int;
  reply_seq : Types.seq;
  reply_next : Types.expectation list;
}

type proposal = {
  target_ver : int;
  canonical_seq : Types.seq; (* length = target_ver *)
  invis : Types.op option; (* first change after reconfiguration *)
  prop_faulty : Pid.t list; (* Faulty(r) *)
}

(* Application payloads (for example programs built on the membership
   service); extensible so examples define their own constructors. *)
type app = ..

type t =
  | Heartbeat
  | Faulty_report of Pid.t (* outer -> Mgr: please start an exclusion *)
  | Join_request (* joiner -> contact *)
  | Join_forward of Pid.t (* contact -> Mgr *)
  | Invite of { op : Types.op; invite_ver : int }
  | Invite_ok of { ok_ver : int }
  | Commit of commit
  | Welcome of { w_members : Pid.t list; w_ver : int; w_seq : Types.seq }
  | Interrogate
  | Interrogate_ok of interrogate_reply
  | Propose of proposal
  | Propose_ok of { pok_ver : int }
  | Reconf_commit of proposal
  | App of { app_ver : int; payload : app }
      (* [app_ver]: sender's view version, for the paper's "no messages from
         future views" buffering rule. *)

(* Message categories for Stats accounting, pre-interned so the per-send
   path passes a dense id instead of hashing a string. *)
let heartbeat_id = Gmp_platform.Stats.intern "heartbeat"
let report_id = Gmp_platform.Stats.intern "report"
let join_request_id = Gmp_platform.Stats.intern "join-request"
let join_forward_id = Gmp_platform.Stats.intern "join-forward"
let invite_id = Gmp_platform.Stats.intern "invite"
let invite_ok_id = Gmp_platform.Stats.intern "invite-ok"
let commit_id = Gmp_platform.Stats.intern "commit"
let welcome_id = Gmp_platform.Stats.intern "welcome"
let interrogate_id = Gmp_platform.Stats.intern "interrogate"
let interrogate_ok_id = Gmp_platform.Stats.intern "interrogate-ok"
let propose_id = Gmp_platform.Stats.intern "propose"
let propose_ok_id = Gmp_platform.Stats.intern "propose-ok"
let reconf_commit_id = Gmp_platform.Stats.intern "reconf-commit"
let app_id = Gmp_platform.Stats.intern "app"

let category_id = function
  | Heartbeat -> heartbeat_id
  | Faulty_report _ -> report_id
  | Join_request -> join_request_id
  | Join_forward _ -> join_forward_id
  | Invite _ -> invite_id
  | Invite_ok _ -> invite_ok_id
  | Commit _ -> commit_id
  | Welcome _ -> welcome_id
  | Interrogate -> interrogate_id
  | Interrogate_ok _ -> interrogate_ok_id
  | Propose _ -> propose_id
  | Propose_ok _ -> propose_ok_id
  | Reconf_commit _ -> reconf_commit_id
  | App _ -> app_id

let category m = Gmp_platform.Stats.name (category_id m)

(* The categories §7.2 counts: the membership protocol proper. Heartbeats,
   reports, joins and state transfer are the detection mechanism / plumbing
   the paper does not charge. *)
let protocol_categories =
  [ "invite"; "invite-ok"; "commit"; "interrogate"; "interrogate-ok";
    "propose"; "propose-ok"; "reconf-commit" ]

let update_categories = [ "invite"; "invite-ok"; "commit" ]

let reconf_categories =
  [ "interrogate"; "interrogate-ok"; "propose"; "propose-ok"; "reconf-commit" ]

let pp ppf = function
  | Heartbeat -> Fmt.string ppf "heartbeat"
  | Faulty_report p -> Fmt.pf ppf "faulty-report(%a)" Pid.pp p
  | Join_request -> Fmt.string ppf "join-request"
  | Join_forward p -> Fmt.pf ppf "join-forward(%a)" Pid.pp p
  | Invite { op; invite_ver } ->
    Fmt.pf ppf "invite(%a,v%d)" Types.pp_op op invite_ver
  | Invite_ok { ok_ver } -> Fmt.pf ppf "invite-ok(v%d)" ok_ver
  | Commit { op; commit_ver; contingent; faulty; recovered } ->
    Fmt.pf ppf "commit(%a,v%d,next=%a,F=%a,R=%a)" Types.pp_op op commit_ver
      Fmt.(option Types.pp_op)
      contingent
      Fmt.(list ~sep:(any ",") Pid.pp)
      faulty
      Fmt.(list ~sep:(any ",") Pid.pp)
      recovered
  | Welcome { w_ver; _ } -> Fmt.pf ppf "welcome(v%d)" w_ver
  | Interrogate -> Fmt.string ppf "interrogate"
  | Interrogate_ok { reply_ver; _ } -> Fmt.pf ppf "interrogate-ok(v%d)" reply_ver
  | Propose { target_ver; invis; _ } ->
    Fmt.pf ppf "propose(v%d,invis=%a)" target_ver Fmt.(option Types.pp_op) invis
  | Propose_ok { pok_ver } -> Fmt.pf ppf "propose-ok(v%d)" pok_ver
  | Reconf_commit { target_ver; _ } -> Fmt.pf ppf "reconf-commit(v%d)" target_ver
  | App { app_ver; _ } -> Fmt.pf ppf "app(v%d)" app_ver
