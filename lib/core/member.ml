(* The per-process protocol state machine: the paper's Final Update Algorithm
   (Figures 8 and 9), Final Reconfiguration Algorithm (Figure 10) with
   procedures Determine and GetStable (Figure 6), and the Join procedure
   (§7), in event-driven form.

   Each `await (X or faulty(q))` of the pseudocode becomes a completion
   predicate re-evaluated whenever an X arrives or a faulty event fires -
   exactly the paper's disjunction - with F1 observations (heartbeat
   timeouts), F2 gossip (suspicion sets riding on messages) and S1 isolation
   (incoming-channel disconnection) as the inputs.

   Re-entrancy discipline: [suspect] only does bookkeeping (sets, S1
   disconnect, trace, report). Protocol progress - completing awaits,
   starting updates, initiating reconfiguration - happens in [poke], which
   every top-level entry point (message dispatch, detector callback,
   injected suspicion) runs once its handler has finished. This keeps the
   state machine's transitions atomic with respect to each other. *)

open Gmp_base
module Platform = Gmp_platform.Platform
module Heartbeat = Gmp_detector.Heartbeat

type mgr_phase = {
  mp_op : Types.op;
  mp_target_ver : int;
  mutable mp_oks : Pid.Set.t; (* respondents; self excluded *)
  mp_compressed : bool; (* the invitation rode on the previous commit *)
}

type reconf_phase =
  | R_interrogating of {
      mutable responses : (Pid.t * Wire.interrogate_reply) list;
          (* head entry is the initiator's own state *)
    }
  | R_proposing of { r_prop : Wire.proposal; mutable r_oks : Pid.Set.t }

type t = {
  node : Wire.t Platform.node;
  trace : Trace.t;
  config : Config.t;
  mutable view : View.t;
  mutable ver : int;
  mutable seq : Types.seq;
  mutable next : Types.expectation list;
  mutable faulty : Pid.Set.t; (* believed faulty, not yet removed *)
  mutable recovered : Pid.Set.t; (* pending joiners (coordinator's queue) *)
  mutable operating : Pid.Set.t; (* joiners known to be on the way in *)
  mutable mgr : Pid.t;
  mutable mgr_phase : mgr_phase option;
  mutable reconf : reconf_phase option;
  mutable has_quit : bool;
  mutable joined : bool; (* false for a joiner without a view yet *)
  mutable detector : Heartbeat.t option;
  mutable peer_cache : Pid.t list option;
      (* memoized heartbeat peer list; invalidated on view change, new
         suspicion, welcome, quit and crash instead of being refiltered on
         every tick of every process *)
  mutable app_handler : src:Pid.t -> Wire.app -> unit;
  mutable app_buffer : (Pid.t * int * Wire.app) list;
  mutable on_view_change : t -> unit;
  mutable stash : (Pid.t * Wire.interrogate_reply) list;
      (* reconf_reuse: unsolicited interrogation replies received at the
         current version (cleared on every install) *)
  mutable initiation_deferred : bool;
      (* reconf_reuse: this version's initiation already waited its grace
         period for pre-sent replies (cleared on every install) *)
}

(* ---- accessors ---- *)

let self t = t.node.Platform.pid
let pid = self
let view t = t.view
let version t = t.ver
let seq t = t.seq
let next_expectations t = t.next
let manager t = t.mgr
let faulty_set t = t.faulty
let recovered_set t = t.recovered
let has_quit t = t.has_quit
let crashed t = not (t.node.Platform.alive ())
let operational t = (not t.has_quit) && t.node.Platform.alive ()
let joined t = t.joined
let is_mgr t = t.joined && Pid.equal t.mgr (self t)
let node t = t.node
let now t = t.node.Platform.now ()

let set_app_handler t handler = t.app_handler <- handler
let set_on_view_change t handler = t.on_view_change <- handler

let record t kind =
  let index, vc = t.node.Platform.local_event () in
  Trace.record t.trace ~owner:(self t) ~index
    ~time:(t.node.Platform.now ()) ~vc kind

let send t ~dst payload =
  t.node.Platform.send ~dst ~category:(Wire.category_id payload) payload

let broadcast t ~dsts payload =
  t.node.Platform.broadcast ~dsts ~category:(Wire.category_id payload) payload

let view_others t = List.filter (fun p -> not (Pid.equal p (self t))) (View.members t.view)

let non_faulty_others t =
  List.filter (fun p -> not (Pid.Set.mem p t.faulty)) (view_others t)

let invalidate_peers t = t.peer_cache <- None

(* The heartbeat detector's peer set, memoized: every state change that can
   affect it goes through [invalidate_peers]. *)
let heartbeat_peers t =
  match t.peer_cache with
  | Some peers -> peers
  | None ->
    let peers =
      if t.joined && operational t then non_faulty_others t else []
    in
    t.peer_cache <- Some peers;
    peers

(* ---- quit ---- *)

let do_quit t reason =
  if operational t then begin
    record t (Trace.Quit reason);
    t.has_quit <- true;
    invalidate_peers t;
    t.mgr_phase <- None;
    t.reconf <- None;
    (match t.detector with None -> () | Some d -> Heartbeat.stop d);
    t.node.Platform.halt ()
  end

(* ---- faultyp(q): the single suspicion entry point (F1 and F2) ---- *)

let relevant_suspect t q =
  View.mem t.view q || Pid.Set.mem q t.recovered || Pid.Set.mem q t.operating

let suspect ?(report = true) t q =
  if
    operational t
    && (not (Pid.equal q (self t)))
    && (not (Pid.Set.mem q t.faulty))
    && relevant_suspect t q
  then begin
    t.faulty <- Pid.Set.add q t.faulty;
    invalidate_peers t;
    t.recovered <- Pid.Set.remove q t.recovered;
    t.operating <- Pid.Set.remove q t.operating;
    (* S1: never receive from q again. *)
    t.node.Platform.disconnect_from ~from:q;
    (match t.detector with None -> () | Some d -> Heartbeat.forget d q);
    record t (Trace.Faulty q);
    (* Ask the coordinator to start the exclusion (unless that is us, or the
       coordinator itself is the suspect / already suspected). *)
    if
      report && t.joined
      && (not (is_mgr t))
      && (not (Pid.equal t.mgr q))
      && not (Pid.Set.mem t.mgr t.faulty)
    then send t ~dst:t.mgr (Wire.Faulty_report q);
    (* §8 reuse optimization: an initiator we had answered has failed, so
       another reconfiguration of the same version is coming - pre-send our
       interrogation reply to the predicted successor so it can skip one
       round towards us. (Only for answered initiators: the successor's own
       detection lags ours by a full timeout, giving the pre-send time to
       land before it initiates.) *)
    if
      t.config.Config.reconf_reuse && t.joined
      && List.exists
           (function
             | Types.Awaiting_proposal r -> Pid.equal r q
             | Types.Expected _ -> false)
           t.next
    then begin
      let successor =
        List.find_opt
          (fun p -> not (Pid.Set.mem p t.faulty))
          (View.members t.view)
      in
      match successor with
      | Some s
        when (not (Pid.equal s (self t)))
             && not
                  (List.exists
                     (function
                       | Types.Awaiting_proposal r -> Pid.equal r s
                       | Types.Expected _ -> false)
                     t.next) ->
        send t ~dst:s
          (Wire.Interrogate_ok
             { reply_ver = t.ver; reply_seq = t.seq; reply_next = t.next });
        t.next <- t.next @ [ Types.Awaiting_proposal s ]
      | Some _ | None -> ()
    end
  end

let note_operating t q =
  if operational t && not (Pid.Set.mem q t.operating) && not (View.mem t.view q)
  then begin
    t.operating <- Pid.Set.add q t.operating;
    record t (Trace.Operating q)
  end

let gossip t ~faulty ~recovered =
  List.iter (fun q -> suspect ~report:false t q) faulty;
  List.iter (fun q -> note_operating t q) recovered

(* ---- local view updates ---- *)

let install_finish t =
  t.stash <- []; (* pre-sent replies are only valid within one version *)
  t.initiation_deferred <- false;
  let ready, rest = List.partition (fun (_, v, _) -> v <= t.ver) t.app_buffer in
  t.app_buffer <- rest;
  List.iter (fun (src, _, payload) -> t.app_handler ~src payload) ready;
  t.on_view_change t

let apply_op t op =
  match op with
  | Types.Remove z when Pid.equal z (self t) -> do_quit t "removed from view"
  | Types.Remove z ->
    if not (View.mem t.view z) then
      record t (Trace.Violation (Fmt.str "remove of non-member %a" Pid.pp z));
    t.view <- View.remove t.view z;
    invalidate_peers t;
    t.ver <- t.ver + 1;
    t.seq <- t.seq @ [ op ];
    t.faulty <- Pid.Set.remove z t.faulty;
    t.recovered <- Pid.Set.remove z t.recovered;
    t.operating <- Pid.Set.remove z t.operating;
    record t (Trace.Removed { target = z; new_ver = t.ver });
    record t (Trace.Installed { ver = t.ver; view_members = View.members t.view })
  | Types.Add z ->
    if View.mem t.view z then
      record t (Trace.Violation (Fmt.str "add of existing member %a" Pid.pp z))
    else begin
      t.view <- View.add t.view z;
      invalidate_peers t;
      t.ver <- t.ver + 1;
      t.seq <- t.seq @ [ op ];
      t.recovered <- Pid.Set.remove z t.recovered;
      t.operating <- Pid.Set.remove z t.operating;
      record t (Trace.Added { target = z; new_ver = t.ver });
      record t
        (Trace.Installed { ver = t.ver; view_members = View.members t.view })
    end

let apply_ops t ops =
  List.iter (fun op -> if operational t then apply_op t op) ops;
  if operational t then install_finish t

(* Adopt the canonical committed sequence up to a proposal's target version
   (reconfiguration installs "the cumulative system progress"). *)
let sync_to t (prop : Wire.proposal) =
  if t.ver > prop.target_ver then
    (* We are ahead of the proposal; nothing to apply (stale commit). *)
    ()
  else if not (Types.is_prefix ~prefix:t.seq prop.canonical_seq) then
    record t
      (Trace.Violation
         (Fmt.str "local seq %a is not a prefix of canonical %a" Types.pp_seq
            t.seq Types.pp_seq prop.canonical_seq))
  else begin
    let missing = Types.seq_drop t.ver prop.canonical_seq in
    (* GMP-1: record faultyp(z) before removing z. *)
    List.iter
      (function
        | Types.Remove z ->
          if not (Pid.equal z (self t)) then suspect ~report:false t z
        | Types.Add z -> note_operating t z)
      missing;
    apply_ops t missing
  end

(* A vote (Invite_ok / Propose_ok / interrogation reply) counts only from a
   current, non-condemned view member: a stale OK from a process that has
   left the view, or from one we already believe faulty, must not help
   satisfy a majority gate. Checked both when an OK arrives and when votes
   are counted — a respondent can become faulty between the two. *)
let ok_acceptable t src =
  View.mem t.view src && not (Pid.Set.mem src t.faulty)

(* ---- GetNext: the coordinator's queue (Recovered first, then Faulty) ---- *)

let get_next t ~excluding =
  let excluded z = List.exists (Pid.equal z) excluding in
  let joiner =
    List.find_opt
      (fun z -> (not (excluded z)) && not (View.mem t.view z))
      (Pid.Set.elements t.recovered)
  in
  match joiner with
  | Some j -> Some (Types.Add j)
  | None ->
    (* Seniority order: clean up dead seniors first. *)
    let victim =
      List.find_opt
        (fun z -> Pid.Set.mem z t.faulty && not (excluded z))
        (View.members t.view)
    in
    (match victim with Some z -> Some (Types.Remove z) | None -> None)

(* ---- Mgr role: the Final Update Algorithm (Figure 8) ---- *)

let rec maybe_start_update t =
  if
    operational t && is_mgr t && t.mgr_phase = None && t.reconf = None
  then
    match get_next t ~excluding:[] with
    | None -> ()
    | Some op ->
      let target_ver = t.ver + 1 in
      broadcast t ~dsts:(View.members t.view)
        (Wire.Invite { op; invite_ver = target_ver });
      t.mgr_phase <-
        Some
          { mp_op = op;
            mp_target_ver = target_ver;
            mp_oks = Pid.Set.empty;
            mp_compressed = false };
      recheck_mgr_phase t

and recheck_mgr_phase t =
  match t.mgr_phase with
  | None -> ()
  | Some mp when operational t ->
    let outstanding =
      List.filter (fun p -> not (Pid.Set.mem p mp.mp_oks)) (non_faulty_others t)
    in
    if outstanding = [] then begin
      let live_oks = Pid.Set.filter (ok_acceptable t) mp.mp_oks in
      let votes = Pid.Set.cardinal live_oks + 1 in
      if t.config.require_majority_update && votes < View.majority t.view then
        do_quit t "mgr: could not gather a majority of OKs"
      else commit_update t mp
    end
  | Some _ -> ()

and commit_update t mp =
  t.mgr_phase <- None;
  apply_ops t [ mp.mp_op ];
  if operational t then begin
    (match mp.mp_op with
     | Types.Add j ->
       send t ~dst:j
         (Wire.Welcome
            { w_members = View.members t.view; w_ver = t.ver; w_seq = t.seq })
     | Types.Remove _ -> ());
    let contingent =
      if t.config.compressed then get_next t ~excluding:[] else None
    in
    record t (Trace.Committed { ver = t.ver; commit_kind = `Update });
    broadcast t ~dsts:(non_faulty_others t)
      (Wire.Commit
         { op = mp.mp_op;
           commit_ver = t.ver;
           contingent;
           faulty = Pid.Set.elements t.faulty;
           recovered = Pid.Set.elements t.recovered });
    match contingent with
    | Some op ->
      t.mgr_phase <-
        Some
          { mp_op = op;
            mp_target_ver = t.ver + 1;
            mp_oks = Pid.Set.empty;
            mp_compressed = true };
      recheck_mgr_phase t
    | None -> maybe_start_update t
  end

(* ---- Reconfiguration: succession rule and the three phases ---- *)

and maybe_initiate t =
  (* This runs after every delivery. The empty-faulty-set bail-out covers
     quiet traffic; when suspicions ARE outstanding (long stretches of a
     churny run), deciding "are all my seniors faulty?" must still not
     materialise the O(rank) [View.higher_ranked] list per message — so walk
     the view once: initiation is due iff the scan reaches self having seen
     at least one senior, all of them faulty. *)
  if
    operational t && t.joined
    && (not (Pid.Set.is_empty t.faulty))
    && (not (is_mgr t))
    && t.reconf = None
    && View.mem t.view (self t)
  then begin
    let rec seniors_all_faulty any_senior = function
      | [] -> false (* unreachable: self is a view member (guard above) *)
      | q :: rest ->
        if Pid.equal q (self t) then
          (* [any_senior = false] here means self heads the view: the Mgr
             role, not an initiator. *)
          any_senior
        else if Pid.Set.mem q t.faulty then seniors_all_faulty true rest
        else false
    in
    if seniors_all_faulty false (View.members t.view) then begin
        (* §8 reuse: give in-flight pre-sent replies one grace period to
           land before interrogating (once per version). *)
        if
          t.config.Config.reconf_reuse
          && (not t.initiation_deferred)
          && List.exists
               (fun p ->
                 (not (Pid.Set.mem p t.faulty))
                 && (not (Pid.equal p (self t)))
                 && not (List.exists (fun (q, _) -> Pid.equal p q) t.stash))
               (View.members t.view)
        then begin
          t.initiation_deferred <- true;
          ignore
            (t.node.Platform.set_timer ~delay:t.config.Config.reconf_reuse_grace
               (fun () -> poke t)
              : Platform.timer)
        end
        else begin
        (* HiFaulty(p) is full: initiate (§4.2). *)
        record t (Trace.Initiated_reconf { at_ver = t.ver });
        let my_reply =
          Wire.{ reply_ver = t.ver; reply_seq = t.seq; reply_next = t.next }
        in
        (* §8 reuse: pre-sent replies (same version, view members) already
           count as responses, and their senders need not be interrogated. *)
        let reused =
          List.filter
            (fun ((p, reply) : _ * Wire.interrogate_reply) ->
              View.mem t.view p
              && (not (Pid.equal p (self t)))
              && reply.reply_ver >= t.ver - 1
              && reply.reply_ver <= t.ver + 1)
            t.stash
        in
        t.stash <- [];
        t.reconf <-
          Some (R_interrogating { responses = (self t, my_reply) :: reused });
        let dsts =
          List.filter
            (fun p -> not (List.exists (fun (q, _) -> Pid.equal p q) reused))
            (View.members t.view)
        in
        broadcast t ~dsts Wire.Interrogate;
        recheck_reconf t
        end
      end
  end

and recheck_reconf t =
  match t.reconf with
  | None -> ()
  | Some phase when operational t -> (
    match phase with
    | R_interrogating r ->
      let responded p = List.exists (fun (q, _) -> Pid.equal p q) r.responses in
      let outstanding =
        List.filter (fun p -> not (responded p)) (non_faulty_others t)
      in
      if outstanding = [] then begin
        let live_responses =
          List.filter
            (fun (p, _) -> Pid.equal p (self t) || ok_acceptable t p)
            r.responses
        in
        if
          t.config.Config.require_majority_reconf
          && List.length live_responses < View.majority t.view
        then do_quit t "reconf: interrogation could not gather a majority"
        else begin
          let prop = determine t r.responses in
          record t
            (Trace.Proposed
               { target_ver = prop.Wire.target_ver;
                 ops = Types.seq_drop t.ver prop.Wire.canonical_seq });
          t.reconf <- Some (R_proposing { r_prop = prop; r_oks = Pid.Set.empty });
          broadcast t ~dsts:(non_faulty_others t) (Wire.Propose prop);
          recheck_reconf t
        end
      end
    | R_proposing r ->
      let outstanding =
        List.filter (fun p -> not (Pid.Set.mem p r.r_oks)) (non_faulty_others t)
      in
      if outstanding = [] then begin
        let live_oks = Pid.Set.filter (ok_acceptable t) r.r_oks in
        let votes = Pid.Set.cardinal live_oks + 1 in
        if
          t.config.Config.require_majority_reconf
          && votes < View.majority t.view
        then do_quit t "reconf: proposal could not gather a majority"
        else commit_reconf t r.r_prop
      end)
  | Some _ -> ()

(* Procedure Determine (Figure 6): pick the version to (re-)install, the
   removal list and the contingent first change of the new regime. *)
and determine t responses : Wire.proposal =
  let my_ver = t.ver in
  (* Proposition 5.1: respondents' versions lie in [my_ver-1, my_ver+1]. *)
  List.iter
    (fun ((p, reply) : Pid.t * Wire.interrogate_reply) ->
      if reply.reply_ver < my_ver - 1 || reply.reply_ver > my_ver + 1 then
        record t
          (Trace.Violation
             (Fmt.str "interrogation reply from %a has version %d, mine %d"
                Pid.pp p reply.reply_ver my_ver)))
    responses;
  let ahead =
    List.filter (fun ((_, r) : _ * Wire.interrogate_reply) -> r.reply_ver > my_ver) responses
  in
  let behind =
    List.filter (fun ((_, r) : _ * Wire.interrogate_reply) -> r.reply_ver < my_ver) responses
  in
  let longest_seq =
    List.fold_left
      (fun acc ((_, r) : _ * Wire.interrogate_reply) ->
        if List.length r.reply_seq > List.length acc then r.reply_seq else acc)
      t.seq responses
  in
  List.iter
    (fun ((p, r) : Pid.t * Wire.interrogate_reply) ->
      if not (Types.is_prefix ~prefix:r.reply_seq longest_seq) then
        record t
          (Trace.Violation
             (Fmt.str "reply seq of %a is not a prefix of the longest seq"
                Pid.pp p)))
    responses;
  (* ProposalsForVer(v, r): pending proposals for version v reported by the
     respondents, deduplicated by proposing coordinator (a coordinator makes
     at most one proposal per version). *)
  let proposals_for v =
    let collect acc ((_, r) : _ * Wire.interrogate_reply) =
      List.fold_left
        (fun acc -> function
          | Types.Awaiting_proposal _ -> acc
          | Types.Expected { canonical; coord; ver } ->
            if ver = v && not (List.exists (fun (c, _) -> Pid.equal c coord) acc)
            then (coord, canonical) :: acc
            else acc)
        acc r.reply_next
    in
    List.rev (List.fold_left collect [] responses)
  in
  if List.length (proposals_for (my_ver + 1)) > 2 then
    record t
      (Trace.Violation
         (Fmt.str "more than two proposals for version %d (Prop 5.5)"
            (my_ver + 1)));
  let target_ver, canonical =
    if ahead <> [] then
      (* Case L <> {}: complete the installation the ahead group committed. *)
      (List.length longest_seq, longest_seq)
    else if behind <> [] then
      (* Case L = {}, S <> {}: re-announce my version for the stragglers. *)
      (my_ver, t.seq)
    else begin
      (* Case L = S = {}: propose a fresh change for version my_ver + 1:
         propagate a detected in-flight proposal, or remove Mgr. *)
      let canonical =
        match proposals_for (my_ver + 1) with
        | [] -> t.seq @ [ Types.Remove t.mgr ]
        | [ (_, canon) ] -> canon
        | many -> get_stable t many
      in
      if not (Types.is_prefix ~prefix:t.seq canonical) then begin
        record t
          (Trace.Violation "propagated proposal does not extend my seq");
        (my_ver + 1, t.seq @ [ Types.Remove t.mgr ])
      end
      else (List.length canonical, canonical)
    end
  in
  let invis =
    let excluded =
      List.map Types.op_target (Types.seq_drop my_ver canonical)
    in
    let op_of canon =
      (* The single op taking target_ver to target_ver + 1. *)
      if List.length canon = target_ver + 1 && Types.is_prefix ~prefix:canonical canon
      then (match Types.seq_drop target_ver canon with op :: _ -> Some op | [] -> None)
      else None
    in
    match proposals_for (target_ver + 1) with
    | [] -> get_next t ~excluding:excluded
    | [ (_, canon) ] -> op_of canon
    | many -> op_of (get_stable t many)
  in
  Wire.
    { target_ver;
      canonical_seq = canonical;
      invis;
      prop_faulty = Pid.Set.elements t.faulty }

(* Procedure GetStable (Figure 6): of the (at most two, Prop 5.5) detected
   proposals for a version, only the one issued by the lowest-ranked proposer
   can have been committed invisibly (Prop 5.6); propagate that one. *)
and get_stable t candidates =
  let rank_of coord =
    match View.rank t.view coord with
    | r -> r
    | exception Not_found -> max_int
  in
  match candidates with
  | [] -> invalid_arg "get_stable: no candidates"
  | first :: rest ->
    let best =
      List.fold_left
        (fun ((bc, _) as best) ((c, _) as cand) ->
          if
            rank_of c < rank_of bc
            || (rank_of c = rank_of bc && Pid.compare c bc < 0)
          then cand
          else best)
        first rest
    in
    snd best

and commit_reconf t prop =
  t.reconf <- None;
  t.mgr <- self t;
  record t (Trace.Became_mgr { at_ver = t.ver });
  let ver_before = t.ver in
  sync_to t prop;
  if operational t then begin
    record t (Trace.Committed { ver = t.ver; commit_kind = `Reconf });
    (* A propagated in-flight Add never had its state transfer: the dead
       coordinator was the one supposed to welcome the joiner. FIFO makes the
       Welcome arrive before the commit, so the joiner can answer the
       commit's contingent invitation. *)
    List.iter
      (function
        | Types.Add j ->
          send t ~dst:j
            (Wire.Welcome
               { w_members = View.members t.view;
                 w_ver = t.ver;
                 w_seq = t.seq })
        | Types.Remove _ -> ())
      (Types.seq_drop ver_before prop.Wire.canonical_seq);
    broadcast t ~dsts:(non_faulty_others t) (Wire.Reconf_commit prop);
    (* Begin the Mgr role with the contingent change. *)
    match prop.Wire.invis with
    | Some op ->
      t.mgr_phase <-
        Some
          { mp_op = op;
            mp_target_ver = t.ver + 1;
            mp_oks = Pid.Set.empty;
            mp_compressed = true };
      recheck_mgr_phase t
    | None -> maybe_start_update t
  end

(* ---- the poke: run protocol progress after any state change ---- *)

and poke t =
  if operational t then begin
    recheck_mgr_phase t;
    recheck_reconf t;
    maybe_start_update t;
    maybe_initiate t
  end

(* ---- outer-process handlers ---- *)

let handle_contingent t ~coord contingent =
  match contingent with
  | None -> t.next <- []
  | Some (Types.Remove z) when Pid.equal z (self t) ->
    do_quit t "contingently excluded"
  | Some op ->
    (match op with
     | Types.Remove z -> suspect ~report:false t z
     | Types.Add z -> note_operating t z);
    t.next <-
      [ Types.Expected
          { canonical = t.seq @ [ op ]; coord; ver = t.ver + 1 } ];
    send t ~dst:coord (Wire.Invite_ok { ok_ver = t.ver + 1 })

let handle_invite t ~src op invite_ver =
  if invite_ver <= t.ver then () (* stale *)
  else if invite_ver > t.ver + 1 then
    (* From a future view: the §3 buffering rule delays such messages until
       the view is installed. It only reaches a process the coordinator has
       already condemned (commits stopped flowing to it), so it never
       becomes deliverable - dropping is equivalent. *)
    ()
  else
    match op with
    | Types.Remove z when Pid.equal z (self t) -> do_quit t "invited to be excluded"
    | _ ->
      (match op with
       | Types.Remove z -> suspect ~report:false t z
       | Types.Add z -> note_operating t z);
      t.next <-
        [ Types.Expected
            { canonical = t.seq @ [ op ]; coord = src; ver = invite_ver } ];
      send t ~dst:src (Wire.Invite_ok { ok_ver = invite_ver })

let handle_invite_ok t ~src ok_ver =
  match t.mgr_phase with
  | Some mp when mp.mp_target_ver = ok_ver && ok_acceptable t src ->
    mp.mp_oks <- Pid.Set.add src mp.mp_oks
  | Some _ | None -> ()

let handle_commit t ~src (c : Wire.commit) =
  if List.exists (Pid.equal (self t)) c.faulty then
    do_quit t "declared faulty in a commit"
  else if c.commit_ver = t.ver then begin
    (* Already at this version (typically: a joiner welcomed with it). The
       piggybacked invitation for the next change still needs answering. *)
    gossip t ~faulty:c.faulty ~recovered:c.recovered;
    if operational t then handle_contingent t ~coord:src c.contingent
  end
  else if c.commit_ver < t.ver then () (* stale duplicate *)
  else if c.commit_ver > t.ver + 1 then
    record t
      (Trace.Violation
         (Fmt.str "commit for version %d while at %d (FIFO gap)" c.commit_ver
            t.ver))
  else begin
    gossip t ~faulty:c.faulty ~recovered:c.recovered;
    apply_ops t [ c.op ];
    if operational t then handle_contingent t ~coord:src c.contingent
  end

let handle_interrogate t ~src =
  if not t.joined then ()
  else if not (View.mem t.view src) then ()
  else if not (View.mem t.view (self t)) then ()
  else if View.rank t.view src < View.rank t.view (self t) then
    (* Figure 10: a process outranked by the initiator has been declared
       faulty by the new regime. *)
    do_quit t "outranked by a reconfiguration initiator"
  else begin
    let already_pre_sent =
      t.config.Config.reconf_reuse
      && List.exists
           (function
             | Types.Awaiting_proposal r -> Pid.equal r src
             | Types.Expected _ -> false)
           t.next
    in
    (* A pre-sent reply (§8 reuse) that raced this interrogation is still in
       flight towards the initiator and will count there; replying again
       would be a duplicate. *)
    if not already_pre_sent then begin
      let reply =
        Wire.{ reply_ver = t.ver; reply_seq = t.seq; reply_next = t.next }
      in
      send t ~dst:src (Wire.Interrogate_ok reply)
    end;
    (* HiFaulty(src) is implied by the succession rule: everyone senior to
       the initiator. *)
    List.iter
      (fun q -> suspect ~report:false t q)
      (View.higher_ranked t.view src);
    if not already_pre_sent then
      t.next <- t.next @ [ Types.Awaiting_proposal src ]
  end

let handle_interrogate_ok t ~src reply =
  match t.reconf with
  | Some (R_interrogating r) ->
    if not (List.exists (fun (p, _) -> Pid.equal p src) r.responses) then
      r.responses <- r.responses @ [ (src, reply) ]
  | Some (R_proposing _) -> ()
  | None ->
    (* An unsolicited, pre-sent reply (§8 reuse). Keep the latest per
       sender; install_finish clears the stash at every version change. *)
    if t.config.Config.reconf_reuse then
      t.stash <-
        (src, reply)
        :: List.filter (fun (p, _) -> not (Pid.equal p src)) t.stash

let pending_removal_of_self t (prop : Wire.proposal) =
  List.exists
    (function
      | Types.Remove z -> Pid.equal z (self t)
      | Types.Add _ -> false)
    (Types.seq_drop t.ver prop.canonical_seq)

let handle_propose t ~src (prop : Wire.proposal) =
  if List.exists (Pid.equal (self t)) prop.prop_faulty then
    do_quit t "declared faulty in a proposal"
  else if pending_removal_of_self t prop then
    do_quit t "proposed for removal"
  else begin
    gossip t ~faulty:prop.prop_faulty ~recovered:[];
    (* faultyp(RLr) upon receipt of the proposal (Prop 6.2). *)
    List.iter
      (function
        | Types.Remove z -> suspect ~report:false t z
        | Types.Add z -> note_operating t z)
      (Types.seq_drop t.ver prop.canonical_seq);
    t.next <-
      [ Types.Expected
          { canonical = prop.canonical_seq;
            coord = src;
            ver = prop.target_ver } ];
    send t ~dst:src (Wire.Propose_ok { pok_ver = prop.target_ver })
  end

let handle_propose_ok t ~src pok_ver =
  match t.reconf with
  | Some (R_proposing r)
    when r.r_prop.Wire.target_ver = pok_ver && ok_acceptable t src ->
    r.r_oks <- Pid.Set.add src r.r_oks
  | Some _ | None -> ()

let handle_reconf_commit t ~src (prop : Wire.proposal) =
  if List.exists (Pid.equal (self t)) prop.prop_faulty then
    do_quit t "declared faulty in a reconfiguration commit"
  else if pending_removal_of_self t prop then do_quit t "removed by reconfiguration"
  else begin
    gossip t ~faulty:prop.prop_faulty ~recovered:[];
    t.reconf <- None; (* a new coordinator has taken charge *)
    sync_to t prop;
    if operational t then begin
      t.mgr <- src;
      (* Proposition 6.4: pending exclusion requests are not lost across a
         coordinator change - re-report local suspicions to the new Mgr. *)
      Pid.Set.iter
        (fun q -> if View.mem t.view q then send t ~dst:src (Wire.Faulty_report q))
        t.faulty;
      handle_contingent t ~coord:src prop.invis
    end
  end

let handle_welcome t ~src w_members w_ver w_seq =
  if not t.joined then begin
    t.view <- View.of_list w_members;
    t.ver <- w_ver;
    t.seq <- w_seq;
    t.mgr <- src;
    t.joined <- true;
    invalidate_peers t;
    record t (Trace.Installed { ver = w_ver; view_members = w_members });
    install_finish t
  end

let handle_join t j =
  if operational t && t.joined then begin
    if is_mgr t then begin
      if
        (not (View.mem t.view j))
        && (not (Pid.Set.mem j t.recovered))
        && not (Pid.Set.mem j t.faulty)
      then begin
        t.recovered <- Pid.Set.add j t.recovered;
        note_operating t j
      end
    end
    else if not (Pid.Set.mem t.mgr t.faulty) then
      send t ~dst:t.mgr (Wire.Join_forward j)
  end

let handle_app t ~src app_ver payload =
  if app_ver > t.ver then t.app_buffer <- t.app_buffer @ [ (src, app_ver, payload) ]
  else t.app_handler ~src payload

(* ---- dispatch ---- *)

let dispatch t ~src (msg : Wire.t) =
  if operational t then begin
    (match msg with
     (* A joiner without a view yet understands only state transfer,
        heartbeats and (buffered) application traffic; everything else
        presupposes membership. *)
     | Wire.Faulty_report _ | Wire.Join_request | Wire.Join_forward _
     | Wire.Invite _ | Wire.Invite_ok _ | Wire.Commit _ | Wire.Interrogate
     | Wire.Interrogate_ok _ | Wire.Propose _ | Wire.Propose_ok _
     | Wire.Reconf_commit _
       when not t.joined ->
       ()
     | Wire.Heartbeat -> (
       match t.detector with
       | None -> ()
       | Some d -> Heartbeat.beat_received d ~from:src)
     | Wire.Faulty_report q -> suspect t q
     | Wire.Join_request -> handle_join t src
     | Wire.Join_forward j -> handle_join t j
     | Wire.Invite { op; invite_ver } -> handle_invite t ~src op invite_ver
     | Wire.Invite_ok { ok_ver } -> handle_invite_ok t ~src ok_ver
     | Wire.Commit c -> handle_commit t ~src c
     | Wire.Welcome { w_members; w_ver; w_seq } ->
       handle_welcome t ~src w_members w_ver w_seq
     | Wire.Interrogate -> handle_interrogate t ~src
     | Wire.Interrogate_ok reply -> handle_interrogate_ok t ~src reply
     | Wire.Propose prop -> handle_propose t ~src prop
     | Wire.Propose_ok { pok_ver } -> handle_propose_ok t ~src pok_ver
     | Wire.Reconf_commit prop -> handle_reconf_commit t ~src prop
     | Wire.App { app_ver; payload } -> handle_app t ~src app_ver payload);
    poke t
  end

(* ---- construction ---- *)

let create ?(joiner = false) ~node ~trace ~config ~initial () =
  let pid_ = node.Platform.pid in
  let t =
    { node;
      trace;
      config;
      view = (if joiner then View.of_list [] else View.initial initial);
      ver = 0;
      seq = [];
      next = [];
      faulty = Pid.Set.empty;
      recovered = Pid.Set.empty;
      operating = Pid.Set.empty;
      mgr =
        (if joiner then pid_
         else
           match initial with
           | [] -> invalid_arg "Member.create: empty initial group"
           | head :: _ -> head);
      mgr_phase = None;
      reconf = None;
      has_quit = false;
      joined = not joiner;
      detector = None;
      app_handler = (fun ~src:_ _ -> ());
      app_buffer = [];
      on_view_change = (fun _ -> ());
      stash = [];
      initiation_deferred = false;
      peer_cache = None }
  in
  node.Platform.set_receiver (fun ~src msg -> dispatch t ~src msg);
  if t.joined then
    record t (Trace.Installed { ver = 0; view_members = initial });
  if config.Config.heartbeats then begin
    let d =
      Heartbeat.create ~now:node.Platform.now ~set_timer:node.Platform.set_timer
        ~interval:(Config.heartbeat_interval_for config pid_)
        ~timeout:(Config.heartbeat_timeout_for config pid_)
        ~send_beats:(fun peers -> broadcast t ~dsts:peers Wire.Heartbeat)
        ~peers:(fun () -> heartbeat_peers t)
        ~suspect:(fun q ->
          suspect t q;
          poke t)
        ()
    in
    t.detector <- Some d;
    Heartbeat.start d
  end;
  t

let start_join ?(retry_interval = 15.0) t ~contacts =
  (* Self can never admit itself; filtering up front also guards the case of
     a contacts list containing only self (sending to self would blow up in
     the network layer). *)
  let contacts = List.filter (fun p -> not (Pid.equal p (self t))) contacts in
  match contacts with
  | [] -> invalid_arg "Member.start_join: no contacts besides self"
  | first :: _ ->
    send t ~dst:first Wire.Join_request;
    (* Retry round-robin over the contacts until admitted: the first contact
       (or the coordinator holding our request) may die before our join is
       committed. Use-then-increment, so the first retry goes back to
       contacts.(0) instead of skipping it until a full wrap. *)
    let n = List.length contacts in
    let cursor = ref 0 in
    t.node.Platform.every ~interval:retry_interval (fun () ->
        if (not t.joined) && operational t then begin
          let contact = List.nth contacts (!cursor mod n) in
          incr cursor;
          send t ~dst:contact Wire.Join_request
        end)

(* ---- external injection points (scripts, harness) ---- *)

let inject_suspicion t q =
  suspect t q;
  poke t

let inject_crash t =
  if t.node.Platform.alive () then begin
    record t Trace.Crashed;
    invalidate_peers t;
    (match t.detector with None -> () | Some d -> Heartbeat.stop d);
    t.node.Platform.halt ()
  end

(* ---- application traffic ---- *)

let send_app t ~dst payload =
  if operational t then
    send t ~dst (Wire.App { app_ver = t.ver; payload })

let broadcast_app t payload =
  if operational t then
    broadcast t ~dsts:(non_faulty_others t)
      (Wire.App { app_ver = t.ver; payload })

(* ---- checkpoint / restore for the schedule explorer ----

   Everything mutable in [t] is captured by value. The only mutable
   sub-records are the phase records ([mgr_phase]'s OK set, [reconf]'s
   response list / OK set): those are copied both at capture and at restore,
   so later phase progress never writes through into a checkpoint and one
   checkpoint restores any number of times. The protocol payload types
   (views, sets, seqs, wire records) are immutable and shared. [app_handler]
   and [on_view_change] are harness wiring, not protocol state, and are left
   alone. *)

type checkpoint = {
  cp_view : View.t;
  cp_ver : int;
  cp_seq : Types.seq;
  cp_next : Types.expectation list;
  cp_faulty : Pid.Set.t;
  cp_recovered : Pid.Set.t;
  cp_operating : Pid.Set.t;
  cp_mgr : Pid.t;
  cp_mgr_phase : mgr_phase option;
  cp_reconf : reconf_phase option;
  cp_has_quit : bool;
  cp_joined : bool;
  cp_detector : Heartbeat.checkpoint option;
  cp_peer_cache : Pid.t list option;
  cp_app_buffer : (Pid.t * int * Wire.app) list;
  cp_stash : (Pid.t * Wire.interrogate_reply) list;
  cp_initiation_deferred : bool;
}

let copy_mgr_phase = function
  | None -> None
  | Some mp -> Some { mp with mp_oks = mp.mp_oks }

let copy_reconf = function
  | None -> None
  | Some (R_interrogating r) ->
    Some (R_interrogating { responses = r.responses })
  | Some (R_proposing r) ->
    Some (R_proposing { r_prop = r.r_prop; r_oks = r.r_oks })

let checkpoint t =
  { cp_view = t.view;
    cp_ver = t.ver;
    cp_seq = t.seq;
    cp_next = t.next;
    cp_faulty = t.faulty;
    cp_recovered = t.recovered;
    cp_operating = t.operating;
    cp_mgr = t.mgr;
    cp_mgr_phase = copy_mgr_phase t.mgr_phase;
    cp_reconf = copy_reconf t.reconf;
    cp_has_quit = t.has_quit;
    cp_joined = t.joined;
    cp_detector = Option.map Heartbeat.checkpoint t.detector;
    cp_peer_cache = t.peer_cache;
    cp_app_buffer = t.app_buffer;
    cp_stash = t.stash;
    cp_initiation_deferred = t.initiation_deferred }

let restore t cp =
  t.view <- cp.cp_view;
  t.ver <- cp.cp_ver;
  t.seq <- cp.cp_seq;
  t.next <- cp.cp_next;
  t.faulty <- cp.cp_faulty;
  t.recovered <- cp.cp_recovered;
  t.operating <- cp.cp_operating;
  t.mgr <- cp.cp_mgr;
  t.mgr_phase <- copy_mgr_phase cp.cp_mgr_phase;
  t.reconf <- copy_reconf cp.cp_reconf;
  t.has_quit <- cp.cp_has_quit;
  t.joined <- cp.cp_joined;
  (match (t.detector, cp.cp_detector) with
  | Some d, Some c -> Heartbeat.restore d c
  | _ -> ());
  t.peer_cache <- cp.cp_peer_cache;
  t.app_buffer <- cp.cp_app_buffer;
  t.stash <- cp.cp_stash;
  t.initiation_deferred <- cp.cp_initiation_deferred

(* ---- fingerprint: protocol-state hash for the schedule explorer ---- *)

(* Order-sensitive FNV-style mix; every collection is folded in a canonical
   order (sets and views are sorted by construction, lists in list order),
   so equal states hash equally across executions. *)
let fp_mix h x = (h * 0x01000193) lxor (x land max_int)
let fp_pid h p = fp_mix (fp_mix h (Pid.id p)) (Pid.incarnation p)
let fp_bool h b = fp_mix h (if b then 1 else 0)
let fp_set h s = Pid.Set.fold (fun p h -> fp_pid h p) s h

let fp_op h = function
  | Types.Remove p -> fp_pid (fp_mix h 1) p
  | Types.Add p -> fp_pid (fp_mix h 2) p

let fp_seq h seq = List.fold_left fp_op (fp_mix h (List.length seq)) seq

let fp_expect h = function
  | Types.Awaiting_proposal p -> fp_pid (fp_mix h 3) p
  | Types.Expected { canonical; coord; ver } ->
    fp_pid (fp_mix (fp_seq (fp_mix h 4) canonical) ver) coord

let fp_reply h (reply : Wire.interrogate_reply) =
  let h = fp_mix h reply.reply_ver in
  let h = fp_seq h reply.reply_seq in
  List.fold_left fp_expect h reply.reply_next

let fingerprint t =
  let h = fp_pid 0x811c9dc5 (self t) in
  let h = fp_mix h t.ver in
  let h = fp_seq h t.seq in
  let h = List.fold_left fp_pid (fp_mix h 5) (View.members t.view) in
  let h = List.fold_left fp_expect (fp_mix h 6) t.next in
  let h = fp_set (fp_mix h 7) t.faulty in
  let h = fp_set (fp_mix h 8) t.recovered in
  let h = fp_set (fp_mix h 9) t.operating in
  let h = fp_pid (fp_mix h 10) t.mgr in
  let h =
    match t.mgr_phase with
    | None -> fp_mix h 0
    | Some mp ->
      fp_bool
        (fp_set
           (fp_mix (fp_op (fp_mix h 11) mp.mp_op) mp.mp_target_ver)
           mp.mp_oks)
        mp.mp_compressed
  in
  let h =
    match t.reconf with
    | None -> fp_mix h 0
    | Some (R_interrogating r) ->
      List.fold_left
        (fun h (p, reply) -> fp_reply (fp_pid h p) reply)
        (fp_mix h 12) r.responses
    | Some (R_proposing r) ->
      let prop = r.r_prop in
      let h = fp_mix (fp_mix h 13) prop.Wire.target_ver in
      let h = fp_seq h prop.Wire.canonical_seq in
      let h =
        match prop.Wire.invis with None -> fp_mix h 0 | Some op -> fp_op h op
      in
      let h = List.fold_left fp_pid h prop.Wire.prop_faulty in
      fp_set h r.r_oks
  in
  let h = fp_bool (fp_bool (fp_bool h t.has_quit) t.joined) (crashed t) in
  let h = fp_bool h t.initiation_deferred in
  let h =
    List.fold_left
      (fun h (p, ver, _) -> fp_mix (fp_pid h p) ver)
      (fp_mix h (List.length t.app_buffer))
      t.app_buffer
  in
  List.fold_left
    (fun h (p, reply) -> fp_reply (fp_pid h p) reply)
    (fp_mix h (List.length t.stash))
    t.stash

let pp ppf t =
  Fmt.pf ppf "%a v%d %a mgr=%a%s%s" Pid.pp (self t) t.ver View.pp t.view Pid.pp
    t.mgr
    (if t.has_quit then " QUIT" else "")
    (if crashed t && not t.has_quit then " CRASHED" else "")
