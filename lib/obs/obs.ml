(* The metrics registry both worlds share.

   Cells are mutable and cheap to hit (hot paths see an int increment or a
   binary search over a dozen fixed edges); snapshots are immutable sorted
   assoc lists, which makes determinism (sort by name, serialize floats
   through Json's shortest-round-trip printer) and merging (zip two sorted
   lists) trivial. Views keep pre-existing counter families - Node's ARQ
   record, Transport.counters, Stats categories - out of the registry's
   write path entirely: they are closures read once per snapshot. *)

open Gmp_base
module J = Json

type hist = {
  edges : float array; (* strictly increasing upper bounds *)
  counts : int array; (* length edges+1; last slot = overflow *)
  mutable sum : float;
}

type cell = C of int ref | G of float ref | H of hist

type registry = {
  cells : (string, cell) Hashtbl.t;
  mutable views : (string * (unit -> (string * int) list)) list;
}

type counter = int ref
type gauge = float ref
type histogram = hist

let create () = { cells = Hashtbl.create 32; views = [] }

let latency_buckets =
  [| 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0;
     10.0; 25.0; 50.0; 100.0; 250.0; 500.0 |]

let round_buckets = [| 1.0; 2.0; 3.0; 4.0; 6.0; 8.0; 12.0; 16.0; 24.0; 32.0; 48.0; 64.0 |]

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let mismatch name ~want got =
  invalid_arg
    (Printf.sprintf "Obs: metric %S is a %s, not a %s" name (kind_name got)
       want)

let counter r name =
  match Hashtbl.find_opt r.cells name with
  | Some (C c) -> c
  | Some cell -> mismatch name ~want:"counter" cell
  | None ->
    let c = ref 0 in
    Hashtbl.replace r.cells name (C c);
    c

let inc ?(by = 1) c = c := !c + by
let counter_value c = !c

let gauge r name =
  match Hashtbl.find_opt r.cells name with
  | Some (G g) -> g
  | Some cell -> mismatch name ~want:"gauge" cell
  | None ->
    let g = ref 0.0 in
    Hashtbl.replace r.cells name (G g);
    g

let set_gauge g v = g := v
let gauge_value g = !g

let check_edges name edges =
  let n = Array.length edges in
  if n = 0 then invalid_arg (Printf.sprintf "Obs: histogram %S: no buckets" name);
  for i = 0 to n - 1 do
    if not (Float.is_finite edges.(i)) then
      invalid_arg (Printf.sprintf "Obs: histogram %S: non-finite edge" name);
    if i > 0 && edges.(i) <= edges.(i - 1) then
      invalid_arg
        (Printf.sprintf "Obs: histogram %S: edges not strictly increasing" name)
  done

let histogram ?(buckets = latency_buckets) r name =
  match Hashtbl.find_opt r.cells name with
  | Some (H h) ->
    if h.edges <> buckets then
      invalid_arg
        (Printf.sprintf "Obs: histogram %S re-registered with another layout"
           name);
    h
  | Some cell -> mismatch name ~want:"histogram" cell
  | None ->
    check_edges name buckets;
    let h =
      { edges = Array.copy buckets;
        counts = Array.make (Array.length buckets + 1) 0;
        sum = 0.0 }
    in
    Hashtbl.replace r.cells name (H h);
    h

(* Smallest i with v <= edges.(i), else the overflow slot. *)
let bucket_of edges v =
  let n = Array.length edges in
  if v > edges.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= edges.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe h v =
  let i = bucket_of h.edges v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v

let register_view r name read =
  r.views <- r.views @ [ (name, fun () -> [ (name, read ()) ]) ]

let register_views r ~prefix read =
  let rename (k, v) = ((if prefix = "" then k else prefix ^ "." ^ k), v) in
  r.views <- r.views @ [ (prefix, fun () -> List.map rename (read ())) ]

module Snapshot = struct
  type histogram_data = {
    edges : float array;
    counts : int array;
    sum : float;
  }

  type metric = Counter of int | Gauge of float | Histogram of histogram_data

  (* Invariant: sorted by name, names unique. *)
  type t = (string * metric) list

  let empty = []
  let metrics t = t
  let find t name = List.assoc_opt name t
  let count (h : histogram_data) = Array.fold_left ( + ) 0 h.counts

  let quantile (h : histogram_data) q =
    let n = count h in
    if n = 0 then None
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
      let b = Array.length h.edges in
      let rec go i seen =
        if i > b then Some Float.infinity
        else
          let seen = seen + h.counts.(i) in
          if seen >= rank then
            if i = b then Some Float.infinity else Some h.edges.(i)
          else go (i + 1) seen
      in
      go 0 0
    end

  let merge_metric name a b =
    match (a, b) with
    | Counter x, Counter y -> Counter (x + y)
    | Gauge x, Gauge y -> Gauge (Float.max x y)
    | Histogram x, Histogram y ->
      if x.edges <> y.edges then
        invalid_arg
          (Printf.sprintf "Obs.Snapshot.merge: %S: bucket layouts differ" name);
      Histogram
        { edges = x.edges;
          counts = Array.init (Array.length x.counts) (fun i ->
              x.counts.(i) + y.counts.(i));
          sum = x.sum +. y.sum }
    | _ ->
      invalid_arg
        (Printf.sprintf "Obs.Snapshot.merge: %S: metric kinds differ" name)

  let rec merge a b =
    match (a, b) with
    | [], t | t, [] -> t
    | (ka, va) :: ra, (kb, vb) :: rb ->
      let c = String.compare ka kb in
      if c < 0 then (ka, va) :: merge ra b
      else if c > 0 then (kb, vb) :: merge a rb
      else (ka, merge_metric ka va vb) :: merge ra rb

  let merge_all = List.fold_left merge empty

  let to_json t =
    J.obj
      (List.map
         (fun (name, m) ->
           ( name,
             match m with
             | Counter v -> J.int v
             | Gauge v -> J.obj [ ("gauge", J.float v) ]
             | Histogram h ->
               J.obj
                 [ ( "buckets",
                     J.list (Array.to_list (Array.map J.float h.edges)) );
                   ("counts", J.list (Array.to_list (Array.map J.int h.counts)));
                   ("sum", J.float h.sum) ] ))
         t)

  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt
  let ( let* ) = Result.bind

  let floats_of name j =
    match J.to_list_opt j with
    | None -> fail "%s: expected a list" name
    | Some xs ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | x :: xs -> (
          match J.to_float_opt x with
          | Some f -> go (f :: acc) xs
          | None -> fail "%s: expected numbers" name)
      in
      go [] xs

  let ints_of name j =
    match J.to_list_opt j with
    | None -> fail "%s: expected a list" name
    | Some xs ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | x :: xs -> (
          match J.to_int_opt x with
          | Some i -> go (i :: acc) xs
          | None -> fail "%s: expected integers" name)
      in
      go [] xs

  let metric_of_json name j =
    match j with
    | J.Int v -> Ok (Counter v)
    | J.Obj _ -> (
      match (J.member "gauge" j, J.member "buckets" j) with
      | Some g, None -> (
        match J.to_float_opt g with
        | Some v -> Ok (Gauge v)
        | None -> fail "%s: gauge is not a number" name)
      | None, Some edges_j -> (
        let* edges = floats_of name edges_j in
        let* counts =
          match J.member "counts" j with
          | Some c -> ints_of name c
          | None -> fail "%s: histogram without counts" name
        in
        let* sum =
          match Option.bind (J.member "sum" j) J.to_float_opt with
          | Some s -> Ok s
          | None -> fail "%s: histogram without sum" name
        in
        if Array.length counts <> Array.length edges + 1 then
          fail "%s: %d counts for %d edges" name (Array.length counts)
            (Array.length edges)
        else
          match check_edges name edges with
          | () -> Ok (Histogram { edges; counts; sum })
          | exception Invalid_argument m -> Error m)
      | _ -> fail "%s: unrecognized metric shape" name)
    | _ -> fail "%s: unrecognized metric shape" name

  let of_json j =
    match J.to_obj_opt j with
    | None -> Error "metrics snapshot is not an object"
    | Some fields ->
      let rec go acc = function
        | [] ->
          Ok
            (List.sort_uniq
               (fun (a, _) (b, _) -> String.compare a b)
               (List.rev acc))
        | (name, v) :: rest ->
          let* m = metric_of_json name v in
          go ((name, m) :: acc) rest
      in
      go [] fields

  let pp ppf t =
    let row ppf (name, m) =
      match m with
      | Counter v -> Fmt.pf ppf "%-40s %d" name v
      | Gauge v -> Fmt.pf ppf "%-40s %g" name v
      | Histogram h ->
        let n = count h in
        let q p = match quantile h p with
          | Some v when Float.is_finite v -> Fmt.str "%g" v
          | Some _ -> ">max"
          | None -> "-"
        in
        Fmt.pf ppf "%-40s n=%-6d sum=%-10g p50=%s p90=%s p99=%s" name n h.sum
          (q 0.5) (q 0.9) (q 0.99)
    in
    Fmt.pf ppf "%a" Fmt.(list ~sep:(any "@\n") row) t
end

let snapshot r =
  let add acc name m =
    match List.assoc_opt name acc with
    | None -> (name, m) :: acc
    | Some prev ->
      (name, Snapshot.merge_metric name prev m)
      :: List.remove_assoc name acc
  in
  let acc =
    Hashtbl.fold
      (fun name cell acc ->
        let m =
          match cell with
          | C c -> Snapshot.Counter !c
          | G g -> Snapshot.Gauge !g
          | H h ->
            Snapshot.Histogram
              { Snapshot.edges = Array.copy h.edges;
                counts = Array.copy h.counts;
                sum = h.sum }
        in
        add acc name m)
      r.cells []
  in
  let acc =
    List.fold_left
      (fun acc (_, read) ->
        List.fold_left
          (fun acc (k, v) -> add acc k (Snapshot.Counter v))
          acc (read ()))
      acc r.views
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) acc
