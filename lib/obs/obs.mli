(** Unified observability: one typed metrics registry shared by the
    simulator and the live runtime.

    A registry holds named counters, gauges and fixed-bucket histograms.
    Recording is O(1) (an increment, or a binary search over a constant
    bucket layout) and allocation-free, so instruments can sit on hot
    paths in both worlds. Existing ad-hoc counters plug in as {e views}:
    closures polled only at snapshot time, so their hot paths stay
    untouched.

    Everything observable funnels through {!snapshot}: an immutable,
    name-sorted capture that serializes to JSON deterministically (same
    observations in the same order produce byte-identical text — the
    property the simulator's same-seed CI gate pins), parses back, and
    merges commutatively and associatively across processes (counters and
    histogram buckets add, gauges take the max), which is how per-node
    metrics lines become one cluster-wide report. *)

open Gmp_base

type registry
type counter
type gauge
type histogram

val create : unit -> registry

val counter : registry -> string -> counter
(** Register (or retrieve) the counter named so. Raises
    [Invalid_argument] if the name is already a different metric kind. *)

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : registry -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?buckets:float array -> registry -> string -> histogram
(** Register (or retrieve) a histogram with the given bucket upper edges
    (strictly increasing, finite; default {!latency_buckets}). Retrieval
    with a different layout raises [Invalid_argument]. *)

val observe : histogram -> float -> unit
(** Bucket semantics are upper-inclusive: bucket [i] counts values [v]
    with [edges.(i-1) < v <= edges.(i)]; values above the last edge land
    in a final overflow bucket. *)

val latency_buckets : float array
(** Log-spaced edges from 1 ms to 500 (seconds on a live wall clock,
    plain time units under the simulator's virtual clock): the default
    layout for every latency histogram, identical in both worlds so
    snapshots merge. *)

val round_buckets : float array
(** Small-integer edges (1..64) for per-burst retransmit-round depths. *)

val register_view : registry -> string -> (unit -> int) -> unit
(** Expose an externally-maintained counter under a stable name; the
    closure is polled at {!snapshot} time only. *)

val register_views :
  registry -> prefix:string -> (unit -> (string * int) list) -> unit
(** List-valued view for counter families whose keys are only known at
    runtime; each key [k] appears as [prefix ^ "." ^ k] ([k] alone when
    [prefix] is [""]). A view key colliding with a registered counter
    sums with it in the snapshot. *)

module Snapshot : sig
  type histogram_data = {
    edges : float array;
    counts : int array;  (** length [Array.length edges + 1]: overflow last *)
    sum : float;
  }

  type metric =
    | Counter of int
    | Gauge of float
    | Histogram of histogram_data

  type t

  val empty : t

  val metrics : t -> (string * metric) list
  (** Sorted by name. *)

  val find : t -> string -> metric option
  val count : histogram_data -> int

  val quantile : histogram_data -> float -> float option
  (** Conservative bucket-edge estimate: the upper edge of the bucket
      holding the rank-[ceil (q * count)] observation. [None] on an empty
      histogram; [Some infinity] when the rank lands in overflow. *)

  val merge : t -> t -> t
  (** Commutative and associative. Raises [Invalid_argument] when one
      name carries two kinds or two bucket layouts. *)

  val merge_all : t list -> t

  val to_json : t -> Json.t
  (** Deterministic: fields sorted by name; counters as bare ints, gauges
      as [{"gauge": x}], histograms as
      [{"buckets": [...], "counts": [...], "sum": x}]. *)

  val of_json : Json.t -> (t, string) result
  val pp : t Fmt.t
end

val snapshot : registry -> Snapshot.t
