(** Bounded, deterministic schedule exploration (stateless model checking).

    Where {!Gmp_workload.Fuzz} samples random adversarial schedules, this
    module {e enumerates} delivery/timer/crash interleavings systematically:
    every ready simulator event inside the engine's ready window (see
    {!Gmp_sim.Engine.ready}) is a choice point, as is every adversarial
    injection the {!adversary} budget still allows. Interleavings are
    explored by iterative-deepening DFS over the first [depth] branching
    points of each execution (the remainder of the run follows the default
    deterministic order), with two reductions:

    - {b sleep-set-style commutation}: immediately after firing an event of
      process [q], a ready event of process [p < q] that was already ready
      before is skipped — the [p]-first order of that commuting pair is
      explored on a sibling branch, so only the sorted representative of
      each same-window reordering class survives;
    - {b state-hash pruning}: at every branching point the full protocol +
      network + pending-event state is hashed; a state seen before with at
      least as much remaining depth is not re-explored.

    [Checker.check_safety] runs after every step that grew the trace, so a
    violation stops the execution at the first step that exhibits it. The
    recorded choice list replays deterministically ({!replay}) and is
    shrunk with {!Gmp_workload.Fuzz.delta_debug} to a minimal
    counterexample. *)

type adversary = {
  crashes : int;  (** max crash injections per execution *)
  suspicions : int;  (** max spurious-suspicion injections per execution *)
  isolations : int;  (** max single-process partitions per execution *)
  heal : bool;  (** may heal an active partition *)
}

val no_adversary : adversary

type model = {
  n : int;  (** initial group size (processes [p0 .. p(n-1)]) *)
  config : Gmp_core.Config.t;
  seed : int;  (** RNG seed for the rebuilt group (delays) *)
  delay : Gmp_net.Delay.t;
  horizon : float;  (** stop each execution at this virtual time *)
  slack : float;  (** engine ready-window width; keep below the minimum
                      message delay so windows never swallow a causal
                      successor *)
  adversary : adversary;
}

val assurance : ?n:int -> ?seed:int -> unit -> model
(** The full algorithm ([Config.default]) under constant delay with a
    one-crash, two-suspicion adversary: exploration must find {e no}
    violation. *)

val sensitivity : ?n:int -> ?seed:int -> unit -> model
(** The weakened algorithm ([Config.basic], no majority requirement on
    updates) with a one-isolation adversary: exploration must rediscover
    the known partition divergence (GMP-2/3). *)

type injection =
  | Crash of int  (** crash [p_i] *)
  | Suspect of int * int  (** [Suspect (o, q)]: [p_o] spuriously suspects [p_q] *)
  | Isolate of int  (** partition [p_i] alone on an island *)
  | Heal

type choice =
  | Fire of int  (** fire the [i]-th candidate of the (reduced) ready window *)
  | Inject of injection

val pp_choice : choice Fmt.t

type stats = {
  executions : int;  (** executions started (the explorer's unit of cost) *)
  distinct : int;  (** distinct completed interleavings (deduplicated by
                       choice list + terminal state hash, across
                       iterative-deepening rounds) *)
  frames : int;  (** branching points expanded in total *)
  state_pruned : int;  (** executions cut short by the state-hash table *)
  sleep_pruned : int;  (** fire candidates skipped by the commutation rule *)
  max_depth : int;  (** deepest iterative-deepening round reached *)
}

val pp_stats : stats Fmt.t

type counterexample = {
  cx_choices : choice list;  (** minimal (delta-debugged) choice prefix *)
  cx_injections : int;  (** adversarial injections among [cx_choices] *)
  cx_violations : Gmp_core.Checker.violation list;
}

type outcome = {
  stats : stats;
  counterexample : counterexample option;
}

val pp_outcome : outcome Fmt.t

val explore :
  ?progress:(stats -> unit) ->
  ?jobs:int ->
  ?split_depth:int ->
  ?snapshots:bool ->
  model ->
  depth:int ->
  budget:int ->
  outcome
(** Enumerate interleavings of [model] with at most [depth] recorded
    branching choices per execution and at most [budget] executions in
    total, deepening iteratively (4, 8, ... up to [depth]). Stops at the
    first safety violation; the returned counterexample is already shrunk
    and replay-verified. Fully deterministic: same model, depth and budget
    give the same outcome. [progress] is invoked every few hundred
    executions.

    Without [jobs], the classic single-domain engine runs (one global
    commit-at-exhaustion fingerprint table). With [jobs = k >= 1], the
    search is partitioned: a sequential frontier pass enumerates every
    choice prefix of [split_depth] (default 3) decisions, each full prefix
    becomes a work item, and [k] worker domains drain the item queue, each
    rebuilding its own groups and pruning against a shared mutex-striped
    fingerprint table whose keys are salted per item. Results are merged in
    frontier order under the global budget, so the outcome — violations,
    distinct-interleaving count, every statistic — is identical for every
    [jobs] value, including 1. It can differ from the [jobs]-less engine
    only in [distinct]/[state_pruned] (pruning scope is per work item
    rather than global — a documented, deterministic difference); the
    violation verdict never differs. Raises [Invalid_argument] for
    [jobs < 1].

    [snapshots] (default [true]) selects checkpoint/restore backtracking:
    each DFS round runs in one world, captures a {!Gmp_runtime.Group}
    checkpoint at every decision frame, and enters sibling branches by
    restoring the frame where the prefix increments instead of re-executing
    the shared prefix from the root — O(world) per backtrack instead of
    O(prefix events). [~snapshots:false] keeps the original
    rebuild-and-replay engine as a cross-checking oracle; the two produce
    byte-identical outcomes (every statistic, the distinct-interleaving
    count and the counterexample) for any [jobs] value. *)

val replay : model -> choice list -> Gmp_core.Checker.violation list
(** Re-execute a recorded choice list on a freshly built group (prefix
    replay; out-of-range or no-longer-legal choices degrade to the default
    candidate) and return the safety verdict. *)

val describe : model -> choice list -> string list
(** Replay a choice list and narrate every applied choice (deliveries with
    endpoints, timers with owners, injections) — the human-readable form of
    a counterexample. *)
