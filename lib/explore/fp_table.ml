(* Mutex-striped sharded fingerprint table for the parallel explorer.

   One logical map from state fingerprints to "the deepest remaining depth
   at which this state's subtree has been exhausted", shared by every worker
   domain. Keys are spread over power-of-two shards, each a plain [Hashtbl]
   behind its own mutex, so concurrent workers contend only when their keys
   land on the same stripe.

   Determinism note: the table's *contents* are racy in the harmless sense
   (two workers may both insert before either sees the other), but the
   explorer's callers mix a per-work-item salt into every key, so entries
   from different work items never interact — each item sees exactly the
   pruning state its own subtree produced, in its own DFS order. The shard
   striping is purely about memory pooling and lock contention, never about
   the result. *)

type shard = { lock : Mutex.t; tbl : (int, int) Hashtbl.t }

type t = { shards : shard array; mask : int }

let default_shards = 64

let create ?(shards = default_shards) () =
  if shards < 1 then invalid_arg "Fp_table.create: need at least one shard";
  (* Round up to a power of two so shard selection is a mask. *)
  let n = ref 1 in
  while !n < shards do
    n := !n * 2
  done;
  { shards =
      Array.init !n (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create 256 });
    mask = !n - 1 }

let shard_count t = Array.length t.shards

(* Keys are already fingerprint-quality hashes; fold the high bits down so
   shard choice isn't just the low bits of whatever fp_mix left there. *)
let shard_of t key =
  let h = key lxor (key lsr 17) lxor (key lsr 31) in
  t.shards.(h land t.mask)

let note_exhausted t ~key ~remaining =
  let s = shard_of t key in
  Mutex.protect s.lock (fun () ->
      match Hashtbl.find_opt s.tbl key with
      | Some r when r >= remaining -> ()
      | _ -> Hashtbl.replace s.tbl key remaining)

let prunable t ~key ~remaining =
  let s = shard_of t key in
  Mutex.protect s.lock (fun () ->
      match Hashtbl.find_opt s.tbl key with
      | Some r -> r >= remaining
      | None -> false)

let length t =
  Array.fold_left
    (fun acc s -> acc + Mutex.protect s.lock (fun () -> Hashtbl.length s.tbl))
    0 t.shards

let shard_sizes t =
  Array.map (fun s -> Mutex.protect s.lock (fun () -> Hashtbl.length s.tbl))
    t.shards
