(** Mutex-striped sharded fingerprint table.

    The parallel explorer's shared state-hash store: maps a fingerprint key
    to the deepest remaining depth at which that state's subtree has been
    exhausted. Safe to hammer from many domains at once; each key lives on
    one of [shards] stripes behind its own mutex. Callers are responsible
    for salting keys per logical scope (the explorer mixes a work-item id
    in) when entries must not leak between scopes. *)

type t

val create : ?shards:int -> unit -> t
(** [shards] (default 64) is rounded up to a power of two. *)

val note_exhausted : t -> key:int -> remaining:int -> unit
(** Max-merge: record that the subtree under [key] is exhausted with
    [remaining] depth to spare; keeps the larger of the stored and given
    values. *)

val prunable : t -> key:int -> remaining:int -> bool
(** Has [key] been exhausted with at least [remaining] depth to spare? *)

val length : t -> int
(** Total entries across all shards. *)

val shard_count : t -> int

val shard_sizes : t -> int array
(** Entries per shard, for balance diagnostics and tests. *)
