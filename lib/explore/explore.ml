(* Bounded deterministic schedule exploration (stateless model checking).

   Each execution steps the engine by hand: at every branching point — more
   than one event in the ready window, or an adversarial injection still in
   budget — a [decide] callback picks the continuation. The explorer
   enumerates prefixes of such decisions by rightmost-increment DFS with
   iterative deepening.

   Backtracking is checkpoint-based: at every decision frame the session
   captures the whole world ({!Group.checkpoint} — engine heap, network
   matrices, member protocol state, trace cursors, RNGs) plus the loop's own
   bookkeeping, and moving to the next DFS prefix restores the frame where
   the prefix increments instead of re-executing the shared prefix from the
   root. A capture is flat-array blits plus O(1) copy-on-write clock
   publishes, so backtracking costs O(world) instead of O(depth x prefix
   events). The pre-snapshot engine — rebuild the group from the model
   (fixed config, seed and delay distribution make the rebuild a pure
   function of the choices) and replay every prefix from scratch — survives
   behind [~snapshots:false] as a cross-checking oracle; both produce
   byte-identical outcomes (asserted in the test suite and CI).

   Two reductions keep the tree tractable:

   - sleep-set-style commutation: right after firing an event of process q,
     a still-ready event of process p < q that was already ready before is
     skipped; the p-first order of that commuting pair lives on a sibling
     branch. Because [Engine.fire] pins [now] to the window base, the two
     orders are time-identical, so the skipped branch is a true duplicate.
   - state-hash pruning: branching states are fingerprinted (all members'
     protocol state + network adversarial state + pending events at
     quantized relative fire times + adversary budgets spent). A state
     whose subtree has been fully explored with at least as much remaining
     depth is not re-entered. Entries are committed only when the DFS pops
     the subtree (rightmost-increment moves above it) — committing at first
     visit would prune the very siblings the DFS is about to enumerate. *)

open Gmp_base
module Engine = Gmp_sim.Engine
module Network = Gmp_net.Network
module Delay = Gmp_net.Delay
module Config = Gmp_core.Config
module Group = Gmp_runtime.Group
module Member = Gmp_core.Member
module View = Gmp_core.View
module Trace = Gmp_core.Trace
module Checker = Gmp_core.Checker
module Fuzz = Gmp_workload.Fuzz

type adversary = {
  crashes : int;
  suspicions : int;
  isolations : int;
  heal : bool;
}

let no_adversary = { crashes = 0; suspicions = 0; isolations = 0; heal = false }

type model = {
  n : int;
  config : Config.t;
  seed : int;
  delay : Delay.t;
  horizon : float;
  slack : float;
  adversary : adversary;
}

(* Constant delay keeps every window a clean tie (all heartbeats of a round
   deliver at the same instant); slack 0.5 < delay 1.0 so a window never
   swallows a message caused by an event inside it. *)
let assurance ?(n = 3) ?(seed = 1) () =
  { n;
    config = Config.default;
    seed;
    delay = Delay.constant 1.0;
    horizon = 40.0;
    slack = 0.5;
    adversary = { no_adversary with crashes = 1; suspicions = 2 } }

let sensitivity ?(n = 5) ?(seed = 1) () =
  { n;
    config = Config.basic;
    seed;
    delay = Delay.constant 1.0;
    horizon = 80.0;
    slack = 0.5;
    adversary = { no_adversary with isolations = 1 } }

type injection =
  | Crash of int
  | Suspect of int * int
  | Isolate of int
  | Heal

type choice = Fire of int | Inject of injection

let pp_injection ppf = function
  | Crash i -> Fmt.pf ppf "crash p%d" i
  | Suspect (o, tg) -> Fmt.pf ppf "suspect p%d->p%d" o tg
  | Isolate i -> Fmt.pf ppf "isolate p%d" i
  | Heal -> Fmt.string ppf "heal"

let pp_choice ppf = function
  | Fire i -> Fmt.pf ppf "fire#%d" i
  | Inject inj -> pp_injection ppf inj

type stats = {
  executions : int;
  distinct : int;
  frames : int;
  state_pruned : int;
  sleep_pruned : int;
  max_depth : int;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "%d executions, %d distinct interleavings, %d frames expanded, %d \
     state-pruned, %d sleep-pruned, depth<=%d"
    s.executions s.distinct s.frames s.state_pruned s.sleep_pruned s.max_depth

type counterexample = {
  cx_choices : choice list;
  cx_injections : int;
  cx_violations : Checker.violation list;
}

type outcome = {
  stats : stats;
  counterexample : counterexample option;
}

let pp_outcome ppf o =
  match o.counterexample with
  | None -> Fmt.pf ppf "no violation (%a)" pp_stats o.stats
  | Some cx ->
    Fmt.pf ppf "VIOLATION after %d executions: [%a] -> %a"
      o.stats.executions
      Fmt.(list ~sep:(any "; ") pp_choice)
      cx.cx_choices
      Fmt.(list ~sep:(any "; ") Checker.pp_violation)
      cx.cx_violations

(* ---- one bounded execution ---- *)

type budgets = {
  mutable u_crashes : int;
  mutable u_suspicions : int;
  mutable u_isolations : int;
  mutable isolated : int option;
}

type frame = {
  f_ncands : int;
  f_chosen : int;
  f_choice : choice;
  f_fp : int;
  f_remaining : int;
}

type run_result = {
  r_frames : frame list; (* in decision order *)
  r_violations : Checker.violation list;
  r_pruned : bool;
  r_hit_depth : bool; (* branching remained beyond the recorded depth *)
  r_final_fp : int;
  r_sleep_skips : int;
}

let fp_mix h x = (h * 0x01000193) lxor (x land max_int)

(* Protocol + network + pending-event + adversary-budget state. Pending
   events hash by (relative fire time, proc, chan) combined additively, so
   the heap's internal order is irrelevant; relative times make the hash
   invariant under time translation. *)
let state_fp group st =
  let engine = Group.engine group in
  let now = Engine.now engine in
  let pending =
    Engine.fold_live engine ~init:0 ~f:(fun acc h ->
        let rel = int_of_float ((Engine.fire_time h -. now) *. 1e6) in
        let e =
          fp_mix
            (fp_mix (fp_mix 0x811c9dc5 rel) (Engine.proc_of h + 1))
            (Engine.chan_of h + 1)
        in
        acc + (e lor 1))
  in
  let h = fp_mix (Group.fingerprint group) pending in
  let h = fp_mix h st.u_crashes in
  let h = fp_mix h st.u_suspicions in
  let h = fp_mix h st.u_isolations in
  fp_mix h (match st.isolated with None -> -1 | Some i -> i)

(* Injections offered at a branching point, in DFS order (adversarial moves
   first, so the interesting schedules surface early). Pointless branches —
   crashing a dead process, isolating the already-isolated one, suspecting a
   process already deemed faulty — are not offered. *)
let injection_candidates m group st =
  let adv = m.adversary in
  let alive i = Member.operational (Group.nth group i) in
  let acc = ref [] in
  (* built back-to-front: Isolate, then Crash, then Suspect, then Heal *)
  if adv.heal && st.isolated <> None then acc := Heal :: !acc;
  if st.u_suspicions < adv.suspicions then
    for o = m.n - 1 downto 0 do
      let obs = Group.nth group o in
      if Member.operational obs && Member.joined obs then
        for tg = m.n - 1 downto 0 do
          if tg <> o then begin
            let tgt = Member.pid (Group.nth group tg) in
            if
              List.exists (Pid.equal tgt) (View.members (Member.view obs))
              && not (Pid.Set.mem tgt (Member.faulty_set obs))
            then acc := Suspect (o, tg) :: !acc
          end
        done
    done;
  if st.u_crashes < adv.crashes then
    for i = m.n - 1 downto 0 do
      if alive i then acc := Crash i :: !acc
    done;
  if st.u_isolations < adv.isolations then
    for i = m.n - 1 downto 0 do
      if alive i && st.isolated <> Some i then acc := Isolate i :: !acc
    done;
  !acc

let apply_injection group st inj =
  match inj with
  | Crash i ->
    st.u_crashes <- st.u_crashes + 1;
    Member.inject_crash (Group.nth group i)
  | Suspect (o, tg) ->
    st.u_suspicions <- st.u_suspicions + 1;
    Member.inject_suspicion (Group.nth group o) (Member.pid (Group.nth group tg))
  | Isolate i ->
    st.u_isolations <- st.u_isolations + 1;
    st.isolated <- Some i;
    Network.partition (Group.network group) [ [ Member.pid (Group.nth group i) ] ]
  | Heal ->
    st.isolated <- None;
    Network.heal (Group.network group)

let describe_fire group h =
  let net = Group.network group in
  let t = Engine.fire_time h in
  match Network.decode_chan net (Engine.chan_of h) with
  | Some (src, dst) -> Fmt.str "t=%.2f deliver %a->%a" t Pid.pp src Pid.pp dst
  | None -> (
    match Network.pid_of_slot net (Engine.proc_of h) with
    | Some pid -> Fmt.str "t=%.2f timer at %a" t Pid.pp pid
    | None -> Fmt.str "t=%.2f event" t)

let build m =
  let group =
    Group.create ~config:m.config ~delay:m.delay ~seed:m.seed ~n:m.n ()
  in
  Engine.set_slack (Group.engine group) m.slack;
  group

(* Livelock guard per execution; real runs take a few hundred steps. *)
let max_exec_steps = 200_000

(* Mutable per-execution loop state, split out so a checkpoint can capture
   and a restore can rewind it alongside the world itself. *)
type exec_state = {
  mutable x_frames : frame list; (* reversed *)
  mutable x_nframes : int;
  mutable x_violations : Checker.violation list;
  mutable x_last_len : int;
  mutable x_pruned : bool;
  mutable x_hit_depth : bool;
  mutable x_sleep : int;
  mutable x_prev_fired : Engine.handle option;
  mutable x_prev_ready : Engine.handle list;
  mutable x_steps : int;
}

(* A decision-frame checkpoint: the world ({!Group.checkpoint}) plus the
   adversary budgets, the loop bookkeeping and the frame's own candidate
   set. [cp_ready]/[cp_fires] hold engine handles by reference — restore is
   in-place, so after [Group.restore] the very same handle objects are live
   in the heap again and can be fired directly without recomputing the
   window. The sleep filter's physical-equality test ([List.memq] against
   [cp_prev_ready]) survives restore for the same reason. *)
type cp = {
  cp_world : Group.checkpoint;
  cp_crashes : int;
  cp_suspicions : int;
  cp_isolations : int;
  cp_isolated : int option;
  cp_frames : frame list; (* frames strictly before this one, reversed *)
  cp_last_len : int;
  cp_sleep : int;
  cp_prev_fired : Engine.handle option;
  cp_prev_ready : Engine.handle list;
  cp_steps : int;
  cp_ready : Engine.handle list;
  cp_fires : Engine.handle list;
  cp_cands : choice array;
  cp_fp : int;
}

(* One exploration session: a single world reused across the executions of
   a DFS round, with a checkpoint slot per decision index. Slots above the
   current run's frame count go stale when the DFS descends a new subtree,
   but [next_prefix] only ever resumes at indices the current run recorded,
   so stale slots are never read. With [ncps = 0] (the replay paths and the
   [~snapshots:false] oracle) no captures happen and every execution must
   start from a fresh session. *)
type session = {
  s_model : model;
  s_group : Group.t;
  s_engine : Engine.t;
  s_trace : Trace.t;
  s_initial : Pid.t list;
  s_st : budgets;
  s_x : exec_state;
  s_cps : cp option array;
}

let make_session m ~ncps =
  let group = build m in
  { s_model = m;
    s_group = group;
    s_engine = Group.engine group;
    s_trace = Group.trace group;
    s_initial = Group.initial group;
    s_st =
      { u_crashes = 0; u_suspicions = 0; u_isolations = 0; isolated = None };
    s_x =
      { x_frames = [];
        x_nframes = 0;
        x_violations = [];
        x_last_len = Trace.length (Group.trace group);
        x_pruned = false;
        x_hit_depth = false;
        x_sleep = 0;
        x_prev_fired = None;
        x_prev_ready = [];
        x_steps = 0 };
    s_cps = Array.make ncps None }

(* The only event kinds [Checker.check_safety] reads: GMP-1 folds over
   [Faulty]/[Removed], GMP-0/2/3/4 over [Installed], and the internal check
   over [Violation]. Appending any other kind cannot change a verdict that
   was clean, so the full-trace rescan is skipped unless the step recorded
   at least one of these. *)
let checker_relevant = function
  | Trace.Faulty _ | Trace.Removed _ | Trace.Installed _ | Trace.Violation _
    ->
    true
  | _ -> false

let check sess =
  let x = sess.s_x in
  let len = Trace.length sess.s_trace in
  if len <> x.x_last_len then begin
    let relevant = ref false in
    for i = x.x_last_len to len - 1 do
      if checker_relevant (Trace.get sess.s_trace i).Trace.kind then
        relevant := true
    done;
    x.x_last_len <- len;
    if !relevant then
      match Checker.check_safety sess.s_trace ~initial:sess.s_initial with
      | [] -> ()
      | vs -> x.x_violations <- vs
  end

let fire_and_track sess ~narrate ready h =
  (match narrate with
  | Some f -> f (describe_fire sess.s_group h)
  | None -> ());
  Engine.fire sess.s_engine h;
  sess.s_x.x_prev_fired <- Some h;
  sess.s_x.x_prev_ready <- ready

(* Record frame [x_nframes] with candidate [k] and apply the choice. *)
let take sess ~depth ~narrate ~ready ~fires ~cands ~fp k =
  let x = sess.s_x in
  let k = if k < 0 || k >= Array.length cands then 0 else k in
  x.x_frames <-
    { f_ncands = Array.length cands;
      f_chosen = k;
      f_choice = cands.(k);
      f_fp = fp;
      f_remaining = depth - x.x_nframes }
    :: x.x_frames;
  x.x_nframes <- x.x_nframes + 1;
  (match cands.(k) with
  | Fire i -> fire_and_track sess ~narrate ready (List.nth fires i)
  | Inject inj ->
    (match narrate with
    | Some f ->
      f (Fmt.str "t=%.2f %a" (Engine.now sess.s_engine) pp_injection inj)
    | None -> ());
    apply_injection sess.s_group sess.s_st inj;
    x.x_prev_fired <- None;
    x.x_prev_ready <- []);
  check sess

(* Once the decision budget is spent, the rest of the run — the "default
   tail" — is a pure function of the world state at that point: no choices,
   no injections, just default-order stepping until quiescence, the horizon
   or a violation. The memo records the tail outcome keyed by the state
   fingerprint of {e every} state the tail passes through, not just its
   entry: a fresh tail executes only until its trajectory merges with any
   previously explored one, then splices the stored suffix outcome (final
   fingerprint, violations, remaining step count) and stops. Schedules that
   converge to a common state — commuting orders the sleep filter could not
   cancel, late reorderings of the same heartbeat round — therefore share
   the common suffix once. This leans on the same state-hash assumption as
   the pruning table (same fingerprint => same future), and both engines
   consult the memo identically, so snapshots on/off remain byte-identical.
   Entries are only stored for tails that completed within the step guard,
   and a hit is only taken when the stored step count fits under the guard
   from this run's position — a guard-truncated tail is prefix-dependent
   and must re-execute. *)
type tail_rec = {
  t_final_fp : int;
  t_violations : Checker.violation list;
  t_hit_depth : bool; (* a >=2-wide window occurs in this suffix *)
  t_steps : int; (* loop iterations from this state to run end, inclusive *)
}

let result_of ?final_fp sess =
  let x = sess.s_x in
  { r_frames = List.rev x.x_frames;
    r_violations = x.x_violations;
    r_pruned = x.x_pruned;
    r_hit_depth = x.x_hit_depth;
    r_final_fp =
      (match final_fp with
      | Some fp -> fp
      | None -> state_fp sess.s_group sess.s_st);
    r_sleep_skips = x.x_sleep }

(* Drive the current execution to its end, consulting [decide] at every
   branching point up to [depth] decisions and following the default order
   beyond. [prune fp remaining] is a read-only oracle ("has this state been
   exhausted with at least [remaining] depth to spare?"); commits happen in
   the DFS controller once a subtree is exhausted. When the session has
   checkpoint slots, every decision frame that passes the prune check is
   captured before [decide] runs, so any sibling can later be entered by
   restore. *)
let finish_run ?memo sess ~depth ~prune ~decide ~narrate =
  let m = sess.s_model in
  let st = sess.s_st in
  let x = sess.s_x in
  let engine = sess.s_engine in
  (* (fingerprint, steps-at-state) for every tail state this run executed
     through, most recent first; turned into memo entries once the run's
     end (and thus each suffix's outcome) is known. *)
  let tail_keys = ref [] in
  (* last loop iteration that saw a >=2-wide window, for per-suffix
     [t_hit_depth] (a cumulative boolean could not tell whether the wide
     window fell before or after a given recorded state). *)
  let last_wide = ref 0 in
  (* set on a memo hit: (final fingerprint, spliced suffix had a wide
     window) — the executed lead-in states still get memo entries, their
     suffixes ending through the stored trajectory. *)
  let memo_fp = ref None in
  let hit_wide = ref false in
  (try
     while x.x_violations = [] do
       x.x_steps <- x.x_steps + 1;
       if x.x_steps > max_exec_steps then raise Exit;
       match Engine.ready engine with
       | [] -> raise Exit (* quiescent *)
       | hd :: _ as ready ->
         if Engine.fire_time hd > m.horizon then raise Exit;
         if x.x_nframes >= depth then begin
           (* decision budget spent: deterministic default tail *)
           (match memo with
           | Some tbl ->
             let key = state_fp sess.s_group st in
             (match Hashtbl.find_opt tbl key with
             | Some tr when x.x_steps - 1 + tr.t_steps <= max_exec_steps ->
               x.x_violations <- tr.t_violations;
               x.x_hit_depth <- x.x_hit_depth || tr.t_hit_depth;
               x.x_steps <- x.x_steps - 1 + tr.t_steps;
               memo_fp := Some tr.t_final_fp;
               hit_wide := tr.t_hit_depth;
               raise Exit
             | _ -> tail_keys := (key, x.x_steps) :: !tail_keys)
           | None -> ());
           (match ready with
           | _ :: _ :: _ ->
             x.x_hit_depth <- true;
             last_wide := x.x_steps
           | _ -> ());
           Engine.fire engine hd;
           x.x_prev_fired <- Some hd;
           x.x_prev_ready <- ready;
           check sess
         end
         else begin
           (* Sleep filter: drop events that reorder backwards (towards a
              lower process slot) against the event just fired — that order
              was already offered on an earlier sibling. If everything is
              filtered, fall back to the unfiltered window. *)
           let fires =
             match x.x_prev_fired with
             | Some g when Engine.proc_of g >= 0 ->
               let gp = Engine.proc_of g in
               let prev = x.x_prev_ready in
               List.filter
                 (fun h ->
                   let hp = Engine.proc_of h in
                   not (hp >= 0 && hp < gp && List.memq h prev))
                 ready
             | _ -> ready
           in
           let fires = if fires = [] then ready else fires in
           x.x_sleep <- x.x_sleep + (List.length ready - List.length fires);
           let injections = injection_candidates m sess.s_group st in
           match (injections, fires) with
           | [], [ only ] ->
             (* no real branching: apply without consuming depth *)
             fire_and_track sess ~narrate ready only;
             check sess
           | _ ->
             let fp = state_fp sess.s_group st in
             if prune fp (depth - x.x_nframes) then begin
               x.x_pruned <- true;
               raise Exit
             end;
             let cands =
               Array.of_list
                 (List.map (fun i -> Inject i) injections
                 @ List.mapi (fun i _ -> Fire i) fires)
             in
             if x.x_nframes < Array.length sess.s_cps then
               sess.s_cps.(x.x_nframes) <-
                 Some
                   { cp_world = Group.checkpoint sess.s_group;
                     cp_crashes = st.u_crashes;
                     cp_suspicions = st.u_suspicions;
                     cp_isolations = st.u_isolations;
                     cp_isolated = st.isolated;
                     cp_frames = x.x_frames;
                     cp_last_len = x.x_last_len;
                     cp_sleep = x.x_sleep;
                     cp_prev_fired = x.x_prev_fired;
                     cp_prev_ready = x.x_prev_ready;
                     cp_steps = x.x_steps;
                     cp_ready = ready;
                     cp_fires = fires;
                     cp_cands = cands;
                     cp_fp = fp };
             take sess ~depth ~narrate ~ready ~fires ~cands ~fp
               (decide x.x_nframes cands)
         end
     done
   with Exit -> ());
  let final_fp =
    match !memo_fp with
    | Some fp -> fp
    | None ->
      (* A pruned run's final fingerprint is never read (the controllers
         only key completed interleavings), and a pruned run records no
         tail keys — skip the hash. *)
      if x.x_pruned then 0 else state_fp sess.s_group st
  in
  (match memo with
  | Some tbl when x.x_steps <= max_exec_steps ->
    List.iter
      (fun (key, at_steps) ->
        Hashtbl.replace tbl key
          { t_final_fp = final_fp;
            t_violations = x.x_violations;
            t_hit_depth = !last_wide >= at_steps || !hit_wide;
            t_steps = x.x_steps - at_steps + 1 })
      !tail_keys
  | _ -> ());
  result_of ~final_fp sess

(* Enter the sibling branch [choice] of decision frame [at] by restoring
   its checkpoint: the world rewinds in place, the loop state reloads from
   the capture, the forced sibling is taken, and the run continues with the
   default decision order (rightmost-increment prefixes are default-0 past
   the incremented index). This replaces re-executing the whole prefix from
   the root — the saving that makes the explorer fast. *)
let resume_run ?memo sess ~depth ~prune ~narrate ~at ~choice =
  let cp =
    match sess.s_cps.(at) with
    | Some c -> c
    | None -> invalid_arg "Explore.resume_run: no checkpoint at this frame"
  in
  Group.restore sess.s_group cp.cp_world;
  let st = sess.s_st in
  st.u_crashes <- cp.cp_crashes;
  st.u_suspicions <- cp.cp_suspicions;
  st.u_isolations <- cp.cp_isolations;
  st.isolated <- cp.cp_isolated;
  let x = sess.s_x in
  x.x_frames <- cp.cp_frames;
  x.x_nframes <- at;
  x.x_violations <- [];
  x.x_last_len <- cp.cp_last_len;
  x.x_pruned <- false;
  x.x_hit_depth <- false;
  x.x_sleep <- cp.cp_sleep;
  x.x_prev_fired <- cp.cp_prev_fired;
  x.x_prev_ready <- cp.cp_prev_ready;
  x.x_steps <- cp.cp_steps;
  if prune cp.cp_fp (depth - at) then begin
    (* Unreachable within a round: commits since this frame was captured
       all carry strictly less remaining depth than a prefix frame holds
       (the DFS commits only below the incremented index), and the capture
       itself proves the previous visit passed this check. Kept as a guard
       so a pruning-policy change can never silently desync the snapshot
       path from the replay oracle — it fails identically instead. *)
    x.x_pruned <- true;
    result_of sess
  end
  else begin
    take sess ~depth ~narrate ~ready:cp.cp_ready ~fires:cp.cp_fires
      ~cands:cp.cp_cands ~fp:cp.cp_fp choice;
    finish_run ?memo sess ~depth ~prune ~decide:(fun _ _ -> 0) ~narrate
  end

(* One full execution on a throwaway world — the replay paths and the
   [~snapshots:false] oracle engine. *)
let execute ?memo m ~depth ~prune ~decide ~narrate =
  finish_run ?memo (make_session m ~ncps:0) ~depth ~prune ~decide ~narrate

(* ---- replay ---- *)

(* Map a stored choice onto the current candidate array. On an exact replay
   candidates match one-to-one; during shrinking, dropped choices shift the
   later ones, so out-of-range fire indices clamp to the last fire and
   no-longer-legal injections degrade to the first fire candidate. *)
let resolve c cands =
  let ncands = Array.length cands in
  match c with
  | Inject inj ->
    let rec find i =
      if i >= ncands then None
      else
        match cands.(i) with
        | Inject inj' when inj' = inj -> Some i
        | _ -> find (i + 1)
    in
    (match find 0 with
    | Some i -> i
    | None ->
      let rec first_fire i =
        if i >= ncands then 0
        else match cands.(i) with Fire _ -> i | Inject _ -> first_fire (i + 1)
      in
      first_fire 0)
  | Fire i ->
    let base = ref (-1) in
    let nf = ref 0 in
    Array.iteri
      (fun k c' ->
        match c' with
        | Fire _ ->
          if !base < 0 then base := k;
          incr nf
        | Inject _ -> ())
      cands;
    if !nf = 0 then 0 else !base + min i (!nf - 1)

let run_choices m choices ~narrate =
  let q = ref choices in
  let decide _k cands =
    match !q with
    | [] -> 0
    | c :: rest ->
      q := rest;
      resolve c cands
  in
  execute m ~depth:(List.length choices) ~prune:(fun _ _ -> false) ~decide
    ~narrate

let replay m choices = (run_choices m choices ~narrate:None).r_violations

let describe m choices =
  let lines = ref [] in
  let r = run_choices m choices ~narrate:(Some (fun s -> lines := s :: !lines)) in
  let verdicts =
    List.map (fun v -> Fmt.str "%a" Checker.pp_violation v) r.r_violations
  in
  List.rev !lines @ verdicts

(* ---- DFS controller ---- *)

let choice_code = function
  | Fire i -> (i lsl 3) lor 1
  | Inject (Crash i) -> (i lsl 3) lor 2
  | Inject (Suspect (o, tg)) -> (((o lsl 12) lor tg) lsl 3) lor 3
  | Inject (Isolate i) -> (i lsl 3) lor 4
  | Inject Heal -> 5

let interleaving_key frames final_fp =
  List.fold_left
    (fun h f -> fp_mix h (choice_code f.f_choice))
    (final_fp land max_int) frames

(* Rightmost frame at index >= [floor] with an unexplored sibling; returns
   the advanced prefix and the index that moved. The floor freezes a leading
   choice prefix: the parallel engine's work items never increment inside
   the prefix that defines them. *)
let next_prefix ?(floor = 0) frames =
  let arr = Array.of_list frames in
  let rec scan i =
    if i < floor then None
    else if arr.(i).f_chosen + 1 < arr.(i).f_ncands then
      Some
        ( Array.init (i + 1) (fun j ->
              if j = i then arr.(j).f_chosen + 1 else arr.(j).f_chosen),
          i )
    else scan (i - 1)
  in
  scan (Array.length arr - 1)

(* Shrink the raw violating choice list to a minimal, replay-verified
   counterexample. *)
let shrink_counterexample m = function
  | None -> None
  | Some (choices, found_violations) ->
    let still_fails cs = replay m cs <> [] in
    let minimal = Fuzz.delta_debug ~still_fails choices in
    let violations = replay m minimal in
    (* delta_debug keeps lists non-empty; if even the empty/default
       schedule violates, fall back to what the search recorded *)
    let minimal, violations =
      if violations = [] then (choices, found_violations)
      else (minimal, violations)
    in
    Some
      { cx_choices = minimal;
        cx_injections =
          List.length
            (List.filter
               (function Inject _ -> true | Fire _ -> false)
               minimal);
        cx_violations = violations }

let explore_seq ?progress ~snapshots m ~depth ~budget =
  let seen : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let distinct : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let execs = ref 0 in
  let frames_total = ref 0 in
  let state_pruned = ref 0 in
  let sleep_skips = ref 0 in
  let max_d = ref 0 in
  let cex = ref None in
  let stats () =
    { executions = !execs;
      distinct = Hashtbl.length distinct;
      frames = !frames_total;
      state_pruned = !state_pruned;
      sleep_pruned = !sleep_skips;
      max_depth = !max_d }
  in
  (* Frames strictly below the incremented index have exhausted their
     subtrees: remember their states so other paths reaching them are
     pruned. Committing any earlier would prune unexplored siblings. *)
  let commit frames upto =
    List.iteri
      (fun i f ->
        if i > upto then begin
          let prev =
            match Hashtbl.find_opt seen f.f_fp with
            | Some r -> r
            | None -> min_int
          in
          if f.f_remaining > prev then Hashtbl.replace seen f.f_fp f.f_remaining
        end)
      frames
  in
  let prune fp remaining =
    match Hashtbl.find_opt seen fp with
    | Some r -> r >= remaining
    | None -> false
  in
  (* Default-tail outcomes, shared across rounds (tails are depth-free). *)
  let memo : (int, tail_rec) Hashtbl.t = Hashtbl.create 4096 in
  let round d =
    max_d := max !max_d d;
    (* One world per round when snapshotting: the first execution runs it
       from scratch, every later one backtracks into it by restore. *)
    let sess = if snapshots then Some (make_session m ~ncps:d) else None in
    let prefix = ref [||] in
    let resume = ref None in
    let exhausted = ref false in
    let deeper = ref false in
    while (not !exhausted) && !execs < budget && !cex = None do
      incr execs;
      let r =
        match sess with
        | Some sess -> (
          match !resume with
          | None ->
            finish_run ~memo sess ~depth:d ~prune
              ~decide:(fun _ _ -> 0)
              ~narrate:None
          | Some (i, k) ->
            resume_run ~memo sess ~depth:d ~prune ~narrate:None ~at:i
              ~choice:k)
        | None ->
          let p = !prefix in
          let decide k _cands = if k < Array.length p then p.(k) else 0 in
          execute ~memo m ~depth:d ~prune ~decide ~narrate:None
      in
      frames_total := !frames_total + List.length r.r_frames;
      sleep_skips := !sleep_skips + r.r_sleep_skips;
      if r.r_pruned then incr state_pruned
      else begin
        let key = interleaving_key r.r_frames r.r_final_fp in
        if not (Hashtbl.mem distinct key) then Hashtbl.add distinct key ()
      end;
      if r.r_hit_depth then deeper := true;
      if r.r_violations <> [] then
        cex := Some (List.map (fun f -> f.f_choice) r.r_frames, r.r_violations)
      else begin
        match next_prefix r.r_frames with
        | None ->
          commit r.r_frames (-1);
          exhausted := true
        | Some (p, i) ->
          commit r.r_frames i;
          prefix := p;
          resume := Some (i, p.(i))
      end;
      match progress with
      | Some f when !execs mod 200 = 0 -> f (stats ())
      | _ -> ()
    done;
    !deeper
  in
  let rec rounds d =
    let deeper = round d in
    (* Deepen only while executions were actually cut off by the depth
       bound — once the full tree fits, further rounds would just repeat. *)
    if !cex = None && !execs < budget && d < depth && deeper then
      rounds (min depth (d * 2))
  in
  rounds (min depth 4);
  { stats = stats (); counterexample = shrink_counterexample m !cex }

(* ---- parallel (partitioned) exploration ----

   The search tree is partitioned by *choice prefixes*: a sequential
   frontier pass enumerates the first [split_depth] decisions of every
   execution (no pruning, so the partition is a pure function of the model),
   and each execution that used its full decision budget becomes a work
   item — the subtree of schedules extending that prefix. Worker domains
   pull items off a shared queue in index order and run the ordinary
   iterative-deepening DFS inside their item, with [next_prefix ~floor]
   freezing the item's prefix. Each execution rebuilds its own
   Group/Engine, so workers share no protocol state; the only shared
   structures are the striped fingerprint table (keys salted per item, so
   pruning scope is item-local and timing-independent) and three atomics
   (work index, execution total, first-violating-item index).

   Determinism: every worker records its executions as a self-contained
   stream, and each item's stream is a deterministic function of (model,
   prefix, depth) — any truncation of it is a prefix of the same stream.
   The merge walks items in frontier order, grants each the budget left at
   its turn, truncates or (for racily-aborted but still-needed items)
   re-runs deterministically, and stops at the first violation in item
   order. The result is identical for any [jobs], including 1. *)

type exec_record = {
  e_key : int option; (* interleaving key; None when state-pruned *)
  e_frames : int;
  e_sleep : int;
  e_depth : int; (* iterative-deepening round this execution ran at *)
  e_violation : (choice list * Checker.violation list) option;
}

type item_result = {
  i_records : exec_record list; (* in DFS order *)
  i_complete : bool; (* the item's full deterministic stream *)
}

let not_run = { i_records = []; i_complete = false }

let record_of_run ~depth:d r =
  { e_key =
      (if r.r_pruned then None
       else Some (interleaving_key r.r_frames r.r_final_fp));
    e_frames = List.length r.r_frames;
    e_sleep = r.r_sleep_skips;
    e_depth = d;
    e_violation =
      (if r.r_violations = [] then None
       else Some (List.map (fun f -> f.f_choice) r.r_frames, r.r_violations));
  }

(* Salt for item-scoped fingerprint keys. [gen] distinguishes a worker's
   (possibly aborted) attempt from the merge's deterministic re-run, so the
   re-run never sees entries the aborted attempt committed. *)
let item_salt i gen = fp_mix (fp_mix 0x9e3779b9 (i + 1)) gen

(* Phase 1: enumerate the tree of the first [split] decisions, unpruned.
   Returns the frontier's execution records (they are real executions —
   prefix + default tail — and contribute interleaving keys exactly like a
   sequential round at depth [split]), the work-item prefixes in DFS order,
   and whether a violation ended the pass. *)
let frontier ?progress ~observe ~snapshots m ~split ~budget =
  let records = ref [] in
  let items = ref [] in
  let execs = ref 0 in
  let sess = if snapshots then Some (make_session m ~ncps:split) else None in
  let prefix = ref [||] in
  let resume = ref None in
  let no_prune _ _ = false in
  let memo : (int, tail_rec) Hashtbl.t = Hashtbl.create 1024 in
  let stop = ref false in
  while (not !stop) && !execs < budget do
    incr execs;
    let r =
      match sess with
      | Some sess -> (
        match !resume with
        | None ->
          finish_run ~memo sess ~depth:split ~prune:no_prune
            ~decide:(fun _ _ -> 0)
            ~narrate:None
        | Some (i, k) ->
          resume_run ~memo sess ~depth:split ~prune:no_prune ~narrate:None
            ~at:i ~choice:k)
      | None ->
        let p = !prefix in
        let decide k _cands = if k < Array.length p then p.(k) else 0 in
        execute ~memo m ~depth:split ~prune:no_prune ~decide ~narrate:None
    in
    records := record_of_run ~depth:split r :: !records;
    if r.r_violations <> [] then stop := true
    else begin
      if List.length r.r_frames = split then
        items :=
          Array.of_list (List.map (fun f -> f.f_chosen) r.r_frames) :: !items;
      match next_prefix r.r_frames with
      | None -> stop := true
      | Some (p, i) ->
        prefix := p;
        resume := Some (i, p.(i))
    end;
    match progress with
    | Some f when !execs mod 200 = 0 -> f (observe ())
    | _ -> ()
  done;
  (List.rev !records, Array.of_list (List.rev !items), !execs)

(* One work item: iterative-deepening DFS under a frozen choice prefix.
   Deterministic given (m, depth, cap, item_prefix, salt scope); [tick] and
   [should_abort] are the only impure hooks (worker-side bookkeeping — the
   merge re-runs with no-ops when a racy abort cut a stream short). *)
let run_item ~snapshots m ~depth ~cap ~tbl ~salt ~item_prefix ~tick
    ~should_abort =
  let floor = Array.length item_prefix in
  (* Item-local tail memo: deterministic per (model, prefix, depth) and
     domain-private, so worker timing cannot leak into the merge. *)
  let memo : (int, tail_rec) Hashtbl.t = Hashtbl.create 1024 in
  let records = ref [] in
  let count = ref 0 in
  let aborted = ref false in
  let violated = ref false in
  let prune fp remaining =
    Fp_table.prunable tbl ~key:(fp_mix salt fp) ~remaining
  in
  let commit frames upto =
    List.iteri
      (fun i f ->
        if i > upto then
          Fp_table.note_exhausted tbl ~key:(fp_mix salt f.f_fp)
            ~remaining:f.f_remaining)
      frames
  in
  let round d =
    let sess = if snapshots then Some (make_session m ~ncps:d) else None in
    let prefix = ref item_prefix in
    let resume = ref None in
    let exhausted = ref false in
    let deeper = ref false in
    while (not !exhausted) && (not !violated) && not !aborted do
      if !count >= cap || should_abort () then aborted := true
      else begin
        incr count;
        tick ();
        let r =
          match sess with
          | Some sess -> (
            match !resume with
            | None ->
              (* Round opener: drive the fresh world through the item's
                 frozen prefix; later runs resume at indices >= floor, so
                 the prefix executes exactly once per round. *)
              let decide k _cands =
                if k < Array.length item_prefix then item_prefix.(k) else 0
              in
              finish_run ~memo sess ~depth:d ~prune ~decide ~narrate:None
            | Some (i, k) ->
              resume_run ~memo sess ~depth:d ~prune ~narrate:None ~at:i
                ~choice:k)
          | None ->
            let p = !prefix in
            let decide k _cands = if k < Array.length p then p.(k) else 0 in
            execute ~memo m ~depth:d ~prune ~decide ~narrate:None
        in
        records := record_of_run ~depth:d r :: !records;
        if r.r_hit_depth then deeper := true;
        if r.r_violations <> [] then violated := true
        else begin
          match next_prefix ~floor r.r_frames with
          | None ->
            commit r.r_frames (floor - 1);
            exhausted := true
          | Some (p, i) ->
            commit r.r_frames i;
            prefix := p;
            resume := Some (i, p.(i))
        end
      end
    done;
    !deeper
  in
  let rec rounds d =
    let deeper = round d in
    if (not !violated) && (not !aborted) && d < depth && deeper then
      rounds (min depth (d * 2))
  in
  rounds (min depth (max 4 (floor + 1)));
  { i_records = List.rev !records; i_complete = not !aborted }

let default_split_depth = 3

let explore_parallel ?progress ~snapshots m ~depth ~budget ~jobs ~split_depth
    =
  let split = max 1 (min split_depth depth) in
  (* Merge-side accumulators; [observe] snapshots them for [progress]. *)
  let distinct : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let execs = ref 0 in
  let frames_total = ref 0 in
  let state_pruned = ref 0 in
  let sleep_skips = ref 0 in
  let max_d = ref 0 in
  let cex = ref None in
  let observe () =
    { executions = !execs;
      distinct = Hashtbl.length distinct;
      frames = !frames_total;
      state_pruned = !state_pruned;
      sleep_pruned = !sleep_skips;
      max_depth = !max_d }
  in
  let accept r =
    incr execs;
    frames_total := !frames_total + r.e_frames;
    sleep_skips := !sleep_skips + r.e_sleep;
    if r.e_depth > !max_d then max_d := r.e_depth;
    (match r.e_key with
    | None -> incr state_pruned
    | Some k -> if not (Hashtbl.mem distinct k) then Hashtbl.add distinct k ());
    match r.e_violation with
    | Some v -> cex := Some v
    | None -> ()
  in
  (* Phase 1: frontier (main domain, sequential). Its records are final —
     accept them as we go so [progress] sees live counts. *)
  let frontier_records, items, frontier_execs =
    frontier ?progress ~observe ~snapshots m ~split ~budget
  in
  List.iter accept frontier_records;
  let nitems = Array.length items in
  let cap = budget - frontier_execs in
  let results = Array.make nitems not_run in
  let tbl = Fp_table.create () in
  (* Phase 2: worker domains. Only entered when there is real work and no
     frontier violation (first-in-DFS-order violation already wins). *)
  if nitems > 0 && !cex = None && cap > 0 then begin
    let next = Atomic.make 0 in
    let total = Atomic.make frontier_execs in
    let first_violating = Atomic.make max_int in
    let note_violation i =
      let rec go () =
        let cur = Atomic.get first_violating in
        if i < cur && not (Atomic.compare_and_set first_violating cur i) then
          go ()
      in
      go ()
    in
    (* Workers only read the category registry; assert that loudly. *)
    Gmp_platform.Stats.freeze ();
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < nitems then begin
          if Atomic.get first_violating > i && Atomic.get total < budget then begin
            let res =
              run_item ~snapshots m ~depth ~cap ~tbl ~salt:(item_salt i 0)
                ~item_prefix:items.(i)
                ~tick:(fun () -> Atomic.incr total)
                ~should_abort:(fun () ->
                  Atomic.get first_violating < i || Atomic.get total >= budget)
            in
            if
              List.exists (fun r -> r.e_violation <> None) res.i_records
            then note_violation i;
            results.(i) <- res
          end;
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.init (min jobs nitems) (fun _ -> Domain.spawn worker)
    in
    List.iter Domain.join domains;
    Gmp_platform.Stats.thaw ()
  end;
  (* Phase 3: deterministic merge in frontier order. An item is granted
     whatever budget is left at its turn; a stored stream at least that long
     is truncated (any prefix of an item's stream is the stream of a smaller
     cap), a complete shorter stream is taken whole, and an incomplete
     shorter stream — a worker aborted by the racy budget/violation signals
     — is re-run here with the deterministic cap and a fresh salt
     generation. *)
  let i = ref 0 in
  while !cex = None && !i < nitems && !execs < budget do
    let remaining = budget - !execs in
    let stored = results.(!i) in
    let res =
      if stored.i_complete || List.length stored.i_records >= remaining then
        stored
      else
        run_item ~snapshots m ~depth ~cap:remaining ~tbl
          ~salt:(item_salt !i 1) ~item_prefix:items.(!i)
          ~tick:(fun () -> ())
          ~should_abort:(fun () -> false)
    in
    let rec take k = function
      | [] -> ()
      | r :: rest ->
        if k > 0 && !cex = None then begin
          accept r;
          take (k - 1) rest
        end
    in
    take remaining res.i_records;
    incr i;
    match progress with
    | Some f when !i mod 50 = 0 -> f (observe ())
    | _ -> ()
  done;
  { stats = observe (); counterexample = shrink_counterexample m !cex }

let explore ?progress ?jobs ?(split_depth = default_split_depth)
    ?(snapshots = true) m ~depth ~budget =
  if depth < 1 then invalid_arg "Explore.explore: depth must be positive";
  if budget < 1 then invalid_arg "Explore.explore: budget must be positive";
  if split_depth < 1 then
    invalid_arg "Explore.explore: split_depth must be positive";
  match jobs with
  | None -> explore_seq ?progress ~snapshots m ~depth ~budget
  | Some j when j < 1 -> invalid_arg "Explore.explore: jobs must be >= 1"
  | Some jobs ->
    explore_parallel ?progress ~snapshots m ~depth ~budget ~jobs ~split_depth
