(** Scenario builders: one per experiment in DESIGN.md's index.

    Each builds a {!Gmp_runtime.Group}, injects the experiment's schedule,
    runs to quiescence and returns the measurements §7.2 talks about,
    together with the group for further inspection. *)

open Gmp_base
open Gmp_core
open Gmp_runtime

type measurement = {
  n : int;  (** initial group size *)
  protocol_msgs : int;  (** §7.2 accounting: update + reconfiguration *)
  update_msgs : int;
  reconf_msgs : int;
  views_installed : int;  (** highest committed version *)
  violations : Checker.violation list;
}

val measure : ?liveness:bool -> Group.t -> measurement

val single_crash : ?seed:int -> n:int -> unit -> measurement * Group.t
(** E1: plain two-phase exclusion of the junior member; paper: 3n-5. *)

val compressed_pair : ?seed:int -> n:int -> unit -> measurement * Group.t
(** E2: two crashes detected together, so the second exclusion rides the
    contingent invitation; paper: the compressed round costs <= 2n-3. *)

val mgr_crash : ?seed:int -> n:int -> unit -> measurement * Group.t
(** E3: coordinator crash, one successful reconfiguration; paper: 5n-9. *)

val cascade : ?seed:int -> n:int -> kills:int -> unit -> measurement * Group.t
(** E4: [kills] successive reconfigurers die mid-protocol before one
    succeeds; paper: O(n^2), ~(5/2)n^2 in total. [kills] must stay within
    the tolerance [n - majority(n)] or the survivors (correctly) block. *)

val sequence_all :
  ?seed:int -> ?compressed:bool -> n:int -> unit -> measurement * Group.t
(** E5: n-1 successive failures, none the coordinator, on the basic
    (no-majority) configuration; paper: (n-1)^2 total compressed, i.e.
    n-1 per exclusion, vs an extra ~n/2-1 per exclusion uncompressed. *)

val symmetric_single_crash :
  ?seed:int -> n:int -> unit -> int * (Pid.t * int * Pid.t list) list
(** E6: the same single-crash workload on the symmetric baseline; returns
    (messages, final views). Paper: an order of magnitude more. *)

val one_phase_split :
  ?seed:int -> n:int -> unit -> Checker.violation list * (Pid.t * int * Pid.t list) list
(** C1 / Claim 7.1: the one-phase baseline under the proof's cross-suspicion
    split; returns the (expected, non-empty) violations and final views. *)

val real_protocol_split :
  ?seed:int -> n:int -> unit -> Checker.violation list * Group.t
(** The same split schedule on the real protocol: safety must hold. *)

val fig11_n : int
(** Group size of the Figure 11 schedule (7). *)

val two_phase_fig11 :
  ?seed:int -> unit -> Checker.violation list * (Pid.t * int * Pid.t list) list
(** C2 / Claim 7.2: the Figure 11 schedule on the two-phase baseline;
    returns the (expected, non-empty) GMP-2/3 violations and final views. *)

val real_protocol_fig11 :
  ?seed:int -> unit -> Checker.violation list * Group.t
(** The Figure 11 schedule on the real protocol: the would-be invisible
    committer blocks in its proposal phase; safety must hold. *)

val real_protocol_two_proposals :
  ?seed:int -> unit -> Checker.violation list * Group.t
(** Props 5.5/5.6: a nine-process variant in which the final reconfigurer
    sees both in-flight proposals for version 1 and GetStable must
    propagate the lowest-ranked proposer's. *)

val mgr_crash_mid_commit :
  ?seed:int -> n:int -> unit -> measurement * Group.t
(** F3 / Figure 3: the coordinator dies around its commit broadcast;
    reconfiguration restores a unique view. *)

val concurrent_initiators :
  ?seed:int -> n:int -> unit -> measurement * Group.t
(** F4 / Figure 4 / Table 1 row 3: two concurrent initiators; exactly one
    regime survives. *)

val scale_single_crash : ?seed:int -> n:int -> unit -> measurement * Group.t
(** E-scale: the E1 single-crash workload with a trimmed horizon and a
    raised livelock guard, usable up to n = 256 and beyond. *)

val churn : ?seed:int -> n:int -> unit -> measurement * Group.t
(** E-scale: coordinator crash, ~n/6 scattered crashes and three joins
    under heavy-tailed delays (the n=32 scale test generalized over n).
    Requires n >= 8. *)

val random_churn : seed:int -> unit -> measurement * Group.t
(** Randomized crashes, joins, spurious suspicions and cascades; used by
    the property tests and the GMP sweep. *)
