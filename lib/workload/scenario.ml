(* Scenario builders: one per experiment in DESIGN.md's index. Each builds a
   Group, injects the experiment's schedule, runs to quiescence and returns
   the measurements the paper's §7.2 analysis talks about. *)

open Gmp_base
module Group = Gmp_runtime.Group
module Checker = Gmp_core.Checker
module Config = Gmp_core.Config
module Wire = Gmp_core.Wire

type measurement = {
  n : int; (* initial group size *)
  protocol_msgs : int; (* §7.2 accounting: update + reconfiguration *)
  update_msgs : int;
  reconf_msgs : int;
  views_installed : int; (* highest committed version *)
  violations : Gmp_core.Checker.violation list;
}

let count stats categories =
  List.fold_left
    (fun acc category -> acc + Gmp_net.Stats.sent stats ~category)
    0 categories

let measure ?(liveness = true) group =
  let stats = Group.stats group in
  let views_installed =
    List.fold_left
      (fun acc (_, ver, _) -> max acc ver)
      0
      (Group.surviving_views group)
  in
  { n = List.length (Group.initial group);
    protocol_msgs = count stats Wire.protocol_categories;
    update_msgs = count stats Wire.update_categories;
    reconf_msgs = count stats Wire.reconf_categories;
    views_installed;
    violations = Group.check ~liveness group }

(* E1 / Figure 1-2: a single crash of the junior member, handled by the
   plain two-phase update. Paper: at most 3n - 5 messages. *)
let single_crash ?(seed = 1) ~n () =
  let group = Group.create ~seed ~n () in
  Group.crash_at group 10.0 (Pid.make (n - 1));
  Group.run ~until:300.0 group;
  (measure group, group)

(* E2: two crashes detected together, so the second exclusion rides the
   commit's contingent invitation (compressed round). Paper: the compressed
   round costs at most 2n - 3. *)
let compressed_pair ?(seed = 1) ~n () =
  let group = Group.create ~seed ~n () in
  Group.crash_at group 10.0 (Pid.make (n - 1));
  Group.crash_at group 10.2 (Pid.make (n - 2));
  Group.run ~until:300.0 group;
  (measure group, group)

(* E3 / Figures 3-5: crash of the coordinator; the next-ranked process
   reconfigures. Paper: at most 5n - 9 messages for one successful
   reconfiguration. *)
let mgr_crash ?(seed = 1) ~n () =
  let group = Group.create ~seed ~n () in
  Group.crash_at group 10.0 (Pid.make 0);
  Group.run ~until:300.0 group;
  (measure group, group)

(* E4: the worst case - tau successive reconfigurers fail mid-protocol
   before one succeeds. Paper: O(n^2), about (5/2) n^2 messages in total.
   Slower links stretch the phases so each kill lands mid-protocol. *)
let cascade ?(seed = 1) ~n ~kills () =
  if kills >= n - 1 then invalid_arg "Scenario.cascade: too many kills";
  let config =
    { Config.default with
      Config.heartbeat_timeout = 8.0;
      Config.heartbeat_interval = 2.0 }
  in
  let delay = Gmp_net.Delay.uniform ~lo:1.0 ~hi:3.0 in
  let group = Group.create ~config ~delay ~seed ~n () in
  (* p0 dies first; each successor pi dies ~4s after it plausibly started
     reconfiguring (detection of p(i-1) takes ~ timeout). *)
  Group.crash_at group 10.0 (Pid.make 0);
  for i = 1 to kills - 1 do
    let time = 10.0 +. (float_of_int i *. 14.0) in
    Group.crash_at group time (Pid.make i)
  done;
  Group.run ~until:2000.0 group;
  (measure group, group)

(* E5: n - 1 successive failures, none of which is the coordinator; the
   exclusions chain through contingent invitations. Paper: (n-1)^2 messages
   in total, i.e. n - 1 per exclusion on average, vs an extra ~n/2 - 1 per
   exclusion for the plain two-phase algorithm. Uses the basic (no-majority)
   configuration, as the paper's §7.2 count does, and a scripted oracle so
   detections arrive one per round. *)
let sequence_all ?(seed = 1) ?(compressed = true) ~n () =
  let config =
    { (if compressed then Config.basic else { Config.basic with Config.compressed = false })
      with
      Config.heartbeats = false }
  in
  let delay = Gmp_net.Delay.constant 1.0 in
  let group = Group.create ~config ~delay ~seed ~n () in
  (* Victims p(n-1) ... p1 (junior to senior): victim x crashes, then the
     coordinator alone is told; everyone else learns through the protocol's
     own gossip (F2). The cadence lands each new detection mid-round so the
     commit can carry the next invitation. *)
  let mgr = Pid.make 0 in
  (* Cadence: with constant unit delay a round commits ~2s after its
     invitation, so a detection every 1.5s arrives mid-round and rides the
     commit's contingent invitation. *)
  List.iteri
    (fun i victim_id ->
      let victim = Pid.make victim_id in
      let crash_time = 5.0 +. (float_of_int i *. 1.5) in
      Group.crash_at group crash_time victim;
      Group.suspect_at group (crash_time +. 0.4) ~observer:mgr ~target:victim)
    (List.init (n - 1) (fun i -> n - 1 - i));
  Group.run ~until:2000.0 group;
  (measure ~liveness:false group, group)

(* E6: the same single-crash workload on the symmetric (Bruso-style)
   baseline. Paper: an order of magnitude more messages. *)
let symmetric_single_crash ?(seed = 1) ~n () =
  let module S = Gmp_baselines.Symmetric in
  let sym = S.create ~seed ~n () in
  S.crash_at sym 5.0 (Pid.make (n - 1));
  List.iter
    (fun i ->
      S.suspect_at sym
        (10.0 +. (0.1 *. float_of_int i))
        ~observer:(Pid.make i)
        ~target:(Pid.make (n - 1)))
    (List.init (n - 1) (fun i -> i));
  S.run ~until:300.0 sym;
  (S.messages sym, S.views sym)

(* C1 / Claim 7.1: the one-phase baseline under the proof's schedule -
   cross-suspicion across a partition - diverges (GMP-3 violation). *)
let one_phase_split ?(seed = 1) ~n () =
  let module O = Gmp_baselines.One_phase in
  let op = O.create ~seed ~n () in
  let r = Pid.make 1 and mgr = Pid.make 0 in
  let group_r = List.init (n / 2) (fun i -> Pid.make (2 * i + 1)) in
  let group_s =
    List.filter (fun p -> not (List.exists (Pid.equal p) group_r)) (O.initial op)
  in
  O.partition_at op 5.0 [ group_r; group_s ];
  (* r (in R) suspects Mgr; Mgr (in S) suspects r; each side is flooded with
     the respective one-phase removal. *)
  O.suspect_at op 10.0 ~observer:r ~target:mgr;
  List.iter
    (fun p ->
      if not (Pid.equal p mgr) then
        O.suspect_at op 10.0 ~observer:p ~target:mgr)
    group_r;
  O.suspect_at op 10.0 ~observer:mgr ~target:r;
  O.run ~until:200.0 op;
  let violations =
    Gmp_core.Checker.check_gmp23 (O.trace op)
    @ Gmp_core.Checker.check_gmp1 (O.trace op)
  in
  (violations, O.views op)

(* The same split schedule on the real protocol: the minority side blocks
   (no majority), the majority side excludes; no divergence. *)
let real_protocol_split ?(seed = 1) ~n () =
  let group = Group.create ~seed ~n () in
  let r = Pid.make 1 and mgr = Pid.make 0 in
  let group_r = List.init (n / 2) (fun i -> Pid.make (2 * i + 1)) in
  let group_s =
    List.filter
      (fun p -> not (List.exists (Pid.equal p) group_r))
      (Group.initial group)
  in
  Group.partition_at group 5.0 [ group_r; group_s ];
  Group.suspect_at group 10.0 ~observer:r ~target:mgr;
  Group.suspect_at group 10.0 ~observer:mgr ~target:r;
  Group.run ~until:400.0 group;
  (Checker.check_safety (Group.trace group) ~initial:(Group.initial group), group)

(* C2 / Figure 11 with n = 7: Proc = {m=p0 (Mgr), p=p1, r=p2, p3, p4, p5,
   q=p6}. Constant unit delay makes the timeline exact.

     4.5   partition {m, p3, q} | {p, r, p4, p5}
     5.0   m (suspecting q) invites Remove(q): reaches p3 (next := (q:m:1))
           and q (quits); the copies towards the other side sit parked.
     6.5   m crashes before p3's OK arrives: no commit; its parked invites
           die with it (never healed to it).
     9.0   p, believing m, p3 and q faulty, reconfigures: interrogates
           {r, p4, p5}; with itself that is 4 of 7 - a majority. Nobody it
           hears from saw m's proposal, so p proposes Remove(m).
    11.5   p is partitioned alone an instant after committing v1 = Proc-{m}:
           the commit reaches nobody - the paper's invisible commit. The
           first partition dissolves, reconnecting p3.
    20.0   r, believing m, p and q faulty, reconfigures: interrogates
           {p3, p4, p5} - 4 of 7 with itself. It sees m's proposal
           (q : m : 1) in p3's reply and the (? : p : ?) interrogation
           markers in p4, p5 - it knows p was reconfiguring but, with no
           proposal phase on record, not what p proposed nor whether p
           committed.

   The two-phase baseline guesses (propagates m's Remove(q)) and installs a
   version 1 different from the one p committed: GMP-3 violated. The real
   three-phase protocol under the identical schedule never lets p commit
   (its proposal round cannot reach a second majority through the
   partition), so no divergence is possible. *)

let fig11_n = 7

type fig11_driver = {
  d_suspect : float -> observer:Pid.t -> target:Pid.t -> unit;
  d_crash : float -> Pid.t -> unit;
  d_partition : float -> Pid.t list list -> unit;
  d_exclusion : float -> coordinator:Pid.t -> victim:Pid.t -> unit;
  d_reconf : float -> Pid.t -> unit;
}

let fig11_schedule d =
  let m = Pid.make 0
  and p = Pid.make 1
  and r = Pid.make 2
  and q = Pid.make 6 in
  d.d_partition 4.5 [ [ m; Pid.make 3; q ] ];
  d.d_suspect 5.0 ~observer:m ~target:q;
  d.d_exclusion 5.0 ~coordinator:m ~victim:q;
  d.d_crash 6.5 m;
  List.iter
    (fun target -> d.d_suspect 9.0 ~observer:p ~target)
    [ m; Pid.make 3; q ];
  d.d_reconf 9.1 p;
  d.d_partition 11.5 [ [ p ] ];
  List.iter (fun target -> d.d_suspect 20.0 ~observer:r ~target) [ m; p; q ];
  d.d_reconf 20.1 r

let two_phase_fig11 ?(seed = 1) () =
  let module T = Gmp_baselines.Two_phase_reconfig in
  let delay = Gmp_net.Delay.constant 1.0 in
  let tp = T.create ~delay ~seed ~n:fig11_n () in
  fig11_schedule
    { d_suspect = (fun t -> T.suspect_at tp t);
      d_crash = (fun t -> T.crash_at tp t);
      d_partition = (fun t -> T.partition_at tp t);
      d_exclusion = (fun t -> T.exclusion_at tp t);
      d_reconf = (fun t -> T.reconf_at tp t) };
  T.run ~until:200.0 tp;
  let violations = Gmp_core.Checker.check_gmp23 (T.trace tp) in
  (violations, T.views tp)

(* The same Figure-11 dilemma on the real protocol: p's commit needs two
   majorities, and the proposal phase leaves a trail GetStable can read; no
   divergence is possible. *)
let real_protocol_fig11 ?(seed = 1) () =
  let config = Config.scripted_only in
  let delay = Gmp_net.Delay.constant 1.0 in
  let group = Group.create ~config ~delay ~seed ~n:fig11_n () in
  fig11_schedule
    { d_suspect = (fun t -> Group.suspect_at group t);
      d_crash = (fun t -> Group.crash_at group t);
      d_partition = (fun t -> Group.partition_at group t);
      (* The real coordinator starts exclusions on its own, and initiation
         is automatic once HiFaulty is full. *)
      d_exclusion = (fun _ ~coordinator:_ ~victim:_ -> ());
      d_reconf = (fun _ _ -> ()) };
  Group.run ~until:400.0 group;
  (Checker.check_safety (Group.trace group) ~initial:(Group.initial group), group)

(* GetStable under two proposals (Props 5.5/5.6): a nine-process variant of
   the Figure 11 schedule in which the first initiator's {e proposal}
   reaches four witnesses before the initiator is isolated, so the final
   reconfigurer hears of {e both} in-flight proposals for version 1 - the
   dead Mgr's Remove(q) via p3, and p1's Remove(Mgr) via the witnesses - and
   must apply GetStable: propagate the lowest-ranked proposer's (p1's),
   the only one that could have been committed invisibly.

   Members (seniority order): m=p0, p=p1, r=p2, p3, p4, p5, q=p6, p7, p8.
   Majority of 9 is 5. m's invite reaches only {p3, q}; p's proposal
   reaches {p4, p5, p7, p8} (it believes m, p3, q and r faulty, which is
   exactly what keeps its respondent majority disjoint from m's witnesses);
   r's interrogation reaches p3 and the witnesses, exposing both. *)
let real_protocol_two_proposals ?(seed = 1) () =
  let n = 9 in
  let config = Config.scripted_only in
  let delay = Gmp_net.Delay.constant 1.0 in
  let group = Group.create ~config ~delay ~seed ~n () in
  let m = Pid.make 0
  and p = Pid.make 1
  and r = Pid.make 2
  and q = Pid.make 6 in
  Group.partition_at group 4.5 [ [ m; Pid.make 3; q ] ];
  Group.suspect_at group 5.0 ~observer:m ~target:q;
  Group.crash_at group 6.5 m;
  List.iter
    (fun target -> Group.suspect_at group 9.0 ~observer:p ~target)
    [ m; Pid.make 3; q ];
  (* p completes its interrogation at ~11 and broadcasts Remove(m). Let the
     proposal land only at witnesses p4 and p5 (the copies towards r, p7, p8
     park in the 11.5 partition), and keep p's returning OKs short of a
     majority so the proposal can never commit. At 13.5 only p stays
     isolated. *)
  Group.partition_at group 11.5 [ [ p; Pid.make 4; Pid.make 5 ] ];
  Group.partition_at group 13.5 [ [ p ] ];
  List.iter
    (fun target -> Group.suspect_at group 20.0 ~observer:r ~target)
    [ p; q ];
  Group.run ~until:400.0 group;
  (Checker.check_safety (Group.trace group) ~initial:(Group.initial group), group)

(* F3: the coordinator crashes mid-commit-broadcast, so some processes
   install version x and others never receive it (no system view exists);
   reconfiguration restores a unique view. We approximate "mid-broadcast" by
   crashing the coordinator immediately after its commit leaves, with the
   partition delaying delivery to half the group. *)
let mgr_crash_mid_commit ?(seed = 1) ~n () =
  let config = Config.default in
  let group = Group.create ~config ~seed ~n () in
  let victim = Pid.make (n - 1) in
  Group.crash_at group 10.0 victim;
  (* Detection ~ t=20; invites ~20-22; commit ~23-25. Cut the coordinator
     down right around the commit. *)
  Group.crash_at group 23.5 (Pid.make 0);
  Group.run ~until:400.0 group;
  (measure group, group)

(* F4: two concurrent reconfiguration initiators (Table 1, row 3). The
   junior initiator's interrogation kills the senior one; a unique view
   survives. *)
let concurrent_initiators ?(seed = 1) ~n () =
  let config = Config.default in
  let group = Group.create ~config ~seed ~n () in
  Group.crash_at group 10.0 (Pid.make 0);
  (* p1 and p2 both come to believe everyone above them faulty. *)
  Group.suspect_at group 20.0 ~observer:(Pid.make 2) ~target:(Pid.make 1);
  Group.run ~until:400.0 group;
  (measure group, group)

(* ---- E-scale scenarios (the bench's BENCH_scale.json section) ----

   Dedicated entry points instead of reusing [single_crash]: the paper-
   envelope scenarios keep their long horizons for fidelity, while the scale
   runs trim the horizon to just past convergence and raise the livelock
   guard (at n = 256 the heartbeat traffic alone is ~32k messages per
   interval, so a 300s horizon would trip the default 10M-step guard). *)

let scale_max_steps = 200_000_000

let scale_single_crash ?(seed = 1) ~n () =
  let group = Group.create ~seed ~n () in
  Group.crash_at group 10.0 (Pid.make (n - 1));
  Group.run ~max_steps:scale_max_steps ~until:120.0 group;
  (measure group, group)

(* Deterministic churn at scale: coordinator crash, ~n/6 scattered crashes
   spaced out enough for each exclusion to land, and three late joins, under
   heavy-tailed delays (the test suite's n=32 churn, generalized over n). *)
let churn ?(seed = 123) ~n () =
  if n < 8 then invalid_arg "Scenario.churn: need n >= 8";
  let delay = Gmp_net.Delay.exponential ~mean:1.0 in
  let config = { Config.default with Config.heartbeat_timeout = 15.0 } in
  let group = Group.create ~config ~delay ~seed ~n () in
  Group.crash_at group 10.0 (Pid.make 0);
  let crashes = max 1 (n / 6) in
  for i = 1 to crashes do
    (* Victims spread across the rank order, never the most senior
       survivors (the join contacts below must stay alive). *)
    let victim = Pid.make (1 + (i * (n - 5) / (crashes + 1))) in
    Group.crash_at group (25.0 +. (15.0 *. float_of_int i)) victim
  done;
  for j = 1 to 3 do
    Group.join_at group
      (30.0 +. (30.0 *. float_of_int j))
      (Pid.make (1000 + j))
      ~contact:(Pid.make (n - 1 - j))
  done;
  let horizon = 25.0 +. (15.0 *. float_of_int crashes) +. 120.0 in
  Group.run ~max_steps:scale_max_steps ~until:horizon group;
  (measure group, group)

(* Randomized churn (used by property tests and the GMP-properties bench). *)
let random_churn ~seed () =
  let rng = Gmp_sim.Rng.create seed in
  let n = 4 + Gmp_sim.Rng.int rng 6 in
  let group = Group.create ~seed ~n () in
  let crashes = Gmp_sim.Rng.int rng ((n / 2) + 1) in
  let victims = ref [] in
  for _ = 1 to crashes do
    let candidate = Pid.make (Gmp_sim.Rng.int rng n) in
    if not (List.exists (Pid.equal candidate) !victims) then
      victims := candidate :: !victims
  done;
  let cascade = Gmp_sim.Rng.bool rng in
  List.iteri
    (fun i pid ->
      let time =
        if cascade then 10.0 +. (float_of_int i *. Gmp_sim.Rng.float rng 6.0)
        else 5.0 +. Gmp_sim.Rng.float rng 80.0
      in
      let pid = if cascade then Pid.make i else pid in
      Group.crash_at group time pid)
    !victims;
  let joins = Gmp_sim.Rng.int rng 3 in
  for j = 1 to joins do
    let contact = Pid.make (Gmp_sim.Rng.int rng n) in
    let time = 5.0 +. Gmp_sim.Rng.float rng 80.0 in
    Group.join_at group time (Pid.make (100 + j)) ~contact
  done;
  let spurious = Gmp_sim.Rng.int rng 2 in
  for _ = 1 to spurious do
    let observer = Pid.make (Gmp_sim.Rng.int rng n) in
    let target = Pid.make (Gmp_sim.Rng.int rng n) in
    if not (Pid.equal observer target) then
      Group.suspect_at group
        (5.0 +. Gmp_sim.Rng.float rng 80.0)
        ~observer ~target
  done;
  Group.run ~until:600.0 group;
  (measure group, group)
