(** Adversarial schedule search.

    Random crash/suspicion/join/partition schedules, hill-climbed towards
    GMP violations. On the final algorithm the search must come back empty;
    on deliberately weakened configurations (e.g. {!Gmp_core.Config.basic}
    without the majority requirement) it must rediscover the known
    divergences — the test suite asserts both. *)

type action =
  | Crash of { at : float; victim : int }
  | Suspect of { at : float; observer : int; target : int }
  | Join of { at : float; joiner : int; contact : int }
  | Partition of { at : float; mask : int }
      (** bit [i] set: [p_i] belongs to the partitioned island *)
  | Heal of { at : float }

type schedule = { sched_n : int; actions : action list }

val pp_action : action Fmt.t
val pp_schedule : schedule Fmt.t

val random_schedule : Gmp_sim.Rng.t -> n:int -> schedule
val mutate : Gmp_sim.Rng.t -> schedule -> schedule

val run_schedule :
  ?config:Gmp_core.Config.t ->
  seed:int ->
  schedule ->
  Gmp_core.Checker.violation list * Gmp_runtime.Group.t
(** Run one schedule and return the safety verdicts. *)

val delta_debug : still_fails:('a list -> bool) -> 'a list -> 'a list
(** Greedy delta-debugging over any item list: drop items one at a time
    while [still_fails] holds, to a fixpoint. Keeps the result non-empty;
    identity when the input does not fail. Shared with the schedule
    explorer, which shrinks recorded choice lists with it. *)

val shrink :
  ?config:Gmp_core.Config.t -> seed:int -> schedule -> schedule
(** Greedy delta-debugging ({!delta_debug}): drop actions while the
    schedule still violates. Identity on non-violating schedules. *)

type outcome = {
  iterations_run : int;
  counterexample : (schedule * Gmp_core.Checker.violation list) option;
      (** already shrunk *)
}

val search :
  ?config:Gmp_core.Config.t ->
  ?n:int ->
  ?iterations:int ->
  seed:int ->
  unit ->
  outcome
(** Stops at the first violating schedule found, if any. *)
