(* Adversarial schedule search.

   Random schedules (crashes, spurious suspicions, joins, partitions,
   heals) are run through the protocol and scored; mutation hill-climbing
   hunts for GMP violations. Two uses:

   - assurance: on the final algorithm the search must come back
     empty-handed (the test suite runs it on every `dune runtest`);
   - sensitivity: on deliberately weakened configurations it must FIND the
     known holes - e.g. without the majority requirement (Config.basic) a
     partitioned coordinator commits exclusions concurrently with the
     majority side's reconfiguration and GMP-2/3 breaks. A fuzzer that
     cannot rediscover that bug would prove nothing about the absence of
     others. *)

open Gmp_base
module Group = Gmp_runtime.Group
module Checker = Gmp_core.Checker
module Config = Gmp_core.Config

type action =
  | Crash of { at : float; victim : int }
  | Suspect of { at : float; observer : int; target : int }
  | Join of { at : float; joiner : int; contact : int }
  | Partition of { at : float; mask : int } (* bit i set: p_i in the island *)
  | Heal of { at : float }

type schedule = { sched_n : int; actions : action list }

let pp_action ppf = function
  | Crash { at; victim } -> Fmt.pf ppf "crash p%d @%.1f" victim at
  | Suspect { at; observer; target } ->
    Fmt.pf ppf "suspect p%d->p%d @%.1f" observer target at
  | Join { at; joiner; contact } ->
    Fmt.pf ppf "join p%d via p%d @%.1f" joiner contact at
  | Partition { at; mask } -> Fmt.pf ppf "partition %x @%.1f" mask at
  | Heal { at } -> Fmt.pf ppf "heal @%.1f" at

let pp_schedule ppf s =
  Fmt.pf ppf "n=%d [%a]" s.sched_n
    Fmt.(list ~sep:(any "; ") pp_action)
    s.actions

(* ---- generation and mutation ---- *)

let random_action rng ~n =
  let t () = 5.0 +. Gmp_sim.Rng.float rng 120.0 in
  match Gmp_sim.Rng.int rng 10 with
  | 0 | 1 | 2 ->
    Crash { at = t (); victim = Gmp_sim.Rng.int rng n }
  | 3 | 4 ->
    let observer = Gmp_sim.Rng.int rng n in
    let target = Gmp_sim.Rng.int rng n in
    Suspect { at = t (); observer; target }
  | 5 ->
    Join
      { at = t ();
        joiner = 100 + Gmp_sim.Rng.int rng 4;
        contact = Gmp_sim.Rng.int rng n }
  | 6 | 7 | 8 ->
    (* Non-trivial island: at least one, not everyone. *)
    let mask = 1 + Gmp_sim.Rng.int rng ((1 lsl n) - 2) in
    Partition { at = t (); mask }
  | _ -> Heal { at = t () }

let random_schedule rng ~n =
  let count = 1 + Gmp_sim.Rng.int rng 6 in
  { sched_n = n; actions = List.init count (fun _ -> random_action rng ~n) }

let mutate rng s =
  let n = s.sched_n in
  match Gmp_sim.Rng.int rng 3 with
  | 0 ->
    (* add an action *)
    { s with actions = random_action rng ~n :: s.actions }
  | 1 when s.actions <> [] ->
    (* drop one *)
    let i = Gmp_sim.Rng.int rng (List.length s.actions) in
    { s with actions = List.filteri (fun j _ -> j <> i) s.actions }
  | _ when s.actions <> [] ->
    (* replace one *)
    let i = Gmp_sim.Rng.int rng (List.length s.actions) in
    { s with
      actions =
        List.mapi (fun j a -> if j = i then random_action rng ~n else a) s.actions
    }
  | _ -> { s with actions = [ random_action rng ~n ] }

(* ---- execution ---- *)

let apply_schedule group s =
  let pid i = Pid.make i in
  let initial = Group.initial group in
  let joiners_used = ref [] in
  List.iter
    (function
      | Crash { at; victim } ->
        if victim < s.sched_n then Group.crash_at group at (pid victim)
      | Suspect { at; observer; target } ->
        if observer <> target && observer < s.sched_n && target < s.sched_n
        then Group.suspect_at group at ~observer:(pid observer) ~target:(pid target)
      | Join { at; joiner; contact } ->
        (* The genome may repeat a joiner id; only the first one counts
           (join_at spawns the node at fire time and pids are unique). *)
        if contact < s.sched_n && not (List.mem joiner !joiners_used) then begin
          joiners_used := joiner :: !joiners_used;
          Group.join_at group at (pid joiner) ~contact:(pid contact)
        end
      | Partition { at; mask } ->
        let island =
          List.filteri (fun i _ -> mask land (1 lsl i) <> 0) initial
        in
        if island <> [] && List.length island < List.length initial then
          Group.partition_at group at [ island ]
      | Heal { at } -> Group.heal_at group at)
    s.actions

let run_schedule ?(config = Config.default) ~seed s =
  let group = Group.create ~config ~seed ~n:s.sched_n () in
  apply_schedule group s;
  Group.run ~until:700.0 group;
  let violations = Checker.check_safety (Group.trace group)
      ~initial:(Group.initial group) in
  (violations, group)

(* ---- shrinking ---- *)

(* Greedy delta-debugging over any list of schedule items: drop items one at
   a time while the predicate still fails, to a fixpoint. Keeps the list
   non-empty and is the identity when the input does not fail. Shared by the
   fuzzer (items = adversarial actions) and the schedule explorer (items =
   recorded choices). The returned counterexample is usually down to the one
   or two items that matter. *)
let delta_debug ~still_fails items =
  let rec pass items =
    let n = List.length items in
    let rec try_drop i =
      if i >= n then None
      else begin
        let candidate = List.filteri (fun j _ -> j <> i) items in
        if candidate <> [] && still_fails candidate then Some candidate
        else try_drop (i + 1)
      end
    in
    match try_drop 0 with Some smaller -> pass smaller | None -> items
  in
  if still_fails items then pass items else items

let shrink ?(config = Config.default) ~seed s =
  let still_fails actions =
    let violations, _ = run_schedule ~config ~seed { s with actions } in
    violations <> []
  in
  { s with actions = delta_debug ~still_fails s.actions }

(* ---- search ---- *)

type outcome = {
  iterations_run : int;
  counterexample : (schedule * Gmp_core.Checker.violation list) option;
}

let search ?(config = Config.default) ?(n = 5) ?(iterations = 200) ~seed () =
  let rng = Gmp_sim.Rng.create seed in
  let best = ref None in
  let iters = ref 0 in
  (try
     (* Fresh random schedules, each hill-climbed for a few mutations. *)
     while !iters < iterations do
       let candidate = ref (random_schedule rng ~n) in
       let depth = 4 in
       for _ = 0 to depth do
         if !iters < iterations then begin
           incr iters;
           let violations, _ = run_schedule ~config ~seed:!iters !candidate in
           if violations <> [] then begin
             let minimal = shrink ~config ~seed:!iters !candidate in
             let violations', _ = run_schedule ~config ~seed:!iters minimal in
             best := Some (minimal, violations');
             raise Exit
           end;
           candidate := mutate rng !candidate
         end
       done
     done
   with Exit -> ());
  { iterations_run = !iters; counterexample = !best }
