(* Structural diff of two BENCH_scale.json files, ignoring wall-clock.

   The bench's deterministic outputs (event counts, message counts, trace
   lengths, allocation) must be bit-identical no matter how many worker
   domains ran the cells; only timings and the job count itself may vary.
   CI runs the quick bench twice with different --jobs values and feeds
   both files here: any difference outside the ignored keys is a
   determinism bug and exits 1.

   Run: dune exec bench/json_diff.exe A.json B.json *)

module J = Gmp_base.Json

(* Every key whose value is (or is derived from) a wall-clock reading, plus
   the job count and the snapshot-engine switch, which differ between the
   two compared runs by design. *)
let ignored =
  [ "wall_s"; "checker_s"; "cells_wall_s"; "pool_wall_s"; "parallel_speedup";
    "speedup_vs_pr1"; "indexed_s"; "seed_s"; "reference_s"; "speedup_vs_seed";
    "speedup_vs_reference"; "executions_per_s"; "distinct_per_s";
    "speedup_vs_replay"; "jobs"; "snapshots" ]

let rec strip (j : J.t) : J.t =
  match j with
  | J.Obj fields ->
    J.Obj
      (List.filter_map
         (fun (k, v) ->
           if List.mem k ignored then None else Some (k, strip v))
         fields)
  | J.List items -> J.List (List.map strip items)
  | other -> other

(* Report the first differing path so drift is actionable, not just fatal. *)
let rec diff path (a : J.t) (b : J.t) =
  match (a, b) with
  | J.Obj fa, J.Obj fb ->
    let keys l = List.map fst l in
    if keys fa <> keys fb then
      Some (Printf.sprintf "%s: field sets differ" path)
    else
      List.fold_left2
        (fun acc (k, va) (_, vb) ->
          match acc with
          | Some _ -> acc
          | None -> diff (path ^ "." ^ k) va vb)
        None fa fb
  | J.List la, J.List lb ->
    if List.length la <> List.length lb then
      Some
        (Printf.sprintf "%s: list lengths differ (%d vs %d)" path
           (List.length la) (List.length lb))
    else
      List.fold_left
        (fun (i, acc) (va, vb) ->
          match acc with
          | Some _ -> (i + 1, acc)
          | None -> (i + 1, diff (Printf.sprintf "%s[%d]" path i) va vb))
        (0, None)
        (List.combine la lb)
      |> snd
  | _ ->
    if a = b then None
    else
      Some
        (Printf.sprintf "%s: %s vs %s" path (J.to_compact_string a)
           (J.to_compact_string b))

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let raw = really_input_string ic len in
  close_in ic;
  match J.of_string raw with
  | Ok j -> j
  | Error e ->
    Printf.eprintf "json_diff: %s: parse error: %s\n" path e;
    exit 2

let () =
  match Sys.argv with
  | [| _; a; b |] -> (
    match diff "$" (strip (load a)) (strip (load b)) with
    | None -> Printf.printf "identical modulo wall-clock fields\n"
    | Some where ->
      Printf.printf "DIFFERS at %s\n" where;
      exit 1)
  | _ ->
    Printf.eprintf "usage: json_diff A.json B.json\n";
    exit 2
