(* Checked-in expectations for the deterministic E-scale counters.

   Wall time varies by machine, but [events_fired], [messages_sent] and
   [trace_events] are functions of the seed and the simulation logic alone
   (the RNG is our own splitmix64, so they are identical across OCaml
   versions). The bench compares every scale run against this table and
   exits nonzero on drift, so silent behaviour changes fail CI even when
   the tests pass.

   [words_per_event] is the minor-heap allocation per fired event. Every
   scale cell runs in a fresh worker domain with a fresh vector-clock
   registry, so the measurement is reproducible; it is checked as a ceiling
   (+10%) rather than exactly, because allocation is sensitive to compiler
   version in a way the event counts are not. Before the copy-on-write
   vector clocks the single-crash column read 383/710/834 words per event
   at n = 64/128/256 — superlinear, because every heartbeat delivery
   copied an O(n) clock payload; it is now flat-ish and a regression past
   the ceiling fails the bench.

   History: relative to the PR 1 baseline, events_fired is lower by exactly
   the number of detector stops whose pending heartbeat tick used to fire as
   a no-op — `Heartbeat.stop` now cancels the scheduled tick (one stop per
   crash/quit: -1 on single-crash, -6/-12/-23 on churn 32/64/128).
   messages_sent and trace_events were unchanged there.

   The churn rows moved again with the PR 3 protocol bugfixes: join retries
   now round-robin from contacts.(0) instead of skipping it (different
   retry targets => different forward/commit traffic), and majority gates
   count only OKs from current non-faulty view members. single-crash (no
   joins, no stale OKs) is byte-identical; churn checker verdicts stay
   zero-violation.

   PR 7 flattened the last superlinear allocation: with suspicions
   outstanding (all of a churny run), `maybe_initiate` materialised the
   O(rank) `View.higher_ranked` seniors list after every delivery; it now
   walks the view once allocation-free. Churn words/event fell from
   97/177/337 (growing with n) to ~66/69/72 (flat); single-crash from
   67/74/87 to a flat ~60. All counts byte-identical. *)

type row = {
  name : string;
  n : int;
  events_fired : int;
  messages_sent : int;
  trace_events : int;
  words_per_event : float;  (** ceiling; +10% slack before it fails *)
}

let rows =
  [ { name = "single-crash"; n = 64; events_fired = 235_370;
      messages_sent = 235_491; trace_events = 255; words_per_event = 61.0 };
    { name = "single-crash"; n = 128; events_fired = 954_026;
      messages_sent = 962_403; trace_events = 511; words_per_event = 61.0 };
    { name = "single-crash"; n = 256; events_fired = 3_841_322;
      messages_sent = 3_890_787; trace_events = 1023; words_per_event = 61.0 };
    { name = "churn"; n = 32; events_fired = 94_888;
      messages_sent = 92_578; trace_events = 820; words_per_event = 67.0 };
    { name = "churn"; n = 64; events_fired = 509_759;
      messages_sent = 502_504; trace_events = 2549; words_per_event = 70.0 };
    { name = "churn"; n = 128; events_fired = 3_167_121;
      messages_sent = 3_153_694; trace_events = 9365; words_per_event = 73.0 } ]

let find ~name ~n =
  List.find_opt (fun r -> String.equal r.name name && r.n = n) rows

(* Returns drift messages instead of accumulating them in a global: scale
   cells run concurrently on worker domains, so shared mutable state here
   would be a race. The bench driver collects the lists and exits nonzero
   if any are non-empty. *)
let check ~name ~n ~events_fired ~messages_sent ~trace_events ~words_per_event
    =
  match find ~name ~n with
  | None -> []
  | Some expected ->
    let failures = ref [] in
    let mismatch what got want =
      if got <> want then
        failures :=
          Printf.sprintf "%s n=%d: %s = %d, expected %d" name n what got want
          :: !failures
    in
    mismatch "events_fired" events_fired expected.events_fired;
    mismatch "messages_sent" messages_sent expected.messages_sent;
    mismatch "trace_events" trace_events expected.trace_events;
    let ceiling = expected.words_per_event *. 1.10 in
    if words_per_event > ceiling then
      failures :=
        Printf.sprintf
          "%s n=%d: minor words/event = %.0f, over the +10%% allocation \
           ceiling %.0f (baseline %.0f)"
          name n words_per_event ceiling expected.words_per_event
        :: !failures;
    List.rev !failures
