(* Checked-in expectations for the deterministic E-scale counters.

   Wall time varies by machine, but [events_fired], [messages_sent] and
   [trace_events] are functions of the seed and the simulation logic alone
   (the RNG is our own splitmix64, so they are identical across OCaml
   versions). The bench compares every scale run against this table and
   exits nonzero on drift, so silent behaviour changes fail CI even when
   the tests pass.

   History: relative to the PR 1 baseline, events_fired is lower by exactly
   the number of detector stops whose pending heartbeat tick used to fire as
   a no-op — `Heartbeat.stop` now cancels the scheduled tick (one stop per
   crash/quit: -1 on single-crash, -6/-12/-23 on churn 32/64/128).
   messages_sent and trace_events were unchanged there.

   The churn rows moved again with the PR 3 protocol bugfixes: join retries
   now round-robin from contacts.(0) instead of skipping it (different
   retry targets => different forward/commit traffic), and majority gates
   count only OKs from current non-faulty view members. single-crash (no
   joins, no stale OKs) is byte-identical; churn checker verdicts stay
   zero-violation. *)

type row = {
  name : string;
  n : int;
  events_fired : int;
  messages_sent : int;
  trace_events : int;
}

let rows =
  [ { name = "single-crash"; n = 64; events_fired = 235_370;
      messages_sent = 235_491; trace_events = 255 };
    { name = "single-crash"; n = 128; events_fired = 954_026;
      messages_sent = 962_403; trace_events = 511 };
    { name = "single-crash"; n = 256; events_fired = 3_841_322;
      messages_sent = 3_890_787; trace_events = 1023 };
    { name = "churn"; n = 32; events_fired = 94_888;
      messages_sent = 92_578; trace_events = 820 };
    { name = "churn"; n = 64; events_fired = 509_759;
      messages_sent = 502_504; trace_events = 2549 };
    { name = "churn"; n = 128; events_fired = 3_167_121;
      messages_sent = 3_153_694; trace_events = 9365 } ]

let find ~name ~n =
  List.find_opt (fun r -> String.equal r.name name && r.n = n) rows

(* Drift messages accumulated across scale runs; the bench driver exits
   nonzero if any are present when it finishes. *)
let failures : string list ref = ref []

let check ~name ~n ~events_fired ~messages_sent ~trace_events =
  match find ~name ~n with
  | None -> ()
  | Some expected ->
    let mismatch what got want =
      if got <> want then begin
        let msg =
          Printf.sprintf "%s n=%d: %s = %d, expected %d" name n what got want
        in
        failures := msg :: !failures;
        Printf.printf "DRIFT: %s\n%!" msg
      end
    in
    mismatch "events_fired" events_fired expected.events_fired;
    mismatch "messages_sent" messages_sent expected.messages_sent;
    mismatch "trace_events" trace_events expected.trace_events
