(* Allocation-aware micro-benchmarks for the per-message hot path.

   Reports both wall-clock (ns/op) and minor-heap allocation (words/op) for
   the operations the per-message path is built from: event-queue add/pop,
   schedule+cancel through the engine (tombstone + compaction path), a full
   Network.send plus its delivery, and the vector-clock receive rule — plus
   the explorer's per-backtrack costs: whole-world checkpoint capture and
   restore at two group sizes.

   Run: dune exec bench/micro.exe *)

open Bechamel
open Gmp_base

let p0 = Pid.make 0
let p1 = Pid.make 1

(* queue add+pop at a steady size: one insert and one extract per run. *)
let queue_add_pop =
  let q = Gmp_sim.Event_queue.create () in
  for i = 1 to 1024 do
    Gmp_sim.Event_queue.add q ~time:(float_of_int i) ()
  done;
  let clock = ref 1024.0 in
  Test.make ~name:"queue.add+pop (size 1024)"
    (Staged.stage (fun () ->
         clock := !clock +. 1.0;
         Gmp_sim.Event_queue.add q ~time:!clock ();
         Gmp_sim.Event_queue.pop_exn q))

(* queue add alone; drained periodically so memory stays bounded. *)
let queue_add =
  let q = Gmp_sim.Event_queue.create () in
  let clock = ref 0.0 in
  Test.make ~name:"queue.add"
    (Staged.stage (fun () ->
         if Gmp_sim.Event_queue.length q > 1_000_000 then
           Gmp_sim.Event_queue.clear q;
         clock := !clock +. 1.0;
         Gmp_sim.Event_queue.add q ~time:!clock ()))

(* schedule+cancel through the engine: exercises the tombstone path and its
   compaction bound. *)
let engine_schedule_cancel =
  let e = Gmp_sim.Engine.create () in
  Test.make ~name:"engine.schedule+cancel"
    (Staged.stage (fun () ->
         let h = Gmp_sim.Engine.schedule e ~delay:1e9 ignore in
         Gmp_sim.Engine.cancel e h))

(* A full network send plus the engine step that delivers it: channel
   lookup, FIFO bookkeeping, delivery scheduling, stats. *)
let network_send =
  let engine = Gmp_sim.Engine.create () in
  let rng = Gmp_sim.Rng.create 7 in
  let delay = Gmp_net.Delay.constant 1.0 in
  let net = Gmp_net.Network.create ~engine ~rng ~delay () in
  Gmp_net.Network.set_handler net (fun ~dst:_ ~src:_ _ -> ());
  let cat = Gmp_net.Stats.intern "bench" in
  Test.make ~name:"network.send+deliver"
    (Staged.stage (fun () ->
         Gmp_net.Network.send net ~src:p0 ~dst:p1 ~category:cat ();
         ignore (Gmp_sim.Engine.step engine : bool)))

(* The receive rule at n=128 group size: merge the sender's clock into ours
   and tick, in one pass (what Runtime.dispatch pays per delivery). *)
let vc_merge_tick =
  let module Vc = Gmp_causality.Vector_clock in
  let full =
    List.fold_left (fun acc p -> Vc.tick acc p) Vc.empty (Pid.group 128)
  in
  let sender = Vc.tick full (Pid.make 3) in
  let local = ref (Vc.tick full p1) in
  Test.make ~name:"vc.merge_tick (n=128)"
    (Staged.stage (fun () -> local := Vc.merge_tick !local sender p1))

(* The parallel explorer's shared fingerprint store: one exhaustion-commit
   plus one prune probe per op, over a pre-populated table, keys drawn from
   the same splitmix-style mixing the explorer uses. Single-domain numbers;
   the cross-domain contention behaviour is covered by the unit tests. *)
let fp_table_ops =
  let module F = Gmp_explore.Fp_table in
  let t = F.create () in
  let mix k = (k * 0x9E3779B9) lxor (k lsr 13) in
  for i = 1 to 65_536 do
    F.note_exhausted t ~key:(mix i) ~remaining:(i land 7)
  done;
  let i = ref 0 in
  Test.make ~name:"fp_table.note+prunable (64k keys)"
    (Staged.stage (fun () ->
         incr i;
         let key = mix !i in
         F.note_exhausted t ~key ~remaining:(!i land 7);
         F.prunable t ~key ~remaining:4))

(* The explorer's snapshot layer: whole-world capture and in-place rewind
   (Group.checkpoint / Group.restore). Cost is O(world) — flat array blits
   plus copy-on-write clock publishes, no per-event work — so two sizes
   bound the range: n=3 is the exploration models' world, n=32 a mid-size
   group. Each world is run to a steady state first so the captures cover a
   populated event heap, live channels and a non-empty trace. *)
let snapshot_tests n =
  let module Group = Gmp_runtime.Group in
  let group = Group.create ~seed:11 ~n () in
  Group.run ~until:30.0 group;
  let capture =
    Test.make ~name:(Fmt.str "group.checkpoint (n=%d)" n)
      (Staged.stage (fun () -> Group.checkpoint group))
  in
  let cp = Group.checkpoint group in
  let restore =
    Test.make ~name:(Fmt.str "group.restore (n=%d)" n)
      (Staged.stage (fun () -> Group.restore group cp))
  in
  [ capture; restore ]

let tests =
  Test.make_grouped ~name:"hot-path"
    ([ queue_add_pop;
       queue_add;
       engine_schedule_cancel;
       network_send;
       vc_merge_tick;
       fp_table_ops ]
     @ snapshot_tests 3 @ snapshot_tests 32)

(* bechamel's built-in minor_allocated reads [Gc.quick_stat], whose
   minor_words only advances at minor collections on OCaml 5 — allocation-
   free ops would always read 0 and allocating ops would be quantised to
   whole collections. [Gc.minor_words] reads the allocation pointer. *)
module Minor_words = struct
  type witness = unit

  let label () = "minor-words"
  let unit () = "mnw"
  let make () = ()
  let load () = ()
  let unload () = ()
  let get () = Gc.minor_words ()
end

let minor_words =
  Measure.instance (module Minor_words) (Measure.register (module Minor_words))

let analyze instance raw =
  Analyze.all
    (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
    instance raw

let estimate results name =
  match Hashtbl.find_opt results name with
  | None -> Float.nan
  | Some r ->
    (match Analyze.OLS.estimates r with
     | Some [ est ] -> est
     | _ -> Float.nan)

let () =
  let instances = [ Toolkit.Instance.monotonic_clock; minor_words ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let clocks = analyze Toolkit.Instance.monotonic_clock raw in
  let words = analyze minor_words raw in
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) clocks []
    |> List.sort String.compare
  in
  Fmt.pr "%-40s %12s %14s@." "benchmark" "ns/op" "minor words/op";
  List.iter
    (fun name ->
      Fmt.pr "%-40s %12.1f %14.2f@." name (estimate clocks name)
        (estimate words name))
    names
