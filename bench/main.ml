(* Benchmark and reproduction harness.

   One section per artifact of the paper's quantitative content (see
   DESIGN.md's per-experiment index): Table 1, the Section 7.2 message
   complexity analysis (best cases, worst case, compressed sequences, the
   symmetric comparison), the Section 7.3 optimality claims (one-phase and
   two-phase counterexamples, Figure 11), the figure scenarios (3, 4, 7),
   the GMP property sweep, and the Appendix knowledge checks. Each section
   prints the paper's prediction next to the measured value.

   A final Bechamel section micro-benchmarks the protocol's building blocks
   and whole scenario executions. Run: dune exec bench/main.exe *)

open Gmp_base
open Gmp_core
module Group = Gmp_runtime.Group
open Gmp_workload

let pr = Fmt.pr

let section title = pr "@.=== %s ===@." title

let pass ok = if ok then "OK" else "MISMATCH"

(* ---------------------------------------------------------------- *)
(* Table 1: multiple reconfiguration initiations                    *)
(* ---------------------------------------------------------------- *)

let table1_row ~p_failed ~q_thinks_p_failed =
  let group = Group.create ~seed:30 ~n:4 () in
  let mgr = Pid.make 0 and pp = Pid.make 1 and qq = Pid.make 2 in
  Group.crash_at group 5.0 mgr;
  if p_failed then Group.crash_at group 6.0 pp;
  if q_thinks_p_failed then Group.suspect_at group 16.0 ~observer:qq ~target:pp;
  Group.run ~until:400.0 group;
  let initiated who =
    List.exists
      (fun (e : Trace.event) ->
        Pid.equal e.Trace.owner who
        &&
        match e.Trace.kind with
        | Trace.Initiated_reconf _ -> true
        | _ -> false)
      (Trace.events (Group.trace group))
  in
  let violations = Checker.check_safety (Group.trace group)
      ~initial:(Group.initial group) in
  (initiated pp, initiated qq, List.length violations)

let table1 () =
  section "Table 1: multiple reconfiguration initiations (n=4, Mgr crashed)";
  pr "%-10s %-12s | %-12s %-12s | %-14s %-14s %s@." "p actual" "q thinks p"
    "paper: q?" "paper: p?" "measured: q" "measured: p" "safety";
  let row (p_failed, q_thinks, paper_q, paper_p) =
    let p_init, q_init, viol = table1_row ~p_failed ~q_thinks_p_failed:q_thinks in
    pr "%-10s %-12s | %-12s %-12s | %-14b %-14b %s@."
      (if p_failed then "Failed" else "Up")
      (if q_thinks then "Failed" else "Up")
      paper_q paper_p q_init p_init
      (if viol = 0 then "OK" else "VIOLATED")
  in
  List.iter row
    [ (false, false, "No", "Yes");
      (true, false, "Eventually", "No");
      (false, true, "Yes", "Yes");
      (true, true, "Yes", "No") ]

(* ---------------------------------------------------------------- *)
(* E1-E3: best-case message complexities                             *)
(* ---------------------------------------------------------------- *)

let sizes = [ 4; 8; 16; 32; 64 ]

let e1 () =
  section "E1 (Fig 1/2, s7.2): plain two-phase exclusion, paper: 3n-5";
  pr "%-6s %-10s %-10s %s@." "n" "measured" "paper" "";
  List.iter
    (fun n ->
      let m, _ = Scenario.single_crash ~n () in
      let paper = (3 * n) - 5 in
      pr "%-6d %-10d %-10d %s  (violations: %d)@." n m.Scenario.protocol_msgs
        paper
        (pass (m.Scenario.protocol_msgs = paper))
        (List.length m.Scenario.violations))
    sizes

let e2 () =
  section "E2 (s3.1/s7.2): compressed second exclusion, paper: first 3n-5 + second <= 2(n-1)-3";
  pr "%-6s %-10s %-12s %s@." "n" "measured" "paper bound" "";
  List.iter
    (fun n ->
      let m, _ = Scenario.compressed_pair ~n () in
      let bound = (3 * n) - 5 + ((2 * (n - 1)) - 3) in
      pr "%-6d %-10d %-12d %s  (violations: %d)@." n m.Scenario.protocol_msgs
        bound
        (pass (m.Scenario.protocol_msgs <= bound))
        (List.length m.Scenario.violations))
    sizes

let e3 () =
  section "E3 (Fig 3-5, s7.2): one successful reconfiguration, paper: 5n-9";
  pr "%-6s %-10s %-10s %s@." "n" "measured" "paper" "";
  List.iter
    (fun n ->
      let m, _ = Scenario.mgr_crash ~n () in
      let paper = (5 * n) - 9 in
      pr "%-6d %-10d %-10d %s  (violations: %d)@." n m.Scenario.protocol_msgs
        paper
        (pass (m.Scenario.protocol_msgs = paper))
        (List.length m.Scenario.violations))
    sizes

(* ---------------------------------------------------------------- *)
(* E4: worst case - successive failed reconfigurations               *)
(* ---------------------------------------------------------------- *)

let e4 () =
  section "E4 (s7.2 worst case): tau successive failed reconfigurations, paper: O(n^2), ~(5/2)n^2 envelope";
  pr "%-6s %-7s %-10s %-14s %s@." "n" "kills" "measured" "(5/2)n^2" "";
  List.iter
    (fun n ->
      let kills = (n / 2) - 1 in
      let m, _ = Scenario.cascade ~n ~kills () in
      let envelope = 5 * n * n / 2 in
      pr "%-6d %-7d %-10d %-14d %s  (violations: %d)@." n kills
        m.Scenario.protocol_msgs envelope
        (pass (m.Scenario.protocol_msgs <= envelope))
        (List.length m.Scenario.violations))
    [ 8; 12; 16; 24 ];
  (* Quadratic growth check across the sweep. *)
  let cost n = (fst (Scenario.cascade ~n ~kills:((n / 2) - 1) ())).Scenario.protocol_msgs in
  let c8 = cost 8 and c16 = cost 16 in
  pr "growth 8->16: x%.1f (quadratic predicts ~x4)@."
    (float_of_int c16 /. float_of_int c8)

(* ---------------------------------------------------------------- *)
(* E5: n-1 successive failures - compression savings                 *)
(* ---------------------------------------------------------------- *)

let e5 () =
  section "E5 (s7.2): n-1 successive failures, paper: compressed total (n-1)^2 i.e. avg n-1 per exclusion; plain two-phase pays ~n/2-1 more per exclusion";
  pr "%-6s %-12s %-10s %-14s %-14s %s@." "n" "compressed" "(n-1)^2" "uncompressed"
    "saving/excl" "";
  List.iter
    (fun n ->
      let mc, _ = Scenario.sequence_all ~compressed:true ~n () in
      let mu, _ = Scenario.sequence_all ~compressed:false ~n () in
      let paper = (n - 1) * (n - 1) in
      let saving =
        float_of_int (mu.Scenario.protocol_msgs - mc.Scenario.protocol_msgs)
        /. float_of_int (n - 1)
      in
      pr "%-6d %-12d %-10d %-14d %-14.1f %s@." n mc.Scenario.protocol_msgs paper
        mu.Scenario.protocol_msgs saving
        (pass (mc.Scenario.protocol_msgs <= paper
               && mc.Scenario.protocol_msgs < mu.Scenario.protocol_msgs)))
    [ 4; 8; 16; 32 ]

(* ---------------------------------------------------------------- *)
(* E6: symmetric (Bruso-style) baseline                              *)
(* ---------------------------------------------------------------- *)

let e6 () =
  section "E6 (s1/s8): symmetric baseline vs this protocol, paper: 'an order of magnitude more messages'";
  pr "%-6s %-12s %-10s %-8s@." "n" "symmetric" "ours" "ratio";
  List.iter
    (fun n ->
      let sym, _ = Scenario.symmetric_single_crash ~n () in
      let ours, _ = Scenario.single_crash ~n () in
      pr "%-6d %-12d %-10d x%.1f@." n sym ours.Scenario.protocol_msgs
        (float_of_int sym /. float_of_int ours.Scenario.protocol_msgs))
    [ 8; 16; 32; 64 ]

(* ---------------------------------------------------------------- *)
(* C1 / C2: the optimality claims                                    *)
(* ---------------------------------------------------------------- *)

let c1 () =
  section "C1 (Claim 7.1): one-phase update under the proof's split schedule";
  let violations, views = Scenario.one_phase_split ~n:5 () in
  pr "one-phase baseline: %d GMP violations (paper: GMP-3 must break)  %s@."
    (List.length violations)
    (pass (violations <> []));
  List.iter
    (fun (p, v, members) ->
      pr "  %-4s v%d {%s}@." (Pid.to_string p) v
        (String.concat "," (List.map Pid.to_string members)))
    views;
  let violations', _ = Scenario.real_protocol_split ~n:5 () in
  pr "three-phase protocol, same schedule: %d violations  %s@."
    (List.length violations')
    (pass (violations' = []))

let c2 () =
  section "C2 (Claim 7.2 / Figure 11): two-phase reconfiguration must guess";
  let violations, views = Scenario.two_phase_fig11 () in
  pr "two-phase baseline: %d GMP violations (paper: GMP-3 must break)  %s@."
    (List.length violations)
    (pass (violations <> []));
  List.iter
    (fun (p, v, members) ->
      pr "  %-4s v%d {%s}@." (Pid.to_string p) v
        (String.concat "," (List.map Pid.to_string members)))
    views;
  let violations', group = Scenario.real_protocol_fig11 () in
  pr "three-phase protocol, same schedule: %d violations  %s@."
    (List.length violations')
    (pass (violations' = []));
  let p1_installs = Trace.installs_of (Group.trace group) (Pid.make 1) in
  pr "  (the would-be invisible committer is blocked at v%d)@."
    (List.fold_left (fun acc (v, _) -> max acc v) 0 p1_installs);
  let viol2, g2 = Scenario.real_protocol_two_proposals () in
  pr "GetStable variant (two proposals visible): %d violations  %s@."
    (List.length viol2) (pass (viol2 = []));
  (match List.assoc_opt 1 (Trace.installs_of (Group.trace g2) (Pid.make 2)) with
   | Some members ->
     pr "  v1 = {%s} (propagates the junior proposer's Remove(Mgr))@."
       (String.concat "," (List.map Pid.to_string members))
   | None -> pr "  v1 never installed?!@.")

(* ---------------------------------------------------------------- *)
(* F3 / F4 / F7: figure scenarios                                    *)
(* ---------------------------------------------------------------- *)

let f3 () =
  section "F3 (Figure 3): Mgr crash around its commit broadcast";
  let all_ok = ref true in
  List.iter
    (fun tenths ->
      let group = Group.create ~seed:(20 + tenths) ~n:6 () in
      Group.crash_at group 10.0 (Pid.make 5);
      Group.crash_at group (21.0 +. (0.5 *. float_of_int tenths)) (Pid.make 0);
      Group.run ~until:500.0 group;
      let violations = Group.check group in
      if violations <> [] then all_ok := false)
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
  pr "10 crash offsets across the commit window: unique view restored every time  %s@."
    (pass !all_ok)

let f4 () =
  section "F4 (Figure 4): concurrent reconfiguration initiators";
  let m, group = Scenario.concurrent_initiators ~n:6 () in
  let initiators =
    List.filter
      (fun (e : Trace.event) ->
        match e.Trace.kind with Trace.Initiated_reconf _ -> true | _ -> false)
      (Trace.events (Group.trace group))
  in
  pr "initiations observed: %d; violations: %d; views converged: %s  %s@."
    (List.length initiators)
    (List.length m.Scenario.violations)
    (match Group.agreed_view group with
     | Some (v, members) ->
       Fmt.str "v%d {%s}" v (String.concat "," (List.map Pid.to_string members))
     | None -> "NO")
    (pass (m.Scenario.violations = []))

let f7 () =
  section "F7 (Figure 7 / Props 5.1-5.4) and P1 (Theorems 6.1-6.2): GMP sweep under random churn";
  let seeds = 200 in
  let bad = ref 0 in
  for seed = 1 to seeds do
    let m, _ = Scenario.random_churn ~seed () in
    if m.Scenario.violations <> [] then incr bad
  done;
  pr "%d randomized churn runs (crashes, joins, spurious suspicions, cascades): %d with violations  %s@."
    seeds !bad (pass (!bad = 0))

(* ---------------------------------------------------------------- *)
(* A1: Appendix - epistemic analysis                                 *)
(* ---------------------------------------------------------------- *)

let a1 () =
  section "A1 (Appendix): knowledge checks on traces";
  let clean = Group.create ~seed:60 ~n:6 () in
  Group.crash_at clean 10.0 (Pid.make 5);
  Group.crash_at clean 40.0 (Pid.make 4);
  Group.run ~until:300.0 clean;
  let r1 = Epistemic.analyze (Group.trace clean) in
  pr "no-Mgr-failure run:     %a  %s@." Epistemic.pp_report r1
    (pass (Epistemic.ok r1));
  let reconf = Group.create ~seed:61 ~n:6 () in
  Group.crash_at reconf 10.0 (Pid.make 0);
  Group.run ~until:300.0 reconf;
  let r2 = Epistemic.analyze ~eq4:false (Group.trace reconf) in
  pr "Mgr-failure run (cuts): %a  %s@." Epistemic.pp_report r2
    (pass (Epistemic.ok r2));
  (* Tense-logic model checking on the clean run: Equation 4 for every
     process/version, and the E^y unwinding down to the initial view. *)
  let run = Knowledge.of_trace (Group.trace clean) in
  let eq4_ok =
    List.for_all
      (fun pid ->
        List.for_all
          (fun x -> Knowledge.valid run (Knowledge.equation_4 run ~p:pid ~x))
          [ 1; 2 ])
      (Knowledge.pids run)
  in
  pr "Equation 4 (tense logic, all p, x in {1,2}):  %s@." (pass eq4_ok);
  let unwind_ok =
    match Knowledge.unwinding run ~x:2 ~y:2 with
    | Some f -> Knowledge.valid run f
    | None -> false
  in
  pr "E^2 unwinding IsSysView(2) => (E<past>)^2 IsSysView(0):  %s@."
    (pass unwind_ok)

(* ---------------------------------------------------------------- *)
(* Ablations: design choices the paper leaves open                   *)
(* ---------------------------------------------------------------- *)

(* AB1: detector sensitivity. The paper treats detection as an oracle
   ("time is only an approximate tool"); any real timeout detector trades
   recovery latency against spurious exclusions. Sweep the timeout under
   heavy-tailed delays and measure both sides of the trade. *)
let ab1 () =
  section "AB1 (ablation): heartbeat timeout vs detection latency and spurious exclusions";
  pr "%-9s %-22s %-24s@." "timeout" "crash-recovery latency" "spurious exclusions";
  let jittery = Gmp_net.Delay.exponential ~mean:1.0 in
  List.iter
    (fun timeout ->
      let config =
        { Config.default with
          Config.heartbeat_timeout = timeout;
          Config.heartbeat_interval = 1.0 }
      in
      (* (a) latency: crash p(n-1) at t=20; when has every survivor
             installed v1? *)
      let latencies =
        List.filter_map
          (fun seed ->
            let group = Group.create ~config ~delay:jittery ~seed ~n:6 () in
            Group.crash_at group 20.0 (Pid.make 5);
            Group.run ~until:400.0 group;
            if Group.check group <> [] then None
            else
              let last_install =
                List.fold_left
                  (fun acc ((e : Trace.event), ver, _) ->
                    if ver = 1 then Float.max acc e.Trace.time else acc)
                  0.0
                  (Trace.installs (Group.trace group))
              in
              Some (last_install -. 20.0))
          (List.init 30 (fun i -> 100 + i))
      in
      (* (b) spurious exclusions: no crash at all; count processes that got
             excluded anyway because jitter outran the timeout. *)
      let spurious =
        List.fold_left
          (fun acc seed ->
            let group = Group.create ~config ~delay:jittery ~seed ~n:6 () in
            Group.run ~until:300.0 group;
            let survivors = List.length (Group.operational_members group) in
            acc + (6 - survivors))
          0
          (List.init 30 (fun i -> 200 + i))
      in
      match latencies with
      | [] -> pr "%-9.1f (no clean run at this timeout)       %d over 30 quiet runs@." timeout spurious
      | _ ->
        let s = Gmp_sim.Stat.of_list latencies in
        pr "%-9.1f p50=%6.1f p90=%6.1f      %d over 30 quiet runs@." timeout
          s.Gmp_sim.Stat.p50 s.Gmp_sim.Stat.p90 spurious)
    [ 3.0; 5.0; 8.0; 12.0; 20.0 ]

(* AB2: the §8 future-work optimization (pre-sent interrogation replies
   plus an initiation grace period). Reported as measured, including where
   it loses: the grace delays recovery, during which further failures
   accumulate. *)
let ab2 () =
  section "AB2 (ablation, s8 future work): reconfiguration phase reuse";
  pr "%-6s %-7s %-12s %-12s@." "n" "kills" "baseline" "with reuse";
  List.iter
    (fun n ->
      let kills = (n / 2) - 1 in
      let run config =
        let config = { config with Config.heartbeat_timeout = 8.0 } in
        let delay = Gmp_net.Delay.uniform ~lo:1.0 ~hi:3.0 in
        let group = Group.create ~config ~delay ~seed:1 ~n () in
        Group.crash_at group 10.0 (Pid.make 0);
        for i = 1 to kills - 1 do
          Group.crash_at group (10.0 +. (float_of_int i *. 14.0)) (Pid.make i)
        done;
        Group.run ~until:2000.0 group;
        (Group.protocol_messages group, List.length (Group.check group))
      in
      let base, v1 = run Config.default in
      let reuse, v2 = run Config.optimized in
      pr "%-6d %-7d %-12d %-12d %s@." n kills base reuse
        (if v1 = 0 && v2 = 0 then "OK (GMP holds in both)"
         else Fmt.str "VIOLATIONS base=%d reuse=%d" v1 v2))
    [ 8; 16; 24 ];
  pr "(reuse helps small cascades; at larger n its grace period lets more@.";
  pr " failures pile up per round - the trade-off the paper left open)@."

(* AB3: view-change latency distributions across seeds: exclusion vs
   reconfiguration (recovering from a coordinator crash costs one extra
   detection timeout plus two extra phases). *)
let ab3 () =
  section "AB3: view-change latency (crash at t=20 to last survivor's install of v1)";
  let latency ~crash_mgr seed =
    let group = Group.create ~seed ~n:8 () in
    Group.crash_at group 20.0 (Pid.make (if crash_mgr then 0 else 7));
    Group.run ~until:400.0 group;
    if Group.check group <> [] then None
    else
      let last =
        List.fold_left
          (fun acc ((e : Trace.event), ver, _) ->
            if ver = 1 then Float.max acc e.Trace.time else acc)
          0.0
          (Trace.installs (Group.trace group))
      in
      Some (last -. 20.0)
  in
  let seeds = List.init 100 (fun i -> 300 + i) in
  let excl = List.filter_map (latency ~crash_mgr:false) seeds in
  let reconf = List.filter_map (latency ~crash_mgr:true) seeds in
  pr "exclusion (junior crash):    %a@." Gmp_sim.Stat.pp (Gmp_sim.Stat.of_list excl);
  pr "reconfiguration (mgr crash): %a@." Gmp_sim.Stat.pp
    (Gmp_sim.Stat.of_list reconf)

(* AB4: the ARQ substrate - the cost of *implementing* the paper's assumed
   reliable FIFO channel over a lossy medium (datagrams per delivered
   message as loss grows). *)
let ab4 () =
  section "AB4: implementing the assumed channel (alternating-bit over loss)";
  pr "%-8s %-18s %-16s@." "loss" "datagrams/message" "retransmissions";
  List.iter
    (fun loss ->
      let engine = Gmp_sim.Engine.create () in
      let rng = Gmp_sim.Rng.create 17 in
      let delay = Gmp_net.Delay.uniform ~lo:0.5 ~hi:1.5 in
      let arq =
        Gmp_net.Arq.create ~loss ~duplicate:0.05 ~rto:5.0 ~engine ~rng ~delay ()
      in
      let received = ref 0 in
      Gmp_net.Arq.set_handler arq (fun ~dst:_ ~src:_ _ -> incr received);
      let n = 200 in
      for i = 1 to n do
        Gmp_net.Arq.send arq ~src:(Pid.make 0) ~dst:(Pid.make 1) i
      done;
      Gmp_sim.Engine.run engine;
      pr "%-8.2f %-18.2f %-16d %s@." loss
        (float_of_int (Gmp_net.Arq.datagrams_sent arq) /. float_of_int n)
        (Gmp_net.Arq.retransmissions arq)
        (if !received = n then "(all delivered in order)" else "LOST DATA"))
    [ 0.0; 0.1; 0.3; 0.5; 0.7 ]

(* ---------------------------------------------------------------- *)
(* E-scale: simulator throughput at n in {64, 128, 256}              *)
(* ---------------------------------------------------------------- *)

(* The §7.2 envelopes stop at n = 64 because the seed simulator did; this
   section exists so every later PR has a machine-readable perf trajectory
   (BENCH_scale.json) to beat: wall-clock, events fired, peak heap entries,
   messages and checker time per scenario. *)

module J = Gmp_base.Json

let time_of f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let time_reps ~reps f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int reps

let total_sent stats =
  List.fold_left
    (fun acc (_, sent, _, _) -> acc + sent)
    0
    (Gmp_net.Stats.snapshot stats)

(* Wall times of the committed PR 1 BENCH_scale.json, embedded so the file
   this run emits carries its own before/after trajectory. *)
let pr1_wall =
  [ (("single-crash", 64), 2.5477469);
    (("single-crash", 128), 25.203512);
    (("single-crash", 256), 216.997837);
    (("churn", 32), 0.390711069);
    (("churn", 64), 4.96368194);
    (("churn", 128), 83.0552831) ]

(* One E-scale cell, run to completion with its measurements. Pure by
   construction — the formatted table row, the JSON object and any
   expectation drift come back as data — so cells can run on worker
   domains and the main domain prints them in canonical order. *)
type scale_cell = {
  c_row : string;
  c_json : J.t;
  c_fails : string list;
  c_wall : float;  (** scenario wall time, for the speedup denominator *)
}

let scale_run ~name ~n scenario =
  let minor0 = Gc.minor_words () in
  let (m, group), wall = time_of (fun () -> scenario ~n ()) in
  let minor_words = Gc.minor_words () -. minor0 in
  let (violations, checker_s) = time_of (fun () -> Group.check group) in
  let engine = Group.engine group in
  let trace = Group.trace group in
  let events_fired = Gmp_sim.Engine.fired_events engine in
  let messages_sent = total_sent (Group.stats group) in
  let trace_events = Trace.length trace in
  let words_per_event = minor_words /. float_of_int (max 1 events_fired) in
  let row =
    Fmt.str "%-14s %-6d %9.2fs %10d %10d %10d %9d %9.0f %10.4fs %s" name n
      wall events_fired
      (Gmp_sim.Engine.peak_queue_length engine)
      messages_sent trace_events words_per_event checker_s
      (if violations = [] then "OK"
       else Fmt.str "%d VIOLATIONS" (List.length violations))
  in
  ignore m;
  let fails =
    Expectations.check ~name ~n ~events_fired ~messages_sent ~trace_events
      ~words_per_event
  in
  let baseline_fields =
    match List.assoc_opt (name, n) pr1_wall with
    | None -> []
    | Some pr1 ->
      [ ("pr1_wall_s", J.float pr1);
        ("speedup_vs_pr1", J.float (pr1 /. wall)) ]
  in
  let json =
    J.obj
      ([ ("name", J.string name);
         ("n", J.int n);
         ("wall_s", J.float wall);
         ("events_fired", J.int events_fired);
         ("peak_heap_entries", J.int (Gmp_sim.Engine.peak_queue_length engine));
         ("final_heap_entries", J.int (Gmp_sim.Engine.queue_length engine));
         ("live_timers", J.int (Gmp_sim.Engine.pending_events engine));
         ("messages_sent", J.int messages_sent);
         ("trace_events", J.int trace_events);
         ("minor_words", J.float minor_words);
         ("minor_words_per_event", J.float words_per_event);
         ("checker_s", J.float checker_s);
         ("violations", J.int (List.length violations));
         (* deterministic snapshot (counters, detection-latency histograms):
            same seed, same cell -> byte-identical text, any jobs value *)
         ("metrics", Gmp_obs.Obs.Snapshot.to_json (Group.metrics group)) ]
       @ baseline_fields)
  in
  { c_row = row; c_json = json; c_fails = fails; c_wall = wall }

(* Farm the cells to [jobs] worker domains pulling from a shared index.
   The pool runs even at jobs = 1 so every jobs value takes the same code
   path: each cell starts from a fresh per-domain vector-clock registry,
   and all its measurements (Gc.minor_words is per-domain on OCaml 5) are
   functions of the cell alone — the emitted JSON is bit-identical for any
   job count, which CI checks with bench/json_diff.exe. The global stats
   category registry is frozen across the pool: module-init time interned
   every category, so workers only do (safe) concurrent lookups. *)
let run_cells ~jobs cells =
  let items = Array.of_list cells in
  let results = Array.make (Array.length items) None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length items then begin
        Gmp_causality.Vector_clock.fresh_registry ();
        let name, n, scenario = items.(i) in
        results.(i) <- Some (scale_run ~name ~n scenario);
        loop ()
      end
    in
    loop ()
  in
  Gmp_platform.Stats.freeze ();
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init (min jobs (max 1 (Array.length items))) (fun _ ->
        Domain.spawn worker)
  in
  List.iter Domain.join domains;
  let pool_wall = Unix.gettimeofday () -. t0 in
  Gmp_platform.Stats.thaw ();
  let cells =
    Array.to_list results
    |> List.map (function
         | Some c -> c
         | None -> failwith "bench: scale cell never ran")
  in
  (cells, pool_wall)

(* The acceptance measurement: the same full safety check on the n=32 churn
   trace, indexed vs the seed's list scans (Checker.Reference). *)
let checker_speedup () =
  let _, group = Scenario.churn ~n:32 () in
  let trace = Group.trace group in
  let initial = Group.initial group in
  let reps = 10 in
  (* Sanity: all three agree (no violations on a correct run) before timing. *)
  let idx_violations = Checker.check_safety trace ~initial in
  let seed_violations = Seed_checker.check_safety trace ~initial in
  if List.length idx_violations <> List.length seed_violations then
    pr "WARNING: indexed and seed checkers disagree (%d vs %d violations)@."
      (List.length idx_violations)
      (List.length seed_violations);
  let indexed_s =
    time_reps ~reps (fun () -> Checker.check_safety trace ~initial)
  in
  let seed_s =
    time_reps ~reps (fun () -> Seed_checker.check_safety trace ~initial)
  in
  let reference_s =
    time_reps ~reps (fun () -> Checker.Reference.check_safety trace ~initial)
  in
  let speedup = seed_s /. indexed_s in
  pr "checker on n=32 churn trace (%d events): indexed %.4fms, seed \
      list-scan %.4fms -> x%.1f  %s@."
    (Trace.length trace) (indexed_s *. 1e3) (seed_s *. 1e3) speedup
    (pass (speedup >= 5.0));
  pr "  (new property logic on the naive scans alone: %.4fms -> x%.1f)@."
    (reference_s *. 1e3)
    (reference_s /. indexed_s);
  J.obj
    [ ("trace_events", J.int (Trace.length trace));
      ("indexed_s", J.float indexed_s);
      ("seed_s", J.float seed_s);
      ("reference_s", J.float reference_s);
      ("speedup_vs_seed", J.float speedup);
      ("speedup_vs_reference", J.float (reference_s /. indexed_s)) ]

(* ---------------------------------------------------------------- *)
(* E-explore: schedule-explorer throughput (snapshots vs replay)     *)
(* ---------------------------------------------------------------- *)

module E = Gmp_explore.Explore

(* Wall time of the pre-snapshot seed explorer on the same sweep (assurance
   model, depth 12, budget 25000), measured on the reference machine — the
   speedup_vs_seed denominator, same convention as [pr1_wall]. *)
let explore_seed_wall_s = 0.734

(* The PR 7 acceptance measurement: bounded exploration of the assurance
   model at the CI setting, checkpoint/restore snapshots against the
   rebuild-and-replay oracle, sequential and partitioned. Everything except
   wall-clock is deterministic, and the two engines must agree on all of it
   — executions, distinct interleavings, every counter, the (absent)
   counterexample — so any disagreement comes back as a drift failure and
   fails the bench, mirroring CI's oracle-equivalence gate. *)
let explore_throughput () =
  section
    "E-explore: schedule-explorer throughput (snapshots vs replay oracle; \
     assurance, depth 12, budget 25000)";
  let depth = 12 and budget = 25_000 in
  let model = E.assurance () in
  pr "%-16s %9s %12s %14s %12s %10s@." "engine" "wall" "exec/s"
    "distinct/s" "executions" "distinct";
  let cell ~jobs ~snapshots =
    let label =
      Fmt.str "%s/%s"
        (match jobs with None -> "seq" | Some j -> Fmt.str "jobs%d" j)
        (if snapshots then "snapshots" else "replay")
    in
    let o, wall =
      time_of (fun () -> E.explore ?jobs ~snapshots model ~depth ~budget)
    in
    let s = o.E.stats in
    pr "%-16s %8.3fs %12.0f %14.0f %12d %10d@." label wall
      (float_of_int s.E.executions /. wall)
      (float_of_int s.E.distinct /. wall)
      s.E.executions s.E.distinct;
    let json =
      J.obj
        [ ("label", J.string label);
          ("snapshots", J.bool snapshots);
          ("executions", J.int s.E.executions);
          ("distinct", J.int s.E.distinct);
          ("frames", J.int s.E.frames);
          ("state_pruned", J.int s.E.state_pruned);
          ("sleep_pruned", J.int s.E.sleep_pruned);
          ("violation_found", J.bool (o.E.counterexample <> None));
          ("wall_s", J.float wall);
          ("executions_per_s", J.float (float_of_int s.E.executions /. wall));
          ("distinct_per_s", J.float (float_of_int s.E.distinct /. wall)) ]
    in
    (label, o, wall, json)
  in
  (* Snapshots on/off at each jobs value: the sequential engine (the CI
     assurance gate) plus the partitioned engine at jobs 1 and jobs 4.
     Bound one by one so the rows run (and print) in table order. *)
  let c1 = cell ~jobs:None ~snapshots:true in
  let c2 = cell ~jobs:None ~snapshots:false in
  let c3 = cell ~jobs:(Some 1) ~snapshots:true in
  let c4 = cell ~jobs:(Some 1) ~snapshots:false in
  let c5 = cell ~jobs:(Some 4) ~snapshots:true in
  let c6 = cell ~jobs:(Some 4) ~snapshots:false in
  let cells = [ c1; c2; c3; c4; c5; c6 ] in
  let outcome label = List.find (fun (l, _, _, _) -> String.equal l label) cells in
  let wall_of label = let _, _, w, _ = outcome label in w in
  let result_of label = let _, o, _, _ = outcome label in o in
  (* Engine-equivalence drift checks (byte-identical outcomes). *)
  let fails = ref [] in
  let must_agree a b =
    let agree = result_of a = result_of b in
    pr "outcome %s == %s: %s@." a b (pass agree);
    if not agree then
      fails :=
        Fmt.str "explorer outcome drift: %s and %s disagree (assurance, \
                 depth %d, budget %d)" a b depth budget
        :: !fails
  in
  must_agree "seq/snapshots" "seq/replay";
  must_agree "jobs1/snapshots" "jobs1/replay";
  must_agree "jobs4/snapshots" "jobs4/replay";
  must_agree "jobs1/snapshots" "jobs4/snapshots";
  let speedup_vs_replay = wall_of "seq/replay" /. wall_of "seq/snapshots" in
  let speedup_vs_seed = explore_seed_wall_s /. wall_of "seq/snapshots" in
  pr "snapshots vs in-process replay oracle: x%.2f; vs pre-snapshot seed \
      explorer (%.3fs on the reference machine): x%.2f@."
    speedup_vs_replay explore_seed_wall_s speedup_vs_seed;
  let json =
    J.obj
      [ ("model", J.string "assurance");
        ("depth", J.int depth);
        ("budget", J.int budget);
        ("cells", J.list (List.map (fun (_, _, _, j) -> j) cells));
        ("seed_wall_s", J.float explore_seed_wall_s);
        ("speedup_vs_replay", J.float speedup_vs_replay);
        ("speedup_vs_seed", J.float speedup_vs_seed) ]
  in
  (json, List.rev !fails)

let scale ~quick ~jobs () =
  section
    (if quick then "E-scale (quick): simulator throughput"
     else "E-scale: simulator throughput (indexed traces, compacted timers)");
  (* Churn cost grows as n^2 x horizon (the horizon itself scales with the
     crash count), so n=256 churn is minutes of wall-clock; the single-crash
     workload carries the n=256 point instead. *)
  let single_sizes = if quick then [ 64 ] else [ 64; 128; 256 ] in
  let churn_sizes = if quick then [ 32 ] else [ 32; 64; 128 ] in
  let cells =
    List.map
      (fun n ->
        ("single-crash", n, fun ~n () -> Scenario.scale_single_crash ~n ()))
      single_sizes
    @ List.map
        (fun n -> ("churn", n, fun ~n () -> Scenario.churn ~n ()))
        churn_sizes
  in
  pr "%d cells on %d worker domain(s)@." (List.length cells) jobs;
  pr "%-14s %-6s %10s %10s %10s %10s %9s %9s %11s@." "scenario" "n" "wall"
    "events" "peak-heap" "messages" "trace" "words/ev" "checker";
  let runs, pool_wall = run_cells ~jobs cells in
  List.iter (fun c -> pr "%s@." c.c_row) runs;
  let cells_wall = List.fold_left (fun acc c -> acc +. c.c_wall) 0.0 runs in
  let parallel_speedup = cells_wall /. Float.max pool_wall 1e-9 in
  pr "cells: %.2fs of scenario work in %.2fs wall (speedup x%.2f on %d \
      domain(s))@."
    cells_wall pool_wall parallel_speedup jobs;
  let speedup = checker_speedup () in
  let explorer_json, explorer_fails = explore_throughput () in
  let doc =
    J.obj
      [ ("quick", J.bool quick);
        ("jobs", J.int jobs);
        ("scenarios", J.list (List.map (fun c -> c.c_json) runs));
        ("explorer_throughput", explorer_json);
        ("cells_wall_s", J.float cells_wall);
        ("pool_wall_s", J.float pool_wall);
        ("parallel_speedup", J.float parallel_speedup);
        ("pr1_baseline_wall_s",
         J.list
           (List.map
              (fun ((name, n), wall) ->
                J.obj
                  [ ("name", J.string name);
                    ("n", J.int n);
                    ("wall_s", J.float wall) ])
              pr1_wall));
        ("checker_speedup_n32_churn", speedup) ]
  in
  let oc = open_out "BENCH_scale.json" in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  pr "wrote BENCH_scale.json@.";
  List.concat_map (fun c -> c.c_fails) runs @ explorer_fails

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks                                         *)
(* ---------------------------------------------------------------- *)

let bechamel_section () =
  section "Bechamel micro-benchmarks (wall-clock per whole scenario run)";
  let open Bechamel in
  let scenario_test name f =
    Test.make ~name (Staged.stage (fun () -> ignore (f ())))
  in
  let tests =
    Test.make_grouped ~name:"scenarios"
      [ scenario_test "E1-exclusion-n8" (fun () -> Scenario.single_crash ~n:8 ());
        scenario_test "E2-compressed-n8" (fun () ->
            Scenario.compressed_pair ~n:8 ());
        scenario_test "E3-reconfig-n8" (fun () -> Scenario.mgr_crash ~n:8 ());
        scenario_test "E5-sequence-n8" (fun () ->
            Scenario.sequence_all ~n:8 ());
        scenario_test "E6-symmetric-n8" (fun () ->
            Scenario.symmetric_single_crash ~n:8 ());
        scenario_test "view-ops" (fun () ->
            let v = View.initial (Pid.group 64) in
            let v = View.remove v (Pid.make 13) in
            View.rank v (Pid.make 63)) ]
  in
  let benchmark () =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
    Benchmark.all cfg instances tests
  in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock (benchmark ())
  in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let est =
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> est
          | _ -> Float.nan
        in
        (name, est) :: acc)
      results []
  in
  List.iter
    (fun (name, est) ->
      if Float.is_nan est then pr "%-36s (no estimate)@." name
      else pr "%-36s %12.0f ns/run@." name est)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* --jobs N: worker-domain count for the E-scale pool. 0 autodetects the
   core count; negatives are rejected; the default of 1 still goes through
   the pool so the emitted JSON is identical for every value. *)
let parse_jobs () =
  let argv = Sys.argv in
  let jobs = ref 1 in
  let set raw =
    match int_of_string_opt raw with
    | None ->
      Fmt.epr "bench: invalid --jobs value %S@." raw;
      exit 2
    | Some j when j < 0 ->
      Fmt.epr "bench: --jobs must be >= 0, got %d@." j;
      exit 2
    | Some 0 -> jobs := Domain.recommended_domain_count ()
    | Some j -> jobs := j
  in
  Array.iteri
    (fun i arg ->
      if String.equal arg "--jobs" then
        if i + 1 < Array.length argv then set argv.(i + 1)
        else begin
          Fmt.epr "bench: --jobs needs a value@.";
          exit 2
        end
      else if String.length arg > 7 && String.equal (String.sub arg 0 7) "--jobs="
      then set (String.sub arg 7 (String.length arg - 7)))
    argv;
  !jobs

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let jobs = parse_jobs () in
  pr "Reproduction harness: Ricciardi & Birman, 'Using Process Groups to Implement@.";
  pr "Failure Detection in Asynchronous Environments' (PODC 1991 / TR 91-1188)@.";
  let failures =
    if quick then begin
      (* CI smoke mode: the cheap paper sections plus the scale section at its
         smallest sizes, so perf regressions and envelope breaks fail fast. *)
      table1 ();
      e1 ();
      e3 ();
      c1 ();
      c2 ();
      a1 ();
      scale ~quick:true ~jobs ()
    end
    else begin
      table1 ();
      e1 ();
      e2 ();
      e3 ();
      e4 ();
      e5 ();
      e6 ();
      c1 ();
      c2 ();
      f3 ();
      f4 ();
      f7 ();
      a1 ();
      ab1 ();
      ab2 ();
      ab3 ();
      ab4 ();
      let failures = scale ~quick:false ~jobs () in
      bechamel_section ();
      failures
    end
  in
  pr "@.done.@.";
  match failures with
  | [] -> ()
  | failures ->
    pr "@.%d deterministic-count drift(s) vs bench/expectations.ml:@."
      (List.length failures);
    List.iter (fun msg -> pr "  %s@." msg) failures;
    exit 1
