(* The pre-indexing checker, frozen verbatim as a benchmark baseline.

   This is the seed's [Checker.check_safety]: the original property logic
   running on the original naive list scans (preserved as
   [Trace.Reference]). The E-scale section measures the indexed checker's
   speedup against this implementation, so keep it as it was — do not
   "improve" it. The shared-logic oracle for correctness testing is
   [Checker.Reference]; this module exists only for the speedup number. *)

open Gmp_base
open Gmp_core
module T = Trace.Reference

let v property fmt =
  Fmt.kstr (fun detail -> Checker.{ property; detail }) fmt

let check_gmp0 trace ~initial =
  List.concat_map
    (fun pid ->
      match T.installs_of trace pid with
      | (0, members) :: _ ->
        if List.length members = List.length initial
           && List.for_all2 Pid.equal members initial
        then []
        else
          [ v "GMP-0" "%a installed an initial view different from Proc"
              Pid.pp pid ]
      | (ver, _) :: _ ->
        if ver > 0 then []
        else [ v "GMP-0" "%a has a negative initial version" Pid.pp pid ]
      | [] -> [ v "GMP-0" "%a never installed any view" Pid.pp pid ])
    initial

let check_gmp1 trace =
  let owners = T.owners trace in
  List.concat_map
    (fun pid ->
      let events = T.by_owner trace pid in
      let _, violations =
        List.fold_left
          (fun (suspected, violations) (e : Trace.event) ->
            match e.kind with
            | Trace.Faulty q -> (Pid.Set.add q suspected, violations)
            | Trace.Removed { target; new_ver } ->
              if Pid.Set.mem target suspected then (suspected, violations)
              else
                ( suspected,
                  v "GMP-1" "%a removed %a (v%d) without believing it faulty"
                    Pid.pp pid Pid.pp target new_ver
                  :: violations )
            | _ -> (suspected, violations))
          (Pid.Set.empty, []) events
      in
      List.rev violations)
    owners

let check_gmp23 trace =
  let installs = T.installs trace in
  let by_ver = Hashtbl.create 32 in
  let agreement =
    List.concat_map
      (fun ((e : Trace.event), ver, members) ->
        match Hashtbl.find_opt by_ver ver with
        | None ->
          Hashtbl.add by_ver ver (e.owner, members);
          []
        | Some (first_owner, first_members) ->
          if
            List.length members = List.length first_members
            && List.for_all2 Pid.equal members first_members
          then []
          else
            [ v "GMP-2/3" "version %d: %a has {%a} but %a has {%a}" ver Pid.pp
                e.owner
                Fmt.(list ~sep:(any ",") Pid.pp)
                members Pid.pp first_owner
                Fmt.(list ~sep:(any ",") Pid.pp)
                first_members ])
      installs
  in
  let continuity =
    List.concat_map
      (fun pid ->
        let versions = List.map fst (T.installs_of trace pid) in
        match versions with
        | [] -> []
        | first :: rest ->
          let _, violations =
            List.fold_left
              (fun (prev, violations) ver ->
                if ver = prev + 1 then (ver, violations)
                else
                  ( ver,
                    v "GMP-3" "%a skipped from version %d to %d" Pid.pp pid
                      prev ver
                    :: violations ))
              (first, []) rest
          in
          List.rev violations)
      (T.owners trace)
  in
  agreement @ continuity

let check_gmp4 trace =
  List.concat_map
    (fun pid ->
      let views = List.map snd (T.installs_of trace pid) in
      let check (removed, prev_members, violations) members =
        let removed_now =
          List.filter
            (fun q -> not (List.exists (Pid.equal q) members))
            prev_members
        in
        let removed =
          List.fold_left (fun acc q -> Pid.Set.add q acc) removed removed_now
        in
        let reinstated =
          List.filter (fun q -> Pid.Set.mem q removed) members
        in
        let violations =
          List.map
            (fun q ->
              v "GMP-4" "%a re-instated %a to its local view" Pid.pp pid Pid.pp
                q)
            reinstated
          @ violations
        in
        (removed, members, violations)
      in
      match views with
      | [] -> []
      | first :: rest ->
        let _, _, violations =
          List.fold_left check (Pid.Set.empty, first, []) rest
        in
        List.rev violations)
    (T.owners trace)

let check_internal trace =
  List.map
    (fun (owner, detail) -> v "internal" "%a: %s" Pid.pp owner detail)
    (T.violations trace)

let check_safety trace ~initial =
  check_gmp0 trace ~initial @ check_gmp1 trace @ check_gmp23 trace
  @ check_gmp4 trace @ check_internal trace
