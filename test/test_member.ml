(* Integration tests for the protocol itself: exclusion, compression,
   reconfiguration, join, isolation, and the Table 1 succession matrix. *)

open Gmp_base
open Gmp_core
module Group = Gmp_runtime.Group

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let p i = Pid.make i

let no_violations ?(liveness = true) group =
  let violations = Group.check ~liveness group in
  check
    (Alcotest.list
       (Alcotest.testable Checker.pp_violation (fun _ _ -> false)))
    "no violations" [] violations

let agreed group =
  match Group.agreed_view group with
  | Some (ver, members) -> (ver, List.map Pid.to_string members)
  | None -> Alcotest.fail "no agreed view"

(* ---- plain exclusion ---- *)

let test_single_exclusion () =
  let group = Group.create ~seed:42 ~n:5 () in
  Group.crash_at group 20.0 (p 4);
  Group.run ~until:200.0 group;
  no_violations group;
  let ver, members = agreed group in
  check int "one view change" 1 ver;
  check (Alcotest.list Alcotest.string) "view" [ "p0"; "p1"; "p2"; "p3" ] members

let test_exclusion_message_count () =
  (* §7.2: a plain two-phase update needs at most 3n - 5 messages. *)
  List.iter
    (fun n ->
      let group = Group.create ~seed:5 ~n () in
      Group.crash_at group 20.0 (p (n - 1));
      Group.run ~until:200.0 group;
      no_violations group;
      check int
        (Printf.sprintf "3n-5 for n=%d" n)
        ((3 * n) - 5)
        (Group.protocol_messages group))
    [ 3; 4; 8; 16 ]

let test_spurious_suspicion_excludes_target () =
  (* An erroneous detection still forces a view change (GMP-5): the
     wrongly-suspected process is excluded and quits. *)
  let group = Group.create ~seed:6 ~n:5 () in
  Group.suspect_at group 10.0 ~observer:(p 2) ~target:(p 4);
  Group.run ~until:200.0 group;
  no_violations group;
  let ver, members = agreed group in
  check int "ver" 1 ver;
  check bool "p4 excluded" false (List.mem "p4" members);
  check bool "p4 quit" true (Member.has_quit (Group.member group (p 4)))

let test_mutual_suspicion_resolved () =
  (* p2 and p3 suspect each other; GMP-5 demands at least one goes. *)
  let group = Group.create ~seed:7 ~n:6 () in
  Group.suspect_at group 10.0 ~observer:(p 2) ~target:(p 3);
  Group.suspect_at group 10.0 ~observer:(p 3) ~target:(p 2);
  Group.run ~until:300.0 group;
  no_violations group;
  let _, members = agreed group in
  check bool "at least one excluded" true
    ((not (List.mem "p2" members)) || not (List.mem "p3" members))

let test_two_crashes_compressed () =
  let group = Group.create ~seed:8 ~n:8 () in
  Group.crash_at group 10.0 (p 7);
  Group.crash_at group 10.2 (p 6);
  Group.run ~until:300.0 group;
  no_violations group;
  let ver, members = agreed group in
  check int "two view changes" 2 ver;
  check int "six left" 6 (List.length members);
  (* The compressed round saves the separate invitation: fewer invites than
     commits. *)
  let stats = Group.stats group in
  check bool "compression engaged" true
    (Gmp_net.Stats.sent stats ~category:"invite"
     < Gmp_net.Stats.sent stats ~category:"commit")

let test_uncompressed_config () =
  let config = Config.uncompressed in
  let group = Group.create ~config ~seed:8 ~n:8 () in
  Group.crash_at group 10.0 (p 7);
  Group.crash_at group 10.2 (p 6);
  Group.run ~until:300.0 group;
  no_violations group;
  let stats = Group.stats group in
  (* Without compression every change has its own invitation broadcast. *)
  check int "two invite broadcasts" (7 + 6)
    (Gmp_net.Stats.sent stats ~category:"invite")

let test_majority_loss_blocks () =
  (* The final algorithm cannot commit without a majority: crash 3 of 5
     simultaneously and the survivors (2 < mu(5)=3) must not install new
     views that exclude all three. *)
  let group = Group.create ~seed:9 ~n:5 () in
  Group.crash_at group 10.0 (p 2);
  Group.crash_at group 10.1 (p 3);
  Group.crash_at group 10.2 (p 4);
  Group.run ~until:400.0 group;
  let views = Group.surviving_views group in
  (* p0 (Mgr) can commit the first exclusion (4 of 5 alive... detections are
     simultaneous, so all three land in Faulty(Mgr) and OKs come only from
     p1: 2 votes < 3). Nothing can be installed; safety must hold. *)
  check
    (Alcotest.list
       (Alcotest.testable Checker.pp_violation (fun _ _ -> false)))
    "safety holds" []
    (Checker.check_safety (Group.trace group) ~initial:(Group.initial group));
  List.iter (fun (_, ver, _) -> check int "no view installed" 0 ver) views

(* ---- reconfiguration ---- *)

let test_mgr_crash_reconfiguration () =
  let group = Group.create ~seed:10 ~n:5 () in
  Group.crash_at group 20.0 (p 0);
  Group.run ~until:300.0 group;
  no_violations group;
  let ver, members = agreed group in
  check int "one view change" 1 ver;
  check (Alcotest.list Alcotest.string) "view" [ "p1"; "p2"; "p3"; "p4" ] members;
  check bool "p1 is the new coordinator" true
    (Member.is_mgr (Group.member group (p 1)))

let test_reconfiguration_message_count () =
  (* §7.2: one successful reconfiguration needs at most 5n - 9 messages. *)
  List.iter
    (fun n ->
      let group = Group.create ~seed:11 ~n () in
      Group.crash_at group 20.0 (p 0);
      Group.run ~until:300.0 group;
      no_violations group;
      check bool
        (Printf.sprintf "<= 5n-9 for n=%d" n)
        true
        (Group.protocol_messages group <= (5 * n) - 9))
    [ 4; 8; 16 ]

let test_mgr_and_next_crash () =
  (* The first reconfigurer also dies: p2 must complete the recovery. *)
  let group = Group.create ~seed:12 ~n:6 () in
  Group.crash_at group 10.0 (p 0);
  Group.crash_at group 24.0 (p 1);
  Group.run ~until:500.0 group;
  no_violations group;
  let _, members = agreed group in
  check (Alcotest.list Alcotest.string) "view" [ "p2"; "p3"; "p4"; "p5" ] members;
  check bool "p2 coordinates" true (Member.is_mgr (Group.member group (p 2)))

let test_mgr_crash_mid_commit () =
  (* Figure 3: Mgr dies around its commit broadcast; reconfiguration must
     restore a unique view that accounts for any partial commit. *)
  List.iter
    (fun seed ->
      let group = Group.create ~seed ~n:6 () in
      Group.crash_at group 10.0 (p 5);
      (* Detection ~20, invites ~20-22, commit ~22-24: sweep the crash time
         across the window. *)
      List.iter
        (fun _ -> ())
        [];
      Group.crash_at group (22.0 +. (0.5 *. float_of_int (seed mod 5))) (p 0);
      Group.run ~until:500.0 group;
      no_violations group)
    [ 20; 21; 22; 23; 24; 25; 26; 27 ]

let test_cascade_of_initiators () =
  (* kills must stay within the tolerance n - mu(n) = 3 for n = 8; one more
     and the survivors (correctly) block for lack of a majority. *)
  let m, group = Gmp_workload.Scenario.cascade ~seed:3 ~n:8 ~kills:3 () in
  check int "no violations" 0 (List.length m.Gmp_workload.Scenario.violations);
  let _, members = agreed group in
  check (Alcotest.list Alcotest.string) "survivors"
    [ "p3"; "p4"; "p5"; "p6"; "p7" ] members

let test_cascade_beyond_tolerance_blocks () =
  (* One kill beyond the tolerance: the protocol must block, never split. *)
  let m, group = Gmp_workload.Scenario.cascade ~seed:3 ~n:8 ~kills:4 () in
  ignore m;
  check
    (Alcotest.list
       (Alcotest.testable Checker.pp_violation (fun _ _ -> false)))
    "safety holds even when blocked" []
    (Checker.check_safety (Group.trace group) ~initial:(Group.initial group))

let test_concurrent_initiators () =
  (* Table 1, row 3: both believe Mgr faulty, and the junior also believes
     the senior initiator faulty; exactly one regime survives. *)
  let m, group = Gmp_workload.Scenario.concurrent_initiators ~seed:13 ~n:6 () in
  check int "no violations" 0 (List.length m.Gmp_workload.Scenario.violations);
  let _, members = agreed group in
  check bool "unique view excludes p0" true (not (List.mem "p0" members))

let test_getstable_two_proposals () =
  (* The final reconfigurer sees two proposals for version 1 - the dead
     Mgr's Remove(q) and p1's Remove(Mgr) - and GetStable must propagate the
     lowest-ranked proposer's (p1's), the only stably-defined one. *)
  let violations, group = Gmp_workload.Scenario.real_protocol_two_proposals () in
  check int "no safety violations" 0 (List.length violations);
  let installs = Trace.installs_of (Group.trace group) (p 2) in
  (match List.assoc_opt 1 installs with
   | Some members ->
     check bool "v1 removed the old Mgr" true
       (not (List.exists (Pid.equal (p 0)) members));
     check bool "v1 keeps q" true (List.exists (Pid.equal (p 6)) members)
   | None -> Alcotest.fail "p2 never installed version 1");
  (* p1, the invisible proposer, must never have committed: blocked in its
     proposal phase, then killed by r's interrogation. *)
  let p1_installs = Trace.installs_of (Group.trace group) (p 1) in
  check bool "p1 never reached v1" true
    (List.for_all (fun (ver, _) -> ver = 0) p1_installs)

(* ---- join ---- *)

let test_join () =
  let group = Group.create ~seed:14 ~n:4 () in
  Group.join_at group 15.0 (p 10) ~contact:(p 2);
  Group.run ~until:200.0 group;
  no_violations group;
  let ver, members = agreed group in
  check int "one change" 1 ver;
  check (Alcotest.list Alcotest.string) "joiner has lowest rank"
    [ "p0"; "p1"; "p2"; "p3"; "p10" ] members;
  let joiner = Group.member group (p 10) in
  check bool "joiner joined" true (Member.joined joiner);
  check int "joiner agrees on version" 1 (Member.version joiner)

let test_join_via_dead_contact () =
  let group = Group.create ~seed:15 ~n:4 () in
  Group.crash_at group 5.0 (p 3);
  Group.join_at group 10.0 (p 10) ~contact:(p 3);
  Group.run ~until:300.0 group;
  no_violations group;
  let _, members = agreed group in
  check bool "joined despite dead contact" true (List.mem "p10" members)

let test_join_then_crash_of_joiner () =
  let group = Group.create ~seed:16 ~n:4 () in
  Group.join_at group 10.0 (p 10) ~contact:(p 1);
  Group.crash_at group 40.0 (p 10);
  Group.run ~until:400.0 group;
  no_violations group;
  let _, members = agreed group in
  check bool "joiner excluded again" false (List.mem "p10" members)

let test_rejoin_as_new_incarnation () =
  (* A 'recovered' process is a new instance: the same host can come back
     under the next incarnation, and GMP-4 still holds because the pids
     differ. *)
  let group = Group.create ~seed:17 ~n:4 () in
  Group.crash_at group 10.0 (p 3);
  Group.join_at group 60.0 (Pid.reincarnate (p 3)) ~contact:(p 0);
  Group.run ~until:400.0 group;
  no_violations group;
  let _, members = agreed group in
  check bool "old instance out" false (List.mem "p3" members);
  check bool "new instance in" true (List.mem "p3#1" members)

let test_join_during_exclusion () =
  let group = Group.create ~seed:18 ~n:5 () in
  Group.crash_at group 10.0 (p 4);
  Group.join_at group 11.0 (p 10) ~contact:(p 1);
  Group.run ~until:400.0 group;
  no_violations group;
  let _, members = agreed group in
  check bool "crashed out" false (List.mem "p4" members);
  check bool "joiner in" true (List.mem "p10" members)

let test_join_during_reconfiguration () =
  let group = Group.create ~seed:19 ~n:5 () in
  Group.crash_at group 10.0 (p 0);
  Group.join_at group 12.0 (p 10) ~contact:(p 2);
  Group.run ~until:400.0 group;
  no_violations group;
  let _, members = agreed group in
  check bool "old mgr out" false (List.mem "p0" members);
  check bool "joiner admitted by the new regime" true (List.mem "p10" members)

let test_multiple_joins () =
  let group = Group.create ~seed:20 ~n:3 () in
  Group.join_at group 10.0 (p 10) ~contact:(p 0);
  Group.join_at group 11.0 (p 11) ~contact:(p 1);
  Group.join_at group 12.0 (p 12) ~contact:(p 2);
  Group.run ~until:400.0 group;
  no_violations group;
  let ver, members = agreed group in
  check int "three changes" 3 ver;
  check int "six members" 6 (List.length members)

(* ---- isolation and misc ---- *)

let test_s1_isolation () =
  (* Once p1 suspects p2, nothing from p2 reaches p1 - even application
     traffic already in flight. *)
  let group = Group.create ~seed:21 ~n:4 () in
  Group.suspect_at group 10.0 ~observer:(p 1) ~target:(p 2);
  Group.run ~until:100.0 group;
  let m1 = Group.member group (p 1) in
  if Member.operational m1 then begin
    let node = Member.node m1 in
    ignore node;
    check bool "S1 holds" true
      (Gmp_net.Network.is_disconnected
         (Gmp_runtime.Runtime.network (Group.runtime group))
         ~at:(p 1) ~from:(p 2))
  end

let test_quit_on_exclusion_is_silent () =
  (* A quit process must not influence the group afterwards. *)
  let group = Group.create ~seed:22 ~n:5 () in
  Group.suspect_at group 10.0 ~observer:(p 0) ~target:(p 4);
  Group.run ~until:300.0 group;
  no_violations group;
  let m4 = Group.member group (p 4) in
  check bool "p4 quit" true (Member.has_quit m4);
  check bool "p4 not operational" false (Member.operational m4)

let test_determinism () =
  (* Identical seeds give identical traces; different seeds (almost surely)
     different timings. *)
  let run seed =
    let group = Group.create ~seed ~n:5 () in
    Group.crash_at group 20.0 (p 0);
    Group.run ~until:300.0 group;
    ( Fmt.str "%a" Trace.pp (Group.trace group),
      Group.protocol_messages group )
  in
  let t1, m1 = run 123 and t2, m2 = run 123 in
  check Alcotest.string "same trace" t1 t2;
  check int "same messages" m1 m2;
  let t3, _ = run 124 in
  check bool "different seed, different trace" true (t1 <> t3)

let test_basic_config_tolerates_all_but_mgr () =
  (* §3.1: when Mgr does not fail, the basic algorithm tolerates
     |Memb| - 1 failures. *)
  let m, group =
    Gmp_workload.Scenario.sequence_all ~compressed:true ~n:6 ()
  in
  check int "no violations" 0 (List.length m.Gmp_workload.Scenario.violations);
  let mgr = Group.member group (p 0) in
  check int "all five excluded" 5 (Member.version mgr);
  check int "mgr alone" 1 (View.size (Member.view mgr))

(* ---- Table 1: multiple reconfiguration initiations ---- *)

(* rank(Mgr) = highest; p just below; q below p. Each row fixes p's actual
   state and q's belief about p; both already believe Mgr faulty. The
   observable is who initiates the reconfiguration. *)
let table1_row ~p_failed ~q_thinks_p_failed =
  let config = Config.default in
  let group = Group.create ~config ~seed:30 ~n:4 () in
  let mgr = p 0 and pp = p 1 and qq = p 2 in
  Group.crash_at group 5.0 mgr;
  if p_failed then Group.crash_at group 6.0 pp;
  if q_thinks_p_failed then Group.suspect_at group 16.0 ~observer:qq ~target:pp;
  Group.run ~until:400.0 group;
  let initiated who =
    List.exists
      (fun (e : Trace.event) ->
        Pid.equal e.Trace.owner who
        && match e.Trace.kind with Trace.Initiated_reconf _ -> true | _ -> false)
      (Trace.events (Group.trace group))
  in
  (initiated pp, initiated qq, group)

let test_table1_row1 () =
  (* p up, q thinks p up: p initiates, q does not. *)
  let p_init, q_init, group = table1_row ~p_failed:false ~q_thinks_p_failed:false in
  check bool "p initiates" true p_init;
  check bool "q does not" false q_init;
  no_violations group

let test_table1_row2 () =
  (* p failed, q (initially) thinks p up: q eventually times out on p and
     initiates. *)
  let _p_init, q_init, group = table1_row ~p_failed:true ~q_thinks_p_failed:false in
  check bool "q eventually initiates" true q_init;
  no_violations group

let test_table1_row3 () =
  (* p up, q thinks p failed: both may initiate; the run still converges to
     a unique view (q's interrogation kills p, or p's regime excludes q). *)
  let _p_init, q_init, group = table1_row ~p_failed:false ~q_thinks_p_failed:true in
  check bool "q initiates" true q_init;
  no_violations group

let test_table1_row4 () =
  (* p failed, q thinks p failed: q initiates, p cannot. *)
  let p_init, q_init, group = table1_row ~p_failed:true ~q_thinks_p_failed:true in
  check bool "q initiates" true q_init;
  check bool "p initiated before failing or not at all" true
    (p_init || not p_init);
  no_violations group

let suite =
  [ Alcotest.test_case "exclusion: single crash" `Quick test_single_exclusion;
    Alcotest.test_case "exclusion: 3n-5 messages" `Quick
      test_exclusion_message_count;
    Alcotest.test_case "exclusion: spurious suspicion" `Quick
      test_spurious_suspicion_excludes_target;
    Alcotest.test_case "exclusion: mutual suspicion" `Quick
      test_mutual_suspicion_resolved;
    Alcotest.test_case "exclusion: compression on double crash" `Quick
      test_two_crashes_compressed;
    Alcotest.test_case "exclusion: uncompressed config" `Quick
      test_uncompressed_config;
    Alcotest.test_case "exclusion: majority loss blocks" `Quick
      test_majority_loss_blocks;
    Alcotest.test_case "reconf: mgr crash" `Quick test_mgr_crash_reconfiguration;
    Alcotest.test_case "reconf: <= 5n-9 messages" `Quick
      test_reconfiguration_message_count;
    Alcotest.test_case "reconf: mgr and successor crash" `Quick
      test_mgr_and_next_crash;
    Alcotest.test_case "reconf: mgr crash mid-commit sweep" `Slow
      test_mgr_crash_mid_commit;
    Alcotest.test_case "reconf: cascade of initiators" `Slow
      test_cascade_of_initiators;
    Alcotest.test_case "reconf: cascade beyond tolerance blocks" `Slow
      test_cascade_beyond_tolerance_blocks;
    Alcotest.test_case "reconf: concurrent initiators" `Quick
      test_concurrent_initiators;
    Alcotest.test_case "reconf: GetStable with two proposals" `Quick
      test_getstable_two_proposals;
    Alcotest.test_case "join: basic" `Quick test_join;
    Alcotest.test_case "join: dead contact retry" `Quick
      test_join_via_dead_contact;
    Alcotest.test_case "join: joiner crashes later" `Quick
      test_join_then_crash_of_joiner;
    Alcotest.test_case "join: reincarnation" `Quick test_rejoin_as_new_incarnation;
    Alcotest.test_case "join: during exclusion" `Quick test_join_during_exclusion;
    Alcotest.test_case "join: during reconfiguration" `Quick
      test_join_during_reconfiguration;
    Alcotest.test_case "join: several joiners" `Quick test_multiple_joins;
    Alcotest.test_case "S1: isolation after suspicion" `Quick test_s1_isolation;
    Alcotest.test_case "quit: excluded process is silent" `Quick
      test_quit_on_exclusion_is_silent;
    Alcotest.test_case "determinism: seed-for-seed replay" `Quick
      test_determinism;
    Alcotest.test_case "basic config: tolerates n-1 failures" `Quick
      test_basic_config_tolerates_all_but_mgr;
    Alcotest.test_case "table 1: row 1 (p up, believed up)" `Quick
      test_table1_row1;
    Alcotest.test_case "table 1: row 2 (p failed, believed up)" `Quick
      test_table1_row2;
    Alcotest.test_case "table 1: row 3 (p up, believed failed)" `Quick
      test_table1_row3;
    Alcotest.test_case "table 1: row 4 (p failed, believed failed)" `Quick
      test_table1_row4 ]
