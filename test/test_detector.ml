(* Unit tests for the heartbeat failure detector (F1) and the scripted
   oracle. *)

open Gmp_base
open Gmp_detector

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let p i = Pid.make i

(* A self-contained two-party setup: the engine carries beats by scheduling
   calls directly (no network needed for unit-testing the detector). *)
let make ~interval ~timeout ~peers =
  let engine = Gmp_sim.Engine.create () in
  let beats = ref [] in
  let suspects = ref [] in
  let now () = Gmp_sim.Engine.now engine in
  let set_timer ~delay f =
    let h = Gmp_sim.Engine.schedule engine ~delay f in
    { Gmp_platform.Platform.cancel =
        (fun () -> Gmp_sim.Engine.cancel engine h) }
  in
  let d =
    Heartbeat.create ~now ~set_timer ~interval ~timeout
      ~send_beats:(fun qs -> beats := List.rev_append qs !beats)
      ~peers:(fun () -> peers ())
      ~suspect:(fun q -> suspects := q :: !suspects)
      ()
  in
  (engine, d, beats, suspects)

let test_beats_sent () =
  let engine, d, beats, _ =
    make ~interval:1.0 ~timeout:5.0 ~peers:(fun () -> [ p 1; p 2 ])
  in
  Heartbeat.start d;
  Gmp_sim.Engine.run ~until:3.5 engine;
  (* Ticks at 1, 2, 3: two peers each. *)
  check int "beats" 6 (List.length !beats)

let test_silent_peer_suspected_once () =
  let engine, d, _, suspects =
    make ~interval:1.0 ~timeout:3.0 ~peers:(fun () -> [ p 1 ])
  in
  Heartbeat.start d;
  Gmp_sim.Engine.run ~until:20.0 engine;
  check (Alcotest.list int) "suspected exactly once" [ 1 ]
    (List.map Pid.id !suspects)

let test_live_peer_not_suspected () =
  let engine, d, _, suspects =
    make ~interval:1.0 ~timeout:3.0 ~peers:(fun () -> [ p 1 ])
  in
  Heartbeat.start d;
  (* Feed beats every 2 time units, well within the timeout. *)
  let rec feed t =
    if t < 20.0 then
      ignore
        (Gmp_sim.Engine.schedule_at engine ~time:t (fun () ->
             Heartbeat.beat_received d ~from:(p 1);
             feed (t +. 2.0))
          : Gmp_sim.Engine.handle)
  in
  feed 0.5;
  Gmp_sim.Engine.run ~until:20.0 engine;
  check int "never suspected" 0 (List.length !suspects)

let test_suspicion_after_silence () =
  let engine, d, _, suspects =
    make ~interval:1.0 ~timeout:3.0 ~peers:(fun () -> [ p 1 ])
  in
  Heartbeat.start d;
  (* Beats until t = 5, then silence: suspicion must land after ~8. *)
  List.iter
    (fun t ->
      ignore
        (Gmp_sim.Engine.schedule_at engine ~time:t (fun () ->
             Heartbeat.beat_received d ~from:(p 1))
          : Gmp_sim.Engine.handle))
    [ 1.0; 3.0; 5.0 ];
  Gmp_sim.Engine.run ~until:7.9 engine;
  check int "not yet" 0 (List.length !suspects);
  Gmp_sim.Engine.run ~until:10.0 engine;
  check int "suspected after timeout" 1 (List.length !suspects)

let test_grace_period_for_new_peer () =
  let current = ref [ p 1 ] in
  let engine, d, _, suspects =
    make ~interval:1.0 ~timeout:3.0 ~peers:(fun () -> !current)
  in
  Heartbeat.start d;
  (* p1 beats fine; p2 appears at t = 10 and beats from 11. It must get a
     full timeout of grace, not an instant suspicion. *)
  let rec feed_p1 t =
    if t < 20.0 then
      ignore
        (Gmp_sim.Engine.schedule_at engine ~time:t (fun () ->
             Heartbeat.beat_received d ~from:(p 1);
             feed_p1 (t +. 1.5))
          : Gmp_sim.Engine.handle)
  in
  feed_p1 0.5;
  ignore
    (Gmp_sim.Engine.schedule_at engine ~time:10.0 (fun () ->
         current := [ p 1; p 2 ])
      : Gmp_sim.Engine.handle);
  let rec feed_p2 t =
    if t < 20.0 then
      ignore
        (Gmp_sim.Engine.schedule_at engine ~time:t (fun () ->
             Heartbeat.beat_received d ~from:(p 2);
             feed_p2 (t +. 1.5))
          : Gmp_sim.Engine.handle)
  in
  feed_p2 11.0;
  Gmp_sim.Engine.run ~until:20.0 engine;
  check int "nobody suspected" 0 (List.length !suspects)

let test_forget_allows_fresh_monitoring () =
  let engine, d, _, suspects =
    make ~interval:1.0 ~timeout:3.0 ~peers:(fun () -> [ p 1 ])
  in
  Heartbeat.start d;
  Gmp_sim.Engine.run ~until:10.0 engine;
  check int "suspected" 1 (List.length !suspects);
  Heartbeat.forget d (p 1);
  (* After forgetting, the peer gets grace again and can be re-suspected
     (used for reincarnations). *)
  Gmp_sim.Engine.run ~until:20.0 engine;
  check int "suspected again after forget" 2 (List.length !suspects)

let test_beat_from_non_peer_ignored () =
  (* A beat from a process outside the peer set (departed, or never a
     member) must not create tracking state: otherwise a dead peer's
     last in-flight beat resurrects its entry after [forget]. *)
  let engine, d, _, suspects =
    make ~interval:1.0 ~timeout:3.0 ~peers:(fun () -> [ p 1 ])
  in
  Heartbeat.start d;
  Heartbeat.beat_received d ~from:(p 5);
  check int "stranger not tracked" 0 (Heartbeat.tracked d);
  (* A late beat from a forgotten (departed) peer is equally ignored. *)
  Gmp_sim.Engine.run ~until:10.0 engine;
  check int "p1 suspected" 1 (List.length !suspects);
  Heartbeat.forget d (p 1);
  let tracked_before = Heartbeat.tracked d in
  Heartbeat.beat_received d ~from:(p 5);
  check int "late stranger beat still ignored" tracked_before
    (Heartbeat.tracked d)

let test_departed_peer_pruned () =
  (* Peers that leave the view must drop out of [last_heard] at the next
     tick, not linger forever. *)
  let current = ref [ p 1; p 2 ] in
  let engine, d, _, _ =
    make ~interval:1.0 ~timeout:3.0 ~peers:(fun () -> !current)
  in
  Heartbeat.start d;
  Heartbeat.beat_received d ~from:(p 1);
  Heartbeat.beat_received d ~from:(p 2);
  check int "both tracked" 2 (Heartbeat.tracked d);
  current := [ p 1 ];
  Gmp_sim.Engine.run ~until:2.5 engine;
  check int "departed peer pruned at tick" 1 (Heartbeat.tracked d)

let test_stop () =
  let engine, d, beats, _ =
    make ~interval:1.0 ~timeout:3.0 ~peers:(fun () -> [ p 1 ])
  in
  Heartbeat.start d;
  Gmp_sim.Engine.run ~until:2.5 engine;
  let sent = List.length !beats in
  Heartbeat.stop d;
  Gmp_sim.Engine.run ~until:10.0 engine;
  check int "no beats after stop" sent (List.length !beats);
  check bool "not running" false (Heartbeat.is_running d)

let test_invalid_config () =
  let engine = Gmp_sim.Engine.create () in
  check bool "timeout <= interval rejected" true
    (try
       ignore
         (Heartbeat.create ~now:(fun () -> Gmp_sim.Engine.now engine)
            ~set_timer:(fun ~delay f ->
              let h = Gmp_sim.Engine.schedule engine ~delay f in
              { Gmp_platform.Platform.cancel =
                  (fun () -> Gmp_sim.Engine.cancel engine h) })
            ~interval:2.0 ~timeout:1.0
            ~send_beats:(fun _ -> ())
            ~peers:(fun () -> [])
            ~suspect:(fun _ -> ())
            ());
       false
     with Invalid_argument _ -> true)

let test_scripted () =
  let engine = Gmp_sim.Engine.create () in
  let fired = ref [] in
  let schedule_at ~time f =
    ignore
      (Gmp_sim.Engine.schedule_at engine ~time f : Gmp_sim.Engine.handle)
  in
  Scripted.install ~schedule_at
    [ Scripted.entry ~at:5.0 ~observer:(p 1) ~suspect:(p 2);
      Scripted.entry ~at:3.0 ~observer:(p 0) ~suspect:(p 1) ]
    ~fire:(fun ~observer ~suspect ->
      fired := (Pid.id observer, Pid.id suspect, Gmp_sim.Engine.now engine) :: !fired);
  Gmp_sim.Engine.run engine;
  check int "both fired" 2 (List.length !fired);
  check bool "in time order" true
    (match List.rev !fired with
     | [ (0, 1, t1); (1, 2, t2) ] -> t1 = 3.0 && t2 = 5.0
     | _ -> false)

let test_crash_script () =
  let engine = Gmp_sim.Engine.create () in
  let crashed = ref [] in
  let schedule_at ~time f =
    ignore
      (Gmp_sim.Engine.schedule_at engine ~time f : Gmp_sim.Engine.handle)
  in
  Scripted.crash_script ~schedule_at
    [ (2.0, p 3); (1.0, p 1) ]
    ~crash:(fun pid -> crashed := Pid.id pid :: !crashed);
  Gmp_sim.Engine.run engine;
  check (Alcotest.list int) "crash order" [ 1; 3 ] (List.rev !crashed)

let suite =
  [ Alcotest.test_case "heartbeat: beats sent per interval" `Quick
      test_beats_sent;
    Alcotest.test_case "heartbeat: silent peer suspected once" `Quick
      test_silent_peer_suspected_once;
    Alcotest.test_case "heartbeat: live peer not suspected" `Quick
      test_live_peer_not_suspected;
    Alcotest.test_case "heartbeat: suspicion after silence" `Quick
      test_suspicion_after_silence;
    Alcotest.test_case "heartbeat: grace for new peers" `Quick
      test_grace_period_for_new_peer;
    Alcotest.test_case "heartbeat: forget re-arms" `Quick
      test_forget_allows_fresh_monitoring;
    Alcotest.test_case "heartbeat: non-peer beats ignored" `Quick
      test_beat_from_non_peer_ignored;
    Alcotest.test_case "heartbeat: departed peers pruned" `Quick
      test_departed_peer_pruned;
    Alcotest.test_case "heartbeat: stop" `Quick test_stop;
    Alcotest.test_case "heartbeat: invalid config" `Quick test_invalid_config;
    Alcotest.test_case "scripted: suspicion entries" `Quick test_scripted;
    Alcotest.test_case "scripted: crash script" `Quick test_crash_script ]
