(* Determinism and conservation regressions.

   The simulator's RNG is our own splitmix64 and the engine's tie-break is
   by insertion sequence, so the same scenario with the same seed must be
   bit-identical run to run: same trace events, same per-category stats.
   The perf work (SoA heap, interned categories, dense channel tables) must
   never perturb that, so this pins it.

   Separately, the network must conserve messages: everything sent is
   eventually delivered, dropped (crashed destination / severed direction)
   or parked behind a partition — and heal flushes parking entirely. *)

open Gmp_base
open Gmp_net

let run_once () =
  let m, group = Gmp_workload.Scenario.scale_single_crash ~n:16 () in
  let trace = Gmp_runtime.Group.trace group in
  let stats = Gmp_runtime.Group.stats group in
  (m, Gmp_core.Trace.events trace, Stats.snapshot stats,
   Stats.total_sent stats, Stats.total_delivered stats,
   Stats.total_dropped stats)

let test_repeat_identical () =
  let m1, ev1, snap1, s1, d1, r1 = run_once () in
  let m2, ev2, snap2, s2, d2, r2 = run_once () in
  Alcotest.(check int) "violations (run 1)" 0 (List.length m1.violations);
  Alcotest.(check bool) "trace events identical" true (ev1 = ev2);
  Alcotest.(check int) "same trace length" (List.length ev1)
    (List.length ev2);
  Alcotest.(check bool) "stats snapshots identical" true (snap1 = snap2);
  Alcotest.(check int) "total sent" s1 s2;
  Alcotest.(check int) "total delivered" d1 d2;
  Alcotest.(check int) "total dropped" r1 r2;
  Alcotest.(check int) "views installed" m1.views_installed m2.views_installed

(* Conservation: drive a raw network through a partition with a crashed
   destination in the mix. Mid-partition the ledger must balance only with
   the parked messages counted in; after heal and quiescence, parking is
   empty and sent = delivered + dropped exactly. *)
let test_conservation_over_heal () =
  let engine = Gmp_sim.Engine.create () in
  let rng = Gmp_sim.Rng.create 42 in
  let net =
    Network.create ~engine ~rng ~delay:(Delay.uniform ~lo:0.1 ~hi:2.0) ()
  in
  Network.set_handler net (fun ~dst:_ ~src:_ _ -> ());
  let cat = Stats.intern "test" in
  let pids = Array.init 6 Pid.make in
  let send src dst = Network.send net ~src:pids.(src) ~dst:pids.(dst) ~category:cat () in
  let balance ~parked_expected =
    let stats = Network.stats net in
    Alcotest.(check int) "sent = delivered + dropped + parked"
      (Stats.total_sent stats)
      (Stats.total_delivered stats + Stats.total_dropped stats
      + Network.parked_count net);
    Alcotest.(check bool) "parked count sign" true
      (if parked_expected then Network.parked_count net > 0
       else Network.parked_count net = 0)
  in
  Network.crash net pids.(5);
  Network.partition net [ [ pids.(0); pids.(1) ]; [ pids.(2); pids.(3) ] ];
  for i = 0 to 4 do
    for j = 0 to 5 do
      if i <> j then send i j (* same-side, cross-side and to-crashed mix *)
    done
  done;
  (* Drain the in-flight same-side deliveries first: conservation holds at
     quiescence (a message still on the wire is in none of the buckets).
     Parked traffic stays put across the run. *)
  Gmp_sim.Engine.run engine;
  balance ~parked_expected:true;
  Network.heal net;
  Gmp_sim.Engine.run engine;
  balance ~parked_expected:false;
  let stats = Network.stats net in
  Alcotest.(check int) "after heal: sent = delivered + dropped"
    (Stats.total_sent stats)
    (Stats.total_delivered stats + Stats.total_dropped stats)

let suite =
  [ Alcotest.test_case "scale_single_crash twice: identical trace and stats"
      `Quick test_repeat_identical;
    Alcotest.test_case "network conserves messages across partition/heal"
      `Quick test_conservation_over_heal ]
