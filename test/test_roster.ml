(* Tests for the §8 hierarchical client registry. *)

open Gmp_base
open Gmp_core
module Group = Gmp_runtime.Group

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let p i = Pid.make i
let client i = Pid.make (1000 + i)

let setup ?(seed = 5) ~n () =
  let group = Group.create ~seed ~n () in
  let rosters =
    List.map (fun m -> (Member.pid m, Roster.attach m)) (Group.members group)
  in
  (group, rosters)

let roster_of rosters pid = List.assoc pid rosters

let live_rosters group rosters =
  List.filter (fun (pid, _) -> Member.operational (Group.member group pid)) rosters

let all_agree group rosters =
  match live_rosters group rosters with
  | [] -> true
  | (_, first) :: rest ->
    List.for_all
      (fun (_, r) ->
        Pid.Set.equal (Roster.clients r) (Roster.clients first)
        && Pid.Set.equal (Roster.expelled r) (Roster.expelled first))
      rest

let test_enroll_replicates () =
  let group, rosters = setup ~n:4 () in
  Group.at group 10.0 (fun () -> Roster.enroll (roster_of rosters (p 2)) (client 1));
  Group.at group 15.0 (fun () -> Roster.enroll (roster_of rosters (p 3)) (client 2));
  Group.run ~until:100.0 group;
  check bool "all servers agree" true (all_agree group rosters);
  let r0 = roster_of rosters (p 0) in
  check int "two clients" 2 (Pid.Set.cardinal (Roster.clients r0));
  check bool "client 1 present" true (Roster.is_client r0 (client 1))

let test_expel_replicates () =
  let group, rosters = setup ~n:4 () in
  Group.at group 10.0 (fun () -> Roster.enroll (roster_of rosters (p 1)) (client 1));
  Group.at group 30.0 (fun () -> Roster.expel (roster_of rosters (p 2)) (client 1));
  Group.run ~until:100.0 group;
  check bool "all servers agree" true (all_agree group rosters);
  let r0 = roster_of rosters (p 0) in
  check int "no clients" 0 (Pid.Set.cardinal (Roster.clients r0));
  check bool "remembered as expelled" true
    (Pid.Set.mem (client 1) (Roster.expelled r0))

let test_expelled_cannot_return () =
  let group, rosters = setup ~n:4 () in
  Group.at group 10.0 (fun () -> Roster.enroll (roster_of rosters (p 1)) (client 1));
  Group.at group 30.0 (fun () -> Roster.expel (roster_of rosters (p 1)) (client 1));
  Group.at group 50.0 (fun () -> Roster.enroll (roster_of rosters (p 1)) (client 1));
  (* The next incarnation of the same client host is welcome. *)
  Group.at group 60.0 (fun () ->
      Roster.enroll (roster_of rosters (p 1)) (Pid.reincarnate (client 1)));
  Group.run ~until:150.0 group;
  let r0 = roster_of rosters (p 0) in
  check bool "same incarnation refused" false (Roster.is_client r0 (client 1));
  check bool "new incarnation admitted" true
    (Roster.is_client r0 (Pid.reincarnate (client 1)));
  check bool "all servers agree" true (all_agree group rosters)

let test_survives_coordinator_crash () =
  let group, rosters = setup ~n:5 () in
  Group.at group 10.0 (fun () -> Roster.enroll (roster_of rosters (p 1)) (client 1));
  Group.at group 12.0 (fun () -> Roster.enroll (roster_of rosters (p 2)) (client 2));
  Group.crash_at group 20.0 (p 0);
  (* More traffic after the failover; requests routed to the new
     coordinator. *)
  Group.at group 60.0 (fun () -> Roster.enroll (roster_of rosters (p 3)) (client 3));
  Group.at group 70.0 (fun () -> Roster.expel (roster_of rosters (p 4)) (client 1));
  Group.run ~until:300.0 group;
  check int "membership is clean" 0 (List.length (Group.check group));
  check bool "rosters agree after failover" true (all_agree group rosters);
  let r1 = roster_of rosters (p 1) in
  check bool "client 2 kept" true (Roster.is_client r1 (client 2));
  check bool "client 3 added under the new regime" true
    (Roster.is_client r1 (client 3));
  check bool "client 1 expelled" false (Roster.is_client r1 (client 1))

let test_joiner_gets_snapshot () =
  let group, rosters = setup ~n:4 () in
  let rosters = ref rosters in
  Group.at group 10.0 (fun () -> Roster.enroll (roster_of !rosters (p 1)) (client 1));
  Group.join_at group 30.0 (p 10) ~contact:(p 2);
  (* Attach the roster logic on the joiner as soon as it exists. *)
  Group.at group 30.1 (fun () ->
      rosters := (p 10, Roster.attach (Group.member group (p 10))) :: !rosters);
  Group.at group 80.0 (fun () -> Roster.enroll (roster_of !rosters (p 10)) (client 2));
  Group.run ~until:300.0 group;
  check bool "all servers agree (including the joiner)" true
    (all_agree group !rosters);
  let joiner = roster_of !rosters (p 10) in
  check bool "joiner knows the old client" true (Roster.is_client joiner (client 1));
  check bool "joiner's request worked" true (Roster.is_client joiner (client 2))

let test_duplicate_requests_coalesce () =
  let group, rosters = setup ~n:4 () in
  (* The same enrolment requested through three different servers. *)
  List.iter
    (fun i ->
      Group.at group (10.0 +. float_of_int i) (fun () ->
          Roster.enroll (roster_of rosters (p i)) (client 1)))
    [ 1; 2; 3 ];
  Group.run ~until:100.0 group;
  let r0 = roster_of rosters (p 0) in
  check int "one client, one change" 1 (Roster.sequence r0);
  check bool "agreement" true (all_agree group rosters)

let suite =
  [ Alcotest.test_case "roster: enroll replicates" `Quick test_enroll_replicates;
    Alcotest.test_case "roster: expel replicates" `Quick test_expel_replicates;
    Alcotest.test_case "roster: expelled cannot return" `Quick
      test_expelled_cannot_return;
    Alcotest.test_case "roster: survives coordinator crash" `Quick
      test_survives_coordinator_crash;
    Alcotest.test_case "roster: joiner gets a snapshot" `Quick
      test_joiner_gets_snapshot;
    Alcotest.test_case "roster: duplicate requests coalesce" `Quick
      test_duplicate_requests_coalesce ]
