(* The schedule explorer: engine ready-window semantics, DFS determinism,
   assurance on the final algorithm, and rediscovery of the no-majority
   hole — more directly than the fuzzer finds it. *)

module Engine = Gmp_sim.Engine
module E = Gmp_explore.Explore

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---- engine ready windows ---- *)

let test_ready_window_and_pinned_clock () =
  let e = Engine.create () in
  Engine.set_slack e 0.5;
  let order = ref [] in
  let ev name () = order := name :: !order in
  ignore (Engine.schedule_at e ~proc:0 ~time:1.0 (ev "a") : Engine.handle);
  ignore (Engine.schedule_at e ~proc:1 ~time:1.2 (ev "b") : Engine.handle);
  ignore (Engine.schedule_at e ~proc:2 ~time:2.0 (ev "c") : Engine.handle);
  let ready = Engine.ready e in
  (* 1.0 and 1.2 share the window; 2.0 is beyond the slack *)
  check int "window size" 2 (List.length ready);
  (* Fire the later event first: the clock pins to the window base, so
     same-window reorderings are time-identical downstream. *)
  Engine.fire e (List.nth ready 1);
  check (Alcotest.float 1e-9) "now pinned to window base" 1.0 (Engine.now e);
  check int "front shrank" 1 (List.length (Engine.ready e));
  Engine.fire e (List.hd (Engine.ready e));
  check (Alcotest.list Alcotest.string) "both fired" [ "b"; "a" ]
    (List.rev !order)

let test_ready_channel_fronts () =
  let e = Engine.create () in
  Engine.set_slack e 1.0;
  let nop () = () in
  (* Two messages on the same FIFO channel inside one window: only the
     front is an interchangeable choice. *)
  ignore (Engine.schedule_at e ~proc:1 ~chan:7 ~time:1.0 nop : Engine.handle);
  ignore (Engine.schedule_at e ~proc:1 ~chan:7 ~time:1.5 nop : Engine.handle);
  ignore (Engine.schedule_at e ~proc:2 ~time:1.4 nop : Engine.handle);
  check int "channel front only" 2 (List.length (Engine.ready e))

let test_picker_reorders_ties () =
  let e = Engine.create () in
  let order = ref [] in
  let tag i () = order := i :: !order in
  ignore (Engine.schedule_at e ~proc:0 ~time:1.0 (tag 0) : Engine.handle);
  ignore (Engine.schedule_at e ~proc:1 ~time:1.0 (tag 1) : Engine.handle);
  ignore (Engine.schedule_at e ~proc:2 ~time:1.0 (tag 2) : Engine.handle);
  Engine.set_picker ~slack:0.5 e (fun cands ->
      List.nth cands (List.length cands - 1));
  Engine.run e;
  check (Alcotest.list int) "max-proc picker reverses the tie" [ 2; 1; 0 ]
    (List.rev !order)

let test_picker_must_return_candidate () =
  let e = Engine.create () in
  let nop () = () in
  ignore (Engine.schedule_at e ~time:1.0 nop : Engine.handle);
  ignore (Engine.schedule_at e ~time:1.0 nop : Engine.handle);
  let rogue = Engine.schedule_at e ~time:5.0 nop in
  Engine.set_picker e (fun _ -> rogue);
  check bool "picker result is checked" true
    (try
       ignore (Engine.step e : bool);
       false
     with Invalid_argument _ -> true)

(* ---- explorer ---- *)

let test_explorer_deterministic () =
  (* Same model, depth and budget: identical interleaving counts and the
     same (absent) violation set, run-over-run. *)
  let m = E.assurance () in
  let o1 = E.explore m ~depth:6 ~budget:800 in
  let o2 = E.explore m ~depth:6 ~budget:800 in
  check bool "identical stats" true (o1.E.stats = o2.E.stats);
  check bool "identical verdict" true
    (o1.E.counterexample = o2.E.counterexample);
  check bool "actually explored" true (o1.E.stats.E.distinct > 100)

let test_assurance_quick () =
  let o = E.explore (E.assurance ()) ~depth:8 ~budget:3000 in
  (match o.E.counterexample with
  | Some cx ->
    Alcotest.failf "explorer broke the final algorithm: %a"
      Fmt.(list ~sep:(any "; ") E.pp_choice)
      cx.E.cx_choices
  | None -> ());
  check bool "over a thousand distinct interleavings" true
    (o.E.stats.E.distinct >= 1000);
  check bool "reductions active" true
    (o.E.stats.E.sleep_pruned > 0 && o.E.stats.E.state_pruned > 0)

let test_assurance_ten_thousand () =
  (* The acceptance bar: >= 10k distinct interleavings of the full
     algorithm at n=3, zero violations. *)
  let o = E.explore (E.assurance ()) ~depth:12 ~budget:25_000 in
  check bool "no violation" true (o.E.counterexample = None);
  check bool
    (Fmt.str "at least 10k distinct interleavings (got %d)"
       o.E.stats.E.distinct)
    true
    (o.E.stats.E.distinct >= 10_000)

let test_sensitivity_finds_hole () =
  let m = E.sensitivity () in
  let o = E.explore m ~depth:8 ~budget:600 in
  match o.E.counterexample with
  | None -> Alcotest.fail "explorer missed the no-majority divergence"
  | Some cx ->
    check bool "violations attached" true (cx.E.cx_violations <> []);
    (* The fuzzer (seed 12) needs 14 random schedules to stumble on this
       hole and shrinks to <= 2 actions; systematic search must be at
       least as direct on both counts. *)
    check bool
      (Fmt.str "within the fuzzer's find (took %d executions)"
         o.E.stats.E.executions)
      true
      (o.E.stats.E.executions <= 14);
    check bool
      (Fmt.str "minimal counterexample (got %d choices)"
         (List.length cx.E.cx_choices))
      true
      (List.length cx.E.cx_choices <= 2);
    check int "a single injection suffices" 1 cx.E.cx_injections;
    check bool "replay reproduces it" true (E.replay m cx.E.cx_choices <> []);
    let narrated = E.describe m cx.E.cx_choices in
    check bool "narration names the isolation" true
      (List.exists (fun line -> contains line "isolate") narrated)

(* ---- snapshot engine vs rebuild-and-replay oracle ---- *)

let test_snapshots_oracle_equivalence () =
  (* The checkpoint/restore engine (default) and the rebuild-and-replay
     oracle must produce byte-identical outcomes: every statistic, the
     distinct-interleaving count and the (absent) counterexample. *)
  let m = E.assurance () in
  let on = E.explore ~snapshots:true m ~depth:8 ~budget:3000 in
  let off = E.explore ~snapshots:false m ~depth:8 ~budget:3000 in
  check bool "assurance: on == off (full outcome)" true (on = off);
  check bool "actually explored" true (on.E.stats.E.distinct > 1000)

let test_snapshots_oracle_equivalence_sensitivity () =
  (* Same equality when a violation is found: identical failing execution
     index, identical shrunk counterexample. *)
  let m = E.sensitivity () in
  let on = E.explore ~snapshots:true m ~depth:8 ~budget:600 in
  let off = E.explore ~snapshots:false m ~depth:8 ~budget:600 in
  check bool "sensitivity: on == off (full outcome)" true (on = off);
  check bool "counterexample found" true (on.E.counterexample <> None)

let test_snapshots_jobs_equivalence () =
  (* The equality must also hold inside the partitioned engine, for every
     jobs value (workers backtrack by restore inside their items). *)
  let m = E.assurance () in
  List.iter
    (fun jobs ->
      let on = E.explore ~jobs ~snapshots:true m ~depth:8 ~budget:2000 in
      let off = E.explore ~jobs ~snapshots:false m ~depth:8 ~budget:2000 in
      check bool (Fmt.str "jobs %d: on == off (full outcome)" jobs) true
        (on = off))
    [ 1; 2; 4 ]

(* ---- partitioned parallel explorer ---- *)

let test_parallel_jobs_equivalent () =
  (* The partitioned engine's contract: every jobs value — including 1 —
     yields the same outcome, statistics included, because work items are
     merged in frontier order under the global budget regardless of which
     domain ran them or when. *)
  let m = E.assurance () in
  let o1 = E.explore ~jobs:1 m ~depth:8 ~budget:2000 in
  let o2 = E.explore ~jobs:2 m ~depth:8 ~budget:2000 in
  let o4 = E.explore ~jobs:4 m ~depth:8 ~budget:2000 in
  check bool "jobs 1 = jobs 2 (full outcome)" true (o1 = o2);
  check bool "jobs 1 = jobs 4 (full outcome)" true (o1 = o4);
  check bool "actually explored" true (o1.E.stats.E.distinct > 500);
  (* Verdict agreement with the classic sequential engine (the distinct /
     state_pruned counts may differ — pruning is item-scoped there — but a
     clean model must stay clean). *)
  let seq = E.explore m ~depth:8 ~budget:2000 in
  check bool "verdict matches sequential" true
    (seq.E.counterexample = None && o1.E.counterexample = None)

let test_parallel_sensitivity_finds_hole () =
  (* The known no-majority divergence must be found — identically — for
     every jobs value, and the counterexample must match what the
     sequential engine reports. *)
  let m = E.sensitivity () in
  let seq = E.explore m ~depth:8 ~budget:600 in
  let outcomes =
    List.map (fun jobs -> E.explore ~jobs m ~depth:8 ~budget:600) [ 1; 2; 4 ]
  in
  let cx o =
    match o.E.counterexample with
    | None -> Alcotest.fail "parallel explorer missed the no-majority hole"
    | Some cx -> cx
  in
  let first = cx (List.hd outcomes) in
  List.iter
    (fun o ->
      check bool "identical counterexample across jobs" true (cx o = first))
    (List.tl outcomes);
  check bool "same violations as the sequential engine" true
    (match seq.E.counterexample with
    | None -> false
    | Some scx -> scx.E.cx_violations = first.E.cx_violations);
  check bool "same minimal schedule as the sequential engine" true
    (match seq.E.counterexample with
    | None -> false
    | Some scx -> scx.E.cx_choices = first.E.cx_choices)

let test_parallel_rejects_bad_jobs () =
  let m = E.assurance () in
  let raises f =
    try
      ignore (f () : E.outcome);
      false
    with Invalid_argument _ -> true
  in
  check bool "jobs 0 rejected" true
    (raises (fun () -> E.explore ~jobs:0 m ~depth:4 ~budget:10));
  check bool "jobs -1 rejected" true
    (raises (fun () -> E.explore ~jobs:(-1) m ~depth:4 ~budget:10));
  check bool "split_depth 0 rejected" true
    (raises (fun () -> E.explore ~jobs:1 ~split_depth:0 m ~depth:4 ~budget:10))

let test_fp_table_contention () =
  (* Hammer one shared table from several domains with interleaved
     note/prune traffic on overlapping keys; the max-merge invariant must
     hold afterwards for every key, whatever the interleaving was. *)
  let module F = Gmp_explore.Fp_table in
  let t = F.create ~shards:8 () in
  let keys = 1000 and writers = 4 in
  let worker w () =
    for i = 0 to keys - 1 do
      (* Writer w records remaining = (i + w) mod 7; all writers hit every
         key, so the surviving value must be the max over w. *)
      F.note_exhausted t ~key:i ~remaining:((i + w) mod 7);
      ignore (F.prunable t ~key:i ~remaining:3 : bool)
    done
  in
  let domains = List.init writers (fun w -> Domain.spawn (worker w)) in
  List.iter Domain.join domains;
  check int "every key present exactly once" keys (F.length t);
  check int "shard sizes sum to length" keys
    (Array.fold_left ( + ) 0 (F.shard_sizes t));
  for i = 0 to keys - 1 do
    let expected_max =
      List.fold_left
        (fun acc w -> max acc ((i + w) mod 7))
        0
        (List.init writers Fun.id)
    in
    if not (F.prunable t ~key:i ~remaining:expected_max) then
      Alcotest.failf "key %d lost its max-merged value" i;
    if F.prunable t ~key:i ~remaining:(expected_max + 1) then
      Alcotest.failf "key %d over-merged past the max" i
  done

let test_replay_no_choices_is_default_run () =
  (* An empty choice list replays the default deterministic schedule,
     which is clean under both models. *)
  check bool "assurance default clean" true (E.replay (E.assurance ()) [] = []);
  check bool "sensitivity default clean" true
    (E.replay (E.sensitivity ()) [] = [])

let suite =
  [ Alcotest.test_case "engine: ready window + pinned clock" `Quick
      test_ready_window_and_pinned_clock;
    Alcotest.test_case "engine: FIFO channels expose only fronts" `Quick
      test_ready_channel_fronts;
    Alcotest.test_case "engine: picker reorders ties" `Quick
      test_picker_reorders_ties;
    Alcotest.test_case "engine: picker result checked" `Quick
      test_picker_must_return_candidate;
    Alcotest.test_case "explore: deterministic run-over-run" `Quick
      test_explorer_deterministic;
    Alcotest.test_case "explore: assurance smoke" `Quick test_assurance_quick;
    Alcotest.test_case "explore: 10k interleavings, zero violations" `Slow
      test_assurance_ten_thousand;
    Alcotest.test_case "explore: rediscovers the no-majority hole" `Quick
      test_sensitivity_finds_hole;
    Alcotest.test_case "explore: snapshots == replay oracle (assurance)"
      `Quick test_snapshots_oracle_equivalence;
    Alcotest.test_case "explore: snapshots == replay oracle (sensitivity)"
      `Quick test_snapshots_oracle_equivalence_sensitivity;
    Alcotest.test_case "explore: snapshots == oracle at jobs 1/2/4" `Quick
      test_snapshots_jobs_equivalence;
    Alcotest.test_case "explore: parallel jobs 1/2/4 agree exactly" `Quick
      test_parallel_jobs_equivalent;
    Alcotest.test_case "explore: parallel finds the hole identically" `Quick
      test_parallel_sensitivity_finds_hole;
    Alcotest.test_case "explore: bad jobs/split_depth rejected" `Quick
      test_parallel_rejects_bad_jobs;
    Alcotest.test_case "fp_table: concurrent max-merge invariant" `Quick
      test_fp_table_contention;
    Alcotest.test_case "explore: empty replay = default schedule" `Quick
      test_replay_no_choices_is_default_run ]
