(* The live wire codec: golden files, fuzzed round-trips, hostile frames,
   the timer wheel, and JSONL trace I/O. *)

open Gmp_base
open Gmp_causality
open Gmp_core
open Gmp_live

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let p ?(i = 0) id = Pid.make ~incarnation:i id

let msg_testable =
  Alcotest.testable Wire.pp (fun (a : Wire.t) b -> a = b)

let result_of_error e = Fmt.str "%a" Codec.pp_error e

(* ---- golden files: one per Wire.t constructor ----

   The same messages test/golden/gen.ml writes; the committed bytes are
   the specification. An encoding change must ship as a version bump with
   regenerated goldens, never silently. *)

let golden_messages : (string * Wire.t) list =
  [ ("heartbeat", Wire.Heartbeat);
    ("faulty_report", Wire.Faulty_report (p 3));
    ("join_request", Wire.Join_request);
    ("join_forward", Wire.Join_forward (p ~i:1 5));
    ("invite", Wire.Invite { op = Types.Add (p 5); invite_ver = 3 });
    ("invite_ok", Wire.Invite_ok { ok_ver = 3 });
    ( "commit",
      Wire.Commit
        { op = Types.Remove (p 2);
          commit_ver = 4;
          contingent = Some (Types.Add (p 6));
          faulty = [ p 2; p 3 ];
          recovered = [ p 6 ] } );
    ( "welcome",
      Wire.Welcome
        { w_members = [ p 0; p 1; p ~i:1 5 ];
          w_ver = 2;
          w_seq = [ Types.Add (p ~i:1 5); Types.Remove (p 2) ] } );
    ("interrogate", Wire.Interrogate);
    ( "interrogate_ok",
      Wire.Interrogate_ok
        { reply_ver = 2;
          reply_seq = [ Types.Remove (p 1) ];
          reply_next =
            [ Types.Awaiting_proposal (p 4);
              Types.Expected
                { canonical = [ Types.Add (p 2); Types.Remove (p 0) ];
                  coord = p 4;
                  ver = 5 } ] } );
    ( "propose",
      Wire.Propose
        { target_ver = 6;
          canonical_seq = [ Types.Add (p 1); Types.Remove (p 3) ];
          invis = Some (Types.Remove (p 0));
          prop_faulty = [ p 0 ] } );
    ("propose_ok", Wire.Propose_ok { pok_ver = 6 });
    ( "reconf_commit",
      Wire.Reconf_commit
        { target_ver = 2;
          canonical_seq = [ Types.Remove (p 4) ];
          invis = None;
          prop_faulty = [] } );
    ("app", Wire.App { app_ver = 1; payload = Codec.Blob "hi\x00\xff" }) ]

let read_golden name =
  let path = Filename.concat "golden" (name ^ ".bin") in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_covers_every_constructor () =
  (* One golden per Wire.t constructor; this count must move with the
     type, so a new constructor cannot ship unpinned. *)
  check Alcotest.int "constructor count" 14 (List.length golden_messages)

let test_golden_encode () =
  List.iter
    (fun (name, msg) ->
      check Alcotest.string
        (Printf.sprintf "%s encodes to its golden bytes" name)
        (read_golden name) (Codec.encode_msg msg))
    golden_messages

let test_golden_decode () =
  List.iter
    (fun (name, msg) ->
      match Codec.decode_msg (read_golden name) with
      | Ok decoded ->
        check msg_testable
          (Printf.sprintf "%s decodes from its golden bytes" name)
          msg decoded
      | Error e -> Alcotest.failf "%s: decode failed: %s" name (result_of_error e))
    golden_messages

let test_golden_frames () =
  (* Frame goldens round-trip through decode_frame. *)
  List.iter
    (fun name ->
      match Codec.decode_frame (read_golden name) with
      | Ok frame ->
        check Alcotest.string
          (Printf.sprintf "%s re-encodes identically" name)
          (read_golden name) (Codec.encode_frame frame)
      | Error e -> Alcotest.failf "%s: decode failed: %s" name (result_of_error e))
    [ "frame_data"; "frame_ack"; "frame_ctrl_shutdown"; "frame_ctrl_blackhole";
      "frame_ctrl_unblackhole"; "frame_ctrl_set_netem";
      "frame_ctrl_set_netem_default"; "frame_ctrl_ack";
      "frame_ctrl_get_metrics"; "frame_metrics" ]

(* ---- fuzzed round-trips ---- *)

let pid_gen =
  QCheck.Gen.map2
    (fun id i -> Pid.make ~incarnation:i id)
    (QCheck.Gen.int_bound 9) (QCheck.Gen.int_bound 2)

let op_gen =
  QCheck.Gen.map2
    (fun remove pid -> if remove then Types.Remove pid else Types.Add pid)
    QCheck.Gen.bool pid_gen

let seq_gen = QCheck.Gen.(list_size (int_bound 4) op_gen)

let expectation_gen =
  QCheck.Gen.(
    frequency
      [ (1, map (fun p -> Types.Awaiting_proposal p) pid_gen);
        ( 1,
          map3
            (fun canonical coord ver ->
              Types.Expected { canonical; coord; ver })
            seq_gen pid_gen (int_bound 20) ) ])

let proposal_gen =
  QCheck.Gen.(
    map
      (fun (((target_ver, canonical_seq), invis), prop_faulty) ->
        { Wire.target_ver; canonical_seq; invis; prop_faulty })
      (pair
         (pair (pair (int_bound 20) seq_gen) (option op_gen))
         (list_size (int_bound 3) pid_gen)))

let msg_gen =
  QCheck.Gen.(
    frequency
      [ (1, return Wire.Heartbeat);
        (1, map (fun p -> Wire.Faulty_report p) pid_gen);
        (1, return Wire.Join_request);
        (1, map (fun p -> Wire.Join_forward p) pid_gen);
        ( 2,
          map2
            (fun op invite_ver -> Wire.Invite { op; invite_ver })
            op_gen (int_bound 20) );
        (1, map (fun ok_ver -> Wire.Invite_ok { ok_ver }) (int_bound 20));
        ( 2,
          map
            (fun ((op, commit_ver, contingent), (faulty, recovered)) ->
              Wire.Commit { op; commit_ver; contingent; faulty; recovered })
            (pair
               (triple op_gen (int_bound 20) (option op_gen))
               (pair
                  (list_size (int_bound 3) pid_gen)
                  (list_size (int_bound 3) pid_gen))) );
        ( 1,
          map3
            (fun w_members w_ver w_seq -> Wire.Welcome { w_members; w_ver; w_seq })
            (list_size (int_bound 5) pid_gen)
            (int_bound 20) seq_gen );
        (1, return Wire.Interrogate);
        ( 2,
          map3
            (fun reply_ver reply_seq reply_next ->
              Wire.Interrogate_ok { reply_ver; reply_seq; reply_next })
            (int_bound 20) seq_gen
            (list_size (int_bound 3) expectation_gen) );
        (2, map (fun prop -> Wire.Propose prop) proposal_gen);
        (1, map (fun pok_ver -> Wire.Propose_ok { pok_ver }) (int_bound 20));
        (1, map (fun prop -> Wire.Reconf_commit prop) proposal_gen);
        ( 1,
          map2
            (fun app_ver payload ->
              Wire.App { app_ver; payload = Codec.Blob payload })
            (int_bound 20) (string_size (int_bound 40)) ) ])

let msg_arbitrary = QCheck.make ~print:(Fmt.str "%a" Wire.pp) msg_gen

let fuzz_msg_roundtrip =
  QCheck.Test.make ~name:"codec: decode (encode m) = m" ~count:1000
    msg_arbitrary (fun m ->
      match Codec.decode_msg (Codec.encode_msg m) with
      | Ok m' -> m = m'
      | Error _ -> false)

let vc_gen =
  QCheck.Gen.map Vector_clock.of_list
    QCheck.Gen.(list_size (int_bound 4) (pair pid_gen (int_bound 50)))

let frame_gen =
  QCheck.Gen.(
    frequency
      [ ( 4,
          map
            (fun (((src, chan_seq), vc), msg) ->
              Codec.Data { src; chan_seq; vc; msg })
            (pair (pair (pair pid_gen (int_bound 10000)) vc_gen) msg_gen) );
        ( 2,
          map2
            (fun src ack_next -> Codec.Ack { src; ack_next })
            pid_gen (int_bound 10000) );
        ( 1,
          map
            (fun token -> Codec.Ctrl { token; cmd = Codec.Shutdown })
            (int_bound 0xFFFF) );
        ( 1,
          map2
            (fun token p -> Codec.Ctrl { token; cmd = Codec.Blackhole p })
            (int_bound 0xFFFF) pid_gen );
        ( 1,
          map2
            (fun token p -> Codec.Ctrl { token; cmd = Codec.Unblackhole p })
            (int_bound 0xFFFF) pid_gen );
        ( 2,
          map3
            (fun token peer ((loss, dup, reorder), (latency, jitter)) ->
              Codec.Ctrl
                { token;
                  cmd =
                    Codec.Set_netem
                      { peer;
                        n_loss = loss *. 0.99;
                        n_latency = latency;
                        n_jitter = jitter;
                        n_dup = dup;
                        n_reorder = reorder } })
            (int_bound 0xFFFF) (option pid_gen)
            (pair
               (triple (float_bound_exclusive 1.0) (float_bound_inclusive 1.0)
                  (float_bound_inclusive 1.0))
               (pair (float_bound_inclusive 2.0) (float_bound_inclusive 1.0))) );
        (1, map (fun token -> Codec.Ctrl_ack { token }) (int_bound 0xFFFF)) ])

let frame_arbitrary =
  QCheck.make
    ~print:(fun f -> Printf.sprintf "%d-byte frame" (String.length (Codec.encode_frame f)))
    frame_gen

let fuzz_frame_roundtrip =
  QCheck.Test.make ~name:"codec: decode_frame (encode_frame f) = f"
    ~count:1000 frame_arbitrary (fun f ->
      match Codec.decode_frame (Codec.encode_frame f) with
      | Ok f' -> Codec.encode_frame f = Codec.encode_frame f'
      | Error _ -> false)

let fuzz_truncation_never_raises =
  (* Every proper prefix of a valid frame decodes to a clean Error. *)
  QCheck.Test.make ~name:"codec: truncated frames fail cleanly" ~count:300
    frame_arbitrary (fun f ->
      let bytes = Codec.encode_frame f in
      let ok = ref true in
      for n = 0 to String.length bytes - 1 do
        match Codec.decode_frame (String.sub bytes 0 n) with
        | Ok _ -> ok := false (* a strict prefix must never decode *)
        | Error _ -> ()
      done;
      !ok)

let fuzz_bitflip_never_raises =
  (* Arbitrary corruption: decode must return, never raise. *)
  QCheck.Test.make ~name:"codec: corrupted frames never raise" ~count:500
    QCheck.(pair frame_arbitrary (pair small_nat char))
    (fun (f, (pos, c)) ->
      let bytes = Bytes.of_string (Codec.encode_frame f) in
      let pos = pos mod Bytes.length bytes in
      Bytes.set bytes pos c;
      match Codec.decode_frame (Bytes.to_string bytes) with
      | Ok _ | Error _ -> true)

(* ---- hostile frames, deterministic cases ---- *)

let decode_error_case name raw expect_fn =
  Alcotest.test_case name `Quick (fun () ->
      match Codec.decode_frame raw with
      | Ok _ -> Alcotest.failf "%s: decoded instead of failing" name
      | Error e ->
        if not (expect_fn e) then
          Alcotest.failf "%s: unexpected error %s" name (result_of_error e))

let valid_frame =
  Codec.encode_frame (Codec.Ack { src = Pid.make 1; ack_next = 3 })

let hostile_cases =
  [ decode_error_case "empty input" "" (function
      | Codec.Truncated _ -> true
      | _ -> false);
    decode_error_case "short header" "GM" (function
      | Codec.Truncated _ -> true
      | _ -> false);
    decode_error_case "bad magic"
      ("XY" ^ String.sub valid_frame 2 (String.length valid_frame - 2))
      (function Codec.Bad_magic -> true | _ -> false);
    decode_error_case "future version"
      ("GM\x63" ^ String.sub valid_frame 3 (String.length valid_frame - 3))
      (function Codec.Unsupported_version 0x63 -> true | _ -> false);
    decode_error_case "stale version"
      ("GM\x01" ^ String.sub valid_frame 3 (String.length valid_frame - 3))
      (function Codec.Unsupported_version 1 -> true | _ -> false);
    decode_error_case "oversized declared length"
      ("GM\x02\x7f\xff\xff\xff" ^ "x")
      (function Codec.Oversized _ -> true | _ -> false);
    decode_error_case "truncated body"
      (String.sub valid_frame 0 (String.length valid_frame - 2))
      (function Codec.Truncated _ -> true | _ -> false);
    decode_error_case "trailing bytes" (valid_frame ^ "zz") (function
      | Codec.Malformed _ -> true
      | _ -> false);
    decode_error_case "unknown frame kind"
      ("GM\x02\x00\x00\x00\x01\x0f")
      (function Codec.Malformed _ -> true | _ -> false);
    decode_error_case "lying list count"
      (* A Data frame whose vc claims 2^31 entries in a 30-byte body: the
         count guard must reject it without allocating. *)
      ("GM\x02\x00\x00\x00\x0e" ^ "\x00" (* Data *)
      ^ "\x00\x00\x00\x01\x00\x00\x00\x00" (* src p1 *)
      ^ "\x00\x00\x00\x00" (* chan_seq *)
      ^ "\x7f\xff\xff\xff" (* vc count lie *))
      (function Codec.Malformed _ -> true | _ -> false) ]
  @
  (* Hostile Set_netem payloads: a valid Ctrl header with the probability /
     delay fields swapped for poison. The model ranges are enforced at
     decode, so a hostile frame cannot install an invalid fault model. *)
  let netem_frame ~loss ~latency =
    let body = Buffer.create 64 in
    Buffer.add_string body "\x02" (* Ctrl *);
    Buffer.add_string body "\x00\x00\x00\x07" (* token *);
    Buffer.add_string body "\x03" (* Set_netem *);
    Buffer.add_string body "\x00" (* peer = None *);
    let f64 v =
      let bits = Int64.bits_of_float v in
      for i = 7 downto 0 do
        Buffer.add_char body
          (Char.chr
             (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
      done
    in
    f64 loss;
    f64 latency;
    f64 0.0 (* jitter *);
    f64 0.0 (* dup *);
    f64 0.0 (* reorder *);
    let b = Buffer.contents body in
    let hdr = Buffer.create 8 in
    Buffer.add_string hdr "GM\x02";
    let n = String.length b in
    List.iter
      (fun shift -> Buffer.add_char hdr (Char.chr ((n lsr shift) land 0xFF)))
      [ 24; 16; 8; 0 ];
    Buffer.contents hdr ^ b
  in
  [ decode_error_case "netem loss = 1.0 rejected"
      (netem_frame ~loss:1.0 ~latency:0.0)
      (function Codec.Malformed _ -> true | _ -> false);
    decode_error_case "netem negative latency rejected"
      (netem_frame ~loss:0.0 ~latency:(-1.0))
      (function Codec.Malformed _ -> true | _ -> false);
    decode_error_case "netem NaN rejected"
      (netem_frame ~loss:Float.nan ~latency:0.0)
      (function Codec.Malformed _ -> true | _ -> false);
    decode_error_case "netem infinity rejected"
      (netem_frame ~loss:0.0 ~latency:Float.infinity)
      (function Codec.Malformed _ -> true | _ -> false);
    Alcotest.test_case "netem golden-shaped frame decodes" `Quick (fun () ->
        match Codec.decode_frame (netem_frame ~loss:0.5 ~latency:0.25) with
        | Ok (Codec.Ctrl { token = 7; cmd = Codec.Set_netem spec }) ->
          check (Alcotest.float 0.0) "loss" 0.5 spec.n_loss;
          check (Alcotest.float 0.0) "latency" 0.25 spec.n_latency
        | Ok _ -> Alcotest.fail "decoded to the wrong frame"
        | Error e -> Alcotest.failf "decode failed: %s" (result_of_error e)) ]

(* ---- the timer wheel ---- *)

let test_timers_order () =
  let t = Timers.create () in
  let fired = ref [] in
  let note n () = fired := n :: !fired in
  ignore (Timers.schedule t ~at:3.0 (note 3) : Timers.entry);
  ignore (Timers.schedule t ~at:1.0 (note 1) : Timers.entry);
  ignore (Timers.schedule t ~at:2.0 (note 2) : Timers.entry);
  check (Alcotest.option (Alcotest.float 0.0)) "next deadline" (Some 1.0)
    (Timers.next_deadline t);
  check Alcotest.int "two fire by 2.5" 2 (Timers.fire_due t ~now:2.5);
  check (Alcotest.list Alcotest.int) "in deadline order" [ 1; 2 ]
    (List.rev !fired);
  check Alcotest.int "last fires" 1 (Timers.fire_due t ~now:10.0);
  check Alcotest.int "wheel drained" 0 (Timers.pending t)

let test_timers_cancel () =
  let t = Timers.create () in
  let fired = ref 0 in
  let e = Timers.schedule t ~at:1.0 (fun () -> incr fired) in
  ignore (Timers.schedule t ~at:2.0 (fun () -> incr fired) : Timers.entry);
  Timers.cancel e;
  Timers.cancel e;
  check (Alcotest.option (Alcotest.float 0.0)) "cancelled entry skipped"
    (Some 2.0) (Timers.next_deadline t);
  check Alcotest.int "only live entry fires" 1 (Timers.fire_due t ~now:5.0);
  check Alcotest.int "fired once" 1 !fired

let test_timers_rearm_in_callback () =
  (* The due set is snapshotted at entry: an entry re-armed in the past by
     its own callback waits for the NEXT fire_due call. One self-re-arming
     timer therefore advances one tick per call instead of spinning the
     loop to quiescence - the starvation the old cascade semantics
     allowed. *)
  let t = Timers.create () in
  let count = ref 0 in
  let rec tick at () =
    incr count;
    if !count < 4 then ignore (Timers.schedule t ~at (tick at) : Timers.entry)
  in
  ignore (Timers.schedule t ~at:1.0 (tick 1.0) : Timers.entry);
  check Alcotest.int "one fire per call" 1 (Timers.fire_due t ~now:1.0);
  check Alcotest.int "ticked once" 1 !count;
  check Alcotest.int "re-armed entry fires next call" 1
    (Timers.fire_due t ~now:1.0);
  ignore (Timers.fire_due t ~now:1.0 : int);
  ignore (Timers.fire_due t ~now:1.0 : int);
  check Alcotest.int "ticked four times over four calls" 4 !count;
  check Alcotest.int "quiescent afterwards" 0 (Timers.fire_due t ~now:1.0)

let test_timers_cancel_within_batch () =
  (* Two entries due in one batch; the first's callback cancels the
     second: the snapshot honours the cancellation. *)
  let t = Timers.create () in
  let fired = ref [] in
  let e2 = ref None in
  ignore
    (Timers.schedule t ~at:1.0 (fun () ->
         fired := 1 :: !fired;
         Option.iter Timers.cancel !e2)
      : Timers.entry);
  e2 := Some (Timers.schedule t ~at:2.0 (fun () -> fired := 2 :: !fired));
  check Alcotest.int "only the canceller fires" 1 (Timers.fire_due t ~now:5.0);
  check (Alcotest.list Alcotest.int) "second was cancelled mid-batch" [ 1 ]
    (List.rev !fired)

let test_timers_fifo_ties () =
  let t = Timers.create () in
  let fired = ref [] in
  List.iter
    (fun n ->
      ignore
        (Timers.schedule t ~at:1.0 (fun () -> fired := n :: !fired)
          : Timers.entry))
    [ 1; 2; 3 ];
  ignore (Timers.fire_due t ~now:1.0 : int);
  check (Alcotest.list Alcotest.int) "ties fire in scheduling order"
    [ 1; 2; 3 ] (List.rev !fired)

(* ---- trace JSONL round-trips ---- *)

let sample_events =
  let vc = Vector_clock.of_list [ (p 0, 3); (p ~i:1 2, 7) ] in
  [ { Trace.owner = p 0; index = 1; time = 1786011887.962642; vc;
      kind = Trace.Installed { ver = 0; view_members = [ p 0; p 1 ] } };
    { Trace.owner = p 0; index = 2; time = 1786011888.1; vc;
      kind = Trace.Faulty (p 1) };
    { Trace.owner = p 0; index = 3; time = 1786011888.25; vc;
      kind = Trace.Removed { target = p 1; new_ver = 1 } };
    { Trace.owner = p 0; index = 4; time = 1786011888.25; vc;
      kind = Trace.Added { target = p ~i:1 2; new_ver = 2 } };
    { Trace.owner = p 0; index = 5; time = 1786011888.5; vc;
      kind = Trace.Quit "removed from view" };
    { Trace.owner = p 1; index = 1; time = 1786011888.625; vc;
      kind = Trace.Crashed };
    { Trace.owner = p 1; index = 2; time = 1786011889.0; vc;
      kind = Trace.Initiated_reconf { at_ver = 2 } };
    { Trace.owner = p 1; index = 3; time = 1786011889.125; vc;
      kind =
        Trace.Proposed
          { target_ver = 3; ops = [ Types.Add (p 4); Types.Remove (p 0) ] } };
    { Trace.owner = p 1; index = 4; time = 1786011889.25; vc;
      kind = Trace.Committed { ver = 3; commit_kind = `Reconf } };
    { Trace.owner = p 1; index = 5; time = 1786011889.375; vc;
      kind = Trace.Committed { ver = 4; commit_kind = `Update } };
    { Trace.owner = p 1; index = 6; time = 1786011889.5; vc;
      kind = Trace.Became_mgr { at_ver = 3 } };
    { Trace.owner = p 1; index = 7; time = 1786011889.625; vc;
      kind = Trace.Operating (p 4) };
    { Trace.owner = p 1; index = 8; time = 1786011889.75; vc;
      kind = Trace.Violation "made up for the round-trip" } ]

let event_testable =
  Alcotest.testable Trace.pp_event (fun (a : Trace.event) b -> a = b)

let test_event_line_roundtrip () =
  List.iter
    (fun e ->
      let line = Json.to_compact_string (Export.json_of_event e) in
      match Trace_io.event_of_line line with
      | Ok e' -> check event_testable "event round-trips" e e'
      | Error m -> Alcotest.failf "parse failed: %s\n%s" m line)
    sample_events

let with_temp_file f =
  let path = Filename.temp_file "gmp_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_writer_and_torn_line () =
  with_temp_file (fun path ->
      let trace = Trace.create () in
      let w = Trace_io.attach trace ~path in
      List.iter
        (fun (e : Trace.event) ->
          Trace.record trace ~owner:e.owner ~index:e.index ~time:e.time
            ~vc:e.vc e.kind)
        sample_events;
      Trace_io.close w;
      (* Simulate a SIGKILL mid-write: chop the file mid-last-line. *)
      let ic = open_in path in
      let full = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out path in
      output_string oc (String.sub full 0 (String.length full - 7));
      close_out oc;
      match Trace_io.read_file path with
      | Error m -> Alcotest.failf "read failed: %s" m
      | Ok events ->
        check Alcotest.int "all but the torn line survive"
          (List.length sample_events - 1)
          (List.length events);
        List.iteri
          (fun i e ->
            check event_testable "event intact" (List.nth sample_events i) e)
          events)

let test_reassemble_order () =
  (* Cross-node merge: ordered by time, ties broken by owner then index. *)
  let vc = Vector_clock.empty in
  let ev owner index time =
    { Trace.owner; index; time; vc; kind = Trace.Faulty (p 9) }
  in
  let a = [ ev (p 1) 1 5.0; ev (p 1) 2 6.0 ] in
  let b = [ ev (p 0) 1 5.0; ev (p 0) 2 7.0 ] in
  let trace = Trace_io.reassemble [ a; b ] in
  let order =
    List.map
      (fun (e : Trace.event) -> (Pid.id e.owner, e.index))
      (Trace.events trace)
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "merged order" [ (0, 1); (1, 1); (1, 2); (0, 2) ] order

(* ---- framing: the TCP stream decoder over the v2 codec ---- *)

let frame_golden_names =
  [ "frame_data"; "frame_ack"; "frame_ctrl_shutdown"; "frame_ctrl_blackhole";
    "frame_ctrl_unblackhole"; "frame_ctrl_set_netem";
    "frame_ctrl_set_netem_default"; "frame_ctrl_ack";
    "frame_ctrl_get_metrics"; "frame_metrics" ]

let test_framing_stream_golden () =
  (* The pinned stream bytes are the concatenation of the frame goldens;
     one whole-stream feed must cut them back out exactly. *)
  let stream = read_golden "stream_frames" in
  check Alcotest.string "stream golden = concat of frame goldens"
    (String.concat "" (List.map read_golden frame_golden_names))
    stream;
  let d = Framing.create () in
  match Framing.feed_string d stream with
  | Error e -> Alcotest.failf "poisoned on golden stream: %s" (result_of_error e)
  | Ok frames ->
    check
      (Alcotest.list Alcotest.string)
      "every frame extracted whole"
      (List.map read_golden frame_golden_names)
      frames;
    check Alcotest.int "nothing pending" 0 (Framing.pending d);
    check Alcotest.int "no partial feeds" 0 (Framing.partial_feeds d)

let feed_in_chunks d stream sizes =
  (* Feed [stream] in chunks cycling through [sizes]; collect frames. *)
  let out = ref [] in
  let n = String.length stream in
  let pos = ref 0 and k = ref 0 in
  while !pos < n do
    let len = min (List.nth sizes (!k mod List.length sizes)) (n - !pos) in
    (match Framing.feed_string d (String.sub stream !pos len) with
    | Ok frames -> out := List.rev_append frames !out
    | Error e -> Alcotest.failf "poisoned mid-stream: %s" (result_of_error e));
    pos := !pos + len;
    incr k
  done;
  List.rev !out

let test_framing_split_across_reads () =
  (* However the kernel slices the stream - byte-by-byte, primes, huge -
     the same frames come out, and byte-level slicing must show partial
     reads. *)
  let stream = read_golden "stream_frames" in
  let expect = List.map read_golden frame_golden_names in
  List.iter
    (fun sizes ->
      let d = Framing.create () in
      check
        (Alcotest.list Alcotest.string)
        "frames survive re-slicing" expect
        (feed_in_chunks d stream sizes);
      check Alcotest.int "all counted" (List.length expect) (Framing.frames d))
    [ [ 1 ]; [ 2; 3; 5; 7; 11 ]; [ 64 ]; [ 1; 1024 ] ];
  let d = Framing.create () in
  ignore (feed_in_chunks d stream [ 1 ]);
  check Alcotest.bool "byte-by-byte slicing shows partial feeds" true
    (Framing.partial_feeds d > 0)

let u32be n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.to_string b

let test_framing_hostile_streams () =
  let feed_err s =
    let d = Framing.create () in
    match Framing.feed_string d s with
    | Ok _ -> Alcotest.failf "hostile stream %S accepted" s
    | Error e ->
      (* Poisoned: the same error again on any later feed, even a benign
         one - the connection owner must close. *)
      (match Framing.feed_string d (read_golden "frame_ack") with
      | Error e' ->
        check Alcotest.bool "stays poisoned with the same error" true (e = e')
      | Ok _ -> Alcotest.fail "poisoned decoder accepted more bytes");
      e
  in
  (match feed_err ("XY" ^ read_golden "frame_ack") with
  | Codec.Bad_magic -> ()
  | e -> Alcotest.failf "wanted Bad_magic, got %s" (result_of_error e));
  (match feed_err ("GM\x7f" ^ u32be 1 ^ "z") with
  | Codec.Unsupported_version 0x7f -> ()
  | e -> Alcotest.failf "wanted Unsupported_version, got %s" (result_of_error e));
  (match feed_err ("GM" ^ String.make 1 (Char.chr Codec.version) ^ u32be (Codec.max_frame + 1)) with
  | Codec.Oversized _ -> ()
  | e -> Alcotest.failf "wanted Oversized, got %s" (result_of_error e));
  (* A truncated tail is not an error - just an incomplete frame. *)
  let d = Framing.create () in
  let ack = read_golden "frame_ack" in
  (match Framing.feed_string d (String.sub ack 0 (String.length ack - 1)) with
  | Ok [] -> check Alcotest.bool "bytes pending" true (Framing.pending d > 0)
  | Ok _ -> Alcotest.fail "incomplete frame extracted"
  | Error e -> Alcotest.failf "truncation poisoned: %s" (result_of_error e));
  (* A sound header with a hostile body still comes out as one unit: body
     judgment belongs to decode_frame, and must not kill the stream. *)
  let evil = "GM" ^ String.make 1 (Char.chr Codec.version) ^ u32be 3 ^ "\xff\xff\xff" in
  let d = Framing.create () in
  match Framing.feed_string d (evil ^ ack) with
  | Error e -> Alcotest.failf "hostile body poisoned the stream: %s" (result_of_error e)
  | Ok frames ->
    check Alcotest.int "both frames extracted" 2 (List.length frames);
    check Alcotest.bool "hostile body rejected by the codec, not the stream"
      true
      (Result.is_error (Codec.decode_frame (List.nth frames 0)));
    check Alcotest.bool "following frame unharmed" true
      (Codec.decode_frame (List.nth frames 1) = Ok (Codec.Ack { src = p 4; ack_next = 17 }))

(* ---- trace_io: summary lines and forward compatibility ---- *)

let test_unknown_summary_line_skipped () =
  (* Satellite: a reader must skip summary kinds it has never heard of
     (any object without an "event" member), so logs written by newer
     nodes still reassemble - even with the unknown line mid-file, where
     torn-line tolerance cannot save it. *)
  with_temp_file (fun path ->
      let trace = Trace.create () in
      let w = Trace_io.attach trace ~path in
      let record (e : Trace.event) =
        Trace.record trace ~owner:e.owner ~index:e.index ~time:e.time ~vc:e.vc
          e.kind
      in
      record (List.nth sample_events 0);
      Trace_io.write_arq w ~pid:(p 0) [ ("retransmits", 3) ];
      record (List.nth sample_events 1);
      Trace_io.close w;
      (* Splice in a summary kind from the future, mid-file. *)
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines =
        match List.rev !lines with
        | first :: rest ->
          first :: "{\"future_summary\":{\"x\":1},\"schema\":9}" :: rest
        | [] -> []
      in
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      (match Trace_io.read_file path with
      | Error m -> Alcotest.failf "unknown summary line broke the reader: %s" m
      | Ok events -> check Alcotest.int "both events survive" 2 (List.length events));
      (* An old-style key reads back under its canonical registry name. *)
      check Alcotest.bool "arq summary still found" true
        (Trace_io.read_arq path = Some [ ("arq.retransmits", 3) ]))

let test_transport_summary_roundtrip () =
  with_temp_file (fun path ->
      let trace = Trace.create () in
      let w = Trace_io.attach trace ~path in
      Trace_io.write_arq w ~pid:(p 2) [ ("arq.retransmits", 1) ];
      Trace_io.write_transport w ~pid:(p 2) ~kind:"tcp"
        [ ("connects", 4); ("transport.reconnects", 3) ];
      Trace_io.close w;
      (* Keys canonicalize to transport.* whether or not the writer
         already prefixed them. *)
      check Alcotest.bool "transport summary extracted" true
        (Trace_io.read_transport path
        = Some ("tcp", [ ("transport.connects", 4); ("transport.reconnects", 3) ]));
      check Alcotest.bool "arq unaffected" true
        (Trace_io.read_arq path = Some [ ("arq.retransmits", 1) ]);
      match Trace_io.read_file path with
      | Ok [] -> ()
      | Ok _ -> Alcotest.fail "summary lines leaked into the event stream"
      | Error m -> Alcotest.failf "read failed: %s" m)

let suite =
  [ Alcotest.test_case "golden: covers every constructor" `Quick
      test_golden_covers_every_constructor;
    Alcotest.test_case "golden: encode matches bytes" `Quick test_golden_encode;
    Alcotest.test_case "golden: decode recovers messages" `Quick
      test_golden_decode;
    Alcotest.test_case "golden: frames round-trip" `Quick test_golden_frames;
    qtest fuzz_msg_roundtrip;
    qtest fuzz_frame_roundtrip;
    qtest fuzz_truncation_never_raises;
    qtest fuzz_bitflip_never_raises ]
  @ hostile_cases
  @ [ Alcotest.test_case "timers: deadline order" `Quick test_timers_order;
      Alcotest.test_case "timers: cancel" `Quick test_timers_cancel;
      Alcotest.test_case "timers: re-arm inside callback" `Quick
        test_timers_rearm_in_callback;
      Alcotest.test_case "timers: cancel within a batch" `Quick
        test_timers_cancel_within_batch;
      Alcotest.test_case "timers: FIFO on ties" `Quick test_timers_fifo_ties;
      Alcotest.test_case "trace_io: event line round-trip" `Quick
        test_event_line_roundtrip;
      Alcotest.test_case "trace_io: writer + torn last line" `Quick
        test_writer_and_torn_line;
      Alcotest.test_case "trace_io: reassembly order" `Quick
        test_reassemble_order;
      Alcotest.test_case "framing: golden stream decodes whole" `Quick
        test_framing_stream_golden;
      Alcotest.test_case "framing: survives arbitrary read splits" `Quick
        test_framing_split_across_reads;
      Alcotest.test_case "framing: hostile streams poison, bodies don't" `Quick
        test_framing_hostile_streams;
      Alcotest.test_case "trace_io: unknown summary lines skipped" `Quick
        test_unknown_summary_line_skipped;
      Alcotest.test_case "trace_io: transport summary roundtrip" `Quick
        test_transport_summary_roundtrip ]
