(* World checkpoint/restore: the explorer's snapshot layer (Group.checkpoint
   composing engine / network / runtime / trace / member captures).

   Core property: capture at an arbitrary depth, run k more steps, restore,
   run k steps again — every observable (trace events, per-category stats,
   virtual clock, fired/pending counters, heap occupancy, protocol
   fingerprints, surviving views) must be identical, and also identical to a
   fresh world driven through the same k1 + k2 steps (restore leaves no
   residue). Exercised across a grid of seeds and checkpoint depths under an
   adversarial schedule that includes a real crash injection, a suspicion
   and a join, so restores cross crash boundaries, membership changes and
   partition-free churn. *)

open Gmp_base
module Engine = Gmp_sim.Engine
module Group = Gmp_runtime.Group
module Trace = Gmp_core.Trace
module Member = Gmp_core.Member

let build ~seed ~n =
  let group = Group.create ~config:Gmp_core.Config.default ~seed ~n () in
  Group.crash_at group 12.0 (Pid.make 0);
  Group.suspect_at group 20.0 ~observer:(Pid.make 1)
    ~target:(Pid.make (n - 1));
  Group.join_at group 30.0 (Pid.make 100) ~contact:(Pid.make 1);
  group

let steps group k =
  let engine = Group.engine group in
  for _ = 1 to k do
    ignore (Engine.step engine : bool)
  done

type observation = {
  o_events : Trace.event list;
  o_stats : (string * int * int * int) list;
  o_now : float;
  o_fired : int;
  o_pending : int;
  o_heap : int; (* physical heap occupancy: live entries + tombstones *)
  o_peak_heap : int;
  o_fp : int;
  o_views : (Pid.t * int * Pid.t list) list;
  o_crashed : bool list; (* per member, pid order *)
}

let observe group =
  let engine = Group.engine group in
  { o_events = Trace.events (Group.trace group);
    o_stats = Gmp_net.Stats.snapshot (Group.stats group);
    o_now = Engine.now engine;
    o_fired = Engine.fired_events engine;
    o_pending = Engine.pending_events engine;
    o_heap = Engine.queue_length engine;
    o_peak_heap = Engine.peak_queue_length engine;
    o_fp = Group.fingerprint group;
    o_views = Group.surviving_views group;
    o_crashed = List.map Member.crashed (Group.members group) }

let check_obs what (a : observation) (b : observation) =
  Alcotest.(check bool)
    (what ^ ": trace events")
    true (a.o_events = b.o_events);
  Alcotest.(check bool) (what ^ ": stats") true (a.o_stats = b.o_stats);
  Alcotest.(check (float 0.0)) (what ^ ": now") a.o_now b.o_now;
  Alcotest.(check int) (what ^ ": fired") a.o_fired b.o_fired;
  Alcotest.(check int) (what ^ ": pending") a.o_pending b.o_pending;
  Alcotest.(check int) (what ^ ": heap occupancy") a.o_heap b.o_heap;
  Alcotest.(check int) (what ^ ": peak heap") a.o_peak_heap b.o_peak_heap;
  Alcotest.(check int) (what ^ ": fingerprint") a.o_fp b.o_fp;
  Alcotest.(check bool) (what ^ ": views") true (a.o_views = b.o_views);
  Alcotest.(check bool) (what ^ ": crashed flags") true
    (a.o_crashed = b.o_crashed)

(* capture at depth k1, run k2 → restore → run k2 again (twice, to prove a
   checkpoint survives multiple restores), and diff against a fresh world
   stepped k1 + k2 times. *)
let roundtrip ~seed ~n ~k1 ~k2 () =
  let group = build ~seed ~n in
  steps group k1;
  let cp = Group.checkpoint group in
  let at_mark = observe group in
  steps group k2;
  let first = observe group in
  Group.restore group cp;
  check_obs "restore rewinds to the mark" at_mark (observe group);
  steps group k2;
  check_obs "re-run after restore" first (observe group);
  Group.restore group cp;
  steps group k2;
  check_obs "second restore from the same checkpoint" first (observe group);
  let fresh = build ~seed ~n in
  steps fresh (k1 + k2);
  check_obs "fresh world, same steps" first (observe fresh)

let test_grid () =
  (* Depths chosen to land captures before, astride and after the t=12 crash
     and the t=30 join (each step fires one event; the early schedule is
     dominated by sub-t=12 heartbeat rounds). *)
  List.iter
    (fun (seed, n, k1, k2) -> roundtrip ~seed ~n ~k1 ~k2 ())
    [ (1, 4, 0, 40);
      (2, 4, 17, 60);
      (3, 5, 113, 113);
      (4, 6, 57, 200);
      (5, 4, 301, 99);
      (7, 5, 1, 500);
      (11, 6, 250, 250) ]

(* The crash-boundary case, explicitly: capture while p0 is alive, run past
   its injected crash, restore (p0 must be alive again, its timers and
   channels resurrected), then reach the crash again identically. *)
let test_restore_across_crash () =
  let seed = 42 and n = 4 in
  let group = build ~seed ~n in
  let engine = Group.engine group in
  (* Step until just before the crash injection fires. *)
  while Engine.now engine < 11.0 do
    ignore (Engine.step engine : bool)
  done;
  let p0 = Group.member group (Pid.make 0) in
  Alcotest.(check bool) "p0 alive at capture" false (Member.crashed p0);
  let cp = Group.checkpoint group in
  (* Run well past the crash. *)
  while Engine.now engine < 25.0 do
    ignore (Engine.step engine : bool)
  done;
  Alcotest.(check bool) "p0 crashed after running on" true (Member.crashed p0);
  let after = observe group in
  Group.restore group cp;
  Alcotest.(check bool) "p0 alive again after restore" false
    (Member.crashed p0);
  while Engine.now engine < 25.0 do
    ignore (Engine.step engine : bool)
  done;
  check_obs "crash replays identically" after (observe group)

let suite =
  [ Alcotest.test_case "capture/run/restore/re-run grid" `Quick test_grid;
    Alcotest.test_case "restore across a crash injection" `Quick
      test_restore_across_crash ]
