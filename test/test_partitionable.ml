(* The §8 partitioned variation: without the majority requirements, each
   side of a partition keeps operating under its own view sequence. System
   views are deliberately non-unique - the checker's GMP-2/3 report is the
   expected observation, and both sides must stay internally consistent
   and live. *)

open Gmp_base
open Gmp_core
module Group = Gmp_runtime.Group

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let p i = Pid.make i

let split_run () =
  let group = Group.create ~config:Config.partitionable ~seed:95 ~n:6 () in
  (* Minority {p0, p1} (with the coordinator) vs majority {p2..p5}. *)
  Group.partition_at group 10.0 [ [ p 0; p 1 ] ];
  Group.run ~until:400.0 group;
  group

let side_views group pids =
  List.filter_map
    (fun i ->
      let m = Group.member group (p i) in
      if Member.operational m then
        Some (Member.version m, View.members (Member.view m))
      else None)
    pids

let test_both_sides_make_progress () =
  let group = split_run () in
  let minority = side_views group [ 0; 1 ] in
  let majority = side_views group [ 2; 3; 4; 5 ] in
  (* The minority excluded the majority and vice versa: both installed new
     views rather than blocking. *)
  List.iter
    (fun (ver, members) ->
      check bool "minority moved" true (ver > 0);
      check int "minority view is itself" 2 (List.length members))
    minority;
  List.iter
    (fun (ver, members) ->
      check bool "majority moved" true (ver > 0);
      check int "majority view is itself" 4 (List.length members))
    majority

let test_sides_internally_consistent () =
  let group = split_run () in
  let agree side =
    match side_views group side with
    | [] -> true
    | (v0, m0) :: rest -> List.for_all (fun (v, m) -> v = v0 && m = m0) rest
  in
  check bool "minority agrees internally" true (agree [ 0; 1 ]);
  check bool "majority agrees internally" true (agree [ 2; 3; 4; 5 ])

let test_divergence_is_visible () =
  (* The whole point of the variation: the global GMP-2/3 check reports the
     split - applications that opt into partitioned operation take on the
     reconciliation. *)
  let group = split_run () in
  let violations =
    Checker.check_gmp23 (Group.trace group)
  in
  check bool "non-unique system views reported" true (violations <> []);
  (* But per-process safety (GMP-1, GMP-4) still holds everywhere. *)
  check int "no capricious removals" 0
    (List.length (Checker.check_gmp1 (Group.trace group)));
  check int "no re-instatements" 0
    (List.length (Checker.check_gmp4 (Group.trace group)))

let test_unique_mode_blocks_minority () =
  (* Contrast: the default (unique-views) configuration blocks the minority
     side instead. *)
  let group = Group.create ~seed:95 ~n:6 () in
  Group.partition_at group 10.0 [ [ p 0; p 1 ] ];
  Group.run ~until:400.0 group;
  check int "safety" 0
    (List.length
       (Checker.check_safety (Group.trace group) ~initial:(Group.initial group)));
  (* Whatever survives of the minority never commits a view change. *)
  List.iter
    (fun i ->
      let m = Group.member group (p i) in
      if Member.operational m then
        check int "minority blocked" 0 (Member.version m))
    [ 0; 1 ]

let suite =
  [ Alcotest.test_case "partitioned: both sides progress" `Quick
      test_both_sides_make_progress;
    Alcotest.test_case "partitioned: internal consistency" `Quick
      test_sides_internally_consistent;
    Alcotest.test_case "partitioned: divergence is visible" `Quick
      test_divergence_is_visible;
    Alcotest.test_case "unique mode blocks the minority instead" `Quick
      test_unique_mode_blocks_minority ]
