(* Tests for the unified observability layer: registry semantics, the
   deterministic snapshot (merge laws, JSON round-trip, quantiles), the
   latency derivations, and the metrics plumbing through the simulator
   and the live trace log. *)

open Gmp_base
open Gmp_obs
module Group = Gmp_runtime.Group
module Trace = Gmp_core.Trace
module Latency = Gmp_core.Latency
module Vector_clock = Gmp_causality.Vector_clock

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string
let qtest = QCheck_alcotest.to_alcotest

let compact s = Json.to_compact_string (Obs.Snapshot.to_json s)

(* ---- registry basics ---- *)

let test_counter_gauge () =
  let r = Obs.create () in
  let c = Obs.counter r "c" in
  Obs.inc c;
  Obs.inc ~by:4 c;
  check int "counter accumulates" 5 (Obs.counter_value c);
  check bool "counter is idempotently named" true (Obs.counter r "c" == c);
  let g = Obs.gauge r "g" in
  Obs.set_gauge g 2.5;
  check bool "gauge holds" true (Obs.gauge_value g = 2.5);
  (match Obs.counter r "g" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "name reuse across kinds must raise");
  let s = Obs.snapshot r in
  check bool "snapshot sees counter" true
    (Obs.Snapshot.find s "c" = Some (Obs.Snapshot.Counter 5))

let test_views () =
  let r = Obs.create () in
  let backing = ref 7 in
  Obs.register_view r "v.one" (fun () -> !backing);
  Obs.register_views r ~prefix:"fam" (fun () -> [ ("a", 1); ("b", 2) ]);
  Obs.register_views r ~prefix:"" (fun () -> [ ("bare", 9) ]);
  backing := 8;
  let s = Obs.snapshot r in
  let counter name =
    match Obs.Snapshot.find s name with
    | Some (Obs.Snapshot.Counter v) -> v
    | _ -> Alcotest.failf "missing counter %s" name
  in
  check int "view polled at snapshot time" 8 (counter "v.one");
  check int "prefixed family key" 1 (counter "fam.a");
  check int "empty prefix passes keys through" 9 (counter "bare")

(* ---- histogram bucket edges ---- *)

(* Upper-inclusive bucketing: v lands in the first bucket whose edge is
   >= v, values above the last edge in overflow — checked for arbitrary
   values against a linear scan of the same rule. *)
let prop_bucket_edges =
  let edges = [| 0.1; 1.0; 10.0; 100.0 |] in
  QCheck.Test.make ~name:"histogram bucketing matches the linear-scan rule"
    ~count:500
    QCheck.(float_bound_exclusive 200.0)
    (fun v ->
      let r = Obs.create () in
      let h = Obs.histogram ~buckets:edges r "h" in
      Obs.observe h v;
      let expected =
        let rec scan i =
          if i >= Array.length edges then Array.length edges
          else if v <= edges.(i) then i
          else scan (i + 1)
        in
        scan 0
      in
      match Obs.Snapshot.find (Obs.snapshot r) "h" with
      | Some (Obs.Snapshot.Histogram d) ->
        Array.for_all (fun c -> c >= 0) d.counts
        && Obs.Snapshot.count d = 1
        && d.counts.(expected) = 1
        && d.sum = v
      | _ -> false)

let test_bucket_boundaries () =
  let r = Obs.create () in
  let h = Obs.histogram ~buckets:[| 1.0; 2.0 |] r "h" in
  List.iter (Obs.observe h) [ 1.0; 1.0000001; 2.0; 2.0000001 ];
  match Obs.Snapshot.find (Obs.snapshot r) "h" with
  | Some (Obs.Snapshot.Histogram d) ->
    check bool "exact edge is inclusive, just-above spills over" true
      (d.counts = [| 1; 2; 1 |])
  | _ -> Alcotest.fail "histogram missing"

let test_quantiles () =
  let r = Obs.create () in
  let h = Obs.histogram ~buckets:[| 1.0; 2.0; 4.0 |] r "h" in
  (match Obs.Snapshot.find (Obs.snapshot r) "h" with
  | Some (Obs.Snapshot.Histogram d) ->
    check bool "empty histogram has no quantiles" true
      (Obs.Snapshot.quantile d 0.5 = None)
  | _ -> Alcotest.fail "histogram missing");
  List.iter (Obs.observe h) [ 0.5; 1.5; 1.6; 3.0 ];
  Obs.observe h 100.0;
  match Obs.Snapshot.find (Obs.snapshot r) "h" with
  | Some (Obs.Snapshot.Histogram d) ->
    check bool "p50 is the holding bucket's upper edge" true
      (Obs.Snapshot.quantile d 0.5 = Some 2.0);
    check bool "p99 lands in overflow" true
      (Obs.Snapshot.quantile d 0.99 = Some infinity)
  | _ -> Alcotest.fail "histogram missing"

(* ---- merge laws ---- *)

let snap_of spec =
  (* spec: counters, one gauge, one histogram with a shared layout *)
  let r = Obs.create () in
  List.iter
    (fun (name, v) -> Obs.inc ~by:v (Obs.counter r name))
    spec;
  r

let test_merge_laws () =
  let a =
    let r = snap_of [ ("x", 1); ("only_a", 5) ] in
    Obs.set_gauge (Obs.gauge r "g") 1.0;
    Obs.observe (Obs.histogram ~buckets:[| 1.0; 2.0 |] r "h") 0.5;
    Obs.snapshot r
  in
  let b =
    let r = snap_of [ ("x", 2); ("only_b", 7) ] in
    Obs.set_gauge (Obs.gauge r "g") 3.0;
    Obs.observe (Obs.histogram ~buckets:[| 1.0; 2.0 |] r "h") 1.5;
    Obs.snapshot r
  in
  let c = Obs.snapshot (snap_of [ ("x", 4) ]) in
  let ( + ) = Obs.Snapshot.merge in
  check string "merge commutes" (compact (a + b)) (compact (b + a));
  check string "merge associates"
    (compact (a + b + c))
    (compact (a + (b + c)));
  check string "empty is the unit" (compact a)
    (compact (Obs.Snapshot.merge Obs.Snapshot.empty a));
  let m = a + b + c in
  let counter name =
    match Obs.Snapshot.find m name with
    | Some (Obs.Snapshot.Counter v) -> v
    | _ -> Alcotest.failf "missing counter %s" name
  in
  check int "counters add" 7 (counter "x");
  check int "one-sided keys survive" 5 (counter "only_a");
  check int "one-sided keys survive (right)" 7 (counter "only_b");
  (match Obs.Snapshot.find m "g" with
  | Some (Obs.Snapshot.Gauge v) -> check bool "gauges take max" true (v = 3.0)
  | _ -> Alcotest.fail "gauge missing");
  (match Obs.Snapshot.find m "h" with
  | Some (Obs.Snapshot.Histogram d) ->
    check bool "histogram counts add" true (d.counts = [| 1; 1; 0 |]);
    check bool "sums add" true (d.sum = 2.0)
  | _ -> Alcotest.fail "histogram missing");
  let order_a = List.map fst (Obs.Snapshot.metrics m) in
  check bool "merged snapshot stays name-sorted" true
    (order_a = List.sort compare order_a)

let test_merge_mismatch () =
  let h1 =
    let r = Obs.create () in
    Obs.observe (Obs.histogram ~buckets:[| 1.0 |] r "m") 0.5;
    Obs.snapshot r
  in
  let h2 =
    let r = Obs.create () in
    Obs.observe (Obs.histogram ~buckets:[| 2.0 |] r "m") 0.5;
    Obs.snapshot r
  in
  let c1 = Obs.snapshot (snap_of [ ("m", 1) ]) in
  (match Obs.Snapshot.merge h1 h2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "layout mismatch must raise");
  match Obs.Snapshot.merge h1 c1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must raise"

(* ---- JSON round-trip ---- *)

let test_json_roundtrip () =
  let r = Obs.create () in
  Obs.inc ~by:42 (Obs.counter r "zz.counter");
  Obs.set_gauge (Obs.gauge r "a.gauge") 1.5;
  let h = Obs.histogram r "lat" in
  List.iter (Obs.observe h) [ 0.002; 0.1; 7.0; 9999.0 ];
  let s = Obs.snapshot r in
  match Obs.Snapshot.of_json (Obs.Snapshot.to_json s) with
  | Error m -> Alcotest.failf "of_json failed: %s" m
  | Ok s' -> check string "snapshot survives JSON" (compact s) (compact s')

(* ---- latency derivations on a hand-built trace ---- *)

let p = Pid.make

let build_trace events =
  let trace = Trace.create () in
  let counters = Hashtbl.create 8 in
  List.iter
    (fun (time, owner, kind) ->
      let index =
        1 + Option.value ~default:0 (Hashtbl.find_opt counters owner)
      in
      Hashtbl.replace counters owner index;
      Trace.record trace ~owner ~index ~time
        ~vc:(Vector_clock.of_list [ (owner, index) ])
        kind)
    events;
  trace

let installed ver members = Trace.Installed { ver; view_members = members }

let test_latency_derivations () =
  let trace =
    build_trace
      [ (0.0, p 0, installed 0 [ p 0; p 1; p 2 ]);
        (0.0, p 1, installed 0 [ p 0; p 1; p 2 ]);
        (0.0, p 2, installed 0 [ p 0; p 1; p 2 ]);
        (10.0, p 2, Trace.Crashed);
        (12.5, p 0, Trace.Faulty (p 2));
        (13.0, p 1, Trace.Faulty (p 2));
        (14.0, p 0, installed 1 [ p 0; p 1 ]);
        (16.0, p 1, installed 1 [ p 0; p 1 ]) ]
  in
  let r = Obs.create () in
  Latency.observe r trace;
  let hist name =
    match Obs.Snapshot.find (Obs.snapshot r) name with
    | Some (Obs.Snapshot.Histogram d) -> d
    | _ -> Alcotest.failf "missing histogram %s" name
  in
  let susp = hist Latency.crash_to_first_suspicion in
  check int "one crash, one first-suspicion sample" 1
    (Obs.Snapshot.count susp);
  check bool "first suspicion is the earliest detector" true
    (susp.sum = 2.5);
  let view = hist Latency.crash_to_view_installed in
  check int "both surviving members converge" 2 (Obs.Snapshot.count view);
  check bool "per-member convergence times add up" true
    (view.sum = 4.0 +. 6.0);
  check int "no joins in this trace" 0
    (Obs.Snapshot.count (hist Latency.join_to_installed))

let test_latency_orchestrated_crash () =
  (* A SIGKILLed node logs no Crashed event: the kill time arrives via
     ?crashes, and an in-trace event for the same pid wins over it. *)
  let trace =
    build_trace
      [ (0.0, p 0, installed 0 [ p 0; p 1 ]);
        (0.0, p 1, installed 0 [ p 0; p 1 ]);
        (12.0, p 0, Trace.Faulty (p 1));
        (14.0, p 0, installed 1 [ p 0 ]) ]
  in
  let r = Obs.create () in
  Latency.observe ~crashes:[ (p 1, 10.0) ] r trace;
  let hist name =
    match Obs.Snapshot.find (Obs.snapshot r) name with
    | Some (Obs.Snapshot.Histogram d) -> d
    | _ -> Alcotest.failf "missing histogram %s" name
  in
  check bool "crash instant comes from the orchestrator" true
    ((hist Latency.crash_to_first_suspicion).sum = 2.0);
  check bool "survivor convergence measured from the kill" true
    ((hist Latency.crash_to_view_installed).sum = 4.0)

(* ---- the simulator end of the seam ---- *)

let sim_metrics seed =
  let group = Group.create ~seed ~n:5 () in
  Group.crash_at group 10.0 (p 0);
  Group.run ~until:300.0 group;
  Group.metrics group

let test_sim_same_seed_identical () =
  let a = sim_metrics 11 and b = sim_metrics 11 in
  check string "same seed, byte-identical metrics JSON" (compact a)
    (compact b)

let test_sim_metrics_contents () =
  let m = sim_metrics 11 in
  let hist name =
    match Obs.Snapshot.find m name with
    | Some (Obs.Snapshot.Histogram d) -> d
    | _ -> Alcotest.failf "missing histogram %s" name
  in
  check bool "sim measured the crash's convergence" true
    (Obs.Snapshot.count (hist Latency.crash_to_view_installed) >= 1);
  (match Obs.Snapshot.find m "sim.events_fired" with
  | Some (Obs.Snapshot.Counter v) ->
    check bool "engine counters exposed as views" true (v > 0)
  | _ -> Alcotest.fail "sim.events_fired missing");
  match Obs.Snapshot.find m "msg.heartbeat.sent" with
  | Some (Obs.Snapshot.Counter v) ->
    check bool "stats categories exposed as views" true (v > 0)
  | _ -> Alcotest.fail "msg.heartbeat.sent missing"

let test_sim_arq_rtt () =
  (* The sim ARQ samples clean (never-retransmitted) exchanges into
     arq.rtt on the virtual clock — same metric name and bucket layout the
     live node uses on the wall clock, so the snapshots merge. *)
  let registry = Obs.create () in
  let engine = Gmp_sim.Engine.create () in
  let rng = Gmp_sim.Rng.create 7 in
  let arq =
    Gmp_net.Arq.create ~loss:0.3 ~rto:5.0 ~engine ~rng
      ~delay:(Gmp_net.Delay.uniform ~lo:0.5 ~hi:1.5)
      ~registry ()
  in
  Gmp_net.Arq.set_handler arq (fun ~dst:_ ~src:_ _ -> ());
  for i = 1 to 50 do
    Gmp_net.Arq.send arq ~src:(p 0) ~dst:(p 1) i
  done;
  Gmp_sim.Engine.run engine;
  let s = Obs.snapshot registry in
  (match Obs.Snapshot.find s "arq.rtt" with
  | Some (Obs.Snapshot.Histogram d) ->
    check bool "clean exchanges sampled" true (Obs.Snapshot.count d > 0);
    check bool "retransmitted exchanges excluded (Karn)" true
      (Obs.Snapshot.count d < 50)
  | _ -> Alcotest.fail "arq.rtt missing");
  match Obs.Snapshot.find s "arq.retransmits" with
  | Some (Obs.Snapshot.Counter v) ->
    check bool "loss forced retransmissions" true (v > 0)
  | _ -> Alcotest.fail "arq.retransmits view missing"

(* ---- metrics lines in the live log ---- *)

let test_metrics_line_roundtrip () =
  let path = Filename.temp_file "gmp-obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let trace = Trace.create () in
      let writer = Gmp_live.Trace_io.attach trace ~path in
      let r = Obs.create () in
      Obs.inc ~by:3 (Obs.counter r "arq.retransmits");
      Gmp_live.Trace_io.write_metrics writer ~pid:(p 0) ~at:1.0
        (Obs.snapshot r);
      (* a later, richer line must win *)
      Obs.observe (Obs.histogram r "arq.rtt") 0.05;
      let final = Obs.snapshot r in
      Gmp_live.Trace_io.write_metrics writer ~pid:(p 0) ~at:2.0 final;
      Gmp_live.Trace_io.close writer;
      (match Gmp_live.Trace_io.read_metrics path with
      | None -> Alcotest.fail "metrics line not found"
      | Some s ->
        check string "last metrics line round-trips" (compact final)
          (compact s));
      check bool "event reader skips metrics lines" true
        (Gmp_live.Trace_io.read_file path = Ok []))

let suite =
  [ Alcotest.test_case "counter and gauge basics" `Quick test_counter_gauge;
    Alcotest.test_case "views poll at snapshot time" `Quick test_views;
    qtest prop_bucket_edges;
    Alcotest.test_case "bucket edges are upper-inclusive" `Quick
      test_bucket_boundaries;
    Alcotest.test_case "quantile semantics" `Quick test_quantiles;
    Alcotest.test_case "merge laws" `Quick test_merge_laws;
    Alcotest.test_case "merge rejects mismatches" `Quick test_merge_mismatch;
    Alcotest.test_case "snapshot JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "latency derivations" `Quick test_latency_derivations;
    Alcotest.test_case "orchestrated crash times" `Quick
      test_latency_orchestrated_crash;
    Alcotest.test_case "sim same-seed metrics are byte-identical" `Quick
      test_sim_same_seed_identical;
    Alcotest.test_case "sim metrics contents" `Quick test_sim_metrics_contents;
    Alcotest.test_case "sim ARQ samples rtt under Karn's rule" `Quick
      test_sim_arq_rtt;
    Alcotest.test_case "metrics lines round-trip the log" `Quick
      test_metrics_line_roundtrip ]
