(* The adversarial schedule search: must find nothing against the final
   algorithm, and must rediscover the known divergence when the majority
   requirement is removed (otherwise the search proves nothing). *)

open Gmp_core
module Group = Gmp_runtime.Group

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let test_search_clean_on_final_algorithm () =
  let outcome = Gmp_workload.Fuzz.search ~n:5 ~iterations:120 ~seed:11 () in
  (match outcome.Gmp_workload.Fuzz.counterexample with
   | None -> ()
   | Some (schedule, violations) ->
     Alcotest.failf "fuzzer broke the protocol: %a -> %d violations"
       Gmp_workload.Fuzz.pp_schedule schedule
       (List.length violations));
  check bool "ran" true (outcome.Gmp_workload.Fuzz.iterations_run > 0)

let test_search_finds_basic_config_hole () =
  (* Without the majority requirement a partitioned coordinator can commit
     exclusions concurrently with the majority side's reconfiguration:
     GMP-2/3 must break, and the fuzzer must find it. *)
  let outcome =
    Gmp_workload.Fuzz.search ~config:Config.basic ~n:5 ~iterations:600
      ~seed:12 ()
  in
  match outcome.Gmp_workload.Fuzz.counterexample with
  | Some (_, violations) -> check bool "found" true (violations <> [])
  | None ->
    Alcotest.fail
      "fuzzer failed to rediscover the no-majority divergence (600 iterations)"

let test_run_schedule_deterministic () =
  let rng = Gmp_sim.Rng.create 3 in
  let schedule = Gmp_workload.Fuzz.random_schedule rng ~n:5 in
  let v1, g1 = Gmp_workload.Fuzz.run_schedule ~seed:7 schedule in
  let v2, g2 = Gmp_workload.Fuzz.run_schedule ~seed:7 schedule in
  check bool "same verdicts" true (List.length v1 = List.length v2);
  check bool "same messages" true
    (Group.protocol_messages g1 = Group.protocol_messages g2)

let test_shrinking_minimizes () =
  (* The no-majority divergence needs exactly one action (a partition that
     isolates the coordinator with a minority); shrinking must find a
     schedule of that size, and it must still violate. *)
  let outcome =
    Gmp_workload.Fuzz.search ~config:Config.basic ~n:5 ~iterations:600
      ~seed:12 ()
  in
  match outcome.Gmp_workload.Fuzz.counterexample with
  | None -> Alcotest.fail "no counterexample to shrink"
  | Some (schedule, violations) ->
    check bool "still violating" true (violations <> []);
    check bool
      (Fmt.str "minimal (got %d actions: %a)"
         (List.length schedule.Gmp_workload.Fuzz.actions)
         Gmp_workload.Fuzz.pp_schedule schedule)
      true
      (List.length schedule.Gmp_workload.Fuzz.actions <= 2)

let test_shrink_identity_on_clean () =
  let rng = Gmp_sim.Rng.create 9 in
  let s = Gmp_workload.Fuzz.random_schedule rng ~n:4 in
  (* With the final algorithm this schedule is (almost surely) clean;
     shrink must be the identity then. *)
  let v, _ = Gmp_workload.Fuzz.run_schedule ~seed:2 s in
  if v = [] then begin
    let s' = Gmp_workload.Fuzz.shrink ~seed:2 s in
    check int "unchanged" (List.length s.Gmp_workload.Fuzz.actions)
      (List.length s'.Gmp_workload.Fuzz.actions)
  end

let test_mutate_stays_well_formed () =
  let rng = Gmp_sim.Rng.create 4 in
  let s = ref (Gmp_workload.Fuzz.random_schedule rng ~n:6) in
  for _ = 1 to 200 do
    s := Gmp_workload.Fuzz.mutate rng !s;
    check bool "n preserved" true (!s.Gmp_workload.Fuzz.sched_n = 6);
    (* Every mutated schedule must still run without raising. *)
    if Gmp_sim.Rng.int rng 20 = 0 then
      ignore (Gmp_workload.Fuzz.run_schedule ~seed:1 !s)
  done

let suite =
  [ Alcotest.test_case "fuzz: final algorithm survives" `Slow
      test_search_clean_on_final_algorithm;
    Alcotest.test_case "fuzz: rediscovers the no-majority hole" `Slow
      test_search_finds_basic_config_hole;
    Alcotest.test_case "fuzz: schedules run deterministically" `Quick
      test_run_schedule_deterministic;
    Alcotest.test_case "fuzz: counterexamples shrink" `Slow
      test_shrinking_minimizes;
    Alcotest.test_case "fuzz: shrink is identity on clean schedules" `Quick
      test_shrink_identity_on_clean;
    Alcotest.test_case "fuzz: mutation well-formedness" `Slow
      test_mutate_stays_well_formed ]
