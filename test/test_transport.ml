(* The transport subsystem: endpoints and CLI specs (pure parsing), the
   UDP transport's wire compatibility (a node must put exactly the codec's
   frame bytes on the wire - no envelope the pre-seam runtime didn't
   have), and the TCP transport end-to-end: framed exchange over real
   streams, lazy reconnection with backoff against a peer that isn't up
   yet, and half-open detection when an established stream stops
   draining. *)

open Gmp_base
open Gmp_core
open Gmp_net
open Gmp_live

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let p ?(i = 0) id = Pid.make ~incarnation:i id

(* ---- endpoints ---- *)

let test_endpoint_parse () =
  let ok s = match Endpoint.parse s with Ok e -> e | Error m -> Alcotest.fail m in
  let err s = match Endpoint.parse s with Ok _ -> false | Error _ -> true in
  let e = ok "10.0.0.7:4000" in
  check string "host" "10.0.0.7" (Endpoint.host e);
  check int "port" 4000 (Endpoint.port e);
  check string "round-trip" "10.0.0.7:4000" (Endpoint.to_string e);
  check string "dns name accepted" "node-b.example.org"
    (Endpoint.host (ok "node-b.example.org:9"));
  check bool "missing port rejected" true (err "10.0.0.7");
  check bool "empty host rejected" true (err ":4000");
  check bool "bad port rejected" true (err "h:70000");
  check bool "non-numeric port rejected" true (err "h:http");
  check bool "hostile host charset rejected" true (err "a b:1");
  check bool "leading dot rejected" true (err ".example.com:1");
  check bool "bare port means loopback" true
    (match Endpoint.parse_or_port "4000" with
    | Ok e -> Endpoint.host e = "127.0.0.1" && Endpoint.port e = 4000
    | Error _ -> false);
  check bool "with_port keeps host" true
    (Endpoint.equal
       (Endpoint.with_port (ok "h0:1") 2)
       (ok "h0:2"))

let test_endpoint_make_validates () =
  let rejects f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  check bool "empty host" true (rejects (fun () -> Endpoint.make ~host:"" ~port:1));
  check bool "negative port" true
    (rejects (fun () -> Endpoint.make ~host:"h" ~port:(-1)));
  check bool "port 65536" true
    (rejects (fun () -> Endpoint.make ~host:"h" ~port:65536));
  check bool "port 0 allowed (ephemeral)" false
    (rejects (fun () -> Endpoint.make ~host:"h" ~port:0))

(* ---- CLI specs ---- *)

let test_spec_peers () =
  (match Spec.parse_peer "p3:4000" with
  | Ok (pid, ep) ->
    check string "pid" "p3" (Pid.to_string pid);
    check string "loopback default" "127.0.0.1:4000" (Endpoint.to_string ep)
  | Error m -> Alcotest.fail m);
  (match Spec.parse_peer "p5#1:10.0.0.2:4001" with
  | Ok (pid, ep) ->
    check string "incarnated pid" "p5#1" (Pid.to_string pid);
    check string "host:port" "10.0.0.2:4001" (Endpoint.to_string ep)
  | Error m -> Alcotest.fail m);
  check bool "garbage pid rejected" true
    (Result.is_error (Spec.parse_peer "zebra:4000"));
  check bool "missing port rejected" true (Result.is_error (Spec.parse_peer "p1"));
  match Spec.parse_peers "p0:4000, p1:10.0.0.2:4001" with
  | Ok peers -> check int "two peers" 2 (List.length peers)
  | Error m -> Alcotest.fail m

let test_spec_netem_action () =
  (* Satellite: the whole timeline spec validates at parse time - unknown
     keys, malformed floats and out-of-range values die with messages
     naming the offender, before any node would spawn. *)
  (match Spec.parse_netem_action "4:all:loss=0.2,latency=0.01" with
  | Ok { Spec.at_time; target; spec } ->
    check (Alcotest.float 1e-9) "time" 4.0 at_time;
    check bool "all targets" true (target = None);
    check (Alcotest.float 1e-9) "loss" 0.2 spec.Codec.n_loss;
    check (Alcotest.float 1e-9) "latency" 0.01 spec.Codec.n_latency
  | Error m -> Alcotest.fail m);
  (match Spec.parse_netem_action "1.5:p2:peer=p0,dup=1" with
  | Ok { Spec.target = Some t; spec = { Codec.peer = Some peer; n_dup; _ }; _ }
    ->
    check string "target" "p2" (Pid.to_string t);
    check string "link peer" "p0" (Pid.to_string peer);
    check (Alcotest.float 1e-9) "dup=1 allowed (inclusive)" 1.0 n_dup
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error m -> Alcotest.fail m);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  let err_containing s frag =
    match Spec.parse_netem_action s with
    | Ok _ -> Alcotest.failf "%S accepted" s
    | Error m ->
      check bool
        (Printf.sprintf "%S rejected mentioning %S (got %S)" s frag m)
        true (contains m frag)
  in
  err_containing "4:all:losss=0.2" "unknown netem key";
  err_containing "4:all:loss=0.2x" "bad value";
  err_containing "4:all:loss=1.0" "out of range";
  err_containing "4:all:loss=nan" "out of range";
  err_containing "4:all:latency=-1" "out of range";
  err_containing "4:all:peer=zebra" "pid";
  err_containing "4:all:" "at least one";
  err_containing "-1:all:loss=0.1" "time";
  err_containing "4:zebra:loss=0.1" "pid";
  err_containing "loss=0.1" "malformed netem action"

(* ---- UDP: wire bytes are exactly the codec's frame bytes ---- *)

let app n = Wire.App { app_ver = 0; payload = Codec.Blob (string_of_int n) }
let category = Gmp_platform.Stats.intern "test"

let test_udp_wire_byte_identity () =
  (* A raw socket plays the peer: whatever the node's UDP transport puts
     on the wire must be byte-identical to [Codec.encode_frame] of the
     logical frame - the seam added no envelope, so pre-seam nodes and
     golden frame files still speak this wire. *)
  let raw = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind raw (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let raw_port =
    match Unix.getsockname raw with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> assert false
  in
  let dst = p 9 in
  let node =
    Node.create
      ~peers:[ (dst, Endpoint.loopback ~port:raw_port) ]
      ~pid:(p 0)
      ~bind:(Endpoint.loopback ~port:0) ()
  in
  let plat = Node.platform node in
  (* send is synchronous on the UDP path: the datagram leaves here. *)
  plat.Gmp_platform.Platform.send ~dst ~category (app 7);
  let expected =
    Codec.encode_frame
      (Codec.Data
         { src = p 0; chan_seq = 0; vc = Node.clock node; msg = app 7 })
  in
  Unix.setsockopt_float raw Unix.SO_RCVTIMEO 5.0;
  let buf = Bytes.create 65536 in
  let n, _ = Unix.recvfrom raw buf 0 (Bytes.length buf) [] in
  check string "wire bytes = Codec.encode_frame" expected
    (Bytes.sub_string buf 0 n);
  check string "transport kind" "udp" (Node.transport_kind node);
  check bool "datagrams_sent counted" true
    (List.assoc "transport.datagrams_sent" (Node.transport_counters node) >= 1);
  Unix.close raw;
  Node.close node

(* ---- TCP: framed exchange end-to-end ---- *)

let payload_of = function
  | Wire.App { payload = Codec.Blob s; _ } -> int_of_string s
  | m -> Alcotest.failf "unexpected message %a" Wire.pp m

let test_tcp_fifo_exchange () =
  (* Two real nodes over TCP streams: every message FIFO exactly-once,
     the shutdown travelling over the TCP control plane. *)
  let n = 40 in
  let rpid = p 1 and spid = p 0 in
  let recv =
    Node.create ~transport:Transport.Tcp ~rto:0.05 ~pid:rpid
      ~bind:(Endpoint.loopback ~port:0) ()
  in
  let send =
    Node.create ~transport:Transport.Tcp
      ~peers:[ (rpid, Node.endpoint recv) ]
      ~rto:0.05 ~pid:spid
      ~bind:(Endpoint.loopback ~port:0) ()
  in
  let got = ref [] in
  let rplat = Node.platform recv in
  rplat.Gmp_platform.Platform.set_receiver (fun ~src:_ msg ->
      got := payload_of msg :: !got);
  let splat = Node.platform send in
  for i = 0 to n - 1 do
    splat.Gmp_platform.Platform.send ~dst:rpid ~category (app i)
  done;
  splat.Gmp_platform.Platform.every ~interval:0.05 (fun () ->
      if Node.idle send then splat.Gmp_platform.Platform.halt ());
  let rd = Domain.spawn (fun () -> Node.run ~until:20.0 recv) in
  let sd = Domain.spawn (fun () -> Node.run ~until:20.0 send) in
  Domain.join sd;
  let ctrl = Ctrl.create ~transport:Transport.Tcp () in
  check bool "shutdown acked over tcp" true
    (Ctrl.send ctrl ~attempts:100 ~interval:0.05 ~port:(Node.port recv)
       Codec.Shutdown);
  Ctrl.close ctrl;
  Domain.join rd;
  check (Alcotest.list int) "FIFO exactly-once over streams"
    (List.init n Fun.id) (List.rev !got);
  let counter node name = List.assoc name (Node.transport_counters node) in
  check string "kind" "tcp" (Node.transport_kind send);
  check bool "sender connected" true (counter send "transport.connects" >= 1);
  check bool "sender framed traffic out" true (counter send "transport.frames_sent" >= n);
  check bool "receiver accepted" true (counter recv "transport.accepts" >= 1);
  check bool "receiver framed traffic in" true
    (counter recv "transport.frames_received" >= n);
  Node.close send;
  Node.close recv

let alloc_tcp_port () =
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt s Unix.SO_REUSEADDR true;
  Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname s with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> assert false
  in
  Unix.close s;
  port

let test_tcp_reconnect_with_backoff () =
  (* The peer is not up yet: connects fail, the route backs off, and the
     ARQ's retransmissions keep probing. When the peer finally binds the
     very port, a reconnect succeeds and the queued message lands. *)
  let rpid = p 1 in
  let late_port = alloc_tcp_port () in
  let send =
    Node.create ~transport:Transport.Tcp
      ~peers:[ (rpid, Endpoint.loopback ~port:late_port) ]
      ~tcp_config:{ Transport.default_tcp with backoff_min = 0.05 }
      ~rto:0.05 ~pid:(p 0)
      ~bind:(Endpoint.loopback ~port:0) ()
  in
  let splat = Node.platform send in
  splat.Gmp_platform.Platform.send ~dst:rpid ~category (app 42);
  (* A first stretch alone: nothing is listening on late_port. *)
  Node.run ~until:1.0 send;
  let counter node name = List.assoc name (Node.transport_counters node) in
  check bool "connects were attempted" true (counter send "transport.connects" >= 2);
  check bool "attempts beyond the first count as reconnects" true
    (counter send "transport.reconnects" >= 1);
  check bool "each failed before establishing" true
    (counter send "transport.conn_failures" >= 1);
  (* Now the peer appears on exactly that endpoint. *)
  let recv =
    Node.create ~transport:Transport.Tcp ~rto:0.05 ~pid:rpid
      ~bind:(Endpoint.loopback ~port:late_port) ()
  in
  let got = ref [] in
  let rplat = Node.platform recv in
  rplat.Gmp_platform.Platform.set_receiver (fun ~src:_ msg ->
      got := payload_of msg :: !got);
  splat.Gmp_platform.Platform.every ~interval:0.05 (fun () ->
      if Node.idle send then splat.Gmp_platform.Platform.halt ());
  let rd = Domain.spawn (fun () -> Node.run ~until:15.0 recv) in
  let sd = Domain.spawn (fun () -> Node.run ~until:15.0 send) in
  Domain.join sd;
  let ctrl = Ctrl.create ~transport:Transport.Tcp () in
  check bool "shutdown acked" true
    (Ctrl.send ctrl ~attempts:100 ~interval:0.05 ~port:late_port Codec.Shutdown);
  Ctrl.close ctrl;
  Domain.join rd;
  check (Alcotest.list int) "the retransmitted message landed once" [ 42 ]
    (List.rev !got);
  Node.close send;
  Node.close recv

let test_tcp_half_open_detection () =
  (* An established stream whose peer accepts but never reads: once the
     kernel buffers fill, the outbox stalls, and the stalled-progress
     check must kill the connection instead of trusting TCP's
     minutes-long patience. *)
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  (try Unix.setsockopt_int listener Unix.SO_RCVBUF 4096
   with Unix.Unix_error _ -> ());
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listener 4;
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> assert false
  in
  let rpid = p 1 in
  let send =
    Node.create ~transport:Transport.Tcp
      ~peers:[ (rpid, Endpoint.loopback ~port) ]
      ~tcp_config:
        { Transport.default_tcp with
          half_open_timeout = 0.4;
          backoff_min = 0.05;
          sndbuf = Some 4096 }
      ~rto:0.1 ~pid:(p 0)
      ~bind:(Endpoint.loopback ~port:0) ()
  in
  (* Big payloads fill the shrunken buffers in a few frames; the ARQ's
     retransmissions keep refilling the outbox after each kill. *)
  let big = Wire.App { app_ver = 0; payload = Codec.Blob (String.make 16000 'x') } in
  let splat = Node.platform send in
  let accepted = ref [] in
  let accept_pending () =
    (* Accept whatever the node has connected (never read from it). *)
    match Unix.select [ listener ] [] [] 0.0 with
    | [ _ ], _, _ ->
      let fd, _ = Unix.accept listener in
      accepted := fd :: !accepted
    | _ -> ()
  in
  for i = 0 to 4 do
    ignore i;
    splat.Gmp_platform.Platform.send ~dst:rpid ~category big
  done;
  let deadline = Unix.gettimeofday () +. 5.0 in
  let counter name = List.assoc name (Node.transport_counters send) in
  while counter "transport.half_open_drops" = 0 && Unix.gettimeofday () < deadline do
    accept_pending ();
    Node.run ~until:0.1 send
  done;
  check bool "half-open stream was killed" true (counter "transport.half_open_drops" >= 1);
  Node.close send;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !accepted;
  Unix.close listener

let suite =
  [ Alcotest.test_case "endpoint: parse & print" `Quick test_endpoint_parse;
    Alcotest.test_case "endpoint: make validates" `Quick
      test_endpoint_make_validates;
    Alcotest.test_case "spec: peers" `Quick test_spec_peers;
    Alcotest.test_case "spec: netem timeline validates at parse time" `Quick
      test_spec_netem_action;
    Alcotest.test_case "udp: wire bytes identical to codec frames" `Quick
      test_udp_wire_byte_identity;
    Alcotest.test_case "tcp: FIFO exactly-once over streams" `Slow
      test_tcp_fifo_exchange;
    Alcotest.test_case "tcp: lazy reconnect with backoff" `Slow
      test_tcp_reconnect_with_backoff;
    Alcotest.test_case "tcp: half-open stream detection" `Slow
      test_tcp_half_open_detection ]
