(* Test runner: all suites. *)

let () =
  Alcotest.run "gmp"
    [ ("sim", Test_sim.suite);
      ("net", Test_net.suite);
      ("arq", Test_arq.suite);
      ("causality", Test_causality.suite);
      ("runtime", Test_runtime.suite);
      ("misc", Test_misc.suite);
      ("view", Test_view.suite);
      ("export", Test_export.suite);
      ("detector", Test_detector.suite);
      ("member", Test_member.suite);
      ("member-edge", Test_member_edge.suite);
      ("partitionable", Test_partitionable.suite);
      ("checker", Test_checker.suite);
      ("roster", Test_roster.suite);
      ("vsync", Test_vsync.suite);
      ("baselines", Test_baselines.suite);
      ("fuzz", Test_fuzz.suite);
      ("explore", Test_explore.suite);
      ("epistemic", Test_epistemic.suite);
      ("knowledge", Test_knowledge.suite);
      ("obs", Test_obs.suite);
      ("codec", Test_codec.suite);
      ("transport", Test_transport.suite);
      ("netem", Test_netem.suite);
      ("live-trace", Test_live_trace.suite);
      ("scale", Test_scale.suite);
      ("indexes", Test_indexes.suite);
      ("determinism", Test_determinism.suite);
      ("snapshot", Test_snapshot.suite);
      ("properties", Test_props.suite) ]
