(* The shared fault vocabulary and its two consumers: Netem model
   sampling (pure, seeded), the sim's Lossy medium under reorder, and the
   live runtime end-to-end - two real UDP nodes exchanging frames through
   injected loss/duplication/reordering must still deliver FIFO
   exactly-once, the acked control plane must survive the loss it
   configures, and a three-member live group under sustained faults must
   produce a checker-clean trace. *)

open Gmp_base
open Gmp_core
open Gmp_net
open Gmp_live

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let p ?(i = 0) id = Pid.make ~incarnation:i id

(* ---- the model itself ---- *)

let test_validation () =
  let rejects f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  check bool "loss = 1 rejected" true (rejects (fun () -> Netem.make ~loss:1.0 ()));
  check bool "negative loss rejected" true
    (rejects (fun () -> Netem.make ~loss:(-0.1) ()));
  check bool "dup > 1 rejected" true
    (rejects (fun () -> Netem.make ~duplicate:1.5 ()));
  check bool "reorder > 1 rejected" true
    (rejects (fun () -> Netem.make ~reorder:1.01 ()));
  check bool "negative latency rejected" true
    (rejects (fun () -> Netem.of_latency (-0.5)));
  check bool "valid model accepted" true
    (not (rejects (fun () -> Netem.of_latency ~loss:0.5 ~jitter:0.01 0.02)))

let test_none_is_passthrough () =
  let rng = Gmp_sim.Rng.create 7 in
  for _ = 1 to 100 do
    match Netem.sample Netem.none rng with
    | Netem.Deliver { delay = 0.0; dup_delay = None; held = false } -> ()
    | _ -> Alcotest.fail "none must deliver immediately, once, in order"
  done;
  check bool "is_none" true (Netem.is_none Netem.none);
  check bool "lossy model is not none" false
    (Netem.is_none (Netem.make ~loss:0.1 ()))

let test_determinism () =
  (* Same model, same seed: identical verdict streams. *)
  let model = Netem.of_latency ~loss:0.3 ~duplicate:0.2 ~reorder:0.2 ~jitter:0.01 0.02 in
  let stream seed =
    let rng = Gmp_sim.Rng.create seed in
    List.init 500 (fun _ ->
        match Netem.sample model rng with
        | Netem.Drop -> "drop"
        | Netem.Deliver { delay; dup_delay; held } ->
          Printf.sprintf "%h/%s/%b" delay
            (match dup_delay with None -> "-" | Some d -> Printf.sprintf "%h" d)
            held)
  in
  check (Alcotest.list Alcotest.string) "replay" (stream 42) (stream 42);
  check bool "different seed, different stream" true (stream 42 <> stream 43)

let test_loss_statistics () =
  let model = Netem.make ~loss:0.3 () in
  let rng = Gmp_sim.Rng.create 11 in
  let drops = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    match Netem.sample model rng with
    | Netem.Drop -> incr drops
    | Netem.Deliver _ -> ()
  done;
  let rate = float_of_int !drops /. float_of_int n in
  check bool
    (Printf.sprintf "drop rate %.3f within [0.27,0.33]" rate)
    true
    (rate > 0.27 && rate < 0.33)

let test_reorder_holds_past_base () =
  (* A held copy must land strictly after any same-instant follower: with
     constant latency L the held delay is 3L (base + extra + mean), so any
     frame sent within 2L after it overtakes. *)
  let model = Netem.of_latency ~reorder:1.0 0.1 in
  let rng = Gmp_sim.Rng.create 5 in
  for _ = 1 to 50 do
    match Netem.sample model rng with
    | Netem.Deliver { delay; held = true; _ } ->
      check (Alcotest.float 1e-9) "held delay" 0.3 delay
    | _ -> Alcotest.fail "reorder=1 must hold every delivery"
  done

let test_link_seed_distinguishes_links () =
  let s self peer = Netem.link_seed ~seed:1 ~self ~peer in
  check bool "direction matters" true (s (p 0) (p 1) <> s (p 1) (p 0));
  check bool "peer matters" true (s (p 0) (p 1) <> s (p 0) (p 2));
  check bool "incarnation matters" true (s (p 0) (p 1) <> s (p 0) (p ~i:1 1));
  check bool "seed matters" true
    (Netem.link_seed ~seed:1 ~self:(p 0) ~peer:(p 1)
    <> Netem.link_seed ~seed:2 ~self:(p 0) ~peer:(p 1));
  check int "deterministic" (s (p 0) (p 1)) (s (p 0) (p 1))

(* ---- the sim medium under reorder ---- *)

let test_lossy_reorder_breaks_fifo () =
  (* With reorder on, a FIFO link may deliver out of order - the hostile
     medium the alternating-bit ARQ is provably unsound against. *)
  let engine = Gmp_sim.Engine.create () in
  let rng = Gmp_sim.Rng.create 3 in
  let link =
    Lossy.of_model ~engine ~rng
      (Netem.of_latency ~reorder:0.3 ~jitter:0.005 0.01)
  in
  let delivered = ref [] in
  Lossy.set_handler link (fun ~dst:_ ~src:_ n -> delivered := n :: !delivered);
  for n = 1 to 200 do
    Lossy.send link ~src:(p 0) ~dst:(p 1) n
  done;
  Gmp_sim.Engine.run engine;
  let order = List.rev !delivered in
  check int "everything arrives (no loss configured)" 200 (List.length order);
  check bool "but not in order" true (order <> List.sort compare order);
  check bool "reordered counter moved" true (Lossy.datagrams_reordered link > 0);
  check int "model accessor round-trips reorder" 200 (Lossy.datagrams_sent link)

(* ---- live: two real nodes through the weather ---- *)

let app n = Wire.App { app_ver = 0; payload = Codec.Blob (string_of_int n) }

let payload_of = function
  | Wire.App { payload = Codec.Blob s; _ } -> int_of_string s
  | m -> Alcotest.failf "unexpected message %a" Wire.pp m

let category = Gmp_platform.Stats.intern "test"

let test_live_fifo_exactly_once () =
  (* Both directions of a two-node exchange run through loss + duplication
     + reordering; go-back-N with backoff must still hand the receiver the
     exact sequence 0..n-1, once each, in order. *)
  let n = 40 in
  let weather = Netem.of_latency ~loss:0.2 ~duplicate:0.2 ~reorder:0.3 ~jitter:0.01 0.01 in
  let rpid = p 1 and spid = p 0 in
  let recv =
    Node.create ~rto:0.05 ~netem:weather ~netem_seed:7 ~pid:rpid
      ~bind:(Endpoint.loopback ~port:0) ()
  in
  let send =
    Node.create
      ~peers:[ (rpid, Node.endpoint recv) ]
      ~rto:0.05 ~netem:weather ~netem_seed:8 ~pid:spid
      ~bind:(Endpoint.loopback ~port:0) ()
  in
  let got = ref [] in
  let rplat = Node.platform recv in
  rplat.Gmp_platform.Platform.set_receiver (fun ~src:_ msg ->
      got := payload_of msg :: !got);
  let splat = Node.platform send in
  for i = 0 to n - 1 do
    splat.Gmp_platform.Platform.send ~dst:rpid ~category (app i)
  done;
  (* The sender parks itself once every frame is acked (which implies the
     receiver delivered all of them); the receiver is then told to stop
     over the acked control plane - through its own injected loss.
     [until] is only the deadman bound. *)
  splat.Gmp_platform.Platform.every ~interval:0.05 (fun () ->
      if Node.idle send then splat.Gmp_platform.Platform.halt ());
  let rd = Domain.spawn (fun () -> Node.run ~until:20.0 recv) in
  let sd = Domain.spawn (fun () -> Node.run ~until:20.0 send) in
  Domain.join sd;
  let ctrl = Ctrl.create () in
  check bool "shutdown acked through the loss" true
    (Ctrl.send ctrl ~attempts:100 ~interval:0.03 ~port:(Node.port recv)
       Codec.Shutdown);
  Ctrl.close ctrl;
  Domain.join rd;
  check (Alcotest.list int) "FIFO exactly-once through the weather"
    (List.init n Fun.id) (List.rev !got);
  let counter node name = List.assoc name (Node.counters node) in
  check bool "loss actually happened" true (counter recv "netem.dropped" > 0);
  check bool "retransmission engaged" true (counter send "arq.retransmits" > 0);
  check bool "sender paid more than one round" true
    (counter send "arq.retransmit_rounds" > 0);
  check bool "duplicates were suppressed, not delivered" true
    (counter recv "arq.dups_suppressed" > 0 || counter recv "netem.duplicated" = 0);
  Node.close send;
  Node.close recv

let test_backoff_caps_retransmit_storm () =
  (* A sender facing a black hole: with exponential backoff the number of
     retransmit rounds in T seconds is O(log (T/rto)), not T/rto. *)
  let dead_port =
    (* Bind-and-release: a loopback port with nobody behind it. *)
    let s = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
    Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let port =
      match Unix.getsockname s with
      | Unix.ADDR_INET (_, port) -> port
      | _ -> assert false
    in
    Unix.close s;
    port
  in
  let send =
    Node.create
      ~peers:[ (p 9, Endpoint.loopback ~port:dead_port) ]
      ~rto:0.05 ~pid:(p 0)
      ~bind:(Endpoint.loopback ~port:0) ()
  in
  let splat = Node.platform send in
  splat.Gmp_platform.Platform.send ~dst:(p 9) ~category (app 0);
  Node.run ~until:3.0 send;
  let rounds = List.assoc "arq.retransmit_rounds" (Node.counters send) in
  (* Fixed rto would fire ~60 rounds in 3 s; the doubling schedule
     0.05,0.1,...,0.8 (cap 16x) admits at most ~10. *)
  check bool
    (Printf.sprintf "backoff engaged (%d rounds, want 3..12)" rounds)
    true
    (rounds >= 3 && rounds <= 12);
  Node.close send

let test_ctrl_survives_loss () =
  (* Satellite: a blackhole command must land despite 50% loss on the
     control plane itself - the ack+retry loop is what carries it. *)
  let node =
    Node.create
      ~netem:(Netem.make ~loss:0.5 ())
      ~netem_seed:1 ~pid:(p 0)
      ~bind:(Endpoint.loopback ~port:0) ()
  in
  let port = Node.port node in
  let d = Domain.spawn (fun () -> Node.run ~until:30.0 node) in
  let ctrl = Ctrl.create () in
  let sent cmd = Ctrl.send ctrl ~attempts:100 ~interval:0.03 ~port cmd in
  (* Several round-trips so the seeded loss provably bites at least one
     frame along the way. *)
  check bool "blackhole acked" true (sent (Codec.Blackhole (p 9)));
  check bool "unblackhole acked" true (sent (Codec.Unblackhole (p 9)));
  check bool "blackhole again acked" true (sent (Codec.Blackhole (p 8)));
  check bool "netem retune acked" true
    (sent
       (Codec.Set_netem
          { peer = None;
            n_loss = 0.5;
            n_latency = 0.0;
            n_jitter = 0.0;
            n_dup = 0.0;
            n_reorder = 0.0 }));
  check bool "shutdown acked" true (sent Codec.Shutdown);
  Domain.join d;
  Ctrl.close ctrl;
  check bool "command applied" true (Pid.Set.mem (p 8) (Node.blackholed node));
  check bool "earlier command undone" false
    (Pid.Set.mem (p 9) (Node.blackholed node));
  check bool "the control plane really was lossy" true
    (List.assoc "netem.dropped" (Node.counters node) > 0);
  Node.close node

let test_get_metrics_survives_loss () =
  (* The metrics scrape rides the same retry loop as commands: the
     Metrics reply's token match is the ack, so a snapshot must come back
     through 50% loss, parse as a registry snapshot, and carry the
     canonical counter names. *)
  let node =
    Node.create
      ~netem:(Netem.make ~loss:0.5 ())
      ~netem_seed:1 ~pid:(p 0)
      ~bind:(Endpoint.loopback ~port:0) ()
  in
  let port = Node.port node in
  let d = Domain.spawn (fun () -> Node.run ~until:30.0 node) in
  let ctrl = Ctrl.create () in
  let payload = Ctrl.query ctrl ~attempts:100 ~interval:0.03 ~port in
  check bool "snapshot came back through the loss" true (payload <> None);
  (match payload with
  | None -> ()
  | Some text -> (
    match Gmp_base.Json.of_string text with
    | Error m -> Alcotest.failf "scrape payload is not JSON: %s" m
    | Ok j -> (
      match Gmp_obs.Obs.Snapshot.of_json j with
      | Error m -> Alcotest.failf "scrape payload is not a snapshot: %s" m
      | Ok snap ->
        check bool "canonical counters present" true
          (match Gmp_obs.Obs.Snapshot.find snap "arq.data_frames_sent" with
          | Some (Gmp_obs.Obs.Snapshot.Counter _) -> true
          | _ -> false))));
  check bool "shutdown acked" true
    (Ctrl.send ctrl ~attempts:100 ~interval:0.03 ~port Codec.Shutdown);
  Domain.join d;
  Ctrl.close ctrl;
  Node.close node

(* ---- live: a three-member group through the weather ---- *)

let test_live_group_checker_clean () =
  (* Three real members over UDP with loss+dup+reorder on every link: the
     reassembled trace must satisfy the checker's safety properties and
     every member must have installed the initial view. *)
  let initial = Pid.group 3 in
  let weather = Netem.of_latency ~loss:0.1 ~duplicate:0.05 ~reorder:0.1 ~jitter:0.01 0.02 in
  let nodes =
    List.map
      (fun pid ->
        ( pid,
          Node.create ~rto:0.1 ~netem:weather ~netem_seed:(Pid.id pid) ~pid
            ~bind:(Endpoint.loopback ~port:0) () ))
      initial
  in
  List.iter
    (fun (pid, node) ->
      List.iter
        (fun (peer, peer_node) ->
          if not (Pid.equal pid peer) then
            Node.add_peer node peer (Node.endpoint peer_node))
        nodes)
    nodes;
  let config =
    { Config.default with heartbeat_interval = 0.3; heartbeat_timeout = 1.5 }
  in
  let members =
    List.map
      (fun (pid, node) ->
        let trace = Trace.create () in
        ignore
          (Member.create ~node:(Node.platform node) ~trace ~config ~initial ()
            : Member.t);
        (pid, node, trace))
      nodes
  in
  let domains =
    List.map
      (fun (_, node, _) -> Domain.spawn (fun () -> Node.run ~until:4.0 node))
      members
  in
  List.iter Domain.join domains;
  List.iter (fun (_, node, _) -> Node.close node) members;
  let trace =
    Trace_io.reassemble
      (List.map (fun (_, _, trace) -> Trace.events trace) members)
  in
  (match Checker.check_safety trace ~initial with
  | [] -> ()
  | vs ->
    Alcotest.failf "violations under injected faults: %a"
      Fmt.(list ~sep:(any "; ") Checker.pp_violation)
      vs);
  List.iter
    (fun (pid, _, trace) ->
      let installed =
        List.exists
          (fun (e : Trace.event) ->
            Pid.equal e.owner pid
            && match e.kind with Trace.Installed _ -> true | _ -> false)
          (Trace.events trace)
      in
      check bool
        (Printf.sprintf "%s installed a view" (Pid.to_string pid))
        true installed)
    members

let suite =
  [ Alcotest.test_case "model: validation" `Quick test_validation;
    Alcotest.test_case "model: none is pass-through" `Quick
      test_none_is_passthrough;
    Alcotest.test_case "model: seeded determinism" `Quick test_determinism;
    Alcotest.test_case "model: loss statistics" `Quick test_loss_statistics;
    Alcotest.test_case "model: reorder holds past base delay" `Quick
      test_reorder_holds_past_base;
    Alcotest.test_case "model: link seeds distinguish links" `Quick
      test_link_seed_distinguishes_links;
    Alcotest.test_case "lossy: reorder breaks FIFO" `Quick
      test_lossy_reorder_breaks_fifo;
    Alcotest.test_case "live: FIFO exactly-once under loss+dup+reorder" `Slow
      test_live_fifo_exactly_once;
    Alcotest.test_case "live: backoff caps the retransmit storm" `Slow
      test_backoff_caps_retransmit_storm;
    Alcotest.test_case "live: ctrl survives 50% loss" `Slow
      test_ctrl_survives_loss;
    Alcotest.test_case "live: metrics scrape survives 50% loss" `Slow
      test_get_metrics_survives_loss;
    Alcotest.test_case "live: 3-member group is checker-clean" `Slow
      test_live_group_checker_clean ]
