(* Tests for the lossy datagram layer and the alternating-bit channel that
   implements the paper's reliable-FIFO assumption on top of it. *)

open Gmp_base
open Gmp_net

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let p0 = Pid.make 0
let p1 = Pid.make 1
let p2 = Pid.make 2

let setup ?(loss = 0.3) ?(duplicate = 0.1) ?(seed = 7) () =
  let engine = Gmp_sim.Engine.create () in
  let rng = Gmp_sim.Rng.create seed in
  (* Bounded delay spread and a generous rto: the alternating bit is sound
     (no datagram survives across two bit flips). *)
  let delay = Delay.uniform ~lo:0.5 ~hi:1.5 in
  let arq = Arq.create ~loss ~duplicate ~rto:5.0 ~engine ~rng ~delay () in
  (engine, arq)

(* ---- Lossy ---- *)

let test_lossy_drops () =
  let engine = Gmp_sim.Engine.create () in
  let rng = Gmp_sim.Rng.create 3 in
  let lossy =
    Lossy.create ~loss:0.5 ~engine ~rng ~delay:(Delay.constant 1.0) ()
  in
  let received = ref 0 in
  Lossy.set_handler lossy (fun ~dst:_ ~src:_ () -> incr received);
  for _ = 1 to 1000 do
    Lossy.send lossy ~src:p0 ~dst:p1 ()
  done;
  Gmp_sim.Engine.run engine;
  check bool "roughly half lost" true (!received > 350 && !received < 650);
  check int "accounting adds up" 1000
    (!received + Lossy.datagrams_lost lossy)

let test_lossy_duplicates () =
  let engine = Gmp_sim.Engine.create () in
  let rng = Gmp_sim.Rng.create 4 in
  let lossy =
    Lossy.create ~duplicate:1.0 ~engine ~rng ~delay:(Delay.constant 1.0) ()
  in
  let received = ref 0 in
  Lossy.set_handler lossy (fun ~dst:_ ~src:_ () -> incr received);
  for _ = 1 to 100 do
    Lossy.send lossy ~src:p0 ~dst:p1 ()
  done;
  Gmp_sim.Engine.run engine;
  check int "everything doubled" 200 !received

let test_lossy_reorders () =
  let engine = Gmp_sim.Engine.create () in
  let rng = Gmp_sim.Rng.create 5 in
  let lossy =
    Lossy.create ~fifo:false ~engine ~rng
      ~delay:(Delay.uniform ~lo:0.1 ~hi:10.0)
      ()
  in
  let received = ref [] in
  Lossy.set_handler lossy (fun ~dst:_ ~src:_ i -> received := i :: !received);
  for i = 1 to 50 do
    Lossy.send lossy ~src:p0 ~dst:p1 i
  done;
  Gmp_sim.Engine.run engine;
  check bool "no ordering with ~fifo:false" true
    (List.rev !received <> List.init 50 (fun i -> i + 1))

let test_lossy_fifo_by_default () =
  let engine = Gmp_sim.Engine.create () in
  let rng = Gmp_sim.Rng.create 6 in
  let lossy =
    Lossy.create ~engine ~rng ~delay:(Delay.uniform ~lo:0.1 ~hi:10.0) ()
  in
  let received = ref [] in
  Lossy.set_handler lossy (fun ~dst:_ ~src:_ i -> received := i :: !received);
  for i = 1 to 50 do
    Lossy.send lossy ~src:p0 ~dst:p1 i
  done;
  Gmp_sim.Engine.run engine;
  check (Alcotest.list int) "in order on a physical link"
    (List.init 50 (fun i -> i + 1))
    (List.rev !received)

(* ---- Arq ---- *)

let test_arq_reliable_fifo_under_loss () =
  let engine, arq = setup ~loss:0.4 ~duplicate:0.2 () in
  let received = ref [] in
  Arq.set_handler arq (fun ~dst:_ ~src:_ i -> received := i :: !received);
  let n = 100 in
  for i = 1 to n do
    Arq.send arq ~src:p0 ~dst:p1 i
  done;
  Gmp_sim.Engine.run engine;
  check (Alcotest.list int) "exactly once, in order"
    (List.init n (fun i -> i + 1))
    (List.rev !received);
  check bool "loss actually happened" true (Arq.datagrams_lost arq > 0);
  check bool "retransmissions happened" true (Arq.retransmissions arq > 0)

let test_arq_no_loss_no_retransmit () =
  let engine, arq = setup ~loss:0.0 ~duplicate:0.0 () in
  let received = ref 0 in
  Arq.set_handler arq (fun ~dst:_ ~src:_ _ -> incr received);
  for i = 1 to 20 do
    Arq.send arq ~src:p0 ~dst:p1 i
  done;
  Gmp_sim.Engine.run engine;
  check int "all delivered" 20 !received;
  check int "no retransmissions on a clean link" 0 (Arq.retransmissions arq)

let test_arq_channels_independent () =
  let engine, arq = setup ~loss:0.3 () in
  let to1 = ref [] and to2 = ref [] and back = ref [] in
  Arq.set_handler arq (fun ~dst ~src:_ i ->
      if Pid.equal dst p1 then to1 := i :: !to1
      else if Pid.equal dst p2 then to2 := i :: !to2
      else back := i :: !back);
  for i = 1 to 30 do
    Arq.send arq ~src:p0 ~dst:p1 i;
    Arq.send arq ~src:p0 ~dst:p2 (100 + i);
    Arq.send arq ~src:p1 ~dst:p0 (200 + i)
  done;
  Gmp_sim.Engine.run engine;
  check (Alcotest.list int) "p0->p1 ordered" (List.init 30 (fun i -> i + 1))
    (List.rev !to1);
  check (Alcotest.list int) "p0->p2 ordered" (List.init 30 (fun i -> 101 + i))
    (List.rev !to2);
  check (Alcotest.list int) "p1->p0 ordered" (List.init 30 (fun i -> 201 + i))
    (List.rev !back)

let test_arq_heavy_loss_eventually_delivers () =
  let engine, arq = setup ~loss:0.8 ~duplicate:0.0 ~seed:11 () in
  let received = ref [] in
  Arq.set_handler arq (fun ~dst:_ ~src:_ i -> received := i :: !received);
  for i = 1 to 10 do
    Arq.send arq ~src:p0 ~dst:p1 i
  done;
  Gmp_sim.Engine.run engine;
  check (Alcotest.list int) "survives 80% loss" (List.init 10 (fun i -> i + 1))
    (List.rev !received)

let test_arq_unsound_over_reordering_links () =
  (* The classic negative result: the 1-bit protocol is NOT correct over
     arbitrarily reordering links - a stale frame or ack can cross two bit
     flips. Sweep seeds until an anomaly (wrong order, loss or duplicate at
     the reliable layer) shows up. *)
  let anomaly = ref false in
  let seed = ref 0 in
  while (not !anomaly) && !seed < 500 do
    incr seed;
    let engine = Gmp_sim.Engine.create () in
    let rng = Gmp_sim.Rng.create !seed in
    let delay = Delay.uniform ~lo:0.5 ~hi:1.5 in
    let arq =
      Arq.create ~fifo:false ~loss:0.2 ~duplicate:0.2 ~rto:5.0 ~engine ~rng
        ~delay ()
    in
    let received = ref [] in
    Arq.set_handler arq (fun ~dst:_ ~src:_ i -> received := i :: !received);
    for i = 1 to 40 do
      Arq.send arq ~src:p0 ~dst:p1 i
    done;
    Gmp_sim.Engine.run ~max_steps:1_000_000 engine;
    if List.rev !received <> List.init 40 (fun i -> i + 1) then anomaly := true
  done;
  check bool "ABP breaks over reordering links (within 500 seeds)" true !anomaly

let prop_arq_exactly_once_in_order =
  QCheck.Test.make ~name:"arq: exactly-once in-order for any loss/seed"
    ~count:60
    QCheck.(pair (int_range 1 1_000_000) (int_range 0 70))
    (fun (seed, loss_pct) ->
      let loss = float_of_int loss_pct /. 100.0 in
      let engine, arq = setup ~loss ~duplicate:0.15 ~seed () in
      let received = ref [] in
      Arq.set_handler arq (fun ~dst:_ ~src:_ i -> received := i :: !received);
      let n = 30 in
      for i = 1 to n do
        Arq.send arq ~src:p0 ~dst:p1 i
      done;
      Gmp_sim.Engine.run engine;
      List.rev !received = List.init n (fun i -> i + 1))

let test_arq_teardown_drains_event_queue () =
  (* A retransmit timer toward a destination that will never ack (crashed,
     or total loss) used to run forever and keep the simulation alive.
     Tearing the channel down must cancel it so the engine drains. *)
  let engine, arq = setup ~loss:0.99 ~duplicate:0.0 () in
  Arq.set_handler arq (fun ~dst:_ ~src:_ () -> ());
  Arq.send arq ~src:p0 ~dst:p1 ();
  Arq.send arq ~src:p2 ~dst:p1 ();
  Gmp_sim.Engine.run ~until:50.0 engine;
  check bool "retransmitting into the void" true
    (Arq.retransmissions arq > 0 && Gmp_sim.Engine.pending_events engine > 0);
  Arq.teardown_to arq p1;
  Gmp_sim.Engine.run ~until:200.0 engine;
  check int "event queue drains after teardown" 0
    (Gmp_sim.Engine.pending_events engine)

let test_arq_teardown_single_channel () =
  (* Teardown is per-channel and drops the backlog: the first p0->p1
     datagram is already in flight (its late ack must be ignored), the
     queued second one must never go out, and p2's channel is untouched. *)
  let engine, arq = setup ~loss:0.0 ~duplicate:0.0 () in
  let got = ref 0 in
  Arq.set_handler arq (fun ~dst:_ ~src:_ () -> incr got);
  Arq.send arq ~src:p0 ~dst:p1 ();
  Arq.send arq ~src:p0 ~dst:p1 ();
  Arq.teardown arq ~src:p0 ~dst:p1;
  Arq.send arq ~src:p2 ~dst:p1 ();
  Gmp_sim.Engine.run ~until:100.0 engine;
  check int "backlogged message dropped" 2 !got;
  check int "nothing pending" 0 (Gmp_sim.Engine.pending_events engine)

let suite =
  [ Alcotest.test_case "lossy: drops" `Quick test_lossy_drops;
    Alcotest.test_case "arq: teardown drains the event queue" `Quick
      test_arq_teardown_drains_event_queue;
    Alcotest.test_case "arq: teardown is per-channel" `Quick
      test_arq_teardown_single_channel;
    Alcotest.test_case "lossy: duplicates" `Quick test_lossy_duplicates;
    Alcotest.test_case "lossy: reorders with ~fifo:false" `Quick
      test_lossy_reorders;
    Alcotest.test_case "lossy: FIFO by default" `Quick test_lossy_fifo_by_default;
    Alcotest.test_case "arq: unsound over reordering links" `Quick
      test_arq_unsound_over_reordering_links;
    Alcotest.test_case "arq: reliable FIFO under loss+dup" `Quick
      test_arq_reliable_fifo_under_loss;
    Alcotest.test_case "arq: clean link, no retransmit" `Quick
      test_arq_no_loss_no_retransmit;
    Alcotest.test_case "arq: channels independent" `Quick
      test_arq_channels_independent;
    Alcotest.test_case "arq: 80% loss" `Quick
      test_arq_heavy_loss_eventually_delivers;
    QCheck_alcotest.to_alcotest prop_arq_exactly_once_in_order ]
