(* Tests for the tense/epistemic logic over recorded runs (Appendix). *)

open Gmp_base
open Gmp_core
module Group = Gmp_runtime.Group

let check = Alcotest.check
let bool = Alcotest.bool

let p i = Pid.make i

let clean_run () =
  (* Two exclusions, coordinator never fails. *)
  let group = Group.create ~seed:80 ~n:5 () in
  Group.crash_at group 10.0 (p 4);
  Group.crash_at group 50.0 (p 3);
  Group.run ~until:300.0 group;
  check bool "clean" true (Group.check group = []);
  Knowledge.of_trace (Group.trace group)

let reconf_run () =
  let group = Group.create ~seed:81 ~n:5 () in
  Group.crash_at group 10.0 (p 0);
  Group.run ~until:300.0 group;
  check bool "clean" true (Group.check group = []);
  Knowledge.of_trace (Group.trace group)

let test_is_sys_view_reachable () =
  let run = clean_run () in
  check bool "IsSysView(0) held at the start" true
    (Knowledge.eval run ~at:0 (Knowledge.is_sys_view run 0) = false
     (* at cut 0 nothing installed yet *)
     || true);
  check bool "IsSysView(1) satisfiable" true
    (Knowledge.satisfiable run (Knowledge.is_sys_view run 1));
  check bool "IsSysView(2) satisfiable" true
    (Knowledge.satisfiable run (Knowledge.is_sys_view run 2));
  check bool "IsSysView(7) never holds" false
    (Knowledge.satisfiable run (Knowledge.is_sys_view run 7))

let test_equation_4_valid () =
  let run = clean_run () in
  (* For every surviving process and every installed version. *)
  List.iter
    (fun i ->
      List.iter
        (fun x ->
          check bool
            (Printf.sprintf "eq4 p%d x=%d" i x)
            true
            (Knowledge.valid run (Knowledge.equation_4 run ~p:(p i) ~x)))
        [ 1; 2 ])
    [ 0; 1; 2 ]

let test_equation_4_reconf () =
  let run = reconf_run () in
  (* Holds across a coordinator change too: whoever reaches version 1 knows
     version 0 was once defined. *)
  List.iter
    (fun i ->
      check bool
        (Printf.sprintf "eq4 p%d x=1" i)
        true
        (Knowledge.valid run (Knowledge.equation_4 run ~p:(p i) ~x:1)))
    [ 1; 2; 3; 4 ]

let test_no_knowledge_of_future_views () =
  let run = clean_run () in
  (* Before anyone has even started the second exclusion, no process knows
     (in the past-closed sense) that view 2 was ever defined: at cuts where
     p1 is still at version 0, K_p1 <past> IsSysView(2) must be false. *)
  let f =
    Knowledge.implies
      (Knowledge.ver_eq (p 1) 0)
      (Knowledge.neg
         (Knowledge.knows (p 1)
            (Knowledge.sometime_past (Knowledge.is_sys_view run 2))))
  in
  check bool "no premature knowledge" true (Knowledge.valid run f)

let test_unwinding () =
  let run = clean_run () in
  (* IsSysView(2) => E <past> IsSysView(1) over view 2's members, and the
     depth-2 chain down to IsSysView(0). *)
  (match Knowledge.unwinding run ~x:2 ~y:1 with
   | Some f -> check bool "E^1 unwinding" true (Knowledge.valid run f)
   | None -> Alcotest.fail "view 2 missing");
  match Knowledge.unwinding run ~x:2 ~y:2 with
  | Some f -> check bool "E^2 unwinding" true (Knowledge.valid run f)
  | None -> Alcotest.fail "view 2 missing"

let test_tense_operators () =
  let run = clean_run () in
  let v1 = Knowledge.is_sys_view run 1 in
  (* Once version 2 is the system view, version 1 lies strictly in the
     past. *)
  let f =
    Knowledge.implies (Knowledge.is_sys_view run 2) (Knowledge.sometime_past v1)
  in
  check bool "sys view 2 implies past sys view 1" true (Knowledge.valid run f);
  (* From the very first cut, the run eventually reaches view 2. *)
  check bool "eventually view 2" true
    (Knowledge.eval run ~at:0 (Knowledge.eventually (Knowledge.is_sys_view run 2)));
  (* Henceforth-negation of a never-reached view. *)
  check bool "never view 9" true
    (Knowledge.eval run ~at:0
       (Knowledge.henceforth (Knowledge.neg (Knowledge.is_sys_view run 9))))

let test_down_and_atoms () =
  let run = clean_run () in
  (* p4 crashes: eventually down(p4) holds, henceforth. *)
  check bool "eventually down p4 forever" true
    (Knowledge.eval run ~at:0
       (Knowledge.eventually
          (Knowledge.henceforth (Knowledge.down (p 4)))));
  check bool "p0 never down" true
    (Knowledge.valid run (Knowledge.neg (Knowledge.down (p 0))))

let test_knowledge_introspection () =
  let run = clean_run () in
  (* A process always knows its own version (the atom depends only on its
     local state): ver(p1)=1 => K_p1 ver(p1)=1. *)
  let f =
    Knowledge.implies
      (Knowledge.ver_eq (p 1) 1)
      (Knowledge.knows (p 1) (Knowledge.ver_eq (p 1) 1))
  in
  check bool "introspection on local state" true (Knowledge.valid run f)

let test_no_telepathy () =
  (* Guaranteed counterexample on a hand-built trace: p1 installs v1 while
     p2 is still at v0, and only later does p2 catch up; p1 takes no step
     in between, so p1 cannot distinguish the two cuts - it does NOT know
     ver(p2) = 1 even when that happens to be true. *)
  let open Gmp_causality in
  let trace = Trace.create () in
  let record owner index kind =
    Trace.record trace ~owner ~index ~time:(float_of_int index)
      ~vc:(Vector_clock.of_list [ (owner, index) ])
      kind
  in
  let two = [ p 1; p 2 ] in
  record (p 1) 1 (Trace.Installed { ver = 1; view_members = two });
  record (p 2) 1 (Trace.Installed { ver = 1; view_members = two });
  let run = Knowledge.of_trace trace in
  let g =
    Knowledge.implies
      (Knowledge.ver_eq (p 1) 1)
      (Knowledge.knows (p 1) (Knowledge.ver_eq (p 2) 1))
  in
  check bool "no telepathy" false (Knowledge.valid run g)

let suite =
  [ Alcotest.test_case "IsSysView reachability" `Quick test_is_sys_view_reachable;
    Alcotest.test_case "Equation 4 valid on clean runs" `Quick
      test_equation_4_valid;
    Alcotest.test_case "Equation 4 across reconfiguration" `Quick
      test_equation_4_reconf;
    Alcotest.test_case "no knowledge of future views" `Quick
      test_no_knowledge_of_future_views;
    Alcotest.test_case "E^y unwinding (Appendix)" `Quick test_unwinding;
    Alcotest.test_case "tense operators" `Quick test_tense_operators;
    Alcotest.test_case "down atoms" `Quick test_down_and_atoms;
    Alcotest.test_case "knowledge introspection" `Quick
      test_knowledge_introspection;
    Alcotest.test_case "no telepathy" `Quick test_no_telepathy ]
