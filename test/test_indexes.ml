(* The trace indexes against their list-scan oracle, and the engine's
   tombstone-compaction bound.

   [Trace]'s queries are served from indexes built incrementally at [record]
   time; [Trace.Reference] keeps the seed's naive scans. On any trace the two
   must agree exactly — fuzzing the recorded kinds exercises every index. *)

open Gmp_base
open Gmp_core

let qtest = QCheck_alcotest.to_alcotest

(* ---- fuzzed traces: indexed queries = naive list scans ---- *)

let kind_of_code owner code ver =
  let p = Pid.make (code * 7 mod 6) in
  match code with
  | 0 -> Trace.Faulty p
  | 1 -> Trace.Operating p
  | 2 -> Trace.Removed { target = p; new_ver = ver }
  | 3 -> Trace.Added { target = p; new_ver = ver }
  | 4 -> Trace.Installed { ver; view_members = [ owner; p ] }
  | 5 -> Trace.Quit "fuzz"
  | 6 -> Trace.Crashed
  | 7 -> Trace.Initiated_reconf { at_ver = ver }
  | 8 -> Trace.Proposed { target_ver = ver; ops = [] }
  | 9 -> Trace.Committed { ver; commit_kind = `Update }
  | 10 -> Trace.Became_mgr { at_ver = ver }
  | _ -> Trace.Violation "fuzz"

let build_trace entries =
  let trace = Trace.create () in
  let counters = Hashtbl.create 8 in
  List.iteri
    (fun i (o, code, ver) ->
      let owner = Pid.make o in
      let index = try Hashtbl.find counters o with Not_found -> 0 in
      Hashtbl.replace counters o (index + 1);
      Trace.record trace ~owner ~index ~time:(float_of_int i)
        ~vc:Gmp_causality.Vector_clock.empty
        (kind_of_code owner code ver))
    entries;
  trace

let entries_arb =
  (* (owner id, kind code, version): small ranges so owners and kinds
     collide often and every index gets multi-element lists. *)
  QCheck.(list (triple (int_bound 5) (int_bound 11) (int_bound 4)))

let prop_indexes_match_reference =
  QCheck.Test.make ~name:"trace: indexed queries = list-scan reference"
    ~count:300 entries_arb (fun entries ->
      let t = build_trace entries in
      let pids = Pid.make 99 :: Trace.owners t in
      Trace.owners t = Trace.Reference.owners t
      && Trace.installs t = Trace.Reference.installs t
      && Trace.detections t = Trace.Reference.detections t
      && Trace.quits t = Trace.Reference.quits t
      && Trace.violations t = Trace.Reference.violations t
      && List.for_all
           (fun p ->
             Trace.by_owner t p = Trace.Reference.by_owner t p
             && Trace.installs_of t p = Trace.Reference.installs_of t p)
           pids)

let prop_checker_instances_agree =
  QCheck.Test.make ~name:"checker: indexed instance = reference instance"
    ~count:100 entries_arb (fun entries ->
      let t = build_trace entries in
      let initial = Pid.group 4 in
      Checker.check_safety t ~initial
      = Checker.Reference.check_safety t ~initial)

let prop_checker_agrees_on_runs =
  QCheck.Test.make ~name:"checker: instances agree on real churn runs"
    ~count:10
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let _, group = Gmp_workload.Scenario.random_churn ~seed () in
      let trace = Group.trace group in
      let initial = Group.initial group in
      Checker.check_safety trace ~initial
      = Checker.Reference.check_safety trace ~initial)

(* ---- engine: cancelled-timer tombstones stay bounded ---- *)

let test_compaction_bound () =
  let e = Gmp_sim.Engine.create () in
  let live = 128 in
  let handles =
    Array.init live (fun i ->
        Gmp_sim.Engine.schedule e ~delay:(1e6 +. float_of_int i) ignore)
  in
  for i = 0 to 99_999 do
    let slot = i mod live in
    Gmp_sim.Engine.cancel e handles.(slot);
    handles.(slot) <-
      Gmp_sim.Engine.schedule e ~delay:(2e6 +. float_of_int i) ignore;
    let len = Gmp_sim.Engine.queue_length e in
    if len > 2 * live then
      Alcotest.failf "cycle %d: queue length %d >= 2 x %d live timers" i len
        live
  done;
  Alcotest.(check int) "live timers intact" live
    (Gmp_sim.Engine.pending_events e);
  let final = Gmp_sim.Engine.queue_length e in
  if final >= 2 * live then
    Alcotest.failf "after 100k cycles: queue length %d >= 2 x %d" final live;
  (* The churn really went through the heap: 100k + initial schedules. *)
  Alcotest.(check bool) "peak saw the tombstones" true
    (Gmp_sim.Engine.peak_queue_length e > live)

let test_compaction_preserves_order () =
  (* Cancel every other timer out of 1000, then fire the rest: the survivors
     must fire in schedule order despite intervening compactions. *)
  let e = Gmp_sim.Engine.create () in
  let fired = ref [] in
  let handles =
    List.init 1000 (fun i ->
        ( i,
          Gmp_sim.Engine.schedule e
            ~delay:(float_of_int (i + 1))
            (fun () -> fired := i :: !fired) ))
  in
  List.iter
    (fun (i, h) -> if i mod 2 = 0 then Gmp_sim.Engine.cancel e h)
    handles;
  Gmp_sim.Engine.run e;
  let expected = List.init 500 (fun i -> (2 * i) + 1) in
  Alcotest.(check (list int)) "odd timers fired in order" expected
    (List.rev !fired)

let suite =
  List.map qtest
    [ prop_indexes_match_reference;
      prop_checker_instances_agree;
      prop_checker_agrees_on_runs ]
  @ [ Alcotest.test_case "engine: 100k schedule/cancel stays bounded" `Quick
        test_compaction_bound;
      Alcotest.test_case "engine: compaction preserves firing order" `Quick
        test_compaction_preserves_order ]
