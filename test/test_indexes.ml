(* The trace indexes against their list-scan oracle, and the engine's
   tombstone-compaction bound.

   [Trace]'s queries are served from indexes built incrementally at [record]
   time; [Trace.Reference] keeps the seed's naive scans. On any trace the two
   must agree exactly — fuzzing the recorded kinds exercises every index. *)

open Gmp_base
open Gmp_core
module Group = Gmp_runtime.Group

let qtest = QCheck_alcotest.to_alcotest

(* ---- fuzzed traces: indexed queries = naive list scans ---- *)

let kind_of_code owner code ver =
  let p = Pid.make (code * 7 mod 6) in
  match code with
  | 0 -> Trace.Faulty p
  | 1 -> Trace.Operating p
  | 2 -> Trace.Removed { target = p; new_ver = ver }
  | 3 -> Trace.Added { target = p; new_ver = ver }
  | 4 -> Trace.Installed { ver; view_members = [ owner; p ] }
  | 5 -> Trace.Quit "fuzz"
  | 6 -> Trace.Crashed
  | 7 -> Trace.Initiated_reconf { at_ver = ver }
  | 8 -> Trace.Proposed { target_ver = ver; ops = [] }
  | 9 -> Trace.Committed { ver; commit_kind = `Update }
  | 10 -> Trace.Became_mgr { at_ver = ver }
  | _ -> Trace.Violation "fuzz"

let build_trace entries =
  let trace = Trace.create () in
  let counters = Hashtbl.create 8 in
  List.iteri
    (fun i (o, code, ver) ->
      let owner = Pid.make o in
      let index = try Hashtbl.find counters o with Not_found -> 0 in
      Hashtbl.replace counters o (index + 1);
      Trace.record trace ~owner ~index ~time:(float_of_int i)
        ~vc:Gmp_causality.Vector_clock.empty
        (kind_of_code owner code ver))
    entries;
  trace

let entries_arb =
  (* (owner id, kind code, version): small ranges so owners and kinds
     collide often and every index gets multi-element lists. *)
  QCheck.(list (triple (int_bound 5) (int_bound 11) (int_bound 4)))

let prop_indexes_match_reference =
  QCheck.Test.make ~name:"trace: indexed queries = list-scan reference"
    ~count:300 entries_arb (fun entries ->
      let t = build_trace entries in
      let pids = Pid.make 99 :: Trace.owners t in
      Trace.owners t = Trace.Reference.owners t
      && Trace.installs t = Trace.Reference.installs t
      && Trace.detections t = Trace.Reference.detections t
      && Trace.quits t = Trace.Reference.quits t
      && Trace.violations t = Trace.Reference.violations t
      && List.for_all
           (fun p ->
             Trace.by_owner t p = Trace.Reference.by_owner t p
             && Trace.installs_of t p = Trace.Reference.installs_of t p)
           pids)

let prop_checker_instances_agree =
  QCheck.Test.make ~name:"checker: indexed instance = reference instance"
    ~count:100 entries_arb (fun entries ->
      let t = build_trace entries in
      let initial = Pid.group 4 in
      Checker.check_safety t ~initial
      = Checker.Reference.check_safety t ~initial)

let prop_checker_agrees_on_runs =
  QCheck.Test.make ~name:"checker: instances agree on real churn runs"
    ~count:10
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let _, group = Gmp_workload.Scenario.random_churn ~seed () in
      let trace = Group.trace group in
      let initial = Group.initial group in
      Checker.check_safety trace ~initial
      = Checker.Reference.check_safety trace ~initial)

(* ---- SoA event queue against a sorted-list oracle ---- *)

(* The oracle is a list of (time, id) kept in firing order: stable insertion
   after every entry with time <= the new time is exactly the queue's
   tie-break-by-seq contract. Times are drawn from a four-value set so ties
   are the common case, not the exception. *)

let oracle_insert oracle time id =
  let rec go = function
    | ((t', _) as hd) :: tl when t' <= time -> hd :: go tl
    | rest -> (time, id) :: rest
  in
  go oracle

let queue_ops_arb =
  (* (op code, time code): 0-6 add, 7-8 pop, 9 filter (the compaction
     primitive). Add-biased so the queue actually grows. *)
  QCheck.(list (pair (int_bound 9) (int_bound 3)))

let prop_queue_matches_oracle =
  QCheck.Test.make ~name:"event queue: SoA heap = sorted-list oracle"
    ~count:300 queue_ops_arb (fun ops ->
      let q = Gmp_sim.Event_queue.create () in
      let oracle = ref [] in
      let next_id = ref 0 in
      let ok = ref true in
      List.iter
        (fun (code, tcode) ->
          if code < 7 then begin
            let time = float_of_int tcode in
            let id = !next_id in
            incr next_id;
            Gmp_sim.Event_queue.add q ~time id;
            oracle := oracle_insert !oracle time id
          end
          else if code < 9 then begin
            (match Gmp_sim.Event_queue.pop q, !oracle with
             | None, [] -> ()
             | Some (t, id), (t', id') :: rest when t = t' && id = id' ->
               oracle := rest
             | _ -> ok := false);
            (match Gmp_sim.Event_queue.peek_time q, !oracle with
             | None, [] -> ()
             | Some t, (t', _) :: _ when t = t' -> ()
             | _ -> ok := false)
          end
          else begin
            Gmp_sim.Event_queue.filter_in_place q (fun id -> id land 1 = 1);
            oracle := List.filter (fun (_, id) -> id land 1 = 1) !oracle
          end)
        ops;
      !ok && Gmp_sim.Event_queue.to_sorted_list q = !oracle)

let engine_ops_arb = QCheck.(list (pair (int_bound 9) (int_bound 7)))

let prop_engine_matches_oracle =
  (* schedule/cancel/step against the same oracle, carrying handles; after
     every cancel the compaction bound from PR 1 must hold. *)
  QCheck.Test.make ~name:"engine: schedule/cancel/step = oracle + bound"
    ~count:200 engine_ops_arb (fun ops ->
      let e = Gmp_sim.Engine.create () in
      let fired = ref [] in
      let live = ref [] in (* (fire_at, id, handle) in firing order *)
      let next_id = ref 0 in
      let ok = ref true in
      let insert time id h =
        let rec go = function
          | ((t', _, _) as hd) :: tl when t' <= time -> hd :: go tl
          | rest -> (time, id, h) :: rest
        in
        live := go !live
      in
      List.iter
        (fun (code, x) ->
          if code < 5 then begin
            let delay = float_of_int x in
            let id = !next_id in
            incr next_id;
            let time = Gmp_sim.Engine.now e +. delay in
            let h =
              Gmp_sim.Engine.schedule e ~delay (fun () -> fired := id :: !fired)
            in
            insert time id h
          end
          else if code < 8 then begin
            (match !live with
             | [] -> ()
             | l ->
               let i = x mod List.length l in
               let _, _, h = List.nth l i in
               Gmp_sim.Engine.cancel e h;
               live := List.filteri (fun j _ -> j <> i) l);
            (* Tombstones were just eligible for compaction: the queue may
               hold at most 2x the live timers (below the threshold the
               engine doesn't bother). *)
            let len = Gmp_sim.Engine.queue_length e in
            if not (len < 64 || len <= 2 * Gmp_sim.Engine.pending_events e)
            then ok := false
          end
          else begin
            let expect = !live in
            let stepped = Gmp_sim.Engine.step e in
            match expect with
            | [] -> if stepped then ok := false
            | (t, id, _) :: rest ->
              live := rest;
              if not stepped then ok := false
              else begin
                (match !fired with
                 | id' :: _ when id' = id -> ()
                 | _ -> ok := false);
                if Gmp_sim.Engine.now e <> t then ok := false
              end
          end)
        ops;
      !ok && Gmp_sim.Engine.pending_events e = List.length !live)

(* ---- engine: cancelled-timer tombstones stay bounded ---- *)

let test_compaction_bound () =
  let e = Gmp_sim.Engine.create () in
  let live = 128 in
  let handles =
    Array.init live (fun i ->
        Gmp_sim.Engine.schedule e ~delay:(1e6 +. float_of_int i) ignore)
  in
  for i = 0 to 99_999 do
    let slot = i mod live in
    Gmp_sim.Engine.cancel e handles.(slot);
    handles.(slot) <-
      Gmp_sim.Engine.schedule e ~delay:(2e6 +. float_of_int i) ignore;
    let len = Gmp_sim.Engine.queue_length e in
    if len > 2 * live then
      Alcotest.failf "cycle %d: queue length %d >= 2 x %d live timers" i len
        live
  done;
  Alcotest.(check int) "live timers intact" live
    (Gmp_sim.Engine.pending_events e);
  let final = Gmp_sim.Engine.queue_length e in
  if final >= 2 * live then
    Alcotest.failf "after 100k cycles: queue length %d >= 2 x %d" final live;
  (* The churn really went through the heap: 100k + initial schedules. *)
  Alcotest.(check bool) "peak saw the tombstones" true
    (Gmp_sim.Engine.peak_queue_length e > live)

let test_compaction_preserves_order () =
  (* Cancel every other timer out of 1000, then fire the rest: the survivors
     must fire in schedule order despite intervening compactions. *)
  let e = Gmp_sim.Engine.create () in
  let fired = ref [] in
  let handles =
    List.init 1000 (fun i ->
        ( i,
          Gmp_sim.Engine.schedule e
            ~delay:(float_of_int (i + 1))
            (fun () -> fired := i :: !fired) ))
  in
  List.iter
    (fun (i, h) -> if i mod 2 = 0 then Gmp_sim.Engine.cancel e h)
    handles;
  Gmp_sim.Engine.run e;
  let expected = List.init 500 (fun i -> (2 * i) + 1) in
  Alcotest.(check (list int)) "odd timers fired in order" expected
    (List.rev !fired)

let suite =
  List.map qtest
    [ prop_indexes_match_reference;
      prop_checker_instances_agree;
      prop_checker_agrees_on_runs;
      prop_queue_matches_oracle;
      prop_engine_matches_oracle ]
  @ [ Alcotest.test_case "engine: 100k schedule/cancel stays bounded" `Quick
        test_compaction_bound;
      Alcotest.test_case "engine: compaction preserves firing order" `Quick
        test_compaction_preserves_order ]
