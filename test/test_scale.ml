(* Scale tests: larger groups, heavier-tailed delays, more concurrent
   churn. Slow suite. *)

open Gmp_base
open Gmp_core
module Group = Gmp_runtime.Group

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let p i = Pid.make i

let test_n32_churn () =
  let delay = Gmp_net.Delay.exponential ~mean:1.0 in
  let config =
    { Config.default with Config.heartbeat_timeout = 15.0 }
  in
  let group = Group.create ~config ~delay ~seed:123 ~n:32 () in
  (* Coordinator crash, five scattered crashes, three joins. *)
  Group.crash_at group 10.0 (p 0);
  List.iter
    (fun (t, i) -> Group.crash_at group t (p i))
    [ (40.0, 7); (55.0, 13); (70.0, 21); (85.0, 28); (100.0, 3) ];
  List.iter
    (fun (t, j, c) -> Group.join_at group t (p j) ~contact:(p c))
    [ (60.0, 100, 5); (90.0, 101, 9); (120.0, 102, 15) ];
  Group.run ~until:1200.0 group;
  check int "no violations at n=32" 0 (List.length (Group.check group));
  match Group.agreed_view group with
  | Some (_, members) ->
    (* 32 - 6 crashes + 3 joins = 29, minus up to a couple of spurious
       exclusions that heavy-tailed delays legitimately cause (perceived
       failures are the paper's premise; GMP-5 then forces them out). *)
    check bool "members in [27,29]" true
      (List.length members >= 27 && List.length members <= 29);
    List.iter
      (fun i ->
        check bool "crashed member excluded" false
          (List.exists (Pid.equal (p i)) members))
      [ 0; 7; 13; 21; 28; 3 ];
    List.iter
      (fun j ->
        check bool "joiner admitted" true (List.exists (Pid.equal (p j)) members))
      [ 100; 101; 102 ]
  | None -> Alcotest.fail "no agreement"

let test_n48_single_reconf () =
  let group = Group.create ~seed:124 ~n:48 () in
  Group.crash_at group 10.0 (p 0);
  Group.run ~until:600.0 group;
  check int "no violations at n=48" 0 (List.length (Group.check group));
  check bool "within 5n-9" true
    (Group.protocol_messages group <= (5 * 48) - 9)

let test_deep_compressed_chain () =
  (* Eleven simultaneous detections - exactly the tolerance n - mu(n) for
     n = 24: one invitation round, then a ten-link contingent chain. *)
  let group = Group.create ~seed:125 ~n:24 () in
  for i = 13 to 23 do
    Group.crash_at group (10.0 +. (0.01 *. float_of_int i)) (p i)
  done;
  Group.run ~until:800.0 group;
  check int "no violations" 0 (List.length (Group.check group));
  (match Group.agreed_view group with
   | Some (ver, members) ->
     check int "eleven changes" 11 ver;
     check int "thirteen left" 13 (List.length members)
   | None -> Alcotest.fail "no agreement");
  let stats = Group.stats group in
  check bool "chain compressed (fewer invites than commits)" true
    (Gmp_net.Stats.sent stats ~category:"invite"
     < Gmp_net.Stats.sent stats ~category:"commit")

let test_many_joiners () =
  let group = Group.create ~seed:126 ~n:4 () in
  for j = 0 to 9 do
    Group.join_at group
      (10.0 +. (6.0 *. float_of_int j))
      (p (100 + j))
      ~contact:(p (j mod 4))
  done;
  Group.run ~until:600.0 group;
  check int "no violations" 0 (List.length (Group.check group));
  match Group.agreed_view group with
  | Some (ver, members) ->
    check int "ten joins committed" 10 ver;
    check int "fourteen members" 14 (List.length members)
  | None -> Alcotest.fail "no agreement"

let suite =
  [ Alcotest.test_case "n=32 churn under heavy-tailed delays" `Slow
      test_n32_churn;
    Alcotest.test_case "n=48 reconfiguration" `Slow test_n48_single_reconf;
    Alcotest.test_case "deep compressed chain (11 simultaneous)" `Slow
      test_deep_compressed_chain;
    Alcotest.test_case "ten joiners" `Slow test_many_joiners ]
