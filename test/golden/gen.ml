(* Regenerates the golden codec files:

     dune exec test/golden/gen.exe -- test/golden

   One .bin per Wire.t constructor (body-only encoding) plus one per frame
   kind. The committed bytes pin the wire format: if an edit to the codec
   or to Wire.t changes any encoding, test_codec fails against these files
   and the change must either be reverted or ship as a codec version bump
   with regenerated goldens. *)

open Gmp_base
open Gmp_core
open Gmp_live

let p ?(i = 0) id = Pid.make ~incarnation:i id

let messages : (string * Wire.t) list =
  [ ("heartbeat", Wire.Heartbeat);
    ("faulty_report", Wire.Faulty_report (p 3));
    ("join_request", Wire.Join_request);
    ("join_forward", Wire.Join_forward (p ~i:1 5));
    ("invite", Wire.Invite { op = Types.Add (p 5); invite_ver = 3 });
    ("invite_ok", Wire.Invite_ok { ok_ver = 3 });
    ( "commit",
      Wire.Commit
        { op = Types.Remove (p 2);
          commit_ver = 4;
          contingent = Some (Types.Add (p 6));
          faulty = [ p 2; p 3 ];
          recovered = [ p 6 ] } );
    ( "welcome",
      Wire.Welcome
        { w_members = [ p 0; p 1; p ~i:1 5 ];
          w_ver = 2;
          w_seq = [ Types.Add (p ~i:1 5); Types.Remove (p 2) ] } );
    ("interrogate", Wire.Interrogate);
    ( "interrogate_ok",
      Wire.Interrogate_ok
        { reply_ver = 2;
          reply_seq = [ Types.Remove (p 1) ];
          reply_next =
            [ Types.Awaiting_proposal (p 4);
              Types.Expected
                { canonical = [ Types.Add (p 2); Types.Remove (p 0) ];
                  coord = p 4;
                  ver = 5 } ] } );
    ( "propose",
      Wire.Propose
        { target_ver = 6;
          canonical_seq = [ Types.Add (p 1); Types.Remove (p 3) ];
          invis = Some (Types.Remove (p 0));
          prop_faulty = [ p 0 ] } );
    ("propose_ok", Wire.Propose_ok { pok_ver = 6 });
    ( "reconf_commit",
      Wire.Reconf_commit
        { target_ver = 2;
          canonical_seq = [ Types.Remove (p 4) ];
          invis = None;
          prop_faulty = [] } );
    ("app", Wire.App { app_ver = 1; payload = Codec.Blob "hi\x00\xff" }) ]

let frames : (string * Codec.frame) list =
  [ ( "frame_data",
      Codec.Data
        { src = p ~i:2 1;
          chan_seq = 42;
          vc = Gmp_causality.Vector_clock.of_list [ (p 0, 3); (p ~i:2 1, 9) ];
          msg = Wire.Invite { op = Types.Add (p 5); invite_ver = 3 } } );
    ("frame_ack", Codec.Ack { src = p 4; ack_next = 17 });
    ( "frame_ctrl_shutdown",
      Codec.Ctrl { token = 7; cmd = Codec.Shutdown } );
    ( "frame_ctrl_blackhole",
      Codec.Ctrl { token = 0xDEAD; cmd = Codec.Blackhole (p 2) } );
    ( "frame_ctrl_unblackhole",
      Codec.Ctrl { token = 0xBEEF; cmd = Codec.Unblackhole (p 2) } );
    ( "frame_ctrl_set_netem",
      Codec.Ctrl
        { token = 12345;
          cmd =
            Codec.Set_netem
              { peer = Some (p ~i:1 3);
                n_loss = 0.1;
                n_latency = 0.02;
                n_jitter = 0.01;
                n_dup = 0.05;
                n_reorder = 0.25 } } );
    ( "frame_ctrl_set_netem_default",
      Codec.Ctrl
        { token = 1;
          cmd =
            Codec.Set_netem
              { peer = None;
                n_loss = 0.0;
                n_latency = 0.0;
                n_jitter = 0.0;
                n_dup = 0.0;
                n_reorder = 0.0 } } );
    ("frame_ctrl_ack", Codec.Ctrl_ack { token = 12345 });
    ( "frame_ctrl_get_metrics",
      Codec.Ctrl { token = 0xCAFE; cmd = Codec.Get_metrics } );
    ( "frame_metrics",
      Codec.Metrics { token = 0xCAFE; payload = "{\"arq.retransmits\":3}" } ) ]

let write dir name bytes =
  let path = Filename.concat dir (name ^ ".bin") in
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (String.length bytes)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  List.iter (fun (name, msg) -> write dir name (Codec.encode_msg msg)) messages;
  List.iter
    (fun (name, frame) -> write dir name (Codec.encode_frame frame))
    frames;
  (* The TCP stream encoding of a frame sequence is exactly the
     concatenation of the frames' datagram bytes (the codec header is
     self-delimiting, so framing adds no envelope) - pinned so a stream
     decoder change cannot silently grow one. *)
  write dir "stream_frames"
    (String.concat "" (List.map (fun (_, f) -> Codec.encode_frame f) frames))
