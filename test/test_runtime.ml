(* Unit tests for the process runtime: spawning, messaging, timers, crash
   semantics, broadcast indivisibility. *)

open Gmp_base
module Runtime = Gmp_runtime.Runtime

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let p i = Pid.make i

let test_spawn_and_send () =
  let rt = Runtime.create ~seed:1 () in
  let a = Runtime.spawn rt (p 0) in
  let b = Runtime.spawn rt (p 1) in
  let inbox = ref [] in
  Runtime.set_receiver b (fun ~src msg -> inbox := (src, msg) :: !inbox);
  Runtime.send a ~dst:(p 1) ~category:(Gmp_net.Stats.intern "t") "hello";
  Runtime.run rt;
  (match !inbox with
   | [ (src, "hello") ] -> check bool "src" true (Pid.equal src (p 0))
   | _ -> Alcotest.fail "expected one message");
  check bool "duplicate spawn rejected" true
    (try ignore (Runtime.spawn rt (p 0)); false with Invalid_argument _ -> true)

let test_crash_semantics () =
  let rt = Runtime.create ~seed:2 () in
  let a = Runtime.spawn rt (p 0) in
  let b = Runtime.spawn rt (p 1) in
  let received = ref 0 in
  Runtime.set_receiver b (fun ~src:_ _ -> incr received);
  (* In-flight message vanishes when the destination crashes. *)
  Runtime.send a ~dst:(p 1) ~category:(Gmp_net.Stats.intern "t") ();
  Runtime.crash b;
  Runtime.run rt;
  check int "nothing delivered" 0 !received;
  check bool "not alive" false (Runtime.alive b);
  (* A crashed process cannot send. *)
  Runtime.crash a;
  Runtime.send a ~dst:(p 1) ~category:(Gmp_net.Stats.intern "t") ();
  Runtime.run rt;
  check int "no sends from the dead" 0
    (Gmp_net.Stats.sent (Runtime.stats rt) ~category:"t" - 1)

let test_timers () =
  let rt = Runtime.create ~seed:3 () in
  let a = Runtime.spawn rt (p 0) in
  let fired = ref 0 in
  let handle = Runtime.set_timer a ~delay:5.0 (fun () -> incr fired) in
  ignore (Runtime.set_timer a ~delay:6.0 (fun () -> incr fired) : Runtime.timer);
  Runtime.cancel_timer a handle;
  Runtime.run rt;
  check int "one cancelled, one fired" 1 !fired

let test_timer_dies_with_node () =
  let rt = Runtime.create ~seed:4 () in
  let a = Runtime.spawn rt (p 0) in
  let fired = ref 0 in
  ignore (Runtime.set_timer a ~delay:5.0 (fun () -> incr fired) : Runtime.timer);
  Runtime.crash a;
  Runtime.run rt;
  check int "timer suppressed after crash" 0 !fired

let test_every_stops_on_crash () =
  let rt = Runtime.create ~seed:5 () in
  let a = Runtime.spawn rt (p 0) in
  let ticks = ref 0 in
  Runtime.every a ~interval:1.0 (fun () ->
      incr ticks;
      if !ticks = 3 then Runtime.crash a);
  Runtime.run ~until:100.0 rt;
  check int "stopped at the crash" 3 !ticks

let test_broadcast_excludes_self () =
  let rt = Runtime.create ~seed:6 () in
  let a = Runtime.spawn rt (p 0) in
  let received = ref [] in
  List.iter
    (fun i ->
      let node = Runtime.spawn rt (p i) in
      Runtime.set_receiver node (fun ~src:_ () -> received := i :: !received))
    [ 1; 2; 3 ];
  Runtime.set_receiver a (fun ~src:_ () -> received := 0 :: !received);
  Runtime.broadcast a ~dsts:[ p 0; p 1; p 2; p 3 ] ~category:(Gmp_net.Stats.intern "t") ();
  Runtime.run rt;
  check (Alcotest.list int) "everyone but self" [ 1; 2; 3 ]
    (List.sort Int.compare !received)

let test_local_event_advances_clock () =
  let rt = Runtime.create ~seed:7 () in
  let a = Runtime.spawn rt (p 0) in
  let i1, vc1 = Runtime.local_event a in
  let i2, vc2 = Runtime.local_event a in
  check int "indices advance" (i1 + 1) i2;
  check bool "clock advances" true (Gmp_causality.Vector_clock.lt vc1 vc2)

let test_now_tracks_engine () =
  let rt = Runtime.create ~seed:8 () in
  let a = Runtime.spawn rt (p 0) in
  let seen = ref 0.0 in
  ignore
    (Runtime.set_timer a ~delay:7.5 (fun () -> seen := Runtime.node_now a)
      : Runtime.timer);
  Runtime.run rt;
  check (Alcotest.float 1e-9) "node_now" 7.5 !seen

let suite =
  [ Alcotest.test_case "spawn and send" `Quick test_spawn_and_send;
    Alcotest.test_case "crash semantics" `Quick test_crash_semantics;
    Alcotest.test_case "timers and cancellation" `Quick test_timers;
    Alcotest.test_case "timer dies with node" `Quick test_timer_dies_with_node;
    Alcotest.test_case "every stops on crash" `Quick test_every_stops_on_crash;
    Alcotest.test_case "broadcast excludes self" `Quick
      test_broadcast_excludes_self;
    Alcotest.test_case "local events advance the clock" `Quick
      test_local_event_advances_clock;
    Alcotest.test_case "node_now tracks the engine" `Quick test_now_tracks_engine ]
