(* The checker on real executions.

   test/fixtures/live holds the per-node JSONL event logs of an actual
   loopback run: 5 gmp-node processes, p2 SIGKILLed at t=3s by
   gmp-cluster, logs harvested afterwards. Reassembled, that trace must
   pass the same GMP-0..5 checker every simulated run faces - and a
   hand-mutilated copy (p0's Faulty event deleted, making its removal of
   p2 capricious) must produce exactly the expected GMP-1 violation.
   Regenerate with:
     gmp-cluster --nodes 5 --run-for 8 --kill 3:p2 --keep-logs --dir ... *)

open Gmp_base
open Gmp_core
open Gmp_live

let check = Alcotest.check

let fixture name = Filename.concat "fixtures/live" name

let survivors = [ "p0"; "p1"; "p3"; "p4" ]

let read_fixture name =
  match Trace_io.read_file (fixture name) with
  | Ok events -> events
  | Error m -> Alcotest.failf "fixture %s unreadable: %s" name m

let load ?(p0 = "p0.jsonl") () =
  Trace_io.reassemble
    (List.map read_fixture (p0 :: List.map (fun p -> p ^ ".jsonl") [ "p1"; "p2"; "p3"; "p4" ]))

let initial = Pid.group 5

let test_fixture_is_a_real_run () =
  let trace = load () in
  check Alcotest.bool "has events" true (Trace.length trace > 0);
  (* All five processes appear, including the SIGKILLed one. *)
  check Alcotest.int "five owners" 5 (List.length (Trace.owners trace))

let test_live_trace_passes_safety () =
  match Checker.check_safety (load ()) ~initial with
  | [] -> ()
  | vs ->
    Alcotest.failf "violations on a real run: %a"
      Fmt.(list ~sep:(any "; ") Checker.pp_violation)
      vs

let test_live_trace_passes_full_check () =
  (* The whole judgement the orchestrator applies, survivors' final views
     taken from their own logs. *)
  let trace = load () in
  let surviving_views =
    List.map
      (fun p ->
        match Pid.of_string p with
        | None -> assert false
        | Some pid ->
          let install =
            List.fold_left
              (fun acc (e : Trace.event) ->
                if not (Pid.equal e.owner pid) then acc
                else
                  match e.kind with
                  | Trace.Installed { ver; view_members } ->
                    Some (ver, view_members)
                  | _ -> acc)
              None (Trace.events trace)
          in
          (match install with
          | Some (ver, members) -> (pid, ver, members)
          | None -> Alcotest.failf "survivor %s installed nothing" p))
      survivors
  in
  let final_view =
    match surviving_views with (_, _, m) :: _ -> m | [] -> []
  in
  match
    Checker.check_run ~liveness:true trace ~initial ~surviving_views
      ~dead:[ Pid.make 2 ] ~final_view
  with
  | [] -> ()
  | vs ->
    Alcotest.failf "violations: %a"
      Fmt.(list ~sep:(any "; ") Checker.pp_violation)
      vs

let test_mutilated_trace_fails () =
  (* Same run, but p0's Faulty(p2) observation is deleted: its Removed
     event is now capricious and GMP-1 must say so. *)
  match Checker.check_safety (load ~p0:"p0_mutilated.jsonl" ()) ~initial with
  | [] -> Alcotest.fail "mutilated trace passed the checker"
  | vs ->
    check Alcotest.bool "GMP-1 flagged" true
      (List.exists
         (fun (v : Checker.violation) -> v.property = "GMP-1")
         vs)

let suite =
  [ Alcotest.test_case "fixture: is a real 5-node run" `Quick
      test_fixture_is_a_real_run;
    Alcotest.test_case "live trace: safety holds" `Quick
      test_live_trace_passes_safety;
    Alcotest.test_case "live trace: full check_run holds" `Quick
      test_live_trace_passes_full_check;
    Alcotest.test_case "live trace: mutilation is caught" `Quick
      test_mutilated_trace_fails ]
